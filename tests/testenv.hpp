// Shared test-suite environment knobs.
//
// The heavyweight suites (suite_lockstep_test, property_reloc_test,
// extensions_test) default to a reduced-iteration smoke mode so CI and the
// edit-compile-test loop stay fast; RELOGIC_SLOW_TESTS=ON opts into the
// full campaign (the CMake `slow` ctest label marks the suites affected).
#pragma once

#include <cstdlib>
#include <string>

namespace relogic::testenv {

inline bool slow_tests_enabled() {
  const char* v = std::getenv("RELOGIC_SLOW_TESTS");
  if (v == nullptr) return false;
  const std::string s(v);
  return s == "ON" || s == "on" || s == "1" || s == "TRUE" || s == "true";
}

/// Iteration count selector: `full` under RELOGIC_SLOW_TESTS=ON, the
/// reduced `smoke` count otherwise.
inline int iters(int smoke, int full) {
  return slow_tests_enabled() ? full : smoke;
}

}  // namespace relogic::testenv
