// Tests for the Sec. 3 routing-optimisation pass and the multi-clock
// applicability claim ("this approach is also applicable to multiple
// clock/multiple phase applications, since only one clock signal is
// involved in the relocation of each CLB").
#include <gtest/gtest.h>

#include "relogic/config/controller.hpp"
#include "relogic/config/port.hpp"
#include "relogic/netlist/benchmarks.hpp"
#include "relogic/place/implement.hpp"
#include "relogic/reloc/engine.hpp"
#include "relogic/sim/harness.hpp"
#include "testenv.hpp"

namespace relogic {
namespace {

using place::CellSite;

struct Rig {
  fabric::Fabric fab{fabric::DeviceGeometry::tiny(16, 16)};
  fabric::DelayModel dm;
  config::BoundaryScanPort port;
  config::ConfigController controller{fab, port, true};
  sim::FabricSim sim{fab, dm};
  place::Implementer implementer{fab, dm};
  place::Router router{fab, dm};
  reloc::RelocationEngine engine{controller, router, &sim};
};

TEST(RouteOptimization, ImprovesStretchedNetsAndStaysInLockstep) {
  Rig rig;
  rig.sim.add_clock(sim::ClockSpec{});
  const auto nl = netlist::bench::counter(4);
  const auto mapped = netlist::map_netlist(nl);
  place::ImplementOptions opts;
  opts.region = ClbRect{1, 1, 3, 3};
  auto impl = rig.implementer.implement(mapped, opts);
  sim::CircuitHarness harness(rig.sim, nl, impl);
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(harness.step({}).ok());

  // Stretch the nets: bounce the function across the device and back.
  rig.engine.relocate_function(impl, ClbRect{12, 12, 3, 3});
  rig.engine.relocate_function(impl, ClbRect{1, 12, 3, 3});
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(harness.step({}).ok());

  const auto rep = rig.engine.optimize_function_routing(impl);
  EXPECT_GT(rep.sinks_considered, 0);
  EXPECT_LE(rep.worst_delay_after, rep.worst_delay_before);
  if (rep.sinks_rerouted > 0) {
    EXPECT_GT(rep.config_time, SimTime::zero());
    EXPECT_GT(rep.frames_written, 0);
  }

  for (int i = 0; i < testenv::iters(5, 15); ++i)
    ASSERT_TRUE(harness.step({}).ok()) << harness.mismatch_log().back();
  EXPECT_TRUE(rig.sim.monitor().clean());
  for (const auto& [sig, net] : impl.signal_nets) {
    if (rig.fab.net_exists(net)) rig.fab.validate_net(net);
  }
}

TEST(RouteOptimization, IdempotentSecondPass) {
  Rig rig;
  rig.sim.add_clock(sim::ClockSpec{});
  const auto nl = netlist::bench::counter(3);
  auto impl = rig.implementer.implement(
      netlist::map_netlist(nl),
      place::ImplementOptions{ClbRect{1, 1, 3, 3}, 0, {}, {}});
  sim::CircuitHarness harness(rig.sim, nl, impl);
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(harness.step({}).ok());

  rig.engine.relocate_function(impl, ClbRect{10, 10, 3, 3});
  (void)rig.engine.optimize_function_routing(impl);
  const auto second = rig.engine.optimize_function_routing(impl);
  // Once optimised, a second pass finds nothing profitable.
  EXPECT_EQ(second.sinks_rerouted, 0);
}

TEST(MultiClock, IndependentDomainsRelocateIndependently) {
  Rig rig;
  // Two clock domains at different, mutually prime periods.
  rig.sim.add_clock(sim::ClockSpec{0, SimTime::ns(100), SimTime::ns(100)});
  rig.sim.add_clock(sim::ClockSpec{1, SimTime::ns(70), SimTime::ns(70)});

  const auto nl_a = netlist::bench::counter(4);
  const auto nl_b = netlist::bench::gray_counter(4);

  place::ImplementOptions oa, ob;
  oa.region = ClbRect{1, 1, 3, 3};
  oa.clock_domain = 0;
  ob.region = ClbRect{1, 8, 3, 3};
  ob.clock_domain = 1;
  auto ia = rig.implementer.implement(netlist::map_netlist(nl_a), oa);
  auto ib = rig.implementer.implement(netlist::map_netlist(nl_b), ob);

  sim::CircuitHarness ha(rig.sim, nl_a, ia);
  sim::CircuitHarness hb(rig.sim, nl_b, ib);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(ha.step({}).ok());
    ASSERT_TRUE(hb.step({}).ok());
  }

  // Relocate a cell of each domain; each relocation waits on its own
  // clock only (the paper: "only one clock signal is involved in the
  // relocation of each CLB").
  const auto ra =
      rig.engine.relocate_cell(ia, 0, CellSite{ClbCoord{12, 2}, 0});
  const auto rb =
      rig.engine.relocate_cell(ib, 0, CellSite{ClbCoord{12, 9}, 0});
  EXPECT_GT(ra.frames_written, 0);
  EXPECT_GT(rb.frames_written, 0);

  for (int i = 0; i < testenv::iters(8, 20); ++i) {
    ASSERT_TRUE(ha.step({}).ok()) << ha.mismatch_log().back();
    ASSERT_TRUE(hb.step({}).ok()) << hb.mismatch_log().back();
  }
  EXPECT_TRUE(rig.sim.monitor().clean());
}

TEST(MultiClock, GatedRelocationInSecondDomain) {
  Rig rig;
  rig.sim.add_clock(sim::ClockSpec{0, SimTime::ns(100), SimTime::ns(100)});
  rig.sim.add_clock(sim::ClockSpec{2, SimTime::ns(130), SimTime::ns(90)});

  const auto nl = netlist::bench::shift_register(
      3, netlist::bench::ClockingStyle::kGatedClock);
  place::ImplementOptions opts;
  opts.region = ClbRect{2, 2, 3, 3};
  opts.clock_domain = 2;
  auto impl = rig.implementer.implement(netlist::map_netlist(nl), opts);
  sim::CircuitHarness harness(rig.sim, nl, impl);

  for (const bool bit : {true, false, true}) {
    ASSERT_TRUE(harness.step({bit, true}).ok());
  }
  // Hold with CE low and relocate the whole register in domain 2.
  ASSERT_TRUE(harness.step({false, false}).ok());
  const auto rep = rig.engine.relocate_function(impl, ClbRect{10, 10, 3, 3});
  for (const auto& r : rep.cells) {
    if (r.reg == fabric::RegMode::kFF) {
      EXPECT_TRUE(r.state_verified);
    }
  }
  ASSERT_TRUE(harness.step({false, false}).ok());
  ASSERT_TRUE(harness.step({true, true}).ok());
  EXPECT_TRUE(rig.sim.monitor().clean());
}

TEST(LutRamHalt, StopTheSystemRelocationPreservesFunction) {
  // Sec. 2: LUT-RAMs cannot move on-line; with allow_halt_for_lut_ram the
  // engine stops the cell's clock domain, copies content + rewires, and
  // resumes — downtime reported, function preserved, other domains
  // unaffected.
  Rig rig;
  rig.sim.add_clock(sim::ClockSpec{0, SimTime::ns(100), SimTime::ns(100)});
  rig.sim.add_clock(sim::ClockSpec{1, SimTime::ns(80), SimTime::ns(80)});

  // Victim circuit in domain 0 with one cell turned into a LUT-RAM.
  const auto nl = netlist::bench::random_logic("ramckt", 8, 4, 2, 99);
  place::ImplementOptions opts;
  opts.region = ClbRect{2, 2, 3, 3};
  auto impl = rig.implementer.implement(netlist::map_netlist(nl), opts);
  {
    auto cfg = rig.fab.cell(impl.sites[0].clb, impl.sites[0].cell);
    cfg.lut_mode = fabric::LutMode::kRam;
    rig.fab.set_cell_config(impl.sites[0].clb, impl.sites[0].cell, cfg);
  }

  // Bystander counter in domain 1 that must keep running untouched.
  const auto other = netlist::bench::counter(4);
  place::ImplementOptions oo;
  oo.region = ClbRect{10, 10, 3, 3};
  oo.clock_domain = 1;
  auto other_impl = rig.implementer.implement(netlist::map_netlist(other), oo);
  sim::CircuitHarness victim(rig.sim, nl, impl);
  sim::CircuitHarness bystander(rig.sim, other, other_impl);
  Rng rng(4);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(victim.step_random(rng).ok());
    ASSERT_TRUE(bystander.step({}).ok());
  }

  // Refused without the option...
  EXPECT_THROW(
      rig.engine.relocate_cell(impl, 0, place::CellSite{ClbCoord{8, 2}, 0}),
      IllegalOperationError);

  // ...performed with it.
  reloc::RelocOptions opt;
  opt.allow_halt_for_lut_ram = true;
  const auto rep =
      rig.engine.relocate_cell(impl, 0, place::CellSite{ClbCoord{8, 2}, 0},
                               opt);
  EXPECT_GT(rep.halted, SimTime::zero());
  EXPECT_GT(rep.frames_written, 0);

  for (int i = 0; i < testenv::iters(5, 10); ++i) {
    ASSERT_TRUE(victim.step_random(rng).ok())
        << victim.mismatch_log().back();
    ASSERT_TRUE(bystander.step({}).ok())
        << bystander.mismatch_log().back();
  }
  EXPECT_TRUE(rig.sim.monitor().clean());
}

TEST(LutRamHalt, ClockGatingStopsAndResumesCleanly) {
  Rig rig;
  rig.sim.add_clock(sim::ClockSpec{0, SimTime::ns(100), SimTime::ns(100)});
  const auto nl = netlist::bench::counter(4);
  auto impl = rig.implementer.implement(
      netlist::map_netlist(nl),
      place::ImplementOptions{ClbRect{2, 2, 3, 3}, 0, {}, {}});
  sim::CircuitHarness h(rig.sim, nl, impl);
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(h.step({}).ok());

  const auto edges_before = rig.sim.edges_seen(0);
  rig.sim.set_clock_running(0, false);
  EXPECT_FALSE(rig.sim.clock_running(0));
  rig.sim.run_until(rig.sim.now() + SimTime::us(5));
  EXPECT_EQ(rig.sim.edges_seen(0), edges_before);  // nothing captured

  rig.sim.set_clock_running(0, true);
  for (int i = 0; i < 10; ++i)
    ASSERT_TRUE(h.step({}).ok()) << h.mismatch_log().back();
}

}  // namespace
}  // namespace relogic
