// Unit tests: relogic::netlist mapping (truth tables, packing, producers).
#include <gtest/gtest.h>

#include "relogic/common/rng.hpp"
#include "relogic/netlist/benchmarks.hpp"
#include "relogic/netlist/golden.hpp"
#include "relogic/netlist/mapping.hpp"

namespace relogic::netlist {
namespace {

TEST(TruthTable, BasicGates) {
  Netlist nl("t");
  const SigId a = nl.input("a");
  const SigId b = nl.input("b");
  const SigId c = nl.input("c");
  EXPECT_EQ(truth_table_of(nl, nl.and_(a, b)), fabric::luts::kAnd2);
  EXPECT_EQ(truth_table_of(nl, nl.or_(a, b)), fabric::luts::kOr2);
  EXPECT_EQ(truth_table_of(nl, nl.xor_(a, b)), fabric::luts::kXor2);
  EXPECT_EQ(truth_table_of(nl, nl.not_(a)), fabric::luts::kNotI0);
  EXPECT_EQ(truth_table_of(nl, nl.buf(a)), fabric::luts::kBufI0);
  EXPECT_EQ(truth_table_of(nl, nl.mux(a, b, c)), fabric::luts::kMux21);
}

TEST(TruthTable, UnusedInputsFoldedAway) {
  // A 2-input kLut node with garbage bits above row 3 must map to a table
  // insensitive to I2/I3 (they may be unrouted and read stale levels).
  Netlist nl("t");
  const SigId a = nl.input("a");
  const SigId b = nl.input("b");
  const SigId g = nl.lut(0xF9C6, {a, b});  // upper rows are garbage
  const std::uint16_t t = truth_table_of(nl, g);
  for (unsigned vec = 0; vec < 16; ++vec) {
    EXPECT_EQ((t >> vec) & 1u, (t >> (vec & 0x3)) & 1u) << vec;
  }
}

TEST(Mapping, PacksSingleConsumerConeIntoFF) {
  Netlist nl("t");
  const SigId a = nl.input("a");
  const SigId b = nl.input("b");
  const SigId x = nl.and_(a, b);          // single consumer: the FF
  const SigId q = nl.dff(x, std::nullopt, false, "q");
  nl.output("out", q);
  const auto mapped = map_netlist(nl);
  // One cell total: AND packed with FF.
  ASSERT_EQ(mapped.cell_count(), 1);
  EXPECT_EQ(mapped.cells[0].lut, fabric::luts::kAnd2);
  EXPECT_EQ(mapped.cells[0].reg, fabric::RegMode::kFF);
  EXPECT_EQ(mapped.producer(q).kind, Producer::Kind::kCellXQ);
  EXPECT_EQ(mapped.producer(x).kind, Producer::Kind::kCellX);
}

TEST(Mapping, SharedConeNotPacked) {
  Netlist nl("t");
  const SigId a = nl.input("a");
  const SigId b = nl.input("b");
  const SigId x = nl.and_(a, b);
  const SigId q = nl.dff(x);
  nl.output("comb", x);  // second consumer: cannot pack
  nl.output("reg", q);
  const auto mapped = map_netlist(nl);
  ASSERT_EQ(mapped.cell_count(), 2);  // AND cell + pass-through FF cell
  const auto& ff_cell =
      mapped.cells[static_cast<std::size_t>(mapped.producer(q).cell)];
  EXPECT_EQ(ff_cell.lut, fabric::luts::kBufI0);
  EXPECT_EQ(ff_cell.reg, fabric::RegMode::kFF);
}

TEST(Mapping, CePropagatesToCell) {
  Netlist nl("t");
  const SigId a = nl.input("a");
  const SigId ce = nl.input("ce");
  const SigId q = nl.dff(a, ce, true, "q");
  nl.output("out", q);
  const auto mapped = map_netlist(nl);
  const auto& cell =
      mapped.cells[static_cast<std::size_t>(mapped.producer(q).cell)];
  EXPECT_TRUE(cell.uses_ce());
  EXPECT_EQ(cell.ce, ce);
  EXPECT_TRUE(cell.init);
  const auto cfg = cell.to_config(3);
  EXPECT_TRUE(cfg.uses_ce);
  EXPECT_TRUE(cfg.init);
  EXPECT_EQ(cfg.clock_domain, 3);
  EXPECT_TRUE(cfg.used);
}

TEST(Mapping, LatchMapsToLatchCell) {
  Netlist nl("t");
  const SigId d = nl.input("d");
  const SigId g = nl.input("g");
  const SigId q = nl.latch(d, g, false, "q");
  nl.output("out", q);
  const auto mapped = map_netlist(nl);
  const auto& cell =
      mapped.cells[static_cast<std::size_t>(mapped.producer(q).cell)];
  EXPECT_EQ(cell.reg, fabric::RegMode::kLatch);
  EXPECT_EQ(cell.ce, g);
}

TEST(Mapping, EveryConsumedSignalHasProducer) {
  const auto nl = bench::b06();
  const auto mapped = map_netlist(nl);
  for (const auto& cell : mapped.cells) {
    for (const SigId in : cell.in) {
      if (in == kInvalidSig) continue;
      EXPECT_NO_THROW(mapped.producer(in));
    }
    if (cell.uses_ce()) {
      EXPECT_NO_THROW(mapped.producer(cell.ce));
    }
  }
  for (const auto& out : nl.outputs()) {
    EXPECT_NO_THROW(mapped.producer(out.signal));
  }
}

TEST(Mapping, ClbsNeededRoundsUp) {
  MappedNetlist m;
  m.cells.resize(5);
  EXPECT_EQ(m.clbs_needed(4), 2);
  m.cells.resize(4);
  EXPECT_EQ(m.clbs_needed(4), 1);
}

// Property: mapped cell truth tables agree with golden evaluation on every
// input vector for random netlists.
class MappingPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(MappingPropertyTest, LutEquivalence) {
  const auto nl =
      bench::random_logic("p", 30, 4, 6, static_cast<unsigned>(GetParam()));
  const auto mapped = map_netlist(nl);
  GoldenSim sim(nl);

  Rng rng(static_cast<unsigned>(GetParam()) * 77 + 1);
  for (int trial = 0; trial < 32; ++trial) {
    for (const SigId in : nl.inputs()) sim.set_input(in, rng.next_bool());
    sim.settle();
    // Every mapped comb cell's LUT must reproduce the golden value of its
    // signal when fed the golden values of its fanins.
    for (const auto& cell : mapped.cells) {
      if (cell.comb_sig == kInvalidSig) continue;
      unsigned vec = 0;
      for (int i = 0; i < 4; ++i) {
        if (cell.in[static_cast<std::size_t>(i)] == kInvalidSig) continue;
        vec |= (sim.value(cell.in[static_cast<std::size_t>(i)]) ? 1u : 0u)
               << i;
      }
      const bool lut_out = ((cell.lut >> vec) & 1u) != 0;
      ASSERT_EQ(lut_out, sim.value(cell.comb_sig))
          << "cell " << cell.name << " vec " << vec;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MappingPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace relogic::netlist
