// Unit tests: the shared immutable RoutingSkeleton, its process-wide
// per-geometry cache, and the per-device occupancy overlay (PR 9).
//
// The load-bearing contract: the two-pass counting CSR build must produce
// byte-identical adjacency — same offsets, same PIP-enumeration edge order,
// same sorted mirror — as the seed staging algorithm kept alive as
// RoutingSkeleton::build_reference. Everything downstream (router
// exploration order, fig5/fig6 byte-pinned outputs) rides on that.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "relogic/fabric/fabric.hpp"

namespace relogic::fabric {
namespace {

TEST(RoutingSkeleton, CountingBuildMatchesSeedStagingBuild) {
  // The three paper presets the benches exercise, plus the synthetic
  // 4000-class size point. build_reference emits through the checked public
  // node-id constructors while build uses the hoisted unchecked arithmetic,
  // so agreement here cross-checks both the CSR assembly and the fast
  // enumeration.
  for (auto p : {DevicePreset::kXCV50, DevicePreset::kXCV200,
                 DevicePreset::kXCV1000, DevicePreset::kXCV4000}) {
    const auto geom = DeviceGeometry::preset(p);
    const auto fast = RoutingSkeleton::build(geom);
    const auto seed = RoutingSkeleton::build_reference(geom);
    EXPECT_EQ(fast->node_count(), seed->node_count()) << geom.name;
    EXPECT_EQ(fast->edge_count(), seed->edge_count()) << geom.name;
    EXPECT_TRUE(fast->same_adjacency(*seed)) << geom.name;
  }
}

TEST(RoutingSkeleton, SortedMirrorAgreesWithEnumerationOrderRows) {
  // has_edge answers from the row-sorted mirror; fanout() serves the
  // enumeration-order rows. Every enumerated edge must be found and a
  // guaranteed non-edge must not be.
  const auto skel = RoutingSkeleton::build(DeviceGeometry::tiny(6, 6));
  std::size_t checked = 0;
  for (std::size_t n = 0; n < skel->node_count(); ++n) {
    const auto from = static_cast<NodeId>(n);
    const auto row = skel->fanout(from);
    for (NodeId to : row) {
      EXPECT_TRUE(skel->has_edge(from, to));
      ++checked;
    }
    // Self-loops never occur in the PIP set, so `from` itself is a
    // membership probe that must miss in every row.
    EXPECT_FALSE(skel->has_edge(from, from));
  }
  EXPECT_EQ(checked, skel->edge_count());
}

TEST(RoutingSkeletonCache, SameGeometryYieldsSameSkeletonInstance) {
  clear_routing_skeleton_cache();
  const auto geom = DeviceGeometry::tiny(5, 7);
  const auto a = acquire_routing_skeleton(geom);
  const auto b = acquire_routing_skeleton(geom);
  EXPECT_EQ(a.get(), b.get());
  EXPECT_EQ(routing_skeleton_cache_size(), 1u);

  // Fabrics are thin clients of the same cache: two devices of one
  // geometry share the instance outright.
  Fabric f1(geom);
  Fabric f2(geom);
  EXPECT_EQ(&f1.skeleton(), &f2.skeleton());
  EXPECT_EQ(&f1.skeleton(), a.get());
  EXPECT_EQ(routing_skeleton_cache_size(), 1u);
}

TEST(RoutingSkeletonCache, DistinctGeometriesGetDistinctSkeletons) {
  // tiny and tiny_dense share dimensions but differ in routing pool
  // fields; the cache keys on every geometry field, so they must not
  // alias even when their node counts happen to line up.
  clear_routing_skeleton_cache();
  const auto sparse = acquire_routing_skeleton(DeviceGeometry::tiny(8, 8));
  const auto dense =
      acquire_routing_skeleton(DeviceGeometry::tiny_dense(8, 8));
  EXPECT_NE(sparse.get(), dense.get());
  EXPECT_EQ(routing_skeleton_cache_size(), 2u);

  // The audit walk (cached adjacency vs a fresh reference rebuild) must
  // hold for whatever the cache currently contains.
  audit_routing_skeleton_cache();
}

TEST(RoutingSkeletonCache, ClearDropsEntriesButNotLiveHandles) {
  clear_routing_skeleton_cache();
  const auto geom = DeviceGeometry::tiny(4, 4);
  const auto held = acquire_routing_skeleton(geom);
  EXPECT_EQ(routing_skeleton_cache_size(), 1u);
  clear_routing_skeleton_cache();
  EXPECT_EQ(routing_skeleton_cache_size(), 0u);
  // The shared_ptr keeps the dropped skeleton alive; a re-acquire builds
  // a fresh instance with identical adjacency.
  const auto rebuilt = acquire_routing_skeleton(geom);
  EXPECT_NE(held.get(), rebuilt.get());
  EXPECT_TRUE(held->same_adjacency(*rebuilt));
}

TEST(RoutingGraphOverlay, OccupancyIsolatedBetweenFabricsSharingSkeleton) {
  const auto geom = DeviceGeometry::tiny(6, 6);
  Fabric f1(geom);
  Fabric f2(geom);
  ASSERT_EQ(&f1.skeleton(), &f2.skeleton());

  const auto n = f1.graph().single(ClbCoord{2, 3}, Dir::kE, 0);
  ASSERT_TRUE(f1.graph().is_free(n));
  ASSERT_TRUE(f2.graph().is_free(n));

  f1.graph().occupy(n, NetId{7});
  EXPECT_FALSE(f1.graph().is_free(n));
  EXPECT_EQ(f1.graph().occupied_count(), 1u);
  // The sibling device sharing the skeleton must not see the claim.
  EXPECT_TRUE(f2.graph().is_free(n));
  EXPECT_EQ(f2.graph().occupied_count(), 0u);

  f1.graph().release(n);
  EXPECT_TRUE(f1.graph().is_free(n));
  EXPECT_EQ(f1.graph().occupied_count(), 0u);
}

}  // namespace
}  // namespace relogic::fabric
