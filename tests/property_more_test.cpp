// Second property-test wave: cross-layer consistency checks that tie the
// delay model, the router, the fabric bookkeeping and the scheduler
// timing together.
#include <gtest/gtest.h>

#include "relogic/config/controller.hpp"
#include "relogic/config/port.hpp"
#include "relogic/netlist/benchmarks.hpp"
#include "relogic/netlist/golden.hpp"
#include "relogic/place/implement.hpp"
#include "relogic/reloc/engine.hpp"
#include "relogic/sched/scheduler.hpp"
#include "relogic/sim/harness.hpp"

namespace relogic {
namespace {

using fabric::CellPort;
using fabric::DeviceGeometry;
using fabric::Fabric;

// Gray-code invariant: consecutive outputs differ in exactly one bit —
// verified on the golden model AND on the fabric implementation.
TEST(GrayProperty, SingleBitChangesOnFabric) {
  Fabric fab(DeviceGeometry::tiny(10, 10));
  fabric::DelayModel dm;
  sim::FabricSim sim(fab, dm);
  sim.add_clock(sim::ClockSpec{});
  place::Implementer implementer(fab, dm);
  const auto nl = netlist::bench::gray_counter(4);
  auto impl = implementer.implement(
      netlist::map_netlist(nl),
      place::ImplementOptions{ClbRect{2, 2, 3, 3}, 0, {}, {}});
  sim::CircuitHarness h(sim, nl, impl);

  auto read = [&] {
    unsigned v = 0;
    for (int i = 0; i < 4; ++i) {
      if (sim.pad_value(impl.output_pad("g" + std::to_string(i))))
        v |= 1u << i;
    }
    return v;
  };

  ASSERT_TRUE(h.step({}).ok());
  unsigned prev = read();
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(h.step({}).ok());
    const unsigned cur = read();
    EXPECT_EQ(__builtin_popcount(prev ^ cur), 1) << "step " << i;
    prev = cur;
  }
}

// Router/delay-model consistency: for a fresh single-sink net, the delay
// the fabric computes for the routed tree equals the delay model applied
// to the returned path.
class RouteDelayConsistency : public ::testing::TestWithParam<int> {};

TEST_P(RouteDelayConsistency, TreeDelayMatchesPathDelay) {
  Fabric fab(DeviceGeometry::tiny(12, 12));
  fabric::DelayModel dm;
  place::Router router(fab, dm);
  const auto& g = fab.graph();
  Rng rng(static_cast<unsigned>(GetParam()));

  for (int trial = 0; trial < 10; ++trial) {
    const ClbCoord from{rng.next_int(0, 11), rng.next_int(0, 11)};
    ClbCoord to{rng.next_int(0, 11), rng.next_int(0, 11)};
    if (to == from) to.col = (to.col + 1) % 12;
    const auto net =
        fab.create_net("t" + std::to_string(GetParam()) + "_" +
                       std::to_string(trial));
    const auto src = g.out_pin(from, 0, false);
    const auto sink = g.in_pin(to, 1, CellPort::kI2);
    fab.attach_source(net, src);
    const auto path = router.find_path(net, sink);
    std::vector<fabric::RouteEdge> edges;
    for (std::size_t i = 1; i < path.size(); ++i)
      edges.push_back({path[i - 1], path[i]});
    fab.add_edges(net, edges);

    const auto tree_delays = fab.sink_delays(net, dm);
    ASSERT_EQ(tree_delays.size(), 1u);
    EXPECT_EQ(tree_delays[0].max, dm.path_delay(g, path));
    EXPECT_EQ(tree_delays[0].min, tree_delays[0].max);  // single path
    fab.destroy_net(net);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RouteDelayConsistency,
                         ::testing::Values(1, 2, 3, 4));

// Fig. 3's other branch: CE held HIGH during the whole transfer — original
// and replica FFs update together through the mux's data-1 leg.
TEST(GatedTransfer, CeActiveThroughoutStillCoherent) {
  Fabric fab(DeviceGeometry::tiny(12, 12));
  fabric::DelayModel dm;
  config::BoundaryScanPort port;
  config::ConfigController controller(fab, port, true);
  sim::FabricSim sim(fab, dm);
  sim.add_clock(sim::ClockSpec{});
  place::Implementer implementer(fab, dm);
  place::Router router(fab, dm);
  reloc::RelocationEngine engine(controller, router, &sim);

  const auto nl = netlist::bench::counter(
      4, netlist::bench::ClockingStyle::kGatedClock);
  auto impl = implementer.implement(
      netlist::map_netlist(nl),
      place::ImplementOptions{ClbRect{2, 2, 3, 3}, 0, {}, {}});
  sim::CircuitHarness h(sim, nl, impl);
  // Keep CE high the whole experiment: the counter counts continuously —
  // including all through the relocation interval.
  for (int i = 0; i < 6; ++i) ASSERT_TRUE(h.step({true}).ok());
  for (int i = 0; i < impl.cell_count(); ++i) {
    // Keep driving CE=1 across moves: the input pad holds its value.
    engine.relocate_cell(impl, i,
                         place::CellSite{ClbCoord{8, 2 + i / 4}, i % 4});
  }
  for (int i = 0; i < 10; ++i)
    ASSERT_TRUE(h.step({true}).ok()) << h.mismatch_log().back();
  EXPECT_TRUE(sim.monitor().clean());
}

// Scheduler timing identity: a halt-and-move victim's finish time shifts
// by exactly the move cost charged to the port.
TEST(SchedulerTiming, HaltExtensionEqualsMoveCost) {
  const auto geom = DeviceGeometry::xcv200();
  config::SelectMapPort port;
  const reloc::RelocationCostModel cost(geom, port);

  // Construct a deterministic fragmentation scenario on a 10x10 device:
  // t0 occupies the middle band, t1 and t2 the sides; t0 and t2 leave,
  // t3 needs a square only a move of t1 can create.
  using namespace sched;
  std::vector<TaskArrival> tasks;
  auto mk = [&](const char* name, int h, int w, double dur_ms, double at_ms) {
    FunctionSpec f;
    f.name = name;
    f.height = h;
    f.width = w;
    f.duration = SimTime::ps(static_cast<std::int64_t>(dur_ms * 1e9));
    f.reg = fabric::RegMode::kFF;
    return TaskArrival{f, SimTime::ps(static_cast<std::int64_t>(at_ms * 1e9))};
  };
  tasks.push_back(mk("left", 10, 4, 500, 0));    // cols 0..3
  tasks.push_back(mk("mid", 10, 2, 80, 0));      // cols 4..5
  tasks.push_back(mk("right", 10, 4, 500, 0));   // cols 6..9
  // After mid departs at ~80ms, free = cols 4..5 (10x2). t3 needs 10x5:
  // impossible without moving a 10x4 neighbour... that frees nothing. Use
  // 6x6 request instead: still impossible without a move of left or right.
  tasks.push_back(mk("req", 6, 6, 100, 100));

  SchedulerConfig cfg;
  cfg.policy = ManagementPolicy::kHaltAndMove;
  cfg.max_move_cost_fraction = 0;  // no gate: force the move
  Scheduler sched(10, 10, cost, cfg);
  const auto stats = sched.run_tasks(tasks);

  // If a move happened, downtime was charged and the victim still ran its
  // full duration (finish - run_start = duration + halted).
  if (stats.rearrangement_moves > 0) {
    for (const auto& t : stats.tasks) {
      if (t.halted > SimTime::zero()) {
        EXPECT_EQ(t.finish - t.run_start,
                  SimTime::ps(static_cast<std::int64_t>(500 * 1e9)) + t.halted)
            << t.name;
      }
    }
    EXPECT_GT(stats.total_halted, SimTime::zero());
  }
}

// Port serialization: simultaneous arrivals configure strictly one after
// the other on the single configuration port.
TEST(SchedulerTiming, ConfigPortSerializes) {
  const auto geom = DeviceGeometry::xcv200();
  config::BoundaryScanPort port;  // slow: differences are visible
  const reloc::RelocationCostModel cost(geom, port);
  using namespace sched;
  std::vector<TaskArrival> tasks;
  for (int i = 0; i < 3; ++i) {
    FunctionSpec f;
    f.name = "t" + std::to_string(i);
    f.height = 4;
    f.width = 4;
    f.duration = SimTime::ms(50);
    tasks.push_back(TaskArrival{f, SimTime::zero()});
  }
  Scheduler sched(20, 20, cost, SchedulerConfig{});
  const auto stats = sched.run_tasks(tasks);
  // All config windows are disjoint.
  std::vector<std::pair<SimTime, SimTime>> windows;
  for (const auto& t : stats.tasks) {
    windows.emplace_back(t.config_start, t.run_start);
  }
  std::sort(windows.begin(), windows.end());
  for (std::size_t i = 1; i < windows.size(); ++i) {
    EXPECT_GE(windows[i].first, windows[i - 1].second);
  }
  EXPECT_EQ(stats.config_port_busy,
            cost.configure_time(64) * 3);
}

// Identical-rewrite property at the transaction level: re-applying a
// whole implementation's configuration is frame-expensive but effect-free.
TEST(IdenticalRewrite, WholeFunctionRewriteIsEffectFree) {
  Fabric fab(DeviceGeometry::tiny(10, 10));
  fabric::DelayModel dm;
  config::BoundaryScanPort port;
  config::ConfigController controller(fab, port, true);
  sim::FabricSim sim(fab, dm);
  sim.add_clock(sim::ClockSpec{});
  place::Implementer implementer(fab, dm);
  const auto nl = netlist::bench::b02();
  auto impl = implementer.implement(
      netlist::map_netlist(nl),
      place::ImplementOptions{ClbRect{2, 2, 3, 3}, 0, {}, {}});
  sim::CircuitHarness h(sim, nl, impl);
  Rng rng(6);
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(h.step_random(rng).ok());

  // Rewrite every used cell with its current configuration mid-operation.
  config::ConfigOp op("full identical rewrite");
  for (int i = 0; i < impl.cell_count(); ++i) {
    const auto& s = impl.sites[static_cast<std::size_t>(i)];
    op.write_cell(s.clb, s.cell, fab.cell(s.clb, s.cell));
  }
  const auto r = controller.apply(op);
  EXPECT_GT(r.frames_written, 0);
  EXPECT_EQ(r.effective_actions, 0);  // nothing changed

  for (int i = 0; i < 10; ++i)
    ASSERT_TRUE(h.step_random(rng).ok()) << h.mismatch_log().back();
  EXPECT_TRUE(sim.monitor().clean());
}

}  // namespace
}  // namespace relogic
