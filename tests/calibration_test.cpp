// Regression pin for reloc::calibrate_cost_params (ROADMAP leftover:
// "recalibrate or derive the CostParams column counts from the
// frame-accurate plane").
//
// The calibration helper measures the per-case column-transaction counts
// by running the real RelocationEngine over canonical fixtures on the
// XCV200 — everything underneath (placement, routing, the engine's op
// sequences, the config plane's column accounting) is deterministic, so
// the measured values are exact integers. Pinning them here means an
// engine or router change that shifts the real column footprint of a
// relocation fails this test instead of silently skewing every consumer
// of the cost model.
//
// The CostParams *defaults* stay at the legacy column-regime measurement
// (8/9/17/17): the fig4/5/6 benches and the schedulers price with the
// defaults, and their outputs are pinned elsewhere. The relationship is
// asserted loosely below — comb agrees exactly and ff within one column,
// while the frame-accurate gated/latch counts run higher than the legacy
// numbers because the engine's Fig. 3/4 procedure also pays the auxiliary
// relocation circuit's configure and teardown columns, which the legacy
// measurement amortized across a whole workload.
#include <gtest/gtest.h>

#include "relogic/config/port.hpp"
#include "relogic/fabric/device.hpp"
#include "relogic/reloc/calibrate.hpp"
#include "relogic/reloc/cost.hpp"

namespace relogic::reloc {
namespace {

using fabric::DeviceGeometry;
using fabric::RegMode;

TEST(CostCalibration, Xcv200ColumnCountsArePinned) {
  config::BoundaryScanPort jtag;  // the paper's configuration port
  const CalibratedColumns c =
      calibrate_cost_params(DeviceGeometry::xcv200(), jtag);

  // The frame-accurate plane's measured per-case column counts on the
  // paper's device. Exact by construction; update only with an engine or
  // router change whose column-footprint shift is understood.
  EXPECT_EQ(c.comb_column_writes, 8);
  EXPECT_EQ(c.ff_column_writes, 8);
  EXPECT_EQ(c.gated_column_writes, 24);
  EXPECT_EQ(c.latch_column_writes, 23);

  // Structure the cost model's defaults encode, re-derived from the
  // engine: plain two-phase copies are cheapest, the state-acquisition FF
  // case costs no less, and the aux-circuit cases dominate by 2x or more.
  EXPECT_LE(c.comb_column_writes, c.ff_column_writes);
  EXPECT_GE(c.gated_column_writes, 2 * c.ff_column_writes);
  EXPECT_GE(c.latch_column_writes, 2 * c.ff_column_writes);

  // Agreement with the legacy defaults where they are comparable.
  const CostParams defaults;
  EXPECT_EQ(c.comb_column_writes, defaults.comb_column_writes);
  EXPECT_NEAR(c.ff_column_writes, defaults.ff_column_writes, 1);
  EXPECT_GE(c.gated_column_writes, defaults.gated_column_writes);
  EXPECT_GE(c.latch_column_writes, defaults.latch_column_writes);
}

TEST(CostCalibration, AppliedParamsPriceWithMeasuredOrdering) {
  config::BoundaryScanPort jtag;
  const auto geom = DeviceGeometry::xcv200();
  const CalibratedColumns c = calibrate_cost_params(geom, jtag);
  const RelocationCostModel model(geom, jtag, c.apply_to());

  // A model built from the measured counts preserves the paper's case
  // ordering: combinational <= free-running FF < gated-clock FF, and the
  // latch case prices like the gated one (both use the aux circuit).
  const SimTime comb = model.cell_time(RegMode::kNone, false);
  const SimTime ff = model.cell_time(RegMode::kFF, false);
  const SimTime gated = model.cell_time(RegMode::kFF, true);
  const SimTime latch = model.cell_time(RegMode::kLatch, false);
  EXPECT_LE(comb, ff);
  EXPECT_LT(ff, gated);
  EXPECT_GT(latch, ff);

  // apply_to only touches the four column counts.
  const CostParams defaults;
  const CostParams applied = c.apply_to();
  EXPECT_EQ(applied.comb_wait_cycles, defaults.comb_wait_cycles);
  EXPECT_EQ(applied.ff_wait_cycles, defaults.ff_wait_cycles);
  EXPECT_EQ(applied.gated_wait_cycles, defaults.gated_wait_cycles);
  EXPECT_EQ(applied.clock_period, defaults.clock_period);
  EXPECT_EQ(applied.frame_granular_frames_per_txn,
            defaults.frame_granular_frames_per_txn);
  EXPECT_EQ(applied.dirty_write_fraction, defaults.dirty_write_fraction);
  EXPECT_EQ(applied.gated_column_writes, c.gated_column_writes);
}

}  // namespace
}  // namespace relogic::reloc
