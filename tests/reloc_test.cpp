// Unit tests: relogic::reloc (net surgery, cost model, engine edge cases
// beyond the integration suite).
#include <gtest/gtest.h>

#include "relogic/config/controller.hpp"
#include "relogic/config/port.hpp"
#include "relogic/netlist/benchmarks.hpp"
#include "relogic/place/implement.hpp"
#include "relogic/reloc/cost.hpp"
#include "relogic/reloc/engine.hpp"
#include "relogic/reloc/net_surgery.hpp"
#include "relogic/sim/harness.hpp"

namespace relogic::reloc {
namespace {

using fabric::CellPort;
using fabric::DeviceGeometry;
using fabric::Dir;
using fabric::Fabric;
using fabric::NodeId;
using fabric::RouteEdge;

class NetSurgeryTest : public ::testing::Test {
 protected:
  DeviceGeometry geom_ = DeviceGeometry::tiny(8, 8);
  Fabric fab_{geom_};

  // Builds a Y-shaped net: src -> a -> b, b -> sink1, b -> c -> sink2.
  struct Y {
    fabric::NetId net;
    NodeId src, a, b, c, sink1, sink2;
  };
  Y build_y() {
    const auto& g = fab_.graph();
    Y y;
    y.net = fab_.create_net("y");
    y.src = g.out_pin({2, 2}, 0, false);
    y.a = g.single({2, 2}, Dir::kE, 0);
    y.b = g.single({2, 3}, Dir::kE, 0);
    y.sink1 = g.in_pin({2, 4}, 0, CellPort::kI0);
    y.c = g.single({2, 4}, Dir::kS, 0);
    y.sink2 = g.in_pin({3, 4}, 0, CellPort::kI0);
    fab_.attach_source(y.net, y.src);
    fab_.add_edge(y.net, {y.src, y.a});
    fab_.add_edge(y.net, {y.a, y.b});
    fab_.add_edge(y.net, {y.b, y.sink1});
    fab_.add_edge(y.net, {y.b, y.c});
    fab_.add_edge(y.net, {y.c, y.sink2});
    fab_.validate_net(y.net);
    return y;
  }
};

TEST_F(NetSurgeryTest, SinkRemovalKeepsSharedTrunk) {
  const Y y = build_y();
  const auto removed = prune_for_sink_removal(fab_, y.net, y.sink2);
  // Only the private branch b->c->sink2 goes; the trunk survives.
  EXPECT_EQ(removed.size(), 2u);
  for (const auto& e : removed) {
    EXPECT_TRUE((e == RouteEdge{y.b, y.c}) || (e == RouteEdge{y.c, y.sink2}));
  }
}

TEST_F(NetSurgeryTest, GroupedRemovalFreesSharedSegmentsExactlyOnce) {
  const Y y = build_y();
  const auto removed =
      prune_for_sinks_removal(fab_, y.net, {y.sink1, y.sink2});
  // Dropping both sinks frees everything.
  EXPECT_EQ(removed.size(), fab_.net(y.net).edges.size());
  // Per-sink pruning would have left the shared trunk in place.
  const auto only1 = prune_for_sink_removal(fab_, y.net, y.sink1);
  EXPECT_LT(only1.size(), removed.size());
}

TEST_F(NetSurgeryTest, SourceRemovalWithParallelReplica) {
  // src and replica both drive the trunk; removing src keeps the replica
  // path intact and all sinks covered.
  const auto& g = fab_.graph();
  Y y = build_y();
  const NodeId replica = g.out_pin({3, 2}, 0, false);
  const NodeId r1 = g.single({3, 2}, Dir::kN, 1);
  fab_.attach_source(y.net, replica);
  fab_.add_edge(y.net, {replica, r1});
  fab_.add_edge(y.net, {r1, y.a});  // joins the trunk at a
  fab_.validate_net(y.net);

  const auto removed = prune_for_source_removal(fab_, y.net, y.src);
  ASSERT_EQ(removed.size(), 1u);
  EXPECT_EQ(removed[0], (RouteEdge{y.src, y.a}));

  fab_.remove_edges(y.net, removed);
  fab_.detach_source(y.net, y.src);
  fab_.validate_net(y.net);
  EXPECT_EQ(fab_.net_sinks(y.net).size(), 2u);
}

TEST_F(NetSurgeryTest, NeededEdgesEmptyWhenNoSinksKept) {
  const Y y = build_y();
  const auto kept = needed_edges(fab_, y.net, fab_.net(y.net).sources, {});
  EXPECT_TRUE(kept.empty());
}

TEST(CostModel, OrdersCasesByComplexity) {
  const auto geom = DeviceGeometry::xcv200();
  config::BoundaryScanPort jtag;
  const RelocationCostModel model(geom, jtag);
  const auto comb = model.cell_time(fabric::RegMode::kNone, false);
  const auto ff = model.cell_time(fabric::RegMode::kFF, false);
  const auto gated = model.cell_time(fabric::RegMode::kFF, true);
  const auto latch = model.cell_time(fabric::RegMode::kLatch, false);
  EXPECT_LT(comb, ff);
  EXPECT_LT(ff, gated);
  EXPECT_EQ(gated, latch);
  // The paper's ballpark: gated relocation in the tens of milliseconds.
  EXPECT_GT(gated, SimTime::ms(10));
  EXPECT_LT(gated, SimTime::ms(40));
  // Linear in cells.
  EXPECT_EQ(model.function_time(10, fabric::RegMode::kFF, true),
            gated * 10);
  EXPECT_EQ(model.function_time(0, fabric::RegMode::kFF, true),
            SimTime::zero());
}

TEST(CostModel, ConfigureScalesWithFootprint) {
  const auto geom = DeviceGeometry::xcv200();
  config::BoundaryScanPort jtag;
  const RelocationCostModel model(geom, jtag);
  EXPECT_LT(model.configure_time(16), model.configure_time(64));
  EXPECT_LT(model.configure_time(64), model.configure_time(256));
}

struct EngineRig {
  Fabric fab{DeviceGeometry::tiny(12, 12)};
  fabric::DelayModel dm;
  config::BoundaryScanPort port;
  config::ConfigController controller{fab, port, true};
  sim::FabricSim sim{fab, dm};
  place::Implementer implementer{fab, dm};
  place::Router router{fab, dm};
  RelocationEngine engine{controller, router, &sim};
  EngineRig() { sim.add_clock(sim::ClockSpec{}); }
};

TEST(EngineEdgeCases, DestinationOccupiedRejected) {
  EngineRig rig;
  const auto nl = netlist::bench::counter(3);
  const auto mapped = netlist::map_netlist(nl);
  place::ImplementOptions opts;
  opts.region = place::suggest_region(mapped, {2, 2}, rig.fab.geometry());
  auto impl = rig.implementer.implement(mapped, opts);
  // Destination = another of its own cells.
  EXPECT_THROW(rig.engine.relocate_cell(impl, 0, impl.sites[1]),
               ContractError);
}

TEST(EngineEdgeCases, FunctionRegionWithoutSpaceRejected) {
  EngineRig rig;
  const auto nl = netlist::bench::counter(4);
  auto impl = rig.implementer.implement(
      netlist::map_netlist(nl),
      place::ImplementOptions{
          place::suggest_region(netlist::map_netlist(nl), {2, 2},
                                rig.fab.geometry()),
          0,
          {},
          {}});
  EXPECT_THROW(rig.engine.relocate_function(impl, ClbRect{10, 10, 1, 1}),
               ResourceError);
}

TEST(EngineEdgeCases, RelocationWithoutSimulatorStillWorks) {
  // Planning mode: no simulator attached; waits are accounted
  // analytically and no state verification happens.
  Fabric fab(DeviceGeometry::tiny(12, 12));
  fabric::DelayModel dm;
  config::BoundaryScanPort port;
  config::ConfigController controller(fab, port, true);
  place::Implementer implementer(fab, dm);
  place::Router router(fab, dm);
  RelocationEngine engine(controller, router, nullptr);

  const auto nl = netlist::bench::counter(3);
  auto impl = implementer.implement(
      netlist::map_netlist(nl),
      place::ImplementOptions{
          place::suggest_region(netlist::map_netlist(nl), {2, 2},
                                fab.geometry()),
          0,
          {},
          {}});
  const auto report =
      engine.relocate_cell(impl, 0, place::CellSite{ClbCoord{9, 9}, 0});
  EXPECT_GT(report.config_time, SimTime::zero());
  EXPECT_GE(report.wall_time, report.config_time);
  EXPECT_FALSE(report.state_verified);
  for (const auto& [sig, net] : impl.signal_nets) {
    if (fab.net_exists(net)) fab.validate_net(net);
  }
}

TEST(EngineEdgeCases, ReportsAccumulateInFunctionRelocation) {
  EngineRig rig;
  const auto nl = netlist::bench::counter(3);
  auto impl = rig.implementer.implement(
      netlist::map_netlist(nl),
      place::ImplementOptions{
          place::suggest_region(netlist::map_netlist(nl), {1, 1},
                                rig.fab.geometry()),
          0,
          {},
          {}});
  sim::CircuitHarness harness(rig.sim, nl, impl);
  for (int i = 0; i < 3; ++i) harness.step({});

  const auto report = rig.engine.relocate_function(impl, ClbRect{8, 8, 3, 3});
  EXPECT_EQ(static_cast<int>(report.cells.size()), impl.cell_count());
  SimTime sum = SimTime::zero();
  int frames = 0;
  for (const auto& r : report.cells) {
    sum += r.config_time;
    frames += r.frames_written;
  }
  EXPECT_EQ(report.config_time, sum);
  EXPECT_EQ(report.frames_written, frames);
  EXPECT_EQ(impl.region, (ClbRect{8, 8, 3, 3}));
}

TEST(EngineEdgeCases, AuxSearchFailsOnFullFabric) {
  EngineRig rig;
  // Occupy every CLB so no auxiliary site exists.
  for (int r = 0; r < 12; ++r)
    for (int c = 0; c < 12; ++c)
      rig.fab.set_cell_config({r, c}, 0,
                              fabric::LogicCellConfig::constant(false));
  // A gated-clock cell relocation must fail with a resource error before
  // touching anything.
  const auto nl = netlist::bench::shift_register(
      1, netlist::bench::ClockingStyle::kGatedClock);
  // Free a strip for the implementation itself.
  for (int r = 0; r < 4; ++r)
    for (int c = 0; c < 6; ++c) rig.fab.clear_cell({r, c}, 0);
  auto impl = rig.implementer.implement(
      netlist::map_netlist(nl),
      place::ImplementOptions{ClbRect{0, 0, 4, 5}, 0, {}, {}});
  // Free exactly one destination cell far away, but keep its CLB's other
  // cells... the destination CLB itself holds cell 0; use cell 1.
  EXPECT_THROW(
      rig.engine.relocate_cell(impl, 0, place::CellSite{ClbCoord{10, 10}, 1}),
      ResourceError);
}

}  // namespace
}  // namespace relogic::reloc
