// Unit tests: relogic::runtime (fleet manager, transaction batcher,
// telemetry).
#include <gtest/gtest.h>

#include "relogic/config/controller.hpp"
#include "relogic/config/port.hpp"
#include "relogic/fabric/fabric.hpp"
#include "relogic/runtime/batcher.hpp"
#include "relogic/runtime/fleet.hpp"
#include "relogic/runtime/telemetry.hpp"
#include "relogic/sched/workload.hpp"

namespace relogic::runtime {
namespace {

// ---- telemetry --------------------------------------------------------------

TEST(Telemetry, CounterAccumulates) {
  Telemetry t;
  t.counter("a").add();
  t.counter("a").add(41);
  EXPECT_EQ(t.counter_value("a"), 42);
  EXPECT_EQ(t.counter_value("missing"), 0);
}

TEST(Telemetry, HistogramBucketsAndStats) {
  Histogram h({1.0, 10.0, 100.0});
  h.observe(0.5);
  h.observe(1.0);   // on the boundary: falls in the <= 1.0 bucket
  h.observe(5.0);
  h.observe(50.0);
  h.observe(500.0);  // overflow
  EXPECT_EQ(h.count(), 5);
  EXPECT_DOUBLE_EQ(h.sum(), 556.5);
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 500.0);
  const auto& counts = h.bucket_counts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 2);
  EXPECT_EQ(counts[1], 1);
  EXPECT_EQ(counts[2], 1);
  EXPECT_EQ(counts[3], 1);
  // Quantiles: bucket upper bounds, capped by the observed max.
  EXPECT_DOUBLE_EQ(h.quantile(0.2), 1.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.6), 10.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 500.0);
}

TEST(Telemetry, HistogramMerge) {
  Histogram a({1.0, 10.0});
  Histogram b({1.0, 10.0});
  a.observe(0.5);
  b.observe(5.0);
  b.observe(20.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 3);
  EXPECT_DOUBLE_EQ(a.min(), 0.5);
  EXPECT_DOUBLE_EQ(a.max(), 20.0);
  Histogram c({2.0});
  EXPECT_THROW(a.merge(c), Error);
}

TEST(Telemetry, RegistryMergeAndJson) {
  Telemetry a;
  Telemetry b;
  a.counter("n").add(1);
  b.counter("n").add(2);
  a.gauge("g").set(1.0);
  b.gauge("g").set(3.0);
  a.histogram("h").observe(1.0);
  b.histogram("h").observe(2.0);
  a.merge(b);
  EXPECT_EQ(a.counter_value("n"), 3);
  EXPECT_DOUBLE_EQ(a.gauge("g").mean(), 2.0);
  EXPECT_EQ(a.histogram("h").count(), 2);

  const std::string json = a.to_json();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"n\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"samples\": 2"), std::string::npos);
  // Export is deterministic.
  EXPECT_EQ(json, a.to_json());
}

// ---- batcher ----------------------------------------------------------------

config::ConfigOp cell_op(const std::string& label, ClbCoord clb,
                         std::uint16_t lut) {
  config::ConfigOp op(label);
  fabric::LogicCellConfig cfg;
  cfg.used = true;
  cfg.lut = lut;
  op.write_cell(clb, 0, cfg);
  return op;
}

TEST(TransactionBatcher, CoalescesSharedColumns) {
  const auto geom = fabric::DeviceGeometry::tiny(8, 8);
  const config::BoundaryScanPort port;

  // Two identical fabrics: one batched, one op-at-a-time baseline.
  fabric::Fabric batched_fab(geom);
  fabric::Fabric plain_fab(geom);
  config::ConfigController batched_ctl(batched_fab, port, true);
  config::ConfigController plain_ctl(plain_fab, port, true);

  TransactionBatcher batcher(batched_ctl, BatchOptions{.max_ops = 8});

  // Four ops in the same CLB column: unbatched writes that column 4 times.
  std::vector<config::ConfigOp> ops;
  for (int r = 0; r < 4; ++r)
    ops.push_back(cell_op("op" + std::to_string(r), ClbCoord{r, 3},
                          static_cast<std::uint16_t>(0x1111 * (r + 1))));
  for (const auto& op : ops) {
    batcher.enqueue(op);
    plain_ctl.apply(op);
  }
  batcher.flush();

  const BatchStats& s = batcher.stats();
  EXPECT_EQ(s.ops_in, 4);
  EXPECT_EQ(s.transactions, 1);
  EXPECT_EQ(s.merged_ops(), 3);
  // The shared column is one transaction instead of four.
  EXPECT_EQ(s.column_writes, 1);
  EXPECT_EQ(s.unbatched_column_writes, 4);
  EXPECT_EQ(s.unbatched_column_writes, plain_ctl.totals().columns_touched);
  EXPECT_LT(s.frames_written, s.unbatched_frames);
  EXPECT_LT(s.time, s.unbatched_time);
  EXPECT_GT(s.saved(), SimTime::zero());

  // Coalescing must not change the fabric end state.
  const auto a = batched_fab.capture();
  const auto b = plain_fab.capture();
  ASSERT_EQ(a.clbs.size(), b.clbs.size());
  for (std::size_t i = 0; i < a.clbs.size(); ++i) EXPECT_EQ(a.clbs[i], b.clbs[i]);
}

TEST(TransactionBatcher, MaxOpsTriggersFlush) {
  const auto geom = fabric::DeviceGeometry::tiny(8, 8);
  const config::BoundaryScanPort port;
  fabric::Fabric fab(geom);
  config::ConfigController ctl(fab, port, true);
  TransactionBatcher batcher(ctl, BatchOptions{.max_ops = 2});

  for (int r = 0; r < 4; ++r)
    batcher.enqueue(cell_op("op", ClbCoord{r, 1},
                            static_cast<std::uint16_t>(r + 1)));
  EXPECT_EQ(batcher.stats().transactions, 2);  // two auto-flushes of 2 ops
  EXPECT_EQ(batcher.pending_ops(), 0);
}

TEST(TransactionBatcher, DisabledBatchingMatchesBaseline) {
  const auto geom = fabric::DeviceGeometry::tiny(8, 8);
  const config::BoundaryScanPort port;
  fabric::Fabric fab(geom);
  config::ConfigController ctl(fab, port, true);
  TransactionBatcher batcher(ctl, BatchOptions{.max_ops = 1});

  for (int r = 0; r < 3; ++r)
    batcher.enqueue(cell_op("op", ClbCoord{r, 2},
                            static_cast<std::uint16_t>(r + 1)));
  batcher.flush();
  const BatchStats& s = batcher.stats();
  EXPECT_EQ(s.transactions, 3);
  EXPECT_EQ(s.column_writes, s.unbatched_column_writes);
  EXPECT_EQ(s.frames_written, s.unbatched_frames);
  EXPECT_EQ(s.time, s.unbatched_time);
}

TEST(TransactionBatcher, MaxColumnsBoundsTransactionWidth) {
  const auto geom = fabric::DeviceGeometry::tiny(8, 8);
  const config::BoundaryScanPort port;
  fabric::Fabric fab(geom);
  config::ConfigController ctl(fab, port, true);
  TransactionBatcher batcher(ctl, BatchOptions{.max_ops = 8, .max_columns = 2});

  for (int c = 0; c < 4; ++c)
    batcher.enqueue(cell_op("op", ClbCoord{1, c},
                            static_cast<std::uint16_t>(c + 1)));
  batcher.flush();
  // Columns 0..3 with a 2-column cap: two transactions of 2 columns each.
  EXPECT_EQ(batcher.stats().transactions, 2);
  EXPECT_EQ(batcher.stats().column_writes, 4);
}

TEST(TransactionBatcher, LutRamOpsApplyAloneSoLegalityMatchesUnbatched) {
  const auto geom = fabric::DeviceGeometry::tiny(8, 8);
  const config::BoundaryScanPort port;
  fabric::Fabric fab(geom);
  config::ConfigController ctl(fab, port, true);
  TransactionBatcher batcher(ctl, BatchOptions{.max_ops = 8});

  // Op A creates a live LUT-RAM cell in column 3. Applied per-op, a later
  // op touching column 3 without rewriting that cell throws; coalescing
  // must not let it slip through, so RAM-writing ops apply alone.
  config::ConfigOp ram_op("ram");
  fabric::LogicCellConfig ram_cfg;
  ram_cfg.used = true;
  ram_cfg.lut_mode = fabric::LutMode::kRam;
  ram_op.write_cell(ClbCoord{1, 3}, 0, ram_cfg);
  batcher.enqueue(ram_op);
  EXPECT_EQ(batcher.pending_ops(), 0);  // applied immediately, alone
  EXPECT_EQ(batcher.stats().transactions, 1);

  // Touching the RAM's column without rewriting it throws at enqueue,
  // exactly where the per-op sequence would throw — a later op rewriting
  // the RAM cell must not retroactively legalise this one.
  EXPECT_THROW(batcher.enqueue(cell_op("b", ClbCoord{5, 3}, 0x00FF)),
               IllegalOperationError);

  // But once a pending op has rewritten the RAM cell to plain logic, a
  // subsequent op in the same batch may touch the column (the per-op
  // sequence would also allow it).
  batcher.enqueue(cell_op("clear-ram", ClbCoord{1, 3}, 0x1234));
  EXPECT_NO_THROW(batcher.enqueue(cell_op("b2", ClbCoord{5, 3}, 0x0F0F)));
  EXPECT_NO_THROW(batcher.flush());
}

// ---- dispatch policies ------------------------------------------------------

sched::TaskArrival task(const std::string& name, int side, double start_ms,
                        double duration_ms) {
  sched::TaskArrival t;
  t.fn.name = name;
  t.fn.height = side;
  t.fn.width = side;
  t.fn.duration = SimTime::ps(static_cast<std::int64_t>(duration_ms * 1e9));
  t.arrival = SimTime::ps(static_cast<std::int64_t>(start_ms * 1e9));
  return t;
}

FleetConfig small_fleet(int devices, DispatchPolicy dispatch) {
  FleetConfig cfg;
  cfg.devices = devices;
  cfg.rows = 12;
  cfg.cols = 12;
  cfg.dispatch = dispatch;
  cfg.threads = 1;
  return cfg;
}

TEST(FleetDispatch, RoundRobinCycles) {
  FleetManager fleet(small_fleet(3, DispatchPolicy::kRoundRobin));
  for (int i = 0; i < 7; ++i)
    fleet.submit(task("t" + std::to_string(i), 2, i, 10));
  const auto& a = fleet.dispatch();
  ASSERT_EQ(a.size(), 7u);
  for (int i = 0; i < 7; ++i) EXPECT_EQ(a[static_cast<std::size_t>(i)], i % 3);
}

TEST(FleetDispatch, LeastLoadedPrefersEmptiestDevice) {
  FleetManager fleet(small_fleet(2, DispatchPolicy::kLeastLoaded));
  // A long-running large task loads device 0, so the next two concurrent
  // tasks go to device 1, which stays emptier even after one lands there
  // (8x8=64 vs 4x4=16 CLBs outstanding).
  fleet.submit(task("big", 8, 0, 1000));
  fleet.submit(task("a", 4, 1, 1000));
  fleet.submit(task("b", 4, 2, 1000));
  const auto& a = fleet.dispatch();
  EXPECT_EQ(a[0], 0);  // empty fleet: lowest id wins
  EXPECT_EQ(a[1], 1);
  EXPECT_EQ(a[2], 1);
}

TEST(FleetDispatch, BestFitPicksTightestDevice) {
  FleetManager fleet(small_fleet(2, DispatchPolicy::kBestFit));
  // Load device 0 down to 144-100=44 estimated free CLBs. A 6x6=36 task
  // then tight-fits device 0 (slack 8) rather than the empty device 1
  // (slack 108); least-loaded would have picked device 1.
  fleet.submit(task("big", 10, 0, 1000));
  fleet.submit(task("tight", 6, 1, 1000));
  const auto& a = fleet.dispatch();
  EXPECT_EQ(a[0], 0);
  EXPECT_EQ(a[1], 0);

  FleetManager ll(small_fleet(2, DispatchPolicy::kLeastLoaded));
  ll.submit(task("big", 10, 0, 1000));
  ll.submit(task("tight", 6, 1, 1000));
  EXPECT_EQ(ll.dispatch()[1], 1);
}

TEST(FleetDispatch, ImpossibleRequestRejectedAtAdmission) {
  FleetManager fleet(small_fleet(2, DispatchPolicy::kRoundRobin));
  fleet.submit(task("huge", 13, 0, 10));  // 13 > 12-CLB grid
  fleet.submit(task("ok", 2, 0, 10));
  const auto& a = fleet.dispatch();
  EXPECT_EQ(a[0], -1);
  EXPECT_EQ(a[1], 0);
  const auto report = fleet.run();
  EXPECT_EQ(report.rejected, 1);
  EXPECT_EQ(report.completed, 1);
  EXPECT_EQ(report.aggregate.counter_value("admission_rejected"), 1);
}

TEST(FleetDispatch, OversubscribedFleetStillDispatches) {
  // The occupancy ledger has no capacity feedback, so estimated free CLBs
  // can go negative on every device; dispatch must still pick one
  // (regression: used to index ledger[-1]).
  for (auto policy : {DispatchPolicy::kLeastLoaded, DispatchPolicy::kBestFit}) {
    FleetManager fleet(small_fleet(2, policy));
    for (int i = 0; i < 60; ++i)
      fleet.submit(task("t" + std::to_string(i), 10, 0, 1000));
    const auto& a = fleet.dispatch();
    for (int d : a) EXPECT_GE(d, 0);
  }
}

// ---- fleet runs -------------------------------------------------------------

std::vector<sched::TaskArrival> workload(int n, std::uint64_t seed) {
  sched::RandomTaskParams p;
  p.task_count = n;
  p.max_side = 8;
  p.seed = seed;
  return sched::random_tasks(p);
}

TEST(Fleet, BatchingReducesTransactionsOnSameWorkload) {
  FleetConfig cfg = small_fleet(4, DispatchPolicy::kLeastLoaded);
  FleetConfig unbatched_cfg = cfg;
  unbatched_cfg.batch_config = false;

  FleetManager batched(cfg);
  FleetManager unbatched(unbatched_cfg);
  batched.submit_all(workload(120, 5));
  unbatched.submit_all(workload(120, 5));
  const auto rb = batched.run();
  const auto ru = unbatched.run();

  // Identical schedule either way (batching is config-port accounting).
  EXPECT_EQ(rb.completed, ru.completed);
  EXPECT_EQ(rb.makespan, ru.makespan);

  const auto txn = rb.aggregate.counter_value("config_transactions");
  const auto txn_baseline =
      rb.aggregate.counter_value("config_transactions_unbatched");
  EXPECT_LT(txn, txn_baseline);
  // The unbatched run's actual transactions equal the batched run's
  // baseline accounting: same workload, one op per transaction.
  EXPECT_EQ(ru.aggregate.counter_value("config_transactions"), txn_baseline);
  EXPECT_GT(rb.aggregate.counter_value("frames_written"), 0);
}

TEST(Fleet, SeededRunIsDeterministicAcrossThreadCounts) {
  FleetConfig cfg = small_fleet(4, DispatchPolicy::kBestFit);
  cfg.threads = 1;
  FleetConfig cfg4 = cfg;
  cfg4.threads = 4;

  FleetManager a(cfg);
  FleetManager b(cfg4);
  a.submit_all(workload(100, 42));
  b.submit_all(workload(100, 42));
  const std::string ja = a.run().to_json();
  const std::string jb = b.run().to_json();
  EXPECT_EQ(ja, jb);

  // And a different seed changes the run.
  FleetManager c(cfg);
  c.submit_all(workload(100, 43));
  EXPECT_NE(ja, c.run().to_json());
}

TEST(Fleet, SpreadsWorkAndReportsTelemetry) {
  FleetConfig cfg = small_fleet(4, DispatchPolicy::kLeastLoaded);
  FleetManager fleet(cfg);
  fleet.submit_all(workload(150, 9));
  const auto report = fleet.run();

  EXPECT_EQ(report.admitted, 150);
  EXPECT_EQ(report.completed + report.rejected, 150);
  EXPECT_GT(report.completed, 0);
  EXPECT_GT(report.throughput_tasks_per_s(), 0.0);
  ASSERT_EQ(report.devices.size(), 4u);
  for (const auto& d : report.devices) {
    EXPECT_GT(d.telemetry.counter_value("tasks_admitted"), 0)
        << "device " << d.device << " got no work";
  }
  // Histogram sample counts line up with completions.
  std::int64_t wait_samples = 0;
  for (const auto& d : report.devices)
    wait_samples += d.telemetry.has_histogram("queue_wait_ms")
                        ? d.telemetry.counter_value("tasks_completed")
                        : 0;
  EXPECT_EQ(wait_samples, report.completed);

  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"throughput_tasks_per_s\""), std::string::npos);
  EXPECT_NE(json.find("\"devices\": ["), std::string::npos);
}

TEST(Fleet, ApplicationChainsStayOnOneDevice) {
  FleetConfig cfg = small_fleet(3, DispatchPolicy::kRoundRobin);
  FleetManager fleet(cfg);
  sched::AppSpec app;
  app.name = "chain";
  for (int f = 0; f < 3; ++f) {
    sched::FunctionSpec fn;
    fn.name = "chain.f" + std::to_string(f);
    fn.height = fn.width = 3;
    fn.duration = SimTime::ms(5);
    app.functions.push_back(fn);
  }
  fleet.submit(app);
  const auto report = fleet.run();
  EXPECT_EQ(report.completed, 3);
  // All three functions ran on device 0 (round-robin, single request).
  EXPECT_EQ(report.devices[0].telemetry.counter_value("tasks_completed"), 3);
  EXPECT_EQ(report.devices[1].telemetry.counter_value("tasks_admitted"), 0);
}

}  // namespace
}  // namespace relogic::runtime
