// Unit tests: relogic::runtime (fleet manager, transaction batcher,
// telemetry).
#include <gtest/gtest.h>

#include "relogic/config/controller.hpp"
#include "relogic/config/port.hpp"
#include "relogic/fabric/fabric.hpp"
#include "relogic/runtime/batcher.hpp"
#include "relogic/runtime/fleet.hpp"
#include "relogic/runtime/telemetry.hpp"
#include "relogic/sched/workload.hpp"

namespace relogic::runtime {
namespace {

// ---- telemetry --------------------------------------------------------------

TEST(Telemetry, CounterAccumulates) {
  Telemetry t;
  t.counter("a").add();
  t.counter("a").add(41);
  EXPECT_EQ(t.counter_value("a"), 42);
  EXPECT_EQ(t.counter_value("missing"), 0);
}

TEST(Telemetry, HistogramBucketsAndStats) {
  Histogram h({1.0, 10.0, 100.0});
  h.observe(0.5);
  h.observe(1.0);   // on the boundary: falls in the <= 1.0 bucket
  h.observe(5.0);
  h.observe(50.0);
  h.observe(500.0);  // overflow
  EXPECT_EQ(h.count(), 5);
  EXPECT_DOUBLE_EQ(h.sum(), 556.5);
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 500.0);
  const auto& counts = h.bucket_counts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 2);
  EXPECT_EQ(counts[1], 1);
  EXPECT_EQ(counts[2], 1);
  EXPECT_EQ(counts[3], 1);
  // Quantiles: bucket upper bounds, capped by the observed max.
  EXPECT_DOUBLE_EQ(h.quantile(0.2), 1.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.6), 10.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 500.0);
}

TEST(Telemetry, HistogramMerge) {
  Histogram a({1.0, 10.0});
  Histogram b({1.0, 10.0});
  a.observe(0.5);
  b.observe(5.0);
  b.observe(20.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 3);
  EXPECT_DOUBLE_EQ(a.min(), 0.5);
  EXPECT_DOUBLE_EQ(a.max(), 20.0);
  Histogram c({2.0});
  EXPECT_THROW(a.merge(c), Error);
}

TEST(Telemetry, HostileMetricNamesProduceValidJson) {
  Telemetry t;
  t.counter("evil\nname\twith\x01" "ctl\"quote\\slash").add(1);
  t.gauge("g\r\f").set(2.0);
  t.histogram("h\x1f").observe(1.0);
  const std::string json = t.to_json();
  EXPECT_NE(json.find("\"evil\\nname\\twith\\u0001ctl\\\"quote\\\\slash\""),
            std::string::npos);
  EXPECT_NE(json.find("\"g\\r\\f\""), std::string::npos);
  EXPECT_NE(json.find("\"h\\u001f\""), std::string::npos);
  // No raw control characters survive into the document (newlines outside
  // strings are the formatter's own and allowed).
  EXPECT_EQ(json.find('\t'), std::string::npos);
  EXPECT_EQ(json.find('\x01'), std::string::npos);
  EXPECT_EQ(json.find('\r'), std::string::npos);
  EXPECT_EQ(json.find('\x1f'), std::string::npos);
}

TEST(Telemetry, GaugeSetAccumulates) {
  // `set` records a sample; it must NOT overwrite. Two samples on one
  // registry report the same mean/count as one sample on each of two
  // registries merged — the property the old last-write-wins broke.
  Gauge one;
  one.set(1.0);
  one.set(3.0);
  EXPECT_EQ(one.samples(), 2);
  EXPECT_DOUBLE_EQ(one.mean(), 2.0);

  Gauge a;
  Gauge b;
  a.set(1.0);
  b.set(3.0);
  a.merge(b);
  EXPECT_EQ(a.samples(), one.samples());
  EXPECT_DOUBLE_EQ(a.mean(), one.mean());
}

TEST(Telemetry, HistogramJsonCarriesP50P95P99) {
  Telemetry t;
  auto& h = t.histogram("lat", {1.0, 10.0, 100.0});
  for (int i = 0; i < 100; ++i) h.observe(i < 96 ? 5.0 : 50.0);
  const std::string json = t.to_json();
  EXPECT_NE(json.find("\"p50\": 10"), std::string::npos);
  EXPECT_NE(json.find("\"p90\": 10"), std::string::npos);
  EXPECT_NE(json.find("\"p95\": 10"), std::string::npos);
  EXPECT_NE(json.find("\"p99\": 50"), std::string::npos);  // capped by max
}

TEST(Telemetry, RegistryMergeAndJson) {
  Telemetry a;
  Telemetry b;
  a.counter("n").add(1);
  b.counter("n").add(2);
  a.gauge("g").set(1.0);
  b.gauge("g").set(3.0);
  a.histogram("h").observe(1.0);
  b.histogram("h").observe(2.0);
  a.merge(b);
  EXPECT_EQ(a.counter_value("n"), 3);
  EXPECT_DOUBLE_EQ(a.gauge("g").mean(), 2.0);
  EXPECT_EQ(a.histogram("h").count(), 2);

  const std::string json = a.to_json();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"n\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"samples\": 2"), std::string::npos);
  // Export is deterministic.
  EXPECT_EQ(json, a.to_json());
}

// ---- batcher ----------------------------------------------------------------

config::ConfigOp cell_op(const std::string& label, ClbCoord clb,
                         std::uint16_t lut) {
  config::ConfigOp op(label);
  fabric::LogicCellConfig cfg;
  cfg.used = true;
  cfg.lut = lut;
  op.write_cell(clb, 0, cfg);
  return op;
}

TEST(TransactionBatcher, CoalescesSharedColumns) {
  const auto geom = fabric::DeviceGeometry::tiny(8, 8);
  const config::BoundaryScanPort port;

  // Two identical fabrics: one batched, one op-at-a-time baseline.
  fabric::Fabric batched_fab(geom);
  fabric::Fabric plain_fab(geom);
  config::ConfigController batched_ctl(batched_fab, port, true);
  config::ConfigController plain_ctl(plain_fab, port, true);

  TransactionBatcher batcher(batched_ctl, BatchOptions{.max_ops = 8});

  // Four ops in the same CLB column: unbatched writes that column 4 times.
  std::vector<config::ConfigOp> ops;
  for (int r = 0; r < 4; ++r)
    ops.push_back(cell_op("op" + std::to_string(r), ClbCoord{r, 3},
                          static_cast<std::uint16_t>(0x1111 * (r + 1))));
  for (const auto& op : ops) {
    batcher.enqueue(op);
    plain_ctl.apply(op);
  }
  batcher.flush();

  const BatchStats& s = batcher.stats();
  EXPECT_EQ(s.ops_in, 4);
  EXPECT_EQ(s.transactions, 1);
  EXPECT_EQ(s.merged_ops(), 3);
  // The shared column is one transaction instead of four.
  EXPECT_EQ(s.column_writes, 1);
  EXPECT_EQ(s.unbatched_column_writes, 4);
  EXPECT_EQ(s.unbatched_column_writes, plain_ctl.totals().columns_touched);
  EXPECT_LT(s.frames_written, s.unbatched_frames);
  EXPECT_LT(s.time, s.unbatched_time);
  EXPECT_GT(s.saved(), SimTime::zero());

  // Coalescing must not change the fabric end state.
  const auto a = batched_fab.capture();
  const auto b = plain_fab.capture();
  ASSERT_EQ(a.clbs.size(), b.clbs.size());
  for (std::size_t i = 0; i < a.clbs.size(); ++i) EXPECT_EQ(a.clbs[i], b.clbs[i]);
}

TEST(TransactionBatcher, MaxOpsTriggersFlush) {
  const auto geom = fabric::DeviceGeometry::tiny(8, 8);
  const config::BoundaryScanPort port;
  fabric::Fabric fab(geom);
  config::ConfigController ctl(fab, port, true);
  TransactionBatcher batcher(ctl, BatchOptions{.max_ops = 2});

  for (int r = 0; r < 4; ++r)
    batcher.enqueue(cell_op("op", ClbCoord{r, 1},
                            static_cast<std::uint16_t>(r + 1)));
  EXPECT_EQ(batcher.stats().transactions, 2);  // two auto-flushes of 2 ops
  EXPECT_EQ(batcher.pending_ops(), 0);
}

TEST(TransactionBatcher, DisabledBatchingMatchesBaseline) {
  const auto geom = fabric::DeviceGeometry::tiny(8, 8);
  const config::BoundaryScanPort port;
  fabric::Fabric fab(geom);
  config::ConfigController ctl(fab, port, true);
  TransactionBatcher batcher(ctl, BatchOptions{.max_ops = 1});

  for (int r = 0; r < 3; ++r)
    batcher.enqueue(cell_op("op", ClbCoord{r, 2},
                            static_cast<std::uint16_t>(r + 1)));
  batcher.flush();
  const BatchStats& s = batcher.stats();
  EXPECT_EQ(s.transactions, 3);
  EXPECT_EQ(s.column_writes, s.unbatched_column_writes);
  EXPECT_EQ(s.frames_written, s.unbatched_frames);
  EXPECT_EQ(s.time, s.unbatched_time);
}

TEST(TransactionBatcher, MaxColumnsBoundsTransactionWidth) {
  const auto geom = fabric::DeviceGeometry::tiny(8, 8);
  const config::BoundaryScanPort port;
  fabric::Fabric fab(geom);
  config::ConfigController ctl(fab, port, true);
  TransactionBatcher batcher(ctl, BatchOptions{.max_ops = 8, .max_columns = 2});

  for (int c = 0; c < 4; ++c)
    batcher.enqueue(cell_op("op", ClbCoord{1, c},
                            static_cast<std::uint16_t>(c + 1)));
  batcher.flush();
  // Columns 0..3 with a 2-column cap: two transactions of 2 columns each.
  EXPECT_EQ(batcher.stats().transactions, 2);
  EXPECT_EQ(batcher.stats().column_writes, 4);
}

TEST(TransactionBatcher, LutRamOpsApplyAloneSoLegalityMatchesUnbatched) {
  const auto geom = fabric::DeviceGeometry::tiny(8, 8);
  const config::BoundaryScanPort port;
  fabric::Fabric fab(geom);
  config::ConfigController ctl(fab, port, true);
  TransactionBatcher batcher(ctl, BatchOptions{.max_ops = 8});

  // Op A creates a live LUT-RAM cell in column 3. Applied per-op, a later
  // op touching column 3 without rewriting that cell throws; coalescing
  // must not let it slip through, so RAM-writing ops apply alone.
  config::ConfigOp ram_op("ram");
  fabric::LogicCellConfig ram_cfg;
  ram_cfg.used = true;
  ram_cfg.lut_mode = fabric::LutMode::kRam;
  ram_op.write_cell(ClbCoord{1, 3}, 0, ram_cfg);
  batcher.enqueue(ram_op);
  EXPECT_EQ(batcher.pending_ops(), 0);  // applied immediately, alone
  EXPECT_EQ(batcher.stats().transactions, 1);

  // Touching the RAM's column without rewriting it throws at enqueue,
  // exactly where the per-op sequence would throw — a later op rewriting
  // the RAM cell must not retroactively legalise this one.
  EXPECT_THROW(batcher.enqueue(cell_op("b", ClbCoord{5, 3}, 0x00FF)),
               IllegalOperationError);

  // But once a pending op has rewritten the RAM cell to plain logic, a
  // subsequent op in the same batch may touch the column (the per-op
  // sequence would also allow it).
  batcher.enqueue(cell_op("clear-ram", ClbCoord{1, 3}, 0x1234));
  EXPECT_NO_THROW(batcher.enqueue(cell_op("b2", ClbCoord{5, 3}, 0x0F0F)));
  EXPECT_NO_THROW(batcher.flush());
}

// ---- dispatch policies ------------------------------------------------------

sched::TaskArrival task(const std::string& name, int side, double start_ms,
                        double duration_ms) {
  sched::TaskArrival t;
  t.fn.name = name;
  t.fn.height = side;
  t.fn.width = side;
  t.fn.duration = SimTime::ps(static_cast<std::int64_t>(duration_ms * 1e9));
  t.arrival = SimTime::ps(static_cast<std::int64_t>(start_ms * 1e9));
  return t;
}

FleetConfig small_fleet(int devices, DispatchPolicy dispatch) {
  FleetConfig cfg;
  cfg.devices = devices;
  cfg.rows = 12;
  cfg.cols = 12;
  cfg.dispatch = dispatch;
  cfg.threads = 1;
  return cfg;
}

TEST(FleetDispatch, RoundRobinCycles) {
  FleetManager fleet(small_fleet(3, DispatchPolicy::kRoundRobin));
  for (int i = 0; i < 7; ++i)
    fleet.submit(task("t" + std::to_string(i), 2, i, 10));
  const auto& a = fleet.dispatch();
  ASSERT_EQ(a.size(), 7u);
  for (int i = 0; i < 7; ++i) EXPECT_EQ(a[static_cast<std::size_t>(i)], i % 3);
}

TEST(FleetDispatch, LeastLoadedPrefersEmptiestDevice) {
  FleetManager fleet(small_fleet(2, DispatchPolicy::kLeastLoaded));
  // A long-running large task loads device 0, so the next two concurrent
  // tasks go to device 1, which stays emptier even after one lands there
  // (8x8=64 vs 4x4=16 CLBs outstanding).
  fleet.submit(task("big", 8, 0, 1000));
  fleet.submit(task("a", 4, 1, 1000));
  fleet.submit(task("b", 4, 2, 1000));
  const auto& a = fleet.dispatch();
  EXPECT_EQ(a[0], 0);  // empty fleet: lowest id wins
  EXPECT_EQ(a[1], 1);
  EXPECT_EQ(a[2], 1);
}

TEST(FleetDispatch, BestFitPicksTightestDevice) {
  FleetManager fleet(small_fleet(2, DispatchPolicy::kBestFit));
  // Load device 0 down to 144-100=44 estimated free CLBs. A 6x6=36 task
  // then tight-fits device 0 (slack 8) rather than the empty device 1
  // (slack 108); least-loaded would have picked device 1.
  fleet.submit(task("big", 10, 0, 1000));
  fleet.submit(task("tight", 6, 1, 1000));
  const auto& a = fleet.dispatch();
  EXPECT_EQ(a[0], 0);
  EXPECT_EQ(a[1], 0);

  FleetManager ll(small_fleet(2, DispatchPolicy::kLeastLoaded));
  ll.submit(task("big", 10, 0, 1000));
  ll.submit(task("tight", 6, 1, 1000));
  EXPECT_EQ(ll.dispatch()[1], 1);
}

TEST(FleetDispatch, BestFitFallsBackToLeastLoadedWhenNoSlack) {
  FleetManager fleet(small_fleet(2, DispatchPolicy::kBestFit));
  fleet.submit(task("big0", 11, 0, 1000));  // ties -> d0; d0 free drops to 23
  fleet.submit(task("big1", 10, 1, 1000));  // d0 slack < 0 -> d1 (slack 44)
  // 7x7 = 49 CLBs: no device has non-negative slack, so best-fit falls
  // back to least-loaded, which prefers d1 (44 free vs 23).
  fleet.submit(task("wide", 7, 2, 1000));
  const auto& a = fleet.dispatch();
  EXPECT_EQ(a[0], 0);
  EXPECT_EQ(a[1], 1);
  EXPECT_EQ(a[2], 1);
}

TEST(FleetDispatch, LeastLoadedRanksNegativeFreeCorrectly) {
  // Five 11x11 = 121-CLB requests on two 144-CLB devices: estimated free
  // goes negative, and the ranking must still prefer the less-negative
  // device instead of collapsing onto one.
  FleetManager fleet(small_fleet(2, DispatchPolicy::kLeastLoaded));
  for (int i = 0; i < 5; ++i)
    fleet.submit(task("t" + std::to_string(i), 11, i, 1000));
  EXPECT_EQ(fleet.dispatch(), (std::vector<int>{0, 1, 0, 1, 0}));
}

TEST(FleetDispatch, RoundRobinSkipsInfeasibleWithoutBurningSlot) {
  FleetManager fleet(small_fleet(3, DispatchPolicy::kRoundRobin));
  fleet.submit(task("a", 2, 0, 10));
  fleet.submit(task("huge", 13, 1, 10));  // 13 > 12-CLB grid
  fleet.submit(task("b", 2, 2, 10));
  fleet.submit(task("c", 2, 3, 10));
  const auto& a = fleet.dispatch();
  ASSERT_EQ(a.size(), 4u);
  EXPECT_EQ(a[0], 0);
  EXPECT_EQ(a[1], -1);
  EXPECT_EQ(a[2], 1);  // the rejection did not advance the cycle
  EXPECT_EQ(a[3], 2);
}

TEST(FleetDispatch, OnlineAdmissionIsIncremental) {
  FleetManager fleet(small_fleet(2, DispatchPolicy::kRoundRobin));
  fleet.submit(task("a", 2, 0, 10));
  const std::vector<int> first = fleet.dispatch();
  EXPECT_EQ(first, (std::vector<int>{0}));
  fleet.submit(task("b", 2, 1, 10));
  const auto& second = fleet.dispatch();
  ASSERT_EQ(second.size(), 2u);
  EXPECT_EQ(second[0], 0);  // earlier placement never recomputed
  EXPECT_EQ(second[1], 1);  // round-robin resumes where it left off
  const auto report = fleet.run();
  EXPECT_EQ(report.completed, 2);
}

TEST(FleetDispatch, OnlineQueueEstimatesDivertLateArrivals) {
  // Both modes walk the same arrival order, and both reclaim departed
  // capacity — the online ledger additionally folds estimated on-device
  // queueing into each entry. Task "c" ties onto device 0 behind "a", so
  // online books it as busy until ~20 ms; the offline (PR 1) planner books
  // it at its arrival (2–12 ms). A task arriving at 13 ms therefore lands
  // on device 1 online, but back on device 0 offline.
  for (const auto mode : {AdmissionMode::kOnline, AdmissionMode::kOffline}) {
    FleetConfig cfg = small_fleet(2, DispatchPolicy::kLeastLoaded);
    cfg.rows = cfg.cols = 8;
    cfg.admission = mode;
    FleetManager fleet(cfg);
    fleet.submit(task("a", 8, 0, 10));
    fleet.submit(task("b", 8, 1, 10));
    fleet.submit(task("c", 8, 2, 10));
    fleet.submit(task("late", 8, 13, 10));
    const bool online = mode == AdmissionMode::kOnline;
    EXPECT_EQ(fleet.dispatch(),
              (std::vector<int>{0, 1, 0, online ? 1 : 0}))
        << to_string(mode);
  }
}

TEST(FleetDispatch, RebalancerMigratesQueuedRequestOffBackloggedDevice) {
  // Three full-device tasks on two 8x8 devices: "c" lands on device 0
  // behind "a" (est_start 100 ms, queued-but-not-started). With device 0's
  // backlog (~148 ms) over the threshold and device 1 strictly less loaded,
  // the rebalancer migrates "c"; with rebalancing off it stays put.
  auto dispatch_with = [&](double threshold) {
    FleetConfig cfg = small_fleet(2, DispatchPolicy::kLeastLoaded);
    cfg.rows = cfg.cols = 8;
    cfg.rebalance_backlog_ms = threshold;
    FleetManager fleet(cfg);
    fleet.submit(task("a", 8, 0, 100));
    fleet.submit(task("b", 8, 1, 60));
    fleet.submit(task("c", 8, 2, 50));
    std::vector<int> a = fleet.dispatch();
    return std::pair{a, fleet.rebalanced_requests()};
  };

  const auto [off, off_moves] = dispatch_with(0.0);
  EXPECT_EQ(off, (std::vector<int>{0, 1, 0}));
  EXPECT_EQ(off_moves, 0);

  const auto [on, on_moves] = dispatch_with(120.0);
  EXPECT_EQ(on, (std::vector<int>{0, 1, 1}));
  EXPECT_EQ(on_moves, 1);

  // And the full run reports the migration in every telemetry surface.
  FleetConfig cfg = small_fleet(2, DispatchPolicy::kLeastLoaded);
  cfg.rows = cfg.cols = 8;
  cfg.rebalance_backlog_ms = 120.0;
  FleetManager fleet(cfg);
  fleet.submit(task("a", 8, 0, 100));
  fleet.submit(task("b", 8, 1, 60));
  fleet.submit(task("c", 8, 2, 50));
  const auto report = fleet.run();
  EXPECT_EQ(report.rebalanced, 1);
  EXPECT_EQ(report.aggregate.counter_value("rebalanced_requests"), 1);
  EXPECT_NE(report.to_json().find("\"rebalanced\": 1"), std::string::npos);
  EXPECT_EQ(report.completed, 3);
}

TEST(FleetDispatch, ImpossibleRequestRejectedAtAdmission) {
  FleetManager fleet(small_fleet(2, DispatchPolicy::kRoundRobin));
  fleet.submit(task("huge", 13, 0, 10));  // 13 > 12-CLB grid
  fleet.submit(task("ok", 2, 0, 10));
  const auto& a = fleet.dispatch();
  EXPECT_EQ(a[0], -1);
  EXPECT_EQ(a[1], 0);
  const auto report = fleet.run();
  EXPECT_EQ(report.rejected, 1);
  EXPECT_EQ(report.completed, 1);
  EXPECT_EQ(report.aggregate.counter_value("admission_rejected"), 1);
}

TEST(FleetDispatch, OversubscribedFleetStillDispatches) {
  // The occupancy ledger has no capacity feedback, so estimated free CLBs
  // can go negative on every device; dispatch must still pick one
  // (regression: used to index ledger[-1]).
  for (auto policy : {DispatchPolicy::kLeastLoaded, DispatchPolicy::kBestFit}) {
    FleetManager fleet(small_fleet(2, policy));
    for (int i = 0; i < 60; ++i)
      fleet.submit(task("t" + std::to_string(i), 10, 0, 1000));
    const auto& a = fleet.dispatch();
    for (int d : a) EXPECT_GE(d, 0);
  }
}

// ---- fleet runs -------------------------------------------------------------

std::vector<sched::TaskArrival> workload(int n, std::uint64_t seed) {
  sched::RandomTaskParams p;
  p.task_count = n;
  p.max_side = 8;
  p.seed = seed;
  return sched::random_tasks(p);
}

TEST(Fleet, BatchingReducesTransactionsOnSameWorkload) {
  FleetConfig cfg = small_fleet(4, DispatchPolicy::kLeastLoaded);
  FleetConfig unbatched_cfg = cfg;
  unbatched_cfg.batch_config = false;

  FleetManager batched(cfg);
  FleetManager unbatched(unbatched_cfg);
  batched.submit_all(workload(120, 5));
  unbatched.submit_all(workload(120, 5));
  const auto rb = batched.run();
  const auto ru = unbatched.run();

  // Identical schedule either way (batching is config-port accounting).
  EXPECT_EQ(rb.completed, ru.completed);
  EXPECT_EQ(rb.makespan, ru.makespan);

  const auto txn = rb.aggregate.counter_value("config_transactions");
  const auto txn_baseline =
      rb.aggregate.counter_value("config_transactions_unbatched");
  EXPECT_LT(txn, txn_baseline);
  // The unbatched run's actual transactions equal the batched run's
  // baseline accounting: same workload, one op per transaction.
  EXPECT_EQ(ru.aggregate.counter_value("config_transactions"), txn_baseline);
  EXPECT_GT(rb.aggregate.counter_value("frame_writes"), 0);
}

TEST(Fleet, SeededRunIsDeterministicAcrossThreadCounts) {
  FleetConfig cfg = small_fleet(4, DispatchPolicy::kBestFit);
  cfg.threads = 1;
  FleetConfig cfg4 = cfg;
  cfg4.threads = 4;

  FleetManager a(cfg);
  FleetManager b(cfg4);
  a.submit_all(workload(100, 42));
  b.submit_all(workload(100, 42));
  const std::string ja = a.run().to_json();
  const std::string jb = b.run().to_json();
  EXPECT_EQ(ja, jb);

  // And a different seed changes the run.
  FleetManager c(cfg);
  c.submit_all(workload(100, 43));
  EXPECT_NE(ja, c.run().to_json());
}

TEST(Fleet, SpreadsWorkAndReportsTelemetry) {
  FleetConfig cfg = small_fleet(4, DispatchPolicy::kLeastLoaded);
  FleetManager fleet(cfg);
  fleet.submit_all(workload(150, 9));
  const auto report = fleet.run();

  EXPECT_EQ(report.admitted, 150);
  EXPECT_EQ(report.completed + report.rejected, 150);
  EXPECT_GT(report.completed, 0);
  EXPECT_GT(report.throughput_tasks_per_s(), 0.0);
  ASSERT_EQ(report.devices.size(), 4u);
  for (const auto& d : report.devices) {
    EXPECT_GT(d.telemetry.counter_value("tasks_admitted"), 0)
        << "device " << d.device << " got no work";
  }
  // Histogram sample counts line up with completions.
  std::int64_t wait_samples = 0;
  for (const auto& d : report.devices)
    wait_samples += d.telemetry.has_histogram("queue_wait_ms")
                        ? d.telemetry.counter_value("tasks_completed")
                        : 0;
  EXPECT_EQ(wait_samples, report.completed);

  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"throughput_tasks_per_s\""), std::string::npos);
  EXPECT_NE(json.find("\"devices\": ["), std::string::npos);
}

TEST(Fleet, ConfigTransactionCountersMatchBatcherStats) {
  FleetConfig cfg = small_fleet(3, DispatchPolicy::kLeastLoaded);
  FleetManager fleet(cfg);
  fleet.submit_all(workload(100, 7));
  const auto report = fleet.run();

  std::int64_t txn = 0, txn_unbatched = 0;
  for (const auto& d : report.devices) {
    // The transaction counters carry the batcher's transaction stats — not
    // column writes, which have their own counters (regression: these used
    // to be fed column_writes / unbatched_column_writes).
    EXPECT_EQ(d.telemetry.counter_value("config_transactions"),
              d.batch.transactions);
    EXPECT_EQ(d.telemetry.counter_value("config_transactions_unbatched"),
              d.batch.ops_in);
    EXPECT_EQ(d.telemetry.counter_value("column_writes"),
              d.batch.column_writes);
    EXPECT_EQ(d.telemetry.counter_value("column_writes_unbatched"),
              d.batch.unbatched_column_writes);
    // batched <= unbatched, for transactions and for port time.
    EXPECT_LE(d.batch.transactions, d.batch.ops_in);
    EXPECT_LE(d.batch.column_writes, d.batch.unbatched_column_writes);
    EXPECT_LE(d.batch.time, d.batch.unbatched_time);
    txn += d.batch.transactions;
    txn_unbatched += d.batch.ops_in;
  }
  EXPECT_GT(txn, 0);
  EXPECT_LE(txn, txn_unbatched);
  EXPECT_EQ(report.aggregate.counter_value("config_transactions"), txn);
  EXPECT_EQ(report.aggregate.counter_value("config_transactions_unbatched"),
            txn_unbatched);

  // The JSON totals agree with the counters.
  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"config_transactions\": " + std::to_string(txn)),
            std::string::npos);
  EXPECT_NE(json.find("\"config_transactions_unbatched\": " +
                      std::to_string(txn_unbatched)),
            std::string::npos);
}

TEST(Fleet, KernelBackendSelectedAndEchoedInJson) {
  // An explicit kernel name flows into every device's controller and is
  // echoed verbatim in the JSON header; the default config echoes the
  // resolved process default's name. Unknown names fail at construction.
  FleetConfig cfg = small_fleet(2, DispatchPolicy::kLeastLoaded);
  cfg.kernel = "serial";
  FleetManager fleet(cfg);
  fleet.submit_all(workload(20, 3));
  const auto serial_report = fleet.run();
  EXPECT_NE(serial_report.to_json().find("\"kernel\": \"serial\""),
            std::string::npos);

  FleetConfig dcfg = small_fleet(2, DispatchPolicy::kLeastLoaded);
  FleetManager dfleet(dcfg);
  dfleet.submit_all(workload(20, 3));
  const auto default_report = dfleet.run();
  EXPECT_NE(default_report.to_json().find(
                "\"kernel\": \"" + config::default_kernel_backend().name() +
                "\""),
            std::string::npos);

  // Backend byte-identity reaches the fleet plane: the serial-reference
  // run and the default (vectorized) run replay identical configuration
  // traffic — same transactions, frames, columns, and port time.
  ASSERT_EQ(serial_report.devices.size(), default_report.devices.size());
  for (std::size_t i = 0; i < serial_report.devices.size(); ++i) {
    const auto& a = serial_report.devices[i].batch;
    const auto& b = default_report.devices[i].batch;
    EXPECT_EQ(a.transactions, b.transactions);
    EXPECT_EQ(a.frames_written, b.frames_written);
    EXPECT_EQ(a.frames_skipped, b.frames_skipped);
    EXPECT_EQ(a.column_writes, b.column_writes);
    EXPECT_EQ(a.time, b.time);
  }

  FleetConfig bad = small_fleet(1, DispatchPolicy::kLeastLoaded);
  bad.kernel = "avx9000";
  EXPECT_THROW(FleetManager{bad}, ContractError);
}

TEST(Fleet, AdmittedCompletedRejectedIdentity) {
  // One geometrically-impossible request (admission reject) plus an
  // overload of full-device tasks with a short queue timeout (device
  // rejects): the chosen counting identity must hold —
  //   admitted == completed + rejected - admission_rejected.
  FleetConfig cfg = small_fleet(2, DispatchPolicy::kLeastLoaded);
  cfg.rows = cfg.cols = 8;
  cfg.sched.max_wait = SimTime::ms(3);
  FleetManager fleet(cfg);
  fleet.submit(task("impossible", 9, 0, 10));
  for (int i = 0; i < 12; ++i)
    fleet.submit(task("t" + std::to_string(i), 8, 0.1 * i, 50));
  const auto report = fleet.run();

  const auto adm_rej = report.aggregate.counter_value("admission_rejected");
  EXPECT_EQ(adm_rej, 1);
  EXPECT_GT(report.rejected, adm_rej);  // device-level rejects did happen
  EXPECT_EQ(report.admitted, report.completed + report.rejected - adm_rej);
  // Aggregate counters implement the same definition: tasks_admitted is
  // what dispatch handed to devices (device rejects included), so it
  // equals tasks_completed + tasks_rejected.
  EXPECT_EQ(report.aggregate.counter_value("tasks_admitted"), report.admitted);
  EXPECT_EQ(report.aggregate.counter_value("tasks_completed"),
            report.completed);
  EXPECT_EQ(report.aggregate.counter_value("tasks_rejected"),
            report.rejected - adm_rej);
}

TEST(Fleet, OnlineRebalancingRunIsDeterministic) {
  sched::WorkloadParams wp;
  wp.pattern = sched::ArrivalPattern::kBursty;
  wp.task_count = 120;
  wp.mean_interarrival_ms = 0.8;
  wp.seed = 11;
  const auto trace = sched::WorkloadGenerator(wp).generate();

  FleetConfig cfg = small_fleet(4, DispatchPolicy::kLeastLoaded);
  cfg.rebalance_backlog_ms = 80.0;
  FleetConfig cfg4 = cfg;
  cfg4.threads = 4;

  FleetManager a(cfg);
  FleetManager b(cfg4);
  a.submit_all(trace);
  b.submit_all(trace);
  const auto ra = a.run();
  EXPECT_GT(ra.rebalanced, 0);
  EXPECT_EQ(ra.to_json(), b.run().to_json());
}

TEST(Fleet, ApplicationChainsStayOnOneDevice) {
  FleetConfig cfg = small_fleet(3, DispatchPolicy::kRoundRobin);
  FleetManager fleet(cfg);
  sched::AppSpec app;
  app.name = "chain";
  for (int f = 0; f < 3; ++f) {
    sched::FunctionSpec fn;
    fn.name = "chain.f" + std::to_string(f);
    fn.height = fn.width = 3;
    fn.duration = SimTime::ms(5);
    app.functions.push_back(fn);
  }
  fleet.submit(app);
  const auto report = fleet.run();
  EXPECT_EQ(report.completed, 3);
  // All three functions ran on device 0 (round-robin, single request).
  EXPECT_EQ(report.devices[0].telemetry.counter_value("tasks_completed"), 3);
  EXPECT_EQ(report.devices[1].telemetry.counter_value("tasks_admitted"), 0);
}

}  // namespace
}  // namespace relogic::runtime
