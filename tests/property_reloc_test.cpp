// Property tests: the paper's invariants under randomized circuits,
// stimuli and relocation sequences — plus failure injection proving the
// checkers are not vacuous.
#include <gtest/gtest.h>

#include "relogic/config/controller.hpp"
#include "relogic/config/port.hpp"
#include "relogic/netlist/benchmarks.hpp"
#include "relogic/place/implement.hpp"
#include "relogic/reloc/engine.hpp"
#include "relogic/sim/harness.hpp"
#include "testenv.hpp"

namespace relogic {
namespace {

using netlist::bench::ClockingStyle;
using place::CellSite;

struct Rig {
  fabric::Fabric fab;
  fabric::DelayModel dm;
  config::BoundaryScanPort port;
  config::ConfigController controller;
  sim::FabricSim sim;
  place::Implementer implementer;
  place::Router router;
  reloc::RelocationEngine engine;

  explicit Rig(int size = 14)
      : fab(fabric::DeviceGeometry::tiny(size, size)),
        controller(fab, port, true),
        sim(fab, dm),
        implementer(fab, dm),
        router(fab, dm),
        engine(controller, router, &sim) {
    sim.add_clock(sim::ClockSpec{});
  }
};

struct Param {
  std::uint64_t seed;
  ClockingStyle style;
};

class RandomWalkReloc : public ::testing::TestWithParam<Param> {};

// The central property: any sequence of cell relocations of a random FSM,
// interleaved with random stimuli, keeps the fabric in lockstep with the
// golden model — no state loss, no glitches, no drive conflicts, valid
// nets after every step.
TEST_P(RandomWalkReloc, LockstepThroughRandomMoves) {
  const auto [seed, style] = GetParam();
  Rig rig;
  const auto nl =
      netlist::bench::random_fsm("walk", 8, 3, 3, seed, style);
  const auto mapped = netlist::map_netlist(nl);
  place::ImplementOptions opts;
  opts.region = place::suggest_region(mapped, {2, 2}, rig.fab.geometry());
  auto impl = rig.implementer.implement(mapped, opts);

  sim::CircuitHarness harness(rig.sim, nl, impl);
  harness.watch_registered_outputs();
  Rng rng(seed * 31 + 7);

  for (int i = 0; i < 5; ++i)
    ASSERT_TRUE(harness.step_random(rng).ok())
        << harness.mismatch_log().back();

  // Random walk: relocations of random cells to random free sites (6 in
  // the full campaign, 4 in smoke mode).
  for (int move = 0; move < testenv::iters(4, 6); ++move) {
    const int cell = rng.next_int(0, impl.cell_count() - 1);
    // Find a random free destination.
    CellSite dest{};
    int guard = 0;
    do {
      dest = CellSite{ClbCoord{rng.next_int(0, 13), rng.next_int(0, 13)},
                      rng.next_int(0, 3)};
      RELOGIC_CHECK(++guard < 500);
    } while (rig.fab.cell(dest.clb, dest.cell).used ||
             !rig.fab.clb_free(dest.clb));  // keep whole CLB free: aux room

    const auto report = rig.engine.relocate_cell(impl, cell, dest);
    EXPECT_GT(report.frames_written, 0);

    for (int i = 0; i < 3; ++i)
      ASSERT_TRUE(harness.step_random(rng).ok())
          << "after move " << move << ": " << harness.mismatch_log().back();
  }
  EXPECT_TRUE(rig.sim.monitor().clean());
  // Fabric bookkeeping stayed exact.
  for (const auto& [sig, net] : impl.signal_nets) {
    if (rig.fab.net_exists(net)) rig.fab.validate_net(net);
  }
}

std::vector<Param> walk_params() {
  std::vector<Param> out;
  // Two seeds in the default smoke mode; RELOGIC_SLOW_TESTS=ON walks all
  // four.
  const auto seeds = testenv::slow_tests_enabled()
                         ? std::vector<std::uint64_t>{11, 22, 33, 44}
                         : std::vector<std::uint64_t>{11, 22};
  for (std::uint64_t seed : seeds) {
    out.push_back({seed, ClockingStyle::kFreeRunning});
    out.push_back({seed, ClockingStyle::kGatedClock});
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomWalkReloc,
                         ::testing::ValuesIn(walk_params()),
                         [](const auto& pinfo) {
                           return std::string(pinfo.param.style ==
                                                      ClockingStyle::kFreeRunning
                                                  ? "Free"
                                                  : "Gated") +
                                  std::to_string(pinfo.param.seed);
                         });

// Property: relocation is idempotent on function behaviour — moving a
// function away and back yields an identical golden trace to never moving.
TEST(RelocRoundTrip, MoveAwayAndBack) {
  Rig rig;
  const auto nl = netlist::bench::gray_counter(4);
  const auto mapped = netlist::map_netlist(nl);
  place::ImplementOptions opts;
  opts.region = ClbRect{2, 2, 3, 3};
  auto impl = rig.implementer.implement(mapped, opts);
  sim::CircuitHarness harness(rig.sim, nl, impl);

  for (int i = 0; i < 7; ++i) ASSERT_TRUE(harness.step({}).ok());
  rig.engine.relocate_function(impl, ClbRect{9, 9, 3, 3});
  for (int i = 0; i < 7; ++i) ASSERT_TRUE(harness.step({}).ok());
  rig.engine.relocate_function(impl, ClbRect{2, 2, 3, 3});
  for (int i = 0; i < 7; ++i) ASSERT_TRUE(harness.step({}).ok());
  EXPECT_EQ(impl.region, (ClbRect{2, 2, 3, 3}));
  EXPECT_TRUE(rig.sim.monitor().clean());
}

// ---- failure injection: the checkers must actually detect faults --------

TEST(FailureInjection, CorruptedReplicaStateIsDetected) {
  // Flip a FF's configured init and rewrite its cell mid-operation (a
  // model of a configuration upset): the harness must notice.
  Rig rig;
  const auto nl = netlist::bench::counter(4);
  const auto mapped = netlist::map_netlist(nl);
  place::ImplementOptions opts;
  opts.region = place::suggest_region(mapped, {2, 2}, rig.fab.geometry());
  auto impl = rig.implementer.implement(mapped, opts);
  sim::CircuitHarness harness(rig.sim, nl, impl);
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(harness.step({}).ok());

  // Corrupt: invert the LUT of the counter's bit-0 cell.
  const auto site = impl.sites[0];
  auto cfg = rig.fab.cell(site.clb, site.cell);
  cfg.lut = static_cast<std::uint16_t>(~cfg.lut);
  rig.fab.set_cell_config(site.clb, site.cell, cfg);

  bool detected = false;
  for (int i = 0; i < 4; ++i) {
    if (!harness.step({}).ok()) detected = true;
  }
  EXPECT_TRUE(detected);
}

TEST(FailureInjection, DriveConflictIsDetected) {
  // Parallel two cells computing *different* functions onto one net: the
  // coherence checker must flag it at the next clock edge.
  Rig rig;
  const auto& g = rig.fab.graph();
  rig.fab.set_cell_config({2, 2}, 0, fabric::LogicCellConfig::constant(true));
  rig.fab.set_cell_config({2, 3}, 0,
                          fabric::LogicCellConfig::constant(false));
  const auto net = rig.fab.create_net("bad-parallel");
  rig.fab.attach_source(net, g.out_pin({2, 2}, 0, false));
  rig.fab.attach_source(net, g.out_pin({2, 3}, 0, false));
  rig.sim.run_cycles(2);
  EXPECT_GT(rig.sim.monitor().count(sim::ViolationKind::kDriveConflict), 0);
}

TEST(FailureInjection, BrokenNetFailsValidation) {
  // Remove a trunk edge behind the engine's back: validate_net throws.
  Rig rig;
  const auto nl = netlist::bench::counter(3);
  auto impl = rig.implementer.implement(
      netlist::map_netlist(nl),
      place::ImplementOptions{
          place::suggest_region(netlist::map_netlist(nl), {2, 2},
                                rig.fab.geometry()),
          0,
          {},
          {}});
  // Pick a net with at least two edges and amputate its first edge.
  for (const auto& [sig, net] : impl.signal_nets) {
    const auto& tree = rig.fab.net(net);
    if (tree.edges.size() < 2) continue;
    // Removing the source-adjacent edge leaves a dangling downstream edge
    // unless the whole branch is pruned — which this deliberately skips.
    const auto first = tree.edges.front();
    bool downstream_exists = false;
    for (const auto& e : tree.edges)
      if (e.from == first.to) downstream_exists = true;
    if (!downstream_exists) continue;
    rig.fab.remove_edge(net, first);
    EXPECT_THROW(rig.fab.validate_net(net), IllegalOperationError);
    return;
  }
  GTEST_SKIP() << "no suitable net shape found";
}

}  // namespace
}  // namespace relogic
