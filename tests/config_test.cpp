// Unit tests: relogic::config (frame mapping, port timing, controller,
// LUT-RAM column rule, snapshots, bitstream rendering).
#include <gtest/gtest.h>

#include "relogic/config/bitstream.hpp"
#include "relogic/config/controller.hpp"
#include "relogic/config/frame.hpp"
#include "relogic/config/port.hpp"
#include "relogic/config/snapshot.hpp"

namespace relogic::config {
namespace {

using fabric::DeviceGeometry;
using fabric::Fabric;
using fabric::LogicCellConfig;

TEST(FrameMapper, CellFramesLiveInOwnColumnAndSlotGroup) {
  const auto geom = DeviceGeometry::xcv200();
  const FrameMapper mapper(geom);
  for (int cell = 0; cell < 4; ++cell) {
    const auto frames = mapper.cell_frames(ClbCoord{5, 17}, cell);
    ASSERT_EQ(static_cast<int>(frames.size()), geom.frames_per_cell_config);
    for (const auto& f : frames) {
      EXPECT_EQ(f.type, ColumnType::kClb);
      EXPECT_EQ(f.column, 17);
      EXPECT_GE(f.frame, cell * geom.frames_per_cell_config);
      EXPECT_LT(f.frame, (cell + 1) * geom.frames_per_cell_config);
    }
  }
  // Same frames for every row — a frame spans the whole column (the root
  // of the paper's LUT-RAM exclusion rule).
  EXPECT_EQ(mapper.cell_frames(ClbCoord{0, 17}, 2),
            mapper.cell_frames(ClbCoord{27, 17}, 2));
}

TEST(FrameMapper, PipFramesAreRoutingFramesOfSinkColumn) {
  const auto geom = DeviceGeometry::tiny(8, 8);
  Fabric fab(geom);
  const FrameMapper mapper(geom);
  const auto& g = fab.graph();
  const fabric::RouteEdge e{g.single({3, 3}, fabric::Dir::kE, 0),
                            g.in_pin({3, 4}, 0, fabric::CellPort::kI0)};
  const auto f = mapper.pip_frame(g, e);
  EXPECT_EQ(f.type, ColumnType::kClb);
  EXPECT_EQ(f.column, 4);  // controlled at the sink tile
  EXPECT_GE(f.frame, mapper.first_routing_frame());
  EXPECT_LT(f.frame, geom.frames_per_clb_column);
  // Deterministic.
  EXPECT_EQ(mapper.pip_frame(g, e), mapper.pip_frame(g, e));
}

TEST(PortTiming, BoundaryScanScalesWithFrames) {
  BoundaryScanPort port;
  const int bits = DeviceGeometry::xcv200().frame_length_bits();
  const auto one = port.write_time(1, bits);
  const auto ten = port.write_time(10, bits);
  EXPECT_GT(ten, one);
  // Serial port: ~1 bit per TCK; 48 frames of 544 bits ≈ 1.3 ms @ 20 MHz.
  const auto col = port.write_time(48, bits);
  EXPECT_GT(col, SimTime::ms(1));
  EXPECT_LT(col, SimTime::ms(2));
  EXPECT_EQ(port.write_time(0, bits), SimTime::zero());
}

TEST(PortTiming, SelectMapMuchFasterThanJtag) {
  BoundaryScanPort jtag;
  SelectMapPort smap;
  const int bits = DeviceGeometry::xcv200().frame_length_bits();
  EXPECT_LT(smap.write_time(48, bits) * 10, jtag.write_time(48, bits));
  EXPECT_GT(smap.bandwidth_bps(), jtag.bandwidth_bps());
}

class ControllerTest : public ::testing::Test {
 protected:
  DeviceGeometry geom_ = DeviceGeometry::tiny(8, 8);
  Fabric fab_{geom_};
  BoundaryScanPort port_;
};

TEST_F(ControllerTest, ColumnGranularWidensToWholeColumns) {
  ConfigController column(fab_, port_, /*column_granular=*/true);
  ConfigController framed(fab_, port_, /*column_granular=*/false);
  ConfigOp op("one cell");
  op.write_cell({2, 3}, 1, LogicCellConfig::constant(true));
  EXPECT_EQ(static_cast<int>(column.frames_of(op).size()),
            geom_.frames_per_clb_column);
  EXPECT_EQ(static_cast<int>(framed.frames_of(op).size()),
            geom_.frames_per_cell_config);
}

TEST_F(ControllerTest, ApplyChargesTimeAndAppliesActions) {
  ConfigController ctl(fab_, port_);
  ConfigOp op("cfg");
  op.write_cell({1, 1}, 0, LogicCellConfig::constant(true));
  const auto r = ctl.apply(op);
  EXPECT_EQ(r.frames_written, geom_.frames_per_clb_column);
  EXPECT_EQ(r.columns_touched, 1);
  EXPECT_GT(r.time, SimTime::zero());
  EXPECT_EQ(r.effective_actions, 1);
  EXPECT_TRUE(fab_.cell({1, 1}, 0).used);

  // Identical rewrite: frames still written, nothing effective.
  const auto r2 = ctl.apply(op);
  EXPECT_EQ(r2.effective_actions, 0);
  EXPECT_EQ(r2.frames_written, geom_.frames_per_clb_column);
  EXPECT_EQ(ctl.totals().ops, 2);
}

TEST_F(ControllerTest, RoutingActionsApply) {
  ConfigController ctl(fab_, port_);
  const auto& g = fab_.graph();
  const auto net = fab_.create_net("n");
  const auto src = g.out_pin({2, 2}, 0, false);
  const auto wire = g.single({2, 2}, fabric::Dir::kE, 0);
  const auto sink = g.in_pin({2, 3}, 0, fabric::CellPort::kI0);

  ConfigOp op("route");
  op.attach_source(net, src).add_edge(net, {src, wire}).add_edge(net,
                                                                 {wire, sink});
  const auto r = ctl.apply(op);
  EXPECT_EQ(r.effective_actions, 3);
  EXPECT_NO_THROW(fab_.validate_net(net));

  ConfigOp undo("unroute");
  undo.remove_edge(net, {wire, sink})
      .remove_edge(net, {src, wire})
      .detach_source(net, src);
  ctl.apply(undo);
  EXPECT_TRUE(g.is_free(wire));
  EXPECT_TRUE(g.is_free(sink));
}

TEST_F(ControllerTest, LutRamColumnRejected) {
  ConfigController ctl(fab_, port_);
  // Place a live LUT-RAM in column 3.
  LogicCellConfig ram;
  ram.used = true;
  ram.lut_mode = fabric::LutMode::kRam;
  fab_.set_cell_config({5, 3}, 2, ram);

  // Any op touching column 3 must now be refused...
  ConfigOp op("touch");
  op.write_cell({1, 3}, 0, LogicCellConfig::constant(true));
  EXPECT_THROW(ctl.apply(op), IllegalOperationError);

  // ...unless it rewrites the RAM cell itself (intentional).
  ConfigOp own("rewrite ram cell");
  own.write_cell({5, 3}, 2, ram);
  EXPECT_NO_THROW(ctl.apply(own));

  // Other columns unaffected.
  ConfigOp other("elsewhere");
  other.write_cell({1, 4}, 0, LogicCellConfig::constant(true));
  EXPECT_NO_THROW(ctl.apply(other));
}

TEST_F(ControllerTest, SnapshotKeeperRestores) {
  SnapshotKeeper keeper(fab_, 2);
  fab_.set_cell_config({0, 0}, 0, LogicCellConfig::constant(true));
  keeper.take("a");
  fab_.set_cell_config({0, 0}, 0, LogicCellConfig::constant(false));
  fab_.set_cell_config({4, 4}, 1, LogicCellConfig::constant(true));
  keeper.take("b");
  fab_.clear_cell({0, 0}, 0);

  EXPECT_TRUE(keeper.restore("a"));
  EXPECT_EQ(fab_.cell({0, 0}, 0).lut, fabric::luts::kConst1);
  EXPECT_FALSE(fab_.cell({4, 4}, 1).used);

  EXPECT_TRUE(keeper.restore("b"));
  EXPECT_TRUE(fab_.cell({4, 4}, 1).used);
  EXPECT_FALSE(keeper.restore("nonexistent"));

  // Retention limit evicts the oldest.
  keeper.take("c");
  keeper.take("d");
  EXPECT_EQ(keeper.retained(), 2u);
  EXPECT_FALSE(keeper.restore("a"));
}

TEST_F(ControllerTest, BitstreamRenderDeterministic) {
  ConfigController ctl(fab_, port_);
  BitstreamWriter writer(ctl);
  ConfigOp op("cfg");
  op.write_cell({1, 1}, 0, LogicCellConfig::constant(true));

  const auto a = writer.render(op);
  const auto b = writer.render(op);
  EXPECT_EQ(a.bytes, b.bytes);
  EXPECT_EQ(a.crc, b.crc);
  EXPECT_GT(a.frame_count, 0);
  // Sync word present at offset 4.
  ASSERT_GE(a.bytes.size(), 8u);
  EXPECT_EQ(a.bytes[4], 0xAA);
  EXPECT_EQ(a.bytes[5], 0x99);

  const auto script = writer.script({op});
  EXPECT_NE(script.find("cfg"), std::string::npos);
  EXPECT_NE(script.find("TOTAL"), std::string::npos);
}

TEST(Crc32, KnownVector) {
  const char* s = "123456789";
  EXPECT_EQ(crc32(reinterpret_cast<const std::uint8_t*>(s), 9), 0xCBF43926u);
}

// The writer renders/prices from the controller's written set, so its frame
// totals equal the controller's ConfigTotals at every granularity — under
// kDirtyFrame it used to render the full mapped set and over-report.
TEST(Bitstream, WriterTotalsMatchControllerTotalsAtEveryGranularity) {
  for (const auto gran :
       {WriteGranularity::kColumn, WriteGranularity::kFrame,
        WriteGranularity::kDirtyFrame}) {
    SCOPED_TRACE(to_string(gran));
    const auto geom = DeviceGeometry::tiny(8, 8);
    Fabric fab(geom);
    BoundaryScanPort port;
    ConfigController ctl(fab, port, gran);
    BitstreamWriter writer(ctl);

    // A sequence with cross-op dependence: "cfg a again" rewrites the very
    // content "cfg a" establishes, so a sequence-blind writer would price
    // it as dirty; the applied sequence skips it. Plus a self-cancelling op
    // that kDirtyFrame must render as zero frames.
    std::vector<ConfigOp> ops;
    ops.emplace_back("cfg a").write_cell({1, 1}, 0,
                                         LogicCellConfig::constant(true));
    ops.emplace_back("cfg b").write_cell({2, 4}, 1,
                                         LogicCellConfig::constant(false));
    ops.emplace_back("self-cancel")
        .write_cell({3, 6}, 2, LogicCellConfig::constant(true))
        .clear_cell({3, 6}, 2);
    ops.emplace_back("cfg a again")
        .write_cell({1, 1}, 0, LogicCellConfig::constant(true));

    const auto image = writer.render(ops);
    const auto script = writer.script(ops);

    int applied_frames = 0;
    for (const auto& op : ops) applied_frames += ctl.apply(op).frames_written;
    EXPECT_EQ(image.frame_count, ctl.totals().frames_written);
    EXPECT_EQ(image.frame_count, applied_frames);

    if (gran == WriteGranularity::kDirtyFrame) {
      // The self-cancelling op and the identical rewrite each skipped
      // their whole frame group...
      EXPECT_EQ(ctl.totals().frames_skipped, 2 * geom.frames_per_cell_config);
      EXPECT_NE(script.find("clean-skipped"), std::string::npos);
      // ...and re-rendering the now-applied ops writes nothing at all:
      // every rewrite is content-identical.
      EXPECT_EQ(writer.render(ops).frame_count, 0);
    } else {
      EXPECT_EQ(writer.render(ops).frame_count, ctl.totals().frames_written);
    }
  }
}

}  // namespace
}  // namespace relogic::config
