// Depth tests for paths the main suites touch only incidentally:
// source-join routing, router limits, engine options, golden-model resets,
// capture/restore under randomized mutation, bitstream listings, and the
// proactive defragmentation trigger.
#include <gtest/gtest.h>

#include "relogic/config/bitstream.hpp"
#include "relogic/config/controller.hpp"
#include "relogic/config/port.hpp"
#include "relogic/netlist/benchmarks.hpp"
#include "relogic/netlist/golden.hpp"
#include "relogic/place/implement.hpp"
#include "relogic/reloc/engine.hpp"
#include "relogic/sched/scheduler.hpp"
#include "relogic/sim/harness.hpp"

namespace relogic {
namespace {

using fabric::CellPort;
using fabric::DeviceGeometry;
using fabric::Dir;
using fabric::Fabric;
using fabric::NodeId;

TEST(RouterJoin, FindPathToNetJoinsOnWires) {
  Fabric fab(DeviceGeometry::tiny(10, 10));
  fabric::DelayModel dm;
  place::Router router(fab, dm);
  const auto& g = fab.graph();

  const auto net = fab.create_net("join");
  fab.attach_source(net, g.out_pin({5, 2}, 0, false));
  router.route_sink(net, g.in_pin({5, 7}, 0, CellPort::kI0));

  const NodeId second = g.out_pin({3, 4}, 1, false);
  const auto path = router.find_path_to_net(second, net);
  ASSERT_GE(path.size(), 2u);
  EXPECT_EQ(path.front(), second);
  // Join node is a wire the net already owns.
  EXPECT_EQ(g.occupant(path.back()), net);
  const auto kind = g.info(path.back()).kind;
  EXPECT_TRUE(kind == fabric::NodeKind::kSingle ||
              kind == fabric::NodeKind::kHex ||
              kind == fabric::NodeKind::kLongRow ||
              kind == fabric::NodeKind::kLongCol);
  // Intermediate nodes are free (cycle-safe join).
  for (std::size_t i = 1; i + 1 < path.size(); ++i) {
    EXPECT_TRUE(g.is_free(path[i]));
  }
}

TEST(RouterLimits, ExpansionBudgetHonoured) {
  Fabric fab(DeviceGeometry::tiny(12, 12));
  fabric::DelayModel dm;
  place::Router router(fab, dm);
  const auto& g = fab.graph();
  const auto net = fab.create_net("n");
  fab.attach_source(net, g.out_pin({0, 0}, 0, false));
  place::RouteOptions opt;
  opt.max_expansions = 3;  // absurdly small
  EXPECT_THROW(
      router.find_path(net, g.in_pin({11, 11}, 0, CellPort::kI0), opt),
      ResourceError);
}

TEST(RouterLimits, LongsDisabledStillRoutes) {
  Fabric fab(DeviceGeometry::tiny(12, 12));
  fabric::DelayModel dm;
  place::Router router(fab, dm);
  const auto& g = fab.graph();
  const auto net = fab.create_net("n");
  fab.attach_source(net, g.out_pin({0, 0}, 0, false));
  place::RouteOptions opt;
  opt.allow_longs = false;
  router.route_sink(net, g.in_pin({11, 11}, 0, CellPort::kI0), opt);
  for (NodeId n : fab.net(net).nodes()) {
    const auto kind = g.info(n).kind;
    EXPECT_NE(kind, fabric::NodeKind::kLongRow);
    EXPECT_NE(kind, fabric::NodeKind::kLongCol);
  }
}

TEST(EngineOptions, OutputParallelCyclesExtendWallTime) {
  for (const int cycles : {1, 8}) {
    Fabric fab(DeviceGeometry::tiny(12, 12));
    fabric::DelayModel dm;
    config::BoundaryScanPort port;
    config::ConfigController controller(fab, port, true);
    sim::FabricSim sim(fab, dm);
    sim.add_clock(sim::ClockSpec{});
    place::Implementer implementer(fab, dm);
    place::Router router(fab, dm);
    reloc::RelocationEngine engine(controller, router, &sim);

    const auto nl = netlist::bench::counter(3);
    auto impl = implementer.implement(
        netlist::map_netlist(nl),
        place::ImplementOptions{ClbRect{2, 2, 3, 3}, 0, {}, {}});
    sim::CircuitHarness harness(sim, nl, impl);
    harness.step({});

    reloc::RelocOptions opt;
    opt.output_parallel_cycles = cycles;
    const auto rep =
        engine.relocate_cell(impl, 0, place::CellSite{ClbCoord{9, 9}, 0}, opt);
    // More mandated parallel cycles => strictly more wall time than config
    // time, growing with the requirement.
    EXPECT_GE(rep.wall_time - rep.config_time,
              sim.clock_period(0) * (cycles - 1));
  }
}

TEST(EngineOptions, TinyAuxRadiusFailsInCrowdedNeighbourhood) {
  Fabric fab(DeviceGeometry::tiny(12, 12));
  fabric::DelayModel dm;
  config::BoundaryScanPort port;
  config::ConfigController controller(fab, port, true);
  sim::FabricSim sim(fab, dm);
  sim.add_clock(sim::ClockSpec{});
  place::Implementer implementer(fab, dm);
  place::Router router(fab, dm);
  reloc::RelocationEngine engine(controller, router, &sim);

  const auto nl = netlist::bench::shift_register(
      1, netlist::bench::ClockingStyle::kGatedClock);
  auto impl = implementer.implement(
      netlist::map_netlist(nl),
      place::ImplementOptions{ClbRect{2, 2, 2, 2}, 0, {}, {}});

  // Crowd the destination's whole neighbourhood.
  const ClbCoord dest{8, 8};
  for (int dr = -1; dr <= 1; ++dr) {
    for (int dc = -1; dc <= 1; ++dc) {
      if (dr == 0 && dc == 0) continue;
      fab.set_cell_config({dest.row + dr, dest.col + dc}, 0,
                          fabric::LogicCellConfig::constant(false));
    }
  }
  reloc::RelocOptions opt;
  opt.aux_search_radius = 1;
  EXPECT_THROW(
      engine.relocate_cell(impl, 0, place::CellSite{dest, 0}, opt),
      ResourceError);
}

TEST(GoldenModel, ResetRestoresInitialState) {
  const auto nl = netlist::bench::lfsr(6, 0b110000);
  netlist::GoldenSim sim(nl);
  const auto initial = sim.state();
  for (int i = 0; i < 13; ++i) sim.clock();
  EXPECT_NE(sim.state(), initial);
  sim.reset();
  EXPECT_EQ(sim.state(), initial);
  EXPECT_EQ(sim.outputs().size(), nl.outputs().size());
}

TEST(CaptureRestore, RandomizedMutationRoundTrip) {
  // Property: capture -> arbitrary mutations -> restore leaves the fabric
  // byte-identical in cells, nets and occupancy.
  Fabric fab(DeviceGeometry::tiny(10, 10));
  fabric::DelayModel dm;
  place::Router router(fab, dm);
  const auto& g = fab.graph();
  Rng rng(77);

  // Seed state: a few cells + routed nets.
  std::vector<fabric::NetId> nets;
  for (int i = 0; i < 5; ++i) {
    const ClbCoord at{1 + i, 2};
    fab.set_cell_config(at, 0, fabric::LogicCellConfig::constant(i % 2));
    const auto net = fab.create_net("n" + std::to_string(i));
    fab.attach_source(net, g.out_pin(at, 0, false));
    router.route_sink(net,
                      g.in_pin({1 + i, 7}, 0, CellPort::kI0));
    nets.push_back(net);
  }
  const auto snap = fab.capture();
  const auto occupied = g.occupied_count();
  const auto used = fab.used_cell_count();

  // Mutate heavily.
  for (int i = 0; i < 30; ++i) {
    const int pick = rng.next_int(0, 2);
    if (pick == 0) {
      fab.set_cell_config({rng.next_int(0, 9), rng.next_int(0, 9)},
                          rng.next_int(0, 3),
                          fabric::LogicCellConfig::constant(rng.next_bool()));
    } else if (pick == 1 && !nets.empty()) {
      const auto net = nets[rng.next_below(nets.size())];
      if (fab.net_exists(net)) fab.destroy_net(net);
    } else {
      const auto net = fab.create_net("junk");
      fab.attach_source(
          net, g.out_pin({rng.next_int(0, 9), rng.next_int(0, 9)},
                         rng.next_int(0, 3), true));
    }
  }

  fab.restore(snap);
  EXPECT_EQ(g.occupied_count(), occupied);
  EXPECT_EQ(fab.used_cell_count(), used);
  for (const auto net : nets) {
    ASSERT_TRUE(fab.net_exists(net));
    EXPECT_NO_THROW(fab.validate_net(net));
    EXPECT_EQ(fab.net_sinks(net).size(), 1u);
  }
}

TEST(Bitstream, ScriptListsEveryOpAndTotals) {
  Fabric fab(DeviceGeometry::tiny(8, 8));
  config::BoundaryScanPort port;
  config::ConfigController controller(fab, port, true);
  config::BitstreamWriter writer(controller);

  std::vector<config::ConfigOp> ops;
  ops.emplace_back("first step").write_cell({1, 1}, 0,
                                            fabric::LogicCellConfig::constant(true));
  ops.emplace_back("second step").write_cell({1, 2}, 1,
                                             fabric::LogicCellConfig::constant(false));
  const auto script = writer.script(ops);
  EXPECT_NE(script.find("first step"), std::string::npos);
  EXPECT_NE(script.find("second step"), std::string::npos);
  EXPECT_NE(script.find("TOTAL 2 ops"), std::string::npos);

  const auto image = writer.render(ops);
  // 2 ops x one CLB column each.
  EXPECT_EQ(image.frame_count,
            2 * fab.geometry().frames_per_clb_column);
}

TEST(ProactiveDefrag, TriggersOnDepartureFragmentation) {
  const auto geom = DeviceGeometry::xcv200();
  config::SelectMapPort port;
  const reloc::RelocationCostModel cost(geom, port);

  sched::RandomTaskParams p;
  p.task_count = 120;
  p.min_side = 4;
  p.max_side = 10;
  p.mean_interarrival_ms = 140.0;
  p.mean_duration_ms = 2000.0;
  p.seed = 13;
  const auto tasks = sched::random_tasks(p);

  sched::SchedulerConfig on_demand;
  on_demand.policy = sched::ManagementPolicy::kTransparent;
  sched::SchedulerConfig proactive = on_demand;
  proactive.proactive_frag_threshold = 0.5;

  sched::Scheduler a(24, 24, cost, on_demand);
  sched::Scheduler b(24, 24, cost, proactive);
  const auto sa = a.run_tasks(tasks);
  const auto sb = b.run_tasks(tasks);
  // The proactive trigger performs extra (idle-time) moves.
  EXPECT_GT(sb.rearrangement_moves, sa.rearrangement_moves);
  // And never halts anything (transparent relocation).
  EXPECT_EQ(sb.total_halted, SimTime::zero());
}

TEST(PortModel, ReadbackCostsMoreThanWrite) {
  config::BoundaryScanPort jtag;
  config::SelectMapPort smap;
  const int bits = DeviceGeometry::xcv200().frame_length_bits();
  EXPECT_GT(jtag.readback_time(10, bits), jtag.write_time(10, bits));
  EXPECT_GT(smap.readback_time(10, bits), smap.write_time(10, bits));
  EXPECT_EQ(jtag.readback_time(0, bits), SimTime::zero());
}

}  // namespace
}  // namespace relogic
