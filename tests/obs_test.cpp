// Unit tests: relogic::obs (trace ring buffers, Chrome trace-event export,
// the determinism contract, and the fleet instrumentation).
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "relogic/obs/trace.hpp"
#include "relogic/runtime/fleet.hpp"
#include "relogic/sched/workload.hpp"

namespace relogic::obs {
namespace {

// ---- ring buffer ------------------------------------------------------------

TEST(TraceBuffer, InsertionOrderAndOverwrite) {
  TraceBuffer buf(3);
  EXPECT_EQ(buf.capacity(), 3u);
  for (int i = 0; i < 5; ++i) {
    TraceEvent& e = buf.push();
    e.name = "e" + std::to_string(i);
  }
  // 5 pushes into 3 slots: the oldest two were overwritten.
  EXPECT_EQ(buf.size(), 3u);
  EXPECT_EQ(buf.dropped(), 2);
  EXPECT_EQ(buf.at(0).name, "e2");
  EXPECT_EQ(buf.at(1).name, "e3");
  EXPECT_EQ(buf.at(2).name, "e4");
}

TEST(TraceTrack, DefaultHandleIsDisabledNoOp) {
  TraceTrack track;
  EXPECT_FALSE(static_cast<bool>(track));
  // Every emission on a null handle is a no-op, not a crash.
  track.complete("cat", "name", SimTime::ms(1), SimTime::ms(2));
  track.begin("cat", "name", SimTime::zero());
  track.end(SimTime::ms(1));
  track.instant("cat", "name", SimTime::zero());
  track.counter("c", SimTime::zero(), 1.0);
  EXPECT_EQ(track.dropped(), 0);
}

// ---- JSON export ------------------------------------------------------------

TEST(Tracer, JsonShapeAndArgRendering) {
  Tracer tracer;
  TraceTrack t = tracer.track(7, 3, "proc", "lane");
  EXPECT_TRUE(static_cast<bool>(t));
  t.complete("config", "apply \"x\"", SimTime::us(2), SimTime::us(5),
             {arg("frames", 4), arg("ratio", 0.5), arg("ok", true),
              arg("label", std::string("a\nb"))});
  t.instant("queue", "rejected", SimTime::ms(1), {arg("reason", "oversized")});
  t.begin("sched", "des-run", SimTime::zero());
  t.end(SimTime::ms(3));
  t.counter("frames_written", SimTime::ms(2), 42.0);

  const std::string json = tracer.to_json();
  // Track metadata names the pid/tid lanes.
  EXPECT_NE(json.find("\"name\":\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"name\":\"proc\"}"), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"name\":\"lane\"}"), std::string::npos);
  // The complete span: µs timestamps exact from picoseconds, args rendered
  // at the emission site (ints bare, strings quoted+escaped).
  EXPECT_NE(json.find("\"ph\":\"X\",\"pid\":7,\"tid\":3,\"ts\":2.000000,"
                      "\"dur\":5.000000,\"cat\":\"config\","
                      "\"name\":\"apply \\\"x\\\"\""),
            std::string::npos);
  EXPECT_NE(json.find("\"frames\":4,\"ratio\":0.5,\"ok\":true,"
                      "\"label\":\"a\\nb\""),
            std::string::npos);
  // Instant carries thread scope; counter carries its value.
  EXPECT_NE(json.find("\"s\":\"t\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"counter\",\"name\":\"frames_written\","
                      "\"args\":{\"value\":42}"),
            std::string::npos);
  // Wall clock is off by default: no wall_us anywhere.
  EXPECT_EQ(json.find("wall_us"), std::string::npos);
  // Export is deterministic.
  EXPECT_EQ(json, tracer.to_json());
}

TEST(Tracer, WallClockOptInAddsWallUsArg) {
  Tracer::Options opt;
  opt.wall_clock = true;
  Tracer tracer(opt);
  TraceTrack t = tracer.track(0, 0, "p", "t");
  t.instant("cat", "tick", SimTime::zero());
  EXPECT_NE(tracer.to_json().find("\"wall_us\":"), std::string::npos);
}

// ---- fleet traces -----------------------------------------------------------

runtime::FleetConfig traced_fleet_config() {
  runtime::FleetConfig cfg;
  cfg.devices = 3;
  cfg.rows = cfg.cols = 12;
  cfg.admission = runtime::AdmissionMode::kOnline;
  cfg.rebalance_backlog_ms = 40.0;
  cfg.sched.policy = sched::ManagementPolicy::kTransparent;
  cfg.health.selftest = true;
  cfg.health.fault_rate = 0.002;
  cfg.health.fault_seed = 7;
  return cfg;
}

std::vector<sched::TaskArrival> traced_workload() {
  sched::WorkloadParams wp;
  wp.pattern = sched::ArrivalPattern::kPoisson;
  wp.task_count = 60;
  wp.mean_interarrival_ms = 0.8;
  wp.seed = 7;
  wp.max_side = 10;
  return sched::WorkloadGenerator(wp).generate();
}

std::string traced_fleet_json(int threads) {
  runtime::FleetConfig cfg = traced_fleet_config();
  cfg.threads = threads;
  Tracer tracer;
  runtime::FleetManager fleet(cfg);
  fleet.set_tracer(&tracer);
  fleet.submit_all(traced_workload());
  fleet.run();
  return tracer.to_json();
}

TEST(FleetTrace, SameSeedSameConfigIsByteIdentical) {
  const std::string a = traced_fleet_json(1);
  const std::string b = traced_fleet_json(1);
  EXPECT_EQ(a, b);
}

TEST(FleetTrace, ThreadCountDoesNotChangeTheTrace) {
  const std::string one = traced_fleet_json(1);
  const std::string four = traced_fleet_json(4);
  EXPECT_EQ(one, four);
}

/// Minimal line-oriented scan of the exported JSON: every event is on its
/// own line, so the shape checks don't need a JSON parser.
struct EventScan {
  std::map<std::pair<int, int>, int> depth;  // (pid,tid) -> open B count
  std::set<std::string> cats;
  int spans = 0;
  bool negative_dur = false;
  std::vector<std::string> lines;
};

EventScan scan_events(const std::string& json) {
  EventScan scan;
  std::size_t pos = 0;
  while (pos < json.size()) {
    const std::size_t eol = json.find('\n', pos);
    const std::string line = json.substr(pos, eol - pos);
    pos = eol == std::string::npos ? json.size() : eol + 1;
    if (line.rfind("{\"", 0) != 0) continue;
    const auto field = [&line](const std::string& key) -> std::string {
      const std::string tag = "\"" + key + "\":";
      const std::size_t at = line.find(tag);
      if (at == std::string::npos) return "";
      const std::size_t start = at + tag.size();
      std::size_t end = start;
      if (line[start] == '"') {
        end = line.find('"', start + 1) + 1;
        return line.substr(start + 1, end - start - 2);
      }
      while (end < line.size() && line[end] != ',' && line[end] != '}') ++end;
      return line.substr(start, end - start);
    };
    const std::string ph = field("ph");
    if (ph.empty() || ph == "M") continue;
    scan.lines.push_back(line);
    const std::pair<int, int> lane{std::stoi(field("pid")),
                                   std::stoi(field("tid"))};
    if (ph == "B") ++scan.depth[lane];
    if (ph == "E") --scan.depth[lane];
    if (ph == "X") {
      ++scan.spans;
      scan.negative_dur =
          scan.negative_dur || field("dur").rfind('-', 0) == 0;
    }
    if (ph != "E" && ph != "C") scan.cats.insert(field("cat"));
  }
  return scan;
}

TEST(FleetTrace, NestingBalancedAndSpansNonNegative) {
  const EventScan scan = scan_events(traced_fleet_json(1));
  EXPECT_GT(scan.spans, 0);
  EXPECT_FALSE(scan.negative_dur);
  for (const auto& [lane, depth] : scan.depth) {
    EXPECT_EQ(depth, 0) << "unbalanced B/E on pid " << lane.first << " tid "
                        << lane.second;
  }
}

TEST(FleetTrace, CoversTheRequestPathCategories) {
  const EventScan scan = scan_events(traced_fleet_json(1));
  // The whole request path: admission -> queue -> dispatch -> placement ->
  // config transactions -> task execution, plus the health sweep and the
  // DES envelope. ≥ 6 distinct categories is the acceptance floor.
  for (const char* cat :
       {"admission", "queue", "dispatch", "placement", "config", "task",
        "health", "sched"}) {
    EXPECT_TRUE(scan.cats.contains(cat)) << "missing category " << cat;
  }
}

TEST(FleetTrace, DispatchAndConfigSpansCarryArgs) {
  const std::string json = traced_fleet_json(1);
  // Dispatch spans name the policy and the chosen device.
  bool dispatch_args = false;
  // Config-apply spans carry the write granularity and frame accounting.
  bool config_args = false;
  for (const auto& line : scan_events(json).lines) {
    if (line.find("\"cat\":\"dispatch\"") != std::string::npos &&
        line.find("\"policy\":") != std::string::npos &&
        line.find("\"device\":") != std::string::npos) {
      dispatch_args = true;
    }
    if (line.find("\"cat\":\"config\"") != std::string::npos &&
        line.find("\"granularity\":") != std::string::npos &&
        line.find("\"frames_written\":") != std::string::npos) {
      config_args = true;
    }
  }
  EXPECT_TRUE(dispatch_args);
  EXPECT_TRUE(config_args);
}

}  // namespace
}  // namespace relogic::obs
