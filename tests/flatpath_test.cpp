// Flat config-plane data-path equivalence.
//
// PR 5 rebuilt ConfigController / FrameImage / TransactionBatcher on flat,
// index-addressable structures (config/frame_index.hpp): dense frame ids,
// sorted-vector frame sets, a flat epoch-cleared delta map, and one-pass
// per-column pricing. These tests pin the refactor to the previous
// std::set<FrameAddress> / std::map<FrameAddress, uint64_t> semantics with
// a literal reference implementation of the old algorithms, driven in
// lockstep on randomized op streams — including the 8-cells-per-CLB
// tiny_dense geometry whose frame layout exercises non-Virtex cell counts.
//
// Since the kernel-backend layer, the equivalence sweep runs every
// registered KernelBackend (serial reference, openmp, simd) against the
// same reference across all three granularities on tiny, tiny_dense and
// the paper's XCV200 — this is the suite that enforces the backend
// byte-identity contract of DESIGN.md §9.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "relogic/common/rng.hpp"
#include "relogic/config/controller.hpp"
#include "relogic/config/frame_image.hpp"
#include "relogic/config/frame_index.hpp"
#include "relogic/config/kernel.hpp"
#include "relogic/config/port.hpp"

namespace relogic {
namespace {

using config::ApplyResult;
using config::ColumnType;
using config::ConfigOp;
using config::FrameAddress;
using config::FrameDeltaMap;
using config::FrameImage;
using config::FrameIndex;
using config::FrameSet;
using config::WriteGranularity;
using fabric::DeviceGeometry;
using fabric::Fabric;
using fabric::LogicCellConfig;

// ---- the flat primitives ----------------------------------------------------

TEST(FrameIndexTest, BijectionCoversTheWholeUniverseInAddressOrder) {
  for (const auto& geom :
       {DeviceGeometry::tiny(6, 6), DeviceGeometry::tiny_dense(6, 6),
        DeviceGeometry::xcv200()}) {
    const FrameIndex index(geom);
    ASSERT_EQ(index.total_frames(), geom.total_frames());
    FrameAddress prev{};
    for (std::int32_t id = 0; id < index.total_frames(); ++id) {
      const FrameAddress f = index.address(id);
      EXPECT_EQ(index.id(f), id);
      // Dense ids enumerate addresses in FrameAddress's own <=> order, so a
      // sorted id set iterates exactly as the old std::set<FrameAddress>.
      if (id > 0) {
        EXPECT_LT(prev, f);
      }
      prev = f;
      // Column ids are monotone and group-contiguous.
      if (id > 0) {
        EXPECT_GE(index.column_of(id), index.column_of(id - 1));
      }
    }
    EXPECT_EQ(index.column_of(index.total_frames() - 1),
              index.total_columns() - 1);
  }
}

TEST(FrameSetTest, NormalizeUnionContainsFilter) {
  FrameSet a;
  a.push(7);
  a.push(3);
  a.push(7);
  a.push_run(10, 3);
  a.normalize();
  ASSERT_EQ(a.size(), 5u);
  EXPECT_TRUE(a.contains(3));
  EXPECT_TRUE(a.contains(12));
  EXPECT_FALSE(a.contains(9));

  FrameSet b;
  b.push(3);
  b.push(9);
  b.normalize();
  a.union_with(b);
  ASSERT_EQ(a.size(), 6u);
  EXPECT_TRUE(a.contains(9));
  const std::vector<std::int32_t> want{3, 7, 9, 10, 11, 12};
  EXPECT_TRUE(std::equal(a.begin(), a.end(), want.begin(), want.end()));

  a.filter([](std::int32_t id) { return id % 2 == 1; });
  ASSERT_EQ(a.size(), 4u);
  EXPECT_FALSE(a.contains(10));
  EXPECT_TRUE(a.contains(11));
}

TEST(FrameDeltaMapTest, XorAccumulatesAndClearIsCheap) {
  FrameDeltaMap m;
  m.reset(64);
  m.xor_delta(5, 0xff);
  m.xor_delta(5, 0x0f);
  m.xor_delta(9, 0x1);
  m.xor_delta(9, 0x1);  // cancels back to zero but stays touched
  m.xor_delta(3, 0);    // zero delta: never recorded
  EXPECT_EQ(m.delta(5), 0xf0u);
  EXPECT_EQ(m.delta(9), 0u);
  EXPECT_EQ(m.delta(3), 0u);
  ASSERT_EQ(m.touched().size(), 2u);

  m.clear();
  EXPECT_EQ(m.delta(5), 0u);
  EXPECT_TRUE(m.touched().empty());
  m.xor_delta(5, 0x2);
  EXPECT_EQ(m.delta(5), 0x2u);
}

// ---- reference implementation of the old set/map semantics ------------------

/// The pre-flat-path algorithms, verbatim: std::set frame mapping with
/// column widening, std::map overlay delta simulation, per-column pricing
/// that rescans the whole frame set per column, and a std::map shadow
/// image. Shares the controller's fabric (read-only).
class ReferencePath {
 public:
  ReferencePath(const Fabric& fab, const config::ConfigPort& port,
                WriteGranularity gran)
      : fab_(&fab), port_(&port), mapper_(fab.geometry()), gran_(gran) {}

  std::set<FrameAddress> frames_of(const ConfigOp& op) const {
    std::set<FrameAddress> frames;
    const auto& graph = fab_->graph();
    for (const config::ConfigAction& a : op.actions) {
      if (const auto* cw = std::get_if<config::CellWrite>(&a)) {
        for (const FrameAddress& f : mapper_.cell_frames(cw->clb, cw->cell))
          frames.insert(f);
      } else if (const auto* ec = std::get_if<config::EdgeChange>(&a)) {
        frames.insert(mapper_.pip_frame(graph, ec->edge));
      } else if (const auto* sc = std::get_if<config::SourceChange>(&a)) {
        frames.insert(source_frame(*sc));
      }
    }
    if (gran_ != WriteGranularity::kColumn) return frames;
    std::set<FrameAddress> widened;
    std::set<std::int16_t> clb_cols;
    std::set<std::int16_t> iob_cols;
    for (const FrameAddress& f : frames) {
      switch (f.type) {
        case ColumnType::kClb:
          clb_cols.insert(f.column);
          break;
        case ColumnType::kIob:
          iob_cols.insert(f.column);
          break;
        case ColumnType::kCenter:
          widened.insert(f);
          break;
      }
    }
    const auto& g = fab_->geometry();
    for (std::int16_t c : clb_cols) {
      for (int fr = 0; fr < g.frames_per_clb_column; ++fr)
        widened.insert(
            FrameAddress{ColumnType::kClb, c, static_cast<std::int16_t>(fr)});
    }
    for (std::int16_t c : iob_cols) {
      for (int fr = 0; fr < g.frames_per_iob_column; ++fr)
        widened.insert(
            FrameAddress{ColumnType::kIob, c, static_cast<std::int16_t>(fr)});
    }
    return widened;
  }

  /// Overlay-simulated deltas against the *current* fabric (the op has not
  /// applied yet). With no injected faults these equal apply's observed
  /// before/after deltas, so one computation serves preview and apply.
  std::map<FrameAddress, std::uint64_t> deltas_of(const ConfigOp& op) const {
    std::map<FrameAddress, std::uint64_t> deltas;
    std::map<std::tuple<int, int, int>, LogicCellConfig> cells;
    std::map<std::pair<fabric::NetId, fabric::RouteEdge>, bool> edges;
    std::map<std::pair<fabric::NetId, fabric::NodeId>, bool> sources;
    for (const config::ConfigAction& a : op.actions) {
      if (const auto* cw = std::get_if<config::CellWrite>(&a)) {
        const std::tuple<int, int, int> key{cw->clb.row, cw->clb.col,
                                            cw->cell};
        const auto it = cells.find(key);
        const LogicCellConfig before =
            it != cells.end() ? it->second : fab_->cell(cw->clb, cw->cell);
        cells[key] = cw->cfg;
        if (before == cw->cfg) continue;
        const std::uint64_t d = FrameImage::cell_token(cw->clb.row, before) ^
                                FrameImage::cell_token(cw->clb.row, cw->cfg);
        for (const FrameAddress& f : mapper_.cell_frames(cw->clb, cw->cell))
          deltas[f] ^= d;
      } else if (const auto* ec = std::get_if<config::EdgeChange>(&a)) {
        const auto key = std::make_pair(ec->net, ec->edge);
        const auto it = edges.find(key);
        const bool on = it != edges.end()
                            ? it->second
                            : (fab_->net_exists(ec->net) &&
                               fab_->net(ec->net).has_edge(ec->edge));
        edges[key] = ec->add;
        if (on == ec->add) continue;
        deltas[mapper_.pip_frame(fab_->graph(), ec->edge)] ^=
            FrameImage::edge_token(ec->edge);
      } else if (const auto* sc = std::get_if<config::SourceChange>(&a)) {
        const auto key = std::make_pair(sc->net, sc->node);
        const auto it = sources.find(key);
        const bool on = it != sources.end()
                            ? it->second
                            : (fab_->net_exists(sc->net) &&
                               fab_->net(sc->net).has_source(sc->node));
        sources[key] = sc->attach;
        if (on == sc->attach) continue;
        deltas[source_frame(*sc)] ^= FrameImage::source_token(sc->node);
      }
    }
    return deltas;
  }

  ApplyResult price_set(const std::set<FrameAddress>& frames) const {
    ApplyResult result;
    result.frames_written = static_cast<int>(frames.size());
    std::set<std::pair<ColumnType, std::int16_t>> columns;
    for (const FrameAddress& f : frames) columns.insert({f.type, f.column});
    result.columns_touched = static_cast<int>(columns.size());
    const int frame_bits = fab_->geometry().frame_length_bits();
    for (const auto& col : columns) {
      int n = 0;
      for (const FrameAddress& f : frames)
        if (f.type == col.first && f.column == col.second) ++n;
      result.time += port_->write_time(n, frame_bits);
    }
    return result;
  }

  ApplyResult price(const std::set<FrameAddress>& frames,
                    const std::map<FrameAddress, std::uint64_t>& deltas) const {
    if (gran_ != WriteGranularity::kDirtyFrame) return price_set(frames);
    std::set<FrameAddress> dirty;
    for (const auto& [f, d] : deltas)
      if (d != 0) dirty.insert(f);
    ApplyResult result = price_set(dirty);
    result.frames_skipped =
        static_cast<int>(frames.size()) - result.frames_written;
    return result;
  }

  /// Commits an op's deltas to the reference shadow image.
  void commit(const std::map<FrameAddress, std::uint64_t>& deltas) {
    for (const auto& [f, d] : deltas) {
      if (d == 0) continue;
      image_[f] ^= d;
      touched_.insert(f);
    }
  }

  std::uint64_t digest(const FrameAddress& f) const {
    const auto it = image_.find(f);
    return it == image_.end() ? 0 : it->second;
  }
  std::size_t tracked() const { return touched_.size(); }
  const std::set<FrameAddress>& touched() const { return touched_; }

 private:
  FrameAddress source_frame(const config::SourceChange& sc) const {
    const auto& graph = fab_->graph();
    const auto info = graph.info(sc.node);
    if (info.kind == fabric::NodeKind::kPad) {
      const int col = info.tile.col < fab_->geometry().clb_cols / 2 ? 0 : 1;
      return FrameAddress{ColumnType::kIob, static_cast<std::int16_t>(col), 0};
    }
    return mapper_.pip_frame(graph, fabric::RouteEdge{sc.node, sc.node});
  }

  const Fabric* fab_;
  const config::ConfigPort* port_;
  config::FrameMapper mapper_;
  WriteGranularity gran_;
  std::map<FrameAddress, std::uint64_t> image_;
  std::set<FrameAddress> touched_;
};

std::vector<FrameAddress> to_addresses(const FrameSet& set,
                                       const FrameIndex& index) {
  std::vector<FrameAddress> out;
  for (const std::int32_t id : set) out.push_back(index.address(id));
  return out;
}

ConfigOp random_op(Rng& rng, const DeviceGeometry& geom, fabric::NetId net,
                   const Fabric& fab, int step) {
  ConfigOp op("op" + std::to_string(step));
  const auto& g = fab.graph();
  const int actions = 1 + static_cast<int>(rng.next_u64() % 4);
  for (int a = 0; a < actions; ++a) {
    const ClbCoord clb{static_cast<int>(rng.next_u64() %
                                        static_cast<unsigned>(geom.clb_rows)),
                       static_cast<int>(rng.next_u64() %
                                        static_cast<unsigned>(geom.clb_cols))};
    switch (rng.next_u64() % 5) {
      case 0:
        op.clear_cell(clb, static_cast<int>(
                               rng.next_u64() %
                               static_cast<unsigned>(geom.cells_per_clb)));
        break;
      case 1:
      case 2: {
        LogicCellConfig cfg;
        cfg.used = true;
        // Small alphabet so identical rewrites actually happen.
        cfg.lut = static_cast<std::uint16_t>(0x1111 * (1 + rng.next_u64() % 4));
        op.write_cell(clb,
                      static_cast<int>(rng.next_u64() %
                                       static_cast<unsigned>(geom.cells_per_clb)),
                      cfg);
        break;
      }
      case 3: {
        // Toggle a PIP on the shared net (routing pool models 4 cells of
        // pins per tile, so edge endpoints stay on cells 0..3).
        const auto src = g.out_pin(clb, static_cast<int>(rng.next_u64() % 4),
                                   false);
        const auto wire = g.single(
            clb, static_cast<fabric::Dir>(rng.next_u64() % 4),
            static_cast<int>(rng.next_u64() % 2));
        const fabric::RouteEdge e{src, wire};
        const bool on = fab.net_exists(net) && fab.net(net).has_edge(e);
        if (on)
          op.remove_edge(net, e);
        else
          op.add_edge(net, e);
        break;
      }
      case 4: {
        const auto node = g.out_pin(clb, static_cast<int>(rng.next_u64() % 4),
                                    false);
        const bool on = fab.net_exists(net) && fab.net(net).has_source(node);
        if (on)
          op.detach_source(net, node);
        else
          op.attach_source(net, node);
        break;
      }
    }
  }
  return op;
}

// Sweep axes: geometry selector (tiny / tiny_dense / the paper's XCV200),
// write granularity, and kernel backend name. Every registered backend is
// driven through the same randomized stream against the same reference, so
// byte-identity across backends follows from each one matching the
// deterministic reference field-for-field.
class FlatPathEquivalence
    : public ::testing::TestWithParam<
          std::tuple<int, WriteGranularity, std::string>> {};

TEST_P(FlatPathEquivalence, MatchesSetMapReferenceOnRandomStreams) {
  const auto& [geom_sel, gran, backend_name] = GetParam();
  const DeviceGeometry geom = geom_sel == 0   ? DeviceGeometry::tiny(6, 6)
                              : geom_sel == 1 ? DeviceGeometry::tiny_dense(6, 6)
                                              : DeviceGeometry::xcv200();
  const config::KernelBackend* backend = config::kernel_backend(backend_name);
  ASSERT_NE(backend, nullptr) << backend_name;
  Fabric fab(geom);
  config::BoundaryScanPort port;
  config::ConfigController ctl(fab, port, gran, backend);
  ReferencePath ref(fab, port, gran);
  const auto net = fab.create_net("n");

  // Seed depends on geometry only: all backends replay the identical
  // stream for a given (geometry, granularity) cell.
  Rng rng(geom_sel == 1 ? 0xD15Eu : geom_sel == 2 ? 0x2C00u : 0xF1A7u);
  ApplyResult ref_totals;
  for (int step = 0; step < 150; ++step) {
    const ConfigOp op = random_op(rng, geom, net, fab, step);

    // Reference results against the current fabric, before anything applies.
    const std::set<FrameAddress> ref_frames = ref.frames_of(op);
    const auto ref_deltas = ref.deltas_of(op);
    const ApplyResult ref_result = ref.price(ref_frames, ref_deltas);

    // Frame mapping: same addresses, same order.
    const FrameSet frames = ctl.frames_of(op);
    const auto addrs = to_addresses(frames, ctl.index());
    ASSERT_EQ(addrs.size(), ref_frames.size()) << "step " << step;
    EXPECT_TRUE(std::equal(addrs.begin(), addrs.end(), ref_frames.begin()))
        << "step " << step;

    // Preview agrees field by field.
    const ApplyResult pre = ctl.preview(op);
    EXPECT_EQ(pre.frames_written, ref_result.frames_written) << "step " << step;
    EXPECT_EQ(pre.frames_skipped, ref_result.frames_skipped) << "step " << step;
    EXPECT_EQ(pre.columns_touched, ref_result.columns_touched)
        << "step " << step;
    EXPECT_EQ(pre.time, ref_result.time) << "step " << step;

    // Apply agrees too (no injected faults, so the reference's simulated
    // deltas equal apply's observed ones), and the shadow images stay in
    // lockstep.
    const ApplyResult got = ctl.apply(op);
    ref.commit(ref_deltas);
    EXPECT_EQ(got.frames_written, ref_result.frames_written) << "step " << step;
    EXPECT_EQ(got.frames_skipped, ref_result.frames_skipped) << "step " << step;
    EXPECT_EQ(got.columns_touched, ref_result.columns_touched)
        << "step " << step;
    EXPECT_EQ(got.time, ref_result.time) << "step " << step;

    ref_totals.frames_written += ref_result.frames_written;
    ref_totals.frames_skipped += ref_result.frames_skipped;
    ref_totals.columns_touched += ref_result.columns_touched;
    ref_totals.time += ref_result.time;
  }

  // Shadow image: digest-identical on every frame the stream ever touched,
  // and the same ever-touched count.
  EXPECT_EQ(ctl.image().tracked_frames(), ref.tracked());
  for (const FrameAddress& f : ref.touched())
    EXPECT_EQ(ctl.image().digest(f), ref.digest(f)) << f.to_string();

  // Running totals: identical accounting over the whole stream.
  EXPECT_EQ(ctl.totals().frames_written, ref_totals.frames_written);
  EXPECT_EQ(ctl.totals().frames_skipped, ref_totals.frames_skipped);
  EXPECT_EQ(ctl.totals().columns_touched, ref_totals.columns_touched);
  EXPECT_EQ(ctl.totals().time, ref_totals.time);
}

INSTANTIATE_TEST_SUITE_P(
    AllBackendsGeometriesAndGranularities, FlatPathEquivalence,
    ::testing::Combine(
        ::testing::Values(0, 1, 2),
        ::testing::Values(WriteGranularity::kColumn, WriteGranularity::kFrame,
                          WriteGranularity::kDirtyFrame),
        ::testing::ValuesIn(config::kernel_backend_names())),
    [](const auto& pinfo) {
      const int geom_sel = std::get<0>(pinfo.param);
      const char* g = geom_sel == 0   ? "tiny"
                      : geom_sel == 1 ? "tiny_dense"
                                      : "xcv200";
      return std::string(g) + "_" + config::to_string(std::get<1>(pinfo.param)) +
             "_" + std::get<2>(pinfo.param);
    });

}  // namespace
}  // namespace relogic
