// Debug invariant audits (common/audit.hpp, DESIGN.md §8.4).
//
// The audit() methods are compiled unconditionally, so this suite runs them
// directly in every build; the RELOGIC_AUDIT flag only gates the periodic
// hot-path call sites (and those are exercised by the sanitizer CI jobs,
// which run the whole test set with -DRELOGIC_AUDIT=ON).
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "relogic/area/manager.hpp"
#include "relogic/common/audit.hpp"
#include "relogic/config/controller.hpp"
#include "relogic/config/port.hpp"
#include "relogic/obs/trace.hpp"
#include "relogic/runtime/batcher.hpp"
#include "relogic/runtime/fleet.hpp"
#include "relogic/runtime/telemetry.hpp"
#include "relogic/sched/workload.hpp"

namespace relogic {
namespace {

using fabric::DeviceGeometry;
using fabric::Fabric;
using fabric::LogicCellConfig;

// ---- AreaManager occupancy ledger ------------------------------------------

TEST(AreaAudit, CleanAfterAllocateMoveReleaseMask) {
  area::AreaManager mgr(10, 10);
  EXPECT_NO_THROW(mgr.audit());

  const auto a = mgr.allocate("a", 3, 3);
  const auto b = mgr.allocate("b", 2, 4);
  ASSERT_NE(a, area::kNoRegion);
  ASSERT_NE(b, area::kNoRegion);
  EXPECT_NO_THROW(mgr.audit());

  mgr.mask_faulty({9, 9});
  EXPECT_NO_THROW(mgr.audit());

  const auto to = mgr.find_free_rect(3, 3, area::PlacePolicy::kBottomLeft);
  ASSERT_TRUE(to.has_value());
  if (mgr.can_move(a, *to)) mgr.move(a, *to);
  EXPECT_NO_THROW(mgr.audit());

  mgr.release(b);
  mgr.release(a);
  EXPECT_NO_THROW(mgr.audit());
}

// ---- Telemetry internals ----------------------------------------------------

TEST(TelemetryAudit, CleanThroughObserveAndMerge) {
  runtime::Telemetry a;
  a.counter("ops").add(3);
  a.gauge("util").set(0.5);
  for (double v : {0.01, 1.0, 7.5, 12000.0}) a.histogram("lat").observe(v);
  EXPECT_NO_THROW(a.audit("a"));

  runtime::Telemetry b;
  b.histogram("lat").observe(42.0);
  b.merge(a);
  EXPECT_NO_THROW(b.audit("b"));
  EXPECT_EQ(b.histogram("lat").count(), 5);
}

// ---- ConfigController frame-digest mirror ----------------------------------

class ControllerAuditTest : public ::testing::Test {
 protected:
  DeviceGeometry geom_ = DeviceGeometry::tiny(8, 8);
  Fabric fab_{geom_};
  config::BoundaryScanPort port_;
};

TEST_F(ControllerAuditTest, MirrorMatchesRecomputeThroughBatchedTraffic) {
  config::ConfigController ctl(fab_, port_,
                               config::WriteGranularity::kDirtyFrame);
  EXPECT_NO_THROW(ctl.audit_image());

  runtime::TransactionBatcher batcher(ctl, {});
  for (int i = 0; i < 4; ++i) {
    config::ConfigOp op("op" + std::to_string(i));
    op.write_cell({1 + i, 2}, 0, LogicCellConfig::constant(i % 2 == 0));
    batcher.enqueue(op);
  }
  config::ConfigOp clear("teardown");
  clear.clear_cell({1, 2}, 0);
  batcher.enqueue(clear);
  batcher.flush();
  EXPECT_NO_THROW(ctl.audit_image());
}

TEST_F(ControllerAuditTest, PreInstalledFaultsAreTheBaseline) {
  // FaultMap::install runs BEFORE controller construction everywhere in the
  // tree (fleet.cpp, main.cpp); the baseline snapshot makes that corruption
  // invisible to the audit.
  fab_.inject_fault({2, 2}, 0, fabric::CellFault{3, true});
  config::ConfigController ctl(fab_, port_,
                               config::WriteGranularity::kDirtyFrame);
  EXPECT_NO_THROW(ctl.audit_image());

  config::ConfigOp op("cfg");
  op.write_cell({2, 2}, 0, LogicCellConfig::constant(true));
  ctl.apply(op);
  EXPECT_NO_THROW(ctl.audit_image());
}

TEST_F(ControllerAuditTest, MutationBehindTheControllerThrows) {
  config::ConfigController ctl(fab_, port_,
                               config::WriteGranularity::kDirtyFrame);
  EXPECT_NO_THROW(ctl.audit_image());
  // An injected configuration-memory fault after construction changes the
  // stored cell contents without a controller transaction — exactly the
  // unsanctioned mutation the digest mirror exists to catch.
  fab_.inject_fault({4, 4}, 1, fabric::CellFault{0, true});
  EXPECT_THROW(ctl.audit_image(), AuditError);
}

// ---- Fleet admission ledger -------------------------------------------------

TEST(FleetAudit, AdmissionLedgerReconcilesOnlineAndOffline) {
  for (const auto mode :
       {runtime::AdmissionMode::kOnline, runtime::AdmissionMode::kOffline}) {
    runtime::FleetConfig cfg;
    cfg.devices = 3;
    cfg.rows = 12;
    cfg.cols = 12;
    cfg.threads = 2;
    cfg.admission = mode;
    cfg.rebalance_backlog_ms = 5.0;
    runtime::FleetManager fleet(cfg);

    sched::WorkloadParams params;
    params.task_count = 40;
    params.seed = 7;
    fleet.submit_all(sched::WorkloadGenerator(params).generate());
    fleet.dispatch();
    EXPECT_NO_THROW(fleet.audit_admission());

    // run() drains the queue; the empty post-run state audits clean too.
    const auto report = fleet.run();
    EXPECT_NO_THROW(fleet.audit_admission());
    EXPECT_EQ(report.admitted, report.completed + report.rejected -
                                   report.aggregate.counter_value(
                                       "admission_rejected"));
    for (const auto& d : report.devices)
      EXPECT_NO_THROW(d.telemetry.audit("device"));
  }
}

// ---- TraceBuffer single-writer contract (audit builds only) -----------------

TEST(TraceAudit, SingleWriterPushStaysClean) {
  obs::Tracer tracer;
  auto track = tracer.track(0, 0, "proc", "lane");
  for (int i = 0; i < 1000; ++i)
    track.instant("cat", "ev" + std::to_string(i % 7), SimTime::ps(i));
  // Whether or not the busy-flag audit is compiled in, a well-behaved
  // single writer must never trip it.
  EXPECT_GT(tracer.to_json().size(), 0u);
}

}  // namespace
}  // namespace relogic
