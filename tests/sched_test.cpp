// Unit tests: relogic::sched (workloads, policies, event engine).
#include <gtest/gtest.h>

#include <cmath>

#include "relogic/config/port.hpp"
#include "relogic/reloc/cost.hpp"
#include "relogic/sched/scheduler.hpp"

namespace relogic::sched {
namespace {

reloc::RelocationCostModel fast_cost() {
  static const auto geom = fabric::DeviceGeometry::xcv200();
  static const config::SelectMapPort port;
  return reloc::RelocationCostModel(geom, port);
}

TEST(Workload, RandomTasksDeterministic) {
  RandomTaskParams p;
  p.task_count = 50;
  const auto a = random_tasks(p);
  const auto b = random_tasks(p);
  ASSERT_EQ(a.size(), 50u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].arrival, b[i].arrival);
    EXPECT_EQ(a[i].fn.height, b[i].fn.height);
  }
  // Arrivals are nondecreasing.
  for (std::size_t i = 1; i < a.size(); ++i)
    EXPECT_GE(a[i].arrival, a[i - 1].arrival);
}

TEST(Workload, GeneratorPoissonMatchesRandomTasks) {
  // random_tasks() delegates to the generator; same seed, same trace —
  // existing experiment seeds stay meaningful.
  RandomTaskParams p;
  p.task_count = 40;
  p.seed = 5;
  const auto legacy = random_tasks(p);
  WorkloadParams wp;
  wp.task_count = 40;
  wp.seed = 5;
  const auto gen = WorkloadGenerator(wp).generate();
  ASSERT_EQ(gen.size(), legacy.size());
  for (std::size_t i = 0; i < gen.size(); ++i) {
    EXPECT_EQ(gen[i].arrival, legacy[i].arrival);
    EXPECT_EQ(gen[i].fn.name, legacy[i].fn.name);
    EXPECT_EQ(gen[i].fn.height, legacy[i].fn.height);
    EXPECT_EQ(gen[i].fn.width, legacy[i].fn.width);
    EXPECT_EQ(gen[i].fn.duration, legacy[i].fn.duration);
    EXPECT_EQ(gen[i].fn.gated_clock, legacy[i].fn.gated_clock);
  }
}

TEST(Workload, AllPatternsDeterministicPerSeed) {
  for (const auto pattern :
       {ArrivalPattern::kPoisson, ArrivalPattern::kBursty,
        ArrivalPattern::kDiurnal, ArrivalPattern::kHeavyTail}) {
    WorkloadParams wp;
    wp.pattern = pattern;
    wp.task_count = 100;
    wp.seed = 9;
    const auto a = WorkloadGenerator(wp).generate();
    const auto b = WorkloadGenerator(wp).generate();
    ASSERT_EQ(a.size(), 100u) << to_string(pattern);
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].arrival, b[i].arrival) << to_string(pattern);
      EXPECT_EQ(a[i].fn.duration, b[i].fn.duration) << to_string(pattern);
    }
    for (std::size_t i = 1; i < a.size(); ++i)
      EXPECT_GE(a[i].arrival, a[i - 1].arrival) << to_string(pattern);

    wp.seed = 10;
    const auto c = WorkloadGenerator(wp).generate();
    bool differs = false;
    for (std::size_t i = 0; i < a.size(); ++i)
      differs = differs || a[i].arrival != c[i].arrival;
    EXPECT_TRUE(differs) << to_string(pattern);
  }
}

TEST(Workload, BurstyTraceHasBurstsAndGaps) {
  WorkloadParams wp;
  wp.pattern = ArrivalPattern::kBursty;
  wp.task_count = 200;
  wp.seed = 3;
  const auto t = WorkloadGenerator(wp).generate();
  double max_gap = 0.0;
  int fast = 0;
  for (std::size_t i = 1; i < t.size(); ++i) {
    const double gap = (t[i].arrival - t[i - 1].arrival).milliseconds();
    max_gap = std::max(max_gap, gap);
    if (gap < wp.mean_interarrival_ms) ++fast;
  }
  // Bursts: most interarrivals are far below the long-run mean...
  EXPECT_GT(fast, static_cast<int>(t.size()) * 3 / 4);
  // ...separated by gaps far above it.
  EXPECT_GT(max_gap, 5.0 * wp.mean_interarrival_ms);
}

TEST(Workload, HeavyTailDurationsBoundedButSpread) {
  WorkloadParams wp;
  wp.pattern = ArrivalPattern::kHeavyTail;
  wp.task_count = 300;
  wp.seed = 4;
  const auto t = WorkloadGenerator(wp).generate();
  double max_ms = 0.0;
  int below_mean = 0;
  for (const auto& task : t) {
    const double d = task.fn.duration.milliseconds();
    EXPECT_LE(d, wp.tail_cap * wp.mean_duration_ms);
    max_ms = std::max(max_ms, d);
    if (d < wp.mean_duration_ms) ++below_mean;
  }
  // Heavy tail: most tasks are short, a few are very long.
  EXPECT_GT(below_mean, static_cast<int>(t.size()) * 2 / 3);
  EXPECT_GT(max_ms, 5.0 * wp.mean_duration_ms);
}

TEST(Workload, DiurnalWaveModulatesArrivalRate) {
  WorkloadParams wp;
  wp.pattern = ArrivalPattern::kDiurnal;
  wp.task_count = 400;
  wp.seed = 6;
  const auto t = WorkloadGenerator(wp).generate();
  // The first half of each period carries the positive half of the sine:
  // with amplitude 0.8 it should receive markedly more arrivals.
  int peak = 0, trough = 0;
  for (const auto& task : t) {
    const double phase =
        std::fmod(task.arrival.milliseconds(), wp.wave_period_ms);
    (phase < wp.wave_period_ms / 2 ? peak : trough)++;
  }
  EXPECT_GT(peak, 2 * trough);
}

TEST(Workload, Fig1ShapeMatchesPaper) {
  const auto apps = fig1_applications();
  ASSERT_EQ(apps.size(), 3u);
  EXPECT_EQ(apps[0].functions.size(), 2u);  // A1, A2
  EXPECT_EQ(apps[1].functions.size(), 2u);  // B1, B2
  EXPECT_EQ(apps[2].functions.size(), 4u);  // C1..C4
  EXPECT_EQ(apps[2].functions[1].name, "C2");
}

TEST(Scheduler, SingleTaskRunsToCompletion) {
  SchedulerConfig cfg;
  Scheduler sched(16, 16, fast_cost(), cfg);
  FunctionSpec fn;
  fn.name = "t";
  fn.height = 4;
  fn.width = 4;
  fn.duration = SimTime::ms(10);
  const auto stats = sched.run_tasks({TaskArrival{fn, SimTime::ms(1)}});
  ASSERT_EQ(stats.tasks.size(), 1u);
  const auto& t = stats.tasks[0];
  EXPECT_FALSE(t.rejected);
  EXPECT_GE(t.run_start, t.ready);
  EXPECT_EQ(t.finish - t.run_start, SimTime::ms(10));
  EXPECT_EQ(stats.rejected, 0);
  EXPECT_GT(stats.config_port_busy, SimTime::zero());
}

TEST(Scheduler, OversizedTaskRejected) {
  SchedulerConfig cfg;
  Scheduler sched(8, 8, fast_cost(), cfg);
  FunctionSpec fn;
  fn.name = "big";
  fn.height = 9;
  fn.width = 2;
  const auto stats = sched.run_tasks({TaskArrival{fn, SimTime::zero()}});
  EXPECT_EQ(stats.rejected, 1);
  EXPECT_TRUE(stats.tasks[0].rejected);
}

TEST(Scheduler, QueueDrainsOnDepartures) {
  // Two 8x8 tasks on an 8x8 device: strictly sequential.
  SchedulerConfig cfg;
  cfg.policy = ManagementPolicy::kNoRearrange;
  Scheduler sched(8, 8, fast_cost(), cfg);
  FunctionSpec fn;
  fn.height = 8;
  fn.width = 8;
  fn.duration = SimTime::ms(5);
  fn.name = "a";
  std::vector<TaskArrival> tasks{{fn, SimTime::zero()}, {fn, SimTime::zero()}};
  tasks[1].fn.name = "b";
  const auto stats = sched.run_tasks(tasks);
  EXPECT_EQ(stats.rejected, 0);
  const auto& a = stats.tasks[0];
  const auto& b = stats.tasks[1];
  EXPECT_GE(b.run_start, a.finish);
}

TEST(Scheduler, TransparentPolicyNeverHalts) {
  RandomTaskParams p;
  p.task_count = 120;
  p.min_side = 4;
  p.max_side = 12;
  p.mean_interarrival_ms = 10.0;
  p.mean_duration_ms = 200.0;
  SchedulerConfig cfg;
  cfg.policy = ManagementPolicy::kTransparent;
  Scheduler sched(20, 20, fast_cost(), cfg);
  const auto stats = sched.run_tasks(random_tasks(p));
  EXPECT_EQ(stats.total_halted, SimTime::zero());
}

TEST(Scheduler, HaltAndMoveChargesDowntimeWhenItMoves) {
  RandomTaskParams p;
  p.task_count = 120;
  p.min_side = 4;
  p.max_side = 12;
  p.mean_interarrival_ms = 10.0;
  p.mean_duration_ms = 200.0;
  SchedulerConfig cfg;
  cfg.policy = ManagementPolicy::kHaltAndMove;
  Scheduler sched(20, 20, fast_cost(), cfg);
  const auto stats = sched.run_tasks(random_tasks(p));
  if (stats.rearrangement_moves > 0) {
    EXPECT_GT(stats.total_halted, SimTime::zero());
  }
}

TEST(Scheduler, RearrangementImprovesOnNone) {
  // Moderate load (~85% offered area): fragmentation blocks requests now
  // and then, and rearrangement has the headroom to pay off. (Under heavy
  // overload no policy helps — see bench_defrag_policies' load sweep.)
  RandomTaskParams p;
  p.task_count = 150;
  p.min_side = 5;
  p.max_side = 12;
  p.mean_interarrival_ms = 25.0;
  p.mean_duration_ms = 180.0;
  p.seed = 9;
  const auto tasks = random_tasks(p);

  auto run = [&](ManagementPolicy policy) {
    SchedulerConfig cfg;
    cfg.policy = policy;
    cfg.max_wait = SimTime::ms(500);
    Scheduler sched(20, 20, fast_cost(), cfg);
    return sched.run_tasks(tasks);
  };
  const auto none = run(ManagementPolicy::kNoRearrange);
  const auto transparent = run(ManagementPolicy::kTransparent);
  // The paper's core claim at scheduler level: rearrangement admits at
  // least as many tasks.
  EXPECT_LE(transparent.rejected, none.rejected);
  EXPECT_GT(transparent.rearrangement_moves, 0);
}

TEST(Scheduler, AppChainsRunInOrder) {
  SchedulerConfig cfg;
  Scheduler sched(28, 42, fast_cost(), cfg);
  const auto stats = sched.run_apps(fig1_applications(6), 1);
  // Within each application, functions finish in sequence.
  auto find = [&](const std::string& name) {
    for (const auto& t : stats.tasks)
      if (t.name == name) return t;
    throw std::runtime_error("missing " + name);
  };
  EXPECT_LE(find("A1").finish, find("A2").run_start);
  EXPECT_LE(find("C1").finish, find("C2").run_start);
  EXPECT_LE(find("C3").finish, find("C4").run_start);
  EXPECT_EQ(stats.rejected, 0);
}

TEST(Scheduler, PrefetchHidesConfigurationLatency) {
  // The Fig. 1 rt interval: the next function is configured while its
  // predecessor still runs, which requires two resident functions
  // (overlap = 2). With overlap = 1 prefetch cannot start early by
  // construction.
  const auto apps = fig1_applications(6);
  auto run = [&](bool prefetch) {
    SchedulerConfig cfg;
    cfg.prefetch = prefetch;
    Scheduler sched(28, 42, fast_cost(), cfg);
    return sched.run_apps(apps, 2);
  };
  const auto with = run(true);
  const auto without = run(false);
  EXPECT_LE(with.makespan, without.makespan);
  EXPECT_LT(with.avg_allocation_delay_ms(),
            without.avg_allocation_delay_ms());
}

TEST(Scheduler, HigherParallelismNeedsMoreAreaOrDelays) {
  // A device where the applications fit sequentially but not three-deep:
  // the paper's "an increase in the degree of parallelism may retard the
  // reconfiguration of incoming functions, due to lack of space".
  const auto apps = fig1_applications(8);
  auto run = [&](int overlap) {
    SchedulerConfig cfg;
    Scheduler sched(12, 16, fast_cost(), cfg);
    return sched.run_apps(apps, overlap);
  };
  const auto seq = run(1);
  const auto par = run(3);
  EXPECT_EQ(seq.rejected, 0);
  EXPECT_GT(par.avg_allocation_delay_ms() + par.rejected,
            seq.avg_allocation_delay_ms() + seq.rejected);
}

TEST(Scheduler, UtilizationBoundedAndPositive) {
  RandomTaskParams p;
  p.task_count = 80;
  SchedulerConfig cfg;
  Scheduler sched(20, 20, fast_cost(), cfg);
  const auto stats = sched.run_tasks(random_tasks(p));
  EXPECT_GT(stats.utilization_avg, 0.0);
  EXPECT_LE(stats.utilization_avg, 1.0);
  EXPECT_GE(stats.fragmentation_avg, 0.0);
  EXPECT_LE(stats.fragmentation_max, 1.0);
}

}  // namespace
}  // namespace relogic::sched
