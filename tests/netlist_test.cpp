// Unit tests: relogic::netlist (builder, validation, golden model,
// benchmark circuits).
#include <gtest/gtest.h>

#include "relogic/common/rng.hpp"
#include "relogic/netlist/benchmarks.hpp"
#include "relogic/netlist/golden.hpp"
#include "relogic/netlist/netlist.hpp"

namespace relogic::netlist {
namespace {

using bench::ClockingStyle;

TEST(NetlistBuilder, GateCountsAndKinds) {
  Netlist nl("t");
  const SigId a = nl.input("a");
  const SigId b = nl.input("b");
  const SigId x = nl.and_(a, b);
  const SigId q = nl.dff(x, std::nullopt, false, "q");
  nl.output("out", q);
  nl.validate();
  EXPECT_EQ(nl.gate_count(), 1);
  EXPECT_EQ(nl.ff_count(), 1);
  EXPECT_EQ(nl.latch_count(), 0);
  EXPECT_FALSE(nl.has_gated_clock());
  EXPECT_TRUE(nl.is_sequential());
}

TEST(NetlistBuilder, GatedClockDetected) {
  Netlist nl("t");
  const SigId a = nl.input("a");
  const SigId ce = nl.input("ce");
  nl.output("q", nl.dff(a, ce));
  EXPECT_TRUE(nl.has_gated_clock());
}

TEST(NetlistBuilder, FeedbackConstruction) {
  Netlist nl("toggler");
  const SigId q = nl.dff_feedback(false, "q");
  nl.connect_dff(q, nl.not_(q));
  nl.output("q", q);
  nl.validate();

  GoldenSim sim(nl);
  EXPECT_FALSE(sim.output("q"));
  sim.clock();
  EXPECT_TRUE(sim.output("q"));
  sim.clock();
  EXPECT_FALSE(sim.output("q"));
}

TEST(NetlistBuilder, UnconnectedFeedbackFailsValidation) {
  Netlist nl("bad");
  (void)nl.dff_feedback(false, "q");
  EXPECT_THROW(nl.validate(), ContractError);
}

TEST(NetlistBuilder, DoubleConnectRejected) {
  Netlist nl("t");
  const SigId a = nl.input("a");
  const SigId q = nl.dff_feedback();
  nl.connect_dff(q, a);
  EXPECT_THROW(nl.connect_dff(q, a), ContractError);
}

TEST(NetlistBuilder, CombinationalCycleDetected) {
  Netlist nl("cyc");
  const SigId a = nl.input("a");
  // lut(lut) cycle cannot be built directly (ids must exist), but a latch
  // loop with no state break... use two luts via feedback-free API is
  // impossible; verify topo_order succeeds on a DAG instead and the FF
  // breaks cycles.
  const SigId q = nl.dff_feedback();
  const SigId x = nl.xor_(a, q);
  nl.connect_dff(q, x);
  EXPECT_NO_THROW(nl.validate());
}

TEST(NetlistBuilder, WideHelpers) {
  Netlist nl("w");
  std::vector<SigId> ins;
  for (int i = 0; i < 5; ++i) ins.push_back(nl.input("i" + std::to_string(i)));
  nl.output("and", nl.and_tree(ins));
  nl.output("or", nl.or_tree(ins));
  nl.output("xor", nl.xor_tree(ins));
  nl.output("eq19", nl.equals_const(ins, 19));
  nl.validate();

  GoldenSim sim(nl);
  auto set = [&](unsigned v) {
    for (int i = 0; i < 5; ++i) sim.set_input(ins[i], (v >> i) & 1);
    sim.settle();
  };
  set(31);
  EXPECT_TRUE(sim.output("and"));
  EXPECT_TRUE(sim.output("or"));
  EXPECT_TRUE(sim.output("xor"));  // five ones
  EXPECT_FALSE(sim.output("eq19"));
  set(19);
  EXPECT_FALSE(sim.output("and"));
  EXPECT_TRUE(sim.output("eq19"));
  set(0);
  EXPECT_FALSE(sim.output("or"));
}

TEST(GoldenSim, CounterCountsAndWraps) {
  const auto nl = bench::counter(3);
  GoldenSim sim(nl);
  for (int expect = 1; expect <= 8; ++expect) {
    sim.clock();
    const int got = sim.output("q0") + 2 * sim.output("q1") +
                    4 * sim.output("q2");
    EXPECT_EQ(got, expect % 8);
  }
  // Terminal count right before wrap: count is 0 after 8 clocks, so 7 more
  // reach 7 (all ones).
  for (int i = 0; i < 7; ++i) sim.clock();
  EXPECT_TRUE(sim.output("tc"));
}

TEST(GoldenSim, GatedCounterHoldsWhenCeLow) {
  const auto nl = bench::counter(4, ClockingStyle::kGatedClock);
  GoldenSim sim(nl);
  sim.set_input("ce", true);
  sim.settle();
  for (int i = 0; i < 5; ++i) sim.clock();
  const auto held = sim.state();
  sim.set_input("ce", false);
  sim.settle();
  for (int i = 0; i < 7; ++i) sim.clock();
  EXPECT_EQ(sim.state(), held);
  sim.set_input("ce", true);
  sim.settle();
  sim.clock();
  EXPECT_NE(sim.state(), held);
}

TEST(GoldenSim, ShiftRegisterDelaysBits) {
  const auto nl = bench::shift_register(4);
  GoldenSim sim(nl);
  const bool pattern[] = {true, false, true, true, false, false, true, false};
  std::vector<bool> out;
  for (const bool bit : pattern) {
    sim.set_input("din", bit);
    sim.settle();
    sim.clock();
    out.push_back(sim.output("dout"));
  }
  // Sampling after the k-th edge, dout carries the input from 4 edges
  // earlier: out[i] = pattern[i - 3].
  for (int i = 3; i < 8; ++i) EXPECT_EQ(out[i], pattern[i - 3]) << i;
}

TEST(GoldenSim, LfsrHasFullishPeriod) {
  const auto nl = bench::lfsr(5, 0b10100);  // x^5 + x^3 + 1: period 31
  GoldenSim sim(nl);
  const auto start = sim.state();
  int period = 0;
  do {
    sim.clock();
    ++period;
  } while (sim.state() != start && period < 64);
  EXPECT_EQ(period, 31);
}

TEST(GoldenSim, AsyncPipelinePassesTokenWithTwoPhases) {
  const auto nl = bench::async_pipeline(4);
  GoldenSim sim(nl);
  auto phase = [&](bool din, bool p1, bool p2) {
    sim.set_input("din", din);
    sim.set_input("phi1", p1);
    sim.set_input("phi2", p2);
    sim.settle();
  };
  phase(true, false, false);
  phase(true, true, false);   // stage 0 captures 1
  phase(true, false, false);
  phase(false, false, true);  // stage 1 captures
  phase(false, true, false);  // stage 2
  phase(false, false, true);  // stage 3 -> dout
  EXPECT_TRUE(sim.output("dout"));
}

TEST(GoldenSim, LatchTransparencyFollowsGate) {
  Netlist nl("lat");
  const SigId d = nl.input("d");
  const SigId g = nl.input("g");
  nl.output("q", nl.latch(d, g));
  GoldenSim sim(nl);
  sim.set_input("d", true);
  sim.set_input("g", true);
  sim.settle();
  EXPECT_TRUE(sim.output("q"));
  sim.set_input("g", false);
  sim.settle();
  sim.set_input("d", false);
  sim.settle();
  EXPECT_TRUE(sim.output("q"));  // held
  sim.set_input("g", true);
  sim.settle();
  EXPECT_FALSE(sim.output("q"));  // transparent again
}

TEST(Benchmarks, PublishedFFCounts) {
  EXPECT_EQ(bench::b01().ff_count(), 5);
  EXPECT_EQ(bench::b02().ff_count(), 4);
  EXPECT_EQ(bench::b06().ff_count(), 9);
  for (const auto& e : bench::itc99_suite(ClockingStyle::kFreeRunning)) {
    EXPECT_EQ(e.circuit.ff_count(), e.published_ffs) << e.name;
  }
}

TEST(Benchmarks, GatedStyleAddsCeEverywhere) {
  for (const auto& e : bench::itc99_suite(ClockingStyle::kGatedClock)) {
    EXPECT_TRUE(e.circuit.has_gated_clock()) << e.name;
  }
}

TEST(Benchmarks, RandomFsmDeterministicBySeed) {
  const auto a = bench::random_fsm("x", 12, 3, 3, 7);
  const auto b = bench::random_fsm("x", 12, 3, 3, 7);
  const auto c = bench::random_fsm("x", 12, 3, 3, 8);
  EXPECT_EQ(a.node_count(), b.node_count());
  EXPECT_EQ(a.ff_count(), 12);
  // Same seeds give identical behaviour.
  GoldenSim sa(a), sb(b), sc(c);
  Rng rng(3);
  bool diverged = false;
  for (int i = 0; i < 40; ++i) {
    for (std::size_t k = 0; k < a.inputs().size(); ++k) {
      const bool v = rng.next_bool();
      sa.set_input(a.inputs()[k], v);
      sb.set_input(b.inputs()[k], v);
      sc.set_input(c.inputs()[k], v);
    }
    sa.settle();
    sb.settle();
    sc.settle();
    sa.clock();
    sb.clock();
    sc.clock();
    ASSERT_EQ(sa.state(), sb.state());
    if (sa.state() != sc.state()) diverged = true;
  }
  EXPECT_TRUE(diverged);  // a different seed is a different machine
}

TEST(Benchmarks, B01SerialAddBehaviour) {
  const auto nl = bench::b01();
  GoldenSim sim(nl);
  // 1+1 with no carry -> sum 0, carry set; next 0+0 -> sum 1 (carry in).
  sim.set_input("line1", true);
  sim.set_input("line2", true);
  sim.settle();
  sim.clock();
  EXPECT_FALSE(sim.output("outp"));
  sim.set_input("line1", false);
  sim.set_input("line2", false);
  sim.settle();
  sim.clock();
  EXPECT_TRUE(sim.output("outp"));
}

}  // namespace
}  // namespace relogic::netlist
