// Parameterized sweep: every ITC'99-class suite circuit, in both clocking
// styles, implemented on the XCV200 model and held in lockstep with its
// golden model under random stimuli — then migrated while running.
//
// This is the paper's validation campaign as a test (the bench variant
// additionally reports timing).
#include <gtest/gtest.h>

#include "relogic/config/controller.hpp"
#include "relogic/config/port.hpp"
#include "relogic/netlist/benchmarks.hpp"
#include "relogic/place/implement.hpp"
#include "relogic/reloc/engine.hpp"
#include "relogic/sim/harness.hpp"
#include "testenv.hpp"

namespace relogic {
namespace {

using netlist::bench::ClockingStyle;

struct Param {
  int suite_index;
  ClockingStyle style;
};

class SuiteLockstep : public ::testing::TestWithParam<Param> {};

TEST_P(SuiteLockstep, RunsAndMigratesCleanly) {
  const auto [index, style] = GetParam();
  const auto suite = netlist::bench::itc99_suite(style);
  ASSERT_LT(static_cast<std::size_t>(index), suite.size());
  const auto& entry = suite[static_cast<std::size_t>(index)];

  fabric::Fabric fab(fabric::DeviceGeometry::xcv200());
  const fabric::DelayModel dm;
  config::BoundaryScanPort port;
  config::ConfigController controller(fab, port, true);
  sim::FabricSim sim(fab, dm);
  sim.add_clock(sim::ClockSpec{});
  place::Implementer implementer(fab, dm);
  place::Router router(fab, dm);
  reloc::RelocationEngine engine(controller, router, &sim);

  const auto mapped = netlist::map_netlist(entry.circuit);
  place::ImplementOptions opts;
  opts.region = place::suggest_region(mapped, {2, 2}, fab.geometry());
  auto impl = implementer.implement(mapped, opts);

  sim::CircuitHarness harness(sim, entry.circuit, impl);
  harness.watch_registered_outputs();
  Rng rng(0x5111 + static_cast<unsigned>(index));

  for (int i = 0; i < 15; ++i)
    ASSERT_TRUE(harness.step_random(rng).ok())
        << entry.name << ": " << harness.mismatch_log().back();

  // Migrate the first 4 cells (sampling keeps the sweep fast; the Fig. 4
  // bench covers more).
  for (int i = 0; i < std::min(4, impl.cell_count()); ++i) {
    const place::CellSite dest{
        ClbCoord{impl.region.row + 15, impl.region.col + 20 + i / 4}, i % 4};
    const auto rep = engine.relocate_cell(impl, i, dest);
    EXPECT_GT(rep.frames_written, 0);
  }

  for (int i = 0; i < 15; ++i)
    ASSERT_TRUE(harness.step_random(rng).ok())
        << entry.name << ": " << harness.mismatch_log().back();
  EXPECT_TRUE(sim.monitor().clean()) << entry.name;
}

std::vector<Param> all_params() {
  std::vector<Param> out;
  // Smoke mode (the default) runs a small/medium/single-bit cross-section;
  // RELOGIC_SLOW_TESTS=ON restores the full 8-circuit campaign.
  const std::vector<int> circuits = testenv::slow_tests_enabled()
                                        ? std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}
                                        : std::vector<int>{0, 2, 5};
  for (int i : circuits) {
    out.push_back({i, ClockingStyle::kFreeRunning});
    out.push_back({i, ClockingStyle::kGatedClock});
  }
  return out;
}

std::string param_name(const ::testing::TestParamInfo<Param>& info) {
  static const char* names[] = {"b01",  "b02",  "b06",  "b03c",
                                "b08c", "b09c", "b10c", "b13c"};
  return std::string(names[info.param.suite_index]) +
         (info.param.style == ClockingStyle::kFreeRunning ? "_free"
                                                          : "_gated");
}

INSTANTIATE_TEST_SUITE_P(Itc99, SuiteLockstep,
                         ::testing::ValuesIn(all_params()), param_name);

}  // namespace
}  // namespace relogic
