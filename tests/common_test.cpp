// Unit tests: relogic::common (time, geometry, rng, logging, errors).
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <utility>
#include <vector>

#include "relogic/common/error.hpp"
#include "relogic/common/geometry.hpp"
#include "relogic/common/logging.hpp"
#include "relogic/common/rng.hpp"
#include "relogic/common/time.hpp"

namespace relogic {
namespace {

TEST(SimTime, UnitConstructorsAgree) {
  EXPECT_EQ(SimTime::ns(1).picoseconds(), 1000);
  EXPECT_EQ(SimTime::us(1).picoseconds(), 1000000);
  EXPECT_EQ(SimTime::ms(1).picoseconds(), 1000000000);
  EXPECT_DOUBLE_EQ(SimTime::ms(22).milliseconds(), 22.0);
}

TEST(SimTime, Arithmetic) {
  const SimTime a = SimTime::ns(3);
  const SimTime b = SimTime::ns(2);
  EXPECT_EQ((a + b).picoseconds(), 5000);
  EXPECT_EQ((a - b).picoseconds(), 1000);
  EXPECT_EQ((a * 4).picoseconds(), 12000);
  EXPECT_EQ(a / b, 1);
  EXPECT_LT(b, a);
}

TEST(SimTime, ToStringPicksUnit) {
  EXPECT_EQ(SimTime::ms(22).to_string(), "22.000 ms");
  EXPECT_EQ(SimTime::ns(1).to_string(), "1.000 ns");
  EXPECT_EQ(SimTime::ps(1).to_string(), "1 ps");
}

TEST(Geometry, ManhattanDistance) {
  EXPECT_EQ(manhattan({0, 0}, {3, 4}), 7);
  EXPECT_EQ(manhattan({3, 4}, {0, 0}), 7);
  EXPECT_EQ(manhattan({2, 2}, {2, 2}), 0);
}

TEST(Geometry, RectContainsAndOverlaps) {
  const ClbRect r{2, 3, 4, 5};  // rows 2..5, cols 3..7
  EXPECT_TRUE(r.contains(ClbCoord{2, 3}));
  EXPECT_TRUE(r.contains(ClbCoord{5, 7}));
  EXPECT_FALSE(r.contains(ClbCoord{6, 3}));
  EXPECT_FALSE(r.contains(ClbCoord{2, 8}));
  EXPECT_EQ(r.area(), 20);

  EXPECT_TRUE(r.overlaps(ClbRect{5, 7, 1, 1}));
  EXPECT_FALSE(r.overlaps(ClbRect{6, 3, 2, 2}));
  EXPECT_TRUE(r.contains(ClbRect{3, 4, 2, 2}));
  EXPECT_FALSE(r.contains(ClbRect{3, 4, 4, 2}));
}

TEST(Rng, DeterministicBySeed) {
  Rng a(42), b(42), c(43);
  EXPECT_EQ(a.next_u64(), b.next_u64());
  EXPECT_NE(a.next_u64(), c.next_u64());
}

TEST(Rng, NextIntInRange) {
  Rng rng(7);
  std::set<int> seen;
  for (int i = 0; i < 1000; ++i) {
    const int v = rng.next_int(3, 9);
    ASSERT_GE(v, 3);
    ASSERT_LE(v, 9);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.next_double();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
  }
}

TEST(Rng, ExponentialHasRoughlyRightMean) {
  Rng rng(11);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.next_exponential(5.0);
  EXPECT_NEAR(sum / n, 5.0, 0.2);
}

TEST(Logging, SinkCapturesLinesWithContextPrefix) {
  std::vector<std::pair<LogLevel, std::string>> captured;
  set_log_sink([&captured](LogLevel level, const std::string& msg) {
    captured.emplace_back(level, msg);
  });
  set_log_level(LogLevel::kInfo);

  RELOGIC_LOG(kInfo) << "plain";
  set_log_context("sched", SimTime::ms(12));
  RELOGIC_LOG(kInfo) << "ctx";
  RELOGIC_LOG(kDebug) << "below threshold, dropped";
  clear_log_context();
  RELOGIC_LOG(kWarn) << "after clear";

  set_log_level(LogLevel::kOff);
  set_log_sink(nullptr);
  RELOGIC_LOG(kError) << "after sink reset";  // to stderr, not captured

  ASSERT_EQ(captured.size(), 3u);
  EXPECT_EQ(captured[0].first, LogLevel::kInfo);
  EXPECT_EQ(captured[0].second, "plain");
  // Context-tagged line: simulated timestamp + component, then the message.
  EXPECT_EQ(captured[1].second, "[t=12.000ms sched] ctx");
  EXPECT_EQ(captured[2].first, LogLevel::kWarn);
  EXPECT_EQ(captured[2].second, "after clear");
}

TEST(Error, CheckMacroThrowsContractError) {
  EXPECT_THROW(RELOGIC_CHECK(false), ContractError);
  EXPECT_NO_THROW(RELOGIC_CHECK(true));
  try {
    RELOGIC_CHECK_MSG(false, "extra context");
    FAIL();
  } catch (const ContractError& e) {
    EXPECT_NE(std::string(e.what()).find("extra context"), std::string::npos);
  }
}

}  // namespace
}  // namespace relogic
