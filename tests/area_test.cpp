// Unit tests: relogic::area (manager, fragmentation metrics, defrag
// planners) including the free-space partition invariant.
#include <gtest/gtest.h>

#include "relogic/area/defrag.hpp"
#include "relogic/area/manager.hpp"
#include "relogic/common/rng.hpp"

namespace relogic::area {
namespace {

TEST(AreaManager, AllocateReleaseRoundTrip) {
  AreaManager mgr(10, 10);
  EXPECT_EQ(mgr.free_clbs(), 100);
  const auto id = mgr.allocate("a", 3, 4);
  ASSERT_NE(id, kNoRegion);
  EXPECT_EQ(mgr.free_clbs(), 88);
  EXPECT_EQ(mgr.region(id).rect.area(), 12);
  EXPECT_EQ(mgr.at(ClbCoord{mgr.region(id).rect.row,
                            mgr.region(id).rect.col}),
            id);
  mgr.release(id);
  EXPECT_EQ(mgr.free_clbs(), 100);
  EXPECT_FALSE(mgr.exists(id));
}

TEST(AreaManager, BottomLeftIsDeterministicTopLeftScan) {
  AreaManager mgr(6, 6);
  const auto a = mgr.allocate("a", 2, 2);
  EXPECT_EQ(mgr.region(a).rect, (ClbRect{0, 0, 2, 2}));
  const auto b = mgr.allocate("b", 2, 2);
  EXPECT_EQ(mgr.region(b).rect, (ClbRect{0, 2, 2, 2}));
}

TEST(AreaManager, AllocationFailsWhenNothingFits) {
  AreaManager mgr(4, 4);
  EXPECT_NE(mgr.allocate("a", 4, 3), kNoRegion);
  EXPECT_EQ(mgr.allocate("b", 2, 2), kNoRegion);
  EXPECT_FALSE(mgr.can_fit(2, 2));
  EXPECT_TRUE(mgr.can_fit(4, 1));
}

TEST(AreaManager, LargestFreeRectExact) {
  AreaManager mgr(6, 8);
  // Occupy a plus-shape to carve the free space.
  mgr.allocate_at("v", ClbRect{0, 3, 6, 2});  // vertical bar cols 3..4
  const auto r = mgr.largest_free_rect();
  EXPECT_EQ(r.area(), 18);  // 6x3 either side
  mgr.allocate_at("h", ClbRect{2, 0, 2, 3});  // notch the left side
  EXPECT_EQ(mgr.largest_free_rect().area(), 18);  // right side wins
}

TEST(AreaManager, FragmentationMetric) {
  AreaManager mgr(8, 8);
  EXPECT_DOUBLE_EQ(mgr.fragmentation(), 0.0);  // one free rect
  // Checkerboard of 2x2 blocks leaves free space shattered.
  for (int r = 0; r < 8; r += 4) {
    for (int c = 0; c < 8; c += 4) {
      mgr.allocate_at("b", ClbRect{r, c, 2, 2});
      mgr.allocate_at("b2", ClbRect{r + 2, c + 2, 2, 2});
    }
  }
  EXPECT_GT(mgr.fragmentation(), 0.5);
  EXPECT_EQ(mgr.free_clbs(), 32);
}

TEST(AreaManager, MoveRejectsCollisionAndRollsBack) {
  AreaManager mgr(6, 6);
  const auto a = mgr.allocate_at("a", ClbRect{0, 0, 2, 2});
  const auto b = mgr.allocate_at("b", ClbRect{0, 3, 2, 2});
  EXPECT_FALSE(mgr.can_move(a, ClbRect{0, 2, 2, 2}) &&
               false);  // overlaps b? col 2..3 vs 3..4: col 3 collides
  EXPECT_THROW(mgr.move(a, ClbRect{0, 3, 2, 2}), IllegalOperationError);
  // Rollback left everything intact.
  EXPECT_EQ(mgr.region(a).rect, (ClbRect{0, 0, 2, 2}));
  EXPECT_EQ(mgr.at({0, 3}), b);
  // Overlapping self-move is fine.
  EXPECT_TRUE(mgr.can_move(a, ClbRect{1, 0, 2, 2}));
  mgr.move(a, ClbRect{1, 0, 2, 2});
  EXPECT_EQ(mgr.at({2, 0}), a);
  EXPECT_EQ(mgr.at({0, 0}), kNoRegion);
}

TEST(AreaManager, FreeSpacePartitionInvariant) {
  // Property: sum of region areas + free_clbs == total, after random ops.
  Rng rng(11);
  AreaManager mgr(16, 16);
  std::vector<RegionId> live;
  for (int step = 0; step < 400; ++step) {
    if (live.empty() || rng.next_bool(0.6)) {
      const auto id = mgr.allocate("r", rng.next_int(1, 5), rng.next_int(1, 5));
      if (id != kNoRegion) live.push_back(id);
    } else {
      const std::size_t pick = rng.next_below(live.size());
      mgr.release(live[pick]);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
    }
    int used = 0;
    for (const auto& r : mgr.regions()) used += r.rect.area();
    ASSERT_EQ(used + mgr.free_clbs(), mgr.total_clbs());
    ASSERT_EQ(mgr.region_count(), live.size());
  }
}

TEST(Defrag, PlanForRequestSolvesFragmentation) {
  AreaManager mgr(8, 8);
  // Bands: occupy rows 2-3 fully, leaving rows 0-1 and 4-7 free but split.
  mgr.allocate_at("band", ClbRect{2, 0, 2, 8});
  mgr.allocate_at("blob", ClbRect{5, 2, 2, 3});
  EXPECT_FALSE(mgr.can_fit(5, 5));
  EXPECT_GE(mgr.free_clbs(), 25);

  const auto plan = plan_for_request(mgr, 5, 5);
  ASSERT_TRUE(plan.has_value());
  EXPECT_GE(plan->moves.size(), 1u);

  // Executing the plan move-by-move is legal and yields the slot.
  for (const auto& mv : plan->moves) {
    ASSERT_TRUE(mgr.can_move(mv.region, mv.to));
    mgr.move(mv.region, mv.to);
  }
  EXPECT_TRUE(mgr.can_fit(5, 5));
}

TEST(Defrag, PlanReturnsNulloptWhenAreaInsufficient) {
  AreaManager mgr(4, 4);
  mgr.allocate_at("a", ClbRect{0, 0, 4, 2});
  EXPECT_EQ(plan_for_request(mgr, 4, 3), std::nullopt);
}

TEST(Defrag, MoveBoundRespected) {
  AreaManager mgr(8, 8);
  for (int i = 0; i < 4; ++i) mgr.allocate_at("x", ClbRect{i * 2, 2, 1, 4});
  DefragOptions opt;
  opt.max_moves = 0;
  EXPECT_EQ(plan_for_request(mgr, 8, 5, opt), std::nullopt);
}

TEST(Defrag, FullCompactionPacksEverything) {
  Rng rng(5);
  AreaManager mgr(12, 12);
  std::vector<RegionId> live;
  for (int i = 0; i < 12; ++i) {
    const auto id = mgr.allocate("r" + std::to_string(i), rng.next_int(1, 4),
                                 rng.next_int(1, 4));
    if (id != kNoRegion) live.push_back(id);
  }
  // Punch holes.
  for (std::size_t i = 0; i < live.size(); i += 2) mgr.release(live[i]);

  const double frag_before = mgr.fragmentation();
  const auto plan = plan_full_compaction(mgr);
  ASSERT_TRUE(plan.has_value());
  for (const auto& mv : plan->moves) {
    ASSERT_TRUE(mgr.can_move(mv.region, mv.to))
        << "plan not sequentially executable";
    mgr.move(mv.region, mv.to);
  }
  EXPECT_LE(mgr.fragmentation(), frag_before);
  // After compaction the free space is (nearly) one rectangle.
  EXPECT_GE(mgr.largest_free_rect().area(), mgr.free_clbs() * 3 / 4);
}

TEST(AreaManager, AsciiRenderingShowsRegionsAndHoles) {
  AreaManager mgr(3, 4);
  mgr.allocate_at("a", ClbRect{0, 0, 2, 2});
  mgr.allocate_at("b", ClbRect{2, 2, 1, 2});
  const std::string art = mgr.to_ascii();
  EXPECT_EQ(art,
            "AA..\n"
            "AA..\n"
            "..BB\n");
}

TEST(Defrag, FullCompactionWithPendingReservesSlot) {
  AreaManager mgr(8, 8);
  mgr.allocate_at("a", ClbRect{3, 3, 2, 2});
  const auto plan = plan_full_compaction(mgr, {{4, 4}});
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->request_slot.height, 4);
  EXPECT_EQ(plan->request_slot.width, 4);
}

TEST(Defrag, RequestPlannerMatchesPerShapePlanning) {
  // The planner's contract: plan(h, w) on one shared move sequence returns
  // exactly what a fresh plan_for_request(mgr, h, w) would — including
  // after other shapes have extended the shared sequence, and regardless
  // of query order. Exercise many fragmented states and shape orders.
  Rng rng(77);
  for (int trial = 0; trial < 8; ++trial) {
    AreaManager mgr(16, 16);
    std::vector<RegionId> live;
    for (int i = 0; i < 14; ++i) {
      const auto id =
          mgr.allocate("r", rng.next_int(2, 6), rng.next_int(2, 6));
      if (id != kNoRegion) live.push_back(id);
    }
    for (std::size_t i = 0; i < live.size(); i += 2) mgr.release(live[i]);

    std::vector<std::pair<int, int>> shapes;
    for (int h = 1; h <= 12; h += 3)
      for (int w = 1; w <= 12; w += 3) shapes.push_back({h, w});
    rng.shuffle(shapes);  // query order must not matter

    const RequestPlanner planner(mgr);
    for (const auto& [h, w] : shapes) {
      const auto shared = planner.plan(h, w);
      const auto fresh = plan_for_request(mgr, h, w);
      ASSERT_EQ(shared.has_value(), fresh.has_value())
          << "trial " << trial << " shape " << h << "x" << w;
      if (!shared) continue;
      EXPECT_EQ(shared->request_slot, fresh->request_slot);
      ASSERT_EQ(shared->moves.size(), fresh->moves.size());
      for (std::size_t i = 0; i < shared->moves.size(); ++i) {
        EXPECT_EQ(shared->moves[i].region, fresh->moves[i].region);
        EXPECT_EQ(shared->moves[i].from, fresh->moves[i].from);
        EXPECT_EQ(shared->moves[i].to, fresh->moves[i].to);
      }
    }
  }
}

}  // namespace
}  // namespace relogic::area
