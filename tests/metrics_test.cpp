// Tests for the time-series metrics plane (obs::MetricsTimeline): histogram
// quantile edge cases, windowed series derived from snapshot deltas, the
// fleet fold, exporter shapes, and the determinism contract (DESIGN.md
// §7.5) — same seed + config produces byte-identical metrics documents
// regardless of repeat runs or worker-thread count.
#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "relogic/common/audit.hpp"
#include "relogic/obs/prom_export.hpp"
#include "relogic/obs/timeline.hpp"
#include "relogic/runtime/fleet.hpp"
#include "relogic/runtime/telemetry.hpp"
#include "relogic/sched/workload.hpp"

namespace relogic::obs {
namespace {

using runtime::Histogram;
using runtime::Telemetry;

SimTime ms(double v) {
  return SimTime::ps(static_cast<std::int64_t>(v * 1e9));
}

// ---- Histogram::quantile edge cases -----------------------------------------

TEST(HistogramQuantile, EmptyHistogramReportsZeroNotGarbage) {
  Histogram h;
  EXPECT_EQ(h.quantile(0.5), 0.0);
  EXPECT_EQ(h.quantile(0.99), 0.0);
}

TEST(HistogramQuantile, SingleSampleEveryQuantileIsThatSample) {
  Histogram h;
  h.observe(3.0);
  // Conservative estimate: the bucket upper bound, clamped to the true max.
  EXPECT_EQ(h.quantile(0.0), 3.0);
  EXPECT_EQ(h.quantile(0.5), 3.0);
  EXPECT_EQ(h.quantile(1.0), 3.0);
}

TEST(HistogramQuantile, AllObservationsInOverflowBucketClampToMax) {
  Histogram h(std::vector<double>{1.0, 2.0});
  h.observe(100.0);
  h.observe(250.0);
  // Every sample is past the last bound; the estimate must not invent a
  // finite bucket bound below the data.
  EXPECT_EQ(h.quantile(0.5), 250.0);
  EXPECT_EQ(h.quantile(0.99), 250.0);
}

TEST(HistogramQuantile, QuantileNeverExceedsMaxNorPrecedesData) {
  Histogram h(std::vector<double>{1.0, 10.0, 100.0});
  h.observe(0.5);
  h.observe(5.0);
  h.observe(5.5);
  h.observe(50.0);
  EXPECT_EQ(h.quantile(0.25), 1.0);   // first observation's bucket bound
  EXPECT_EQ(h.quantile(0.75), 10.0);  // third observation's bucket bound
  EXPECT_EQ(h.quantile(1.0), 50.0);   // clamped to the true maximum
}

// ---- windowed quantiles from bucket deltas ----------------------------------

TEST(WindowQuantile, BucketDeltaQuantilesSeeOnlyTheWindow) {
  Telemetry reg;
  Histogram& h = reg.histogram("lat_ms", {1.0, 10.0, 100.0});
  MetricsTimeline tl;
  h.observe(0.5);  // window 1: one fast observation
  tl.record(ms(1), reg);
  for (int i = 0; i < 9; ++i) h.observe(50.0);  // window 2: all slow
  tl.record(ms(2), reg);

  // Cumulatively p50 is still dominated by the slow samples, but window 1
  // must report the fast bucket and window 2 the slow one.
  EXPECT_EQ(tl.window_quantile(0, "lat_ms", 0.5), std::optional<double>(1.0));
  EXPECT_EQ(tl.window_quantile(1, "lat_ms", 0.5), std::optional<double>(100.0));
  EXPECT_EQ(tl.window_hist_count(0, "lat_ms"), 1);
  EXPECT_EQ(tl.window_hist_count(1, "lat_ms"), 9);
}

TEST(WindowQuantile, EmptyWindowReportsNoDataNotStaleValues) {
  Telemetry reg;
  reg.histogram("lat_ms").observe(5.0);
  MetricsTimeline tl;
  tl.record(ms(1), reg);
  tl.record(ms(2), reg);  // nothing new observed in this window

  EXPECT_EQ(tl.window_hist_count(1, "lat_ms"), 0);
  EXPECT_EQ(tl.window_quantile(1, "lat_ms", 0.5), std::nullopt);
  // The JSON exporter must omit the window quantile keys, not carry the
  // cumulative value forward.
  const std::string json = tl.to_json();
  const std::size_t second_row = json.find("\"t_ms\": 2");
  ASSERT_NE(second_row, std::string::npos);
  EXPECT_EQ(json.find("\"window_p50\"", second_row), std::string::npos);
  EXPECT_NE(json.find("\"window_count\": 0", second_row), std::string::npos);
}

TEST(WindowQuantile, OverflowOnlyWindowReportsLargestFiniteBound) {
  const std::vector<double> bounds{1.0, 2.0};
  const std::vector<std::int64_t> counts{0, 0, 4};  // all overflow
  EXPECT_EQ(MetricsTimeline::quantile_from_buckets(bounds, counts, 0.5),
            std::optional<double>(2.0));
  EXPECT_EQ(MetricsTimeline::quantile_from_buckets(bounds, {0, 0, 0}, 0.5),
            std::nullopt);
}

// ---- counter windows --------------------------------------------------------

TEST(MetricsTimeline, CounterDeltasAndRatesPerWindow) {
  Telemetry reg;
  MetricsTimeline tl;
  reg.counter("done").add(4);
  tl.record(ms(2), reg);
  reg.counter("done").add(6);
  tl.record(ms(4), reg);

  EXPECT_EQ(tl.counter_delta(0, "done"), 4);  // row 0: vs zero baseline
  EXPECT_EQ(tl.counter_delta(1, "done"), 6);
  EXPECT_DOUBLE_EQ(tl.counter_rate_per_s(0, "done"), 4 / 0.002);
  EXPECT_DOUBLE_EQ(tl.counter_rate_per_s(1, "done"), 6 / 0.002);
}

TEST(MetricsTimeline, SameInstantSampleReplacesThePreviousRow) {
  Telemetry reg;
  MetricsTimeline tl;
  reg.counter("done").add(1);
  tl.record(ms(5), reg);
  reg.counter("done").add(1);
  tl.record(ms(5), reg);  // closing sample on the same tick instant
  ASSERT_EQ(tl.size(), 1u);
  EXPECT_EQ(tl.samples().back().counters.at("done"), 2);
  EXPECT_NO_THROW(tl.audit("replaced-row"));
}

// ---- fleet fold -------------------------------------------------------------

TEST(MetricsFold, UnionOfTimesWithCarryForwardStaysMonotone) {
  Telemetry a, b;
  MetricsTimeline ta, tb;
  a.counter("done").add(1);
  ta.record(ms(1), a);
  a.counter("done").add(1);
  ta.record(ms(3), a);  // device A ends at 3 ms
  b.counter("done").add(5);
  tb.record(ms(2), b);  // device B samples off A's grid, ends at 2 ms

  const MetricsTimeline agg = MetricsTimeline::fold({&ta, &tb});
  ASSERT_EQ(agg.size(), 3u);
  EXPECT_EQ(agg.samples()[0].t, ms(1));
  EXPECT_EQ(agg.samples()[0].counters.at("done"), 1);  // B not yet sampled
  EXPECT_EQ(agg.samples()[1].counters.at("done"), 6);
  // Past B's makespan its last value carries forward — no sawtooth.
  EXPECT_EQ(agg.samples()[2].counters.at("done"), 7);
  EXPECT_NO_THROW(agg.audit("fold"));
  // Sweep position is a per-device notion; aggregate rows never carry one.
  for (const auto& row : agg.samples()) EXPECT_EQ(row.sweep_col, -1);
}

TEST(MetricsFold, QuarantineTimesTagTheAggregateRows) {
  Telemetry a;
  MetricsTimeline ta;
  ta.record(ms(1), a);
  ta.record(ms(5), a);
  const MetricsTimeline agg = MetricsTimeline::fold({&ta}, {ms(4), ms(1)});
  ASSERT_EQ(agg.size(), 2u);
  EXPECT_EQ(agg.samples()[0].quarantined_devices, 1);
  EXPECT_EQ(agg.samples()[1].quarantined_devices, 2);
}

// ---- audit ------------------------------------------------------------------

TEST(MetricsAudit, CatchesACounterThatRanBackwards) {
  Telemetry a, b;
  a.counter("done").add(5);
  b.counter("done").add(3);
  MetricsTimeline tl;
  tl.record(ms(1), a);
  tl.record(ms(2), b);  // value dropped 5 -> 3
  EXPECT_THROW(tl.audit("backwards"), AuditError);
}

// ---- exporters --------------------------------------------------------------

TEST(MetricsExport, CsvHasHeaderAndOneLinePerSample) {
  Telemetry reg;
  MetricsTimeline tl;
  reg.counter("done").add(2);
  reg.gauge("util").set(0.5);
  reg.histogram("lat_ms").observe(1.0);
  tl.record(ms(1), reg);
  reg.counter("done").add(1);
  tl.record(ms(2), reg);

  const std::string csv = tl.to_csv();
  std::size_t lines = 0;
  for (char c : csv) lines += c == '\n';
  EXPECT_EQ(lines, 3u);  // header + 2 samples
  EXPECT_EQ(csv.rfind("t_ms,sweep_col,quarantined_devices,", 0), 0u);
  EXPECT_NE(csv.find("done,done.rate_per_s"), std::string::npos);
  EXPECT_NE(csv.find("lat_ms.window_p95"), std::string::npos);
}

TEST(MetricsExport, PrometheusRendersCountersGaugesAndBuckets) {
  Telemetry reg;
  MetricsTimeline tl;
  reg.counter("tasks_completed").add(3);
  reg.gauge("utilization").set(0.25);
  reg.histogram("queue_wait_ms", {1.0, 10.0}).observe(0.5);
  tl.record(ms(7), reg, /*sweep_col=*/2, /*quarantined_devices=*/1);

  const std::string prom = to_prometheus(tl.samples().back());
  EXPECT_NE(prom.find("# TYPE relogic_tasks_completed counter\n"
                      "relogic_tasks_completed 3\n"),
            std::string::npos);
  EXPECT_NE(prom.find("relogic_utilization 0.25"), std::string::npos);
  EXPECT_NE(prom.find("relogic_queue_wait_ms_bucket{le=\"1\"} 1"),
            std::string::npos);
  EXPECT_NE(prom.find("relogic_queue_wait_ms_bucket{le=\"+Inf\"} 1"),
            std::string::npos);
  EXPECT_NE(prom.find("relogic_queue_wait_ms_count 1"), std::string::npos);
  EXPECT_NE(prom.find("relogic_sweep_col 2"), std::string::npos);
  EXPECT_NE(prom.find("relogic_quarantined_devices 1"), std::string::npos);
}

// ---- fleet integration + determinism contract -------------------------------

runtime::FleetConfig metrics_fleet_config() {
  runtime::FleetConfig cfg;
  cfg.devices = 3;
  cfg.rows = cfg.cols = 12;
  cfg.admission = runtime::AdmissionMode::kOnline;
  cfg.sched.policy = sched::ManagementPolicy::kTransparent;
  cfg.health.selftest = true;
  cfg.health.fault_rate = 0.002;
  cfg.health.fault_seed = 7;
  cfg.metrics.sample_interval_ms = 2.0;
  return cfg;
}

std::vector<sched::TaskArrival> metrics_workload() {
  sched::WorkloadParams wp;
  wp.pattern = sched::ArrivalPattern::kPoisson;
  wp.task_count = 60;
  wp.mean_interarrival_ms = 0.8;
  wp.seed = 7;
  wp.max_side = 10;
  return sched::WorkloadGenerator(wp).generate();
}

runtime::FleetReport metrics_fleet_run(int threads) {
  runtime::FleetConfig cfg = metrics_fleet_config();
  cfg.threads = threads;
  runtime::FleetManager fleet(cfg);
  fleet.submit_all(metrics_workload());
  return fleet.run();
}

TEST(FleetMetrics, SameSeedSameConfigIsByteIdentical) {
  EXPECT_EQ(metrics_fleet_run(1).metrics_json(),
            metrics_fleet_run(1).metrics_json());
}

TEST(FleetMetrics, ThreadCountDoesNotChangeTheDocument) {
  EXPECT_EQ(metrics_fleet_run(1).metrics_json(),
            metrics_fleet_run(4).metrics_json());
}

TEST(FleetMetrics, TimelinesCoverTheRunAndMatchEndOfRunTelemetry) {
  const runtime::FleetReport report = metrics_fleet_run(2);
  ASSERT_FALSE(report.timeline.empty());
  EXPECT_GE(report.timeline.size(), 3u);
  // The folded closing row agrees with the aggregate telemetry on every
  // counter both planes observe (the per-device audit enforces the same
  // identity per device when audits are on).
  const auto& last = report.timeline.samples().back();
  EXPECT_EQ(last.t, report.makespan);
  for (const char* name : {"tasks_admitted", "rearrangement_moves",
                           "swept_clbs", "tested_clbs"}) {
    // A live counter that never fired is simply absent from the timeline;
    // absent means zero (the audit applies the same reading).
    const auto it = last.counters.find(name);
    const std::int64_t live = it == last.counters.end() ? 0 : it->second;
    EXPECT_EQ(live, report.aggregate.counter_value(name)) << name;
  }
  // Per-device timelines carry the sweep position; at least one sampled row
  // should have caught the rover mid-sweep.
  bool saw_sweep = false;
  for (const auto& d : report.devices)
    for (const auto& row : d.timeline.samples())
      saw_sweep = saw_sweep || row.sweep_col >= 0;
  EXPECT_TRUE(saw_sweep);
  const std::string doc = report.metrics_json();
  EXPECT_EQ(doc.rfind("{\n  \"schema\": \"relogic.metrics.v1\"", 0), 0u);
  EXPECT_NE(doc.find("\"sample_interval_ms\": 2"), std::string::npos);
}

TEST(FleetMetrics, DisabledPlaneLeavesReportsEmpty) {
  runtime::FleetConfig cfg = metrics_fleet_config();
  cfg.metrics.sample_interval_ms = 0.0;
  runtime::FleetManager fleet(cfg);
  fleet.submit_all(metrics_workload());
  const runtime::FleetReport report = fleet.run();
  EXPECT_TRUE(report.timeline.empty());
  for (const auto& d : report.devices) EXPECT_TRUE(d.timeline.empty());
  EXPECT_EQ(report.metrics_json(), "");
}

}  // namespace
}  // namespace relogic::obs
