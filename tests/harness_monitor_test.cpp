// Unit tests: the lockstep harness and the glitch monitor themselves —
// the instruments every experiment relies on.
#include <gtest/gtest.h>

#include "relogic/netlist/benchmarks.hpp"
#include "relogic/place/implement.hpp"
#include "relogic/sim/harness.hpp"

namespace relogic::sim {
namespace {

using netlist::bench::ClockingStyle;

struct Rig {
  fabric::Fabric fab{fabric::DeviceGeometry::tiny(12, 12)};
  fabric::DelayModel dm;
  FabricSim sim{fab, dm};
  place::Implementer implementer{fab, dm};
  Rig() { sim.add_clock(ClockSpec{}); }

  place::Implementation implement(const netlist::Netlist& nl, ClbCoord at) {
    const auto mapped = netlist::map_netlist(nl);
    place::ImplementOptions opts;
    opts.region = place::suggest_region(mapped, at, fab.geometry());
    return implementer.implement(mapped, opts);
  }
};

TEST(Harness, CountsCyclesAndKeepsLog) {
  Rig rig;
  const auto nl = netlist::bench::counter(3);
  auto impl = rig.implement(nl, {2, 2});
  CircuitHarness h(rig.sim, nl, impl);
  for (int i = 0; i < 9; ++i) EXPECT_TRUE(h.step({}).ok());
  EXPECT_EQ(h.cycles_run(), 9);
  EXPECT_EQ(h.total_mismatches(), 0);
  EXPECT_TRUE(h.mismatch_log().empty());
}

TEST(Harness, RejectsWrongStimulusWidth) {
  Rig rig;
  const auto nl = netlist::bench::b01();  // 2 inputs
  auto impl = rig.implement(nl, {2, 2});
  CircuitHarness h(rig.sim, nl, impl);
  EXPECT_THROW(h.step({true}), ContractError);
  EXPECT_THROW(h.step({true, false, true}), ContractError);
}

TEST(Harness, GoldenCatchUpAfterIdleFabricTime) {
  // Let the fabric clock run without stepping the harness (what happens
  // during a long reconfiguration), then verify the next step still
  // compares clean — the golden model is caught up automatically.
  Rig rig;
  const auto nl = netlist::bench::counter(4);  // free-running: state evolves
  auto impl = rig.implement(nl, {2, 2});
  CircuitHarness h(rig.sim, nl, impl);
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(h.step({}).ok());
  rig.sim.run_cycles(57);  // fabric runs on alone
  EXPECT_TRUE(h.step({}).ok());
  EXPECT_TRUE(h.step({}).ok());
}

TEST(Harness, WatchRegisteredOutputsOnlyWatchesRegistered) {
  Rig rig;
  // counter: q0..q3 registered, tc combinational.
  const auto nl = netlist::bench::counter(3);
  auto impl = rig.implement(nl, {2, 2});
  CircuitHarness h(rig.sim, nl, impl);
  h.watch_registered_outputs();
  EXPECT_TRUE(rig.sim.monitor().watching(impl.output_pad("q0")));
  EXPECT_FALSE(rig.sim.monitor().watching(impl.output_pad("tc")));
}

TEST(Harness, DetectsSingleBitStateCorruption) {
  // Sensitivity check: flipping exactly one FF value in the simulator must
  // surface as a mismatch within a few cycles.
  Rig rig;
  const auto nl = netlist::bench::lfsr(5, 0b10100);
  auto impl = rig.implement(nl, {2, 2});
  CircuitHarness h(rig.sim, nl, impl);
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(h.step({}).ok());

  // Corrupt one bit by rewriting the cell with inverted init... the init
  // is only loaded at configuration; instead corrupt via the golden side:
  // advance golden one extra cycle so the two diverge.
  h.golden().clock();
  bool diverged = false;
  for (int i = 0; i < 4; ++i) {
    if (!h.step({}).ok()) diverged = true;
  }
  EXPECT_TRUE(diverged);
}

TEST(Monitor, WindowResetsEachClockEdge) {
  GlitchMonitor m;
  m.watch(42, "sig");
  m.record_transition(42, SimTime::ns(10));
  m.on_clock_edge(SimTime::ns(100));
  m.record_transition(42, SimTime::ns(110));
  m.on_clock_edge(SimTime::ns(200));
  // One transition per window: clean.
  EXPECT_TRUE(m.clean());
  EXPECT_EQ(m.transitions_observed(), 2);

  m.record_transition(42, SimTime::ns(210));
  m.record_transition(42, SimTime::ns(220));  // second in same window
  EXPECT_EQ(m.count(ViolationKind::kGlitch), 1);
}

TEST(Monitor, UnwatchStopsRecording) {
  GlitchMonitor m;
  m.watch(7, "x");
  m.record_transition(7, SimTime::ns(1));
  m.unwatch(7);
  m.record_transition(7, SimTime::ns(2));
  m.record_transition(7, SimTime::ns(3));
  EXPECT_TRUE(m.clean());
  EXPECT_EQ(m.transitions_observed(), 1);
}

TEST(Monitor, ViolationBookkeeping) {
  GlitchMonitor m;
  m.add_violation({ViolationKind::kStateDivergence, SimTime::ns(5), 1, "a"});
  m.add_violation({ViolationKind::kDriveConflict, SimTime::ns(6), 2, "b"});
  EXPECT_EQ(m.count(ViolationKind::kStateDivergence), 1);
  EXPECT_EQ(m.count(ViolationKind::kDriveConflict), 1);
  EXPECT_EQ(m.count(ViolationKind::kGlitch), 0);
  EXPECT_FALSE(m.clean());
  m.clear();
  EXPECT_TRUE(m.clean());
  EXPECT_EQ(to_string(ViolationKind::kGlitch), "glitch");
  EXPECT_EQ(to_string(ViolationKind::kDriveConflict), "drive-conflict");
}

TEST(AsyncHarness, SettleStepComparesLatchPipelines) {
  Rig rig;
  const auto nl = netlist::bench::async_pipeline(3);
  auto impl = rig.implement(nl, {2, 2});
  CircuitHarness h(rig.sim, nl, impl);
  // March a one through with alternating phases.
  ASSERT_TRUE(h.settle_step({true, true, false}).ok());
  ASSERT_TRUE(h.settle_step({true, false, true}).ok());
  ASSERT_TRUE(h.settle_step({false, true, false}).ok());
  ASSERT_TRUE(h.settle_step({false, false, true}).ok());
  EXPECT_EQ(h.total_mismatches(), 0);
}

}  // namespace
}  // namespace relogic::sim
