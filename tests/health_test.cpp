// Unit and property tests: relogic::health (fault maps, deterministic
// injection, the roving on-line self-tester), fault-aware area planning,
// fleet-level degradation/quarantine, and the CellKey aliasing regression.
#include <gtest/gtest.h>

#include <set>

#include "relogic/area/defrag.hpp"
#include "relogic/area/manager.hpp"
#include "relogic/common/rng.hpp"
#include "relogic/config/controller.hpp"
#include "relogic/config/port.hpp"
#include "relogic/fabric/fabric.hpp"
#include "relogic/health/fault.hpp"
#include "relogic/health/rover.hpp"
#include "relogic/netlist/benchmarks.hpp"
#include "relogic/place/implement.hpp"
#include "relogic/reloc/engine.hpp"
#include "relogic/runtime/fleet.hpp"
#include "relogic/sched/scheduler.hpp"
#include "relogic/sim/harness.hpp"

namespace relogic {
namespace {

// ---- fault map & injector ---------------------------------------------------

TEST(FaultMap, InjectDetectAndAggregate) {
  health::FaultMap map(4, 4, 4);
  EXPECT_EQ(map.injected_count(), 0);
  map.inject({1, 2}, 0, {3, true});
  map.inject({1, 2}, 3, {7, false});
  map.inject({3, 0}, 1, {0, true});
  EXPECT_EQ(map.injected_count(), 3);
  EXPECT_EQ(map.detected_count(), 0);
  EXPECT_TRUE(map.has_fault({1, 2}, 0));
  EXPECT_FALSE(map.has_fault({1, 2}, 1));
  // Undetected faults are invisible to planning-facing queries.
  EXPECT_FALSE(map.clb_faulty({1, 2}));
  EXPECT_TRUE(map.clb_has_injected({1, 2}));
  EXPECT_EQ(map.injected_cells_in({1, 2}), 2);

  EXPECT_EQ(map.detect_all_in({1, 2}), 2);
  EXPECT_EQ(map.detect_all_in({1, 2}), 0);  // idempotent
  EXPECT_TRUE(map.clb_faulty({1, 2}));
  EXPECT_TRUE(map.is_detected({1, 2}, 0));
  EXPECT_EQ(map.detected_count(), 2);
  EXPECT_EQ(map.detected_clb_count(), 1);
  EXPECT_DOUBLE_EQ(map.detected_clb_density(), 1.0 / 16.0);

  map.mark_detected({3, 0}, 1);
  EXPECT_EQ(map.detected_clb_count(), 2);
  const auto clbs = map.detected_clbs();
  ASSERT_EQ(clbs.size(), 2u);
  EXPECT_EQ(clbs[0], (ClbCoord{1, 2}));
  EXPECT_EQ(clbs[1], (ClbCoord{3, 0}));

  // Observed fault on a cell with no injected ground truth is recorded too.
  map.mark_detected({0, 0}, 2, {5, true});
  EXPECT_TRUE(map.is_detected({0, 0}, 2));
}

TEST(FaultInjector, DeterministicPerSeed) {
  health::FaultInjector a(12, 12, 4, 0.05, 42);
  health::FaultInjector b(12, 12, 4, 0.05, 42);
  health::FaultInjector c(12, 12, 4, 0.05, 43);
  const auto ra = a.generate().records();
  const auto rb = b.generate().records();
  const auto rc = c.generate().records();
  ASSERT_EQ(ra.size(), rb.size());
  for (std::size_t i = 0; i < ra.size(); ++i) {
    EXPECT_EQ(ra[i].clb, rb[i].clb);
    EXPECT_EQ(ra[i].cell, rb[i].cell);
    EXPECT_EQ(ra[i].fault, rb[i].fault);
  }
  EXPECT_GT(ra.size(), 0u);  // 576 cells at 5%: ~29 expected
  bool differs = ra.size() != rc.size();
  for (std::size_t i = 0; !differs && i < ra.size(); ++i)
    differs = ra[i].clb != rc[i].clb || ra[i].cell != rc[i].cell;
  EXPECT_TRUE(differs);
  EXPECT_EQ(health::FaultInjector(12, 12, 4, 0.0, 42).generate()
                .injected_count(),
            0);
}

// ---- fabric-level fault corruption ------------------------------------------

TEST(FabricFaults, StuckBitCorruptsWritesObservably) {
  fabric::Fabric fab(fabric::DeviceGeometry::tiny(4, 4));
  fab.inject_fault({1, 1}, 2, {4, true});  // bit 4 stuck at 1
  EXPECT_EQ(fab.injected_fault_count(), 1);
  ASSERT_NE(fab.fault_at({1, 1}, 2), nullptr);
  EXPECT_EQ(fab.fault_at({1, 1}, 2)->lut_bit, 4);

  fabric::LogicCellConfig cfg;
  cfg.used = true;
  cfg.lut = 0x0000;
  EXPECT_TRUE(fab.set_cell_config({1, 1}, 2, cfg));
  EXPECT_EQ(fab.cell({1, 1}, 2).lut, 0x0010);  // readback mismatch

  // Rewriting the same value through the same fault is an identical
  // rewrite of the stored (corrupted) image: no event.
  EXPECT_FALSE(fab.set_cell_config({1, 1}, 2, cfg));

  // A healthy cell stores what is written.
  EXPECT_TRUE(fab.set_cell_config({0, 0}, 0, cfg));
  EXPECT_EQ(fab.cell({0, 0}, 0).lut, 0x0000);
}

TEST(FabricFaults, DenseGeometryBoundsChecked) {
  auto geom = fabric::DeviceGeometry::tiny_dense(4, 4);
  EXPECT_EQ(geom.cells_per_clb, 8);
  fabric::Fabric fab(geom);  // 8 cells per CLB is storable
  fabric::LogicCellConfig cfg;
  cfg.used = true;
  EXPECT_TRUE(fab.set_cell_config({0, 0}, 7, cfg));
  geom.cells_per_clb = fabric::kMaxCellsPerClb + 1;
  EXPECT_THROW(fabric::Fabric{geom}, Error);
}

// ---- CellKey aliasing regression (ROADMAP latent bug) -----------------------
//
// The old key packed (row, col * 4 + cell): on a geometry with
// cells_per_clb = 8, the rewrite of col 1 cell 0 aliased col 0 cell 4, so
// a live LUT-RAM at col 0 cell 4 was wrongly exempted from the column
// check and the illegal op slipped through.

TEST(CellKeyRegression, ControllerCheckDoesNotAliasAcrossColumns) {
  fabric::Fabric fab(fabric::DeviceGeometry::tiny_dense(4, 4));
  config::BoundaryScanPort port;
  config::ConfigController ctl(fab, port, /*column_granular=*/true);

  // Live LUT-RAM at column 0, cell 4 — the alias target of (col 1, cell 0).
  fabric::LogicCellConfig ram;
  ram.used = true;
  ram.lut_mode = fabric::LutMode::kRam;
  fab.set_cell_config({0, 0}, 4, ram);

  fabric::LogicCellConfig plain;
  plain.used = true;
  plain.lut = 0x1234;

  // Touches columns 0 and 1; rewrites (0,1).0 and (0,0).0 but NOT the RAM
  // cell. With the aliasing key this did not throw.
  config::ConfigOp op("alias probe");
  op.write_cell({0, 1}, 0, plain).write_cell({0, 0}, 0, plain);
  EXPECT_THROW(ctl.apply(op), IllegalOperationError);

  // Rewriting the RAM cell itself stays exempt (intentional rewrite).
  config::ConfigOp legal("ram rewrite");
  legal.write_cell({0, 0}, 4, ram);
  EXPECT_NO_THROW(ctl.apply(legal));
}

TEST(CellKeyRegression, BatcherPendingExemptionsDoNotAlias) {
  fabric::Fabric fab(fabric::DeviceGeometry::tiny_dense(4, 4));
  config::BoundaryScanPort port;
  config::ConfigController ctl(fab, port, /*column_granular=*/true);

  fabric::LogicCellConfig ram;
  ram.used = true;
  ram.lut_mode = fabric::LutMode::kRam;
  fab.set_cell_config({0, 0}, 4, ram);

  runtime::TransactionBatcher batcher(ctl, {});
  fabric::LogicCellConfig plain;
  plain.used = true;
  plain.lut = 0xBEEF;

  // Pending op rewrites (0,1).0 — old key (0, 4), aliasing the RAM cell's.
  config::ConfigOp a("pending");
  a.write_cell({0, 1}, 0, plain);
  batcher.enqueue(a);

  // This op touches column 0, whose RAM cell is NOT rewritten by anything
  // pending; the per-op exactness check must reject it.
  config::ConfigOp b("column 0");
  b.write_cell({0, 0}, 0, plain);
  EXPECT_THROW(batcher.enqueue(b), IllegalOperationError);
}

// ---- area masking -----------------------------------------------------------

TEST(AreaMasking, MaskedClbsLeaveCirculation) {
  area::AreaManager mgr(8, 8);
  EXPECT_EQ(mgr.free_clbs(), 64);
  mgr.mask_faulty({3, 3});
  mgr.mask_faulty({3, 3});  // idempotent
  mgr.mask_faulty({0, 7});
  EXPECT_EQ(mgr.masked_clbs(), 2);
  EXPECT_EQ(mgr.free_clbs(), 62);
  EXPECT_TRUE(mgr.masked({3, 3}));
  EXPECT_EQ(mgr.at({3, 3}), area::kFaultyRegion);

  // No placement query ever lands on a masked CLB.
  for (int h = 1; h <= 8; ++h) {
    for (int w = 1; w <= 8; ++w) {
      for (const auto policy :
           {area::PlacePolicy::kBottomLeft, area::PlacePolicy::kBestFit}) {
        const auto r = mgr.find_free_rect(h, w, policy);
        if (!r) continue;
        EXPECT_FALSE(r->contains(ClbCoord{3, 3}));
        EXPECT_FALSE(r->contains(ClbCoord{0, 7}));
      }
    }
  }
  EXPECT_THROW(mgr.allocate_at("x", ClbRect{3, 3, 1, 1}), Error);

  // Occupied CLBs cannot be masked; releasing then masking works.
  const auto id = mgr.allocate_at("f", ClbRect{5, 5, 2, 2});
  EXPECT_THROW(mgr.mask_faulty({5, 5}), Error);
  mgr.release(id);
  mgr.mask_faulty({5, 5});
  EXPECT_EQ(mgr.masked_clbs(), 3);

  const std::string ascii = mgr.to_ascii();
  EXPECT_NE(ascii.find('X'), std::string::npos);
}

TEST(AreaMasking, AvoidRectExcludesWindow) {
  area::AreaManager mgr(6, 6);
  const ClbRect window{0, 2, 6, 2};  // columns 2..3
  for (const auto policy :
       {area::PlacePolicy::kBottomLeft, area::PlacePolicy::kBestFit}) {
    const auto r = mgr.find_free_rect(3, 2, policy, &window);
    ASSERT_TRUE(r.has_value());
    EXPECT_FALSE(r->overlaps(window));
  }
  // A rect that can only fit through the window is refused.
  EXPECT_FALSE(mgr.find_free_rect(6, 5, area::PlacePolicy::kBottomLeft,
                                  &window)
                   .has_value());
}

// Property: once cells are masked, no defrag plan (greedy, planner-cached,
// or full compaction) ever moves a region onto a faulty CLB or promises the
// request a slot overlapping one, and free-space accounting excludes them.
TEST(AreaMasking, PropertyNoPlanTouchesFaultyClbs) {
  Rng rng(20030307);
  for (int trial = 0; trial < 40; ++trial) {
    const int rows = rng.next_int(6, 12);
    const int cols = rng.next_int(6, 12);
    area::AreaManager mgr(rows, cols);

    // Random occupancy.
    for (int i = 0; i < rng.next_int(2, 6); ++i) {
      mgr.allocate("r" + std::to_string(i), rng.next_int(1, 4),
                   rng.next_int(1, 4), area::PlacePolicy::kBottomLeft);
    }
    // Random masked cells (free ones only, as detection requires).
    std::set<std::pair<int, int>> masked;
    for (int i = 0; i < rng.next_int(1, 8); ++i) {
      const ClbCoord c{rng.next_int(0, rows - 1), rng.next_int(0, cols - 1)};
      if (mgr.at(c) != area::kNoRegion) continue;
      mgr.mask_faulty(c);
      masked.insert({c.row, c.col});
    }

    // Free accounting excludes masked cells exactly.
    int grid_free = 0;
    for (int r = 0; r < rows; ++r)
      for (int c = 0; c < cols; ++c)
        grid_free += mgr.at({r, c}) == area::kNoRegion ? 1 : 0;
    ASSERT_EQ(mgr.free_clbs(), grid_free);
    ASSERT_EQ(mgr.masked_clbs(), static_cast<int>(masked.size()));

    auto check_plan = [&](const std::optional<area::DefragPlan>& plan) {
      if (!plan) return;
      for (const auto& [mr, mc] : masked) {
        const ClbCoord c{mr, mc};
        EXPECT_FALSE(plan->request_slot.contains(c));
        for (const auto& mv : plan->moves) EXPECT_FALSE(mv.to.contains(c));
      }
      // The plan is executable: every move lands on space that is free (or
      // the region's own) when its turn comes.
      area::AreaManager copy = mgr;
      for (const auto& mv : plan->moves) {
        ASSERT_TRUE(copy.can_move(mv.region, mv.to));
        copy.move(mv.region, mv.to);
      }
    };

    const int h = rng.next_int(1, rows);
    const int w = rng.next_int(1, cols);
    check_plan(area::plan_for_request(mgr, h, w));
    check_plan(area::plan_full_compaction(mgr));
    check_plan(area::plan_full_compaction(mgr, {{h, w}}));
    area::RequestPlanner planner(mgr);
    check_plan(planner.plan(h, w));
  }
}

// Placement-level masking: the implementer never places onto cells the
// fault map has detected.
TEST(AreaMasking, ImplementerSkipsDetectedFaultyCells) {
  fabric::Fabric fab(fabric::DeviceGeometry::tiny(8, 8));
  const fabric::DelayModel dm;
  place::Implementer implementer(fab, dm);

  health::FaultMap map(8, 8, 4);
  // Poison the first CLBs the row-major placement would otherwise pick.
  for (int c = 2; c < 5; ++c)
    for (int k = 0; k < 4; ++k) map.mark_detected({2, c}, k, {0, true});

  const auto nl =
      netlist::bench::b02(netlist::bench::ClockingStyle::kFreeRunning);
  place::ImplementOptions opts;
  opts.region = ClbRect{2, 2, 4, 4};
  opts.cell_ok = [&map](ClbCoord clb, int cell) {
    return !map.is_detected(clb, cell);
  };
  const auto impl = implementer.implement(netlist::map_netlist(nl), opts);
  for (const auto& site : impl.sites) {
    EXPECT_FALSE(map.is_detected(site.clb, site.cell))
        << site.to_string() << " is detected-faulty";
  }
}

// ---- roving tester (fabric level) -------------------------------------------

TEST(RovingTester, FreeFabricFullRotationDetectsEveryFault) {
  fabric::Fabric fab(fabric::DeviceGeometry::tiny(8, 8));
  config::BoundaryScanPort port;
  config::ConfigController ctl(fab, port);

  health::FaultInjector injector(8, 8, 4, 0.05, 7);
  health::FaultMap map = injector.generate();
  ASSERT_GT(map.injected_count(), 0);
  map.install(fab);

  health::RovingTester rover(ctl, /*engine=*/nullptr, map);
  const auto report = rover.sweep({});
  EXPECT_EQ(report.window_positions, 8);
  EXPECT_EQ(report.clbs_swept, 64);   // zero missed CLBs
  EXPECT_EQ(report.clbs_tested, 64);  // empty device: everything testable
  EXPECT_EQ(report.cells_tested, 256);
  EXPECT_EQ(report.faults_detected, map.injected_count());
  EXPECT_EQ(map.detected_count(), map.injected_count());
  EXPECT_GT(report.config_time, SimTime::zero());
  EXPECT_EQ(rover.rotations_completed(), 1);

  // Second rotation: detected cells are skipped, nothing new to find.
  const auto again = rover.sweep({});
  EXPECT_EQ(again.faults_detected, 0);
  EXPECT_EQ(again.cells_tested, 256 - map.injected_count());
}

// Readback is never dirty-skippable: a sweep must fetch every frame it
// wants to verify whether or not the preceding write changed its bytes, so
// the rover prices readback on the op's full frame set
// (ConfigController::readback_frames) and an identical sweep costs exactly
// the same under kFrame and kDirtyFrame.
TEST(RovingTester, SweepCostIdenticalAcrossFrameAndDirtyGranularity) {
  health::SweepReport reports[2];
  int i = 0;
  for (const auto gran : {config::WriteGranularity::kFrame,
                          config::WriteGranularity::kDirtyFrame}) {
    fabric::Fabric fab(fabric::DeviceGeometry::tiny(6, 6));
    config::BoundaryScanPort port;
    config::ConfigController ctl(fab, port, gran);
    health::FaultInjector injector(6, 6, 4, 0.05, 11);
    health::FaultMap map = injector.generate();
    map.install(fab);
    health::RovingTester rover(ctl, /*engine=*/nullptr, map);
    reports[i++] = rover.sweep({});
  }
  EXPECT_EQ(reports[0].cells_tested, reports[1].cells_tested);
  EXPECT_EQ(reports[0].faults_detected, reports[1].faults_detected);
  EXPECT_EQ(reports[0].frames_written, reports[1].frames_written);
  EXPECT_GT(reports[0].config_time, SimTime::zero());
  EXPECT_EQ(reports[0].config_time, reports[1].config_time);
}

TEST(RovingTester, SkipsLiveLutRamColumnsEntirely) {
  fabric::Fabric fab(fabric::DeviceGeometry::tiny(6, 6));
  config::BoundaryScanPort port;
  config::ConfigController ctl(fab, port);

  // Live LUT-RAM in column 3: its frames must never be rewritten on-line.
  fabric::LogicCellConfig ram;
  ram.used = true;
  ram.lut_mode = fabric::LutMode::kRam;
  fab.set_cell_config({2, 3}, 0, ram);

  health::FaultMap map(6, 6, 4);
  map.inject({0, 3}, 1, {2, true});  // unreachable: lives in the RAM column
  map.inject({0, 0}, 1, {2, true});
  map.install(fab);

  health::RovingTester rover(ctl, nullptr, map);
  const auto report = rover.sweep({});  // must not throw
  EXPECT_EQ(report.lut_ram_columns_skipped, 1);
  EXPECT_EQ(report.faults_detected, 1);
  EXPECT_TRUE(map.is_detected({0, 0}, 1));
  EXPECT_FALSE(map.is_detected({0, 3}, 1));
}

TEST(RovingTester, RelocatesLiveCircuitOutOfWindowAndKeepsItRunning) {
  fabric::Fabric fab(fabric::DeviceGeometry::tiny(12, 12));
  const fabric::DelayModel dm;
  config::BoundaryScanPort port;
  config::ConfigController ctl(fab, port);
  sim::FabricSim sim(fab, dm);
  sim.add_clock(sim::ClockSpec{});
  place::Implementer implementer(fab, dm);
  place::Router router(fab, dm);
  reloc::RelocationEngine engine(ctl, router, &sim);

  const auto nl = netlist::bench::b02(netlist::bench::ClockingStyle::kFreeRunning);
  place::ImplementOptions iopt;
  iopt.region = ClbRect{2, 2, 3, 3};
  auto impl = implementer.implement(netlist::map_netlist(nl), iopt);
  sim::CircuitHarness harness(sim, nl, impl);

  Rng rng(99);
  for (int i = 0; i < 8; ++i) ASSERT_TRUE(harness.step_random(rng).ok());

  // A fault inside the circuit's current region, on a free cell.
  health::FaultMap map(12, 12, 4);
  bool planted = false;
  for (int r = iopt.region.row; r < iopt.region.row_end() && !planted; ++r) {
    for (int c = iopt.region.col; c < iopt.region.col_end() && !planted;
         ++c) {
      for (int k = 0; k < 4 && !planted; ++k) {
        if (!fab.cell({r, c}, k).used) {
          map.inject({r, c}, k, {9, true});
          planted = true;
        }
      }
    }
  }
  ASSERT_TRUE(planted);
  map.install(fab);

  health::RovingTester rover(ctl, &engine, map);
  const auto report = rover.sweep({&impl});
  EXPECT_EQ(report.clbs_swept, 144);
  EXPECT_GT(report.cells_relocated, 0);  // the circuit was in the way
  EXPECT_EQ(report.cells_skipped, 0);    // every occupied cell was vacated
  EXPECT_EQ(report.clbs_tested, 144);    // zero missed CLBs
  EXPECT_EQ(report.faults_detected, 1);
  EXPECT_EQ(map.detected_count(), 1);

  // The circuit survived a whole rotation of being shoved around.
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(harness.step_random(rng).ok());
  EXPECT_TRUE(sim.monitor().clean());
}

// ---- scheduler sweep --------------------------------------------------------

TEST(SchedulerSelfTest, RotationCompletesAndMasksFaults) {
  const auto geom = fabric::DeviceGeometry::tiny(10, 10);
  config::BoundaryScanPort port;
  reloc::RelocationCostModel cost(geom, port);

  sched::SchedulerConfig cfg;
  cfg.policy = sched::ManagementPolicy::kTransparent;

  health::FaultMap faults(10, 10, 4);
  faults.inject({0, 4}, 1, {2, true});
  faults.inject({7, 4}, 2, {3, false});
  faults.inject({5, 9}, 0, {1, true});

  sched::Scheduler scheduler(10, 10, cost, cfg);
  sched::SelfTestConfig st;
  st.enabled = true;
  st.window_cols = 2;
  st.step_period_ms = 2.0;
  scheduler.enable_selftest(st, &faults);

  sched::WorkloadParams wp;
  wp.task_count = 40;
  wp.max_side = 5;
  wp.mean_interarrival_ms = 2.0;
  wp.mean_duration_ms = 15.0;
  wp.seed = 11;
  const auto stats =
      scheduler.run_tasks(sched::WorkloadGenerator(wp).generate());

  // At least one full rotation, and every rotation visits every CLB once.
  EXPECT_GE(stats.sweep_rotations, 1);
  EXPECT_EQ(stats.swept_clbs, stats.sweep_rotations * 100);
  EXPECT_GT(stats.tested_clbs, 0);
  // All three faults found and their CLBs masked.
  EXPECT_EQ(stats.faults_detected, 3);
  EXPECT_EQ(stats.faulty_clbs, 3);
  EXPECT_EQ(faults.detected_count(), 3);
  // The workload still ran.
  EXPECT_EQ(static_cast<int>(stats.tasks.size()), 40);
  EXPECT_GT(static_cast<int>(stats.tasks.size()) - stats.rejected, 0);
}

TEST(SchedulerSelfTest, SweepAloneRunsOnEmptyDevice) {
  const auto geom = fabric::DeviceGeometry::tiny(6, 6);
  config::BoundaryScanPort port;
  reloc::RelocationCostModel cost(geom, port);
  sched::Scheduler scheduler(6, 6, cost, {});
  sched::SelfTestConfig st;
  st.enabled = true;
  scheduler.enable_selftest(st, nullptr);
  const auto stats = scheduler.run_tasks({});
  EXPECT_EQ(stats.sweep_rotations, 1);
  EXPECT_EQ(stats.swept_clbs, 36);
  EXPECT_EQ(stats.tested_clbs, 36);
  EXPECT_EQ(stats.faults_detected, 0);
}

// ---- fleet integration ------------------------------------------------------

runtime::FleetConfig health_fleet_config() {
  runtime::FleetConfig cfg;
  cfg.devices = 4;
  cfg.rows = cfg.cols = 10;
  cfg.dispatch = runtime::DispatchPolicy::kLeastLoaded;
  // Load rebalancing off: `rebalanced` then counts ONLY the quarantine
  // evacuations, which is exactly what the quarantine test asserts on.
  cfg.rebalance_backlog_ms = 0.0;
  cfg.sched.policy = sched::ManagementPolicy::kTransparent;
  cfg.health.selftest = true;
  cfg.health.fault_rate = 0.04;
  cfg.health.fault_seed = 5;
  // Detection needs ~6 faulty CLBs (threshold 5% of 100): with ~15% of
  // CLBs faulty that happens a few sweep steps in (~tens of ms) — late
  // enough for the overloaded fleet below to have queued work to migrate.
  cfg.health.step_period_ms = 5.0;
  cfg.health.quarantine_threshold = 0.05;
  return cfg;
}

std::vector<sched::TaskArrival> health_fleet_trace() {
  sched::WorkloadParams wp;
  wp.task_count = 160;
  wp.mean_interarrival_ms = 0.3;  // heavy: queues form fleet-wide
  wp.mean_duration_ms = 40.0;
  wp.max_side = 6;
  wp.seed = 5;
  return sched::WorkloadGenerator(wp).generate();
}

TEST(FleetHealth, QuarantineMigratesQueuedWorkAndIdentityHolds) {
  runtime::FleetManager fleet(health_fleet_config());
  fleet.submit_all(health_fleet_trace());
  const auto report = fleet.run();

  // The fault rate (~15% faulty CLBs) is far past the threshold: devices
  // quarantine as detections accumulate, and their queued-but-not-started
  // requests moved to peers while any peer was still healthy.
  EXPECT_GT(report.quarantined, 0);
  EXPECT_GT(report.rebalanced, 0);
  EXPECT_EQ(report.aggregate.counter_value("quarantined_devices"),
            report.quarantined);
  EXPECT_GT(report.faulty_cells, 0);

  // Counting identity: every admitted task is accounted for exactly once,
  // quarantine migrations included.
  const auto admitted = report.aggregate.counter_value("tasks_admitted");
  const auto completed = report.aggregate.counter_value("tasks_completed");
  const auto rejected = report.aggregate.counter_value("tasks_rejected");
  EXPECT_EQ(admitted, completed + rejected);
  EXPECT_EQ(report.admitted, static_cast<int>(admitted));
  EXPECT_EQ(report.completed, static_cast<int>(completed));
  EXPECT_EQ(report.rejected,
            static_cast<int>(rejected) +
                static_cast<int>(
                    report.aggregate.counter_value("admission_rejected")));
}

TEST(FleetHealth, DeterministicAcrossThreadCounts) {
  auto run_with = [&](int threads) {
    auto cfg = health_fleet_config();
    cfg.threads = threads;
    runtime::FleetManager fleet(cfg);
    fleet.submit_all(health_fleet_trace());
    return fleet.run().to_json();
  };
  const std::string one = run_with(1);
  const std::string many = run_with(4);
  EXPECT_EQ(one, many);
  EXPECT_NE(one.find("\"faulty_cells\""), std::string::npos);
  EXPECT_NE(one.find("\"quarantined_devices\""), std::string::npos);
}

TEST(FleetHealth, DegradedCapacityStillServes) {
  // Sanity: a faulty fleet completes work, and detected capacity loss shows
  // up in the telemetry (masked CLBs > 0 on at least one device).
  runtime::FleetManager fleet(health_fleet_config());
  fleet.submit_all(health_fleet_trace());
  const auto report = fleet.run();
  EXPECT_GT(report.completed, 0);
  EXPECT_GT(report.aggregate.counter_value("faulty_clbs"), 0);
  EXPECT_GT(report.aggregate.counter_value("sweep_rotations"), 0);
  EXPECT_GT(report.tested_clbs, 0);
}

}  // namespace
}  // namespace relogic
