// Unit tests: relogic::place (router, implementer) and relogic::sim
// (event-driven simulator behaviours that the relocation engine relies on).
#include <gtest/gtest.h>

#include "relogic/config/controller.hpp"
#include "relogic/config/frame.hpp"
#include "relogic/config/port.hpp"
#include "relogic/netlist/benchmarks.hpp"
#include "relogic/place/implement.hpp"
#include "relogic/sim/harness.hpp"

namespace relogic {
namespace {

using fabric::CellPort;
using fabric::DeviceGeometry;
using fabric::Dir;
using fabric::Fabric;
using fabric::LogicCellConfig;
using fabric::NodeId;

class RouterTest : public ::testing::Test {
 protected:
  DeviceGeometry geom_ = DeviceGeometry::tiny(10, 10);
  Fabric fab_{geom_};
  fabric::DelayModel dm_;
  place::Router router_{fab_, dm_};
};

TEST_F(RouterTest, RoutesAcrossTheDevice) {
  const auto& g = fab_.graph();
  const auto net = fab_.create_net("far");
  fab_.attach_source(net, g.out_pin({0, 0}, 0, false));
  const NodeId sink = g.in_pin({9, 9}, 3, CellPort::kI2);
  router_.route_sink(net, sink);
  fab_.validate_net(net);
  const auto sinks = fab_.net_sinks(net);
  ASSERT_EQ(sinks.size(), 1u);
  EXPECT_EQ(sinks[0], sink);
}

TEST_F(RouterTest, FanoutReusesTrunk) {
  const auto& g = fab_.graph();
  const auto net = fab_.create_net("fan");
  fab_.attach_source(net, g.out_pin({5, 0}, 0, false));
  router_.route_sink(net, g.in_pin({5, 8}, 0, CellPort::kI0));
  const std::size_t edges_one = fab_.net(net).edges.size();
  router_.route_sink(net, g.in_pin({5, 8}, 1, CellPort::kI0));
  const std::size_t edges_two = fab_.net(net).edges.size();
  // The second sink sits in the same tile: only a couple of extra PIPs.
  EXPECT_LE(edges_two - edges_one, 2u);
  fab_.validate_net(net);
}

TEST_F(RouterTest, OccupiedSinkRejected) {
  const auto& g = fab_.graph();
  const auto a = fab_.create_net("a");
  const auto b = fab_.create_net("b");
  fab_.attach_source(a, g.out_pin({1, 1}, 0, false));
  fab_.attach_source(b, g.out_pin({2, 2}, 0, false));
  const NodeId sink = g.in_pin({4, 4}, 0, CellPort::kI0);
  router_.route_sink(a, sink);
  EXPECT_THROW(router_.route_sink(b, sink), ResourceError);
}

TEST_F(RouterTest, AvoidColumnsNeverProgramsFramesThere) {
  // The avoidance contract is frame-safety, not impassability: hex and
  // long lines may legally hop across avoided columns because their
  // controlling PIPs live at the endpoint tiles (this is exactly why
  // live LUT-RAM columns don't wall off the device). Assert that no PIP
  // of the resulting route is controlled in an avoided column.
  const auto& g = fab_.graph();
  const auto net = fab_.create_net("avoid");
  fab_.attach_source(net, g.out_pin({5, 0}, 0, false));
  place::RouteOptions opt;
  opt.avoid_columns = {3, 4, 5};
  router_.route_sink(net, g.in_pin({5, 9}, 0, CellPort::kI0), opt);
  fab_.validate_net(net);

  const config::FrameMapper mapper(geom_);
  for (const auto& e : fab_.net(net).edges) {
    const auto f = mapper.pip_frame(g, e);
    if (f.type == config::ColumnType::kClb) {
      EXPECT_FALSE(opt.avoid_columns.contains(f.column))
          << "PIP frame in avoided column " << f.column;
    }
  }
}

TEST_F(RouterTest, CongestionEventuallyExhausts) {
  // Saturate the fabric with distinct connections and verify the router
  // reports failure rather than violating occupancy.
  const auto& g = fab_.graph();
  int routed = 0;
  bool exhausted = false;
  try {
    for (int r = 0; r < 10; ++r) {
      for (int k = 0; k < 4; ++k) {
        const auto net =
            fab_.create_net("n" + std::to_string(r) + "_" + std::to_string(k));
        fab_.attach_source(net, g.out_pin({r, 0}, k, false));
        router_.route_sink(
            net, g.in_pin({9 - r, 9}, k, static_cast<CellPort>(k)));
        ++routed;
      }
    }
  } catch (const ResourceError&) {
    exhausted = true;
  }
  EXPECT_GT(routed, 20);  // plenty routed before any exhaustion
  (void)exhausted;        // exhaustion may or may not occur at this scale
}

class ImplementTest : public ::testing::Test {
 protected:
  DeviceGeometry geom_ = DeviceGeometry::tiny(12, 12);
  Fabric fab_{geom_};
  fabric::DelayModel dm_;
  place::Implementer impl_{fab_, dm_};
};

TEST_F(ImplementTest, ImplementsAndRemovesCleanly) {
  const auto nl = netlist::bench::b01();
  const auto mapped = netlist::map_netlist(nl);
  place::ImplementOptions opts;
  opts.region = place::suggest_region(mapped, {2, 2}, geom_);
  auto impl = impl_.implement(mapped, opts);

  EXPECT_EQ(impl.cell_count(), mapped.cell_count());
  EXPECT_GT(fab_.used_cell_count(), 0);
  EXPECT_GT(fab_.graph().occupied_count(), 0u);
  for (const auto& [sig, net] : impl.signal_nets) {
    EXPECT_NO_THROW(fab_.validate_net(net));
  }
  EXPECT_EQ(impl.input_pads.size(), nl.inputs().size());
  EXPECT_EQ(impl.output_pads.size(), nl.outputs().size());

  impl_.remove(impl);
  EXPECT_EQ(fab_.used_cell_count(), 0);
  EXPECT_EQ(fab_.graph().occupied_count(), 0u);
}

TEST_F(ImplementTest, RegionTooSmallThrows) {
  const auto nl = netlist::bench::b06();
  const auto mapped = netlist::map_netlist(nl);
  place::ImplementOptions opts;
  opts.region = ClbRect{0, 0, 1, 1};  // 4 cells, not enough
  EXPECT_THROW(impl_.implement(mapped, opts), ResourceError);
}

TEST_F(ImplementTest, TwoFunctionsCoexist) {
  const auto a = netlist::bench::counter(4);
  const auto b = netlist::bench::shift_register(6);
  place::ImplementOptions oa, ob;
  oa.region = ClbRect{1, 1, 3, 3};
  ob.region = ClbRect{7, 7, 3, 3};
  auto ia = impl_.implement(netlist::map_netlist(a), oa);
  auto ib = impl_.implement(netlist::map_netlist(b), ob);

  sim::FabricSim sim(fab_, dm_);
  sim.add_clock(sim::ClockSpec{});
  sim::CircuitHarness ha(sim, a, ia);
  sim::CircuitHarness hb(sim, b, ib);
  Rng rng(3);
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(ha.step({}).ok());
    ASSERT_TRUE(hb.step_random(rng).ok());
  }
}

class SimBehaviourTest : public ::testing::Test {
 protected:
  DeviceGeometry geom_ = DeviceGeometry::tiny(8, 8);
  Fabric fab_{geom_};
  fabric::DelayModel dm_;
};

TEST_F(SimBehaviourTest, IdenticalConfigRewriteGeneratesNoEvents) {
  sim::FabricSim sim(fab_, dm_);
  sim.add_clock(sim::ClockSpec{});
  LogicCellConfig cfg = LogicCellConfig::constant(true);
  fab_.set_cell_config({2, 2}, 0, cfg);
  sim.run_until(SimTime::us(1));
  const auto events = sim.events_processed();
  // Rewriting identical data must not disturb the simulator at all.
  fab_.set_cell_config({2, 2}, 0, cfg);
  sim.run_until(SimTime::us(2));
  // Only clock edges tick in that window (10 edges per us at 10 MHz).
  EXPECT_LE(sim.events_processed() - events, 11);
}

TEST_F(SimBehaviourTest, ParallelSourcesLastWriterConsistent) {
  // Two constant-1 cells driving one net (the paralleling situation):
  // sinks see 1 and check_drive_coherence records nothing.
  sim::FabricSim sim(fab_, dm_);
  sim.add_clock(sim::ClockSpec{});
  const auto& g = fab_.graph();
  fab_.set_cell_config({1, 1}, 0, LogicCellConfig::constant(true));
  fab_.set_cell_config({1, 2}, 0, LogicCellConfig::constant(true));

  const auto net = fab_.create_net("par");
  const NodeId s1 = g.out_pin({1, 1}, 0, false);
  const NodeId s2 = g.out_pin({1, 2}, 0, false);
  fab_.attach_source(net, s1);
  place::Router router(fab_, dm_);
  router.route_sink(net, g.in_pin({1, 4}, 0, CellPort::kI0));
  sim.run_until(SimTime::us(1));

  // Join the second source into the tree.
  const auto path = router.find_path_to_net(s2, net);
  fab_.attach_source(net, s2);
  std::vector<fabric::RouteEdge> edges;
  for (std::size_t i = 1; i < path.size(); ++i)
    edges.push_back({path[i - 1], path[i]});
  fab_.add_edges(net, edges);
  sim.run_until(SimTime::us(2));

  EXPECT_TRUE(sim.pin_of({1, 4}, 0, CellPort::kI0));
  sim.check_drive_coherence();
  EXPECT_EQ(sim.monitor().count(sim::ViolationKind::kDriveConflict), 0);
}

TEST_F(SimBehaviourTest, ConflictingSourcesDetected) {
  sim::FabricSim sim(fab_, dm_);
  sim.add_clock(sim::ClockSpec{});
  const auto& g = fab_.graph();
  fab_.set_cell_config({1, 1}, 0, LogicCellConfig::constant(true));
  fab_.set_cell_config({1, 2}, 0, LogicCellConfig::constant(false));

  const auto net = fab_.create_net("conflict");
  fab_.attach_source(net, g.out_pin({1, 1}, 0, false));
  fab_.attach_source(net, g.out_pin({1, 2}, 0, false));
  sim.run_until(SimTime::us(1));
  sim.check_drive_coherence();
  EXPECT_GT(sim.monitor().count(sim::ViolationKind::kDriveConflict), 0);
}

TEST_F(SimBehaviourTest, GlitchMonitorFlagsDoubleTransition) {
  sim::FabricSim sim(fab_, dm_);
  sim.add_clock(sim::ClockSpec{});
  const auto& g = fab_.graph();
  const NodeId pad = g.pad({0, 3}, 0);
  sim.monitor().watch(pad, "out");
  // Drive the pad twice within one clock window: 0->1->0 pulse.
  sim.run_until(SimTime::ns(110));  // just after the first edge
  sim.drive_pad(pad, true);
  sim.run_until(SimTime::ns(120));
  sim.drive_pad(pad, false);
  sim.run_until(SimTime::ns(150));
  EXPECT_GT(sim.monitor().count(sim::ViolationKind::kGlitch), 0);
}

TEST_F(SimBehaviourTest, EdgeCountingMatchesClock) {
  sim::FabricSim sim(fab_, dm_);
  sim.add_clock(sim::ClockSpec{0, SimTime::ns(100), SimTime::ns(100)});
  sim.run_until(SimTime::ns(1050));
  EXPECT_EQ(sim.edges_seen(0), 10);
  EXPECT_EQ(sim.next_edge(0, SimTime::ns(1050)), SimTime::ns(1100));
  EXPECT_EQ(sim.clock_period(0), SimTime::ns(100));
  EXPECT_TRUE(sim.has_clock(0));
  EXPECT_FALSE(sim.has_clock(3));
}

}  // namespace
}  // namespace relogic
