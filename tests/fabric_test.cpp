// Unit tests: relogic::fabric (device geometry, cells, routing graph,
// fabric state container, delay model).
#include <gtest/gtest.h>

#include "relogic/fabric/fabric.hpp"

namespace relogic::fabric {
namespace {

TEST(DeviceGeometry, Xcv200MatchesPaperDevice) {
  const auto g = DeviceGeometry::xcv200();
  EXPECT_EQ(g.name, "XCV200");
  EXPECT_EQ(g.clb_rows, 28);
  EXPECT_EQ(g.clb_cols, 42);
  EXPECT_EQ(g.cells_per_clb, 4);
  // Virtex: frame length 18*(rows+2) rounded to 32-bit words.
  EXPECT_EQ(g.frame_length_bits(), ((18 * 30 + 31) / 32) * 32);
  EXPECT_EQ(g.frames_per_clb_column, 48);
}

TEST(DeviceGeometry, PresetsScaleMonotonically) {
  int prev = 0;
  for (auto p : {DevicePreset::kXCV50, DevicePreset::kXCV100,
                 DevicePreset::kXCV200, DevicePreset::kXCV300,
                 DevicePreset::kXCV400, DevicePreset::kXCV600,
                 DevicePreset::kXCV800, DevicePreset::kXCV1000}) {
    const auto g = DeviceGeometry::preset(p);
    EXPECT_GT(g.clb_count(), prev);
    prev = g.clb_count();
  }
}

TEST(LogicCellConfig, LutEvaluation) {
  LogicCellConfig c;
  c.lut = luts::kAnd2;
  EXPECT_FALSE(c.eval(0b00));
  EXPECT_FALSE(c.eval(0b01));
  EXPECT_FALSE(c.eval(0b10));
  EXPECT_TRUE(c.eval(0b11));

  c.lut = luts::kMux21;  // out = I2 ? I1 : I0
  EXPECT_FALSE(c.eval(0b000));
  EXPECT_TRUE(c.eval(0b001));   // I0=1, sel=0
  EXPECT_FALSE(c.eval(0b101));  // sel=1 -> I1=0
  EXPECT_TRUE(c.eval(0b110));   // sel=1 -> I1=1
}

TEST(LogicCellConfig, ConstantHelper) {
  EXPECT_TRUE(LogicCellConfig::constant(true).eval(0b1010));
  EXPECT_FALSE(LogicCellConfig::constant(false).eval(0b0101));
  EXPECT_TRUE(LogicCellConfig::constant(true).used);
}

class RoutingGraphTest : public ::testing::Test {
 protected:
  DeviceGeometry geom_ = DeviceGeometry::tiny(8, 8);
  RoutingGraph graph_{geom_};
};

TEST_F(RoutingGraphTest, NodeIdsRoundTrip) {
  const ClbCoord t{3, 5};
  {
    const auto info = graph_.info(graph_.out_pin(t, 2, true));
    EXPECT_EQ(info.kind, NodeKind::kOutPin);
    EXPECT_EQ(info.tile, t);
    EXPECT_EQ(info.a, 2);
    EXPECT_EQ(info.b, 1);
  }
  {
    const auto info = graph_.info(graph_.in_pin(t, 3, CellPort::kCE));
    EXPECT_EQ(info.kind, NodeKind::kInPin);
    EXPECT_EQ(info.a, 3);
    EXPECT_EQ(info.b, static_cast<int>(CellPort::kCE));
  }
  {
    const auto info = graph_.info(graph_.single(t, Dir::kE, 4));
    EXPECT_EQ(info.kind, NodeKind::kSingle);
    EXPECT_EQ(info.a, static_cast<int>(Dir::kE));
    EXPECT_EQ(info.b, 4);
  }
  {
    const auto info = graph_.info(graph_.long_row(6, 1));
    EXPECT_EQ(info.kind, NodeKind::kLongRow);
    EXPECT_EQ(info.tile.row, 6);
    EXPECT_EQ(info.a, 1);
  }
  {
    const auto info = graph_.info(graph_.pad(ClbCoord{0, 2}, 1));
    EXPECT_EQ(info.kind, NodeKind::kPad);
    EXPECT_EQ(info.tile, (ClbCoord{0, 2}));
  }
}

TEST_F(RoutingGraphTest, OutPinDrivesLocalSingles) {
  const ClbCoord t{4, 4};
  const NodeId out = graph_.out_pin(t, 0, false);
  for (int d = 0; d < 4; ++d) {
    EXPECT_TRUE(graph_.has_edge(
        out, graph_.single(t, static_cast<Dir>(d), 0)));
  }
}

TEST_F(RoutingGraphTest, SingleLandsInNeighbourImux) {
  const ClbCoord t{4, 4};
  const NodeId wire = graph_.single(t, Dir::kE, 2);
  const ClbCoord far{4, 5};
  EXPECT_TRUE(graph_.has_edge(wire, graph_.in_pin(far, 1, CellPort::kI0)));
  EXPECT_TRUE(graph_.has_edge(wire, graph_.single(far, Dir::kE, 2)));
}

TEST_F(RoutingGraphTest, BoundarySinglesDoNotLeaveDevice) {
  // A wire heading north from row 0 has no far tile: no onward edges to
  // tiles outside the array (its fanout must be empty).
  const NodeId wire = graph_.single(ClbCoord{0, 3}, Dir::kN, 0);
  EXPECT_EQ(graph_.fanout(wire).size(), 0u);
}

TEST_F(RoutingGraphTest, OccupancyLifecycle) {
  const NodeId n = graph_.single(ClbCoord{2, 2}, Dir::kS, 1);
  EXPECT_TRUE(graph_.is_free(n));
  graph_.occupy(n, 7);
  EXPECT_EQ(graph_.occupant(n), 7u);
  EXPECT_EQ(graph_.occupied_count(), 1u);
  // Same net may claim again.
  EXPECT_NO_THROW(graph_.occupy(n, 7));
  // A different net may not.
  EXPECT_THROW(graph_.occupy(n, 8), ContractError);
  graph_.release(n);
  EXPECT_TRUE(graph_.is_free(n));
  EXPECT_EQ(graph_.occupied_count(), 0u);
}

TEST_F(RoutingGraphTest, PadsOnlyAtBoundary) {
  EXPECT_NO_THROW(graph_.pad(ClbCoord{0, 0}, 0));
  EXPECT_NO_THROW(graph_.pad(ClbCoord{7, 3}, 1));
  EXPECT_THROW(graph_.pad(ClbCoord{3, 3}, 0), ContractError);
}

class FabricTest : public ::testing::Test {
 protected:
  Fabric fab_{DeviceGeometry::tiny(8, 8)};
};

TEST_F(FabricTest, IdenticalCellRewriteIsSuppressed) {
  LogicCellConfig cfg;
  cfg.lut = luts::kXor2;
  cfg.used = true;
  EXPECT_TRUE(fab_.set_cell_config({1, 1}, 0, cfg));
  // The glitch-free-rewrite property: same data, no effect, no event.
  EXPECT_FALSE(fab_.set_cell_config({1, 1}, 0, cfg));
  cfg.lut = luts::kAnd2;
  EXPECT_TRUE(fab_.set_cell_config({1, 1}, 0, cfg));
  EXPECT_EQ(fab_.used_cell_count(), 1);
  EXPECT_TRUE(fab_.clear_cell({1, 1}, 0));
  EXPECT_EQ(fab_.used_cell_count(), 0);
}

TEST_F(FabricTest, ListenerSeesOnlyEffectiveChanges) {
  struct Counter : FabricListener {
    int cells = 0, nets = 0;
    void on_cell_changed(ClbCoord, int, const LogicCellConfig&,
                         const LogicCellConfig&) override {
      ++cells;
    }
    void on_net_changed(NetId) override { ++nets; }
  } counter;
  fab_.add_listener(&counter);

  LogicCellConfig cfg = LogicCellConfig::constant(true);
  fab_.set_cell_config({0, 0}, 0, cfg);
  fab_.set_cell_config({0, 0}, 0, cfg);  // identical: no event
  EXPECT_EQ(counter.cells, 1);

  const NetId net = fab_.create_net("n");
  fab_.attach_source(net, fab_.graph().out_pin({0, 0}, 0, false));
  EXPECT_EQ(counter.nets, 1);
  fab_.remove_listener(&counter);
}

TEST_F(FabricTest, NetRoutingAndSinks) {
  const auto& g = fab_.graph();
  const NetId net = fab_.create_net("route");
  const NodeId src = g.out_pin({2, 2}, 0, false);
  const NodeId w1 = g.single({2, 2}, Dir::kE, 0);
  const NodeId sink = g.in_pin({2, 3}, 1, CellPort::kI0);

  fab_.attach_source(net, src);
  fab_.add_edge(net, {src, w1});
  fab_.add_edge(net, {w1, sink});
  EXPECT_NO_THROW(fab_.validate_net(net));

  const auto sinks = fab_.net_sinks(net);
  ASSERT_EQ(sinks.size(), 1u);
  EXPECT_EQ(sinks[0], sink);
  EXPECT_EQ(fab_.net_driving(sink), net);

  const DelayModel dm;
  const auto delays = fab_.sink_delays(net, dm);
  ASSERT_EQ(delays.size(), 1u);
  // Two hops: pip+single, pip+pin.
  const SimTime expect =
      dm.pip_delay + dm.single_delay + dm.pip_delay;
  EXPECT_EQ(delays[0].min, expect);
  EXPECT_EQ(delays[0].max, expect);
}

TEST_F(FabricTest, ParallelPathsGiveMinMaxDelays) {
  // Fig. 6: while original and replica paths are paralleled the sink sees
  // min != max; the observable value settles after max.
  const auto& g = fab_.graph();
  const NetId net = fab_.create_net("par");
  const NodeId src = g.out_pin({3, 3}, 0, false);
  const NodeId sink = g.in_pin({3, 4}, 0, CellPort::kI1);

  fab_.attach_source(net, src);
  // Short path: one single east.
  const NodeId w_short = g.single({3, 3}, Dir::kE, 0);
  fab_.add_edge(net, {src, w_short});
  fab_.add_edge(net, {w_short, sink});
  // Long path: north, east, south back into the sink tile.
  const NodeId a = g.single({3, 3}, Dir::kN, 1);
  const NodeId b = g.single({2, 3}, Dir::kE, 1);
  const NodeId c = g.single({2, 4}, Dir::kS, 1);
  fab_.add_edge(net, {src, a});
  fab_.add_edge(net, {a, b});
  fab_.add_edge(net, {b, c});
  fab_.add_edge(net, {c, sink});
  fab_.validate_net(net);

  const DelayModel dm;
  const auto delays = fab_.sink_delays(net, dm);
  ASSERT_EQ(delays.size(), 1u);
  EXPECT_LT(delays[0].min, delays[0].max);
  const SimTime shortest = dm.pip_delay * 2 + dm.single_delay;
  const SimTime longest = dm.pip_delay * 4 + dm.single_delay * 3;
  EXPECT_EQ(delays[0].min, shortest);
  EXPECT_EQ(delays[0].max, longest);
}

TEST_F(FabricTest, ValidateNetCatchesDanglingEdge) {
  const auto& g = fab_.graph();
  const NetId net = fab_.create_net("bad");
  const NodeId w1 = g.single({2, 2}, Dir::kE, 0);
  const NodeId sink = g.in_pin({2, 3}, 1, CellPort::kI0);
  // Edge whose source is driven by nothing.
  fab_.add_edge(net, {w1, sink});
  EXPECT_THROW(fab_.validate_net(net), IllegalOperationError);
}

TEST_F(FabricTest, CaptureRestoreRoundTrip) {
  const auto& g = fab_.graph();
  fab_.set_cell_config({1, 1}, 2, LogicCellConfig::constant(true));
  const NetId net = fab_.create_net("snap");
  const NodeId src = g.out_pin({1, 1}, 2, false);
  const NodeId w = g.single({1, 1}, Dir::kS, 3);
  fab_.attach_source(net, src);
  fab_.add_edge(net, {src, w});

  const auto snap = fab_.capture();

  // Mutate: clear the cell, grow the net, add another cell.
  fab_.clear_cell({1, 1}, 2);
  fab_.set_cell_config({5, 5}, 0, LogicCellConfig::constant(false));
  fab_.add_edge(net, {w, g.in_pin({2, 1}, 0, CellPort::kI0)});

  fab_.restore(snap);
  EXPECT_TRUE(fab_.cell({1, 1}, 2).used);
  EXPECT_FALSE(fab_.cell({5, 5}, 0).used);
  EXPECT_EQ(fab_.net(net).edges.size(), 1u);
  EXPECT_NO_THROW(fab_.validate_net(net));
  // Released nodes really are free again.
  EXPECT_TRUE(g.is_free(g.in_pin({2, 1}, 0, CellPort::kI0)));
}

TEST(DelayModel, PathDelaySums) {
  const DeviceGeometry geom = DeviceGeometry::tiny(6, 6);
  const RoutingGraph graph(geom);
  const DelayModel dm;
  const std::vector<NodeId> path{
      graph.out_pin({2, 2}, 0, false),
      graph.single({2, 2}, Dir::kE, 0),
      graph.in_pin({2, 3}, 0, CellPort::kI0),
  };
  EXPECT_EQ(dm.path_delay(graph, path),
            dm.pip_delay + dm.single_delay + dm.pip_delay);
}

}  // namespace
}  // namespace relogic::fabric
