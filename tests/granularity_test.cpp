// Config-plane granularity + port-backend tests.
//
// The write-granularity policy (config/granularity.hpp) and the pluggable
// port backends (config/port.hpp) must change only *timing and write
// accounting*, never structural state. The golden-equivalence suite here
// drives the full relocation engine under every granularity x backend
// combination and asserts byte-identical fabric end state and identical
// relocation reports up to timing/frame counters; the property tests pin
// the dirty-frame diffing invariants (dirty set is a subset of the frame
// set; identical rewrites and self-cancelling ops dirty nothing).
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "relogic/common/rng.hpp"
#include "relogic/config/controller.hpp"
#include "relogic/config/frame_image.hpp"
#include "relogic/config/granularity.hpp"
#include "relogic/config/port.hpp"
#include "relogic/netlist/benchmarks.hpp"
#include "relogic/place/implement.hpp"
#include "relogic/reloc/cost.hpp"
#include "relogic/reloc/engine.hpp"
#include "relogic/runtime/batcher.hpp"
#include "relogic/runtime/fleet.hpp"
#include "relogic/sched/workload.hpp"
#include "relogic/sim/harness.hpp"

namespace relogic {
namespace {

using config::PortBackend;
using config::WriteGranularity;
using fabric::DeviceGeometry;
using fabric::Fabric;
using fabric::LogicCellConfig;

// ---- enum plumbing ----------------------------------------------------------

TEST(GranularityEnum, ParseRoundTrips) {
  for (const auto g : {WriteGranularity::kColumn, WriteGranularity::kFrame,
                       WriteGranularity::kDirtyFrame}) {
    const auto parsed = config::parse_write_granularity(config::to_string(g));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, g);
  }
  EXPECT_EQ(config::parse_write_granularity("col"), WriteGranularity::kColumn);
  EXPECT_EQ(config::parse_write_granularity("dirty-frame"),
            WriteGranularity::kDirtyFrame);
  EXPECT_FALSE(config::parse_write_granularity("bogus").has_value());
}

TEST(PortBackendEnum, ParseRoundTripsAndFactoryWorks) {
  for (const auto b : {PortBackend::kJtag, PortBackend::kSelectMap8,
                       PortBackend::kIcap32}) {
    const auto parsed = config::parse_port_backend(config::to_string(b));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, b);
    EXPECT_NE(config::make_port(b), nullptr);
  }
  EXPECT_EQ(config::parse_port_backend("selectmap"), PortBackend::kSelectMap8);
  EXPECT_EQ(config::parse_port_backend("icap"), PortBackend::kIcap32);
  EXPECT_FALSE(config::parse_port_backend("uart").has_value());
}

TEST(PortBackendEnum, BackendsAreStrictlyFasterInWidthOrder) {
  const int bits = DeviceGeometry::xcv200().frame_length_bits();
  const auto jtag = config::make_port(PortBackend::kJtag);
  const auto smap = config::make_port(PortBackend::kSelectMap8);
  const auto icap = config::make_port(PortBackend::kIcap32);
  EXPECT_LT(icap->write_time(48, bits), smap->write_time(48, bits));
  EXPECT_LT(smap->write_time(48, bits), jtag->write_time(48, bits));
  EXPECT_GT(icap->bandwidth_bps(), smap->bandwidth_bps());
  EXPECT_LT(SimTime::zero(), icap->readback_time(1, bits));
  EXPECT_EQ(icap->write_time(0, bits), SimTime::zero());
}

// ---- dirty-frame diffing at the controller ---------------------------------

class DirtyControllerTest : public ::testing::Test {
 protected:
  DeviceGeometry geom_ = DeviceGeometry::tiny(8, 8);
  Fabric fab_{geom_};
  config::BoundaryScanPort port_;
  config::ConfigController ctl_{fab_, port_, WriteGranularity::kDirtyFrame};
};

TEST_F(DirtyControllerTest, IdenticalRewriteSkipsEveryFrame) {
  config::ConfigOp op("cfg");
  op.write_cell({1, 1}, 0, LogicCellConfig::constant(true));

  const auto first = ctl_.apply(op);
  EXPECT_EQ(first.frames_written, geom_.frames_per_cell_config);
  EXPECT_EQ(first.frames_skipped, 0);
  EXPECT_EQ(first.columns_touched, 1);
  EXPECT_GT(first.time, SimTime::zero());

  // Identical rewrite: contents unchanged, nothing written, no port time.
  const auto again = ctl_.apply(op);
  EXPECT_EQ(again.frames_written, 0);
  EXPECT_EQ(again.frames_skipped, geom_.frames_per_cell_config);
  EXPECT_EQ(again.columns_touched, 0);
  EXPECT_EQ(again.time, SimTime::zero());
  EXPECT_EQ(again.effective_actions, 0);
  // The preview agrees with what apply just did.
  EXPECT_EQ(ctl_.preview(op).frames_written, 0);

  EXPECT_EQ(ctl_.totals().frames_skipped, geom_.frames_per_cell_config);
  EXPECT_TRUE(fab_.cell({1, 1}, 0).used);  // structural state unaffected
}

TEST_F(DirtyControllerTest, SelfCancellingOpDirtiesNothing) {
  const auto& g = fab_.graph();
  const auto net = fab_.create_net("n");
  const auto src = g.out_pin({2, 2}, 0, false);
  const auto wire = g.single({2, 2}, fabric::Dir::kE, 0);

  // Add then remove the same PIP in one op: the XOR delta nets to zero, so
  // the frame's content is unchanged and kDirtyFrame writes nothing.
  config::ConfigOp op("toggle");
  op.attach_source(net, src)
      .add_edge(net, {src, wire})
      .remove_edge(net, {src, wire})
      .detach_source(net, src);
  const auto r = ctl_.apply(op);
  EXPECT_EQ(r.frames_written, 0);
  EXPECT_GT(r.frames_skipped, 0);
  EXPECT_EQ(r.effective_actions, 4);  // all four actions did apply
  EXPECT_EQ(ctl_.preview(op).frames_written, 0);
  EXPECT_TRUE(g.is_free(wire));
}

TEST_F(DirtyControllerTest, ReadbackFramesNeverDirtySkipped) {
  config::ConfigOp op("cfg");
  op.write_cell({1, 1}, 0, LogicCellConfig::constant(true));
  ctl_.apply(op);
  // An identical rewrite writes nothing under kDirtyFrame — but a readback
  // verifying the op must still fetch the whole frame group.
  EXPECT_EQ(ctl_.preview(op).frames_written, 0);
  EXPECT_EQ(ctl_.readback_frames(op), geom_.frames_per_cell_config);
}

TEST_F(DirtyControllerTest, ShadowImageTracksAppliedDeltas) {
  EXPECT_EQ(ctl_.image().tracked_frames(), 0u);
  config::ConfigOp op("cfg");
  op.write_cell({3, 2}, 1, LogicCellConfig::constant(false));
  ctl_.apply(op);
  EXPECT_EQ(ctl_.image().tracked_frames(),
            static_cast<std::size_t>(geom_.frames_per_cell_config));
  // Clearing the cell restores the erased content: digests return to zero.
  config::ConfigOp clear("clear");
  clear.clear_cell({3, 2}, 1);
  ctl_.apply(clear);
  for (const auto& f : ctl_.mapper().cell_frames({3, 2}, 1))
    EXPECT_EQ(ctl_.image().digest(f), 0u);
}

// Random op streams: dirty never writes more frames than kFrame, skipped
// accounting is exact, and both controllers land in the same fabric state.
TEST(DirtyProperty, DirtyWritesSubsetOfFrameWrites) {
  const auto geom = DeviceGeometry::tiny(8, 8);
  config::BoundaryScanPort port;
  Fabric frame_fab(geom), dirty_fab(geom);
  config::ConfigController frame_ctl(frame_fab, port, WriteGranularity::kFrame);
  config::ConfigController dirty_ctl(dirty_fab, port,
                                     WriteGranularity::kDirtyFrame);

  Rng rng(20260730);
  for (int step = 0; step < 200; ++step) {
    config::ConfigOp op("op" + std::to_string(step));
    const int actions = 1 + static_cast<int>(rng.next_u64() % 3);
    for (int a = 0; a < actions; ++a) {
      const ClbCoord clb{static_cast<int>(rng.next_u64() % 8),
                         static_cast<int>(rng.next_u64() % 8)};
      const int cell = static_cast<int>(rng.next_u64() % 4);
      if (rng.next_u64() % 4 == 0) {
        op.clear_cell(clb, cell);
      } else {
        LogicCellConfig cfg;
        cfg.used = true;
        // Small LUT alphabet so identical rewrites actually happen.
        cfg.lut = static_cast<std::uint16_t>(0x1111 *
                                             (1 + rng.next_u64() % 4));
        op.write_cell(clb, cell, cfg);
      }
    }
    const auto rf = frame_ctl.apply(op);
    const auto rd = dirty_ctl.apply(op);
    ASSERT_LE(rd.frames_written, rf.frames_written);
    ASSERT_EQ(rd.frames_written + rd.frames_skipped, rf.frames_written);
    ASSERT_EQ(rd.effective_actions, rf.effective_actions);
    ASSERT_LE(rd.time, rf.time);
  }

  const auto a = frame_fab.capture();
  const auto b = dirty_fab.capture();
  ASSERT_EQ(a.clbs.size(), b.clbs.size());
  for (std::size_t i = 0; i < a.clbs.size(); ++i) EXPECT_EQ(a.clbs[i], b.clbs[i]);
}

// ---- golden equivalence through the relocation engine ----------------------

struct ScenarioResult {
  Fabric::State state;
  std::vector<reloc::RelocationReport> reports;
  int frames_written = 0;
  SimTime config_time = SimTime::zero();
};

ScenarioResult run_relocation_scenario(WriteGranularity gran,
                                       PortBackend backend) {
  Fabric fab(DeviceGeometry::tiny(12, 12));
  const fabric::DelayModel dm;
  const auto port = config::make_port(backend);
  config::ConfigController controller(fab, *port, gran);
  sim::FabricSim sim(fab, dm);
  sim.add_clock(sim::ClockSpec{});
  place::Implementer implementer(fab, dm);
  place::Router router(fab, dm);
  reloc::RelocationEngine engine(controller, router, &sim);

  const auto nl = netlist::bench::b02(netlist::bench::ClockingStyle::kGatedClock);
  const auto mapped = netlist::map_netlist(nl);
  place::ImplementOptions opts;
  opts.region = place::suggest_region(mapped, ClbCoord{2, 2}, fab.geometry());
  auto impl = implementer.implement(mapped, opts);

  sim::CircuitHarness harness(sim, nl, impl);
  Rng rng(7);
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(harness.step_random(rng).ok());

  ScenarioResult out;
  for (int i = 0; i < 2 && i < impl.cell_count(); ++i) {
    const place::CellSite dest{ClbCoord{8, 8 + i}, 0};
    const auto rep = engine.relocate_cell(impl, i, dest);
    out.reports.push_back(rep);
    out.frames_written += rep.frames_written;
    out.config_time += rep.config_time;
  }
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(harness.step_random(rng).ok());
  EXPECT_EQ(harness.total_mismatches(), 0);
  out.state = fab.capture();
  return out;
}

TEST(GoldenEquivalence, FabricStateIdenticalAcrossGranularitiesAndBackends) {
  // Reference combo: the paper's regime.
  const ScenarioResult ref =
      run_relocation_scenario(WriteGranularity::kColumn, PortBackend::kJtag);
  ASSERT_FALSE(ref.reports.empty());

  for (const auto gran : {WriteGranularity::kColumn, WriteGranularity::kFrame,
                          WriteGranularity::kDirtyFrame}) {
    for (const auto backend : {PortBackend::kJtag, PortBackend::kSelectMap8,
                               PortBackend::kIcap32}) {
      if (gran == WriteGranularity::kColumn && backend == PortBackend::kJtag)
        continue;
      SCOPED_TRACE(config::to_string(gran) + " x " + config::to_string(backend));
      const ScenarioResult got = run_relocation_scenario(gran, backend);

      // Structural end state: byte-identical.
      ASSERT_EQ(got.state.clbs.size(), ref.state.clbs.size());
      for (std::size_t i = 0; i < ref.state.clbs.size(); ++i)
        ASSERT_EQ(got.state.clbs[i], ref.state.clbs[i]) << "CLB " << i;
      ASSERT_EQ(got.state.net_alive, ref.state.net_alive);
      ASSERT_EQ(got.state.nets.size(), ref.state.nets.size());
      for (std::size_t i = 0; i < ref.state.nets.size(); ++i) {
        EXPECT_EQ(got.state.nets[i].sources, ref.state.nets[i].sources);
        EXPECT_EQ(got.state.nets[i].edges, ref.state.nets[i].edges);
      }

      // Relocation reports: identical up to timing / frame counters.
      ASSERT_EQ(got.reports.size(), ref.reports.size());
      for (std::size_t i = 0; i < ref.reports.size(); ++i) {
        EXPECT_EQ(got.reports[i].from, ref.reports[i].from);
        EXPECT_EQ(got.reports[i].to, ref.reports[i].to);
        EXPECT_EQ(got.reports[i].reg, ref.reports[i].reg);
        EXPECT_EQ(got.reports[i].gated_clock, ref.reports[i].gated_clock);
        EXPECT_EQ(got.reports[i].ops, ref.reports[i].ops);
        EXPECT_EQ(got.reports[i].state_verified, ref.reports[i].state_verified);
      }

      // Narrower granularities never write more frames.
      if (gran != WriteGranularity::kColumn) {
        EXPECT_LE(got.frames_written, ref.frames_written);
      }
    }
  }
}

// ---- cost model -------------------------------------------------------------

TEST(GranularCostModel, CheaperRegimesPriceCheaper) {
  const auto geom = DeviceGeometry::xcv200();
  config::BoundaryScanPort jtag;
  const reloc::RelocationCostModel column(geom, jtag, {},
                                          WriteGranularity::kColumn);
  const reloc::RelocationCostModel frame(geom, jtag, {},
                                         WriteGranularity::kFrame);
  const reloc::RelocationCostModel dirty(geom, jtag, {},
                                         WriteGranularity::kDirtyFrame);
  for (const bool gated : {false, true}) {
    const auto c = column.cell_time(fabric::RegMode::kFF, gated);
    const auto f = frame.cell_time(fabric::RegMode::kFF, gated);
    const auto d = dirty.cell_time(fabric::RegMode::kFF, gated);
    EXPECT_LT(f, c);
    // Default dirty_write_fraction is the measured 1.0 (relocation op
    // streams have no redundant writes), so dirty prices exactly as frame.
    EXPECT_EQ(d, f);
  }
  EXPECT_LT(frame.configure_time(64), column.configure_time(64));
  EXPECT_EQ(column.granularity(), WriteGranularity::kColumn);

  // Workloads with redundant rewrites are modelled by lowering the
  // fraction; pricing then drops below kFrame.
  reloc::CostParams redundant;
  redundant.dirty_write_fraction = 0.5;
  const reloc::RelocationCostModel dirty_half(geom, jtag, redundant,
                                              WriteGranularity::kDirtyFrame);
  EXPECT_LT(dirty_half.cell_time(fabric::RegMode::kFF, true),
            frame.cell_time(fabric::RegMode::kFF, true));
}

// ---- batcher ----------------------------------------------------------------

TEST(BatcherDirty, SkippedFramesAreCounted) {
  const auto geom = DeviceGeometry::tiny(8, 8);
  config::BoundaryScanPort port;
  Fabric fab(geom);
  config::ConfigController ctl(fab, port, WriteGranularity::kDirtyFrame);
  runtime::TransactionBatcher batcher(ctl, runtime::BatchOptions{.max_ops = 2});

  config::ConfigOp op("cfg");
  op.write_cell({1, 1}, 0, LogicCellConfig::constant(true));
  batcher.enqueue(op);
  batcher.enqueue(op);  // identical rewrite merged into the same batch
  batcher.flush();
  // The merged transaction writes the cell's frames once; the repeat
  // contributed nothing (ineffective action, no extra delta).
  EXPECT_EQ(batcher.stats().frames_written, geom.frames_per_cell_config);
  EXPECT_EQ(batcher.stats().unbatched_frames, 2 * geom.frames_per_cell_config);

  // A third identical op arriving after the flush is a pure skip: both the
  // applied transaction and the enqueue-time unbatched estimate (previewed
  // against the now-written fabric) count its frames as dirty-skipped.
  batcher.enqueue(op);
  batcher.flush();
  EXPECT_EQ(batcher.stats().frames_written, geom.frames_per_cell_config);
  EXPECT_EQ(batcher.stats().frames_skipped, geom.frames_per_cell_config);
  EXPECT_EQ(batcher.stats().unbatched_frames_skipped,
            geom.frames_per_cell_config);
}

TEST(BatcherDirty, MaxFramesBoundsTransactionWidth) {
  const auto geom = DeviceGeometry::tiny(8, 8);
  config::BoundaryScanPort port;
  Fabric fab(geom);
  config::ConfigController ctl(fab, port, WriteGranularity::kFrame);
  runtime::TransactionBatcher batcher(
      ctl, runtime::BatchOptions{.max_ops = 8,
                                 .max_frames = geom.frames_per_cell_config});

  // Each op maps frames_per_cell_config frames of a distinct cell group:
  // with max_frames == one group, every merge attempt flushes first.
  for (int c = 0; c < 3; ++c) {
    config::ConfigOp op("op" + std::to_string(c));
    op.write_cell({1, c}, 0, LogicCellConfig::constant(true));
    batcher.enqueue(op);
  }
  batcher.flush();
  EXPECT_EQ(batcher.stats().transactions, 3);
}

// ---- fleet: heterogeneous configuration planes ------------------------------

runtime::FleetConfig hetero_fleet() {
  runtime::FleetConfig cfg;
  cfg.devices = 3;
  cfg.rows = cfg.cols = 16;
  cfg.threads = 1;
  cfg.config_plane = {PortBackend::kJtag, WriteGranularity::kColumn};
  cfg.device_config_planes[1] = {PortBackend::kIcap32,
                                 WriteGranularity::kDirtyFrame};
  cfg.device_config_planes[2] = {PortBackend::kSelectMap8,
                                 WriteGranularity::kFrame};
  return cfg;
}

std::vector<sched::TaskArrival> fleet_workload(int n, std::uint64_t seed) {
  sched::WorkloadParams params;
  params.task_count = n;
  params.seed = seed;
  params.max_side = 6;
  return sched::WorkloadGenerator(params).generate();
}

TEST(FleetConfigPlane, PerDevicePlanesResolveAndEchoInJson) {
  runtime::FleetConfig cfg = hetero_fleet();
  EXPECT_EQ(cfg.plane_for(0).port, PortBackend::kJtag);
  EXPECT_EQ(cfg.plane_for(1).port, PortBackend::kIcap32);
  EXPECT_EQ(cfg.plane_for(1).granularity, WriteGranularity::kDirtyFrame);
  EXPECT_EQ(cfg.plane_for(2).granularity, WriteGranularity::kFrame);

  runtime::FleetManager fleet(cfg);
  fleet.submit_all(fleet_workload(40, 11));
  const auto report = fleet.run();
  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"port\": \"jtag\""), std::string::npos);
  EXPECT_NE(json.find("\"port\": \"icap32\""), std::string::npos);
  EXPECT_NE(json.find("\"granularity\": \"dirty\""), std::string::npos);
  EXPECT_NE(json.find("\"frame_writes\""), std::string::npos);
  EXPECT_NE(json.find("\"frame_writes_dirty_skipped\""), std::string::npos);
}

TEST(FleetConfigPlane, OverrideForNonexistentDeviceRejected) {
  runtime::FleetConfig cfg = hetero_fleet();
  cfg.device_config_planes[7] = {PortBackend::kJtag, WriteGranularity::kFrame};
  EXPECT_THROW(runtime::FleetManager{cfg}, ContractError);
  cfg.device_config_planes.erase(7);
  cfg.device_config_planes[-1] = {PortBackend::kJtag, WriteGranularity::kFrame};
  EXPECT_THROW(runtime::FleetManager{cfg}, ContractError);
}

TEST(FleetConfigPlane, LegacySelectMapFlagStillResolves) {
  runtime::FleetConfig cfg;
  cfg.use_selectmap = true;
  EXPECT_EQ(cfg.plane_for(0).port, PortBackend::kSelectMap8);
  // An explicit plane wins over the legacy flag.
  cfg.config_plane.port = PortBackend::kIcap32;
  EXPECT_EQ(cfg.plane_for(0).port, PortBackend::kIcap32);
}

TEST(FleetConfigPlane, HeterogeneousRunDeterministicAcrossThreadCounts) {
  runtime::FleetConfig cfg = hetero_fleet();
  runtime::FleetConfig cfg3 = cfg;
  cfg3.threads = 3;

  runtime::FleetManager a(cfg);
  runtime::FleetManager b(cfg3);
  a.submit_all(fleet_workload(60, 23));
  b.submit_all(fleet_workload(60, 23));
  EXPECT_EQ(a.run().to_json(), b.run().to_json());
}

TEST(FleetConfigPlane, DirtyGranularityWritesFewerFramesSameSchedule) {
  runtime::FleetConfig col;
  col.devices = 2;
  col.rows = col.cols = 16;
  col.threads = 1;
  col.config_plane = {PortBackend::kJtag, WriteGranularity::kColumn};
  runtime::FleetConfig dirty = col;
  dirty.config_plane.granularity = WriteGranularity::kDirtyFrame;

  runtime::FleetManager a(col);
  runtime::FleetManager b(dirty);
  a.submit_all(fleet_workload(50, 5));
  b.submit_all(fleet_workload(50, 5));
  const auto ra = a.run();
  const auto rb = b.run();

  // Same workload, same admission: dirty diffing slashes the frames the
  // fleet's configuration replay writes. (Scheduling may differ slightly —
  // cheaper moves change the move-cost gate — so only the write accounting
  // is compared.)
  EXPECT_EQ(ra.admitted, rb.admitted);
  EXPECT_LT(rb.aggregate.counter_value("frame_writes"),
            ra.aggregate.counter_value("frame_writes"));
  // The per-task configure + clear replay sequences give dirty diffing real
  // cancellations to skip at fleet scale (a configure merged with its own
  // clear XORs out to nothing).
  EXPECT_GT(rb.aggregate.counter_value("frame_writes_dirty_skipped"), 0);
}

}  // namespace
}  // namespace relogic
