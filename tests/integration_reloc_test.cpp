// Integration tests: the paper's central experiment.
//
// Implement a live sequential circuit on the fabric, run it in lockstep
// with the golden model, dynamically relocate cells *while it runs*, and
// verify: outputs match the golden model every cycle, no state is lost, no
// glitches on registered outputs, no drive conflicts — "no loss of
// information or functional disturbance" (paper, Sec. 2).
#include <gtest/gtest.h>

#include "relogic/common/rng.hpp"
#include "relogic/config/controller.hpp"
#include "relogic/config/port.hpp"
#include "relogic/netlist/benchmarks.hpp"
#include "relogic/place/implement.hpp"
#include "relogic/reloc/engine.hpp"
#include "relogic/sim/harness.hpp"

namespace relogic {
namespace {

using fabric::DeviceGeometry;
using fabric::Fabric;
using netlist::bench::ClockingStyle;
using place::CellSite;
using place::Implementer;
using place::ImplementOptions;

struct Rig {
  Fabric fab;
  fabric::DelayModel dm;
  config::BoundaryScanPort port;
  config::ConfigController controller;
  sim::FabricSim sim;
  Implementer implementer;
  place::Router router;
  reloc::RelocationEngine engine;

  explicit Rig(DeviceGeometry geom = DeviceGeometry::tiny(12, 12))
      : fab(std::move(geom)),
        controller(fab, port, /*column_granular=*/true),
        sim(fab, dm),
        implementer(fab, dm),
        router(fab, dm),
        engine(controller, router, &sim) {
    sim.add_clock(sim::ClockSpec{});
  }
};

place::Implementation implement_at(Rig& rig, const netlist::Netlist& nl,
                                   ClbCoord origin) {
  const auto mapped = netlist::map_netlist(nl);
  ImplementOptions opts;
  opts.region = place::suggest_region(mapped, origin, rig.fab.geometry());
  return rig.implementer.implement(mapped, opts);
}

// --- baseline: circuits behave like the golden model without relocation ---

class LockstepTest : public ::testing::TestWithParam<ClockingStyle> {};

TEST_P(LockstepTest, B01MatchesGolden) {
  Rig rig;
  const auto nl = netlist::bench::b01(GetParam());
  auto impl = implement_at(rig, nl, {2, 2});
  sim::CircuitHarness harness(rig.sim, nl, impl);
  Rng rng(1);
  for (int i = 0; i < 60; ++i) {
    const auto r = harness.step_random(rng);
    ASSERT_TRUE(r.ok()) << harness.mismatch_log().back();
  }
}

TEST_P(LockstepTest, B02MatchesGolden) {
  Rig rig;
  const auto nl = netlist::bench::b02(GetParam());
  auto impl = implement_at(rig, nl, {2, 2});
  sim::CircuitHarness harness(rig.sim, nl, impl);
  Rng rng(2);
  for (int i = 0; i < 60; ++i) {
    const auto r = harness.step_random(rng);
    ASSERT_TRUE(r.ok()) << harness.mismatch_log().back();
  }
}

TEST_P(LockstepTest, B06MatchesGolden) {
  Rig rig;
  const auto nl = netlist::bench::b06(GetParam());
  auto impl = implement_at(rig, nl, {2, 2});
  sim::CircuitHarness harness(rig.sim, nl, impl);
  Rng rng(3);
  for (int i = 0; i < 60; ++i) {
    const auto r = harness.step_random(rng);
    ASSERT_TRUE(r.ok()) << harness.mismatch_log().back();
  }
}

TEST_P(LockstepTest, CounterMatchesGolden) {
  Rig rig;
  const auto nl = netlist::bench::counter(5, GetParam());
  auto impl = implement_at(rig, nl, {3, 3});
  sim::CircuitHarness harness(rig.sim, nl, impl);
  Rng rng(4);
  for (int i = 0; i < 80; ++i) {
    const auto r = harness.step_random(rng);
    ASSERT_TRUE(r.ok()) << harness.mismatch_log().back();
  }
}

INSTANTIATE_TEST_SUITE_P(Styles, LockstepTest,
                         ::testing::Values(ClockingStyle::kFreeRunning,
                                           ClockingStyle::kGatedClock),
                         [](const auto& pinfo) {
                           return pinfo.param == ClockingStyle::kFreeRunning
                                      ? "FreeRunning"
                                      : "GatedClock";
                         });

// --- the headline experiment: relocation during operation -----------------

TEST(RelocationTest, CombinationalCellRelocatesTransparently) {
  Rig rig;
  const auto nl = netlist::bench::random_logic("comb", 12, 4, 3, 99);
  auto impl = implement_at(rig, nl, {2, 2});
  sim::CircuitHarness harness(rig.sim, nl, impl);
  Rng rng(5);
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(harness.step_random(rng).ok());

  // Relocate every cell, one by one, to a far free corner.
  for (int i = 0; i < impl.cell_count(); ++i) {
    const CellSite dest{ClbCoord{9, 2 + (i / 4)}, i % 4};
    const auto report = rig.engine.relocate_cell(impl, i, dest);
    EXPECT_GT(report.frames_written, 0);
    for (int s = 0; s < 5; ++s)
      ASSERT_TRUE(harness.step_random(rng).ok())
          << harness.mismatch_log().back();
  }
  EXPECT_TRUE(rig.sim.monitor().clean());
}

TEST(RelocationTest, FreeRunningFFPreservesState) {
  Rig rig;
  const auto nl = netlist::bench::counter(5, ClockingStyle::kFreeRunning);
  auto impl = implement_at(rig, nl, {2, 2});
  sim::CircuitHarness harness(rig.sim, nl, impl);
  Rng rng(6);
  for (int i = 0; i < 13; ++i) ASSERT_TRUE(harness.step_random(rng).ok());

  // Move the whole counter to the opposite corner while it counts.
  const auto report =
      rig.engine.relocate_function(impl, ClbRect{8, 8, 3, 3});
  EXPECT_EQ(static_cast<int>(report.cells.size()), impl.cell_count());
  for (const auto& r : report.cells) EXPECT_TRUE(r.state_verified);

  for (int i = 0; i < 40; ++i)
    ASSERT_TRUE(harness.step_random(rng).ok())
        << harness.mismatch_log().back();
  EXPECT_EQ(rig.sim.monitor().count(sim::ViolationKind::kDriveConflict), 0);
}

TEST(RelocationTest, GatedClockFFUsesAuxCircuitAndPreservesState) {
  Rig rig;
  const auto nl = netlist::bench::b01(ClockingStyle::kGatedClock);
  auto impl = implement_at(rig, nl, {2, 2});
  sim::CircuitHarness harness(rig.sim, nl, impl);
  Rng rng(7);
  // Run with sparse CE activity so the transfer happens under an inactive
  // clock-enable most of the time (the hard case of Fig. 3).
  auto random_inputs = [&] {
    std::vector<bool> in;
    for (std::size_t i = 0; i < nl.inputs().size(); ++i)
      in.push_back(rng.next_bool());
    in.back() = rng.next_bool(0.2);  // "ce" is the last declared input
    return in;
  };
  for (int i = 0; i < 15; ++i) ASSERT_TRUE(harness.step(random_inputs()).ok());

  const auto report = rig.engine.relocate_function(impl, ClbRect{7, 7, 4, 4});
  for (const auto& r : report.cells) {
    if (r.reg == fabric::RegMode::kFF) {
      EXPECT_TRUE(r.gated_clock);
      EXPECT_TRUE(r.state_verified);
    }
  }

  for (int i = 0; i < 40; ++i)
    ASSERT_TRUE(harness.step(random_inputs()).ok())
        << harness.mismatch_log().back();
  EXPECT_EQ(rig.sim.monitor().count(sim::ViolationKind::kDriveConflict), 0);
}

TEST(RelocationTest, AsyncLatchPipelineRelocates) {
  Rig rig;
  const auto nl = netlist::bench::async_pipeline(4);
  auto impl = implement_at(rig, nl, {2, 2});
  sim::CircuitHarness harness(rig.sim, nl, impl);

  // Walk a token through the pipeline with two-phase gating.
  auto phase_step = [&](bool din, bool phi1, bool phi2) {
    return harness.settle_step({din, phi1, phi2});
  };
  ASSERT_TRUE(phase_step(true, true, false).ok());
  ASSERT_TRUE(phase_step(true, false, true).ok());

  // Relocate the second latch while the pipeline holds data.
  const auto report =
      rig.engine.relocate_cell(impl, 1, CellSite{ClbCoord{9, 9}, 0});
  EXPECT_EQ(report.reg, fabric::RegMode::kLatch);

  ASSERT_TRUE(phase_step(false, true, false).ok());
  ASSERT_TRUE(phase_step(false, false, true).ok());
  ASSERT_TRUE(phase_step(false, true, false).ok());
  EXPECT_EQ(harness.total_mismatches(), 0);
}

TEST(RelocationTest, LutRamRefusesRelocation) {
  Rig rig;
  const auto nl = netlist::bench::counter(3, ClockingStyle::kFreeRunning);
  auto impl = implement_at(rig, nl, {2, 2});
  // Turn one cell into a LUT-RAM after the fact.
  auto cfg = rig.fab.cell(impl.sites[0].clb, impl.sites[0].cell);
  cfg.lut_mode = fabric::LutMode::kRam;
  rig.fab.set_cell_config(impl.sites[0].clb, impl.sites[0].cell, cfg);
  EXPECT_THROW(
      rig.engine.relocate_cell(impl, 0, CellSite{ClbCoord{9, 9}, 0}),
      IllegalOperationError);
}

TEST(RelocationTest, RelocationReportsConfigPortTime) {
  Rig rig;
  const auto nl = netlist::bench::b02(ClockingStyle::kGatedClock);
  auto impl = implement_at(rig, nl, {2, 2});
  sim::CircuitHarness harness(rig.sim, nl, impl);
  Rng rng(8);
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(harness.step_random(rng).ok());

  const auto report =
      rig.engine.relocate_cell(impl, impl.cell_count() - 1,
                               CellSite{ClbCoord{9, 2}, 0});
  // Gated-clock relocation over Boundary Scan: milliseconds, not micro.
  EXPECT_GT(report.config_time, SimTime::ms(1));
  EXPECT_LT(report.config_time, SimTime::ms(200));
  EXPECT_GE(report.wall_time, report.config_time);
  EXPECT_GT(report.ops, 5);
}

}  // namespace
}  // namespace relogic
