// bench_fig6_path_delay — reproduces Fig. 6: propagation delay during the
// relocation of routing resources.
//
// While original and replica paths are paralleled, the signal at the
// destination shows an interval of fuzziness bounded by the two path
// delays; the effective delay is the *longer* of the two. The bench routes
// a connection, parallels it with progressively longer replica detours and
// prints the min/max sink delay (the fuzziness interval) for each, plus
// the settled delay after the original path is removed.
#include <cstdio>

#include "relogic/config/controller.hpp"
#include "relogic/config/port.hpp"
#include "relogic/fabric/fabric.hpp"
#include "relogic/place/router.hpp"
#include "relogic/reloc/engine.hpp"

using namespace relogic;
using fabric::Dir;
using fabric::NodeId;

int main() {
  std::printf("# Fig. 6 — propagation delay during routing relocation\n");
  std::printf("%-12s %14s %14s %16s %18s\n", "detour/tiles", "min delay/ns",
              "max delay/ns", "fuzziness/ns", "after disconnect/ns");

  for (int detour = 2; detour <= 12; detour += 2) {
    // Fresh occupancy per detour length; connectivity comes from the
    // shared cached skeleton after the first iteration.
    fabric::Fabric fab(fabric::DeviceGeometry::tiny(16, 16));
    const fabric::DelayModel dm;
    const auto& g = fab.graph();

    // Original path: straight east along row 8.
    const fabric::NetId net = fab.create_net("fig6");
    const NodeId src = g.out_pin({8, 2}, 0, false);
    const NodeId sink = g.in_pin({8, 6}, 0, fabric::CellPort::kI0);
    fab.attach_source(net, src);
    NodeId prev = src;
    for (int c = 2; c < 6; ++c) {
      const NodeId w = g.single({8, c}, Dir::kE, 0);
      fab.add_edge(net, {prev, w});
      prev = w;
    }
    fab.add_edge(net, {prev, sink});
    const auto before = fab.sink_delays(net, dm);

    // Replica path: up `detour/2` rows, east, and back down (Fig. 5 shape).
    prev = src;
    const int up = detour / 2;
    for (int r = 8; r > 8 - up; --r) {
      const NodeId w = g.single({r, 2}, Dir::kN, 1);
      fab.add_edge(net, {prev, w});
      prev = w;
    }
    for (int c = 2; c < 6; ++c) {
      const NodeId w = g.single({8 - up, c}, Dir::kE, 1);
      fab.add_edge(net, {prev, w});
      prev = w;
    }
    for (int r = 8 - up; r < 8; ++r) {
      const NodeId w = g.single({r, 6}, Dir::kS, 1);
      fab.add_edge(net, {prev, w});
      prev = w;
    }
    fab.add_edge(net, {prev, sink});
    fab.validate_net(net);

    const auto parallel = fab.sink_delays(net, dm);

    // Disconnect the original path (the Fig. 5 final step).
    std::vector<fabric::RouteEdge> original;
    NodeId p = src;
    for (int c = 2; c < 6; ++c) {
      const NodeId w = g.single({8, c}, Dir::kE, 0);
      original.push_back({p, w});
      p = w;
    }
    original.push_back({p, sink});
    fab.remove_edges(net, original);
    fab.validate_net(net);
    const auto after = fab.sink_delays(net, dm);

    std::printf("%-12d %14.3f %14.3f %16.3f %18.3f\n", detour,
                parallel[0].min.nanoseconds(), parallel[0].max.nanoseconds(),
                (parallel[0].max - parallel[0].min).nanoseconds(),
                after[0].max.nanoseconds());
    (void)before;
  }

  std::printf("\n# shape check: paralleled delay equals the longer path; the\n"
              "# fuzziness interval grows with the detour length (Fig. 6).\n");
  return 0;
}
