// bench_fig2_two_phase — reproduces Fig. 2: the two-phase CLB relocation
// procedure.
//
// Relocates one combinational cell and one free-running-clock FF cell and
// prints the transaction trace: phase, op label, frames, columns, port
// time — showing phase 1 (copy configuration + parallel inputs) and
// phase 2 (parallel outputs, then disconnect original, outputs first).
#include <cstdio>
#include <string>
#include <vector>

#include "relogic/common/logging.hpp"
#include "relogic/config/controller.hpp"
#include "relogic/config/port.hpp"
#include "relogic/netlist/benchmarks.hpp"
#include "relogic/place/implement.hpp"
#include "relogic/reloc/engine.hpp"
#include "relogic/sim/harness.hpp"

using namespace relogic;

namespace {

/// Controller wrapper that traces each transaction.
class TracingListener final : public fabric::FabricListener {
 public:
  void on_cell_changed(ClbCoord, int, const fabric::LogicCellConfig&,
                       const fabric::LogicCellConfig&) override {
    ++cell_writes;
  }
  void on_net_changed(fabric::NetId) override { ++net_changes; }
  int cell_writes = 0;
  int net_changes = 0;
};

void run_case(const char* title, const netlist::Netlist& nl) {
  fabric::Fabric fab(fabric::DeviceGeometry::tiny(12, 12));
  const fabric::DelayModel dm;
  config::BoundaryScanPort jtag;
  config::ConfigController controller(fab, jtag);
  sim::FabricSim sim(fab, dm);
  sim.add_clock(sim::ClockSpec{});
  place::Implementer implementer(fab, dm);
  place::Router router(fab, dm);
  reloc::RelocationEngine engine(controller, router, &sim);

  const auto mapped = netlist::map_netlist(nl);
  place::ImplementOptions opts;
  opts.region = place::suggest_region(mapped, ClbCoord{2, 2}, fab.geometry());
  auto impl = implementer.implement(mapped, opts);

  sim::CircuitHarness harness(sim, nl, impl);
  Rng rng(17);
  for (int i = 0; i < 8; ++i) harness.step_random(rng);

  // Capture the engine's one-line-per-op narration through the log sink
  // instead of letting it interleave with stdout on stderr; the trace is
  // then printed as part of this case's block below.
  std::vector<std::string> op_trace;
  set_log_sink(
      [&op_trace](LogLevel, const std::string& msg) { op_trace.push_back(msg); });
  set_log_level(LogLevel::kDebug);  // emits one line per config op
  const auto before = controller.totals();
  const auto report =
      engine.relocate_cell(impl, 0, place::CellSite{ClbCoord{9, 9}, 0});
  set_log_level(LogLevel::kOff);
  set_log_sink(nullptr);
  const auto after = controller.totals();

  for (int i = 0; i < 8; ++i) harness.step_random(rng);

  std::printf("%s\n", title);
  for (const auto& line : op_trace) std::printf("    %s\n", line.c_str());
  std::printf("  %s\n", report.to_string().c_str());
  std::printf("  transactions %d, frames %d, columns %d, port time %s\n",
              after.ops - before.ops,
              after.frames_written - before.frames_written,
              after.columns_touched - before.columns_touched,
              (after.time - before.time).to_string().c_str());
  std::printf("  lockstep after relocation: %s, monitor: %s\n\n",
              harness.total_mismatches() == 0 ? "clean" : "MISMATCH",
              sim.monitor().clean() ? "clean" : "DIRTY");
}

}  // namespace

int main() {
  std::printf("# Fig. 2 — two-phase CLB relocation procedure\n");
  std::printf("# (op-by-op trace per case: phase 1 = copy config + parallel "
              "inputs,\n#  phase 2 = parallel outputs, disconnect original "
              "outputs, then inputs)\n\n");
  run_case("combinational cell:",
           netlist::bench::random_logic("comb", 8, 4, 2, 21));
  run_case("free-running-clock FF cell:",
           netlist::bench::counter(
               4, netlist::bench::ClockingStyle::kFreeRunning));
  return 0;
}
