#!/usr/bin/env python3
"""Validator for relogic::obs metrics-timeline JSON (stdlib only).

Checks the invariants the metrics plane promises (DESIGN.md §7.5) so CI
can gate `relogic-cli --metrics-out` / `bench_fleet_online --metrics`
output without a JSON-schema dependency:

  * top level is an object with schema "relogic.metrics.v1", a numeric
    "sample_interval_ms" >= 0, an "aggregate" timeline and a "devices"
    list of {device, timeline} objects;
  * every timeline has a non-empty "samples" list with non-decreasing
    "t_ms", integer "sweep_col" >= -1 and "quarantined_devices" >= 0;
  * counter values are non-negative, never decrease, never disappear
    once present, and each row's "delta" equals value minus the previous
    row's value (the value itself on first appearance); "rate_per_s" is
    non-negative and zero exactly when the delta is zero;
  * gauge "samples" counts are non-negative and non-decreasing;
  * histogram "count" is non-decreasing, "window_count" equals count
    minus the previous row's count, and a zero-observation window never
    carries window_p50/p95/p99 keys (no data, not stale quantiles);
  * the aggregate's "quarantined_devices" is non-decreasing (devices
    never leave quarantine within a run).

With --min-samples N, additionally requires the aggregate timeline to
carry at least N rows — the coverage gate for CI smoke runs.

Usage: check_metrics_format.py METRICS.json [--min-samples N]
"""

import json
import sys

SCHEMA = "relogic.metrics.v1"
WINDOW_QUANTILES = ("window_p50", "window_p95", "window_p99")


def fail(msg):
    print(f"FAIL: {msg}")
    return 1


def check_timeline(tl, label, monotone_quarantine):
    """Returns (error, row_count, counter_names). error is None on pass."""
    if not isinstance(tl, dict) or not isinstance(tl.get("samples"), list):
        return f'{label}: missing or non-list "samples"', 0, set()
    samples = tl["samples"]
    if not samples:
        return f"{label}: empty timeline", 0, set()

    prev_t = None
    prev_quar = 0
    prev_counters = {}
    prev_gauge_samples = {}
    prev_hist_counts = {}
    names = set()
    for i, row in enumerate(samples):
        where = f"{label} row {i}"
        if not isinstance(row, dict):
            return f"{where}: not an object", 0, set()
        t = row.get("t_ms")
        if not isinstance(t, (int, float)) or t < 0:
            return f"{where}: missing or negative t_ms: {t!r}", 0, set()
        if prev_t is not None and t < prev_t:
            return f"{where}: t_ms {t} < previous {prev_t}", 0, set()
        prev_t = t
        sweep = row.get("sweep_col")
        if not isinstance(sweep, int) or sweep < -1:
            return f"{where}: bad sweep_col: {sweep!r}", 0, set()
        quar = row.get("quarantined_devices")
        if not isinstance(quar, int) or quar < 0:
            return f"{where}: bad quarantined_devices: {quar!r}", 0, set()
        if monotone_quarantine and quar < prev_quar:
            return (f"{where}: quarantined_devices {quar} < previous "
                    f"{prev_quar}"), 0, set()
        prev_quar = quar

        counters = row.get("counters")
        if not isinstance(counters, dict):
            return f"{where}: missing counters object", 0, set()
        missing = set(prev_counters) - set(counters)
        if missing:
            return f"{where}: counters disappeared: {sorted(missing)}", 0, set()
        for name, c in sorted(counters.items()):
            names.add(name)
            value, delta = c.get("value"), c.get("delta")
            rate = c.get("rate_per_s")
            if not isinstance(value, int) or value < 0:
                return f"{where}: counter {name} bad value: {value!r}", 0, set()
            before = prev_counters.get(name, 0)
            if value < before:
                return (f"{where}: counter {name} ran backwards "
                        f"({before} -> {value})"), 0, set()
            if delta != value - before:
                return (f"{where}: counter {name} delta {delta!r} != "
                        f"{value} - {before}"), 0, set()
            if not isinstance(rate, (int, float)) or rate < 0:
                return f"{where}: counter {name} bad rate: {rate!r}", 0, set()
            if (rate == 0) != (delta == 0) and i > 0:
                return (f"{where}: counter {name} rate {rate} inconsistent "
                        f"with delta {delta}"), 0, set()
        prev_counters = {n: c["value"] for n, c in counters.items()}

        for name, g in sorted(row.get("gauges", {}).items()):
            n = g.get("samples")
            if not isinstance(n, int) or n < 0:
                return f"{where}: gauge {name} bad samples: {n!r}", 0, set()
            if n < prev_gauge_samples.get(name, 0):
                return (f"{where}: gauge {name} sample count ran "
                        f"backwards"), 0, set()
            prev_gauge_samples[name] = n

        for name, h in sorted(row.get("histograms", {}).items()):
            count, wcount = h.get("count"), h.get("window_count")
            if not isinstance(count, int) or count < 0:
                return f"{where}: histogram {name} bad count: {count!r}", 0, set()
            before = prev_hist_counts.get(name, 0)
            if count < before:
                return (f"{where}: histogram {name} count ran backwards "
                        f"({before} -> {count})"), 0, set()
            if wcount != count - before:
                return (f"{where}: histogram {name} window_count {wcount!r} "
                        f"!= {count} - {before}"), 0, set()
            if wcount == 0 and any(k in h for k in WINDOW_QUANTILES):
                return (f"{where}: histogram {name} has window quantiles "
                        f"for an empty window (stale data)"), 0, set()
            prev_hist_counts[name] = count

    return None, len(samples), names


def main(argv):
    if len(argv) < 2:
        sys.stderr.write(__doc__)
        return 2
    path = argv[1]
    min_samples = 0
    rest = argv[2:]
    while rest:
        if rest[0] == "--min-samples" and len(rest) > 1:
            min_samples = int(rest[1])
            rest = rest[2:]
        else:
            sys.stderr.write(__doc__)
            return 2

    with open(path) as f:
        doc = json.load(f)

    if not isinstance(doc, dict):
        return fail("top level is not an object")
    if doc.get("schema") != SCHEMA:
        return fail(f'schema {doc.get("schema")!r}, expected {SCHEMA!r}')
    interval = doc.get("sample_interval_ms")
    if not isinstance(interval, (int, float)) or interval < 0:
        return fail(f"bad sample_interval_ms: {interval!r}")
    devices = doc.get("devices")
    if not isinstance(devices, list):
        return fail('missing or non-list "devices"')

    err, rows, names = check_timeline(doc.get("aggregate"), "aggregate",
                                      monotone_quarantine=True)
    if err:
        return fail(err)
    if min_samples and rows < min_samples:
        return fail(f"aggregate has {rows} samples, need >= {min_samples}")

    dev_rows = 0
    for d in devices:
        if not isinstance(d, dict) or not isinstance(d.get("device"), int):
            return fail("devices entries must be {device, timeline} objects")
        err, n, _ = check_timeline(d.get("timeline"), f'device {d["device"]}',
                                   monotone_quarantine=False)
        if err:
            return fail(err)
        dev_rows += n

    print(f"ok: aggregate {rows} samples ({len(names)} counters), "
          f"{len(devices)} device timelines ({dev_rows} rows), "
          f"interval {interval} ms")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
