#!/usr/bin/env python3
"""Validator for relogic::obs Chrome trace-event JSON (stdlib only).

Checks the invariants the tracer promises (DESIGN.md §7) so CI can gate
`relogic-cli --trace` / `bench_fleet_online --trace` output without loading
it into Perfetto:

  * top level is an object with a "traceEvents" list and "displayTimeUnit";
  * every event carries "ph", "pid", "tid"; every non-metadata event
    carries a numeric "ts" >= 0;
  * 'X' complete events carry a numeric "dur" >= 0 and a "cat"/"name";
  * 'B'/'E' pairs balance per (pid, tid) lane and never go negative
    (an 'E' with no open 'B' would render as garbage nesting);
  * 'i' instants carry a scope ("s");
  * 'C' counter samples carry an "args" object with a numeric value;
  * metadata ('M') events are process_name/thread_name with an args.name.

With --min-cats N, additionally requires at least N distinct non-metadata,
non-counter categories — the whole-request-path coverage gate.

Usage: check_trace_format.py TRACE.json [--min-cats N]
"""

import json
import sys


def fail(msg):
    print(f"FAIL: {msg}")
    return 1


def main(argv):
    if len(argv) < 2:
        sys.stderr.write(__doc__)
        return 2
    path = argv[1]
    min_cats = 0
    rest = argv[2:]
    while rest:
        if rest[0] == "--min-cats" and len(rest) > 1:
            min_cats = int(rest[1])
            rest = rest[2:]
        else:
            sys.stderr.write(__doc__)
            return 2

    with open(path) as f:
        doc = json.load(f)

    if not isinstance(doc, dict):
        return fail("top level is not an object")
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return fail('missing or non-list "traceEvents"')
    if doc.get("displayTimeUnit") not in ("ms", "ns"):
        return fail('"displayTimeUnit" must be "ms" or "ns"')

    cats = set()
    depth = {}  # (pid, tid) -> open 'B' count
    counts = {}  # phase -> count
    for i, e in enumerate(events):
        where = f"event {i}"
        if not isinstance(e, dict):
            return fail(f"{where}: not an object")
        ph = e.get("ph")
        if not isinstance(ph, str) or len(ph) != 1:
            return fail(f'{where}: bad "ph": {ph!r}')
        counts[ph] = counts.get(ph, 0) + 1
        if not isinstance(e.get("pid"), int) or not isinstance(
                e.get("tid"), int):
            return fail(f"{where}: pid/tid must be integers")
        lane = (e["pid"], e["tid"])

        if ph == "M":
            if e.get("name") not in ("process_name", "thread_name"):
                return fail(f"{where}: unexpected metadata {e.get('name')!r}")
            if not isinstance(e.get("args", {}).get("name"), str):
                return fail(f"{where}: metadata without args.name")
            continue

        ts = e.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            return fail(f"{where}: missing or negative ts: {ts!r}")

        if ph == "X":
            dur = e.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                return fail(f"{where}: 'X' with missing or negative dur")
        if ph in ("X", "B", "i", "C"):
            if not isinstance(e.get("cat"), str) or not isinstance(
                    e.get("name"), str):
                return fail(f"{where}: '{ph}' without cat/name")
            if ph != "C":
                cats.add(e["cat"])
        if ph == "B":
            depth[lane] = depth.get(lane, 0) + 1
        if ph == "E":
            depth[lane] = depth.get(lane, 0) - 1
            if depth[lane] < 0:
                return fail(f"{where}: 'E' with no open 'B' on lane {lane}")
        if ph == "i" and e.get("s") not in ("t", "p", "g"):
            return fail(f"{where}: instant without scope")
        if ph == "C":
            args = e.get("args")
            if not isinstance(args, dict) or not any(
                    isinstance(v, (int, float)) for v in args.values()):
                return fail(f"{where}: counter without numeric args")

    unbalanced = {lane: d for lane, d in depth.items() if d != 0}
    if unbalanced:
        return fail(f"unbalanced B/E nesting: {unbalanced}")
    if min_cats and len(cats) < min_cats:
        return fail(f"only {len(cats)} span categories ({sorted(cats)}), "
                    f"need >= {min_cats}")

    phases = " ".join(f"{ph}:{n}" for ph, n in sorted(counts.items()))
    print(f"ok: {len(events)} events ({phases}), "
          f"{len(cats)} categories: {sorted(cats)}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
