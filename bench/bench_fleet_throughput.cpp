// bench_fleet_throughput — sweeps the fleet runtime over device count and
// dispatch policy under the paper's transparent-relocation management
// policy, reporting modelled throughput (tasks per second of fleet time),
// wall-clock cost of the runtime itself, and the configuration-port
// transaction saving of the batcher on the same workload.
//
// Writes BENCH_fleet_throughput.json (see bench_report.hpp).
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_report.hpp"
#include "relogic/obs/trace.hpp"
#include "relogic/runtime/fleet.hpp"
#include "relogic/sched/workload.hpp"

namespace {

using namespace relogic;

struct Sweep {
  int devices;
  runtime::DispatchPolicy dispatch;
};

std::string slug(const std::string& s) {
  std::string out;
  for (char c : s) out += c == '-' ? '_' : c;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::string trace_file;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--trace" && i + 1 < argc) {
      trace_file = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--trace FILE]\n", argv[0]);
      return 2;
    }
  }
  constexpr int kTasks = 400;
  constexpr std::uint64_t kSeed = 2003;

  bench_report::Report report("fleet_throughput");

  std::printf(
      "fleet throughput sweep: %d random tasks, seed %llu, transparent "
      "relocation, 24x24 devices\n\n",
      kTasks, static_cast<unsigned long long>(kSeed));
  std::printf("%8s %14s %10s %10s %12s %12s %10s\n", "devices", "dispatch",
              "done", "rejected", "tasks/s", "wall ms", "txn saved");

  std::vector<Sweep> sweeps;
  for (int devices : {1, 2, 4, 8}) {
    for (auto dispatch :
         {runtime::DispatchPolicy::kRoundRobin,
          runtime::DispatchPolicy::kLeastLoaded,
          runtime::DispatchPolicy::kBestFit}) {
      sweeps.push_back({devices, dispatch});
    }
  }

  for (const Sweep& sweep : sweeps) {
    runtime::FleetConfig cfg;
    cfg.devices = sweep.devices;
    cfg.dispatch = sweep.dispatch;
    cfg.sched.policy = sched::ManagementPolicy::kTransparent;

    sched::RandomTaskParams params;
    params.task_count = kTasks;
    params.seed = kSeed;

    runtime::FleetManager fleet(cfg);
    fleet.submit_all(sched::random_tasks(params));

    const auto t0 = std::chrono::steady_clock::now();
    const auto result = fleet.run();
    const double wall_ms = std::chrono::duration<double, std::milli>(
                               std::chrono::steady_clock::now() - t0)
                               .count();

    const auto txn = result.aggregate.counter_value("config_transactions");
    const auto txn_unbatched =
        result.aggregate.counter_value("config_transactions_unbatched");
    const double throughput = result.throughput_tasks_per_s();

    std::printf("%8d %14s %10d %10d %12.1f %12.1f %9lld\n", sweep.devices,
                runtime::to_string(sweep.dispatch).c_str(), result.completed,
                result.rejected, throughput, wall_ms,
                static_cast<long long>(txn_unbatched - txn));

    const std::string key = "fleet" + std::to_string(sweep.devices) + "_" +
                            slug(runtime::to_string(sweep.dispatch));
    report.add(key + "_tasks_per_s", throughput, "tasks/s");
    report.add(key + "_wall", wall_ms, "ms");
    report.add(key + "_txn_saved", static_cast<double>(txn_unbatched - txn),
               "transactions");
  }

  // ---- optional trace capture ---------------------------------------------
  // One extra 4-device/least-loaded run with the deterministic tracer
  // attached. Runs after the sweep's wall-clock captures so tracing never
  // perturbs its numbers.
  if (!trace_file.empty()) {
    runtime::FleetConfig cfg;
    cfg.devices = 4;
    cfg.dispatch = runtime::DispatchPolicy::kLeastLoaded;
    cfg.sched.policy = sched::ManagementPolicy::kTransparent;

    sched::RandomTaskParams params;
    params.task_count = kTasks;
    params.seed = kSeed;

    obs::Tracer tracer;
    runtime::FleetManager fleet(cfg);
    fleet.set_tracer(&tracer);
    fleet.submit_all(sched::random_tasks(params));
    fleet.run();
    if (!tracer.write_json(trace_file)) {
      std::fprintf(stderr, "failed to write trace to %s\n",
                   trace_file.c_str());
      return 1;
    }
    std::printf("trace written to %s (open in ui.perfetto.dev)\n",
                trace_file.c_str());
  }

  if (report.write()) {
    std::printf("\nwrote %s\n", report.path().c_str());
  } else {
    std::fprintf(stderr, "failed to write %s\n", report.path().c_str());
    return 1;
  }
  return 0;
}
