// bench_microperf — google-benchmark micro-performance of the library's
// hot paths: routing-graph construction, maze routing, event-driven
// simulation throughput, and the relocation engine itself.
//
// These are tooling benchmarks (how fast is the *simulator*), not paper
// reproductions; they bound how large an experiment the repository can
// drive and catch performance regressions.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "bench_report.hpp"
#include "relogic/area/defrag.hpp"
#include "relogic/config/controller.hpp"
#include "relogic/config/kernel.hpp"
#include "relogic/config/port.hpp"
#include "relogic/netlist/benchmarks.hpp"
#include "relogic/obs/timeline.hpp"
#include "relogic/obs/trace.hpp"
#include "relogic/place/implement.hpp"
#include "relogic/reloc/engine.hpp"
#include "relogic/runtime/batcher.hpp"
#include "relogic/sched/scheduler.hpp"
#include "relogic/sched/workload.hpp"
#include "relogic/sim/harness.hpp"

namespace {

using namespace relogic;

// ---- routing skeleton / device bring-up -------------------------------------
// Three measurements bracket the skeleton-cache design (DESIGN.md §2
// addendum): Cold is the two-pass counting CSR build paid once per
// geometry; Staging is the seed's vector-of-vectors builder kept as the
// audit reference — the within-run gate in check_perf_baseline.py holds
// Cold at XCV1000 to ≤ Staging/5; FabricAcquireCached is what every device
// after the first actually pays (gated absolute: ≤ 1 ms at XCV1000).

void BM_RoutingGraphBuildCold(benchmark::State& state) {
  const auto geom = fabric::DeviceGeometry::preset(
      static_cast<fabric::DevicePreset>(state.range(0)));
  for (auto _ : state) {
    auto skel = fabric::RoutingSkeleton::build(geom);
    benchmark::DoNotOptimize(skel->edge_count());
  }
  state.SetLabel(geom.name);
}
BENCHMARK(BM_RoutingGraphBuildCold)
    ->Arg(static_cast<int>(fabric::DevicePreset::kXCV50))
    ->Arg(static_cast<int>(fabric::DevicePreset::kXCV200))
    ->Arg(static_cast<int>(fabric::DevicePreset::kXCV1000))
    ->Unit(benchmark::kMillisecond);

void BM_RoutingGraphBuildStaging(benchmark::State& state) {
  const auto geom = fabric::DeviceGeometry::preset(
      static_cast<fabric::DevicePreset>(state.range(0)));
  for (auto _ : state) {
    auto skel = fabric::RoutingSkeleton::build_reference(geom);
    benchmark::DoNotOptimize(skel->edge_count());
  }
  state.SetLabel(geom.name);
}
BENCHMARK(BM_RoutingGraphBuildStaging)
    ->Arg(static_cast<int>(fabric::DevicePreset::kXCV1000))
    ->Unit(benchmark::kMillisecond);

void BM_FabricAcquireCached(benchmark::State& state) {
  const auto geom = fabric::DeviceGeometry::preset(
      static_cast<fabric::DevicePreset>(state.range(0)));
  // Warm the process-wide skeleton cache; the loop then measures the
  // steady-state bring-up of one more device of an already-seen geometry
  // (cache lookup + occupancy/cell-state allocation, no edge work).
  fabric::Fabric warmup(geom);
  for (auto _ : state) {
    fabric::Fabric fab(geom);
    benchmark::DoNotOptimize(fab.graph().node_count());
  }
  state.SetLabel(geom.name);
}
BENCHMARK(BM_FabricAcquireCached)
    ->Arg(static_cast<int>(fabric::DevicePreset::kXCV50))
    ->Arg(static_cast<int>(fabric::DevicePreset::kXCV200))
    ->Arg(static_cast<int>(fabric::DevicePreset::kXCV1000))
    ->Arg(static_cast<int>(fabric::DevicePreset::kXCV4000))
    ->Unit(benchmark::kMicrosecond);

void BM_MazeRoute(benchmark::State& state) {
  const int span = static_cast<int>(state.range(0));
  fabric::Fabric fab(fabric::DeviceGeometry::xcv200());
  const fabric::DelayModel dm;
  place::Router router(fab, dm);
  const auto& g = fab.graph();
  int k = 0;
  for (auto _ : state) {
    state.PauseTiming();
    const auto net = fab.create_net("n" + std::to_string(k));
    const int row = 2 + (k % 20);
    fab.attach_source(net, g.out_pin({row, 2}, k % 4, false));
    state.ResumeTiming();
    router.route_sink(net,
                      g.in_pin({row, 2 + span}, k % 4, fabric::CellPort::kI0));
    state.PauseTiming();
    fab.destroy_net(net);
    state.ResumeTiming();
    ++k;
  }
}
BENCHMARK(BM_MazeRoute)->Arg(4)->Arg(16)->Arg(38)->Unit(benchmark::kMicrosecond);

void BM_SimulatorCycles(benchmark::State& state) {
  fabric::Fabric fab(fabric::DeviceGeometry::tiny(16, 16));
  const fabric::DelayModel dm;
  sim::FabricSim sim(fab, dm);
  sim.add_clock(sim::ClockSpec{});
  place::Implementer implementer(fab, dm);
  const auto nl = netlist::bench::random_fsm("perf", 24, 4, 4, 5);
  auto impl = implementer.implement(
      netlist::map_netlist(nl),
      place::ImplementOptions{ClbRect{1, 1, 6, 6}, 0, {}, {}});
  // Free-running stimulus through pads.
  Rng rng(1);
  std::int64_t cycles = 0;
  for (auto _ : state) {
    for (const auto& [sig, pad] : impl.input_pads) {
      sim.drive_pad(pad, rng.next_bool());
    }
    sim.run_cycles(10);
    cycles += 10;
  }
  state.SetItemsProcessed(cycles);
}
BENCHMARK(BM_SimulatorCycles);

void BM_GatedCellRelocation(benchmark::State& state) {
  // Wall-clock cost of one full gated-clock relocation (engine + sim),
  // not the modelled configuration time.
  for (auto _ : state) {
    state.PauseTiming();
    fabric::Fabric fab(fabric::DeviceGeometry::tiny(14, 14));
    const fabric::DelayModel dm;
    config::BoundaryScanPort port;
    config::ConfigController controller(fab, port, true);
    sim::FabricSim sim(fab, dm);
    sim.add_clock(sim::ClockSpec{});
    place::Implementer implementer(fab, dm);
    place::Router router(fab, dm);
    reloc::RelocationEngine engine(controller, router, &sim);
    const auto nl = netlist::bench::shift_register(
        2, netlist::bench::ClockingStyle::kGatedClock);
    auto impl = implementer.implement(
        netlist::map_netlist(nl),
        place::ImplementOptions{ClbRect{2, 2, 2, 2}, 0, {}, {}});
    sim::CircuitHarness harness(sim, nl, impl);
    harness.step({true, true});
    state.ResumeTiming();

    benchmark::DoNotOptimize(
        engine.relocate_cell(impl, 0, place::CellSite{ClbCoord{10, 10}, 0}));
  }
}
BENCHMARK(BM_GatedCellRelocation)->Unit(benchmark::kMillisecond);

// ---- config-plane data path -------------------------------------------------
// The hot path every relocation costing, defrag plan, health sweep and fleet
// replay funnels through: ConfigController::apply / preview and the
// transaction batcher. Swept across device scales because the old set/map
// path degraded with frame-set size (preview re-scanned the whole frame set
// per touched column).

/// An op writing one cell in every `stride`-th CLB column — many columns,
/// many frames, the shape that exposed the quadratic preview. `phase` varies
/// the content so successive applies stay effective (never dirty-skipped).
config::ConfigOp spread_op(const fabric::DeviceGeometry& geom, int stride,
                           int phase) {
  config::ConfigOp op("spread" + std::to_string(phase));
  for (int c = 0; c < geom.clb_cols; c += stride) {
    fabric::LogicCellConfig cfg;
    cfg.used = true;
    cfg.reg = fabric::RegMode::kFF;
    cfg.lut = static_cast<std::uint16_t>(0x1111u * (1 + (phase & 3)) + c);
    op.write_cell(ClbCoord{c % geom.clb_rows, c}, c % geom.cells_per_clb, cfg);
  }
  return op;
}

void BM_ConfigApply(benchmark::State& state) {
  const auto geom = fabric::DeviceGeometry::preset(
      static_cast<fabric::DevicePreset>(state.range(0)));
  fabric::Fabric fab(geom);
  config::BoundaryScanPort port;
  config::ConfigController ctl(fab, port,
                               config::WriteGranularity::kDirtyFrame);
  const config::ConfigOp ops[2] = {spread_op(geom, 2, 0), spread_op(geom, 2, 1)};
  int phase = 0;
  std::int64_t applied = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ctl.apply(ops[phase & 1]).frames_written);
    ++phase;
    ++applied;
  }
  state.SetItemsProcessed(applied);
  state.SetLabel(geom.name);
}
BENCHMARK(BM_ConfigApply)
    ->Arg(static_cast<int>(fabric::DevicePreset::kXCV50))
    ->Arg(static_cast<int>(fabric::DevicePreset::kXCV200))
    ->Arg(static_cast<int>(fabric::DevicePreset::kXCV1000))
    ->Arg(static_cast<int>(fabric::DevicePreset::kXCV4000))
    ->Unit(benchmark::kMicrosecond);

void BM_DirtyPreview(benchmark::State& state) {
  const auto geom = fabric::DeviceGeometry::preset(
      static_cast<fabric::DevicePreset>(state.range(0)));
  fabric::Fabric fab(geom);
  config::BoundaryScanPort port;
  config::ConfigController ctl(fab, port,
                               config::WriteGranularity::kDirtyFrame);
  const config::ConfigOp op = spread_op(geom, 2, 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ctl.preview(op).frames_written);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.SetLabel(geom.name);
}
BENCHMARK(BM_DirtyPreview)
    ->Arg(static_cast<int>(fabric::DevicePreset::kXCV50))
    ->Arg(static_cast<int>(fabric::DevicePreset::kXCV200))
    ->Arg(static_cast<int>(fabric::DevicePreset::kXCV1000))
    ->Arg(static_cast<int>(fabric::DevicePreset::kXCV4000))
    ->Unit(benchmark::kMicrosecond);

// ---- kernel backend sweep ---------------------------------------------------
// The BM_ConfigApply XCV1000 workload pinned to each registered kernel
// backend (DESIGN.md §9). All three produce byte-identical fabric and
// telemetry (flatpath_test sweeps that contract); what differs is time.
// Serial is the scalar reference; the perf guard's within-run gate holds
// the simd backend at >= 2x serial when the runtime CPU dispatch engaged
// a vector variant — the KernelSimdVectorized flag metric emitted in
// main() below tells the guard which case it is looking at. The three are
// registered adjacently so the ratio is taken under the same machine
// conditions, like the _off/_base observability twins.

void config_apply_kernel_run(benchmark::State& state, const char* name) {
  const config::KernelBackend* kernel = config::kernel_backend(name);
  const auto geom =
      fabric::DeviceGeometry::preset(fabric::DevicePreset::kXCV1000);
  fabric::Fabric fab(geom);
  config::BoundaryScanPort port;
  config::ConfigController ctl(fab, port,
                               config::WriteGranularity::kDirtyFrame, kernel);
  const config::ConfigOp ops[2] = {spread_op(geom, 2, 0), spread_op(geom, 2, 1)};
  int phase = 0;
  std::int64_t applied = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ctl.apply(ops[phase & 1]).frames_written);
    ++phase;
    ++applied;
  }
  state.SetItemsProcessed(applied);
  state.SetLabel(geom.name + "/" + kernel->variant());
}

void BM_ConfigApplyKernel_serial(benchmark::State& state) {
  config_apply_kernel_run(state, "serial");
}
BENCHMARK(BM_ConfigApplyKernel_serial)->Unit(benchmark::kMicrosecond);

void BM_ConfigApplyKernel_openmp(benchmark::State& state) {
  config_apply_kernel_run(state, "openmp");
}
BENCHMARK(BM_ConfigApplyKernel_openmp)->Unit(benchmark::kMicrosecond);

void BM_ConfigApplyKernel_simd(benchmark::State& state) {
  config_apply_kernel_run(state, "simd");
}
BENCHMARK(BM_ConfigApplyKernel_simd)->Unit(benchmark::kMicrosecond);

void BM_BatcherFlush(benchmark::State& state) {
  const auto geom = fabric::DeviceGeometry::preset(
      static_cast<fabric::DevicePreset>(state.range(0)));
  fabric::Fabric fab(geom);
  config::BoundaryScanPort port;
  config::ConfigController ctl(fab, port,
                               config::WriteGranularity::kDirtyFrame);
  runtime::BatchOptions bopt;
  bopt.max_ops = 8;
  runtime::TransactionBatcher batcher(ctl, bopt);
  // Eight ops per flush, each touching a different eighth of the columns.
  std::vector<config::ConfigOp> ops[2];
  for (int phase = 0; phase < 2; ++phase) {
    for (int k = 0; k < 8; ++k) {
      config::ConfigOp op("op" + std::to_string(k));
      for (int c = k; c < geom.clb_cols; c += 8) {
        fabric::LogicCellConfig cfg;
        cfg.used = true;
        cfg.lut = static_cast<std::uint16_t>(0x2222u * (1 + (phase & 1)) + c);
        op.write_cell(ClbCoord{(c + k) % geom.clb_rows, c},
                      k % geom.cells_per_clb, cfg);
      }
      ops[phase].push_back(std::move(op));
    }
  }
  int phase = 0;
  std::int64_t flushed = 0;
  for (auto _ : state) {
    for (const auto& op : ops[phase & 1]) batcher.enqueue(op);
    batcher.flush();
    ++phase;
    ++flushed;
  }
  state.SetItemsProcessed(flushed);
  state.SetLabel(geom.name);
}
BENCHMARK(BM_BatcherFlush)
    ->Arg(static_cast<int>(fabric::DevicePreset::kXCV50))
    ->Arg(static_cast<int>(fabric::DevicePreset::kXCV200))
    ->Arg(static_cast<int>(fabric::DevicePreset::kXCV1000))
    ->Arg(static_cast<int>(fabric::DevicePreset::kXCV4000))
    ->Unit(benchmark::kMicrosecond);

// ---- tracer overhead --------------------------------------------------------
// The observability contract (DESIGN.md §7): a disabled tracer costs one
// untaken branch per emission site. All three variants run the exact
// BM_ConfigApply XCV200 workload: _base never touches the tracer API,
// _off explicitly installs the null-object handle, _on attaches a live
// tracer (arg rendering + ring write). CI gates _off within 5% of _base —
// the two are registered adjacently so they run back-to-back under the
// same thermal/cache conditions, which a gate against the distant
// BM_ConfigApply_3 measurement could not guarantee.

enum class TraceMode { kBase, kOff, kOn };

void trace_overhead_run(benchmark::State& state, TraceMode mode) {
  const auto geom =
      fabric::DeviceGeometry::preset(fabric::DevicePreset::kXCV200);
  fabric::Fabric fab(geom);
  config::BoundaryScanPort port;
  config::ConfigController ctl(fab, port,
                               config::WriteGranularity::kDirtyFrame);
  obs::Tracer tracer;
  if (mode == TraceMode::kOff) ctl.set_trace(obs::TraceTrack{});
  if (mode == TraceMode::kOn)
    ctl.set_trace(tracer.track(0, 0, "bench", "config-port"));
  const config::ConfigOp ops[2] = {spread_op(geom, 2, 0),
                                   spread_op(geom, 2, 1)};
  int phase = 0;
  std::int64_t applied = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ctl.apply(ops[phase & 1]).frames_written);
    ++phase;
    ++applied;
  }
  state.SetItemsProcessed(applied);
  state.SetLabel(geom.name);
}

void BM_TraceOverhead_base(benchmark::State& state) {
  trace_overhead_run(state, TraceMode::kBase);
}
BENCHMARK(BM_TraceOverhead_base)->Unit(benchmark::kMicrosecond);

void BM_TraceOverhead_off(benchmark::State& state) {
  trace_overhead_run(state, TraceMode::kOff);
}
BENCHMARK(BM_TraceOverhead_off)->Unit(benchmark::kMicrosecond);

void BM_TraceOverhead_on(benchmark::State& state) {
  trace_overhead_run(state, TraceMode::kOn);
}
BENCHMARK(BM_TraceOverhead_on)->Unit(benchmark::kMicrosecond);

// Metrics plane overhead on the scheduler's event loop: base never mentions
// metrics, off attaches a null sampler (the per-event `if (live_)` guards),
// on samples a live registry every 1 ms of simulated time. The perf gate
// (check_perf_baseline.py) holds off within 5% of base: a disabled metrics
// plane must be free on the request path, mirroring BM_TraceOverhead.
enum class MetricsMode { kBase, kOff, kOn };

void metrics_overhead_run(benchmark::State& state, MetricsMode mode) {
  sched::RandomTaskParams params;
  params.task_count = 60;
  params.mean_interarrival_ms = 1.0;
  params.seed = 11;
  const auto tasks = sched::random_tasks(params);
  const auto geom = fabric::DeviceGeometry::xcv200();
  const config::SelectMapPort port;
  const reloc::RelocationCostModel cost(geom, port);
  sched::Scheduler sched(16, 16, cost, sched::SchedulerConfig{});
  if (mode == MetricsMode::kOff) sched.set_metrics(nullptr);
  std::int64_t completed = 0;
  for (auto _ : state) {
    // The sampler is per-run state (samples are recorded in time order and
    // every run restarts the simulated clock), so the on mode pays its
    // construction too — that cost is part of enabling the plane.
    obs::MetricsTimeline timeline;
    obs::TimelineSampler sampler(&timeline, SimTime::ms(1));
    if (mode == MetricsMode::kOn) sched.set_metrics(&sampler);
    const auto stats = sched.run_tasks(tasks);
    benchmark::DoNotOptimize(stats.makespan);
    completed += static_cast<std::int64_t>(stats.tasks.size()) - stats.rejected;
    if (mode == MetricsMode::kOn) sched.set_metrics(nullptr);
  }
  state.SetItemsProcessed(completed);
  state.SetLabel(geom.name);
}

void BM_MetricsOverhead_base(benchmark::State& state) {
  metrics_overhead_run(state, MetricsMode::kBase);
}
BENCHMARK(BM_MetricsOverhead_base)->Unit(benchmark::kMillisecond);

void BM_MetricsOverhead_off(benchmark::State& state) {
  metrics_overhead_run(state, MetricsMode::kOff);
}
BENCHMARK(BM_MetricsOverhead_off)->Unit(benchmark::kMillisecond);

void BM_MetricsOverhead_on(benchmark::State& state) {
  metrics_overhead_run(state, MetricsMode::kOn);
}
BENCHMARK(BM_MetricsOverhead_on)->Unit(benchmark::kMillisecond);

void BM_DefragPlan(benchmark::State& state) {
  // Planning cost on a fragmented 32x32 grid.
  area::AreaManager mgr(32, 32);
  Rng rng(3);
  std::vector<area::RegionId> live;
  for (int i = 0; i < 40; ++i) {
    const auto id =
        mgr.allocate("r", rng.next_int(2, 7), rng.next_int(2, 7));
    if (id != area::kNoRegion) live.push_back(id);
  }
  for (std::size_t i = 0; i < live.size(); i += 2) mgr.release(live[i]);
  for (auto _ : state) {
    benchmark::DoNotOptimize(area::plan_for_request(mgr, 12, 12));
  }
}
BENCHMARK(BM_DefragPlan)->Unit(benchmark::kMillisecond);

/// google-benchmark 1.8.0 replaced Run::error_occurred with Run::skipped;
/// these overloads pick whichever member the system library has.
template <typename R>
auto run_failed(const R& run, int)
    -> decltype(static_cast<bool>(run.error_occurred)) {
  return run.error_occurred;
}
template <typename R>
auto run_failed(const R& run, long)
    -> decltype(static_cast<bool>(run.skipped)) {
  return static_cast<bool>(run.skipped);
}

/// Console output as usual, plus every run captured into the shared
/// machine-readable report (BENCH_microperf.json).
class ReportingConsole : public benchmark::ConsoleReporter {
 public:
  explicit ReportingConsole(bench_report::Report& report) : report_(&report) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run_failed(run, 0)) continue;
      std::string name = run.benchmark_name();
      for (char& c : name) {
        if (c == '/' || c == ':') c = '_';
      }
      report_->add(name, run.GetAdjustedRealTime(),
                   benchmark::GetTimeUnitString(run.time_unit));
    }
    ConsoleReporter::ReportRuns(runs);
  }

 private:
  bench_report::Report* report_;
};

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  bench_report::Report report("microperf");
  ReportingConsole console(report);
  benchmark::RunSpecifiedBenchmarks(&console);
  benchmark::Shutdown();
  // Machine-readable record of the simd backend's runtime CPU dispatch:
  // 1 when a vector variant (avx2/neon) engaged, 0 when the portable
  // scalar fallback ran. check_perf_baseline.py keys its kernel gate on
  // this — the >= 2x-vs-serial requirement only applies on hardware where
  // a vector path exists; on scalar-fallback machines the gate instead
  // checks the fallback stays in serial's neighbourhood.
  if (const auto* simd = relogic::config::kernel_backend("simd")) {
    report.add("KernelSimdVectorized",
               simd->variant() == "scalar" ? 0.0 : 1.0, "flag");
  }
  if (!report.write()) {
    std::fprintf(stderr, "failed to write %s\n", report.path().c_str());
    return 1;
  }
  std::printf("wrote %s\n", report.path().c_str());
  return 0;
}
