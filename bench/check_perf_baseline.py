#!/usr/bin/env python3
"""Perf-regression guard for the config-plane microbenchmarks.

Compares a freshly produced BENCH_microperf.json against the committed
baseline (bench/baselines/microperf_baseline.json) and fails if any
guarded benchmark — the config-plane hot-path families BM_ConfigApply,
BM_DirtyPreview and BM_BatcherFlush — regressed by more than the allowed
factor (default 2x, per the PR 5 acceptance gate).

Only metrics present in BOTH files are compared, so adding a new benchmark
never trips the guard; removing a guarded metric from the current report
does fail (a silently dropped benchmark is indistinguishable from a
regression nobody measured).

The baseline records absolute microseconds measured on one reference
machine. To keep the gate from tripping on machine-speed differences
between that machine and CI runners, the comparison is normalized when
possible: if both reports carry the REFERENCE_METRIC (BM_RoutingGraphBuild
at XCV1000 — CPU-bound, structurally unrelated to the config-plane path,
measured in the same run), each guarded time is divided by the same run's
reference time, and the *ratio of ratios* is gated — a uniformly slower
machine cancels out, a config-plane regression does not. Without the
reference the guard falls back to raw times, where the 2x factor must also
absorb hardware variance.

If the guard fires without a plausible code cause, or after an intentional
hot-path change, refresh the baseline:

    ./build/bench_microperf --benchmark_filter='BM_ConfigApply|BM_DirtyPreview|BM_BatcherFlush|BM_RoutingGraphBuild'
    cp BENCH_microperf.json bench/baselines/microperf_baseline.json

Usage: check_perf_baseline.py <current.json> <baseline.json> [max_factor]
"""

import json
import sys

GUARDED_PREFIXES = ("BM_ConfigApply", "BM_DirtyPreview", "BM_BatcherFlush")
REFERENCE_METRIC = "BM_RoutingGraphBuild_8"


def load_metrics(path):
    with open(path) as f:
        doc = json.load(f)
    return {
        m["name"]: float(m["value"])
        for m in doc.get("metrics", [])
        if m["name"].startswith(GUARDED_PREFIXES) or m["name"] == REFERENCE_METRIC
    }


def main(argv):
    if len(argv) < 3:
        sys.stderr.write(__doc__)
        return 2
    current = load_metrics(argv[1])
    baseline = load_metrics(argv[2])
    factor = float(argv[3]) if len(argv) > 3 else 2.0

    cur_ref = current.pop(REFERENCE_METRIC, None)
    base_ref = baseline.pop(REFERENCE_METRIC, None)
    scale = 1.0
    if cur_ref and base_ref and cur_ref > 0 and base_ref > 0:
        scale = base_ref / cur_ref
        print(f"normalizing by {REFERENCE_METRIC}: current {cur_ref:.3g} vs "
              f"baseline {base_ref:.3g} (machine-speed scale {scale:.2f}x)")
    else:
        print(f"{REFERENCE_METRIC} missing from one report — comparing raw "
              "times (hardware variance eats into the factor)")

    if not baseline:
        sys.stderr.write(f"no guarded metrics in baseline {argv[2]}\n")
        return 2

    failed = False
    for name, base in sorted(baseline.items()):
        if name not in current:
            print(f"FAIL {name}: present in baseline but missing from {argv[1]}")
            failed = True
            continue
        cur = current[name] * scale
        ratio = cur / base if base > 0 else float("inf")
        verdict = "FAIL" if ratio > factor else "ok"
        print(f"{verdict:4} {name}: {cur:.3g} (normalized) vs baseline "
              f"{base:.3g} ({ratio:.2f}x, limit {factor:.1f}x)")
        failed = failed or ratio > factor
    if failed:
        print("perf-regression guard FAILED — see bench/check_perf_baseline.py "
              "for the baseline-refresh procedure")
        return 1
    print("perf-regression guard passed")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
