#!/usr/bin/env python3
"""Perf-regression guard for the config-plane microbenchmarks.

Compares a freshly produced BENCH_microperf.json against the committed
baseline (bench/baselines/microperf_baseline.json) and fails if any
guarded benchmark — the config-plane hot-path families BM_ConfigApply,
BM_DirtyPreview and BM_BatcherFlush — regressed by more than the allowed
factor (default 2x, per the PR 5 acceptance gate).

Only metrics present in BOTH files are compared, so adding a new benchmark
never trips the guard; removing a guarded metric from the current report
does fail (a silently dropped benchmark is indistinguishable from a
regression nobody measured).

The baseline records absolute times measured on one reference machine. To
keep the gate from tripping on machine-speed differences between that
machine and CI runners, the comparison is normalized when possible: if
both reports carry the REFERENCE_METRIC (BM_RoutingGraphBuildCold at
XCV1000 — CPU-bound, structurally unrelated to the config-plane path,
measured in the same run), each guarded time is divided by the same run's
reference time, and the *ratio of ratios* is gated — a uniformly slower
machine cancels out, a config-plane regression does not. Without the
reference the guard falls back to raw times, where the 2x factor must also
absorb hardware variance.

Two *within-run* gates guard the routing-skeleton bring-up contract
(PR 9):

  * BM_RoutingGraphBuildCold_8 (two-pass counting CSR build) must beat
    BM_RoutingGraphBuildStaging_8 (the seed vector-of-vectors staging
    algorithm, kept alive as RoutingSkeleton::build_reference) by
    SKELETON_SPEEDUP_MULTICORE (5x) on machines with >= 4 CPUs. The seed
    staging build is inherently serial — per-node heap allocations with
    data-dependent growth — while the counting build partitions emission
    into tile-row bands and fills disjoint CSR slices concurrently with
    byte-identical output, so most of the 5x comes from parallel fill +
    mirror-sort. On boxes where std::thread::hardware_concurrency cannot
    cover the bands (the builder itself stays serial below 4 cores, see
    build_threads in routing.cpp) only the serial wins remain — unchecked
    hoisted PIP arithmetic, no staging allocations, uninitialized-on-resize
    CSR arrays — and the gate drops to SKELETON_SPEEDUP_SERIAL (1.4x).
  * BM_FabricAcquireCached_8 — Fabric bring-up at XCV1000 against a warm
    process-wide skeleton cache — must stay under
    ACQUIRE_CACHED_LIMIT_US (an absolute 1000 us; the point of the cache
    is that bring-up no longer scales with device size, so an absolute
    wall-time bound is the honest gate, not a ratio).

On top of those, two more within-run gates guard the observability

contract: a disabled tracer and a disabled metrics
sampler must both be free. The current report must carry
BM_TraceOverhead_off (the BM_ConfigApply XCV200 workload with a null trace
handle explicitly installed) within OFF_FACTOR of BM_TraceOverhead_base
(the identical workload never touching the tracer API), and likewise
BM_MetricsOverhead_off (the scheduler event loop with a null sampler
explicitly installed) within OFF_FACTOR of BM_MetricsOverhead_base. Each
pair is registered adjacently in bench_microperf so it runs back-to-back —
same machine state, no normalization needed; gating against a
minutes-earlier measurement was too drift-prone for a 5% margin. Missing
either metric of a pair fails the guard.

One more within-run gate guards the kernel-backend layer (PR 10): the
BM_ConfigApplyKernel trio runs the identical XCV1000 apply workload once
per registered backend, registered adjacently so the ratios are taken
under the same machine state. What the gate requires depends on what the
simd backend's runtime CPU dispatch actually picked, which bench_microperf
records as the KernelSimdVectorized flag metric (1 = avx2/neon engaged,
0 = portable scalar fallback):

  * vectorized: BM_ConfigApplyKernel_serial / BM_ConfigApplyKernel_simd
    must be >= KERNEL_SPEEDUP_VECTOR (2x) — the point of the SoA columns
    is that the delta sweep is lane-parallel, and on hardware with lanes
    that must show up as wall-clock.
  * scalar fallback: the simd backend must still have run (its metric
    present — the fallback path is exercised, not skipped) and stay
    within KERNEL_SCALAR_FALLBACK_FACTOR (1.5x) of serial; the dispatch
    wrapper must cost dispatch, not a reimplementation.

Missing any of the three kernel metrics or the flag fails the guard.

If the guard fires without a plausible code cause, or after an intentional
hot-path change, refresh the baseline:

    ./build/bench_microperf --benchmark_filter='BM_ConfigApply|BM_DirtyPreview|BM_BatcherFlush|BM_TraceOverhead|BM_MetricsOverhead|BM_RoutingGraphBuild|BM_FabricAcquireCached'
    cp BENCH_microperf.json bench/baselines/microperf_baseline.json

(the BM_ConfigApply filter already covers the BM_ConfigApplyKernel trio,
and the flag metric is emitted unconditionally).

Usage: check_perf_baseline.py <current.json> <baseline.json> [max_factor]
"""

import json
import os
import sys

GUARDED_PREFIXES = (
    "BM_ConfigApply",
    "BM_DirtyPreview",
    "BM_BatcherFlush",
    "BM_TraceOverhead",
    "BM_MetricsOverhead",
)
REFERENCE_METRIC = "BM_RoutingGraphBuildCold_8"

# Routing-skeleton bring-up gates (within-run; see module docstring).
SKELETON_COLD = "BM_RoutingGraphBuildCold_8"     # ms
SKELETON_STAGING = "BM_RoutingGraphBuildStaging_8"  # ms
SKELETON_SPEEDUP_MULTICORE = 5.0  # >= 4 CPUs: parallel fill + mirror engage
SKELETON_SPEEDUP_SERIAL = 1.4     # < 4 CPUs: serial-only wins
ACQUIRE_CACHED = "BM_FabricAcquireCached_8"  # us
ACQUIRE_CACHED_LIMIT_US = 1000.0

# Disabled-observability gates: _off vs the adjacent untouched twin,
# same run. One pair per plane (tracer, metrics sampler).
OFF_GATES = (
    ("BM_TraceOverhead_off", "BM_TraceOverhead_base"),
    ("BM_MetricsOverhead_off", "BM_MetricsOverhead_base"),
)
OFF_FACTOR = 1.05

# Kernel-backend gates (within-run; see module docstring). The serial and
# simd metrics fall under GUARDED_PREFIXES already; the flag metric is a
# 0/1 dispatch record, not a time, and is dropped before the cross-run loop.
KERNEL_SERIAL = "BM_ConfigApplyKernel_serial"
KERNEL_SIMD = "BM_ConfigApplyKernel_simd"
KERNEL_VECTOR_FLAG = "KernelSimdVectorized"
KERNEL_SPEEDUP_VECTOR = 2.0        # avx2/neon engaged: simd >= 2x serial
KERNEL_SCALAR_FALLBACK_FACTOR = 1.5  # scalar fallback: near-serial, not broken


def load_metrics(path):
    keep = (SKELETON_COLD, SKELETON_STAGING, ACQUIRE_CACHED, REFERENCE_METRIC,
            KERNEL_VECTOR_FLAG)
    with open(path) as f:
        doc = json.load(f)
    return {
        m["name"]: float(m["value"])
        for m in doc.get("metrics", [])
        if m["name"].startswith(GUARDED_PREFIXES) or m["name"] in keep
    }


def check_skeleton_gates(current):
    """Within-run gates on the routing-skeleton bring-up path. Returns True
    on pass."""
    passed = True

    cold = current.get(SKELETON_COLD)
    staging = current.get(SKELETON_STAGING)
    if cold is None or staging is None or cold <= 0:
        print(f"FAIL skeleton gate: need both {SKELETON_COLD} and "
              f"{SKELETON_STAGING} in the current report")
        passed = False
    else:
        # The 5x target needs the parallel fill/mirror path, which
        # build_threads() only engages with enough cores; below that the
        # builder is serial and only the constant-factor wins apply.
        cpus = os.cpu_count() or 1
        need = (SKELETON_SPEEDUP_MULTICORE if cpus >= 4
                else SKELETON_SPEEDUP_SERIAL)
        speedup = staging / cold
        verdict = "FAIL" if speedup < need else "ok"
        print(f"{verdict:4} cold skeleton build: {cold:.3g} ms vs staging "
              f"{staging:.3g} ms same-run ({speedup:.2f}x speedup, need "
              f">= {need:.1f}x at {cpus} CPUs)")
        passed = passed and speedup >= need

    acquire = current.get(ACQUIRE_CACHED)
    if acquire is None:
        print(f"FAIL skeleton gate: {ACQUIRE_CACHED} missing from the "
              "current report")
        passed = False
    else:
        verdict = "FAIL" if acquire > ACQUIRE_CACHED_LIMIT_US else "ok"
        print(f"{verdict:4} cached Fabric bring-up: {acquire:.3g} us "
              f"(absolute limit {ACQUIRE_CACHED_LIMIT_US:.0f} us)")
        passed = passed and acquire <= ACQUIRE_CACHED_LIMIT_US

    return passed


def check_off_gates(current):
    """Within-run gates: each disabled observability plane within
    OFF_FACTOR of its identical untouched twin. Returns True on pass."""
    passed = True
    for off_name, base_name in OFF_GATES:
        off = current.get(off_name)
        base = current.get(base_name)
        if off is None or base is None or base <= 0:
            print(f"FAIL off-overhead gate: need both {off_name} and "
                  f"{base_name} in the current report")
            passed = False
            continue
        ratio = off / base
        verdict = "FAIL" if ratio > OFF_FACTOR else "ok"
        print(f"{verdict:4} {off_name}: {off:.3g} vs {base_name} "
              f"{base:.3g} same-run ({ratio:.3f}x, limit {OFF_FACTOR:.2f}x)")
        passed = passed and ratio <= OFF_FACTOR
    return passed


def check_kernel_gates(current):
    """Within-run gate on the kernel-backend trio: vectorized simd beats
    serial by KERNEL_SPEEDUP_VECTOR; the scalar fallback (no vector unit)
    must still run and stay near serial. Returns True on pass."""
    serial = current.get(KERNEL_SERIAL)
    simd = current.get(KERNEL_SIMD)
    flag = current.get(KERNEL_VECTOR_FLAG)
    if serial is None or simd is None or simd <= 0 or flag is None:
        print(f"FAIL kernel gate: need {KERNEL_SERIAL}, {KERNEL_SIMD} and "
              f"{KERNEL_VECTOR_FLAG} in the current report")
        return False
    if flag >= 1.0:
        speedup = serial / simd
        verdict = "FAIL" if speedup < KERNEL_SPEEDUP_VECTOR else "ok"
        print(f"{verdict:4} simd kernel (vectorized): {simd:.3g} us vs serial "
              f"{serial:.3g} us same-run ({speedup:.2f}x speedup, need "
              f">= {KERNEL_SPEEDUP_VECTOR:.1f}x)")
        return speedup >= KERNEL_SPEEDUP_VECTOR
    ratio = simd / serial if serial > 0 else float("inf")
    verdict = "FAIL" if ratio > KERNEL_SCALAR_FALLBACK_FACTOR else "ok"
    print(f"{verdict:4} simd kernel (scalar fallback exercised): {simd:.3g} us "
          f"vs serial {serial:.3g} us same-run ({ratio:.2f}x, limit "
          f"{KERNEL_SCALAR_FALLBACK_FACTOR:.1f}x)")
    return ratio <= KERNEL_SCALAR_FALLBACK_FACTOR


def main(argv):
    if len(argv) < 3:
        sys.stderr.write(__doc__)
        return 2
    current = load_metrics(argv[1])
    baseline = load_metrics(argv[2])
    factor = float(argv[3]) if len(argv) > 3 else 2.0

    failed_off_gates = not check_off_gates(current)
    failed_skeleton_gates = not check_skeleton_gates(current)
    failed_kernel_gates = not check_kernel_gates(current)

    # The skeleton metrics are gated within-run above, not against the
    # baseline — drop them so the cross-run loop only sees the config-plane
    # families (staging is deliberately slow; acquire is in different units).
    # KERNEL_SIMD is gated within-run only: its absolute time depends on
    # which variant the CPU dispatch picked, so comparing a scalar-fallback
    # run against a baseline recorded on a vector machine (or vice versa)
    # would fail on hardware, not code. Serial stays cross-run gated, and
    # the within-run ratio pins simd to serial.
    for name in (SKELETON_STAGING, ACQUIRE_CACHED, KERNEL_VECTOR_FLAG,
                 KERNEL_SIMD):
        current.pop(name, None)
        baseline.pop(name, None)

    cur_ref = current.pop(REFERENCE_METRIC, None)
    base_ref = baseline.pop(REFERENCE_METRIC, None)
    scale = 1.0
    if cur_ref and base_ref and cur_ref > 0 and base_ref > 0:
        scale = base_ref / cur_ref
        print(f"normalizing by {REFERENCE_METRIC}: current {cur_ref:.3g} vs "
              f"baseline {base_ref:.3g} (machine-speed scale {scale:.2f}x)")
    else:
        print(f"{REFERENCE_METRIC} missing from one report — comparing raw "
              "times (hardware variance eats into the factor)")

    if not baseline:
        sys.stderr.write(f"no guarded metrics in baseline {argv[2]}\n")
        return 2

    failed = False
    for name, base in sorted(baseline.items()):
        if name not in current:
            print(f"FAIL {name}: present in baseline but missing from {argv[1]}")
            failed = True
            continue
        cur = current[name] * scale
        ratio = cur / base if base > 0 else float("inf")
        verdict = "FAIL" if ratio > factor else "ok"
        print(f"{verdict:4} {name}: {cur:.3g} (normalized) vs baseline "
              f"{base:.3g} ({ratio:.2f}x, limit {factor:.1f}x)")
        failed = failed or ratio > factor
    failed = (failed or failed_off_gates or failed_skeleton_gates or
              failed_kernel_gates)
    if failed:
        print("perf-regression guard FAILED — see bench/check_perf_baseline.py "
              "for the baseline-refresh procedure")
        return 1
    print("perf-regression guard passed")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
