#!/usr/bin/env python3
"""Perf-regression guard for the config-plane microbenchmarks.

Compares a freshly produced BENCH_microperf.json against the committed
baseline (bench/baselines/microperf_baseline.json) and fails if any
guarded benchmark — the config-plane hot-path families BM_ConfigApply,
BM_DirtyPreview and BM_BatcherFlush — regressed by more than the allowed
factor (default 2x, per the PR 5 acceptance gate).

Only metrics present in BOTH files are compared, so adding a new benchmark
never trips the guard; removing a guarded metric from the current report
does fail (a silently dropped benchmark is indistinguishable from a
regression nobody measured).

The baseline records absolute microseconds measured on one reference
machine. To keep the gate from tripping on machine-speed differences
between that machine and CI runners, the comparison is normalized when
possible: if both reports carry the REFERENCE_METRIC (BM_RoutingGraphBuild
at XCV1000 — CPU-bound, structurally unrelated to the config-plane path,
measured in the same run), each guarded time is divided by the same run's
reference time, and the *ratio of ratios* is gated — a uniformly slower
machine cancels out, a config-plane regression does not. Without the
reference the guard falls back to raw times, where the 2x factor must also
absorb hardware variance.

On top of the cross-run baseline comparison, one *within-run* gate guards
the observability contract: a disabled tracer must be free. The current
report must carry BM_TraceOverhead_off (the BM_ConfigApply XCV200 workload
with a null trace handle explicitly installed) within TRACE_OFF_FACTOR of
BM_TraceOverhead_base (the identical workload never touching the tracer
API). The two are registered adjacently in bench_microperf so they run
back-to-back — same machine state, no normalization needed; gating against
the minutes-earlier BM_ConfigApply_3 measurement was too drift-prone for a
5% margin. Missing either metric fails the guard.

If the guard fires without a plausible code cause, or after an intentional
hot-path change, refresh the baseline:

    ./build/bench_microperf --benchmark_filter='BM_ConfigApply|BM_DirtyPreview|BM_BatcherFlush|BM_TraceOverhead|BM_RoutingGraphBuild'
    cp BENCH_microperf.json bench/baselines/microperf_baseline.json

Usage: check_perf_baseline.py <current.json> <baseline.json> [max_factor]
"""

import json
import sys

GUARDED_PREFIXES = (
    "BM_ConfigApply",
    "BM_DirtyPreview",
    "BM_BatcherFlush",
    "BM_TraceOverhead",
)
REFERENCE_METRIC = "BM_RoutingGraphBuild_8"

# Disabled-tracer gate: _off vs the adjacent untraced twin, same run.
TRACE_OFF_METRIC = "BM_TraceOverhead_off"
TRACE_BASE_METRIC = "BM_TraceOverhead_base"
TRACE_OFF_FACTOR = 1.05


def load_metrics(path):
    with open(path) as f:
        doc = json.load(f)
    return {
        m["name"]: float(m["value"])
        for m in doc.get("metrics", [])
        if m["name"].startswith(GUARDED_PREFIXES) or m["name"] == REFERENCE_METRIC
    }


def check_trace_overhead(current):
    """Within-run gate: disabled tracer within TRACE_OFF_FACTOR of the
    identical untraced workload. Returns True on pass."""
    off = current.get(TRACE_OFF_METRIC)
    base = current.get(TRACE_BASE_METRIC)
    if off is None or base is None or base <= 0:
        print(f"FAIL trace-overhead gate: need both {TRACE_OFF_METRIC} and "
              f"{TRACE_BASE_METRIC} in the current report")
        return False
    ratio = off / base
    verdict = "FAIL" if ratio > TRACE_OFF_FACTOR else "ok"
    print(f"{verdict:4} {TRACE_OFF_METRIC}: {off:.3g} vs {TRACE_BASE_METRIC} "
          f"{base:.3g} same-run ({ratio:.3f}x, limit {TRACE_OFF_FACTOR:.2f}x)")
    return ratio <= TRACE_OFF_FACTOR


def main(argv):
    if len(argv) < 3:
        sys.stderr.write(__doc__)
        return 2
    current = load_metrics(argv[1])
    baseline = load_metrics(argv[2])
    factor = float(argv[3]) if len(argv) > 3 else 2.0

    failed_trace_gate = not check_trace_overhead(current)

    cur_ref = current.pop(REFERENCE_METRIC, None)
    base_ref = baseline.pop(REFERENCE_METRIC, None)
    scale = 1.0
    if cur_ref and base_ref and cur_ref > 0 and base_ref > 0:
        scale = base_ref / cur_ref
        print(f"normalizing by {REFERENCE_METRIC}: current {cur_ref:.3g} vs "
              f"baseline {base_ref:.3g} (machine-speed scale {scale:.2f}x)")
    else:
        print(f"{REFERENCE_METRIC} missing from one report — comparing raw "
              "times (hardware variance eats into the factor)")

    if not baseline:
        sys.stderr.write(f"no guarded metrics in baseline {argv[2]}\n")
        return 2

    failed = False
    for name, base in sorted(baseline.items()):
        if name not in current:
            print(f"FAIL {name}: present in baseline but missing from {argv[1]}")
            failed = True
            continue
        cur = current[name] * scale
        ratio = cur / base if base > 0 else float("inf")
        verdict = "FAIL" if ratio > factor else "ok"
        print(f"{verdict:4} {name}: {cur:.3g} (normalized) vs baseline "
              f"{base:.3g} ({ratio:.2f}x, limit {factor:.1f}x)")
        failed = failed or ratio > factor
    failed = failed or failed_trace_gate
    if failed:
        print("perf-regression guard FAILED — see bench/check_perf_baseline.py "
              "for the baseline-refresh procedure")
        return 1
    print("perf-regression guard passed")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
