// bench_health_sweep — roving self-test under load: fault rate x workload
// x dispatch policy.
//
// Every device of the fleet runs the roving self-test sweep while serving
// its share of the workload: the window's occupants are relocated out of
// the way (transparent relocation — the paper's contribution is exactly
// that this costs only configuration-port time), the freed CLBs are
// pattern-tested, and injected stuck-bit faults become detected — masked
// out of placement and, past the quarantine threshold, evacuating whole
// devices. This sweep quantifies what the health machinery costs (makespan,
// throughput) and what it buys (faults found, capacity honestly accounted)
// as the fault rate climbs.
//
// Writes BENCH_health_sweep.json (see bench_report.hpp). Deterministic:
// two runs with the same seed produce byte-identical reports. Set
// RELOGIC_BENCH_SMOKE=1 for a reduced-size run (CI smoke mode).
#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench_report.hpp"
#include "relogic/obs/trace.hpp"
#include "relogic/runtime/fleet.hpp"
#include "relogic/sched/workload.hpp"

namespace {

using namespace relogic;

std::string slug(const std::string& s) {
  std::string out;
  for (char c : s) out += c == '-' ? '_' : c;
  return out;
}

std::string rate_key(double rate) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "f%03d", static_cast<int>(rate * 1000));
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  std::string trace_file;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--trace" && i + 1 < argc) {
      trace_file = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--trace FILE]\n", argv[0]);
      return 2;
    }
  }
  const bool smoke = std::getenv("RELOGIC_BENCH_SMOKE") != nullptr;
  const int kTasks = smoke ? 60 : 250;
  constexpr int kDevices = 4;
  constexpr std::uint64_t kSeed = 2003;

  bench_report::Report report("health_sweep");

  std::printf(
      "health sweep bench: %d tasks, %d devices (12x12), seed %llu, "
      "transparent relocation, selftest on%s\n\n",
      kTasks, kDevices, static_cast<unsigned long long>(kSeed),
      smoke ? " (smoke)" : "");
  std::printf("%6s %11s %14s %6s %6s %7s %7s %6s %12s %10s\n", "fault",
              "workload", "dispatch", "done", "rej", "faults", "masked",
              "quar", "makespan ms", "tasks/s");

  const double fault_rates[] = {0.0, 0.01, 0.03};
  const sched::ArrivalPattern patterns[] = {sched::ArrivalPattern::kPoisson,
                                            sched::ArrivalPattern::kBursty};
  const runtime::DispatchPolicy policies[] = {
      runtime::DispatchPolicy::kLeastLoaded,
      runtime::DispatchPolicy::kBestFit};

  for (const double rate : fault_rates) {
    for (const auto pattern : patterns) {
      sched::WorkloadParams wp;
      wp.pattern = pattern;
      wp.task_count = kTasks;
      wp.mean_interarrival_ms = 0.8;
      wp.seed = kSeed;
      const auto trace = sched::WorkloadGenerator(wp).generate();

      for (const auto policy : policies) {
        runtime::FleetConfig cfg;
        cfg.devices = kDevices;
        cfg.rows = cfg.cols = 12;
        cfg.dispatch = policy;
        cfg.rebalance_backlog_ms = 80.0;
        cfg.sched.policy = sched::ManagementPolicy::kTransparent;
        cfg.health.selftest = true;
        cfg.health.fault_rate = rate;
        cfg.health.fault_seed = kSeed;
        cfg.health.quarantine_threshold = 0.08;

        runtime::FleetManager fleet(cfg);
        fleet.submit_all(trace);
        const auto result = fleet.run();

        const auto masked =
            result.aggregate.counter_value("faulty_clbs");
        std::printf("%6.3f %11s %14s %6d %6d %7d %7lld %6d %12.1f %10.1f\n",
                    rate, sched::to_string(pattern).c_str(),
                    runtime::to_string(policy).c_str(), result.completed,
                    result.rejected, result.faulty_cells,
                    static_cast<long long>(masked), result.quarantined,
                    result.makespan.milliseconds(),
                    result.throughput_tasks_per_s());

        const std::string key = rate_key(rate) + "_" +
                                slug(sched::to_string(pattern)) + "_" +
                                slug(runtime::to_string(policy));
        report.add(key + "_completed", result.completed, "tasks");
        report.add(key + "_makespan", result.makespan.milliseconds(), "ms");
        report.add(key + "_tasks_per_s", result.throughput_tasks_per_s(),
                   "tasks/s");
        report.add(key + "_faulty_cells", result.faulty_cells, "cells");
        report.add(key + "_masked_clbs", static_cast<double>(masked),
                   "CLBs");
        report.add(key + "_quarantined", result.quarantined, "devices");
        report.add(key + "_tested_clbs", result.tested_clbs, "CLBs");
      }
    }
    std::printf("\n");
  }

  // ---- optional trace capture ---------------------------------------------
  // One extra poisson/least-loaded run at the middle fault rate with the
  // deterministic tracer attached — the health lane (window spans, fault
  // detections, quarantines) is exactly what this bench sweeps. Runs after
  // the sweep so tracing never perturbs its numbers.
  if (!trace_file.empty()) {
    sched::WorkloadParams wp;
    wp.pattern = sched::ArrivalPattern::kPoisson;
    wp.task_count = kTasks;
    wp.mean_interarrival_ms = 0.8;
    wp.seed = kSeed;

    runtime::FleetConfig cfg;
    cfg.devices = kDevices;
    cfg.rows = cfg.cols = 12;
    cfg.dispatch = runtime::DispatchPolicy::kLeastLoaded;
    cfg.rebalance_backlog_ms = 80.0;
    cfg.sched.policy = sched::ManagementPolicy::kTransparent;
    cfg.health.selftest = true;
    cfg.health.fault_rate = 0.01;
    cfg.health.fault_seed = kSeed;
    cfg.health.quarantine_threshold = 0.08;

    obs::Tracer tracer;
    runtime::FleetManager fleet(cfg);
    fleet.set_tracer(&tracer);
    fleet.submit_all(sched::WorkloadGenerator(wp).generate());
    fleet.run();
    if (!tracer.write_json(trace_file)) {
      std::fprintf(stderr, "failed to write trace to %s\n",
                   trace_file.c_str());
      return 1;
    }
    std::printf("trace written to %s (open in ui.perfetto.dev)\n",
                trace_file.c_str());
  }

  if (report.write()) {
    std::printf("wrote %s\n", report.path().c_str());
  } else {
    std::fprintf(stderr, "failed to write %s\n", report.path().c_str());
    return 1;
  }
  return 0;
}
