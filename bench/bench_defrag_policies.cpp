// bench_defrag_policies — reproduces the paper's Sec. 1/5 claims about
// fragmentation and on-line rearrangement:
//
//   * without rearrangement, released areas "become so small that they
//     fail to satisfy any request and ... remain unused";
//   * rearrangement by halting functions (the [5] baseline) restores
//     allocation but costs the moved applications downtime;
//   * the paper's transparent relocation restores allocation with zero
//     time overhead for running functions (only the config port works).
//
// Random on-line task sets on a small device (area pressure makes
// fragmentation bite); one row per policy, plus a load sweep.
#include <cstdio>

#include "relogic/config/port.hpp"
#include "relogic/reloc/cost.hpp"
#include "relogic/sched/scheduler.hpp"

using namespace relogic;
using namespace relogic::sched;

namespace {

void print_row(const char* label, const RunStats& s) {
  std::printf("%-24s %10.2f %10.2f %9d %8d %10.2f %8.3f %8.3f\n", label,
              s.avg_allocation_delay_ms(), s.max_allocation_delay_ms(),
              s.rejected, s.rearrangement_moves,
              s.total_halted.milliseconds(), s.utilization_avg,
              s.fragmentation_avg);
}

}  // namespace

int main() {
  const auto geom = fabric::DeviceGeometry::xcv200();
  // SelectMAP for the management experiments: rearrangement only pays when
  // the configuration port is reasonably fast relative to task lifetimes
  // (the Boundary-Scan sensitivity section below quantifies that).
  config::SelectMapPort smap;
  config::BoundaryScanPort jtag;
  const reloc::RelocationCostModel cost(geom, smap);
  const reloc::RelocationCostModel cost_jtag(geom, jtag);

  std::printf("# Sec. 1/5 — fragmentation and on-line rearrangement "
              "(24x24 CLB device, SelectMAP)\n\n");

  RandomTaskParams params;
  params.task_count = 300;
  params.mean_interarrival_ms = 140.0;
  params.min_side = 4;
  params.max_side = 10;
  params.mean_duration_ms = 2000.0;
  params.seed = 42;
  const auto tasks = random_tasks(params);
  const SimTime max_wait = SimTime::ms(4000);

  std::printf("%-24s %10s %10s %9s %8s %10s %8s %8s\n", "policy",
              "avgdel/ms", "maxdel/ms", "rejected", "moves", "halted/ms",
              "util", "frag");

  for (const ManagementPolicy policy :
       {ManagementPolicy::kNoRearrange, ManagementPolicy::kHaltAndMove,
        ManagementPolicy::kTransparent}) {
    SchedulerConfig cfg;
    cfg.policy = policy;
    cfg.max_wait = max_wait;
    Scheduler sched(24, 24, cost, cfg);
    print_row(to_string(policy).c_str(), sched.run_tasks(tasks));
  }

  // Load sweep: rejection rate vs offered load for the three policies.
  std::printf("\n## rejection rate vs offered load\n");
  std::printf("%-16s %18s %18s %18s\n", "interarrival/ms", "no-rearrange",
              "halt-and-move", "transparent");
  for (const double ia : {400.0, 300.0, 200.0, 140.0, 100.0}) {
    RandomTaskParams p = params;
    p.mean_interarrival_ms = ia;
    const auto load = random_tasks(p);
    double rates[3];
    int idx = 0;
    for (const ManagementPolicy policy :
         {ManagementPolicy::kNoRearrange, ManagementPolicy::kHaltAndMove,
          ManagementPolicy::kTransparent}) {
      SchedulerConfig cfg;
      cfg.policy = policy;
      cfg.max_wait = max_wait;
      Scheduler sched(24, 24, cost, cfg);
      const auto stats = sched.run_tasks(load);
      rates[idx++] =
          100.0 * stats.rejected / static_cast<double>(p.task_count);
    }
    std::printf("%-16.0f %17.1f%% %17.1f%% %17.1f%%\n", ia, rates[0],
                rates[1], rates[2]);
  }

  // Port sensitivity: the paper's Boundary-Scan set-up makes whole-function
  // moves expensive; rearrangement pays only with a fast port or when the
  // moved functions are small/long-lived.
  std::printf("\n## configuration-port sensitivity (transparent policy)\n");
  std::printf("%-14s %12s %10s %8s\n", "port", "avgdel/ms", "rejected",
              "moves");
  for (int which = 0; which < 2; ++which) {
    SchedulerConfig cfg;
    cfg.policy = ManagementPolicy::kTransparent;
    cfg.max_wait = max_wait;
    Scheduler sched(24, 24, which == 0 ? cost : cost_jtag, cfg);
    const auto stats = sched.run_tasks(tasks);
    std::printf("%-14s %12.2f %10d %8d\n",
                which == 0 ? "SelectMAP" : "BoundaryScan",
                stats.avg_allocation_delay_ms(), stats.rejected,
                stats.rearrangement_moves);
  }

  // Defrag trigger ablation (DESIGN.md §6.3): on-demand (move only when a
  // request fails) vs proactive (compact with idle port time whenever
  // fragmentation crosses a threshold).
  std::printf("\n## defragmentation trigger ablation (transparent policy)\n");
  std::printf("%-22s %12s %10s %8s %8s\n", "trigger", "avgdel/ms",
              "rejected", "moves", "frag");
  for (const double thresh : {0.0, 0.7, 0.5, 0.3}) {
    SchedulerConfig cfg;
    cfg.policy = ManagementPolicy::kTransparent;
    cfg.max_wait = max_wait;
    cfg.proactive_frag_threshold = thresh;
    Scheduler sched(24, 24, cost, cfg);
    const auto stats = sched.run_tasks(tasks);
    char label[64];
    if (thresh <= 0) {
      std::snprintf(label, sizeof label, "on-demand");
    } else {
      std::snprintf(label, sizeof label, "proactive > %.1f", thresh);
    }
    std::printf("%-22s %12.2f %10d %8d %8.3f\n", label,
                stats.avg_allocation_delay_ms(), stats.rejected,
                stats.rearrangement_moves, stats.fragmentation_avg);
  }

  // Rearrangement effort ablation (DESIGN.md §6.3).
  std::printf("\n## rearrangement effort ablation (max moves per request)\n");
  std::printf("%-12s %12s %10s %10s\n", "max_moves", "avgdel/ms", "rejected",
              "moves");
  for (const int mm : {0, 1, 2, 4, 8, 16}) {
    SchedulerConfig cfg;
    cfg.policy = mm == 0 ? ManagementPolicy::kNoRearrange
                         : ManagementPolicy::kTransparent;
    cfg.defrag.max_moves = mm;
    cfg.max_wait = max_wait;
    Scheduler sched(24, 24, cost, cfg);
    const auto stats = sched.run_tasks(tasks);
    std::printf("%-12d %12.2f %10d %10d\n", mm,
                stats.avg_allocation_delay_ms(), stats.rejected,
                stats.rearrangement_moves);
  }
  return 0;
}
