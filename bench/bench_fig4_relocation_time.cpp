// bench_fig4_relocation_time — reproduces the paper's headline
// measurement: "The average relocation time of each CLB implementing
// synchronous gated-clock circuits is about 22,6 ms, when the Boundary
// Scan infrastructure is used to perform the reconfiguration, at a test
// clock frequency of 20 MHz."
//
// Method (matching Sec. 2): implement ITC'99-class circuits on an XCV200
// model, run them under random stimuli, and relocate their cells one by
// one with the Fig. 4 gated-clock procedure, measuring configuration-port
// time per relocated cell. The same run verifies the qualitative claim:
// no loss of state information, no output glitches.
//
// SelectMAP numbers are printed for contrast, and the analytical cost
// model (used by the scheduler) is validated against the measured values.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench_report.hpp"
#include "relogic/config/controller.hpp"
#include "relogic/config/port.hpp"
#include "relogic/netlist/benchmarks.hpp"
#include "relogic/place/implement.hpp"
#include "relogic/reloc/cost.hpp"
#include "relogic/reloc/engine.hpp"
#include "relogic/sim/harness.hpp"

using namespace relogic;
using netlist::bench::ClockingStyle;

namespace {

struct Result {
  std::string name;
  int ffs = 0;
  int cells_moved = 0;
  int frames = 0;
  int columns = 0;  ///< per-column port transactions (controller totals)
  int skipped = 0;  ///< dirty-skipped frames (controller totals)
  double total_ms = 0;
  bool clean = true;
  double per_cell_ms() const { return total_ms / cells_moved; }
};

Result run_circuit(
    const netlist::bench::SuiteEntry& entry, const config::ConfigPort& port,
    int max_cells,
    config::WriteGranularity gran = config::WriteGranularity::kColumn) {
  fabric::Fabric fab(fabric::DeviceGeometry::xcv200());
  const fabric::DelayModel dm;
  config::ConfigController controller(fab, port, gran);
  sim::FabricSim sim(fab, dm);
  sim.add_clock(sim::ClockSpec{});
  place::Implementer implementer(fab, dm);
  place::Router router(fab, dm);
  reloc::RelocationEngine engine(controller, router, &sim);

  const auto mapped = netlist::map_netlist(entry.circuit);
  place::ImplementOptions opts;
  opts.region = place::suggest_region(mapped, ClbCoord{2, 2}, fab.geometry());
  auto impl = implementer.implement(mapped, opts);

  sim::CircuitHarness harness(sim, entry.circuit, impl);
  harness.watch_registered_outputs();
  Rng rng(0xF16'4 + static_cast<unsigned>(impl.cell_count()));
  bool ok = true;
  for (int i = 0; i < 8 && ok; ++i) ok = harness.step_random(rng).ok();

  Result r;
  r.name = entry.name;
  r.ffs = entry.circuit.ff_count();
  const int n = std::min(max_cells, impl.cell_count());
  for (int i = 0; i < n; ++i) {
    const place::CellSite dest{
        ClbCoord{impl.region.row + 14, impl.region.col + 18 + (i / 4)},
        i % 4};
    const auto rep = engine.relocate_cell(impl, i, dest);
    r.total_ms += rep.config_time.milliseconds();
    r.frames += rep.frames_written;
    ++r.cells_moved;
  }
  // Only the relocation ops above went through this controller, so its
  // totals are exactly the workload's measured telemetry.
  r.columns = controller.totals().columns_touched;
  r.skipped = controller.totals().frames_skipped;
  for (int i = 0; i < 10 && ok; ++i) ok = harness.step_random(rng).ok();
  r.clean = ok && sim.monitor().clean();
  if (!r.clean) {
    for (const auto& line : harness.mismatch_log())
      std::fprintf(stderr, "  [%s] %s\n", entry.name.c_str(), line.c_str());
    for (const auto& v : sim.monitor().violations())
      std::fprintf(stderr, "  [%s] %s: %s\n", entry.name.c_str(),
                   to_string(v.kind).c_str(), v.description.c_str());
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  // --quick bounds per-circuit sampling for CI-style runs;
  // RELOGIC_BENCH_SMOKE=1 additionally trims the circuit suite (CI smoke).
  const bool smoke = std::getenv("RELOGIC_BENCH_SMOKE") != nullptr;
  int max_cells = smoke ? 2 : 10;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--full") max_cells = 1 << 20;
  }

  auto suite = netlist::bench::itc99_suite(ClockingStyle::kGatedClock);
  if (smoke && suite.size() > 3) suite.resize(3);
  config::BoundaryScanPort jtag;  // 20 MHz TCK — the paper's configuration
  config::SelectMapPort smap;

  std::printf("# Fig. 3/4 — dynamic relocation of gated-clock CLB cells\n");
  std::printf("# device XCV200, Boundary Scan @ 20 MHz (paper set-up)\n\n");
  std::printf("%-6s %5s %7s %14s %16s  %s\n", "ckt", "FFs", "moved",
              "total/ms", "per-cell/ms", "verdict");

  double sum_ms = 0;
  int sum_cells = 0;
  bool all_clean = true;
  for (const auto& entry : suite) {
    const Result r = run_circuit(entry, jtag, max_cells);
    std::printf("%-6s %5d %7d %14.2f %16.2f  %s\n", r.name.c_str(), r.ffs,
                r.cells_moved, r.total_ms, r.per_cell_ms(),
                r.clean ? "no state loss, no glitches" : "FAILED");
    sum_ms += r.total_ms;
    sum_cells += r.cells_moved;
    all_clean = all_clean && r.clean;
  }
  const double avg = sum_ms / sum_cells;
  std::printf("\naverage per relocated gated-clock cell: %.1f ms "
              "(paper: ~22.6 ms)\n",
              avg);

  bench_report::Report json("fig4_relocation_time");
  json.add("per_cell_boundary_scan", avg, "ms");

  // SelectMAP contrast: the same procedure through the parallel port.
  {
    const Result r = run_circuit(suite[0], smap, std::min(max_cells, 5));
    std::printf("SelectMAP contrast (%s): %.2f ms per cell — the port, not "
                "the procedure, dominates\n",
                r.name.c_str(), r.per_cell_ms());
    json.add("per_cell_selectmap", r.per_cell_ms(), "ms");
  }

  // Write-granularity sweep (DESIGN.md §6.1): the same Fig. 4 relocation
  // workload under column / frame / dirty-frame writes, on each backend.
  // The column regime rewrites every already-identical byte of each
  // touched column, so frame-accurate writes cut the frames written
  // drastically — the biggest speed lever left in the hot path. The
  // relocation op stream itself has no redundant writes, so dirty equals
  // frame here; dirty's skips appear on redundant streams (self-test
  // clears, repeated re-configuration, batcher-merged cancellations).
  Result jtag_frame_run, jtag_dirty_run;  // kept for the calibration pass
  {
    std::printf("\n# write-granularity sweep (%s, %d cells)\n",
                suite[0].name.c_str(), std::min(max_cells, 5));
    int column_frames = 0, dirty_frames = 0;
    for (const auto gran : {config::WriteGranularity::kColumn,
                            config::WriteGranularity::kFrame,
                            config::WriteGranularity::kDirtyFrame}) {
      for (const auto backend :
           {config::PortBackend::kJtag, config::PortBackend::kSelectMap8,
            config::PortBackend::kIcap32}) {
        const auto port = config::make_port(backend);
        const Result r =
            run_circuit(suite[0], *port, std::min(max_cells, 5), gran);
        std::printf("  %-6s x %-10s: %6d frames, %8.3f ms/cell, %s\n",
                    config::to_string(gran).c_str(),
                    config::to_string(backend).c_str(), r.frames,
                    r.per_cell_ms(), r.clean ? "clean" : "FAILED");
        all_clean = all_clean && r.clean;
        // Keyed by backend token, matching bench_frame_cost's scheme.
        json.add("per_cell_" + config::to_string(backend) + "_" +
                     config::to_string(gran),
                 r.per_cell_ms(), "ms");
        if (backend == config::PortBackend::kJtag) {
          if (gran == config::WriteGranularity::kColumn)
            column_frames = r.frames;
          if (gran == config::WriteGranularity::kFrame) jtag_frame_run = r;
          if (gran == config::WriteGranularity::kDirtyFrame) {
            dirty_frames = r.frames;
            jtag_dirty_run = r;
          }
        }
      }
    }
    const double reduction =
        100.0 * (column_frames - dirty_frames) / std::max(1, column_frames);
    std::printf("  frame-accurate (dirty) writes: %d frames vs %d "
                "column-regime (%.1f%% fewer)\n",
                dirty_frames, column_frames, reduction);
    json.add("frames_dirty_vs_column_reduction_pct", reduction, "%");
    // Acceptance gate (ISSUE 4): dirty must cut frames vs column by >= 30%
    // on this workload — fail the bench (and CI's bench smoke) otherwise.
    if (reduction < 30.0) {
      std::fprintf(stderr,
                   "FAIL: dirty-frame reduction %.1f%% below the 30%% "
                   "acceptance threshold\n",
                   reduction);
      all_clean = false;
    }
  }

  // Frame-regime knob calibration (ROADMAP: "re-fit both from the engine's
  // telemetry"). RelocationCostModel's frame-regime parameters —
  // frame_granular_frames_per_txn and dirty_write_fraction — were modelled,
  // not measured. Fit both per workload class from telemetry the engine
  // just produced:
  //  * "reloc": the Fig. 4 relocation stream above (controller totals of
  //    the kFrame / kDirtyFrame JTAG runs);
  //  * "refresh": a periodic re-configuration stream (every op re-applied
  //    verbatim, the redundancy self-test clears and batcher-merged
  //    sequences exhibit), measured through a fresh controller pair.
  {
    const reloc::CostParams defaults;
    const auto fit = [&](const char* cls, int frame_frames, int frame_cols,
                         int dirty_frames) {
      const double ftxn =
          frame_cols > 0 ? static_cast<double>(frame_frames) / frame_cols
                         : static_cast<double>(defaults.frame_granular_frames_per_txn);
      const double frac =
          frame_frames > 0 ? static_cast<double>(dirty_frames) / frame_frames
                           : defaults.dirty_write_fraction;
      std::printf(
          "  %-8s frames/txn fitted %5.1f (default %d), dirty fraction "
          "fitted %.2f (default %.1f)\n",
          cls, ftxn, defaults.frame_granular_frames_per_txn, frac,
          defaults.dirty_write_fraction);
      json.add(std::string("fitted_frames_per_txn_") + cls, ftxn, "frames");
      json.add(std::string("fitted_dirty_write_fraction_") + cls, frac, "");
    };

    std::printf("\n# frame-regime knob calibration (measured telemetry)\n");
    fit("reloc", jtag_frame_run.frames, jtag_frame_run.columns,
        jtag_dirty_run.frames);

    // Periodic-refresh stream: two identical passes over a block of cells.
    int refresh_frames[2] = {0, 0};
    int refresh_cols = 0;
    int g = 0;
    for (const auto gran : {config::WriteGranularity::kFrame,
                            config::WriteGranularity::kDirtyFrame}) {
      fabric::Fabric fab(fabric::DeviceGeometry::tiny(12, 12));
      config::ConfigController ctl(fab, jtag, gran);
      for (int round = 0; round < 2; ++round) {
        for (int c = 0; c < 8; ++c) {
          config::ConfigOp op("refresh col " + std::to_string(c));
          for (int r = 0; r < 4; ++r) {
            fabric::LogicCellConfig cfg;
            cfg.used = true;
            cfg.lut = static_cast<std::uint16_t>(0x5A5A + c);
            op.write_cell(ClbCoord{r, c}, r % 4, cfg);
          }
          ctl.apply(op);
        }
      }
      refresh_frames[g] = ctl.totals().frames_written;
      if (gran == config::WriteGranularity::kFrame)
        refresh_cols = ctl.totals().columns_touched;
      ++g;
    }
    fit("refresh", refresh_frames[0], refresh_cols, refresh_frames[1]);
  }

  // Cost-model validation (the scheduler prices moves with this model).
  {
    const auto geom = fabric::DeviceGeometry::xcv200();
    const reloc::RelocationCostModel model(geom, jtag);
    const double modelled =
        model.cell_time(fabric::RegMode::kFF, /*gated=*/true).milliseconds();
    std::printf("analytical cost model: %.1f ms per gated cell "
                "(measured %.1f ms, error %+.0f%%)\n",
                modelled, avg, 100.0 * (modelled - avg) / avg);
    json.add("cost_model_error_pct", 100.0 * (modelled - avg) / avg, "%");
  }
  json.write();
  return all_clean ? 0 : 1;
}
