// bench_frame_cost — reproduces the paper's Sec. 2/3 cost observations:
//
//   * "This cost depends on the number of reconfiguration frames needed to
//     relocate each CLB" — frames vs relocation distance;
//   * "the relocation of the CLBs should be performed to nearby CLBs" —
//     path delay growth vs distance;
//   * write granularity (DESIGN.md §6.1): column-granular (JBits-era, what
//     the paper measured) vs frame-granular vs dirty-frame-diffed writes,
//     swept across the three port backends (JTAG / SelectMAP-8 / ICAP-32);
//   * staged whole-function relocation vs direct long-distance moves.
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench_report.hpp"
#include "relogic/config/controller.hpp"
#include "relogic/config/port.hpp"
#include "relogic/netlist/benchmarks.hpp"
#include "relogic/place/implement.hpp"
#include "relogic/reloc/engine.hpp"
#include "relogic/sim/harness.hpp"

using namespace relogic;

namespace {

struct Sample {
  int frames = 0;
  int frames_skipped = 0;
  double ms = 0;
  double delay_ns = 0;
};

Sample relocate_at_distance(int distance, config::WriteGranularity gran,
                            config::PortBackend backend) {
  fabric::Fabric fab(fabric::DeviceGeometry::xcv200());
  const fabric::DelayModel dm;
  const auto port = config::make_port(backend);
  config::ConfigController controller(fab, *port, gran);
  sim::FabricSim sim(fab, dm);
  sim.add_clock(sim::ClockSpec{});
  place::Implementer implementer(fab, dm);
  place::Router router(fab, dm);
  reloc::RelocationEngine engine(controller, router, &sim);

  const auto nl =
      netlist::bench::counter(4, netlist::bench::ClockingStyle::kFreeRunning);
  const auto mapped = netlist::map_netlist(nl);
  place::ImplementOptions opts;
  opts.region = place::suggest_region(mapped, ClbCoord{4, 4}, fab.geometry());
  auto impl = implementer.implement(mapped, opts);

  sim::CircuitHarness harness(sim, nl, impl);
  for (int i = 0; i < 5; ++i) harness.step({});

  const auto totals_before = controller.totals();
  // Destination `distance` columns beyond the implementation region.
  const auto report = engine.relocate_cell(
      impl, 0,
      place::CellSite{ClbCoord{4, impl.region.col_end() + distance - 1}, 3});

  for (int i = 0; i < 5; ++i) harness.step({});
  RELOGIC_CHECK(harness.total_mismatches() == 0);

  // Worst sink delay of the relocated cell's output nets after the move.
  double worst = 0;
  for (const auto& [sig, net] : impl.signal_nets) {
    if (!fab.net_exists(net) || fab.net(net).sources.empty()) continue;
    for (const auto& sd : fab.sink_delays(net, dm)) {
      worst = std::max(worst, sd.max.nanoseconds());
    }
  }
  return Sample{report.frames_written,
                controller.totals().frames_skipped - totals_before.frames_skipped,
                report.config_time.milliseconds(), worst};
}

}  // namespace

int main() {
  using config::PortBackend;
  using config::WriteGranularity;

  std::printf("# Sec. 2/3 — reconfiguration cost vs relocation distance\n\n");
  std::printf("%-10s | %8s %8s %10s | %8s %8s | %8s %8s %8s\n", "", "column",
              "", "", "frame", "", "dirty", "", "");
  std::printf("%-10s | %8s %8s %10s | %8s %8s | %8s %8s %8s\n", "distance",
              "frames", "time/ms", "delay/ns", "frames", "time/ms", "frames",
              "skipped", "time/ms");
  // RELOGIC_BENCH_SMOKE=1: fewer distances, same shape (CI smoke mode).
  const bool smoke = std::getenv("RELOGIC_BENCH_SMOKE") != nullptr;
  const std::vector<int> distances =
      smoke ? std::vector<int>{1, 8, 24}
            : std::vector<int>{1, 2, 4, 8, 16, 24, 32};
  bench_report::Report json("frame_cost");
  for (const int d : distances) {
    const Sample cg =
        relocate_at_distance(d, WriteGranularity::kColumn, PortBackend::kJtag);
    const Sample fg =
        relocate_at_distance(d, WriteGranularity::kFrame, PortBackend::kJtag);
    const Sample dg = relocate_at_distance(d, WriteGranularity::kDirtyFrame,
                                           PortBackend::kJtag);
    std::printf("%-10d | %8d %8.2f %10.3f | %8d %8.3f | %8d %8d %8.3f\n", d,
                cg.frames, cg.ms, cg.delay_ns, fg.frames, fg.ms, dg.frames,
                dg.frames_skipped, dg.ms);
    json.add("d" + std::to_string(d) + "_col_granular", cg.ms, "ms");
    json.add("d" + std::to_string(d) + "_frame_granular", fg.ms, "ms");
    json.add("d" + std::to_string(d) + "_dirty_frame", dg.ms, "ms");
  }
  std::printf("\n# shape: frames are dominated by the fixed op structure "
              "(column writes),\n# while the worst path delay grows with "
              "distance — the reason the paper\n# relocates to NEARBY CLBs "
              "and moves whole functions in stages.\n");

  // Granularity x port-backend sweep at a fixed distance: the same
  // relocation priced on every configuration plane the fleet supports.
  std::printf("\n## granularity x port backend (single relocation, d=8)\n");
  std::printf("%-12s | %10s %10s | %10s %10s | %10s %10s\n", "", "column", "",
              "frame", "", "dirty", "");
  std::printf("%-12s | %10s %10s | %10s %10s | %10s %10s\n", "port", "frames",
              "time/ms", "frames", "time/ms", "frames", "time/ms");
  int jtag_column_frames = 0, jtag_dirty_frames = 0;
  for (const PortBackend backend :
       {PortBackend::kJtag, PortBackend::kSelectMap8, PortBackend::kIcap32}) {
    Sample s[3];
    int gi = 0;
    for (const WriteGranularity gran :
         {WriteGranularity::kColumn, WriteGranularity::kFrame,
          WriteGranularity::kDirtyFrame}) {
      s[gi] = relocate_at_distance(8, gran, backend);
      json.add("d8_" + config::to_string(backend) + "_" +
                   config::to_string(gran),
               s[gi].ms, "ms");
      ++gi;
    }
    std::printf("%-12s | %10d %10.3f | %10d %10.4f | %10d %10.4f\n",
                config::to_string(backend).c_str(), s[0].frames, s[0].ms,
                s[1].frames, s[1].ms, s[2].frames, s[2].ms);
    if (backend == PortBackend::kJtag) {
      jtag_column_frames = s[0].frames;
      jtag_dirty_frames = s[2].frames;
    }
  }
  {
    // The dirty-diff win, in frames, on the single-relocation workload
    // (samples reused from the sweep above).
    const double reduction = 100.0 * (jtag_column_frames - jtag_dirty_frames) /
                             std::max(1, jtag_column_frames);
    std::printf("\n# frame-accurate (dirty) writes: %d frames where the "
                "column regime wrote %d (%.1f%% fewer)\n",
                jtag_dirty_frames, jtag_column_frames, reduction);
    json.add("dirty_vs_column_frames_reduction_pct", reduction, "%");
  }

  // Staged function relocation: move a counter 18 columns in one hop vs
  // three 6-column stages; compare transient worst delay.
  std::printf("\n## staged vs direct whole-function relocation\n");
  for (const bool staged : {false, true}) {
    fabric::Fabric fab(fabric::DeviceGeometry::xcv200());
    const fabric::DelayModel dm;
    config::BoundaryScanPort jtag;
    config::ConfigController controller(fab, jtag);
    sim::FabricSim sim(fab, dm);
    sim.add_clock(sim::ClockSpec{});
    place::Implementer implementer(fab, dm);
    place::Router router(fab, dm);
    reloc::RelocationEngine engine(controller, router, &sim);

    const auto nl = netlist::bench::counter(
        smoke ? 3 : 6, netlist::bench::ClockingStyle::kFreeRunning);
    const auto mapped = netlist::map_netlist(nl);
    place::ImplementOptions opts;
    opts.region =
        place::suggest_region(mapped, ClbCoord{10, 2}, fab.geometry());
    auto impl = implementer.implement(mapped, opts);
    sim::CircuitHarness harness(sim, nl, impl);
    for (int i = 0; i < 5; ++i) harness.step({});

    SimTime config = SimTime::zero();
    int frames = 0;
    const std::vector<int> stage_cols =
        smoke ? std::vector<int>{6, 9, 12} : std::vector<int>{8, 14, 20};
    if (staged) {
      for (const int col : stage_cols) {
        ClbRect dest = impl.region;
        dest.col = col;
        const auto r = engine.relocate_function(impl, dest);
        config += r.config_time;
        frames += r.frames_written;
      }
    } else {
      ClbRect dest = impl.region;
      dest.col = stage_cols.back();
      const auto r = engine.relocate_function(impl, dest);
      config += r.config_time;
      frames += r.frames_written;
    }
    for (int i = 0; i < 5; ++i) harness.step({});

    std::printf("  %-7s: %6d frames, %8.2f ms config, lockstep %s\n",
                staged ? "staged" : "direct", frames, config.milliseconds(),
                harness.total_mismatches() == 0 ? "clean" : "FAILED");
    json.add(staged ? "function_staged" : "function_direct",
             config.milliseconds(), "ms");
  }
  json.write();
  return 0;
}
