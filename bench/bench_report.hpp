// Shared machine-readable bench output: every bench writes a
// BENCH_<name>.json next to its working directory so the performance
// trajectory can be tracked across PRs (and diffed in CI) without parsing
// human-oriented stdout.
//
// Format:
//   {
//     "bench": "<name>",
//     "metrics": [
//       {"name": "...", "value": 12.5, "unit": "ms"},
//       ...
//     ]
//   }
#pragma once

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

namespace bench_report {

class Report {
 public:
  explicit Report(std::string name) : name_(std::move(name)) {}

  void add(const std::string& metric, double value, const std::string& unit) {
    metrics_.push_back({metric, value, unit});
  }

  std::string path() const { return "BENCH_" + name_ + ".json"; }

  /// Writes BENCH_<name>.json; returns true on success.
  bool write() const {
    std::FILE* f = std::fopen(path().c_str(), "w");
    if (!f) return false;
    std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"metrics\": [", name_.c_str());
    for (std::size_t i = 0; i < metrics_.size(); ++i) {
      const Metric& m = metrics_[i];
      std::fprintf(f, "%s\n    {\"name\": \"%s\", \"value\": %.6g, \"unit\": \"%s\"}",
                   i ? "," : "", m.name.c_str(),
                   std::isfinite(m.value) ? m.value : 0.0, m.unit.c_str());
    }
    std::fprintf(f, "%s]\n}\n", metrics_.empty() ? "" : "\n  ");
    std::fclose(f);
    return true;
  }

 private:
  struct Metric {
    std::string name;
    double value;
    std::string unit;
  };

  std::string name_;
  std::vector<Metric> metrics_;
};

}  // namespace bench_report
