// bench_fig1_scheduling — reproduces Fig. 1: temporal scheduling of three
// applications sharing the reconfigurable logic space, with functions
// configured in advance (the rt interval), plus the paper's observation
// that raising the degree of parallelism retards incoming reconfigurations.
//
// Series printed:
//   (a) the Fig. 1 timeline (per-function ready/config/run/end times),
//   (b) reconfiguration-in-advance ablation: prefetch on vs off,
//   (c) allocation delay vs degree of parallelism.
#include <cstdio>

#include "relogic/config/port.hpp"
#include "relogic/reloc/cost.hpp"
#include "relogic/sched/scheduler.hpp"

using namespace relogic;
using namespace relogic::sched;

int main() {
  const auto geom = fabric::DeviceGeometry::xcv200();
  config::BoundaryScanPort jtag;
  const reloc::RelocationCostModel cost(geom, jtag);
  const auto apps = fig1_applications(/*scale_clbs=*/8);

  std::printf("# Fig. 1 — temporal scheduling of applications (device %s, "
              "Boundary Scan)\n",
              geom.name.c_str());

  // (a) timeline with reconfiguration-in-advance.
  {
    SchedulerConfig cfg;
    cfg.policy = ManagementPolicy::kTransparent;
    cfg.prefetch = true;
    Scheduler sched(geom.clb_rows, geom.clb_cols, cost, cfg);
    const RunStats stats = sched.run_apps(apps, 1);
    std::printf("\n## timeline (prefetch on)\n");
    std::printf("%-4s %6s %10s %12s %10s %10s\n", "fn", "clbs", "ready/ms",
                "cfgstart/ms", "start/ms", "end/ms");
    for (const auto& t : stats.tasks) {
      std::printf("%-4s %6d %10.2f %12.2f %10.2f %10.2f\n", t.name.c_str(),
                  t.clbs, t.ready.milliseconds(),
                  t.config_start.milliseconds(), t.run_start.milliseconds(),
                  t.finish.milliseconds());
    }
    std::printf("makespan %.2f ms, utilisation %.1f%%\n",
                stats.makespan.milliseconds(), stats.utilization_avg * 100);
  }

  // (b) the rt interval at work: prefetch on/off. With the serial
  // Boundary-Scan port every configuration serialises anyway, so the
  // ablation uses SelectMAP, where configuring the next function during
  // its predecessor's execution genuinely hides the latency.
  config::SelectMapPort smap;
  const reloc::RelocationCostModel fast_cost(geom, smap);
  std::printf("\n## reconfiguration-in-advance ablation "
              "(SelectMAP, overlap 2 = the rt interval of Fig. 1)\n");
  std::printf("%-10s %14s %16s %14s\n", "prefetch", "makespan/ms",
              "avg delay/ms", "max delay/ms");
  for (const bool prefetch : {true, false}) {
    SchedulerConfig cfg;
    cfg.policy = ManagementPolicy::kTransparent;
    cfg.prefetch = prefetch;
    Scheduler sched(geom.clb_rows, geom.clb_cols, fast_cost, cfg);
    const RunStats stats = sched.run_apps(apps, 2);
    std::printf("%-10s %14.2f %16.2f %14.2f\n", prefetch ? "on" : "off",
                stats.makespan.milliseconds(),
                stats.avg_allocation_delay_ms(),
                stats.max_allocation_delay_ms());
  }

  // (c) parallelism sweep: "an increase in the degree of parallelism may
  // retard the reconfiguration of incoming functions, due to lack of
  // space" — run on a deliberately small device so area pressure shows.
  std::printf("\n## allocation delay vs degree of parallelism "
              "(16x24 CLB device)\n");
  std::printf("%-12s %14s %16s %14s %12s\n", "parallelism", "makespan/ms",
              "avg delay/ms", "max delay/ms", "rejected");
  for (int overlap = 1; overlap <= 4; ++overlap) {
    SchedulerConfig cfg;
    cfg.policy = ManagementPolicy::kTransparent;
    Scheduler sched(16, 24, cost, cfg);
    const RunStats stats = sched.run_apps(apps, overlap);
    std::printf("%-12d %14.2f %16.2f %14.2f %12d\n", overlap,
                stats.makespan.milliseconds(),
                stats.avg_allocation_delay_ms(),
                stats.max_allocation_delay_ms(), stats.rejected);
  }
  return 0;
}
