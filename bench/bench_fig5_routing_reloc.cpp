// bench_fig5_routing_reloc — reproduces Fig. 5: relocation of routing
// resources by duplicate-then-disconnect.
//
// For a live connection between two CLBs, the engine establishes a replica
// path (sharing only the endpoints), lets both run in parallel, then
// removes the original. The bench sweeps the source-destination distance
// and prints frames written, port time, and the delay before/during/after
// — verifying make-before-break and that the connection's function is
// never disturbed (the signal keeps toggling throughout).
#include <cstdio>

#include "relogic/config/controller.hpp"
#include "relogic/config/port.hpp"
#include "relogic/netlist/benchmarks.hpp"
#include "relogic/place/implement.hpp"
#include "relogic/reloc/engine.hpp"
#include "relogic/sim/harness.hpp"

using namespace relogic;

int main() {
  std::printf("# Fig. 5 — relocation of routing resources "
              "(duplicate, parallel, disconnect)\n");
  std::printf("%-14s %10s %10s %12s %14s %14s  %s\n", "distance/CLBs",
              "ops", "frames", "port/ms", "before/ns", "after/ns",
              "lockstep");

  for (int distance = 2; distance <= 10; distance += 2) {
    // A fresh device per distance point isolates occupancy state; only the
    // first iteration builds the routing skeleton, the rest share it via
    // the process-wide cache (acquire_routing_skeleton).
    fabric::Fabric fab(fabric::DeviceGeometry::tiny(16, 16));
    const fabric::DelayModel dm;
    config::BoundaryScanPort jtag;
    config::ConfigController controller(fab, jtag);
    sim::FabricSim sim(fab, dm);
    sim.add_clock(sim::ClockSpec{});
    place::Implementer implementer(fab, dm);
    place::Router router(fab, dm);
    reloc::RelocationEngine engine(controller, router, &sim);

    // A live 2-stage shift register whose stages sit `distance` columns
    // apart (stage 1 is first dynamically relocated there), so the
    // stage-to-stage net is a genuine long connection.
    const auto nl = netlist::bench::shift_register(
        2, netlist::bench::ClockingStyle::kFreeRunning);
    const auto mapped = netlist::map_netlist(nl);
    place::ImplementOptions opts;
    opts.region = ClbRect{7, 2, 2, 2};
    auto impl = implementer.implement(mapped, opts);
    sim::CircuitHarness harness(sim, nl, impl);
    Rng rng(5);
    for (int i = 0; i < 6; ++i) harness.step({rng.next_bool()});

    // Move stage 1 `distance` columns east, stretching the sr0->sr1 net.
    {
      const netlist::SigId sr1 = nl.state_elements()[1];
      const auto& site1 = impl.site_of_state(sr1);
      int index = -1;
      for (int k = 0; k < impl.cell_count(); ++k) {
        if (impl.sites[static_cast<std::size_t>(k)] == site1) index = k;
      }
      engine.relocate_cell(
          impl, index, place::CellSite{ClbCoord{7, 2 + distance}, 0});
    }

    // The stretched net from sr0 (stage 0 XQ) to stage 1's LUT input.
    const netlist::SigId sr0 = nl.state_elements()[0];
    const fabric::NetId net = impl.net_for(sr0);
    const auto sinks = fab.net_sinks(net);
    if (sinks.empty()) continue;
    const auto before = fab.sink_delays(net, dm);

    const auto totals0 = controller.totals();
    const auto report = engine.relocate_route(net, sinks[0]);
    const auto totals1 = controller.totals();
    const auto after = fab.sink_delays(net, dm);

    bool ok = true;
    for (int i = 0; i < 10 && ok; ++i) ok = harness.step({rng.next_bool()}).ok();

    std::printf("%-14d %10d %10d %12.3f %14.3f %14.3f  %s\n", distance,
                report.ops, totals1.frames_written - totals0.frames_written,
                report.config_time.milliseconds(),
                before[0].max.nanoseconds(), after[0].max.nanoseconds(),
                ok && sim.monitor().clean() ? "clean" : "FAILED");
  }

  // Sec. 3: rearranging the interconnections after CLB relocations. Move a
  // whole function far away (stretching its pad-bound nets), then run the
  // routing-optimisation pass and report the recovered path delay.
  std::printf("\n## post-relocation routing optimisation (Sec. 3)\n");
  {
    fabric::Fabric fab(fabric::DeviceGeometry::tiny(16, 16));
    const fabric::DelayModel dm;
    config::BoundaryScanPort jtag;
    config::ConfigController controller(fab, jtag);
    sim::FabricSim sim(fab, dm);
    sim.add_clock(sim::ClockSpec{});
    place::Implementer implementer(fab, dm);
    place::Router router(fab, dm);
    reloc::RelocationEngine engine(controller, router, &sim);

    const auto nl = netlist::bench::gray_counter(4);
    const auto mapped = netlist::map_netlist(nl);
    place::ImplementOptions opts;
    opts.region = ClbRect{1, 1, 3, 3};
    auto impl = implementer.implement(mapped, opts);
    sim::CircuitHarness harness(sim, nl, impl);
    for (int i = 0; i < 5; ++i) harness.step({});

    // Shuffle the function around the device corner by corner: nets grow.
    engine.relocate_function(impl, ClbRect{11, 11, 3, 3});
    engine.relocate_function(impl, ClbRect{1, 11, 3, 3});
    for (int i = 0; i < 5; ++i) harness.step({});

    const auto optrep = engine.optimize_function_routing(impl);
    for (int i = 0; i < 10; ++i) harness.step({});

    std::printf("  sinks rerouted %d/%d, worst delay %.3f -> %.3f ns, "
                "%d frames, %s config, lockstep %s\n",
                optrep.sinks_rerouted, optrep.sinks_considered,
                optrep.worst_delay_before.nanoseconds(),
                optrep.worst_delay_after.nanoseconds(),
                optrep.frames_written, optrep.config_time.to_string().c_str(),
                harness.total_mismatches() == 0 && sim.monitor().clean()
                    ? "clean"
                    : "FAILED");
  }
  return 0;
}
