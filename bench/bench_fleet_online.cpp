// bench_fleet_online — online admission + live rebalancing vs the offline
// batch planner, across arrival patterns and dispatch policies.
//
// The fleet's online loop places each request at its arrival time against
// the live, queue-aware occupancy ledger and sheds queued work off
// overloaded devices; the offline baseline is the PR 1 one-shot planner —
// same arrival order, same departure-reclaiming ledger, but no queueing
// estimates and no rebalancing. This sweep quantifies the gap on every
// arrival pattern (poisson, bursty, diurnal, heavy-tail) under all three
// dispatch policies, on the same per-seed trace.
//
// Writes BENCH_fleet_online.json (see bench_report.hpp). Deterministic:
// two runs with the same seed produce byte-identical reports.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_report.hpp"
#include "relogic/obs/trace.hpp"
#include "relogic/runtime/fleet.hpp"
#include "relogic/sched/workload.hpp"

namespace {

using namespace relogic;

std::string slug(const std::string& s) {
  std::string out;
  for (char c : s) out += c == '-' ? '_' : c;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::string trace_file;
  bool metrics = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--trace" && i + 1 < argc) {
      trace_file = argv[++i];
    } else if (arg == "--metrics") {
      metrics = true;
    } else {
      std::fprintf(stderr, "usage: %s [--trace FILE] [--metrics]\n", argv[0]);
      return 2;
    }
  }
  constexpr int kTasks = 250;
  constexpr int kDevices = 4;
  constexpr std::uint64_t kSeed = 2003;
  constexpr double kRebalanceMs = 80.0;

  bench_report::Report report("fleet_online");
  const auto wall_start = std::chrono::steady_clock::now();

  std::printf(
      "fleet online-vs-offline sweep: %d tasks, %d devices (12x12), seed "
      "%llu, transparent relocation, rebalance threshold %.0f ms\n\n",
      kTasks, kDevices, static_cast<unsigned long long>(kSeed), kRebalanceMs);
  std::printf("%11s %14s %9s %6s %6s %6s %12s %10s\n", "workload", "dispatch",
              "mode", "done", "rej", "rebal", "makespan ms", "tasks/s");

  const sched::ArrivalPattern patterns[] = {
      sched::ArrivalPattern::kPoisson, sched::ArrivalPattern::kBursty,
      sched::ArrivalPattern::kDiurnal, sched::ArrivalPattern::kHeavyTail};
  const runtime::DispatchPolicy policies[] = {
      runtime::DispatchPolicy::kRoundRobin,
      runtime::DispatchPolicy::kLeastLoaded,
      runtime::DispatchPolicy::kBestFit};

  for (const auto pattern : patterns) {
    sched::WorkloadParams wp;
    wp.pattern = pattern;
    wp.task_count = kTasks;
    // Heavy but not drowned: queues form and skew, so rebalancing has
    // headroom to shed into (fleet-wide overload is unrebalanceable by
    // design).
    wp.mean_interarrival_ms = 0.8;
    wp.seed = kSeed;
    const auto trace = sched::WorkloadGenerator(wp).generate();

    for (const auto policy : policies) {
      for (const auto admission :
           {runtime::AdmissionMode::kOffline, runtime::AdmissionMode::kOnline}) {
        runtime::FleetConfig cfg;
        cfg.devices = kDevices;
        cfg.rows = cfg.cols = 12;
        cfg.dispatch = policy;
        cfg.admission = admission;
        if (admission == runtime::AdmissionMode::kOnline)
          cfg.rebalance_backlog_ms = kRebalanceMs;
        cfg.sched.policy = sched::ManagementPolicy::kTransparent;

        runtime::FleetManager fleet(cfg);
        fleet.submit_all(trace);
        const auto result = fleet.run();

        std::printf("%11s %14s %9s %6d %6d %6d %12.1f %10.1f\n",
                    sched::to_string(pattern).c_str(),
                    runtime::to_string(policy).c_str(),
                    runtime::to_string(admission).c_str(), result.completed,
                    result.rejected, result.rebalanced,
                    result.makespan.milliseconds(),
                    result.throughput_tasks_per_s());

        const std::string key = slug(sched::to_string(pattern)) + "_" +
                                slug(runtime::to_string(policy)) + "_" +
                                runtime::to_string(admission);
        report.add(key + "_completed", result.completed, "tasks");
        report.add(key + "_makespan", result.makespan.milliseconds(), "ms");
        report.add(key + "_tasks_per_s", result.throughput_tasks_per_s(),
                   "tasks/s");
        report.add(key + "_rebalanced", result.rebalanced, "requests");
      }
    }
    std::printf("\n");
  }

  // ---- fleet-level dirty reduction ----------------------------------------
  // Each device replays a per-task op *sequence* (configure at config_start,
  // clear at finish), so kDirtyFrame gets real cancellations to skip at
  // fleet scale. One poisson/least-loaded/online run per granularity
  // quantifies the frame-write reduction dirty diffing buys the whole fleet
  // versus the exact per-op frame set (kFrame).
  {
    sched::WorkloadParams wp;
    wp.pattern = sched::ArrivalPattern::kPoisson;
    wp.task_count = kTasks;
    wp.mean_interarrival_ms = 0.8;
    wp.seed = kSeed;
    const auto trace = sched::WorkloadGenerator(wp).generate();

    double frame_writes[2] = {0, 0};
    double dirty_skipped = 0;
    int i = 0;
    for (const auto gran : {config::WriteGranularity::kFrame,
                            config::WriteGranularity::kDirtyFrame}) {
      runtime::FleetConfig cfg;
      cfg.devices = kDevices;
      cfg.rows = cfg.cols = 12;
      cfg.admission = runtime::AdmissionMode::kOnline;
      cfg.rebalance_backlog_ms = kRebalanceMs;
      cfg.sched.policy = sched::ManagementPolicy::kTransparent;
      cfg.config_plane.granularity = gran;
      runtime::FleetManager fleet(cfg);
      fleet.submit_all(trace);
      const auto result = fleet.run();
      frame_writes[i++] =
          static_cast<double>(result.aggregate.counter_value("frame_writes"));
      if (gran == config::WriteGranularity::kDirtyFrame)
        dirty_skipped = static_cast<double>(
            result.aggregate.counter_value("frame_writes_dirty_skipped"));
    }
    const double reduction =
        frame_writes[0] > 0
            ? 100.0 * (frame_writes[0] - frame_writes[1]) / frame_writes[0]
            : 0.0;
    std::printf(
        "fleet dirty reduction (poisson, least-loaded, online): %.0f frame "
        "writes under kFrame vs %.0f under kDirtyFrame (%.1f%% fewer, %.0f "
        "dirty-skipped)\n",
        frame_writes[0], frame_writes[1], reduction, dirty_skipped);
    report.add("fleet_frame_writes_frame", frame_writes[0], "frames");
    report.add("fleet_frame_writes_dirty", frame_writes[1], "frames");
    report.add("fleet_dirty_skipped", dirty_skipped, "frames");
    report.add("fleet_dirty_write_reduction_pct", reduction, "%");
  }

  // End-to-end wall clock of the whole sweep — the config-plane hot path
  // (frames_of / preview / apply / batcher) dominates it, so the flat data
  // path's win is tracked here across PRs.
  const double wall_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - wall_start)
          .count();
  std::printf("end-to-end wall clock: %.0f ms\n", wall_ms);
  report.add("wall_clock_ms", wall_ms, "ms");

  // ---- optional metrics-timeline capture ----------------------------------
  // One extra poisson/least-loaded/online run with the sim-clock metrics
  // plane enabled: windowed rates and final-window queue-wait quantiles land
  // in the BENCH report. Runs after the sweep's wall-clock capture so
  // sampling never perturbs its numbers.
  if (metrics) {
    sched::WorkloadParams wp;
    wp.pattern = sched::ArrivalPattern::kPoisson;
    wp.task_count = kTasks;
    wp.mean_interarrival_ms = 0.8;
    wp.seed = kSeed;

    runtime::FleetConfig cfg;
    cfg.devices = kDevices;
    cfg.rows = cfg.cols = 12;
    cfg.dispatch = runtime::DispatchPolicy::kLeastLoaded;
    cfg.admission = runtime::AdmissionMode::kOnline;
    cfg.rebalance_backlog_ms = kRebalanceMs;
    cfg.sched.policy = sched::ManagementPolicy::kTransparent;
    cfg.metrics.sample_interval_ms = 5.0;

    runtime::FleetManager fleet(cfg);
    fleet.submit_all(sched::WorkloadGenerator(wp).generate());
    const auto result = fleet.run();
    const auto& tl = result.timeline;

    // Peak per-window completion rate across the aggregate timeline.
    double peak_rate = 0.0;
    for (std::size_t row = 0; row < tl.size(); ++row)
      peak_rate =
          std::max(peak_rate, tl.counter_rate_per_s(row, "tasks_completed"));
    // p99 queue wait of the last window that actually saw queue activity
    // (trailing drain windows report "no data", not a stale quantile).
    double p99_final = 0.0;
    for (std::size_t row = tl.size(); row-- > 0;) {
      const auto q = tl.window_quantile(row, "queue_wait_ms", 0.99);
      if (q) {
        p99_final = *q;
        break;
      }
    }
    std::printf(
        "metrics timeline (poisson, least-loaded, online, 5 ms windows): %zu "
        "samples, peak window rate %.1f tasks/s, final-window queue-wait p99 "
        "%.3f ms\n",
        tl.size(), peak_rate, p99_final);
    report.add("metrics_samples", static_cast<double>(tl.size()), "samples");
    report.add("peak_window_task_rate", peak_rate, "tasks/s");
    report.add("p99_queue_wait_final_window_ms", p99_final, "ms");
  }

  // ---- optional trace capture ---------------------------------------------
  // One extra poisson/least-loaded/online run with the deterministic tracer
  // attached; the span JSON lands wherever --trace points (Perfetto
  // loadable). Runs after the sweep's wall-clock capture so tracing never
  // perturbs its numbers.
  if (!trace_file.empty()) {
    sched::WorkloadParams wp;
    wp.pattern = sched::ArrivalPattern::kPoisson;
    wp.task_count = kTasks;
    wp.mean_interarrival_ms = 0.8;
    wp.seed = kSeed;

    runtime::FleetConfig cfg;
    cfg.devices = kDevices;
    cfg.rows = cfg.cols = 12;
    cfg.dispatch = runtime::DispatchPolicy::kLeastLoaded;
    cfg.admission = runtime::AdmissionMode::kOnline;
    cfg.rebalance_backlog_ms = kRebalanceMs;
    cfg.sched.policy = sched::ManagementPolicy::kTransparent;

    obs::Tracer tracer;
    runtime::FleetManager fleet(cfg);
    fleet.set_tracer(&tracer);
    fleet.submit_all(sched::WorkloadGenerator(wp).generate());
    fleet.run();
    if (!tracer.write_json(trace_file)) {
      std::fprintf(stderr, "failed to write trace to %s\n",
                   trace_file.c_str());
      return 1;
    }
    std::printf("trace written to %s (open in ui.perfetto.dev)\n",
                trace_file.c_str());
  }

  if (report.write()) {
    std::printf("wrote %s\n", report.path().c_str());
  } else {
    std::fprintf(stderr, "failed to write %s\n", report.path().c_str());
    return 1;
  }
  return 0;
}
