#include "relogic/netlist/benchmarks.hpp"

#include <optional>

#include "relogic/common/rng.hpp"

namespace relogic::netlist::bench {

namespace {

/// Clock-enable signal for the chosen style (adds the "ce" input once).
std::optional<SigId> style_ce(Netlist& nl, ClockingStyle style) {
  if (style == ClockingStyle::kFreeRunning) return std::nullopt;
  return nl.input("ce");
}

}  // namespace

Netlist b01(ClockingStyle style) {
  Netlist nl("b01");
  const SigId line1 = nl.input("line1");
  const SigId line2 = nl.input("line2");
  const auto ce = style_ce(nl, style);

  // Serial add/compare core with position counting: 5 FFs (carry, outp,
  // 3-bit position counter), matching the published register count of b01.
  const SigId carry = nl.dff_feedback(false, "carry");
  const SigId outp_ff = nl.dff_feedback(false, "outp_reg");
  const SigId cnt0 = nl.dff_feedback(false, "cnt0");
  const SigId cnt1 = nl.dff_feedback(false, "cnt1");
  const SigId cnt2 = nl.dff_feedback(false, "cnt2");

  const SigId sum = nl.xor_(nl.xor_(line1, line2), carry);
  const SigId maj = nl.or_(nl.or_(nl.and_(line1, line2), nl.and_(line1, carry)),
                           nl.and_(line2, carry));
  const std::vector<SigId> cnt{cnt0, cnt1, cnt2};
  const std::vector<SigId> cnt_next = nl.increment(cnt);
  const SigId wrap = nl.and_(nl.and_(cnt0, cnt1), cnt2);

  nl.connect_dff(carry, maj, ce);
  nl.connect_dff(outp_ff, sum, ce);
  nl.connect_dff(cnt0, cnt_next[0], ce);
  nl.connect_dff(cnt1, cnt_next[1], ce);
  nl.connect_dff(cnt2, cnt_next[2], ce);

  nl.output("outp", outp_ff);
  nl.output("overflw", nl.and_(wrap, maj));
  nl.validate();
  return nl;
}

Netlist b02(ClockingStyle style) {
  Netlist nl("b02");
  const SigId linea = nl.input("linea");
  const auto ce = style_ce(nl, style);

  // BCD serial recogniser: 3-bit state register + registered output u
  // (4 FFs, the published size of b02). States walk a digit frame; u pulses
  // when the accumulated digit stays within BCD range.
  const SigId s0 = nl.dff_feedback(false, "s0");
  const SigId s1 = nl.dff_feedback(false, "s1");
  const SigId s2 = nl.dff_feedback(false, "s2");
  const SigId u_ff = nl.dff_feedback(false, "u_reg");

  // Position advance: s is a mod-5 counter over the 4 data bits + gap.
  const std::vector<SigId> s{s0, s1, s2};
  const SigId at4 = nl.equals_const(s, 4);
  const std::vector<SigId> s_inc = nl.increment(s);
  const SigId n0 = nl.mux(s_inc[0], nl.constant(false), at4);
  const SigId n1 = nl.mux(s_inc[1], nl.constant(false), at4);
  const SigId n2 = nl.mux(s_inc[2], nl.constant(false), at4);

  // BCD violation: a '1' seen in the MSB position (bit index 3) while an
  // earlier high bit was set — track with the output register itself:
  // u <- at4 & !(violation), violation folded from linea at positions 1..3.
  const SigId at3 = nl.equals_const(s, 3);
  const SigId viol_now = nl.and_(at3, linea);
  const SigId u_next = nl.mux(nl.and_(u_ff, nl.not_(viol_now)),
                              nl.not_(viol_now), at4);

  nl.connect_dff(s0, n0, ce);
  nl.connect_dff(s1, n1, ce);
  nl.connect_dff(s2, n2, ce);
  nl.connect_dff(u_ff, u_next, ce);

  nl.output("u", u_ff);
  nl.validate();
  return nl;
}

Netlist b06(ClockingStyle style) {
  Netlist nl("b06");
  const SigId eql = nl.input("eql");
  const SigId cont_eql = nl.input("cont_eql");
  const auto ce = style_ce(nl, style);

  // Interrupt-handler FSM, one-hot over 5 states + 4 output registers
  // (9 FFs, the published size of b06). States: idle, latch, ack, wait,
  // release.
  const SigId st_idle = nl.dff_feedback(true, "st_idle");
  const SigId st_latch = nl.dff_feedback(false, "st_latch");
  const SigId st_ack = nl.dff_feedback(false, "st_ack");
  const SigId st_wait = nl.dff_feedback(false, "st_wait");
  const SigId st_rel = nl.dff_feedback(false, "st_rel");
  const SigId out0 = nl.dff_feedback(false, "uscite0_reg");
  const SigId out1 = nl.dff_feedback(false, "uscite1_reg");
  const SigId ack_ff = nl.dff_feedback(false, "ackout_reg");
  const SigId pend = nl.dff_feedback(false, "pending");

  const SigId n_idle =
      nl.or_(nl.and_(st_idle, nl.not_(eql)), nl.and_(st_rel, nl.not_(cont_eql)));
  const SigId n_latch = nl.and_(st_idle, eql);
  const SigId n_ack = nl.or_(st_latch, nl.and_(st_wait, cont_eql));
  const SigId n_wait = nl.and_(st_ack, nl.not_(eql));
  const SigId n_rel =
      nl.or_(nl.and_(st_ack, eql),
             nl.or_(nl.and_(st_wait, nl.not_(cont_eql)),
                    nl.and_(st_rel, cont_eql)));

  nl.connect_dff(st_idle, n_idle, ce);
  nl.connect_dff(st_latch, n_latch, ce);
  nl.connect_dff(st_ack, n_ack, ce);
  nl.connect_dff(st_wait, n_wait, ce);
  nl.connect_dff(st_rel, n_rel, ce);
  nl.connect_dff(out0, nl.or_(st_latch, st_ack), ce);
  nl.connect_dff(out1, nl.or_(st_wait, st_rel), ce);
  nl.connect_dff(ack_ff, st_ack, ce);
  nl.connect_dff(pend, nl.or_(eql, nl.and_(pend, nl.not_(st_ack))), ce);

  nl.output("uscite0", out0);
  nl.output("uscite1", out1);
  nl.output("ackout", ack_ff);
  nl.validate();
  return nl;
}

Netlist random_fsm(const std::string& name, int ff_count, int input_count,
                   int output_count, std::uint64_t seed, ClockingStyle style) {
  RELOGIC_CHECK(ff_count >= 1 && input_count >= 1 && output_count >= 1);
  Netlist nl(name);
  Rng rng(seed);

  std::vector<SigId> inputs;
  for (int i = 0; i < input_count; ++i)
    inputs.push_back(nl.input("in" + std::to_string(i)));
  const auto ce = style_ce(nl, style);

  std::vector<SigId> ffs;
  for (int i = 0; i < ff_count; ++i)
    ffs.push_back(nl.dff_feedback(rng.next_bool(), "ff" + std::to_string(i)));

  // Pool of signals random cones may draw from.
  std::vector<SigId> pool = inputs;
  pool.insert(pool.end(), ffs.begin(), ffs.end());

  auto random_cone = [&](const std::string& cone_name) {
    const int k = rng.next_int(2, 4);
    std::vector<SigId> fan;
    for (int i = 0; i < k; ++i) fan.push_back(pool[rng.next_below(pool.size())]);
    const auto truth = static_cast<std::uint16_t>(rng.next_u64());
    return nl.lut(truth, fan, cone_name);
  };

  for (int i = 0; i < ff_count; ++i) {
    const SigId cone = random_cone("next" + std::to_string(i));
    nl.connect_dff(ffs[static_cast<std::size_t>(i)], cone, ce);
    pool.push_back(cone);
  }
  for (int i = 0; i < output_count; ++i) {
    nl.output("out" + std::to_string(i), random_cone("o" + std::to_string(i)));
  }
  nl.validate();
  return nl;
}

Netlist random_logic(const std::string& name, int gate_count, int input_count,
                     int output_count, std::uint64_t seed) {
  RELOGIC_CHECK(gate_count >= 1 && input_count >= 1 && output_count >= 1);
  Netlist nl(name);
  Rng rng(seed);
  std::vector<SigId> pool;
  for (int i = 0; i < input_count; ++i)
    pool.push_back(nl.input("in" + std::to_string(i)));
  for (int g = 0; g < gate_count; ++g) {
    const int k = rng.next_int(2, 4);
    std::vector<SigId> fan;
    for (int i = 0; i < k; ++i) fan.push_back(pool[rng.next_below(pool.size())]);
    pool.push_back(nl.lut(static_cast<std::uint16_t>(rng.next_u64()), fan));
  }
  for (int i = 0; i < output_count; ++i) {
    // Bias outputs toward recently created gates so none is trivially dead.
    const std::size_t lo = pool.size() > 8 ? pool.size() - 8 : 0;
    const std::size_t pick =
        lo + rng.next_below(pool.size() - lo);
    nl.output("out" + std::to_string(i), pool[pick]);
  }
  nl.validate();
  return nl;
}

Netlist counter(int bits, ClockingStyle style) {
  RELOGIC_CHECK(bits >= 1);
  Netlist nl("counter" + std::to_string(bits));
  const auto ce = style_ce(nl, style);
  std::vector<SigId> ffs;
  for (int i = 0; i < bits; ++i)
    ffs.push_back(nl.dff_feedback(false, "q" + std::to_string(i)));
  const std::vector<SigId> next = nl.increment(ffs);
  for (int i = 0; i < bits; ++i)
    nl.connect_dff(ffs[static_cast<std::size_t>(i)],
                   next[static_cast<std::size_t>(i)], ce);
  for (int i = 0; i < bits; ++i)
    nl.output("q" + std::to_string(i), ffs[static_cast<std::size_t>(i)]);
  nl.output("tc", nl.and_tree(ffs));
  nl.validate();
  return nl;
}

Netlist shift_register(int bits, ClockingStyle style) {
  RELOGIC_CHECK(bits >= 1);
  Netlist nl("shift" + std::to_string(bits));
  const SigId din = nl.input("din");
  const auto ce = style_ce(nl, style);
  SigId prev = din;
  SigId last = kInvalidSig;
  for (int i = 0; i < bits; ++i) {
    last = nl.dff(prev, ce, false, "sr" + std::to_string(i));
    prev = last;
  }
  nl.output("dout", last);
  nl.validate();
  return nl;
}

Netlist lfsr(int bits, std::uint32_t taps) {
  RELOGIC_CHECK(bits >= 2 && bits <= 32 && taps != 0);
  Netlist nl("lfsr" + std::to_string(bits));
  std::vector<SigId> ffs;
  for (int i = 0; i < bits; ++i) {
    // Seed with 1 in bit0 so the register never sticks at all-zero.
    ffs.push_back(nl.dff_feedback(i == 0, "r" + std::to_string(i)));
  }
  std::vector<SigId> tapped;
  for (int i = 0; i < bits; ++i)
    if ((taps >> i) & 1u) tapped.push_back(ffs[static_cast<std::size_t>(i)]);
  const SigId fb = nl.xor_tree(std::move(tapped));
  nl.connect_dff(ffs[0], fb);
  for (int i = 1; i < bits; ++i)
    nl.connect_dff(ffs[static_cast<std::size_t>(i)],
                   ffs[static_cast<std::size_t>(i - 1)]);
  nl.output("out", ffs.back());
  nl.validate();
  return nl;
}

Netlist gray_counter(int bits, ClockingStyle style) {
  RELOGIC_CHECK(bits >= 2);
  Netlist nl("gray" + std::to_string(bits));
  const auto ce = style_ce(nl, style);
  // Binary core + gray output stage.
  std::vector<SigId> ffs;
  for (int i = 0; i < bits; ++i)
    ffs.push_back(nl.dff_feedback(false, "b" + std::to_string(i)));
  const std::vector<SigId> next = nl.increment(ffs);
  for (int i = 0; i < bits; ++i)
    nl.connect_dff(ffs[static_cast<std::size_t>(i)],
                   next[static_cast<std::size_t>(i)], ce);
  for (int i = 0; i < bits - 1; ++i)
    nl.output("g" + std::to_string(i),
              nl.xor_(ffs[static_cast<std::size_t>(i)],
                      ffs[static_cast<std::size_t>(i + 1)]));
  nl.output("g" + std::to_string(bits - 1), ffs.back());
  nl.validate();
  return nl;
}

Netlist async_pipeline(int stages) {
  RELOGIC_CHECK(stages >= 1);
  Netlist nl("async_pipe" + std::to_string(stages));
  const SigId din = nl.input("din");
  const SigId phi1 = nl.input("phi1");
  const SigId phi2 = nl.input("phi2");
  SigId prev = din;
  for (int i = 0; i < stages; ++i) {
    prev = nl.latch(prev, (i % 2 == 0) ? phi1 : phi2, false,
                    "lat" + std::to_string(i));
  }
  nl.output("dout", prev);
  nl.validate();
  return nl;
}

std::vector<SuiteEntry> itc99_suite(ClockingStyle style) {
  std::vector<SuiteEntry> suite;
  suite.push_back({"b01", b01(style), 5});
  suite.push_back({"b02", b02(style), 4});
  suite.push_back({"b06", b06(style), 9});
  suite.push_back(
      {"b03c", random_fsm("b03c", 30, 4, 4, 0xB03, style), 30});
  suite.push_back(
      {"b08c", random_fsm("b08c", 21, 9, 4, 0xB08, style), 21});
  suite.push_back(
      {"b09c", random_fsm("b09c", 28, 1, 1, 0xB09, style), 28});
  suite.push_back(
      {"b10c", random_fsm("b10c", 17, 11, 6, 0xB10, style), 17});
  suite.push_back(
      {"b13c", random_fsm("b13c", 53, 10, 10, 0xB13, style), 53});
  return suite;
}

}  // namespace relogic::netlist::bench
