#include "relogic/netlist/mapping.hpp"

#include <algorithm>

namespace relogic::netlist {

fabric::LogicCellConfig MappedCell::to_config(std::uint8_t clock_domain) const {
  fabric::LogicCellConfig cfg;
  cfg.lut = lut;
  cfg.reg = reg;
  cfg.uses_ce = uses_ce();
  cfg.init = init;
  cfg.clock_domain = clock_domain;
  cfg.used = true;
  return cfg;
}

const Producer& MappedNetlist::producer(SigId sig) const {
  auto it = producer_of.find(sig);
  RELOGIC_CHECK_MSG(it != producer_of.end(),
                    "no producer recorded for signal " + std::to_string(sig));
  return it->second;
}

std::uint16_t truth_table_of(const Netlist& nl, SigId id) {
  const Node& n = nl.node(id);
  const int k = static_cast<int>(n.fanin.size());
  RELOGIC_CHECK(k >= 0 && k <= 4);
  auto f = [&](unsigned vec) -> bool {
    auto bit = [&](int i) { return ((vec >> i) & 1u) != 0; };
    switch (n.kind) {
      case OpKind::kConst0:
        return false;
      case OpKind::kConst1:
        return true;
      case OpKind::kBuf:
        return bit(0);
      case OpKind::kNot:
        return !bit(0);
      case OpKind::kAnd:
        return bit(0) && bit(1);
      case OpKind::kOr:
        return bit(0) || bit(1);
      case OpKind::kNand:
        return !(bit(0) && bit(1));
      case OpKind::kNor:
        return !(bit(0) || bit(1));
      case OpKind::kXor:
        return bit(0) != bit(1);
      case OpKind::kXnor:
        return bit(0) == bit(1);
      case OpKind::kMux:
        return bit(2) ? bit(1) : bit(0);
      case OpKind::kLut:
        // Only the node's real fanins select a truth-table row: fold unused
        // input bits away so the mapped cell is insensitive to whatever its
        // unrouted pins read.
        return ((n.lut >> (vec & ((1u << k) - 1u))) & 1u) != 0;
      default:
        RELOGIC_CHECK_MSG(false, "truth_table_of on a non-combinational node");
    }
    return false;
  };
  std::uint16_t t = 0;
  for (unsigned vec = 0; vec < 16; ++vec) {
    if (f(vec)) t = static_cast<std::uint16_t>(t | (1u << vec));
  }
  return t;
}

MappedNetlist map_netlist(const Netlist& nl) {
  nl.validate();
  MappedNetlist out;
  out.source = &nl;

  // Consumer counts decide whether a comb node can be packed into the
  // storage element it drives.
  std::vector<int> consumers(nl.node_count(), 0);
  for (SigId id = 0; id < nl.node_count(); ++id) {
    for (SigId f : nl.node(id).fanin) ++consumers[f];
  }
  for (const auto& o : nl.outputs()) ++consumers[o.signal];

  // Which comb node is packed into which state element.
  std::vector<SigId> packed_into(nl.node_count(), kInvalidSig);
  for (SigId s : nl.state_elements()) {
    const Node& st = nl.node(s);
    const SigId d = st.fanin[0];
    const Node& dn = nl.node(d);
    const bool comb = dn.kind != OpKind::kInput && dn.kind != OpKind::kDff &&
                      dn.kind != OpKind::kLatch && dn.kind != OpKind::kConst0 &&
                      dn.kind != OpKind::kConst1;
    if (comb && consumers[d] == 1 && dn.fanin.size() <= 4 &&
        packed_into[d] == kInvalidSig) {
      packed_into[d] = s;
    }
  }

  for (SigId id = 0; id < nl.node_count(); ++id) {
    const Node& n = nl.node(id);
    switch (n.kind) {
      case OpKind::kInput:
        out.producer_of[id] =
            Producer{Producer::Kind::kPrimaryInput, -1, id};
        continue;
      case OpKind::kDff:
      case OpKind::kLatch:
        continue;  // handled below (possibly packed)
      default:
        break;
    }
    if (packed_into[id] != kInvalidSig) continue;  // emitted with its FF

    MappedCell cell;
    cell.lut = truth_table_of(nl, id);
    for (std::size_t i = 0; i < n.fanin.size(); ++i) cell.in[i] = n.fanin[i];
    cell.comb_sig = id;
    cell.name = n.name.empty() ? ("n" + std::to_string(id)) : n.name;
    out.cells.push_back(cell);
    out.producer_of[id] =
        Producer{Producer::Kind::kCellX, static_cast<int>(out.cells.size()) - 1,
                 kInvalidSig};
  }

  for (SigId s : nl.state_elements()) {
    const Node& st = nl.node(s);
    const SigId d = st.fanin[0];

    MappedCell cell;
    cell.reg = st.kind == OpKind::kDff ? fabric::RegMode::kFF
                                       : fabric::RegMode::kLatch;
    cell.init = st.init;
    cell.state_sig = s;
    cell.name = st.name.empty() ? ("s" + std::to_string(s)) : st.name;
    if (st.kind == OpKind::kDff && st.fanin.size() == 2) cell.ce = st.fanin[1];
    if (st.kind == OpKind::kLatch) cell.ce = st.fanin[1];

    if (packed_into[d] == s) {
      const Node& dn = nl.node(d);
      cell.lut = truth_table_of(nl, d);
      for (std::size_t i = 0; i < dn.fanin.size(); ++i) cell.in[i] = dn.fanin[i];
      cell.comb_sig = d;
      out.cells.push_back(cell);
      out.producer_of[d] = Producer{Producer::Kind::kCellX,
                                    static_cast<int>(out.cells.size()) - 1,
                                    kInvalidSig};
    } else {
      cell.lut = fabric::luts::kBufI0;
      cell.in[0] = d;
      cell.comb_sig = kInvalidSig;  // pass-through LUT, X not exported
      out.cells.push_back(cell);
    }
    out.producer_of[s] = Producer{Producer::Kind::kCellXQ,
                                  static_cast<int>(out.cells.size()) - 1,
                                  kInvalidSig};
  }

  return out;
}

}  // namespace relogic::netlist
