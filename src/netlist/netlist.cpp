#include "relogic/netlist/netlist.hpp"

#include <algorithm>

namespace relogic::netlist {

SigId Netlist::add(Node n) {
  for (SigId f : n.fanin) {
    RELOGIC_CHECK_MSG(f < nodes_.size(), "fanin refers to an unknown signal");
  }
  nodes_.push_back(std::move(n));
  return static_cast<SigId>(nodes_.size() - 1);
}

SigId Netlist::input(std::string name) {
  RELOGIC_CHECK_MSG(!input_by_name_.contains(name),
                    "duplicate input name: " + name);
  Node n;
  n.kind = OpKind::kInput;
  n.name = name;
  const SigId id = add(std::move(n));
  inputs_.push_back(id);
  input_by_name_.emplace(std::move(name), id);
  return id;
}

SigId Netlist::constant(bool value) {
  Node n;
  n.kind = value ? OpKind::kConst1 : OpKind::kConst0;
  return add(std::move(n));
}

namespace {
Node binary(OpKind k, SigId a, SigId b) {
  Node n;
  n.kind = k;
  n.fanin = {a, b};
  return n;
}
}  // namespace

SigId Netlist::buf(SigId a, std::string name) {
  Node n;
  n.kind = OpKind::kBuf;
  n.fanin = {a};
  n.name = std::move(name);
  return add(std::move(n));
}
SigId Netlist::not_(SigId a) {
  Node n;
  n.kind = OpKind::kNot;
  n.fanin = {a};
  return add(std::move(n));
}
SigId Netlist::and_(SigId a, SigId b) { return add(binary(OpKind::kAnd, a, b)); }
SigId Netlist::or_(SigId a, SigId b) { return add(binary(OpKind::kOr, a, b)); }
SigId Netlist::nand_(SigId a, SigId b) {
  return add(binary(OpKind::kNand, a, b));
}
SigId Netlist::nor_(SigId a, SigId b) { return add(binary(OpKind::kNor, a, b)); }
SigId Netlist::xor_(SigId a, SigId b) { return add(binary(OpKind::kXor, a, b)); }
SigId Netlist::xnor_(SigId a, SigId b) {
  return add(binary(OpKind::kXnor, a, b));
}

SigId Netlist::mux(SigId d0, SigId d1, SigId sel) {
  Node n;
  n.kind = OpKind::kMux;
  n.fanin = {d0, d1, sel};
  return add(std::move(n));
}

SigId Netlist::lut(std::uint16_t truth, const std::vector<SigId>& fanins,
                   std::string name) {
  RELOGIC_CHECK_MSG(!fanins.empty() && fanins.size() <= 4,
                    "LUT supports 1..4 fanins");
  Node n;
  n.kind = OpKind::kLut;
  n.fanin = fanins;
  n.lut = truth;
  n.name = std::move(name);
  return add(std::move(n));
}

SigId Netlist::dff(SigId d, std::optional<SigId> ce, bool init,
                   std::string name) {
  Node n;
  n.kind = OpKind::kDff;
  n.fanin = ce.has_value() ? std::vector<SigId>{d, *ce} : std::vector<SigId>{d};
  n.init = init;
  n.name = std::move(name);
  const SigId id = add(std::move(n));
  states_.push_back(id);
  return id;
}

SigId Netlist::latch(SigId d, SigId gate, bool init, std::string name) {
  Node n;
  n.kind = OpKind::kLatch;
  n.fanin = {d, gate};
  n.init = init;
  n.name = std::move(name);
  const SigId id = add(std::move(n));
  states_.push_back(id);
  return id;
}

void Netlist::output(std::string name, SigId signal) {
  RELOGIC_CHECK(signal < nodes_.size());
  outputs_.push_back(OutputPort{std::move(name), signal});
}

SigId Netlist::dff_feedback(bool init, std::string name) {
  Node n;
  n.kind = OpKind::kDff;
  n.init = init;
  n.name = std::move(name);
  const SigId id = add(std::move(n));
  states_.push_back(id);
  return id;
}

void Netlist::connect_dff(SigId ff, SigId d, std::optional<SigId> ce) {
  RELOGIC_CHECK(ff < nodes_.size() && d < nodes_.size());
  Node& n = nodes_[ff];
  RELOGIC_CHECK_MSG(n.kind == OpKind::kDff, "connect_dff target is not a DFF");
  RELOGIC_CHECK_MSG(n.fanin.empty(), "DFF already connected");
  n.fanin = ce.has_value() ? std::vector<SigId>{d, *ce} : std::vector<SigId>{d};
}

SigId Netlist::latch_feedback(bool init, std::string name) {
  Node n;
  n.kind = OpKind::kLatch;
  n.init = init;
  n.name = std::move(name);
  const SigId id = add(std::move(n));
  states_.push_back(id);
  return id;
}

void Netlist::connect_latch(SigId l, SigId d, SigId gate) {
  RELOGIC_CHECK(l < nodes_.size() && d < nodes_.size() && gate < nodes_.size());
  Node& n = nodes_[l];
  RELOGIC_CHECK_MSG(n.kind == OpKind::kLatch,
                    "connect_latch target is not a latch");
  RELOGIC_CHECK_MSG(n.fanin.empty(), "latch already connected");
  n.fanin = {d, gate};
}

SigId Netlist::and_tree(std::vector<SigId> sigs) {
  RELOGIC_CHECK(!sigs.empty());
  while (sigs.size() > 1) {
    std::vector<SigId> next;
    for (std::size_t i = 0; i + 1 < sigs.size(); i += 2)
      next.push_back(and_(sigs[i], sigs[i + 1]));
    if (sigs.size() % 2) next.push_back(sigs.back());
    sigs = std::move(next);
  }
  return sigs[0];
}

SigId Netlist::or_tree(std::vector<SigId> sigs) {
  RELOGIC_CHECK(!sigs.empty());
  while (sigs.size() > 1) {
    std::vector<SigId> next;
    for (std::size_t i = 0; i + 1 < sigs.size(); i += 2)
      next.push_back(or_(sigs[i], sigs[i + 1]));
    if (sigs.size() % 2) next.push_back(sigs.back());
    sigs = std::move(next);
  }
  return sigs[0];
}

SigId Netlist::xor_tree(std::vector<SigId> sigs) {
  RELOGIC_CHECK(!sigs.empty());
  while (sigs.size() > 1) {
    std::vector<SigId> next;
    for (std::size_t i = 0; i + 1 < sigs.size(); i += 2)
      next.push_back(xor_(sigs[i], sigs[i + 1]));
    if (sigs.size() % 2) next.push_back(sigs.back());
    sigs = std::move(next);
  }
  return sigs[0];
}

SigId Netlist::equals_const(const std::vector<SigId>& sigs, unsigned value) {
  RELOGIC_CHECK(!sigs.empty());
  std::vector<SigId> terms;
  for (std::size_t i = 0; i < sigs.size(); ++i) {
    const bool bit = ((value >> i) & 1u) != 0;
    terms.push_back(bit ? sigs[i] : not_(sigs[i]));
  }
  return and_tree(std::move(terms));
}

std::vector<SigId> Netlist::increment(const std::vector<SigId>& sigs) {
  RELOGIC_CHECK(!sigs.empty());
  std::vector<SigId> out;
  SigId carry = constant(true);
  for (SigId s : sigs) {
    out.push_back(xor_(s, carry));
    carry = and_(s, carry);
  }
  return out;
}

SigId Netlist::find_input(const std::string& name) const {
  auto it = input_by_name_.find(name);
  RELOGIC_CHECK_MSG(it != input_by_name_.end(), "no input named " + name);
  return it->second;
}

std::optional<SigId> Netlist::find_output(const std::string& name) const {
  for (const auto& o : outputs_)
    if (o.name == name) return o.signal;
  return std::nullopt;
}

int Netlist::gate_count() const {
  int n = 0;
  for (const auto& node : nodes_) {
    switch (node.kind) {
      case OpKind::kInput:
      case OpKind::kConst0:
      case OpKind::kConst1:
      case OpKind::kDff:
      case OpKind::kLatch:
        break;
      default:
        ++n;
    }
  }
  return n;
}

int Netlist::ff_count() const {
  int n = 0;
  for (SigId s : states_)
    if (nodes_[s].kind == OpKind::kDff) ++n;
  return n;
}

int Netlist::latch_count() const {
  int n = 0;
  for (SigId s : states_)
    if (nodes_[s].kind == OpKind::kLatch) ++n;
  return n;
}

bool Netlist::has_gated_clock() const {
  for (SigId s : states_) {
    const Node& n = nodes_[s];
    if (n.kind == OpKind::kDff && n.fanin.size() == 2) return true;
  }
  return false;
}

std::vector<SigId> Netlist::topo_order() const {
  // Kahn's algorithm over combinational nodes only; state-element outputs,
  // inputs and constants are sources.
  std::vector<int> pending(nodes_.size(), 0);
  std::vector<std::vector<SigId>> consumers(nodes_.size());
  std::vector<SigId> ready;
  for (SigId id = 0; id < nodes_.size(); ++id) {
    const Node& n = nodes_[id];
    switch (n.kind) {
      case OpKind::kInput:
      case OpKind::kConst0:
      case OpKind::kConst1:
      case OpKind::kDff:
      case OpKind::kLatch:
        continue;  // sources: not scheduled
      default:
        break;
    }
    int deps = 0;
    for (SigId f : n.fanin) {
      const OpKind fk = nodes_[f].kind;
      const bool source = fk == OpKind::kInput || fk == OpKind::kConst0 ||
                          fk == OpKind::kConst1 || fk == OpKind::kDff ||
                          fk == OpKind::kLatch;
      if (!source) {
        ++deps;
        consumers[f].push_back(id);
      }
    }
    pending[id] = deps;
    if (deps == 0) ready.push_back(id);
  }

  std::vector<SigId> order;
  order.reserve(nodes_.size());
  while (!ready.empty()) {
    const SigId id = ready.back();
    ready.pop_back();
    order.push_back(id);
    for (SigId c : consumers[id]) {
      if (--pending[c] == 0) ready.push_back(c);
    }
  }
  std::size_t comb_nodes = 0;
  for (SigId id = 0; id < nodes_.size(); ++id) {
    const OpKind k = nodes_[id].kind;
    if (k != OpKind::kInput && k != OpKind::kConst0 && k != OpKind::kConst1 &&
        k != OpKind::kDff && k != OpKind::kLatch)
      ++comb_nodes;
  }
  RELOGIC_CHECK_MSG(order.size() == comb_nodes,
                    "combinational cycle in netlist " + name_);
  return order;
}

void Netlist::validate() const {
  for (SigId id = 0; id < nodes_.size(); ++id) {
    const Node& n = nodes_[id];
    for (SigId f : n.fanin) RELOGIC_CHECK(f < nodes_.size());
    switch (n.kind) {
      case OpKind::kInput:
      case OpKind::kConst0:
      case OpKind::kConst1:
        RELOGIC_CHECK(n.fanin.empty());
        break;
      case OpKind::kBuf:
      case OpKind::kNot:
        RELOGIC_CHECK(n.fanin.size() == 1);
        break;
      case OpKind::kAnd:
      case OpKind::kOr:
      case OpKind::kNand:
      case OpKind::kNor:
      case OpKind::kXor:
      case OpKind::kXnor:
        RELOGIC_CHECK(n.fanin.size() == 2);
        break;
      case OpKind::kMux:
        RELOGIC_CHECK(n.fanin.size() == 3);
        break;
      case OpKind::kLut:
        RELOGIC_CHECK(n.fanin.size() >= 1 && n.fanin.size() <= 4);
        break;
      case OpKind::kDff:
        RELOGIC_CHECK(n.fanin.size() == 1 || n.fanin.size() == 2);
        break;
      case OpKind::kLatch:
        RELOGIC_CHECK(n.fanin.size() == 2);
        break;
    }
  }
  for (const auto& o : outputs_) RELOGIC_CHECK(o.signal < nodes_.size());
  (void)topo_order();  // throws on combinational cycles
}

}  // namespace relogic::netlist
