// Gate-level netlist: the technology-independent representation of a
// function before it is mapped onto fabric logic cells.
//
// A netlist is a DAG of nodes, each producing one signal. Storage elements
// (DFFs with optional clock-enable, transparent latches) break combinational
// cycles. A single clock domain is assumed, matching the circuits the paper
// validates on ("purely synchronous with only one single-phase clock");
// gated-clock behaviour is expressed through FF clock-enables and
// asynchronous behaviour through latches, mirroring Sec. 2 of the paper.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "relogic/common/error.hpp"

namespace relogic::netlist {

using SigId = std::uint32_t;
inline constexpr SigId kInvalidSig = 0xFFFFFFFFu;

enum class OpKind : std::uint8_t {
  kInput,
  kConst0,
  kConst1,
  kBuf,
  kNot,
  kAnd,
  kOr,
  kNand,
  kNor,
  kXor,
  kXnor,
  kMux,   ///< fanin = {d0, d1, sel}: out = sel ? d1 : d0
  kLut,   ///< generic truth table over up to 4 fanins
  kDff,   ///< fanin = {d} or {d, ce}
  kLatch, ///< fanin = {d, gate}: transparent while gate = 1
};

struct Node {
  OpKind kind = OpKind::kConst0;
  std::string name;
  std::vector<SigId> fanin;
  std::uint16_t lut = 0;  ///< kLut truth table (bit i = output for vector i)
  bool init = false;      ///< initial value of kDff / kLatch
};

/// Primary output: a named reference to an internal signal.
struct OutputPort {
  std::string name;
  SigId signal = kInvalidSig;
};

class Netlist {
 public:
  explicit Netlist(std::string name = "netlist") : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string n) { name_ = std::move(n); }

  // ---- construction -------------------------------------------------------
  SigId input(std::string name);
  SigId constant(bool value);
  SigId buf(SigId a, std::string name = "");
  SigId not_(SigId a);
  SigId and_(SigId a, SigId b);
  SigId or_(SigId a, SigId b);
  SigId nand_(SigId a, SigId b);
  SigId nor_(SigId a, SigId b);
  SigId xor_(SigId a, SigId b);
  SigId xnor_(SigId a, SigId b);
  /// out = sel ? d1 : d0.
  SigId mux(SigId d0, SigId d1, SigId sel);
  /// Generic LUT over 1..4 fanins.
  SigId lut(std::uint16_t truth, const std::vector<SigId>& fanins,
            std::string name = "");
  /// D flip-flop; `ce` gates capture when provided (gated-clock style).
  SigId dff(SigId d, std::optional<SigId> ce = std::nullopt, bool init = false,
            std::string name = "");
  /// Transparent latch: follows `d` while `gate` is 1 (asynchronous style).
  SigId latch(SigId d, SigId gate, bool init = false, std::string name = "");
  void output(std::string name, SigId signal);

  // ---- feedback construction ------------------------------------------------
  // FSM next-state logic depends on the state registers themselves. Create
  // the register first (its Q is then usable as a fanin), build the cone,
  // and close the loop with connect_dff/connect_latch. validate() rejects
  // netlists with unconnected registers.
  SigId dff_feedback(bool init = false, std::string name = "");
  void connect_dff(SigId ff, SigId d, std::optional<SigId> ce = std::nullopt);
  SigId latch_feedback(bool init = false, std::string name = "");
  void connect_latch(SigId l, SigId d, SigId gate);

  // ---- 'wide' helpers ------------------------------------------------------
  /// AND / OR / XOR reduction of a signal list (balanced tree).
  SigId and_tree(std::vector<SigId> sigs);
  SigId or_tree(std::vector<SigId> sigs);
  SigId xor_tree(std::vector<SigId> sigs);
  /// out = 1 iff the signals equal the little-endian constant `value`.
  SigId equals_const(const std::vector<SigId>& sigs, unsigned value);
  /// Ripple increment of a little-endian register vector; returns sum bits.
  std::vector<SigId> increment(const std::vector<SigId>& sigs);

  // ---- inspection -----------------------------------------------------------
  std::size_t node_count() const { return nodes_.size(); }
  const Node& node(SigId id) const {
    RELOGIC_CHECK(id < nodes_.size());
    return nodes_[id];
  }
  const std::vector<SigId>& inputs() const { return inputs_; }
  const std::vector<OutputPort>& outputs() const { return outputs_; }
  /// All kDff / kLatch nodes.
  const std::vector<SigId>& state_elements() const { return states_; }

  SigId find_input(const std::string& name) const;
  std::optional<SigId> find_output(const std::string& name) const;

  int gate_count() const;  ///< combinational nodes (excl. inputs/consts)
  int ff_count() const;
  int latch_count() const;
  bool has_gated_clock() const;  ///< any DFF with a clock-enable
  bool is_sequential() const { return !states_.empty(); }

  /// Topological order of combinational evaluation: inputs, constants and
  /// state-element outputs are sources. Throws on a combinational cycle.
  std::vector<SigId> topo_order() const;

  /// Structural checks (fanin counts, dangling refs). Throws on violation.
  void validate() const;

 private:
  SigId add(Node n);

  std::string name_;
  std::vector<Node> nodes_;
  std::vector<SigId> inputs_;
  std::vector<SigId> states_;
  std::vector<OutputPort> outputs_;
  std::unordered_map<std::string, SigId> input_by_name_;
};

}  // namespace relogic::netlist
