// Benchmark circuits: live sequential payloads for relocation experiments.
//
// The paper validates dynamic relocation on circuits from the ITC'99
// benchmark suite (Politecnico di Torino) implemented in a Virtex XCV200.
// The original VHDL is not bundled here; instead this module provides
//  * hand-written FSM circuits faithful in role and size to the small
//    ITC'99 entries (b01, b02, b06), and
//  * a deterministic random-FSM generator used to produce circuits at the
//    documented scale of the larger entries (b03/b08/b09/b10/b13-class).
// This substitution is recorded in DESIGN.md §2: the paper uses the suite
// only as live state-holding payloads whose operation must not be disturbed
// by relocation, which these circuits exercise identically (FFs, clock
// enables, dense combinational logic, registered and combinational outputs).
//
// Every generator takes a ClockingStyle so the three implementation cases
// of Sec. 2 (free-running clock, gated clock, asynchronous/latch) can each
// be exercised.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "relogic/netlist/netlist.hpp"

namespace relogic::netlist::bench {

enum class ClockingStyle : std::uint8_t {
  kFreeRunning,  ///< FFs capture on every clock edge
  kGatedClock,   ///< FFs carry a clock-enable driven by a primary input "ce"
};

/// b01-class: FSM comparing two serial flows (serial add/compare with
/// overflow detection). 5 FFs. Inputs: line1, line2 [, ce]. Outputs: outp,
/// overflw.
Netlist b01(ClockingStyle style = ClockingStyle::kFreeRunning);

/// b02-class: FSM recognising BCD digits on a serial line. 4 FFs.
/// Inputs: linea [, ce]. Outputs: u.
Netlist b02(ClockingStyle style = ClockingStyle::kFreeRunning);

/// b06-class: interrupt handler FSM (one-hot, 9 FFs).
/// Inputs: eql, cont_eql [, ce]. Outputs: uscite0, uscite1, ackout.
Netlist b06(ClockingStyle style = ClockingStyle::kFreeRunning);

/// Deterministic random Mealy machine: `ff_count` state FFs, each fed by a
/// random 4-input LUT over state bits and inputs. Matches the FF count of
/// the larger ITC'99 entries when given their published sizes.
Netlist random_fsm(const std::string& name, int ff_count, int input_count,
                   int output_count, std::uint64_t seed,
                   ClockingStyle style = ClockingStyle::kFreeRunning);

/// Pure combinational random logic (for combinational-relocation tests).
Netlist random_logic(const std::string& name, int gate_count, int input_count,
                     int output_count, std::uint64_t seed);

/// Binary up-counter with terminal-count output.
Netlist counter(int bits, ClockingStyle style = ClockingStyle::kFreeRunning);

/// Serial-in serial-out shift register.
Netlist shift_register(int bits,
                       ClockingStyle style = ClockingStyle::kFreeRunning);

/// Fibonacci LFSR (taps must be non-zero; bit0 is the output).
Netlist lfsr(int bits, std::uint32_t taps);

/// Gray-code counter.
Netlist gray_counter(int bits,
                     ClockingStyle style = ClockingStyle::kFreeRunning);

/// Asynchronous (latch-based) pipeline: `stages` transparent latches with
/// alternating phase gates "phi1"/"phi2" — the paper's third implementation
/// case. Input: din. Output: dout.
Netlist async_pipeline(int stages);

/// The circuits used by the Fig. 4 experiment: the ITC'99-class suite at
/// the published FF counts.
struct SuiteEntry {
  std::string name;
  Netlist circuit;
  int published_ffs;  ///< FF count of the original ITC'99 entry
};
std::vector<SuiteEntry> itc99_suite(ClockingStyle style);

}  // namespace relogic::netlist::bench
