// Technology mapping: netlist -> logic-cell images.
//
// Every combinational node becomes one LUT4; a DFF/latch is packed into the
// cell of its driving combinational node when that node has no other
// consumer (the Fig. 3 cell shape: combinational logic + storage element),
// and otherwise receives a pass-through LUT. The result is a list of
// MappedCells plus the signal-to-producer map the placer needs to build
// fabric nets.
#pragma once

#include <array>
#include <string>
#include <unordered_map>
#include <vector>

#include "relogic/fabric/cell.hpp"
#include "relogic/netlist/netlist.hpp"

namespace relogic::netlist {

/// One logic cell of the mapped function.
struct MappedCell {
  std::uint16_t lut = 0;
  /// Netlist signals feeding I0..I3 (kInvalidSig = unused input).
  std::array<SigId, 4> in = {kInvalidSig, kInvalidSig, kInvalidSig,
                             kInvalidSig};
  fabric::RegMode reg = fabric::RegMode::kNone;
  /// CE (FF clock-enable or latch gate) signal; kInvalidSig if none.
  SigId ce = kInvalidSig;
  bool init = false;
  /// Signal available on the X (combinational) output; kInvalidSig if the
  /// LUT is a private pass-through for the storage element.
  SigId comb_sig = kInvalidSig;
  /// Signal available on the XQ (registered) output; kInvalidSig if none.
  SigId state_sig = kInvalidSig;
  std::string name;

  int input_count() const {
    int n = 0;
    for (SigId s : in) n += (s != kInvalidSig) ? 1 : 0;
    return n;
  }
  bool uses_ce() const { return ce != kInvalidSig; }

  /// Fabric configuration equivalent of this cell.
  fabric::LogicCellConfig to_config(std::uint8_t clock_domain = 0) const;
};

/// Where a signal is produced in the mapped function.
struct Producer {
  enum class Kind : std::uint8_t { kCellX, kCellXQ, kPrimaryInput };
  Kind kind = Kind::kCellX;
  int cell = -1;      ///< index into MappedNetlist::cells (kCellX/kCellXQ)
  SigId input = kInvalidSig;  ///< netlist input id (kPrimaryInput)
};

struct MappedNetlist {
  const Netlist* source = nullptr;
  std::vector<MappedCell> cells;
  std::unordered_map<SigId, Producer> producer_of;

  int cell_count() const { return static_cast<int>(cells.size()); }
  /// CLBs needed at 4 cells per CLB.
  int clbs_needed(int cells_per_clb = 4) const {
    return (cell_count() + cells_per_clb - 1) / cells_per_clb;
  }
  const Producer& producer(SigId sig) const;
};

/// Truth table of a combinational netlist node with its fanins assigned to
/// I0.. in order. Exposed for tests.
std::uint16_t truth_table_of(const Netlist& nl, SigId node);

/// Maps a validated netlist. Throws ContractError on unsupported shapes.
MappedNetlist map_netlist(const Netlist& nl);

}  // namespace relogic::netlist
