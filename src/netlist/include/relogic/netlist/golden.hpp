// Golden-model simulator: cycle-accurate functional reference for a
// netlist, independent of the fabric.
//
// The relocation experiments compare the fabric-level simulation of a
// circuit — while its CLBs are being relocated — against this model driven
// with identical stimuli. Equality of outputs and state at every clock
// cycle is the machine-checked version of the paper's "no loss of state
// information or functional disturbance was observed".
#pragma once

#include <string>
#include <vector>

#include "relogic/netlist/netlist.hpp"

namespace relogic::netlist {

class GoldenSim {
 public:
  explicit GoldenSim(const Netlist& nl);

  /// Resets all state elements to their init values and re-settles.
  void reset();

  void set_input(SigId input, bool value);
  void set_input(const std::string& name, bool value);

  /// Propagates combinational logic and transparent latches to a fixed
  /// point (call after changing inputs between clock edges).
  void settle();

  /// One rising clock edge: every DFF whose CE is true (or absent)
  /// captures, then logic settles.
  void clock();

  bool value(SigId sig) const {
    RELOGIC_CHECK(sig < values_.size());
    return values_[sig];
  }
  bool output(const std::string& name) const;
  /// Values of all state elements, in Netlist::state_elements() order.
  std::vector<bool> state() const;
  /// Values of all outputs, in Netlist::outputs() order.
  std::vector<bool> outputs() const;

  const Netlist& netlist() const { return *nl_; }

 private:
  void propagate_comb();
  bool eval_node(SigId id) const;

  const Netlist* nl_;
  std::vector<SigId> order_;
  std::vector<bool> values_;
};

}  // namespace relogic::netlist
