#include "relogic/netlist/golden.hpp"

namespace relogic::netlist {

GoldenSim::GoldenSim(const Netlist& nl) : nl_(&nl), order_(nl.topo_order()) {
  values_.assign(nl.node_count(), false);
  reset();
}

void GoldenSim::reset() {
  for (SigId id = 0; id < nl_->node_count(); ++id) {
    const Node& n = nl_->node(id);
    switch (n.kind) {
      case OpKind::kConst1:
        values_[id] = true;
        break;
      case OpKind::kDff:
      case OpKind::kLatch:
        values_[id] = n.init;
        break;
      default:
        values_[id] = false;
    }
  }
  settle();
}

void GoldenSim::set_input(SigId input, bool value) {
  RELOGIC_CHECK(nl_->node(input).kind == OpKind::kInput);
  values_[input] = value;
}

void GoldenSim::set_input(const std::string& name, bool value) {
  set_input(nl_->find_input(name), value);
}

bool GoldenSim::eval_node(SigId id) const {
  const Node& n = nl_->node(id);
  auto v = [&](int i) { return values_[n.fanin[static_cast<std::size_t>(i)]]; };
  switch (n.kind) {
    case OpKind::kBuf:
      return v(0);
    case OpKind::kNot:
      return !v(0);
    case OpKind::kAnd:
      return v(0) && v(1);
    case OpKind::kOr:
      return v(0) || v(1);
    case OpKind::kNand:
      return !(v(0) && v(1));
    case OpKind::kNor:
      return !(v(0) || v(1));
    case OpKind::kXor:
      return v(0) != v(1);
    case OpKind::kXnor:
      return v(0) == v(1);
    case OpKind::kMux:
      return v(2) ? v(1) : v(0);
    case OpKind::kLut: {
      unsigned vec = 0;
      for (std::size_t i = 0; i < n.fanin.size(); ++i)
        vec |= (values_[n.fanin[i]] ? 1u : 0u) << i;
      return ((n.lut >> vec) & 1u) != 0;
    }
    default:
      RELOGIC_CHECK_MSG(false, "eval_node on a non-combinational node");
  }
  return false;
}

void GoldenSim::propagate_comb() {
  for (SigId id : order_) values_[id] = eval_node(id);
}

void GoldenSim::settle() {
  // Latches may be transparent, so iterate comb + latch evaluation to a
  // fixed point (bounded by the number of state elements + 1 rounds).
  propagate_comb();
  const int rounds = static_cast<int>(nl_->state_elements().size()) + 1;
  for (int r = 0; r < rounds; ++r) {
    bool changed = false;
    for (SigId s : nl_->state_elements()) {
      const Node& n = nl_->node(s);
      if (n.kind != OpKind::kLatch) continue;
      const bool gate = values_[n.fanin[1]];
      if (gate) {
        const bool d = values_[n.fanin[0]];
        if (values_[s] != d) {
          values_[s] = d;
          changed = true;
        }
      }
    }
    if (!changed) return;
    propagate_comb();
  }
  RELOGIC_CHECK_MSG(false,
                    "latch network failed to settle in netlist " + nl_->name());
}

void GoldenSim::clock() {
  // Capture phase: sample every DFF's D (and CE) simultaneously.
  std::vector<std::pair<SigId, bool>> captures;
  for (SigId s : nl_->state_elements()) {
    const Node& n = nl_->node(s);
    if (n.kind != OpKind::kDff) continue;
    const bool ce = n.fanin.size() < 2 || values_[n.fanin[1]];
    if (ce) captures.emplace_back(s, values_[n.fanin[0]]);
  }
  for (const auto& [s, d] : captures) values_[s] = d;
  settle();
}

bool GoldenSim::output(const std::string& name) const {
  auto sig = nl_->find_output(name);
  RELOGIC_CHECK_MSG(sig.has_value(), "no output named " + name);
  return values_[*sig];
}

std::vector<bool> GoldenSim::state() const {
  std::vector<bool> out;
  out.reserve(nl_->state_elements().size());
  for (SigId s : nl_->state_elements()) out.push_back(values_[s]);
  return out;
}

std::vector<bool> GoldenSim::outputs() const {
  std::vector<bool> out;
  out.reserve(nl_->outputs().size());
  for (const auto& o : nl_->outputs()) out.push_back(values_[o.signal]);
  return out;
}

}  // namespace relogic::netlist
