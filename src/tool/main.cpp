// relogic-cli — the FPGA rearrangement and programming tool (paper Sec. 4).
//
// Command-line equivalent of the JBits-based tool: given a device, a set of
// live circuits and relocation requests (source/destination CLB
// coordinates, or a whole-function move), it
//   * generates the partial configuration op sequence automatically,
//   * executes it against the fabric model while the circuits run,
//   * prints the configuration script (frames, columns, per-op time),
//   * optionally writes the partial bitstream image to a file,
//   * keeps a recovery snapshot of the full configuration throughout.
//
// Examples:
//   relogic-cli --device XCV200 --load b01@2,2 --load counter8@2,12
//               --move b01:16,2 --script
//   relogic-cli --load b02@1,1 --relocate 2,2.0:9,9.0 --out patch.bit
//   relogic-cli --load b01@2,2 --load b06@2,10 --defrag 8x8 --script
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "relogic/area/defrag.hpp"
#include "relogic/area/manager.hpp"
#include "relogic/common/logging.hpp"
#include "relogic/config/bitstream.hpp"
#include "relogic/config/controller.hpp"
#include "relogic/config/port.hpp"
#include "relogic/config/snapshot.hpp"
#include "relogic/health/fault.hpp"
#include "relogic/health/rover.hpp"
#include "relogic/netlist/benchmarks.hpp"
#include "relogic/obs/prom_export.hpp"
#include "relogic/obs/timeline.hpp"
#include "relogic/obs/trace.hpp"
#include "relogic/place/implement.hpp"
#include "relogic/reloc/engine.hpp"
#include "relogic/runtime/fleet.hpp"
#include "relogic/sched/workload.hpp"
#include "relogic/sim/harness.hpp"

namespace {

using namespace relogic;
using netlist::bench::ClockingStyle;

struct Options {
  std::string device = "XCV200";
  std::vector<std::pair<std::string, ClbCoord>> loads;
  std::vector<std::pair<std::string, ClbCoord>> moves;      // function moves
  std::vector<std::pair<place::CellSite, place::CellSite>> cell_moves;
  std::optional<std::pair<int, int>> defrag_request;
  std::string out_file;
  bool script = false;
  bool gated = false;
  bool verbose = false;
  bool map = false;

  // Configuration plane (both single-device and fleet modes): which port
  // backend prices configuration traffic, and at what write granularity
  // the controller issues frames.
  config::PortBackend port = config::PortBackend::kJtag;
  config::WriteGranularity granularity = config::WriteGranularity::kColumn;
  // Kernel backend for the config-plane hot loops; empty = process default
  // ($RELOGIC_KERNEL_BACKEND if set, else "simd").
  std::string kernel;
  // Per-device overrides for heterogeneous fleets (--device-plane).
  std::map<int, runtime::ConfigPlaneSpec> device_planes;

  // Fleet mode (--fleet N): multi-device runtime instead of the
  // single-device rearrangement tool.
  int fleet = 0;
  int random_tasks = 200;
  runtime::FleetConfig fleet_cfg;
  sched::ArrivalPattern workload = sched::ArrivalPattern::kPoisson;
  std::uint64_t seed = 1;
  double mean_interarrival_ms = 2.0;
  double mean_duration_ms = 20.0;
  std::string telemetry_file;

  // Health mode (both single-device and fleet): roving self-test sweep,
  // deterministic fault injection, quarantine.
  bool selftest = false;
  double fault_rate = 0.0;
  std::optional<std::uint64_t> fault_seed;  // defaults to --seed
  double quarantine_threshold = 0.0;
  int sweep_window = 1;
  double sweep_period_ms = 5.0;

  // Observability: deterministic trace spans (Chrome trace-event JSON,
  // Perfetto loadable). --trace-wall additionally stamps each event with
  // the wall clock, which breaks byte-identical output across runs.
  std::string trace_file;
  bool trace_wall = false;
  // Metrics timeline (--metrics-out): sim-clock sampled time series. Fleet
  // mode samples every metrics_interval_ms of simulated time inside each
  // device's DES run; single-device mode samples at phase boundaries on the
  // configuration-port clock.
  std::string metrics_file;
  double metrics_interval_ms = 5.0;
  std::string metrics_format = "json";  // json | csv | prom
};

[[noreturn]] void usage(int code) {
  std::puts(
      "relogic-cli — FPGA rearrangement and programming tool\n"
      "\n"
      "  --device NAME          XCV50..XCV1000 (default XCV200)\n"
      "  --load CIRCUIT@r,c     implement a circuit with its region origin\n"
      "                         at CLB (r,c); circuits: b01 b02 b06 b03c\n"
      "                         b08c b09c b10c b13c counterN shiftN grayN\n"
      "  --gated                use gated-clock (clock-enable) styles\n"
      "  --relocate r,c.k:r,c.k relocate one logic cell (source:dest)\n"
      "  --move NAME:r,c        relocate a whole loaded function\n"
      "  --defrag HxW           rearrange so an HxW CLB request fits\n"
      "  --out FILE             write the partial bitstream image\n"
      "  --script               print the configuration script\n"
      "  --map                  print the occupancy map before and after\n"
      "  --verbose              narrate every engine step\n"
      "\n"
      "configuration plane (single-device and fleet modes):\n"
      "  --port P               config port backend: jtag (default, the\n"
      "                         paper's 20 MHz Boundary-Scan) | selectmap8\n"
      "                         | icap32\n"
      "  --granularity G        write granularity: column (default, the\n"
      "                         JBits regime) | frame | dirty (skip frames\n"
      "                         whose bytes are unchanged)\n"
      "  --device-plane D:P:G   fleet: override port/granularity for device\n"
      "                         D (repeatable; heterogeneous fleets)\n"
      "  --kernel K             config-plane kernel backend: serial |\n"
      "                         openmp | simd (default: the\n"
      "                         $RELOGIC_KERNEL_BACKEND env var, else simd\n"
      "                         with runtime AVX2/NEON dispatch)\n"
      "\n"
      "fleet mode (multi-device runtime):\n"
      "  --fleet N              run the fleet runtime with N devices\n"
      "  --random-tasks M       admit M random tasks (default 200)\n"
      "  --workload W           arrival pattern: poisson (default) |\n"
      "                         bursty | diurnal | heavy-tail\n"
      "  --grid RxC             per-device CLB grid (default 24x24)\n"
      "  --dispatch P           round-robin | least-loaded | best-fit\n"
      "  --admission M          online (default) | offline batch planning\n"
      "  --rebalance MS         online: migrate queued requests off a\n"
      "                         device whose backlog exceeds MS (0 = off)\n"
      "  --mgmt P               none | halt | transparent (default)\n"
      "  --seed S               workload seed (default 1)\n"
      "  --mean-interarrival MS --mean-duration MS\n"
      "                         workload shape (defaults 2 / 20)\n"
      "  --no-batch             disable config-transaction batching\n"
      "  --batch-ops K          max ops coalesced per transaction\n"
      "  --selectmap            SelectMAP port model instead of JTAG\n"
      "  --threads N            worker threads (default: one per device)\n"
      "  --telemetry FILE       write the fleet telemetry JSON to FILE\n"
      "\n"
      "health (roving on-line self-test):\n"
      "  --selftest             sweep a test window across each device while\n"
      "                         it serves traffic (single-device mode: run a\n"
      "                         fabric-level rotation over the loaded\n"
      "                         circuits with the relocation engine)\n"
      "  --fault-rate R         inject stuck config-bit faults on each cell\n"
      "                         with probability R (deterministic per seed)\n"
      "  --fault-seed S         fault population seed (default: --seed)\n"
      "  --quarantine-threshold F\n"
      "                         fleet: quarantine a device once its detected\n"
      "                         faulty-CLB density exceeds F (0 = off)\n"
      "  --sweep-window N       test window width in CLB columns (default 1)\n"
      "  --sweep-period MS      fleet: interval between window advances\n"
      "                         (default 5; the single-device rover runs one\n"
      "                         continuous rotation instead)\n"
      "\n"
      "observability:\n"
      "  --trace FILE           record deterministic trace spans on the\n"
      "                         simulated clock and write Chrome trace-event\n"
      "                         JSON (load in ui.perfetto.dev)\n"
      "  --trace-wall           also stamp events with the wall clock (adds\n"
      "                         a wall_us arg; output is no longer\n"
      "                         byte-identical across runs)\n"
      "  --metrics-out FILE     write the sim-clock metrics timeline to FILE\n"
      "                         (fleet: sampled every --metrics-interval-ms\n"
      "                         of simulated time per device plus a folded\n"
      "                         fleet aggregate; single-device: sampled at\n"
      "                         phase boundaries on the port clock)\n"
      "  --metrics-interval-ms N\n"
      "                         fleet sampling period in simulated ms\n"
      "                         (default 5)\n"
      "  --metrics-format F     json (default, schema-versioned document) |\n"
      "                         csv (aggregate timeline) | prom (Prometheus\n"
      "                         text exposition of the final snapshot)\n");
  std::exit(code);
}

ClbCoord parse_coord(const std::string& s) {
  const auto comma = s.find(',');
  RELOGIC_CHECK_MSG(comma != std::string::npos, "bad coordinate: " + s);
  return ClbCoord{std::stoi(s.substr(0, comma)), std::stoi(s.substr(comma + 1))};
}

place::CellSite parse_site(const std::string& s) {
  const auto dot = s.rfind('.');
  RELOGIC_CHECK_MSG(dot != std::string::npos, "bad cell site: " + s);
  return place::CellSite{parse_coord(s.substr(0, dot)),
                         std::stoi(s.substr(dot + 1))};
}

fabric::DeviceGeometry parse_device(const std::string& name) {
  using fabric::DevicePreset;
  static const std::pair<const char*, DevicePreset> table[] = {
      {"XCV50", DevicePreset::kXCV50},   {"XCV100", DevicePreset::kXCV100},
      {"XCV150", DevicePreset::kXCV150}, {"XCV200", DevicePreset::kXCV200},
      {"XCV300", DevicePreset::kXCV300}, {"XCV400", DevicePreset::kXCV400},
      {"XCV600", DevicePreset::kXCV600}, {"XCV800", DevicePreset::kXCV800},
      {"XCV1000", DevicePreset::kXCV1000}};
  for (const auto& [n, p] : table) {
    if (name == n) return fabric::DeviceGeometry::preset(p);
  }
  throw ContractError("unknown device: " + name);
}

netlist::Netlist make_circuit(const std::string& name, bool gated) {
  using namespace netlist::bench;
  const ClockingStyle style =
      gated ? ClockingStyle::kGatedClock : ClockingStyle::kFreeRunning;
  if (name == "b01") return b01(style);
  if (name == "b02") return b02(style);
  if (name == "b06") return b06(style);
  if (name == "b03c") return random_fsm("b03c", 30, 4, 4, 0xB03, style);
  if (name == "b08c") return random_fsm("b08c", 21, 9, 4, 0xB08, style);
  if (name == "b09c") return random_fsm("b09c", 28, 1, 1, 0xB09, style);
  if (name == "b10c") return random_fsm("b10c", 17, 11, 6, 0xB10, style);
  if (name == "b13c") return random_fsm("b13c", 53, 10, 10, 0xB13, style);
  if (name.rfind("counter", 0) == 0)
    return counter(std::stoi(name.substr(7)), style);
  if (name.rfind("shift", 0) == 0)
    return shift_register(std::stoi(name.substr(5)), style);
  if (name.rfind("gray", 0) == 0)
    return gray_counter(std::stoi(name.substr(4)), style);
  throw ContractError("unknown circuit: " + name);
}

Options parse_args(int argc, char** argv) {
  Options opt;
  auto need = [&](int& i) -> std::string {
    if (i + 1 >= argc) usage(2);
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") usage(0);
    if (arg == "--device") {
      opt.device = need(i);
    } else if (arg == "--load") {
      const std::string v = need(i);
      const auto at = v.find('@');
      RELOGIC_CHECK_MSG(at != std::string::npos, "--load CIRCUIT@r,c");
      opt.loads.emplace_back(v.substr(0, at), parse_coord(v.substr(at + 1)));
    } else if (arg == "--move") {
      const std::string v = need(i);
      const auto colon = v.find(':');
      RELOGIC_CHECK_MSG(colon != std::string::npos, "--move NAME:r,c");
      opt.moves.emplace_back(v.substr(0, colon),
                             parse_coord(v.substr(colon + 1)));
    } else if (arg == "--relocate") {
      const std::string v = need(i);
      const auto colon = v.find(':');
      RELOGIC_CHECK_MSG(colon != std::string::npos,
                        "--relocate r,c.k:r,c.k");
      opt.cell_moves.emplace_back(parse_site(v.substr(0, colon)),
                                  parse_site(v.substr(colon + 1)));
    } else if (arg == "--defrag") {
      const std::string v = need(i);
      const auto x = v.find('x');
      RELOGIC_CHECK_MSG(x != std::string::npos, "--defrag HxW");
      opt.defrag_request = {std::stoi(v.substr(0, x)),
                            std::stoi(v.substr(x + 1))};
    } else if (arg == "--fleet") {
      opt.fleet = std::stoi(need(i));
      RELOGIC_CHECK_MSG(opt.fleet >= 1, "--fleet needs at least 1 device");
    } else if (arg == "--random-tasks") {
      opt.random_tasks = std::stoi(need(i));
    } else if (arg == "--workload") {
      const std::string v = need(i);
      const auto p = sched::parse_arrival_pattern(v);
      RELOGIC_CHECK_MSG(p.has_value(), "unknown workload pattern: " + v);
      opt.workload = *p;
    } else if (arg == "--admission") {
      const std::string v = need(i);
      const auto m = runtime::parse_admission_mode(v);
      RELOGIC_CHECK_MSG(m.has_value(), "unknown admission mode: " + v);
      opt.fleet_cfg.admission = *m;
    } else if (arg == "--rebalance") {
      opt.fleet_cfg.rebalance_backlog_ms = std::stod(need(i));
    } else if (arg == "--grid") {
      const std::string v = need(i);
      const auto x = v.find('x');
      RELOGIC_CHECK_MSG(x != std::string::npos, "--grid RxC");
      opt.fleet_cfg.rows = std::stoi(v.substr(0, x));
      opt.fleet_cfg.cols = std::stoi(v.substr(x + 1));
    } else if (arg == "--dispatch") {
      const std::string v = need(i);
      const auto p = runtime::parse_dispatch_policy(v);
      RELOGIC_CHECK_MSG(p.has_value(), "unknown dispatch policy: " + v);
      opt.fleet_cfg.dispatch = *p;
    } else if (arg == "--mgmt") {
      const std::string v = need(i);
      if (v == "none") {
        opt.fleet_cfg.sched.policy = sched::ManagementPolicy::kNoRearrange;
      } else if (v == "halt") {
        opt.fleet_cfg.sched.policy = sched::ManagementPolicy::kHaltAndMove;
      } else if (v == "transparent") {
        opt.fleet_cfg.sched.policy = sched::ManagementPolicy::kTransparent;
      } else {
        throw ContractError("unknown management policy: " + v);
      }
    } else if (arg == "--seed") {
      opt.seed = std::stoull(need(i));
    } else if (arg == "--mean-interarrival") {
      opt.mean_interarrival_ms = std::stod(need(i));
    } else if (arg == "--mean-duration") {
      opt.mean_duration_ms = std::stod(need(i));
    } else if (arg == "--no-batch") {
      opt.fleet_cfg.batch_config = false;
    } else if (arg == "--batch-ops") {
      opt.fleet_cfg.batch.max_ops = std::stoi(need(i));
    } else if (arg == "--selectmap") {
      opt.port = config::PortBackend::kSelectMap8;  // legacy alias
    } else if (arg == "--port") {
      const std::string v = need(i);
      const auto p = config::parse_port_backend(v);
      RELOGIC_CHECK_MSG(p.has_value(), "unknown port backend: " + v);
      opt.port = *p;
    } else if (arg == "--granularity") {
      const std::string v = need(i);
      const auto g = config::parse_write_granularity(v);
      RELOGIC_CHECK_MSG(g.has_value(), "unknown write granularity: " + v);
      opt.granularity = *g;
    } else if (arg == "--kernel") {
      const std::string v = need(i);
      RELOGIC_CHECK_MSG(config::kernel_backend(v) != nullptr,
                        "unknown kernel backend: " + v);
      opt.kernel = v;
    } else if (arg == "--device-plane") {
      // D:PORT:GRAN, e.g. 2:icap32:dirty
      const std::string v = need(i);
      const auto c1 = v.find(':');
      const auto c2 = v.find(':', c1 == std::string::npos ? c1 : c1 + 1);
      RELOGIC_CHECK_MSG(c1 != std::string::npos && c2 != std::string::npos,
                        "--device-plane D:PORT:GRANULARITY");
      const int dev = std::stoi(v.substr(0, c1));
      const auto p = config::parse_port_backend(v.substr(c1 + 1, c2 - c1 - 1));
      const auto g = config::parse_write_granularity(v.substr(c2 + 1));
      RELOGIC_CHECK_MSG(p.has_value() && g.has_value(),
                        "--device-plane D:PORT:GRANULARITY, bad value: " + v);
      opt.device_planes[dev] = runtime::ConfigPlaneSpec{*p, *g};
    } else if (arg == "--threads") {
      opt.fleet_cfg.threads = std::stoi(need(i));
    } else if (arg == "--telemetry") {
      opt.telemetry_file = need(i);
    } else if (arg == "--trace") {
      opt.trace_file = need(i);
    } else if (arg == "--trace-wall") {
      opt.trace_wall = true;
    } else if (arg == "--metrics-out") {
      opt.metrics_file = need(i);
    } else if (arg == "--metrics-interval-ms") {
      opt.metrics_interval_ms = std::stod(need(i));
      RELOGIC_CHECK_MSG(opt.metrics_interval_ms > 0.0,
                        "--metrics-interval-ms must be > 0");
    } else if (arg == "--metrics-format") {
      opt.metrics_format = need(i);
      RELOGIC_CHECK_MSG(opt.metrics_format == "json" ||
                            opt.metrics_format == "csv" ||
                            opt.metrics_format == "prom",
                        "--metrics-format json|csv|prom");
    } else if (arg == "--selftest") {
      opt.selftest = true;
    } else if (arg == "--fault-rate") {
      opt.fault_rate = std::stod(need(i));
    } else if (arg == "--fault-seed") {
      opt.fault_seed = std::stoull(need(i));
    } else if (arg == "--quarantine-threshold") {
      opt.quarantine_threshold = std::stod(need(i));
    } else if (arg == "--sweep-window") {
      opt.sweep_window = std::stoi(need(i));
    } else if (arg == "--sweep-period") {
      opt.sweep_period_ms = std::stod(need(i));
    } else if (arg == "--out") {
      opt.out_file = need(i);
    } else if (arg == "--script") {
      opt.script = true;
    } else if (arg == "--map") {
      opt.map = true;
    } else if (arg == "--gated") {
      opt.gated = true;
    } else if (arg == "--verbose") {
      opt.verbose = true;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      usage(2);
    }
  }
  // Fault injection / quarantine only mean anything with the sweep running;
  // silently ignoring them would fake a healthy fleet.
  if (!opt.selftest &&
      (opt.fault_rate > 0.0 || opt.quarantine_threshold > 0.0)) {
    std::fprintf(stderr,
                 "note: --fault-rate / --quarantine-threshold imply "
                 "--selftest; enabling the roving self-test\n");
    opt.selftest = true;
  }
  return opt;
}

/// Captures every op the controller applies, for script/bitstream output.
class OpRecorder {
 public:
  void record(const config::ConfigOp& op) { ops_.push_back(op); }
  const std::vector<config::ConfigOp>& ops() const { return ops_; }

 private:
  std::vector<config::ConfigOp> ops_;
};

std::unique_ptr<obs::Tracer> make_tracer(const Options& opt) {
  if (opt.trace_file.empty()) return nullptr;
  obs::Tracer::Options topt;
  topt.wall_clock = opt.trace_wall;
  return std::make_unique<obs::Tracer>(topt);
}

/// Renders the metrics timeline in the requested --metrics-format and
/// writes it to --metrics-out. `devices` feeds the per-device section of
/// the JSON document (empty in single-device mode).
int write_metrics(
    const Options& opt, const obs::MetricsTimeline& timeline,
    const std::vector<std::pair<int, const obs::MetricsTimeline*>>& devices,
    double sample_interval_ms) {
  std::string payload;
  if (opt.metrics_format == "json") {
    payload = obs::metrics_json_document(timeline, devices,
                                         sample_interval_ms);
  } else if (opt.metrics_format == "csv") {
    payload = timeline.to_csv();
  } else if (timeline.empty()) {
    std::fprintf(stderr, "no metrics samples to export as %s\n",
                 opt.metrics_format.c_str());
    return 1;
  } else {
    payload = obs::to_prometheus(timeline.samples().back());
  }
  std::ofstream out(opt.metrics_file);
  out << payload;
  out.flush();
  if (!out) {
    std::fprintf(stderr, "failed to write metrics to %s\n",
                 opt.metrics_file.c_str());
    return 1;
  }
  std::printf("metrics written to %s (%s)\n", opt.metrics_file.c_str(),
              opt.metrics_format.c_str());
  return 0;
}

int finish_trace(const Options& opt, const obs::Tracer& tracer) {
  if (!tracer.write_json(opt.trace_file)) {
    std::fprintf(stderr, "failed to write trace to %s\n",
                 opt.trace_file.c_str());
    return 1;
  }
  std::printf("trace written to %s (open in ui.perfetto.dev)%s\n",
              opt.trace_file.c_str(),
              tracer.dropped_events() > 0 ? " [ring buffer dropped events]"
                                          : "");
  return 0;
}

int run_fleet(const Options& opt) {
  runtime::FleetConfig cfg = opt.fleet_cfg;
  cfg.devices = opt.fleet;
  cfg.config_plane = runtime::ConfigPlaneSpec{opt.port, opt.granularity};
  cfg.device_config_planes = opt.device_planes;
  cfg.kernel = opt.kernel;
  cfg.health.selftest = opt.selftest;
  cfg.health.fault_rate = opt.fault_rate;
  cfg.health.fault_seed = opt.fault_seed.value_or(opt.seed);
  cfg.health.window_cols = opt.sweep_window;
  cfg.health.step_period_ms = opt.sweep_period_ms;
  cfg.health.quarantine_threshold = opt.quarantine_threshold;
  if (!opt.metrics_file.empty())
    cfg.metrics.sample_interval_ms = opt.metrics_interval_ms;

  sched::WorkloadParams params;
  params.pattern = opt.workload;
  params.task_count = opt.random_tasks;
  params.mean_interarrival_ms = opt.mean_interarrival_ms;
  params.mean_duration_ms = opt.mean_duration_ms;
  params.max_side = std::min(10, std::min(cfg.rows, cfg.cols));
  params.seed = opt.seed;

  runtime::FleetManager fleet(cfg);
  const std::unique_ptr<obs::Tracer> tracer = make_tracer(opt);
  if (tracer) fleet.set_tracer(tracer.get());
  fleet.submit_all(sched::WorkloadGenerator(params).generate());

  // Operator-facing wall time for the run banner below — simulation results
  // and the JSON export never see it.
  // lint-allow(wall-clock): wall time feeds the human banner, not the export
  const auto wall_start = std::chrono::steady_clock::now();
  const auto report = fleet.run();
  const double wall_ms =
      std::chrono::duration<double, std::milli>(
          // lint-allow(wall-clock): same banner-only measurement
          std::chrono::steady_clock::now() - wall_start)
          .count();

  std::printf(
      "fleet run: %d devices (%dx%d), %s admission, dispatch %s, policy %s, "
      "workload %s, port %s, granularity %s, kernel %s\n",
      cfg.devices, cfg.rows, cfg.cols,
      runtime::to_string(cfg.admission).c_str(),
      runtime::to_string(cfg.dispatch).c_str(),
      sched::to_string(cfg.sched.policy).c_str(),
      sched::to_string(opt.workload).c_str(),
      config::to_string(cfg.default_plane().port).c_str(),
      config::to_string(cfg.default_plane().granularity).c_str(),
      cfg.kernel.empty() ? config::default_kernel_backend().name().c_str()
                         : cfg.kernel.c_str());
  for (const auto& d : report.devices) {
    std::printf(
        "  device %d: %4lld admitted, %4lld done, %3lld rejected, "
        "%3lld moves, makespan %s, config txns %lld (unbatched %lld)\n",
        d.device,
        static_cast<long long>(d.telemetry.counter_value("tasks_admitted")),
        static_cast<long long>(d.telemetry.counter_value("tasks_completed")),
        static_cast<long long>(d.telemetry.counter_value("tasks_rejected")),
        static_cast<long long>(
            d.telemetry.counter_value("rearrangement_moves")),
        d.stats.makespan.to_string().c_str(),
        static_cast<long long>(
            d.telemetry.counter_value("config_transactions")),
        static_cast<long long>(
            d.telemetry.counter_value("config_transactions_unbatched")));
  }
  std::printf(
      "aggregate: %d admitted, %d completed, %d rejected, %d rebalanced, "
      "makespan %s\n",
      report.admitted, report.completed, report.rejected, report.rebalanced,
      report.makespan.to_string().c_str());
  if (cfg.health.enabled()) {
    std::printf(
        "health: %lld CLBs swept (%lld rotations), %d tested, %d faulty "
        "cells detected (%lld CLBs masked), %d devices quarantined\n",
        static_cast<long long>(
            report.aggregate.counter_value("swept_clbs")),
        static_cast<long long>(
            report.aggregate.counter_value("sweep_rotations")),
        report.tested_clbs, report.faulty_cells,
        static_cast<long long>(
            report.aggregate.counter_value("faulty_clbs")),
        report.quarantined);
  }
  std::printf(
      "throughput: %.1f tasks/s (model), wall %.1f ms; config txns %lld vs "
      "%lld unbatched\n",
      report.throughput_tasks_per_s(), wall_ms,
      static_cast<long long>(
          report.aggregate.counter_value("config_transactions")),
      static_cast<long long>(
          report.aggregate.counter_value("config_transactions_unbatched")));

  if (!opt.telemetry_file.empty()) {
    std::ofstream out(opt.telemetry_file);
    out << report.to_json();
    out.flush();
    if (!out) {
      std::fprintf(stderr, "failed to write telemetry to %s\n",
                   opt.telemetry_file.c_str());
      return 1;
    }
    std::printf("telemetry written to %s\n", opt.telemetry_file.c_str());
  } else {
    std::printf("\n%s", report.to_json().c_str());
  }
  if (!opt.metrics_file.empty()) {
    std::vector<std::pair<int, const obs::MetricsTimeline*>> parts;
    parts.reserve(report.devices.size());
    for (const auto& d : report.devices)
      parts.emplace_back(d.device, &d.timeline);
    const int rc = write_metrics(opt, report.timeline, parts,
                                 cfg.metrics.sample_interval_ms);
    if (rc != 0) return rc;
  }
  if (tracer) return finish_trace(opt, *tracer);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Options opt = parse_args(argc, argv);
    if (opt.verbose) set_log_level(LogLevel::kInfo);
    if (opt.fleet > 0) return run_fleet(opt);

    fabric::Fabric fab(parse_device(opt.device));
    const fabric::DelayModel dm;
    const std::unique_ptr<config::ConfigPort> port_owner =
        config::make_port(opt.port);
    const config::ConfigPort& port = *port_owner;
    config::ConfigController controller(
        fab, port, opt.granularity,
        opt.kernel.empty() ? nullptr : config::kernel_backend(opt.kernel));
    // Single-device tracing: one pid with a config-port lane (every
    // transaction the controller applies) and a health lane (the rover's
    // window spans), both on the cumulative port-busy clock.
    const std::unique_ptr<obs::Tracer> tracer = make_tracer(opt);
    obs::TraceTrack tr_health;
    if (tracer) {
      controller.set_trace(tracer->track(0, 0, opt.device, "config-port"));
      tr_health = tracer->track(0, 1, opt.device, "health");
    }
    sim::FabricSim sim(fab, dm);
    sim.add_clock(sim::ClockSpec{});
    place::Implementer implementer(fab, dm);
    place::Router router(fab, dm);
    reloc::RelocationEngine engine(controller, router, &sim);
    config::SnapshotKeeper snapshots(fab);

    // ---- load circuits ------------------------------------------------------
    std::vector<netlist::Netlist> netlists;
    std::vector<place::Implementation> impls;
    std::vector<std::unique_ptr<sim::CircuitHarness>> harnesses;
    for (const auto& [name, origin] : opt.loads) {
      netlists.push_back(make_circuit(name, opt.gated));
    }
    for (std::size_t i = 0; i < netlists.size(); ++i) {
      const auto mapped = netlist::map_netlist(netlists[i]);
      place::ImplementOptions iopt;
      iopt.region =
          place::suggest_region(mapped, opt.loads[i].second, fab.geometry());
      impls.push_back(implementer.implement(mapped, iopt));
      std::printf("loaded %-10s %4d cells in %s\n",
                  impls.back().name.c_str(), impls.back().cell_count(),
                  impls.back().region.to_string().c_str());
    }
    for (std::size_t i = 0; i < impls.size(); ++i) {
      harnesses.push_back(std::make_unique<sim::CircuitHarness>(
          sim, netlists[i], impls[i]));
    }

    // Warm the circuits up so relocations happen against live state.
    Rng rng(2003);
    for (auto& h : harnesses) {
      for (int c = 0; c < 10; ++c) {
        if (!h->step_random(rng).ok()) {
          std::fprintf(stderr, "circuit failed pre-relocation lockstep\n");
          return 1;
        }
      }
    }

    // Occupancy map rendering (the Fig. 7 floorplan view, textually).
    auto print_map = [&](const char* when) {
      if (!opt.map) return;
      area::AreaManager view(fab.geometry().clb_rows, fab.geometry().clb_cols);
      for (const auto& impl : impls) view.allocate_at(impl.name, impl.region);
      std::printf("\n%s (fragmentation %.3f)\n%s", when, view.fragmentation(),
                  view.to_ascii().c_str());
    };
    print_map("occupancy before rearrangement");

    snapshots.take("before-rearrangement");  // the recovery copy

    std::vector<config::ConfigOp> executed;
    const auto totals_before = controller.totals();

    // Phase-boundary metrics sampling: the single-device tool has no DES
    // run, so each completed phase lands one cumulative snapshot of the
    // controller's totals at the port-busy instant it finished (phases that
    // moved nothing coalesce into the previous row).
    runtime::Telemetry metrics_live;
    obs::MetricsTimeline metrics_timeline;
    const auto sample_metrics = [&] {
      if (opt.metrics_file.empty()) return;
      const auto tot = controller.totals();
      const auto set_abs = [&](const char* name, std::int64_t v) {
        auto& c = metrics_live.counter(name);
        c.add(v - c.value());
      };
      set_abs("config_transactions", tot.ops);
      set_abs("frame_writes", tot.frames_written);
      set_abs("frame_writes_clean_skipped", tot.frames_skipped);
      set_abs("column_writes", tot.columns_touched);
      metrics_live.gauge("port_busy_ms").set(tot.time.milliseconds());
      metrics_timeline.record(tot.time, metrics_live);
    };
    sample_metrics();  // baseline: the initial circuit configurations

    // ---- explicit cell relocations ----------------------------------------
    for (const auto& [from, to] : opt.cell_moves) {
      place::Implementation* owner = nullptr;
      int index = -1;
      for (auto& impl : impls) {
        for (int k = 0; k < impl.cell_count(); ++k) {
          if (impl.sites[static_cast<std::size_t>(k)] == from) {
            owner = &impl;
            index = k;
          }
        }
      }
      if (owner == nullptr) {
        std::fprintf(stderr, "no loaded cell at %s\n",
                     from.to_string().c_str());
        return 1;
      }
      const auto report = engine.relocate_cell(*owner, index, to);
      std::printf("relocated %s\n", report.to_string().c_str());
    }
    sample_metrics();  // after cell relocations

    // ---- whole-function moves ----------------------------------------------
    for (const auto& [name, origin] : opt.moves) {
      place::Implementation* impl = nullptr;
      for (auto& candidate : impls) {
        if (candidate.name == name) impl = &candidate;
      }
      if (impl == nullptr) {
        std::fprintf(stderr, "no loaded function named %s\n", name.c_str());
        return 1;
      }
      const ClbRect dest{origin.row, origin.col, impl->region.height,
                         impl->region.width};
      const auto report = engine.relocate_function(*impl, dest);
      std::printf("moved %-10s -> %s: %d cells, %d frames, config %s\n",
                  name.c_str(), dest.to_string().c_str(),
                  static_cast<int>(report.cells.size()),
                  report.frames_written,
                  report.config_time.to_string().c_str());
    }
    sample_metrics();  // after whole-function moves

    // ---- defragmentation -----------------------------------------------------
    if (opt.defrag_request) {
      area::AreaManager mgr(fab.geometry().clb_rows, fab.geometry().clb_cols);
      std::vector<area::RegionId> region_of(impls.size());
      for (std::size_t i = 0; i < impls.size(); ++i) {
        region_of[i] = mgr.allocate_at(impls[i].name, impls[i].region);
      }
      const auto [h, w] = *opt.defrag_request;
      std::printf("fragmentation before: %.3f, largest free %s\n",
                  mgr.fragmentation(),
                  mgr.largest_free_rect().to_string().c_str());
      const auto plan = area::plan_for_request(mgr, h, w);
      if (!plan) {
        std::fprintf(stderr, "no rearrangement makes %dx%d fit\n", h, w);
        return 1;
      }
      for (const auto& mv : plan->moves) {
        for (std::size_t i = 0; i < impls.size(); ++i) {
          if (region_of[i] == mv.region) {
            const auto report = engine.relocate_function(impls[i], mv.to);
            mgr.move(mv.region, mv.to);
            std::printf("defrag move %-10s %s -> %s (%s config)\n",
                        impls[i].name.c_str(), mv.from.to_string().c_str(),
                        mv.to.to_string().c_str(),
                        report.config_time.to_string().c_str());
          }
        }
      }
      std::printf("request slot: %s\n", plan->request_slot.to_string().c_str());
    }
    sample_metrics();  // after defragmentation

    // ---- roving self-test (single-device): a full fabric-level rotation ---
    if (opt.selftest) {
      const auto& geom = fab.geometry();
      health::FaultMap fault_map(geom.clb_rows, geom.clb_cols,
                                 geom.cells_per_clb);
      if (opt.fault_rate > 0.0) {
        health::FaultInjector injector(geom.clb_rows, geom.clb_cols,
                                       geom.cells_per_clb, opt.fault_rate,
                                       opt.fault_seed.value_or(opt.seed));
        // Faults land on currently-free cells only: a defect under already
        // running logic is a functional failure the structural self-test
        // cannot (and should not pretend to) catch — injecting there would
        // just corrupt the live circuits before the sweep ever starts.
        for (const auto& rec : injector.generate().records()) {
          if (!fab.cell(rec.clb, rec.cell).used)
            fault_map.inject(rec.clb, rec.cell, rec.fault);
        }
        fault_map.install(fab);
        std::printf("injected %d faulty cells (rate %.4f, seed %llu)\n",
                    fault_map.injected_count(), opt.fault_rate,
                    static_cast<unsigned long long>(
                        opt.fault_seed.value_or(opt.seed)));
      }
      health::RovingTester rover(controller, &engine, fault_map);
      rover.set_trace(tr_health);
      health::RoverOptions ropt;
      ropt.window_cols = opt.sweep_window;
      std::vector<place::Implementation*> live;
      for (auto& impl : impls) live.push_back(&impl);
      const auto sweep = rover.sweep(live, ropt);
      std::printf("%s\n", sweep.to_string().c_str());
      std::printf("selftest: %d/%d injected faults detected\n",
                  fault_map.detected_count(), fault_map.injected_count());
    }
    sample_metrics();  // after the self-test rotation

    print_map("occupancy after rearrangement");

    // ---- post-checks: circuits still in lockstep ---------------------------
    for (auto& h : harnesses) {
      for (int c = 0; c < 10; ++c) {
        if (!h->step_random(rng).ok()) {
          std::fprintf(stderr,
                       "lockstep failure after rearrangement — restoring "
                       "recovery copy\n");
          snapshots.restore_latest();
          return 1;
        }
      }
    }

    const auto totals = controller.totals();
    std::printf(
        "\nconfiguration summary: %d transactions, %d frames (%d "
        "clean-skipped), %d columns, port busy %s (%s, %s granularity, "
        "%s kernel)\n",
        totals.ops - totals_before.ops,
        totals.frames_written - totals_before.frames_written,
        totals.frames_skipped - totals_before.frames_skipped,
        totals.columns_touched - totals_before.columns_touched,
        (totals.time - totals_before.time).to_string().c_str(),
        port.name().c_str(),
        config::to_string(controller.granularity()).c_str(),
        controller.kernel().name().c_str());
    if (!sim.monitor().clean()) {
      std::printf("monitor violations: %zu\n",
                  sim.monitor().violations().size());
      return 1;
    }
    std::puts("monitor: no glitches, no drive conflicts, no state loss");

    if (opt.script || !opt.out_file.empty()) {
      // Re-render the executed rearrangement as a bitstream/script. Ops are
      // not captured during execution (the engine applies them directly),
      // so synthesise a summary op per loaded function region instead.
      config::BitstreamWriter writer(controller);
      std::vector<config::ConfigOp> ops;
      for (const auto& impl : impls) {
        config::ConfigOp op("final configuration of " + impl.name);
        for (int i = 0; i < impl.cell_count(); ++i) {
          const auto& site = impl.sites[static_cast<std::size_t>(i)];
          op.write_cell(site.clb, site.cell,
                        fab.cell(site.clb, site.cell));
        }
        ops.push_back(std::move(op));
      }
      if (opt.script) {
        std::printf("\n%s", writer.script(ops).c_str());
      }
      if (!opt.out_file.empty()) {
        const auto image = writer.render(ops);
        std::ofstream out(opt.out_file, std::ios::binary);
        out.write(reinterpret_cast<const char*>(image.bytes.data()),
                  static_cast<std::streamsize>(image.bytes.size()));
        out.flush();
        if (!out) {
          std::fprintf(stderr, "failed to write bitstream to %s\n",
                       opt.out_file.c_str());
          return 1;
        }
        std::printf("wrote %zu bytes (%d frames, crc %08x) to %s\n",
                    image.bytes.size(), image.frame_count, image.crc,
                    opt.out_file.c_str());
      }
    }
    if (!opt.metrics_file.empty()) {
      sample_metrics();  // closing row at the final port-busy instant
      // Phase-driven sampling has no fixed period; 0 marks that in the
      // schema (the fleet document carries the real interval instead).
      const int rc = write_metrics(opt, metrics_timeline, {}, 0.0);
      if (rc != 0) return rc;
    }
    if (tracer) return finish_trace(opt, *tracer);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "relogic-cli: %s\n", e.what());
    return 1;
  }
}
