#include "relogic/health/fault.hpp"

#include <iterator>

#include "relogic/common/error.hpp"
#include "relogic/common/rng.hpp"
#include "relogic/fabric/fabric.hpp"

namespace relogic::health {

std::pair<FaultMap::Store::const_iterator, FaultMap::Store::const_iterator>
FaultMap::clb_range(ClbCoord clb) const {
  return {faults_.lower_bound({clb.row, clb.col, 0}),
          faults_.lower_bound({clb.row, clb.col, cells_per_clb_})};
}

std::pair<FaultMap::Store::iterator, FaultMap::Store::iterator>
FaultMap::clb_range(ClbCoord clb) {
  return {faults_.lower_bound({clb.row, clb.col, 0}),
          faults_.lower_bound({clb.row, clb.col, cells_per_clb_})};
}

FaultMap::FaultMap(int rows, int cols, int cells_per_clb)
    : rows_(rows), cols_(cols), cells_per_clb_(cells_per_clb) {
  RELOGIC_CHECK(rows >= 1 && cols >= 1);
  RELOGIC_CHECK(cells_per_clb >= 1 &&
                cells_per_clb <= fabric::kMaxCellsPerClb);
}

void FaultMap::inject(ClbCoord clb, int cell, fabric::CellFault fault) {
  RELOGIC_CHECK(clb.row >= 0 && clb.row < rows_ && clb.col >= 0 &&
                clb.col < cols_ && cell >= 0 && cell < cells_per_clb_);
  auto [it, inserted] =
      faults_.try_emplace({clb.row, clb.col, cell},
                          FaultRecord{clb, cell, fault, false});
  if (!inserted) {
    if (it->second.detected) --detected_count_;
    it->second = FaultRecord{clb, cell, fault, false};
  }
}

void FaultMap::mark_detected(ClbCoord clb, int cell,
                             fabric::CellFault observed) {
  RELOGIC_CHECK(clb.row >= 0 && clb.row < rows_ && clb.col >= 0 &&
                clb.col < cols_ && cell >= 0 && cell < cells_per_clb_);
  auto [it, inserted] =
      faults_.try_emplace({clb.row, clb.col, cell},
                          FaultRecord{clb, cell, observed, true});
  if (inserted) {
    ++detected_count_;
    return;
  }
  if (!it->second.detected) {
    it->second.detected = true;
    ++detected_count_;
  }
}

int FaultMap::detect_all_in(ClbCoord clb) {
  int fresh = 0;
  auto [it, last] = clb_range(clb);
  for (; it != last; ++it) {
    if (!it->second.detected) {
      it->second.detected = true;
      ++detected_count_;
      ++fresh;
    }
  }
  return fresh;
}

bool FaultMap::has_fault(ClbCoord clb, int cell) const {
  return faults_.contains({clb.row, clb.col, cell});
}

bool FaultMap::is_detected(ClbCoord clb, int cell) const {
  const auto it = faults_.find({clb.row, clb.col, cell});
  return it != faults_.end() && it->second.detected;
}

bool FaultMap::clb_faulty(ClbCoord clb) const {
  auto [it, last] = clb_range(clb);
  for (; it != last; ++it) {
    if (it->second.detected) return true;
  }
  return false;
}

bool FaultMap::clb_has_injected(ClbCoord clb) const {
  const auto [first, last] = clb_range(clb);
  return first != last;
}

int FaultMap::injected_cells_in(ClbCoord clb) const {
  const auto [first, last] = clb_range(clb);
  return static_cast<int>(std::distance(first, last));
}

int FaultMap::detected_clb_count() const {
  int n = 0;
  ClbCoord last{-1, -1};
  // Keys are ordered {row, col, cell}: cells of one CLB are contiguous.
  for (const auto& [key, rec] : faults_) {
    if (!rec.detected) continue;
    if (rec.clb != last) {
      ++n;
      last = rec.clb;
    }
  }
  return n;
}

double FaultMap::detected_clb_density() const {
  const int total = rows_ * cols_;
  return total > 0 ? static_cast<double>(detected_clb_count()) / total : 0.0;
}

std::vector<ClbCoord> FaultMap::detected_clbs() const {
  std::vector<ClbCoord> out;
  for (const auto& [key, rec] : faults_) {
    if (rec.detected && (out.empty() || out.back() != rec.clb))
      out.push_back(rec.clb);
  }
  return out;
}

std::vector<FaultRecord> FaultMap::records() const {
  std::vector<FaultRecord> out;
  out.reserve(faults_.size());
  for (const auto& [key, rec] : faults_) out.push_back(rec);
  return out;
}

void FaultMap::install(fabric::Fabric& fabric) const {
  const auto& geom = fabric.geometry();
  RELOGIC_CHECK_MSG(geom.clb_rows == rows_ && geom.clb_cols == cols_ &&
                        geom.cells_per_clb >= cells_per_clb_,
                    "fault map geometry does not match the fabric");
  for (const auto& [key, rec] : faults_)
    fabric.inject_fault(rec.clb, rec.cell, rec.fault);
}

FaultInjector::FaultInjector(int rows, int cols, int cells_per_clb,
                             double fault_rate, std::uint64_t seed)
    : rows_(rows),
      cols_(cols),
      cells_per_clb_(cells_per_clb),
      fault_rate_(fault_rate),
      seed_(seed) {
  RELOGIC_CHECK(fault_rate >= 0.0 && fault_rate <= 1.0);
}

FaultMap FaultInjector::generate() const {
  FaultMap map(rows_, cols_, cells_per_clb_);
  if (fault_rate_ <= 0.0) return map;
  // One fixed-order pass over every cell: the draw sequence (and therefore
  // the population) is a pure function of (geometry, rate, seed).
  Rng rng(seed_);
  for (int r = 0; r < rows_; ++r) {
    for (int c = 0; c < cols_; ++c) {
      for (int k = 0; k < cells_per_clb_; ++k) {
        if (!rng.next_bool(fault_rate_)) continue;
        fabric::CellFault f;
        f.lut_bit = static_cast<std::uint8_t>(rng.next_int(0, 15));
        f.stuck_value = rng.next_bool(0.5);
        map.inject(ClbCoord{r, c}, k, f);
      }
    }
  }
  return map;
}

}  // namespace relogic::health
