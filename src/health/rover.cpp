#include "relogic/health/rover.hpp"

#include <algorithm>
#include <bit>

#include "relogic/common/logging.hpp"

namespace relogic::health {

std::string SweepReport::to_string() const {
  return "sweep: " + std::to_string(window_positions) + " windows, " +
         std::to_string(clbs_tested) + "/" + std::to_string(clbs_swept) +
         " CLBs tested (" + std::to_string(cells_tested) + " cells), " +
         std::to_string(cells_relocated) + " relocated (" +
         std::to_string(cells_probed) + " dests probed), " +
         std::to_string(faults_detected) + " faults, config " +
         config_time.to_string();
}

RovingTester::RovingTester(config::ConfigController& controller,
                           reloc::RelocationEngine* engine, FaultMap& map)
    : controller_(&controller), engine_(engine), map_(&map) {}

std::set<int> RovingTester::lut_ram_columns() const {
  const auto& fab = controller_->fabric();
  const auto& geom = fab.geometry();
  std::set<int> cols;
  for (int c = 0; c < geom.clb_cols; ++c) {
    if (fab.live_lut_ram_in_col(c) > 0) cols.insert(c);
  }
  return cols;
}

std::optional<place::CellSite> RovingTester::find_dest(
    place::CellSite from, const ClbRect& window,
    const std::vector<place::Implementation*>& live,
    const std::set<int>& lut_ram_cols) const {
  const auto& fab = controller_->fabric();
  const auto& geom = fab.geometry();
  std::optional<place::CellSite> best;
  int best_dist = 0;
  for (int r = 0; r < geom.clb_rows; ++r) {
    for (int c = 0; c < geom.clb_cols; ++c) {
      const ClbCoord clb{r, c};
      if (window.contains(clb)) continue;
      if (lut_ram_cols.contains(c)) continue;
      // Other functions' regions keep their routing headroom.
      bool in_region = false;
      for (const auto* impl : live)
        in_region = in_region || impl->region.contains(clb);
      if (in_region) continue;
      const int dist = manhattan(from.clb, clb);
      if (best && dist >= best_dist) continue;
      for (int k = 0; k < geom.cells_per_clb; ++k) {
        if (fab.cell(clb, k).used) continue;
        if (map_->is_detected(clb, k)) continue;
        best = place::CellSite{clb, k};
        best_dist = dist;
        break;
      }
    }
  }
  return best;
}

bool RovingTester::test_cell(ClbCoord clb, int cell, const RoverOptions& opt,
                             SweepReport& report) {
  auto& fab = controller_->fabric();
  const int frame_bits = fab.geometry().frame_length_bits();
  bool faulty = false;
  fabric::CellFault observed;
  for (const std::uint16_t pattern : opt.patterns) {
    fabric::LogicCellConfig probe;
    probe.used = true;
    probe.lut = pattern;
    config::ConfigOp op("selftest " + clb.to_string() + "." +
                        std::to_string(cell));
    op.write_cell(clb, cell, probe);
    const auto res = controller_->apply(op);
    ++report.ops;
    report.frames_written += res.frames_written;
    report.config_time += res.time;
    // Readback through the same port: one transaction per column. Priced
    // on the op's full frame set (ConfigController::readback_frames), not
    // the written subset — a readback must fetch every frame it wants to
    // verify, so dirty-frame write skipping never shrinks it and sweep
    // readback cost is identical across kFrame and kDirtyFrame.
    report.config_time += controller_->port().readback_time(
        controller_->readback_frames(op), frame_bits);
    const std::uint16_t got = fab.cell(clb, cell).lut;
    if (got != pattern) {
      faulty = true;
      const std::uint16_t diff = got ^ pattern;
      observed.lut_bit = static_cast<std::uint8_t>(
          std::countr_zero(static_cast<unsigned>(diff)));
      observed.stuck_value = ((got >> observed.lut_bit) & 1u) != 0;
    }
  }
  {
    config::ConfigOp op("selftest clear " + clb.to_string() + "." +
                        std::to_string(cell));
    op.clear_cell(clb, cell);
    const auto res = controller_->apply(op);
    ++report.ops;
    report.frames_written += res.frames_written;
    report.config_time += res.time;
  }
  if (faulty) {
    map_->mark_detected(clb, cell, observed);
    ++report.faults_detected;
    if (trace_)
      trace_.instant("health", "fault " + clb.to_string(),
                     controller_->totals().time,
                     {obs::arg("cell", cell),
                      obs::arg("lut_bit", int(observed.lut_bit)),
                      obs::arg("stuck_value", observed.stuck_value)});
    RELOGIC_LOG(kInfo) << "selftest: fault at " << clb.to_string()
                       << " cell " << cell << " (bit "
                       << int(observed.lut_bit) << " stuck at "
                       << observed.stuck_value << ")";
  }
  return !faulty;
}

bool RovingTester::probe_cell(place::CellSite site, const RoverOptions& opt,
                              SweepReport& report) {
  ++report.cells_probed;
  return test_cell(site.clb, site.cell, opt, report);
}

SweepReport RovingTester::sweep(
    const std::vector<place::Implementation*>& live,
    const RoverOptions& opt) {
  RELOGIC_CHECK(opt.window_cols >= 1);
  RELOGIC_CHECK_MSG(!opt.patterns.empty(), "sweep needs test patterns");
  auto& fab = controller_->fabric();
  const auto& geom = fab.geometry();
  SweepReport report;

  // Stable for the whole rotation: the rover never relocates LUT-RAM cells
  // and never vacates into (or tests) their columns.
  const std::set<int> ram_cols = lut_ram_columns();

  for (int col = 0; col < geom.clb_cols; col += opt.window_cols) {
    const int width = std::min(opt.window_cols, geom.clb_cols - col);
    const ClbRect window{0, col, geom.clb_rows, width};
    ++report.window_positions;
    report.clbs_swept += window.area();
    const SimTime window_t0 = controller_->totals().time;
    const int relocated_before = report.cells_relocated;
    const int tested_before = report.cells_tested;

    // ---- vacate: relocate live cells out of the window -------------------
    if (engine_ != nullptr) {
      for (auto* impl : live) {
        for (int i = 0; i < impl->cell_count(); ++i) {
          const place::CellSite site =
              impl->sites[static_cast<std::size_t>(i)];
          if (!window.contains(site.clb)) continue;
          // Cells in a live-LUT-RAM column stay put: clearing the original
          // would rewrite that column's frames (illegal on-line), and the
          // column is excluded from testing anyway.
          if (ram_cols.contains(site.clb.col)) continue;
          // Readback-verify the destination before trusting it with live
          // logic; a failed probe records the fault, and find_dest then
          // skips it — terminating because every failure shrinks the
          // candidate set.
          auto dest = find_dest(site, window, live, ram_cols);
          while (dest && !probe_cell(*dest, opt, report))
            dest = find_dest(site, window, live, ram_cols);
          if (!dest) continue;  // nowhere to go: tested around below
          const auto r = engine_->relocate_cell(*impl, i, *dest, opt.reloc);
          ++report.cells_relocated;
          report.ops += r.ops;
          report.frames_written += r.frames_written;
          report.config_time += r.config_time;
        }
      }
    }

    // ---- test: complementary patterns into every freed cell --------------
    // Columns holding a live LUT-RAM are excluded (paper Sec. 2): their
    // frames must not be rewritten while the system runs.
    for (int wc = col; wc < col + width; ++wc) {
      if (ram_cols.contains(wc)) {
        ++report.lut_ram_columns_skipped;
        continue;
      }

      for (int r = 0; r < geom.clb_rows; ++r) {
        const ClbCoord clb{r, wc};
        bool clb_tested = false;
        for (int k = 0; k < geom.cells_per_clb; ++k) {
          if (fab.cell(clb, k).used) {
            ++report.cells_skipped;
            continue;
          }
          if (map_->is_detected(clb, k)) continue;  // already masked
          test_cell(clb, k, opt, report);
          ++report.cells_tested;
          clb_tested = true;
        }
        if (clb_tested) ++report.clbs_tested;
      }
    }

    if (trace_)
      trace_.complete(
          "health", "window col " + std::to_string(col), window_t0,
          controller_->totals().time - window_t0,
          {obs::arg("cols", width),
           obs::arg("relocated", report.cells_relocated - relocated_before),
           obs::arg("tested", report.cells_tested - tested_before)});
  }

  ++rotations_;
  if (trace_)
    trace_.instant("health", "rotation", controller_->totals().time,
                   {obs::arg("rotation", rotations_),
                    obs::arg("faults_detected", report.faults_detected)});
  return report;
}

}  // namespace relogic::health
