// relogic::health — fault state for the roving on-line self-test.
//
// The paper's transparent relocation exists so the device can be serviced
// while running; Gericota's companion DATE-era work uses the same mechanism
// for concurrent structural test: sweep a test window across the fabric,
// relocating active logic out of its way, and exercise the freed cells.
// This header holds the bookkeeping half of that story:
//
//  * FaultMap — per-cell fault state of one device: which cells carry an
//    injected (ground-truth) defect, and which of those the tester has
//    actually observed. Consumers at every layer key off *detected* state:
//    the area manager masks detected CLBs out of occupancy, placement and
//    defrag planning; the fleet manager prices degraded capacity and
//    quarantines devices whose detected density crosses a threshold.
//  * FaultInjector — deterministic per-seed fault population: the same
//    (geometry, rate, seed) triple always yields the same defects, which is
//    what keeps fleet runs byte-identical regardless of thread count.
//
// Ground truth lives in fabric::Fabric (install() plants CellFaults whose
// corruption is observable through write/readback); the map itself never
// leaks undetected faults to planning code — detection must be earned by
// the tester sweeping the window.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "relogic/common/geometry.hpp"
#include "relogic/fabric/cell.hpp"

namespace relogic::fabric {
class Fabric;
}

namespace relogic::health {

/// One defective logic cell.
struct FaultRecord {
  ClbCoord clb;
  int cell = 0;
  fabric::CellFault fault;
  bool detected = false;
};

/// Per-cell fault state of one device (cell-granular, CLB-aggregating).
class FaultMap {
 public:
  FaultMap() = default;
  FaultMap(int rows, int cols, int cells_per_clb);

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  int cells_per_clb() const { return cells_per_clb_; }

  /// Plants a ground-truth defect (undetected until a tester finds it).
  /// Re-injecting an already-faulty cell replaces the defect.
  void inject(ClbCoord clb, int cell, fabric::CellFault fault);

  /// Records an observed defect. Cells without an injected ground truth are
  /// accepted too (a real device does not announce its faults in advance).
  void mark_detected(ClbCoord clb, int cell,
                     fabric::CellFault observed = {});

  /// Marks every injected-but-undetected fault inside `clb` detected
  /// (CLB-granular detection, used by the area-level scheduler sweep).
  /// Returns the number of newly detected cells.
  int detect_all_in(ClbCoord clb);

  bool has_fault(ClbCoord clb, int cell) const;
  bool is_detected(ClbCoord clb, int cell) const;
  /// Any *detected* fault in the CLB? (Undetected faults stay invisible —
  /// planning code must not be psychic.)
  bool clb_faulty(ClbCoord clb) const;
  /// Any injected fault in the CLB, detected or not (tester-side query).
  bool clb_has_injected(ClbCoord clb) const;
  /// Injected faulty cells inside one CLB (detected or not).
  int injected_cells_in(ClbCoord clb) const;

  int injected_count() const { return static_cast<int>(faults_.size()); }
  int detected_count() const { return detected_count_; }
  /// Distinct CLBs with at least one detected fault.
  int detected_clb_count() const;
  /// detected_clb_count() / total CLBs — the quarantine criterion.
  double detected_clb_density() const;

  /// Detected CLBs, row-major order (deterministic).
  std::vector<ClbCoord> detected_clbs() const;
  /// Every record, row-major then by cell (deterministic iteration).
  std::vector<FaultRecord> records() const;

  /// Plants every injected fault into the fabric's configuration memory so
  /// write/readback exposes them. Geometry must match.
  void install(fabric::Fabric& fabric) const;

 private:
  using Key = std::tuple<int, int, int>;  // {row, col, cell}
  using Store = std::map<Key, FaultRecord>;

  /// [first, last) over the records of one CLB — the single place encoding
  /// that a CLB's cells are contiguous under the ordered {row, col, cell}
  /// key.
  std::pair<Store::const_iterator, Store::const_iterator> clb_range(
      ClbCoord clb) const;
  std::pair<Store::iterator, Store::iterator> clb_range(ClbCoord clb);

  int rows_ = 0;
  int cols_ = 0;
  int cells_per_clb_ = 4;
  Store faults_;  // ordered: deterministic iteration
  int detected_count_ = 0;
};

/// Deterministic per-seed fault population: every cell is independently
/// defective with probability `fault_rate`; the stuck bit and polarity are
/// drawn from the same stream. Same (geometry, rate, seed) => same map.
class FaultInjector {
 public:
  FaultInjector(int rows, int cols, int cells_per_clb, double fault_rate,
                std::uint64_t seed);

  FaultMap generate() const;

 private:
  int rows_;
  int cols_;
  int cells_per_clb_;
  double fault_rate_;
  std::uint64_t seed_;
};

}  // namespace relogic::health
