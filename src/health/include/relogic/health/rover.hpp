// RovingTester — concurrent on-line structural test by window sweeping.
//
// Sweeps a test window (1–2 CLB columns wide) across a live device, exactly
// the way Gericota's companion DATE-era work rides the paper's transparent
// relocation: occupied logic cells inside the window are relocated out of
// its way with the two-phase procedure (the circuits keep running), the
// freed cells are exercised with complementary test-pattern configurations
// written through the ConfigController, readback is compared against what
// was written, and the window advances — one full rotation visits every CLB
// of the device exactly once.
//
// Two complementary LUT patterns (0x5555 / 0xAAAA by default) drive every
// truth-table bit to both polarities, so any single stuck configuration bit
// (fabric::CellFault) produces a readback mismatch on at least one pattern.
// Detections are recorded into the FaultMap; cells already known faulty are
// skipped (no point re-testing a masked cell), as are columns holding live
// LUT-RAM (the paper's Sec. 2 exclusion: their column frames must not be
// rewritten while the system runs).
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "relogic/config/controller.hpp"
#include "relogic/health/fault.hpp"
#include "relogic/place/implement.hpp"
#include "relogic/reloc/engine.hpp"

namespace relogic::health {

struct RoverOptions {
  /// Test window width in CLB columns (the paper-era tools used 1–2).
  int window_cols = 1;
  /// Complementary patterns: together they must exercise every LUT bit in
  /// both polarities for single-stuck-bit coverage.
  std::vector<std::uint16_t> patterns = {0x5555, 0xAAAA};
  /// Passed through to the relocation engine for the vacating moves.
  reloc::RelocOptions reloc;
};

/// Outcome of one full-device rotation.
struct SweepReport {
  int window_positions = 0;
  int clbs_swept = 0;       ///< CLBs the window visited (== rows * cols)
  int clbs_tested = 0;      ///< CLBs with at least one cell pattern-tested
  int cells_tested = 0;
  int cells_relocated = 0;  ///< live cells moved out of the window's way
  int cells_probed = 0;     ///< destination cells pre-tested before a move
  int cells_skipped = 0;    ///< occupied cells that could not be vacated
  int lut_ram_columns_skipped = 0;
  int faults_detected = 0;  ///< newly detected faulty cells
  int ops = 0;              ///< configuration transactions issued
  int frames_written = 0;
  SimTime config_time = SimTime::zero();  ///< port busy: writes + readback

  std::string to_string() const;
};

class RovingTester {
 public:
  /// `engine` may be null: occupied cells are then skipped instead of
  /// relocated (free-space-only testing).
  RovingTester(config::ConfigController& controller,
               reloc::RelocationEngine* engine, FaultMap& map);

  /// One full rotation over the device. `live` lists the implementations
  /// whose cells the rover may relocate out of the window.
  SweepReport sweep(const std::vector<place::Implementation*>& live,
                    const RoverOptions& opt = {});

  int rotations_completed() const { return rotations_; }

  /// Attaches a trace lane: one 'X' span per window position on the
  /// controller's cumulative port-busy clock (so window spans align with
  /// the controller's own config-op spans), plus fault-detection and
  /// rotation instants. Default handle = disabled.
  void set_trace(obs::TraceTrack track) { trace_ = track; }

 private:
  /// Nearest usable destination outside the window for a cell being
  /// vacated: unused, not detected-faulty, outside every live region, and
  /// never in a column holding live LUT-RAM (config writes there are
  /// illegal while the system runs — paper Sec. 2).
  std::optional<place::CellSite> find_dest(
      place::CellSite from, const ClbRect& window,
      const std::vector<place::Implementation*>& live,
      const std::set<int>& lut_ram_cols) const;

  /// Columns currently holding a live LUT-RAM cell.
  std::set<int> lut_ram_columns() const;

  /// Readback-verifies a free cell before live logic is relocated onto it
  /// (write both patterns, compare, clear). A mismatch records the fault —
  /// so no relocation ever lands on a faulty cell, even an undetected one.
  bool probe_cell(place::CellSite site, const RoverOptions& opt,
                  SweepReport& report);

  /// One pattern write + readback + compare on a free cell; records the
  /// fault on mismatch. Shared by the window test and the probe.
  bool test_cell(ClbCoord clb, int cell, const RoverOptions& opt,
                 SweepReport& report);

  config::ConfigController* controller_;
  reloc::RelocationEngine* engine_;
  FaultMap* map_;
  int rotations_ = 0;
  obs::TraceTrack trace_;
};

}  // namespace relogic::health
