#include "relogic/place/implement.hpp"

#include <algorithm>
#include <climits>
#include <cmath>
#include <cstdint>

#include "relogic/common/logging.hpp"

namespace relogic::place {

using fabric::NetId;
using fabric::NodeId;
using netlist::kInvalidSig;
using netlist::Producer;
using netlist::SigId;

fabric::NetId Implementation::net_for(SigId sig) const {
  auto it = signal_nets.find(sig);
  RELOGIC_CHECK_MSG(it != signal_nets.end(),
                    name + ": signal has no fabric net");
  return it->second;
}

NodeId Implementation::input_pad(const std::string& pname) const {
  for (const auto& [sig, pad] : input_pads) {
    if (mapped.source->node(sig).name == pname) return pad;
  }
  throw ContractError(name + ": no input pad named " + pname);
}

NodeId Implementation::output_pad(const std::string& pname) const {
  for (const auto& [n, pad] : output_pads) {
    if (n == pname) return pad;
  }
  throw ContractError(name + ": no output pad named " + pname);
}

const CellSite& Implementation::site_of_state(SigId state_sig) const {
  const Producer& p = mapped.producer(state_sig);
  RELOGIC_CHECK_MSG(p.kind == Producer::Kind::kCellXQ,
                    "signal is not a state element output");
  return sites[static_cast<std::size_t>(p.cell)];
}

ClbRect suggest_region(const netlist::MappedNetlist& mapped, ClbCoord origin,
                       const fabric::DeviceGeometry& geom) {
  const int clbs = mapped.clbs_needed(geom.cells_per_clb);
  int side = static_cast<int>(std::ceil(std::sqrt(static_cast<double>(clbs))));
  // one extra row/col of slack for the relocation procedures and routing
  int h = side + 1;
  int w = (clbs + side - 1) / side + 1;
  h = std::min(h, geom.clb_rows);
  w = std::min(w, geom.clb_cols);
  ClbRect r{origin.row, origin.col, h, w};
  RELOGIC_CHECK_MSG(geom.full_rect().contains(r),
                    "suggested region exceeds the device");
  return r;
}

Implementation Implementer::implement(netlist::MappedNetlist mapped,
                                      const ImplementOptions& opts) {
  const auto& geom = fabric_->geometry();
  RELOGIC_CHECK_MSG(geom.full_rect().contains(opts.region),
                    "implementation region exceeds the device");
  const int capacity = opts.region.area() * geom.cells_per_clb;
  if (mapped.cell_count() > capacity) {
    throw ResourceError("region " + opts.region.to_string() + " holds " +
                        std::to_string(capacity) + " cells; need " +
                        std::to_string(mapped.cell_count()));
  }

  Implementation impl;
  impl.name = mapped.source->name();
  impl.region = opts.region;
  impl.clock_domain = opts.clock_domain;

  // ---- placement: row-major over free cell slots in the region ----------
  std::vector<CellSite> slots;
  for (int r = opts.region.row; r < opts.region.row_end(); ++r) {
    for (int c = opts.region.col; c < opts.region.col_end(); ++c) {
      const ClbCoord clb{r, c};
      for (int k = 0; k < geom.cells_per_clb; ++k) {
        if (fabric_->cell(clb, k).used) continue;
        if (opts.cell_ok && !opts.cell_ok(clb, k)) continue;
        slots.push_back(CellSite{clb, k});
      }
    }
  }
  if (static_cast<int>(slots.size()) < mapped.cell_count()) {
    throw ResourceError("region " + opts.region.to_string() +
                        " has only " + std::to_string(slots.size()) +
                        " free cells; need " +
                        std::to_string(mapped.cell_count()));
  }
  for (int i = 0; i < mapped.cell_count(); ++i) {
    impl.sites.push_back(slots[static_cast<std::size_t>(i)]);
  }

  // ---- configure cells ----------------------------------------------------
  for (int i = 0; i < mapped.cell_count(); ++i) {
    const auto& mc = mapped.cells[static_cast<std::size_t>(i)];
    const CellSite& site = impl.sites[static_cast<std::size_t>(i)];
    fabric_->set_cell_config(site.clb, site.cell,
                             mc.to_config(opts.clock_domain));
  }

  // ---- collect consumers per signal ---------------------------------------
  std::unordered_map<SigId, std::vector<NodeId>> sinks_of;
  const auto& graph = fabric_->graph();
  for (int i = 0; i < mapped.cell_count(); ++i) {
    const auto& mc = mapped.cells[static_cast<std::size_t>(i)];
    const CellSite& site = impl.sites[static_cast<std::size_t>(i)];
    for (int j = 0; j < 4; ++j) {
      if (mc.in[static_cast<std::size_t>(j)] == kInvalidSig) continue;
      sinks_of[mc.in[static_cast<std::size_t>(j)]].push_back(
          graph.in_pin(site.clb, site.cell,
                       static_cast<fabric::CellPort>(j)));
    }
    if (mc.uses_ce()) {
      sinks_of[mc.ce].push_back(
          graph.in_pin(site.clb, site.cell, fabric::CellPort::kCE));
    }
  }

  impl.mapped = std::move(mapped);

  // ---- create nets and route ---------------------------------------------
  auto source_pin = [&](SigId sig) -> NodeId {
    const Producer& p = impl.mapped.producer(sig);
    switch (p.kind) {
      case Producer::Kind::kCellX: {
        const CellSite& s = impl.sites[static_cast<std::size_t>(p.cell)];
        return graph.out_pin(s.clb, s.cell, false);
      }
      case Producer::Kind::kCellXQ: {
        const CellSite& s = impl.sites[static_cast<std::size_t>(p.cell)];
        return graph.out_pin(s.clb, s.cell, true);
      }
      case Producer::Kind::kPrimaryInput:
        return fabric::kInvalidNode;  // handled by pad allocation
    }
    return fabric::kInvalidNode;
  };

  auto net_of = [&](SigId sig) -> NetId {
    auto it = impl.signal_nets.find(sig);
    if (it != impl.signal_nets.end()) return it->second;
    const NetId net =
        fabric_->create_net(impl.name + "." +
                            std::to_string(static_cast<unsigned>(sig)));
    impl.signal_nets.emplace(sig, net);
    const Producer& p = impl.mapped.producer(sig);
    if (p.kind == Producer::Kind::kPrimaryInput) {
      const NodeId pad = allocate_pad(impl.region, net);
      impl.input_pads.emplace_back(sig, pad);
      fabric_->attach_source(net, pad);
    } else {
      fabric_->attach_source(net, source_pin(sig));
    }
    return net;
  };

  for (auto& [sig, pins] : sinks_of) {
    const NetId net = net_of(sig);
    // Route nearest sink first: keeps trees compact.
    std::sort(pins.begin(), pins.end(), [&](NodeId a, NodeId b) {
      return graph.info(a).tile < graph.info(b).tile;
    });
    for (NodeId pin : pins) router_.route_sink(net, pin, opts.route);
  }

  // ---- primary outputs get pads -------------------------------------------
  for (const auto& port : impl.mapped.source->outputs()) {
    const NetId net = net_of(port.signal);
    const NodeId pad = allocate_pad(impl.region, net);
    impl.output_pads.emplace_back(port.name, pad);
    router_.route_sink(net, pad, opts.route);
  }

  RELOGIC_LOG(kInfo) << "implemented " << impl.name << " in "
                     << impl.region.to_string() << ": " << impl.cell_count()
                     << " cells, " << impl.signal_nets.size() << " nets";
  return impl;
}

NodeId Implementer::allocate_pad(ClbRect near, NetId net) {
  const auto& geom = fabric_->geometry();
  const auto& graph = fabric_->graph();
  const ClbCoord center{near.row + near.height / 2, near.col + near.width / 2};

  NodeId best = fabric::kInvalidNode;
  int best_dist = INT32_MAX;
  for (int r = 0; r < geom.clb_rows; ++r) {
    for (int c = 0; c < geom.clb_cols; ++c) {
      const ClbCoord t{r, c};
      if (!geom.is_boundary(t)) continue;
      for (int p = 0; p < geom.pads_per_tile; ++p) {
        const NodeId pad = graph.pad(t, p);
        if (!graph.is_free(pad)) continue;
        const int d = manhattan(t, center);
        if (d < best_dist) {
          best_dist = d;
          best = pad;
        }
      }
    }
  }
  if (best == fabric::kInvalidNode) {
    throw ResourceError("no free IOB pad available");
  }
  (void)net;
  return best;
}

void Implementer::remove(const Implementation& impl) {
  for (const auto& [sig, net] : impl.signal_nets) {
    if (fabric_->net_exists(net)) fabric_->destroy_net(net);
  }
  for (const CellSite& s : impl.sites) {
    fabric_->clear_cell(s.clb, s.cell);
  }
  RELOGIC_LOG(kInfo) << "removed " << impl.name << " from "
                     << impl.region.to_string();
}

}  // namespace relogic::place
