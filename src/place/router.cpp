#include "relogic/place/router.hpp"

#include <algorithm>
#include <queue>
#include <unordered_map>
#include <unordered_set>

namespace relogic::place {

using fabric::NetId;
using fabric::NodeId;
using fabric::NodeInfo;
using fabric::NodeKind;

namespace {

struct QueueItem {
  std::int64_t f = 0;  // g + h, picoseconds
  std::int64_t g = 0;
  /// Either a plain NodeId or a (node << 1 | touched-tree) search key.
  std::uint64_t node = fabric::kInvalidNode;
  bool operator>(const QueueItem& o) const { return f > o.f; }
};

bool node_blocked(const fabric::RoutingGraph& graph, NodeId n, NetId net,
                  const RouteOptions& opt, const NodeInfo& info) {
  const NetId occ = graph.occupant(n);
  if (occ != fabric::kNoNet && occ != net) return true;
  if (opt.avoid_nodes.contains(n)) return true;
  if (!opt.allow_longs &&
      (info.kind == NodeKind::kLongRow || info.kind == NodeKind::kLongCol))
    return true;
  if (!opt.avoid_columns.empty()) {
    // PIPs into a node are programmed in the node's own tile column (longs:
    // in the source tile, handled conservatively by also checking wires).
    if (info.kind != NodeKind::kLongRow && info.kind != NodeKind::kLongCol &&
        opt.avoid_columns.contains(info.tile.col))
      return true;
  }
  return false;
}

}  // namespace

std::vector<NodeId> Router::find_path(NetId net, NodeId sink,
                                      const RouteOptions& opt) const {
  const auto& tree = fabric_->net(net);
  std::vector<NodeId> seeds = tree.nodes();
  RELOGIC_CHECK_MSG(!seeds.empty(),
                    "net has no tree to route from; use find_path_from");
  return find_path_from(seeds, net, sink, opt);
}

std::vector<NodeId> Router::find_path_from(std::span<const NodeId> seeds,
                                           NetId net, NodeId sink,
                                           const RouteOptions& opt) const {
  const auto& graph = fabric_->graph();
  const auto& skel = graph.skeleton();
  const NodeInfo sink_info = skel.info(sink);
  RELOGIC_CHECK_MSG(
      sink_info.kind == NodeKind::kInPin || sink_info.kind == NodeKind::kPad,
      "route sink must be an input pin or a pad");
  {
    const NetId occ = graph.occupant(sink);
    if (occ != fabric::kNoNet && occ != net)
      throw ResourceError("route sink " + sink_info.to_string() +
                          " is occupied by another net");
  }

  // Admissible-ish heuristic: one single line + one PIP per remaining tile.
  const std::int64_t per_tile =
      (dm_->single_delay + dm_->pip_delay).picoseconds();
  auto heuristic = [&](const NodeInfo& info) -> std::int64_t {
    if (info.kind == NodeKind::kLongRow)
      return std::abs(info.tile.row - sink_info.tile.row) * per_tile;
    if (info.kind == NodeKind::kLongCol)
      return std::abs(info.tile.col - sink_info.tile.col) * per_tile;
    return manhattan(info.tile, sink_info.tile) * per_tile;
  };

  // Search state: (node, touched-tree bit). A path may join the net's
  // existing tree at most once and never re-enter it after leaving —
  // re-joining upstream of the leave point would close a cycle through
  // the tree. Riding the tree (net-node to net-node) must follow existing
  // edge directions for the same reason.
  std::priority_queue<QueueItem, std::vector<QueueItem>, std::greater<>> open;
  std::unordered_map<std::uint64_t, std::int64_t> best_g;
  std::unordered_map<std::uint64_t, std::uint64_t> parent;
  auto key_of = [](NodeId n, bool touched) {
    return (static_cast<std::uint64_t>(n) << 1) | (touched ? 1u : 0u);
  };

  std::unordered_set<std::uint64_t> tree_edges;
  if (fabric_->net_exists(net)) {
    for (const auto& e : fabric_->net(net).edges) {
      tree_edges.insert((static_cast<std::uint64_t>(e.from) << 32) | e.to);
    }
  }

  for (NodeId s : seeds) {
    const NodeInfo info = skel.info(s);
    // Seeds belonging to the net are never blocked by their own occupancy;
    // the sink itself is never a seed (a trivial path would leave the sink
    // orphaned when a parallel branch is later pruned).
    if (s == sink || opt.avoid_nodes.contains(s)) continue;
    const bool touched = graph.occupant(s) == net;
    best_g.try_emplace(key_of(s, touched), 0);
    open.push(QueueItem{heuristic(info), 0, key_of(s, touched)});
  }
  RELOGIC_CHECK_MSG(!best_g.empty(), "no usable route seeds");

  int expansions = 0;
  while (!open.empty()) {
    const QueueItem item = open.top();
    open.pop();
    const NodeId item_node = static_cast<NodeId>(item.node >> 1);
    const bool item_touched = (item.node & 1) != 0;
    if (item_node == sink) {
      // Reconstruct.
      std::vector<NodeId> path{sink};
      std::uint64_t cur = item.node;
      while (true) {
        auto it = parent.find(cur);
        if (it == parent.end()) break;
        cur = it->second;
        path.push_back(static_cast<NodeId>(cur >> 1));
      }
      std::reverse(path.begin(), path.end());
      return path;
    }
    auto bg = best_g.find(item.node);
    if (bg != best_g.end() && item.g > bg->second) continue;  // stale
    if (++expansions > opt.max_expansions) break;

    const bool item_in_net = graph.occupant(item_node) == net;
    for (NodeId next : skel.fanout(item_node)) {
      const NodeInfo info = skel.info(next);
      if (next == sink) {
        if (node_blocked(graph, next, net, opt, info)) continue;
      } else if (info.kind == NodeKind::kInPin || info.kind == NodeKind::kPad ||
                 info.kind == NodeKind::kOutPin) {
        continue;  // do not route *through* pins
      } else if (node_blocked(graph, next, net, opt, info)) {
        continue;
      }
      const bool next_in_net = graph.occupant(next) == net;
      if (next_in_net && next != sink) {
        if (item_in_net) {
          // Riding: only along existing tree directions.
          const std::uint64_t ekey =
              (static_cast<std::uint64_t>(item_node) << 32) | next;
          if (!tree_edges.contains(ekey)) continue;
        } else if (item_touched) {
          continue;  // re-joining after leaving the tree: cycle risk
        }
      }
      const bool next_touched = item_touched || next_in_net;
      const std::int64_t g =
          item.g +
          (dm_->pip_delay + dm_->node_delay(info.kind)).picoseconds();
      const std::uint64_t nkey = key_of(next, next_touched);
      auto it = best_g.find(nkey);
      if (it != best_g.end() && it->second <= g) continue;
      best_g[nkey] = g;
      parent[nkey] = item.node;
      open.push(QueueItem{g + heuristic(info), g, nkey});
    }
  }
  throw ResourceError("no route to sink " + sink_info.to_string() +
                      (expansions > opt.max_expansions
                           ? " (expansion budget exhausted)"
                           : " (congestion or avoidance constraints)"));
}

std::vector<NodeId> Router::find_path_to_net(NodeId from, NetId net,
                                             const RouteOptions& opt) const {
  const auto& graph = fabric_->graph();
  const auto& skel = graph.skeleton();
  {
    const auto kind = skel.info(from).kind;
    RELOGIC_CHECK_MSG(kind == NodeKind::kOutPin || kind == NodeKind::kPad,
                      "source-join must start at an output pin or pad");
  }
  auto is_target = [&](NodeId n) {
    if (graph.occupant(n) != net) return false;
    const NodeKind k = skel.info(n).kind;
    return k == NodeKind::kSingle || k == NodeKind::kHex ||
           k == NodeKind::kLongRow || k == NodeKind::kLongCol;
  };

  // Dijkstra (no useful heuristic toward a node set).
  std::priority_queue<QueueItem, std::vector<QueueItem>, std::greater<>> open;
  std::unordered_map<NodeId, std::int64_t> best_g;
  std::unordered_map<NodeId, NodeId> parent;
  best_g.emplace(from, 0);
  open.push(QueueItem{0, 0, from});

  int expansions = 0;
  while (!open.empty()) {
    const QueueItem item = open.top();
    open.pop();
    if (is_target(item.node)) {
      // This search keys items by plain NodeId (no touched-tree bit), so
      // the narrowing is value-preserving.
      std::vector<NodeId> path{static_cast<NodeId>(item.node)};
      NodeId cur = item.node;
      while (true) {
        auto it = parent.find(cur);
        if (it == parent.end()) break;
        cur = it->second;
        path.push_back(cur);
      }
      std::reverse(path.begin(), path.end());
      return path;
    }
    auto bg = best_g.find(item.node);
    if (bg != best_g.end() && item.g > bg->second) continue;
    if (++expansions > opt.max_expansions) break;

    for (NodeId next : skel.fanout(item.node)) {
      const NodeInfo info = skel.info(next);
      if (!is_target(next)) {
        if (info.kind == NodeKind::kInPin || info.kind == NodeKind::kPad ||
            info.kind == NodeKind::kOutPin)
          continue;
        if (node_blocked(graph, next, net, opt, info)) continue;
      } else if (opt.avoid_nodes.contains(next)) {
        continue;
      }
      const std::int64_t g =
          item.g + (dm_->pip_delay + dm_->node_delay(info.kind)).picoseconds();
      auto it = best_g.find(next);
      if (it != best_g.end() && it->second <= g) continue;
      best_g[next] = g;
      parent[next] = item.node;
      open.push(QueueItem{g, g, next});
    }
  }
  throw ResourceError("no join path from " + skel.info(from).to_string() +
                      " into net tree");
}

void Router::route_sink(NetId net, NodeId sink, const RouteOptions& opt) {
  const std::vector<NodeId> path = find_path(net, sink, opt);
  std::vector<fabric::RouteEdge> edges;
  edges.reserve(path.size());
  for (std::size_t i = 1; i < path.size(); ++i)
    edges.push_back(fabric::RouteEdge{path[i - 1], path[i]});
  fabric_->add_edges(net, edges);
}

}  // namespace relogic::place
