// Implementer: places a mapped netlist into a rectangular region of the
// fabric and routes every signal, producing an Implementation — the
// "function" unit the paper's run-time manager schedules, relocates and
// defragments.
#pragma once

#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "relogic/common/geometry.hpp"
#include "relogic/fabric/fabric.hpp"
#include "relogic/netlist/mapping.hpp"
#include "relogic/place/router.hpp"

namespace relogic::place {

/// A logic-cell site on the fabric.
struct CellSite {
  ClbCoord clb;
  int cell = 0;

  constexpr auto operator<=>(const CellSite&) const = default;
  std::string to_string() const {
    return clb.to_string() + "." + std::to_string(cell);
  }
};

struct ImplementOptions {
  ClbRect region;
  std::uint8_t clock_domain = 0;
  RouteOptions route;
  /// Optional per-cell usability filter: sites for which it returns false
  /// are never placed into. Hook for fault-aware placement — a caller
  /// holding a health::FaultMap passes `!map.is_detected(clb, cell)` here
  /// to keep fresh placements off detected-faulty cells (the in-tree
  /// schedulers mask at CLB granularity via area::AreaManager instead).
  std::function<bool(ClbCoord, int cell)> cell_ok;
};

/// A placed-and-routed function instance.
struct Implementation {
  std::string name;
  ClbRect region;
  netlist::MappedNetlist mapped;
  /// Site of each mapped cell (parallel to mapped.cells).
  std::vector<CellSite> sites;
  /// Fabric net carrying each netlist signal that needed routing.
  std::unordered_map<netlist::SigId, fabric::NetId> signal_nets;
  /// Primary input -> pad node driving it.
  std::vector<std::pair<netlist::SigId, fabric::NodeId>> input_pads;
  /// Output port name -> pad node carrying it.
  std::vector<std::pair<std::string, fabric::NodeId>> output_pads;
  std::uint8_t clock_domain = 0;

  fabric::NetId net_for(netlist::SigId sig) const;
  fabric::NodeId input_pad(const std::string& name) const;
  fabric::NodeId output_pad(const std::string& name) const;
  const CellSite& site_of_state(netlist::SigId state_sig) const;
  int cell_count() const { return static_cast<int>(sites.size()); }
};

/// Smallest near-square region holding the mapped cells with a safety
/// margin row/column for routing headroom.
ClbRect suggest_region(const netlist::MappedNetlist& mapped, ClbCoord origin,
                       const fabric::DeviceGeometry& geom);

class Implementer {
 public:
  Implementer(fabric::Fabric& fabric, const fabric::DelayModel& dm)
      : fabric_(&fabric), dm_(&dm), router_(fabric, dm) {}

  /// Places and routes `mapped` in opts.region. Throws ResourceError when
  /// the region is too small, not free, or unroutable.
  Implementation implement(netlist::MappedNetlist mapped,
                           const ImplementOptions& opts);

  /// Convenience: map + implement.
  Implementation implement(const netlist::Netlist& nl,
                           const ImplementOptions& opts) {
    return implement(netlist::map_netlist(nl), opts);
  }

  /// Removes an implementation: destroys its nets and clears its cells.
  void remove(const Implementation& impl);

  Router& router() { return router_; }

 private:
  fabric::NodeId allocate_pad(ClbRect near, fabric::NetId net);

  fabric::Fabric* fabric_;
  const fabric::DelayModel* dm_;
  Router router_;
};

}  // namespace relogic::place
