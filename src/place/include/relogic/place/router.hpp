// Maze router: A* over the fabric routing graph.
//
// Routes one sink at a time, growing a net's existing route tree (every
// already-claimed node of the net is a free starting point, which yields
// fanout trees naturally). Used both for initial implementation and — with
// avoidance constraints — by the relocation engine, which must route replica
// paths without touching columns that hold live LUT-RAMs and without
// disturbing foreign nets (it physically cannot: occupied nodes are
// impassable).
#pragma once

#include <set>
#include <span>
#include <vector>

#include "relogic/fabric/fabric.hpp"

namespace relogic::place {

struct RouteOptions {
  /// CLB columns whose PIPs must not be (re)programmed — the LUT-RAM
  /// exclusion rule of the paper, Sec. 2.
  std::set<int> avoid_columns;
  /// Additional nodes to treat as blocked.
  std::set<fabric::NodeId> avoid_nodes;
  bool allow_longs = true;
  /// Search effort bound; exceeded => ResourceError.
  int max_expansions = 4'000'000;
};

class Router {
 public:
  Router(fabric::Fabric& fabric, const fabric::DelayModel& dm)
      : fabric_(&fabric), dm_(&dm) {}

  /// Finds a path from any node of `net`'s current tree to `sink`.
  /// Returns the node sequence attachment-point..sink. Throws ResourceError
  /// if no path exists. Does not modify the fabric.
  std::vector<fabric::NodeId> find_path(fabric::NetId net, fabric::NodeId sink,
                                        const RouteOptions& opt = {}) const;

  /// Same, but seeded from an explicit node set (used before a net has any
  /// tree, or to force an attachment region).
  std::vector<fabric::NodeId> find_path_from(
      std::span<const fabric::NodeId> seeds, fabric::NetId net,
      fabric::NodeId sink, const RouteOptions& opt = {}) const;

  /// Routes and commits: find_path + Fabric::add_edges.
  void route_sink(fabric::NetId net, fabric::NodeId sink,
                  const RouteOptions& opt = {});

  /// Finds a path from a new source pin into the existing tree of `net`
  /// (ending on any wire the net already occupies). Used to parallel a
  /// replica output with the original (Fig. 5: the two paths share the
  /// downstream segments). Returns from..join-node. Does not modify the
  /// fabric.
  std::vector<fabric::NodeId> find_path_to_net(fabric::NodeId from,
                                               fabric::NetId net,
                                               const RouteOptions& opt = {}) const;

 private:
  fabric::Fabric* fabric_;
  const fabric::DelayModel* dm_;
};

}  // namespace relogic::place
