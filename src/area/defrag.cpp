#include "relogic/area/defrag.hpp"

#include <algorithm>

namespace relogic::area {

namespace {

/// Best single move by the greedy criterion — the move that most enlarges
/// the largest free rectangle; `prefer_small_victims` selects the
/// equal-gain tie-break. Shape-independent: callers decide when to stop.
std::optional<Move> best_move(AreaManager& scratch, const DefragOptions& opt,
                              bool prefer_small_victims) {
  std::optional<Move> best;
  long best_gain = -1;
  long best_dist = 0;
  long best_area = 0;
  for (const Region& r : scratch.regions()) {
    // Candidate destinations: bottom-left and best-fit placements of the
    // region's shape in the remaining free space (non-overlapping with
    // its current rect, so plans execute move-by-move on the fabric).
    for (PlacePolicy policy :
         {PlacePolicy::kBottomLeft, PlacePolicy::kBestFit}) {
      const auto dest =
          scratch.find_free_rect(r.rect.height, r.rect.width, policy);
      if (!dest || *dest == r.rect) continue;
      // Score by trial move + rollback (cheaper than copying the whole
      // manager per candidate; the rollback destination is the region's
      // own just-vacated rect, so both moves are always legal).
      scratch.move(r.id, *dest);
      const long gain = scratch.largest_free_rect().area();
      scratch.move(r.id, r.rect);
      const long dist =
          std::abs(dest->row - r.rect.row) + std::abs(dest->col - r.rect.col);
      // Relocation cost grows with the moved area (one procedure per
      // cell), so by default prefer small victims on equal gain; the
      // alternate pass prefers large ones (sometimes the small-victim
      // move blocks the only escape of a large region).
      const long area_penalty = r.rect.area();
      bool better = false;
      if (!best) {
        better = true;
      } else if (gain != best_gain) {
        better = gain > best_gain;
      } else if (area_penalty != best_area) {
        better = prefer_small_victims ? area_penalty < best_area
                                      : area_penalty > best_area;
      } else if (opt.prefer_near) {
        better = dist < best_dist;
      }
      if (better) {
        best = Move{r.id, r.rect, *dest};
        best_gain = gain;
        best_dist = dist;
        best_area = area_penalty;
      }
    }
  }
  return best;
}

/// profile[h-1] = widest w such that an all-free h x w rectangle exists.
/// Maximal free rectangles via the shared sweep, then a suffix-max pass
/// (a taller free rect contains every shorter one).
std::vector<int> free_width_profile(const AreaManager& mgr) {
  const int rows = mgr.rows();
  std::vector<int> profile(static_cast<std::size_t>(rows), 0);
  mgr.for_each_maximal_free_rect([&](const ClbRect& r) {
    profile[static_cast<std::size_t>(r.height - 1)] =
        std::max(profile[static_cast<std::size_t>(r.height - 1)], r.width);
  });
  for (int h = rows - 1; h >= 1; --h) {
    profile[static_cast<std::size_t>(h - 1)] =
        std::max(profile[static_cast<std::size_t>(h - 1)],
                 profile[static_cast<std::size_t>(h)]);
  }
  return profile;
}

}  // namespace

RequestPlanner::Sequence::Sequence(const AreaManager& mgr, bool prefer_small)
    : scratch(mgr), prefer_small_victims(prefer_small) {
  fit.push_back(free_width_profile(scratch));
}

RequestPlanner::RequestPlanner(const AreaManager& mgr, DefragOptions opt)
    : mgr_(&mgr), opt_(opt), small_victims_(mgr, /*prefer_small=*/true) {}

std::optional<DefragPlan> RequestPlanner::query(Sequence& seq, int h,
                                                int w) const {
  if (h > mgr_->rows() || w > mgr_->cols()) return std::nullopt;
  std::size_t k = 0;
  while (true) {
    if (k == seq.fit.size()) {
      // Extend the sequence by one move — exactly the move the per-shape
      // greedy pass would have taken next.
      if (seq.exhausted ||
          static_cast<int>(seq.moves.size()) >= opt_.max_moves)
        return std::nullopt;
      const auto mv = best_move(seq.scratch, opt_, seq.prefer_small_victims);
      if (!mv) {
        seq.exhausted = true;
        return std::nullopt;
      }
      seq.scratch.move(mv->region, mv->to);
      seq.moves.push_back(*mv);
      seq.fit.push_back(free_width_profile(seq.scratch));
    }
    if (seq.fit[k][static_cast<std::size_t>(h - 1)] >= w) break;
    ++k;
  }

  DefragPlan plan;
  plan.moves.assign(seq.moves.begin(),
                    seq.moves.begin() + static_cast<std::ptrdiff_t>(k));
  std::optional<ClbRect> slot;
  if (k == seq.moves.size()) {
    // Satisfied at the sequence tip: scratch is already the post-move state.
    slot = seq.scratch.find_free_rect(h, w, PlacePolicy::kBottomLeft);
  } else {
    AreaManager replay = *mgr_;
    for (const Move& m : plan.moves) replay.move(m.region, m.to);
    slot = replay.find_free_rect(h, w, PlacePolicy::kBottomLeft);
  }
  RELOGIC_CHECK(slot.has_value());
  plan.request_slot = *slot;
  return plan;
}

std::optional<DefragPlan> RequestPlanner::plan(int h, int w) const {
  RELOGIC_CHECK(h >= 1 && w >= 1);
  if (mgr_->free_clbs() < h * w) return std::nullopt;

  // Greedy with the cheap tie-break first, the alternate second, full
  // bottom-left repacking as the last resort (still bounded by max_moves).
  if (auto plan = query(small_victims_, h, w)) return plan;
  if (!large_victims_) large_victims_.emplace(*mgr_, /*prefer_small=*/false);
  if (auto plan = query(*large_victims_, h, w)) return plan;
  auto full = plan_full_compaction(*mgr_, {{h, w}});
  if (full && static_cast<int>(full->moves.size()) <= opt_.max_moves)
    return full;
  return std::nullopt;
}

std::optional<DefragPlan> plan_for_request(const AreaManager& mgr, int h,
                                           int w, const DefragOptions& opt) {
  return RequestPlanner(mgr, opt).plan(h, w);
}

std::optional<DefragPlan> plan_full_compaction(
    const AreaManager& mgr, std::optional<std::pair<int, int>> pending) {
  // Pack everything into a fresh grid: pending request first (it must end
  // up placed), then regions by area descending. Faulty CLBs masked in the
  // source keep their mask so no repacking target ever lands on one.
  AreaManager packed(mgr.rows(), mgr.cols());
  for (int r = 0; r < mgr.rows(); ++r) {
    for (int c = 0; c < mgr.cols(); ++c) {
      if (mgr.masked({r, c})) packed.mask_faulty({r, c});
    }
  }
  DefragPlan plan;

  if (pending) {
    const auto slot = packed.find_free_rect(pending->first, pending->second,
                                            PlacePolicy::kBottomLeft);
    if (!slot) return std::nullopt;
    packed.allocate_at("pending", *slot);
    plan.request_slot = *slot;
  }

  std::vector<Region> order = mgr.regions();
  std::sort(order.begin(), order.end(), [](const Region& a, const Region& b) {
    if (a.rect.area() != b.rect.area()) return a.rect.area() > b.rect.area();
    return a.id < b.id;
  });

  std::unordered_map<RegionId, ClbRect> target;
  for (const Region& r : order) {
    const auto slot =
        packed.find_free_rect(r.rect.height, r.rect.width,
                              PlacePolicy::kBottomLeft);
    if (!slot) return std::nullopt;
    packed.allocate_at(r.name, *slot);
    target[r.id] = *slot;
  }

  // Order the moves so each destination is free when its turn comes;
  // break cycles through temporary positions.
  AreaManager current = mgr;
  std::vector<RegionId> pending_moves;
  for (const Region& r : order) {
    if (target[r.id] != r.rect) pending_moves.push_back(r.id);
  }
  int stall_guard = 0;
  while (!pending_moves.empty()) {
    bool progress = false;
    for (auto it = pending_moves.begin(); it != pending_moves.end();) {
      const RegionId id = *it;
      const ClbRect from = current.region(id).rect;
      const ClbRect to = target[id];
      if (current.can_move(id, to)) {
        current.move(id, to);
        plan.moves.push_back(Move{id, from, to});
        it = pending_moves.erase(it);
        progress = true;
      } else {
        ++it;
      }
    }
    if (progress) continue;
    // Cycle: evict the first pending region to any free spot.
    const RegionId id = pending_moves.front();
    const ClbRect from = current.region(id).rect;
    const auto tmp = current.find_free_rect(from.height, from.width,
                                            PlacePolicy::kBestFit);
    if (!tmp || ++stall_guard > 2 * static_cast<int>(mgr.region_count()) + 4)
      return std::nullopt;
    current.move(id, *tmp);
    plan.moves.push_back(Move{id, from, *tmp});
  }

  if (!pending) {
    const auto biggest = current.largest_free_rect();
    plan.request_slot = biggest;
  }
  return plan;
}

}  // namespace relogic::area
