#include "relogic/area/defrag.hpp"

#include <algorithm>

namespace relogic::area {

namespace {

/// One greedy pass; `prefer_small_victims` selects the gain tie-break.
std::optional<DefragPlan> greedy_plan(const AreaManager& mgr, int h, int w,
                                      const DefragOptions& opt,
                                      bool prefer_small_victims) {
  AreaManager scratch = mgr;
  DefragPlan plan;

  while (!scratch.can_fit(h, w)) {
    if (static_cast<int>(plan.moves.size()) >= opt.max_moves)
      return std::nullopt;

    // Greedy: the move that most enlarges the largest free rectangle.
    std::optional<Move> best;
    long best_gain = -1;
    long best_dist = 0;
    long best_area = 0;
    for (const Region& r : scratch.regions()) {
      // Candidate destinations: bottom-left and best-fit placements of the
      // region's shape in the remaining free space (non-overlapping with
      // its current rect, so plans execute move-by-move on the fabric).
      for (PlacePolicy policy :
           {PlacePolicy::kBottomLeft, PlacePolicy::kBestFit}) {
        const auto dest =
            scratch.find_free_rect(r.rect.height, r.rect.width, policy);
        if (!dest || *dest == r.rect) continue;
        AreaManager trial = scratch;
        trial.move(r.id, *dest);
        const long gain = trial.largest_free_rect().area();
        const long dist =
            std::abs(dest->row - r.rect.row) + std::abs(dest->col - r.rect.col);
        // Relocation cost grows with the moved area (one procedure per
        // cell), so by default prefer small victims on equal gain; the
        // alternate pass prefers large ones (sometimes the small-victim
        // move blocks the only escape of a large region).
        const long area_penalty = r.rect.area();
        bool better = false;
        if (!best) {
          better = true;
        } else if (gain != best_gain) {
          better = gain > best_gain;
        } else if (area_penalty != best_area) {
          better = prefer_small_victims ? area_penalty < best_area
                                        : area_penalty > best_area;
        } else if (opt.prefer_near) {
          better = dist < best_dist;
        }
        if (better) {
          best = Move{r.id, r.rect, *dest};
          best_gain = gain;
          best_dist = dist;
          best_area = area_penalty;
        }
      }
    }
    if (!best) return std::nullopt;
    scratch.move(best->region, best->to);
    plan.moves.push_back(*best);
  }

  const auto slot = scratch.find_free_rect(h, w, PlacePolicy::kBottomLeft);
  RELOGIC_CHECK(slot.has_value());
  plan.request_slot = *slot;
  return plan;
}

}  // namespace

std::optional<DefragPlan> plan_for_request(const AreaManager& mgr, int h,
                                           int w, const DefragOptions& opt) {
  RELOGIC_CHECK(h >= 1 && w >= 1);
  if (mgr.free_clbs() < h * w) return std::nullopt;

  // Greedy with the cheap tie-break first, the alternate second, full
  // bottom-left repacking as the last resort (still bounded by max_moves).
  if (auto plan = greedy_plan(mgr, h, w, opt, /*prefer_small_victims=*/true))
    return plan;
  if (auto plan = greedy_plan(mgr, h, w, opt, /*prefer_small_victims=*/false))
    return plan;
  auto full = plan_full_compaction(mgr, {{h, w}});
  if (full && static_cast<int>(full->moves.size()) <= opt.max_moves)
    return full;
  return std::nullopt;
}

std::optional<DefragPlan> plan_full_compaction(
    const AreaManager& mgr, std::optional<std::pair<int, int>> pending) {
  // Pack everything into a fresh grid: pending request first (it must end
  // up placed), then regions by area descending.
  AreaManager packed(mgr.rows(), mgr.cols());
  DefragPlan plan;

  if (pending) {
    const auto slot = packed.find_free_rect(pending->first, pending->second,
                                            PlacePolicy::kBottomLeft);
    if (!slot) return std::nullopt;
    packed.allocate_at("pending", *slot);
    plan.request_slot = *slot;
  }

  std::vector<Region> order = mgr.regions();
  std::sort(order.begin(), order.end(), [](const Region& a, const Region& b) {
    if (a.rect.area() != b.rect.area()) return a.rect.area() > b.rect.area();
    return a.id < b.id;
  });

  std::unordered_map<RegionId, ClbRect> target;
  for (const Region& r : order) {
    const auto slot =
        packed.find_free_rect(r.rect.height, r.rect.width,
                              PlacePolicy::kBottomLeft);
    if (!slot) return std::nullopt;
    packed.allocate_at(r.name, *slot);
    target[r.id] = *slot;
  }

  // Order the moves so each destination is free when its turn comes;
  // break cycles through temporary positions.
  AreaManager current = mgr;
  std::vector<RegionId> pending_moves;
  for (const Region& r : order) {
    if (target[r.id] != r.rect) pending_moves.push_back(r.id);
  }
  int stall_guard = 0;
  while (!pending_moves.empty()) {
    bool progress = false;
    for (auto it = pending_moves.begin(); it != pending_moves.end();) {
      const RegionId id = *it;
      const ClbRect from = current.region(id).rect;
      const ClbRect to = target[id];
      if (current.can_move(id, to)) {
        current.move(id, to);
        plan.moves.push_back(Move{id, from, to});
        it = pending_moves.erase(it);
        progress = true;
      } else {
        ++it;
      }
    }
    if (progress) continue;
    // Cycle: evict the first pending region to any free spot.
    const RegionId id = pending_moves.front();
    const ClbRect from = current.region(id).rect;
    const auto tmp = current.find_free_rect(from.height, from.width,
                                            PlacePolicy::kBestFit);
    if (!tmp || ++stall_guard > 2 * static_cast<int>(mgr.region_count()) + 4)
      return std::nullopt;
    current.move(id, *tmp);
    plan.moves.push_back(Move{id, from, *tmp});
  }

  if (!pending) {
    const auto biggest = current.largest_free_rect();
    plan.request_slot = biggest;
  }
  return plan;
}

}  // namespace relogic::area
