// Defragmentation planning: choosing which running functions to relocate,
// and where, so that an incoming request finds contiguous space.
//
// The paper's contribution makes executing such plans free for the
// applications (transparent relocation); the *planning* follows the partial
// rearrangement ideas of Diessel et al. [5], which the paper builds on:
// move as few functions as possible, to nearby positions, until the request
// fits. Two planners are provided:
//
//  * plan_for_request — greedy minimal rearrangement: repeatedly move the
//    region that most enlarges the largest free rectangle until the
//    request fits;
//  * plan_full_compaction — bottom-left repacking of every region (the
//    expensive but thorough variant).
//
// Planners only compute Moves; executing them (and paying configuration
// time) is the caller's business: the scheduler prices each move via
// RelocationCostModel, and fabric-level users hand them to the
// RelocationEngine.
#pragma once

#include <optional>
#include <vector>

#include "relogic/area/manager.hpp"

namespace relogic::area {

struct Move {
  RegionId region = kNoRegion;
  ClbRect from;
  ClbRect to;
};

struct DefragPlan {
  std::vector<Move> moves;
  /// Where the pending request fits once the moves are done.
  ClbRect request_slot;

  int moved_clbs() const {
    int n = 0;
    for (const auto& m : moves) n += m.from.area();
    return n;
  }
};

struct DefragOptions {
  /// Bound on the number of moved regions in plan_for_request.
  int max_moves = 8;
  /// Prefer destinations near the origin of each moved region (the paper:
  /// relocate to nearby CLBs to limit path-delay growth).
  bool prefer_near = true;
};

/// Plans a minimal rearrangement so an h x w request fits. Returns nullopt
/// if total free area is insufficient or the bound is exceeded.
std::optional<DefragPlan> plan_for_request(const AreaManager& mgr, int h,
                                           int w,
                                           const DefragOptions& opt = {});

/// Shared planning front-end for one fixed area state.
///
/// The greedy search of plan_for_request picks each move by the largest
/// free-rectangle gain — a criterion independent of the request shape; only
/// the stopping point ("does h x w fit yet?") depends on it. RequestPlanner
/// therefore runs the expensive greedy search once per tie-break variant
/// (up to max_moves moves each) and records, after every prefix, the
/// max-width-per-height profile of the free space. A plan(h, w) query then
/// reduces to a profile lookup plus a cheap replay to recover the request
/// slot — exact same results as plan_for_request, amortised across every
/// request shape the on-line scheduler retries against one area state.
class RequestPlanner {
 public:
  explicit RequestPlanner(const AreaManager& mgr, DefragOptions opt = {});

  /// Identical result to plan_for_request(mgr, h, w, opt) for the state
  /// the planner was built from. The manager must not have changed.
  std::optional<DefragPlan> plan(int h, int w) const;

 private:
  /// One greedy move sequence (for one victim-preference tie-break),
  /// extended lazily one move at a time as queries demand it.
  struct Sequence {
    Sequence(const AreaManager& mgr, bool prefer_small);

    AreaManager scratch;  ///< state after all computed moves
    bool prefer_small_victims;
    bool exhausted = false;  ///< no further move exists
    std::vector<Move> moves;
    /// fit[k][h-1]: widest w such that a free h x w rect exists after the
    /// first k moves (0 if none). Monotone nonincreasing in h.
    std::vector<std::vector<int>> fit;
  };

  std::optional<DefragPlan> query(Sequence& seq, int h, int w) const;

  const AreaManager* mgr_;
  DefragOptions opt_;
  mutable Sequence small_victims_;
  /// Built lazily: only consulted when the small-victims pass fails.
  mutable std::optional<Sequence> large_victims_;
};

/// Plans bottom-left repacking of all regions (sorted by height, then
/// width). Returns the moves in execution order; positions never overlap a
/// yet-unmoved region's current rect, which a sequential executor requires.
/// `pending` (optional) is reserved first so the request ends up placed.
std::optional<DefragPlan> plan_full_compaction(
    const AreaManager& mgr, std::optional<std::pair<int, int>> pending = {});

}  // namespace relogic::area
