// On-line area manager: rectangle-granularity bookkeeping of the logic
// space.
//
// The paper's motivation (Sec. 1): as functions of different sizes are
// swapped in and out, "many small pools of resources are created as they
// are released. These unallocated areas tend to become so small that they
// fail to satisfy any request and for that reason remain unused, leading to
// a fragmentation of the FPGA logic space." The manager tracks region
// occupancy, answers allocation queries under several placement policies
// and quantifies exactly that fragmentation.
#pragma once

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "relogic/common/error.hpp"
#include "relogic/common/geometry.hpp"

namespace relogic::area {

using RegionId = int;
inline constexpr RegionId kNoRegion = 0;
/// Pseudo-occupant of a CLB masked out by the health subsystem: a detected
/// fault makes the CLB permanently unusable for placement, defragmentation
/// and relocation. Negative so it can never collide with a real region id.
inline constexpr RegionId kFaultyRegion = -1;

enum class PlacePolicy {
  kBottomLeft,  ///< first position scanning rows top-to-bottom, then cols
  kBestFit,     ///< position minimising leftover free space around the rect
};

struct Region {
  RegionId id = kNoRegion;
  std::string name;
  ClbRect rect;
};

class AreaManager {
 public:
  AreaManager(int rows, int cols);

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  int total_clbs() const { return rows_ * cols_; }

  // ---- allocation -----------------------------------------------------------
  /// Position where an h x w rect fits entirely in free space, or nullopt.
  /// `avoid` (optional) additionally excludes positions overlapping the
  /// given rectangle — how the roving self-test keeps relocations and
  /// placements out of the window it is about to reclaim.
  std::optional<ClbRect> find_free_rect(int h, int w, PlacePolicy policy,
                                        const ClbRect* avoid = nullptr) const;
  /// Allocates a region; returns kNoRegion if nothing fits.
  RegionId allocate(std::string name, int h, int w,
                    PlacePolicy policy = PlacePolicy::kBottomLeft);
  /// Allocates at an explicit position (throws if not free).
  RegionId allocate_at(std::string name, ClbRect rect);
  void release(RegionId id);
  /// Moves a region to a new (free) position — the bookkeeping side of a
  /// relocation.
  void move(RegionId id, ClbRect to);
  /// True if `move(id, to)` would succeed (cells free or the region's own).
  bool can_move(RegionId id, ClbRect to) const;

  bool exists(RegionId id) const { return regions_.contains(id); }
  const Region& region(RegionId id) const;
  std::vector<Region> regions() const;
  std::size_t region_count() const { return regions_.size(); }

  // ---- fault masking --------------------------------------------------------
  /// Permanently removes a free CLB from circulation (detected fault). The
  /// CLB must not currently host a region; free-space accounting, placement
  /// queries and the defrag planners treat it as occupied from this moment.
  void mask_faulty(ClbCoord c);
  bool masked(ClbCoord c) const { return at(c) == kFaultyRegion; }
  int masked_clbs() const { return masked_clbs_; }

  // ---- metrics ----------------------------------------------------------------
  int free_clbs() const { return free_clbs_; }
  int used_clbs() const { return total_clbs() - free_clbs_; }
  double utilization() const {
    return static_cast<double>(used_clbs()) / total_clbs();
  }
  /// Largest rectangle of entirely free CLBs.
  ClbRect largest_free_rect() const;

  /// Invokes fn(ClbRect) for every maximal-in-histogram rectangle of
  /// entirely free CLBs (row-wise histogram sweep with a stack; every
  /// maximal free rectangle of the grid is among the visited ones).
  /// Shared by largest_free_rect and the defrag planner's fit profiles so
  /// the subtle sweep lives in one place.
  template <typename Fn>
  void for_each_maximal_free_rect(Fn&& fn) const {
    std::vector<int> height(static_cast<std::size_t>(cols_), 0);
    std::vector<int> stack;
    for (int row = 0; row < rows_; ++row) {
      for (int col = 0; col < cols_; ++col) {
        const bool free =
            grid_[static_cast<std::size_t>(row) * cols_ + col] == kNoRegion;
        height[static_cast<std::size_t>(col)] =
            free ? height[static_cast<std::size_t>(col)] + 1 : 0;
      }
      stack.clear();
      for (int col = 0; col <= cols_; ++col) {
        const int h = col < cols_ ? height[static_cast<std::size_t>(col)] : 0;
        while (!stack.empty() &&
               height[static_cast<std::size_t>(stack.back())] > h) {
          const int top = stack.back();
          stack.pop_back();
          const int hh = height[static_cast<std::size_t>(top)];
          const int left = stack.empty() ? 0 : stack.back() + 1;
          const int ww = col - left;
          fn(ClbRect{row - hh + 1, left, hh, ww});
        }
        // Zero-height columns stay on the stack as barriers; otherwise a
        // later pop would wrongly extend across the gap.
        if (col < cols_) stack.push_back(col);
      }
    }
  }
  /// 1 - largest_free_rect.area / free_clbs (0 when free space is one
  /// rectangle; -> 1 as it shatters). 0 when no free space.
  double fragmentation() const;
  /// Would an h x w request fit right now?
  bool can_fit(int h, int w) const {
    return find_free_rect(h, w, PlacePolicy::kBottomLeft).has_value();
  }
  /// Occupant of one CLB (kNoRegion if free).
  RegionId at(ClbCoord c) const;

  /// ASCII rendering of the occupancy grid ('.' free, letters per region)
  /// — the textual stand-in for the paper's Fig. 7 floorplan view.
  std::string to_ascii() const;

  // ---- invariant audit (DESIGN.md §8.4) -------------------------------------
  /// Cross-checks the occupancy ledger against the region table from
  /// scratch: every region's rectangle is exactly its grid footprint, every
  /// grid cell's occupant exists, and the incremental free/masked counters
  /// match a full recount. Throws AuditError naming the first divergence.
  /// Always compiled (tests call it directly); the periodic call sites at
  /// sweep boundaries are gated on RELOGIC_AUDIT.
  void audit() const;

 private:
  void fill(const ClbRect& r, RegionId id);
  bool rect_free(const ClbRect& r) const;

  int rows_;
  int cols_;
  std::vector<RegionId> grid_;  // row-major occupancy
  std::unordered_map<RegionId, Region> regions_;
  RegionId next_id_ = 1;
  int free_clbs_;
  int masked_clbs_ = 0;
};

}  // namespace relogic::area
