#include "relogic/area/manager.hpp"

#include <algorithm>

#include "relogic/common/audit.hpp"

namespace relogic::area {

AreaManager::AreaManager(int rows, int cols)
    : rows_(rows), cols_(cols), free_clbs_(rows * cols) {
  RELOGIC_CHECK(rows >= 1 && cols >= 1);
  grid_.assign(static_cast<std::size_t>(rows) * cols, kNoRegion);
}

RegionId AreaManager::at(ClbCoord c) const {
  RELOGIC_CHECK(c.row >= 0 && c.row < rows_ && c.col >= 0 && c.col < cols_);
  return grid_[static_cast<std::size_t>(c.row) * cols_ + c.col];
}

bool AreaManager::rect_free(const ClbRect& r) const {
  if (r.row < 0 || r.col < 0 || r.row_end() > rows_ || r.col_end() > cols_)
    return false;
  for (int row = r.row; row < r.row_end(); ++row) {
    const std::size_t base = static_cast<std::size_t>(row) * cols_;
    for (int col = r.col; col < r.col_end(); ++col) {
      if (grid_[base + col] != kNoRegion) return false;
    }
  }
  return true;
}

void AreaManager::fill(const ClbRect& r, RegionId id) {
  for (int row = r.row; row < r.row_end(); ++row) {
    const std::size_t base = static_cast<std::size_t>(row) * cols_;
    for (int col = r.col; col < r.col_end(); ++col) {
      grid_[base + col] = id;
    }
  }
}

void AreaManager::mask_faulty(ClbCoord c) {
  RELOGIC_CHECK(c.row >= 0 && c.row < rows_ && c.col >= 0 && c.col < cols_);
  RegionId& slot = grid_[static_cast<std::size_t>(c.row) * cols_ + c.col];
  if (slot == kFaultyRegion) return;  // already masked
  RELOGIC_CHECK_MSG(slot == kNoRegion,
                    "cannot mask " + c.to_string() +
                        ": CLB currently hosts a region");
  slot = kFaultyRegion;
  --free_clbs_;
  ++masked_clbs_;
}

std::optional<ClbRect> AreaManager::find_free_rect(int h, int w,
                                                   PlacePolicy policy,
                                                   const ClbRect* avoid) const {
  RELOGIC_CHECK(h >= 1 && w >= 1);
  if (h > rows_ || w > cols_) return std::nullopt;

  // Per-cell count of consecutive free cells downward (for fast checks).
  std::vector<int> down(grid_.size(), 0);
  for (int col = 0; col < cols_; ++col) {
    for (int row = rows_ - 1; row >= 0; --row) {
      const std::size_t i = static_cast<std::size_t>(row) * cols_ + col;
      if (grid_[i] != kNoRegion) {
        down[i] = 0;
      } else {
        down[i] = 1 + (row + 1 < rows_
                           ? down[i + static_cast<std::size_t>(cols_)]
                           : 0);
      }
    }
  }

  std::optional<ClbRect> best;
  long best_score = 0;
  for (int row = 0; row + h <= rows_; ++row) {
    int run = 0;  // consecutive columns where h cells fit downward
    for (int col = 0; col + 1 <= cols_; ++col) {
      const std::size_t i = static_cast<std::size_t>(row) * cols_ + col;
      run = (down[i] >= h) ? run + 1 : 0;
      if (run >= w) {
        const ClbRect r{row, col - w + 1, h, w};
        if (avoid != nullptr && r.overlaps(*avoid)) continue;
        if (policy == PlacePolicy::kBottomLeft) return r;
        // Best-fit: prefer positions hugging occupied space / edges —
        // score = number of occupied-or-border cells adjacent to the rect.
        long score = 0;
        auto occupied = [&](int rr, int cc) {
          if (rr < 0 || rr >= rows_ || cc < 0 || cc >= cols_) return true;
          return grid_[static_cast<std::size_t>(rr) * cols_ + cc] != kNoRegion;
        };
        for (int cc = r.col; cc < r.col_end(); ++cc) {
          score += occupied(r.row - 1, cc) ? 1 : 0;
          score += occupied(r.row_end(), cc) ? 1 : 0;
        }
        for (int rr = r.row; rr < r.row_end(); ++rr) {
          score += occupied(rr, r.col - 1) ? 1 : 0;
          score += occupied(rr, r.col_end()) ? 1 : 0;
        }
        if (!best || score > best_score) {
          best = r;
          best_score = score;
        }
      }
    }
  }
  return best;
}

RegionId AreaManager::allocate(std::string name, int h, int w,
                               PlacePolicy policy) {
  const auto rect = find_free_rect(h, w, policy);
  if (!rect) return kNoRegion;
  const RegionId id = next_id_++;
  fill(*rect, id);
  free_clbs_ -= rect->area();
  regions_.emplace(id, Region{id, std::move(name), *rect});
  return id;
}

RegionId AreaManager::allocate_at(std::string name, ClbRect rect) {
  RELOGIC_CHECK_MSG(rect_free(rect),
                    "rect " + rect.to_string() + " is not free");
  const RegionId id = next_id_++;
  fill(rect, id);
  free_clbs_ -= rect.area();
  regions_.emplace(id, Region{id, std::move(name), rect});
  return id;
}

void AreaManager::release(RegionId id) {
  auto it = regions_.find(id);
  RELOGIC_CHECK_MSG(it != regions_.end(), "unknown region");
  fill(it->second.rect, kNoRegion);
  free_clbs_ += it->second.rect.area();
  regions_.erase(it);
}

void AreaManager::move(RegionId id, ClbRect to) {
  auto it = regions_.find(id);
  RELOGIC_CHECK_MSG(it != regions_.end(), "unknown region");
  Region& r = it->second;
  RELOGIC_CHECK_MSG(to.height == r.rect.height && to.width == r.rect.width,
                    "move must preserve region shape");
  // Free, then claim — the two rects may overlap (nearby relocation).
  fill(r.rect, kNoRegion);
  if (!rect_free(to)) {
    fill(r.rect, id);  // roll back
    throw IllegalOperationError("destination " + to.to_string() +
                                " is not free for region " + r.name);
  }
  fill(to, id);
  r.rect = to;
}

bool AreaManager::can_move(RegionId id, ClbRect to) const {
  auto it = regions_.find(id);
  RELOGIC_CHECK_MSG(it != regions_.end(), "unknown region");
  const Region& r = it->second;
  if (to.height != r.rect.height || to.width != r.rect.width) return false;
  if (to.row < 0 || to.col < 0 || to.row_end() > rows_ ||
      to.col_end() > cols_)
    return false;
  for (int row = to.row; row < to.row_end(); ++row) {
    for (int col = to.col; col < to.col_end(); ++col) {
      const RegionId occ = grid_[static_cast<std::size_t>(row) * cols_ + col];
      if (occ != kNoRegion && occ != id) return false;
    }
  }
  return true;
}

const Region& AreaManager::region(RegionId id) const {
  auto it = regions_.find(id);
  RELOGIC_CHECK_MSG(it != regions_.end(), "unknown region");
  return it->second;
}

std::vector<Region> AreaManager::regions() const {
  std::vector<Region> out;
  out.reserve(regions_.size());
  for (const auto& [id, r] : regions_) out.push_back(r);
  std::sort(out.begin(), out.end(),
            [](const Region& a, const Region& b) { return a.id < b.id; });
  return out;
}

ClbRect AreaManager::largest_free_rect() const {
  ClbRect best{0, 0, 0, 0};
  for_each_maximal_free_rect([&](const ClbRect& r) {
    if (r.area() > best.area()) best = r;
  });
  return best;
}

std::string AreaManager::to_ascii() const {
  // Stable letter per region id.
  std::string out;
  out.reserve(static_cast<std::size_t>((cols_ + 1) * rows_));
  for (int r = 0; r < rows_; ++r) {
    for (int c = 0; c < cols_; ++c) {
      const RegionId id = grid_[static_cast<std::size_t>(r) * cols_ + c];
      if (id == kNoRegion) {
        out += '.';
      } else if (id == kFaultyRegion) {
        out += 'X';  // masked faulty CLB
      } else {
        out += static_cast<char>('A' + (id - 1) % 26);
      }
    }
    out += '\n';
  }
  return out;
}

double AreaManager::fragmentation() const {
  if (free_clbs_ == 0) return 0.0;
  const int largest = largest_free_rect().area();
  return 1.0 - static_cast<double>(largest) / free_clbs_;
}

void AreaManager::audit() const {
  constexpr const char* kWhere = "AreaManager";
  RELOGIC_AUDIT_CHECK(
      grid_.size() == static_cast<std::size_t>(rows_) * cols_, kWhere,
      "grid size does not match geometry");

  // Pass 1: the region table against the grid. Each region's rectangle must
  // lie in bounds and be filled with exactly its id.
  for (const auto& [id, r] : regions_) {
    RELOGIC_AUDIT_CHECK(id > 0 && r.id == id, kWhere,
                        "region table entry with inconsistent id " +
                            std::to_string(id));
    RELOGIC_AUDIT_CHECK(
        r.rect.row >= 0 && r.rect.col >= 0 && r.rect.row_end() <= rows_ &&
            r.rect.col_end() <= cols_ && r.rect.area() > 0,
        kWhere, "region " + std::to_string(id) + " rectangle out of bounds");
    for (int row = r.rect.row; row < r.rect.row_end(); ++row)
      for (int col = r.rect.col; col < r.rect.col_end(); ++col)
        RELOGIC_AUDIT_CHECK(
            grid_[static_cast<std::size_t>(row) * cols_ + col] == id, kWhere,
            "region " + std::to_string(id) + " missing from grid at (" +
                std::to_string(row) + "," + std::to_string(col) + ")");
  }

  // Pass 2: the grid against the region table, recounting everything the
  // hot path maintains incrementally. Pass 1 proved each region covers its
  // own rectangle; equal per-id cell counts then pin the reverse direction
  // (no stray cells outside it).
  int free_count = 0;
  int masked_count = 0;
  std::size_t region_cells = 0;
  for (std::size_t i = 0; i < grid_.size(); ++i) {
    const RegionId id = grid_[i];
    if (id == kNoRegion) {
      ++free_count;
    } else if (id == kFaultyRegion) {
      ++masked_count;
    } else {
      const auto it = regions_.find(id);
      RELOGIC_AUDIT_CHECK(it != regions_.end(), kWhere,
                          "grid cell " + std::to_string(i) +
                              " occupied by unknown region " +
                              std::to_string(id));
      ++region_cells;
    }
  }
  std::size_t table_cells = 0;
  for (const auto& [id, r] : regions_)
    table_cells += static_cast<std::size_t>(r.rect.area());
  RELOGIC_AUDIT_CHECK(region_cells == table_cells, kWhere,
                      "grid holds " + std::to_string(region_cells) +
                          " region cells but the table claims " +
                          std::to_string(table_cells));
  RELOGIC_AUDIT_CHECK(free_clbs_ == free_count, kWhere,
                      "free_clbs counter " + std::to_string(free_clbs_) +
                          " != recounted " + std::to_string(free_count));
  RELOGIC_AUDIT_CHECK(masked_clbs_ == masked_count, kWhere,
                      "masked_clbs counter " + std::to_string(masked_clbs_) +
                          " != recounted " + std::to_string(masked_count));
}

}  // namespace relogic::area
