#include "relogic/config/port.hpp"

#include <cmath>

namespace relogic::config {

namespace {
SimTime cycles_to_time(double cycles, double hz) {
  return SimTime::ps(static_cast<std::int64_t>(std::llround(cycles / hz * 1e12)));
}
}  // namespace

SimTime BoundaryScanPort::write_time(int frames, int frame_bits) const {
  RELOGIC_CHECK(frames >= 0 && frame_bits > 0);
  if (frames == 0) return SimTime::zero();
  // 1 bit per TCK through the CFG_IN data register.
  const double data_bits =
      static_cast<double>(frames + p_.pad_frames) * frame_bits +
      32.0 * p_.header_words;
  return cycles_to_time(data_bits + p_.transaction_overhead_cycles, p_.tck_hz);
}

SimTime BoundaryScanPort::readback_time(int frames, int frame_bits) const {
  RELOGIC_CHECK(frames >= 0 && frame_bits > 0);
  if (frames == 0) return SimTime::zero();
  // CFG_OUT: same serial regime plus a command write to trigger readback.
  const double data_bits =
      static_cast<double>(frames + p_.pad_frames) * frame_bits +
      32.0 * (p_.header_words + 4);
  return cycles_to_time(data_bits + 2.0 * p_.transaction_overhead_cycles,
                        p_.tck_hz);
}

SimTime SelectMapPort::write_time(int frames, int frame_bits) const {
  RELOGIC_CHECK(frames >= 0 && frame_bits > 0);
  if (frames == 0) return SimTime::zero();
  const double bytes =
      (static_cast<double>(frames + p_.pad_frames) * frame_bits +
       32.0 * p_.header_words) /
      8.0;
  return cycles_to_time(bytes + p_.transaction_overhead_cycles, p_.cclk_hz);
}

SimTime SelectMapPort::readback_time(int frames, int frame_bits) const {
  RELOGIC_CHECK(frames >= 0 && frame_bits > 0);
  if (frames == 0) return SimTime::zero();
  const double bytes =
      (static_cast<double>(frames + p_.pad_frames) * frame_bits +
       32.0 * (p_.header_words + 4)) /
      8.0;
  return cycles_to_time(bytes + 2.0 * p_.transaction_overhead_cycles,
                        p_.cclk_hz);
}

SimTime IcapPort::write_time(int frames, int frame_bits) const {
  RELOGIC_CHECK(frames >= 0 && frame_bits > 0);
  if (frames == 0) return SimTime::zero();
  const double words =
      (static_cast<double>(frames + p_.pad_frames) * frame_bits) / 32.0 +
      p_.header_words;
  return cycles_to_time(words + p_.transaction_overhead_cycles, p_.clk_hz);
}

SimTime IcapPort::readback_time(int frames, int frame_bits) const {
  RELOGIC_CHECK(frames >= 0 && frame_bits > 0);
  if (frames == 0) return SimTime::zero();
  const double words =
      (static_cast<double>(frames + p_.pad_frames) * frame_bits) / 32.0 +
      p_.header_words + 4;
  return cycles_to_time(words + 2.0 * p_.transaction_overhead_cycles,
                        p_.clk_hz);
}

std::string to_string(PortBackend b) {
  switch (b) {
    case PortBackend::kJtag:
      return "jtag";
    case PortBackend::kSelectMap8:
      return "selectmap8";
    case PortBackend::kIcap32:
      return "icap32";
  }
  return "?";
}

std::optional<PortBackend> parse_port_backend(const std::string& name) {
  if (name == "jtag" || name == "bscan" || name == "boundary-scan")
    return PortBackend::kJtag;
  if (name == "selectmap8" || name == "selectmap" || name == "smap")
    return PortBackend::kSelectMap8;
  if (name == "icap32" || name == "icap") return PortBackend::kIcap32;
  return std::nullopt;
}

std::unique_ptr<ConfigPort> make_port(PortBackend b) {
  switch (b) {
    case PortBackend::kJtag:
      return std::make_unique<BoundaryScanPort>();
    case PortBackend::kSelectMap8:
      return std::make_unique<SelectMapPort>();
    case PortBackend::kIcap32:
      return std::make_unique<IcapPort>();
  }
  throw ContractError("unknown port backend");
}

}  // namespace relogic::config
