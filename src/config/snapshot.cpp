#include "relogic/config/snapshot.hpp"

#include <algorithm>

namespace relogic::config {

std::size_t SnapshotKeeper::take(std::string label) {
  entries_.push_back(Entry{std::move(label), fabric_->capture()});
  if (entries_.size() > max_retained_) {
    entries_.erase(entries_.begin());
  }
  return entries_.size() - 1;
}

bool SnapshotKeeper::restore_latest() {
  if (entries_.empty()) return false;
  fabric_->restore(entries_.back().state);
  return true;
}

bool SnapshotKeeper::restore(const std::string& label) {
  for (auto it = entries_.rbegin(); it != entries_.rend(); ++it) {
    if (it->label == label) {
      fabric_->restore(it->state);
      return true;
    }
  }
  return false;
}

std::vector<std::string> SnapshotKeeper::labels() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& e : entries_) out.push_back(e.label);
  return out;
}

}  // namespace relogic::config
