#include "relogic/config/cell_columns.hpp"

#include <algorithm>

namespace relogic::config {

CellColumns::CellColumns(fabric::Fabric& fab)
    : fab_(fab),
      rows_(fab.geometry().clb_rows),
      cols_(fab.geometry().clb_cols),
      cells_(fab.geometry().cells_per_clb) {
  const std::size_t slots =
      static_cast<std::size_t>(cols_) * cells_ * rows_;
  const std::size_t words = (slots + 63) / 64;
  row_default_.resize(static_cast<std::size_t>(rows_));
  const fabric::LogicCellConfig erased{};
  for (int r = 0; r < rows_; ++r)
    row_default_[static_cast<std::size_t>(r)] =
        FrameImage::cell_token(r, erased);

  // Tile the erased tokens into every (col, cell) group, then overlay the
  // cells the fabric already holds in a non-default state.
  tokens_.resize(slots);
  const int groups = cols_ * cells_;
  for (int g = 0; g < groups; ++g)
    std::copy(row_default_.begin(), row_default_.end(),
              tokens_.begin() + static_cast<std::ptrdiff_t>(g) * rows_);
  occupancy_.assign(words, 0);
  fault_.assign(words, 0);

  const fabric::ClbConfig erased_clb{};
  for (int r = 0; r < rows_; ++r) {
    for (int c = 0; c < cols_; ++c) {
      const fabric::ClbConfig& clb = fab.clb(ClbCoord{r, c});
      if (clb == erased_clb) continue;
      for (int cell = 0; cell < cells_; ++cell) {
        const fabric::LogicCellConfig& cfg =
            clb.cells[static_cast<std::size_t>(cell)];
        if (cfg == erased) continue;
        const int s = slot(r, c, cell);
        tokens_[static_cast<std::size_t>(s)] = FrameImage::cell_token(r, cfg);
        occupancy_[static_cast<std::size_t>(s) >> 6] |=
            std::uint64_t{1} << (s & 63);
        ++occupied_count_;
      }
    }
  }

  fab_.add_listener(this);
}

CellColumns::~CellColumns() { fab_.remove_listener(this); }

void CellColumns::on_cell_changed(ClbCoord clb, int cell,
                                  const fabric::LogicCellConfig& /*before*/,
                                  const fabric::LogicCellConfig& after) {
  const int s = slot(clb.row, clb.col, cell);
  const std::size_t w = static_cast<std::size_t>(s) >> 6;
  const std::uint64_t m = std::uint64_t{1} << (s & 63);
  tokens_[static_cast<std::size_t>(s)] =
      FrameImage::cell_token(clb.row, after);
  const bool was = (occupancy_[w] & m) != 0;
  const bool now = after != fabric::LogicCellConfig{};
  if (was != now) {
    occupancy_[w] ^= m;
    occupied_count_ += now ? 1 : -1;
  }
}

const std::uint64_t* CellColumns::fault_mask() {
  const int n = fab_.injected_fault_count();
  if (n != fault_synced_count_) {
    std::fill(fault_.begin(), fault_.end(), 0);
    for (int idx : fab_.fault_cell_indices()) {
      const int cell = idx % cells_;
      const int flat = idx / cells_;
      const int col = flat % cols_;
      const int row = flat / cols_;
      const int s = slot(row, col, cell);
      fault_[static_cast<std::size_t>(s) >> 6] |= std::uint64_t{1}
                                                  << (s & 63);
    }
    fault_synced_count_ = n;
  }
  return fault_.data();
}

}  // namespace relogic::config
