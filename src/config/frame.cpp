#include "relogic/config/frame.hpp"

#include "relogic/common/error.hpp"

namespace relogic::config {

namespace {
// Deterministic mixing of a node id into a routing-frame slot.
std::uint32_t mix(std::uint32_t x) {
  x ^= x >> 16;
  x *= 0x7feb352du;
  x ^= x >> 15;
  x *= 0x846ca68bu;
  x ^= x >> 16;
  return x;
}
}  // namespace

std::string FrameAddress::to_string() const {
  switch (type) {
    case ColumnType::kCenter:
      return "CENTER.f" + std::to_string(frame);
    case ColumnType::kClb:
      return "CLBCOL" + std::to_string(column) + ".f" + std::to_string(frame);
    case ColumnType::kIob:
      return "IOBCOL" + std::to_string(column) + ".f" + std::to_string(frame);
  }
  return "?";
}

std::vector<FrameAddress> FrameMapper::cell_frames(ClbCoord clb,
                                                   int cell) const {
  RELOGIC_CHECK(geom_->in_bounds(clb));
  RELOGIC_CHECK(cell >= 0 && cell < geom_->cells_per_clb);
  std::vector<FrameAddress> out;
  out.reserve(static_cast<std::size_t>(geom_->frames_per_cell_config));
  for (int f = 0; f < geom_->frames_per_cell_config; ++f) {
    out.push_back(FrameAddress{
        ColumnType::kClb, static_cast<std::int16_t>(clb.col),
        static_cast<std::int16_t>(cell * geom_->frames_per_cell_config + f)});
  }
  return out;
}

FrameAddress FrameMapper::pip_frame(const fabric::RoutingSkeleton& skeleton,
                                    fabric::RouteEdge edge) const {
  using fabric::NodeKind;
  const auto to_info = skeleton.info(edge.to);
  const auto from_info = skeleton.info(edge.from);
  // The controlling mux sits in the tile of the edge's destination; long
  // lines have no tile of their own, so their entry PIPs are controlled at
  // the source tile. IOB-column resources (pads) map to the IOB columns.
  ClbCoord tile = to_info.tile;
  bool is_iob = false;
  if (to_info.kind == NodeKind::kLongRow || to_info.kind == NodeKind::kLongCol) {
    tile = from_info.tile;
  } else if (to_info.kind == NodeKind::kPad) {
    is_iob = true;
  }
  if (from_info.kind == NodeKind::kPad &&
      (to_info.kind == NodeKind::kSingle || to_info.kind == NodeKind::kHex)) {
    is_iob = true;
    tile = from_info.tile;
  }
  if (is_iob) {
    // Left half of the device maps to IOB column 0, right half to column 1.
    const int col = tile.col < geom_->clb_cols / 2 ? 0 : 1;
    const int slot =
        static_cast<int>(mix(edge.from ^ (edge.to * 0x9E3779B9u)) %
                         static_cast<std::uint32_t>(geom_->frames_per_iob_column));
    return FrameAddress{ColumnType::kIob, static_cast<std::int16_t>(col),
                        static_cast<std::int16_t>(slot)};
  }
  const int routing_frames =
      geom_->frames_per_clb_column - first_routing_frame();
  RELOGIC_CHECK(routing_frames > 0);
  const int slot = first_routing_frame() +
                   static_cast<int>(mix(edge.from ^ (edge.to * 0x9E3779B9u)) %
                                    static_cast<std::uint32_t>(routing_frames));
  return FrameAddress{ColumnType::kClb, static_cast<std::int16_t>(tile.col),
                      static_cast<std::int16_t>(slot)};
}

std::vector<FrameAddress> FrameMapper::column_frames(int clb_column) const {
  RELOGIC_CHECK(clb_column >= 0 && clb_column < geom_->clb_cols);
  std::vector<FrameAddress> out;
  out.reserve(static_cast<std::size_t>(geom_->frames_per_clb_column));
  for (int f = 0; f < geom_->frames_per_clb_column; ++f) {
    out.push_back(FrameAddress{ColumnType::kClb,
                               static_cast<std::int16_t>(clb_column),
                               static_cast<std::int16_t>(f)});
  }
  return out;
}

}  // namespace relogic::config
