// The "simd" kernel backend: vector inner loops, dispatched at runtime.
//
// x86-64 builds carry an AVX2 flavour of each accelerated loop compiled
// with a function-level target attribute (the rest of the library keeps
// the portable baseline ISA) and select it once at startup with
// __builtin_cpu_supports; aarch64 uses NEON (baseline there, no dispatch
// needed); everything else — and x86 machines without AVX2 — runs the
// inherited scalar implementations. variant() reports which flavour won,
// and the bench smoke test asserts the scalar fallback is exercised when
// vector hardware is absent.
//
// What is vectorized, and why it cannot change results:
//  * scan_dirty / commit_scan / expand_bits walk the touched-word bitmap;
//    the vector flavour tests 4 words (256 frame ids) at a time and skips
//    all-zero blocks, then hands populated words to the same bit-loop the
//    scalar path runs — identical visit order, identical output.
//  * cell_digest_sweep XOR-folds each (col, cell) group's token
//    differences; when the group's occupancy range is saturated the fold
//    runs 4 lanes wide. XOR is associative and commutative, so the lane
//    fold order cannot change the digest.
#include <bit>
#include <cstdint>

#include "relogic/config/kernel.hpp"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define RELOGIC_SIMD_X86 1
#elif defined(__aarch64__)
#include <arm_neon.h>
#define RELOGIC_SIMD_NEON 1
#endif

namespace relogic::config {
namespace detail {
namespace {

// Scalar tail shared by all flavours: drain the set bits of one word.
template <typename PerId>
inline void drain_word(std::uint64_t bits, int w, PerId&& per_id) {
  while (bits) {
    const int b = std::countr_zero(bits);
    bits &= bits - 1;
    per_id(static_cast<std::int32_t>(w * 64 + b));
  }
}

/// True iff every bit of the slot range [lo, hi) is set in `words`.
inline bool range_all_set(const std::uint64_t* words, int lo, int hi) {
  const int w0 = lo >> 6;
  const int w1 = (hi - 1) >> 6;
  for (int w = w0; w <= w1; ++w) {
    std::uint64_t need = ~std::uint64_t{0};
    if (w == w0) need &= ~std::uint64_t{0} << (lo & 63);
    if (w == w1 && (hi & 63) != 0) need &= (std::uint64_t{1} << (hi & 63)) - 1;
    if ((words[w] & need) != need) return false;
  }
  return true;
}

#ifdef RELOGIC_SIMD_X86

__attribute__((target("avx2"))) bool block_zero_avx2(const std::uint64_t* p) {
  const __m256i v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
  return _mm256_testz_si256(v, v) != 0;
}

/// XOR-fold tokens[lo..hi) ^ defaults[0..hi-lo) four lanes wide.
__attribute__((target("avx2"))) std::uint64_t xor_fold_avx2(
    const std::uint64_t* tokens, const std::uint64_t* defaults, int n) {
  __m256i acc = _mm256_setzero_si256();
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i t =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(tokens + i));
    const __m256i d =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(defaults + i));
    acc = _mm256_xor_si256(acc, _mm256_xor_si256(t, d));
  }
  alignas(32) std::uint64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
  std::uint64_t out = lanes[0] ^ lanes[1] ^ lanes[2] ^ lanes[3];
  for (; i < n; ++i) out ^= tokens[i] ^ defaults[i];
  return out;
}

bool detect_avx2() { return __builtin_cpu_supports("avx2") != 0; }

#endif  // RELOGIC_SIMD_X86

#ifdef RELOGIC_SIMD_NEON

inline bool block_zero_neon(const std::uint64_t* p) {
  const uint64x2_t a = vorrq_u64(vld1q_u64(p), vld1q_u64(p + 2));
  return (vgetq_lane_u64(a, 0) | vgetq_lane_u64(a, 1)) == 0;
}

inline std::uint64_t xor_fold_neon(const std::uint64_t* tokens,
                                   const std::uint64_t* defaults, int n) {
  uint64x2_t acc = vdupq_n_u64(0);
  int i = 0;
  for (; i + 2 <= n; i += 2)
    acc = veorq_u64(acc, veorq_u64(vld1q_u64(tokens + i),
                                   vld1q_u64(defaults + i)));
  std::uint64_t out = vgetq_lane_u64(acc, 0) ^ vgetq_lane_u64(acc, 1);
  for (; i < n; ++i) out ^= tokens[i] ^ defaults[i];
  return out;
}

#endif  // RELOGIC_SIMD_NEON

class SimdKernel final : public KernelBackend {
 public:
  SimdKernel() {
#ifdef RELOGIC_SIMD_X86
    if (detect_avx2()) variant_ = "avx2";
#elif defined(RELOGIC_SIMD_NEON)
    variant_ = "neon";
#endif
  }

  std::string name() const override { return "simd"; }
  std::string variant() const override { return variant_; }

  void scan_dirty(const std::uint64_t* words, int nwords,
                  const std::uint64_t* delta,
                  std::vector<std::int32_t>& out) const override {
    for_populated_words(words, nwords, [&](std::uint64_t bits, int w) {
      drain_word(bits, w, [&](std::int32_t id) {
        if (delta[static_cast<std::size_t>(id)] != 0) out.push_back(id);
      });
    });
  }

  void expand_bits(const std::uint64_t* words, int nwords,
                   std::vector<std::int32_t>& out) const override {
    for_populated_words(words, nwords, [&](std::uint64_t bits, int w) {
      drain_word(bits, w, [&](std::int32_t id) { out.push_back(id); });
    });
  }

  void commit_scan(const std::uint64_t* words, int nwords,
                   const std::uint64_t* delta, std::uint64_t* digest,
                   std::uint8_t* ever_touched, std::size_t& tracked,
                   std::vector<std::int32_t>* dirty) const override {
    for_populated_words(words, nwords, [&](std::uint64_t bits, int w) {
      drain_word(bits, w, [&](std::int32_t id) {
        const std::uint64_t d = delta[static_cast<std::size_t>(id)];
        if (d == 0) return;
        digest[static_cast<std::size_t>(id)] ^= d;
        if (!ever_touched[static_cast<std::size_t>(id)]) {
          ever_touched[static_cast<std::size_t>(id)] = 1;
          ++tracked;
        }
        if (dirty) dirty->push_back(id);
      });
    });
  }

  void cell_digest_sweep(const CellSweepCtx& ctx,
                         std::uint64_t* out) const override {
    const bool vec = variant_[0] != 's';  // "avx2" / "neon"
    if (!vec) {
      KernelBackend::cell_digest_sweep(ctx, out);
      return;
    }
    for (int col = 0; col < ctx.clb_cols; ++col) {
      for (int cell = 0; cell < ctx.cells_per_clb; ++cell) {
        const int g = col * ctx.cells_per_clb + cell;
        const int lo = g * ctx.rows;
        std::uint64_t d;
        if (range_all_set(ctx.nondefault, lo, lo + ctx.rows)) {
          d = xor_fold(ctx.tokens + lo, ctx.row_default, ctx.rows);
        } else {
          d = 0;
          sweep_group_delta(ctx, lo, &d);
        }
        if (d == 0) continue;
        const std::int32_t base = ctx.clb_base +
                                  col * ctx.frames_per_clb_column +
                                  cell * ctx.frames_per_cell;
        for (int f = 0; f < ctx.frames_per_cell; ++f)
          out[static_cast<std::size_t>(base + f)] ^= d;
      }
    }
  }

 private:
  // Visit each non-zero bitmap word; vector flavours skip 4-word all-zero
  // blocks in one test.
  template <typename PerWord>
  void for_populated_words(const std::uint64_t* words, int nwords,
                           PerWord&& per_word) const {
    int w = 0;
#ifdef RELOGIC_SIMD_X86
    if (variant_[0] == 'a') {
      for (; w + 4 <= nwords; w += 4) {
        if (block_zero_avx2(words + w)) continue;
        for (int k = 0; k < 4; ++k)
          if (words[w + k]) per_word(words[w + k], w + k);
      }
    }
#elif defined(RELOGIC_SIMD_NEON)
    for (; w + 4 <= nwords; w += 4) {
      if (block_zero_neon(words + w)) continue;
      for (int k = 0; k < 4; ++k)
        if (words[w + k]) per_word(words[w + k], w + k);
    }
#endif
    for (; w < nwords; ++w)
      if (words[w]) per_word(words[w], w);
  }

  static std::uint64_t xor_fold(const std::uint64_t* tokens,
                                const std::uint64_t* defaults, int n) {
#ifdef RELOGIC_SIMD_X86
    return xor_fold_avx2(tokens, defaults, n);
#elif defined(RELOGIC_SIMD_NEON)
    return xor_fold_neon(tokens, defaults, n);
#else
    std::uint64_t out = 0;
    for (int i = 0; i < n; ++i) out ^= tokens[i] ^ defaults[i];
    return out;
#endif
  }

  // Masked fold for partially occupied groups (scalar — sparse by
  // definition).
  static void sweep_group_delta(const CellSweepCtx& ctx, int lo,
                                std::uint64_t* d) {
    const int hi = lo + ctx.rows;
    const int w0 = lo >> 6;
    const int w1 = (hi - 1) >> 6;
    for (int w = w0; w <= w1; ++w) {
      std::uint64_t bits = ctx.nondefault[w];
      if (w == w0) bits &= ~std::uint64_t{0} << (lo & 63);
      if (w == w1 && (hi & 63) != 0)
        bits &= (std::uint64_t{1} << (hi & 63)) - 1;
      while (bits) {
        const int b = std::countr_zero(bits);
        bits &= bits - 1;
        const int slot = w * 64 + b;
        *d ^= ctx.row_default[slot - lo] ^ ctx.tokens[slot];
      }
    }
  }

  std::string variant_ = "scalar";
};

}  // namespace

const KernelBackend& simd_kernel() {
  static const SimdKernel kernel;
  return kernel;
}

}  // namespace detail
}  // namespace relogic::config
