#include "relogic/config/frame_image.hpp"

namespace relogic::config {

namespace {

// splitmix64 finaliser — the standard 64-bit avalanche mix.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

std::uint64_t FrameImage::cell_token(int row,
                                     const fabric::LogicCellConfig& cfg) {
  // Pack every configuration field; two configs differing in any field get
  // different pre-mix words, so equal tokens <=> equal (row, cfg) up to a
  // 64-bit hash collision.
  std::uint64_t w = static_cast<std::uint64_t>(static_cast<std::uint32_t>(row));
  w = (w << 16) | cfg.lut;
  w = (w << 2) | static_cast<std::uint64_t>(cfg.reg);
  w = (w << 1) | static_cast<std::uint64_t>(cfg.lut_mode);
  w = (w << 1) | static_cast<std::uint64_t>(cfg.d_src);
  w = (w << 1) | static_cast<std::uint64_t>(cfg.uses_ce);
  w = (w << 1) | static_cast<std::uint64_t>(cfg.init);
  w = (w << 8) | cfg.clock_domain;
  w = (w << 1) | static_cast<std::uint64_t>(cfg.used);
  return mix64(w);
}

std::uint64_t FrameImage::edge_token(fabric::RouteEdge e) {
  return mix64((static_cast<std::uint64_t>(e.from) << 32) ^
               static_cast<std::uint64_t>(e.to) ^ 0xedfe0b5ull);
}

std::uint64_t FrameImage::source_token(fabric::NodeId n) {
  return mix64(static_cast<std::uint64_t>(n) ^ 0x50a7ce00ull);
}

}  // namespace relogic::config
