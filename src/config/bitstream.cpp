#include "relogic/config/bitstream.hpp"

#include <array>
#include <cstdio>

namespace relogic::config {

namespace {

constexpr std::uint32_t kSyncWord = 0xAA995566;  // Virtex sync word

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 24));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}

std::uint32_t mix64to32(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdull;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ull;
  x ^= x >> 33;
  return static_cast<std::uint32_t>(x);
}

std::uint32_t frame_key(const FrameAddress& f) {
  return (static_cast<std::uint32_t>(f.type) << 28) |
         (static_cast<std::uint32_t>(static_cast<std::uint16_t>(f.column))
          << 12) |
         static_cast<std::uint32_t>(static_cast<std::uint16_t>(f.frame));
}

}  // namespace

std::uint32_t crc32(const std::uint8_t* data, std::size_t size) {
  static const auto table = make_crc_table();
  std::uint32_t c = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i) {
    c = table[(c ^ data[i]) & 0xFF] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

void BitstreamWriter::append_op(const ConfigOp& op, const FrameSet& frames,
                                PartialBitstream& out) const {
  const FrameIndex& index = controller_->index();
  const int words =
      controller_->fabric().geometry().frame_length_bits() / 32;

  // Op header packet: type-1 style marker + frame count.
  put_u32(out.bytes, 0x30008001u);  // write to CMD register
  put_u32(out.bytes, static_cast<std::uint32_t>(frames.size()));

  for (const std::int32_t id : frames) {
    const FrameAddress f = index.address(id);
    put_u32(out.bytes, 0x30002001u);  // write FAR
    put_u32(out.bytes, frame_key(f));
    put_u32(out.bytes, 0x30004000u | static_cast<std::uint32_t>(words));
    // Deterministic payload synthesised from the frame address and the op
    // label: stands in for the real configuration data.
    std::uint64_t h = frame_key(f);
    for (char ch : op.label) h = h * 1099511628211ull + static_cast<unsigned char>(ch);
    for (int w = 0; w < words; ++w) {
      h = h * 6364136223846793005ull + 1442695040888963407ull;
      put_u32(out.bytes, mix64to32(h));
    }
    ++out.frame_count;
  }
}

PartialBitstream BitstreamWriter::render(const ConfigOp& op) const {
  return render(std::vector<ConfigOp>{op});
}

PartialBitstream BitstreamWriter::render(
    const std::vector<ConfigOp>& ops) const {
  PartialBitstream out;
  put_u32(out.bytes, 0xFFFFFFFFu);  // dummy word
  put_u32(out.bytes, kSyncWord);
  // Sequence-aware written sets: the frames each op would write when the
  // ops apply in order — whole columns under kColumn, the mapped set under
  // kFrame, only the content-changing frames under kDirtyFrame (where a
  // later op rewriting an earlier op's content renders nothing) — so the
  // image's frame count equals the controller's ConfigTotals for the same
  // sequence.
  controller_->preview_sequence(
      ops, [&](std::size_t i, const ApplyResult&, const FrameSet& written) {
        append_op(ops[i], written, out);
      });
  out.crc = crc32(out.bytes.data(), out.bytes.size());
  put_u32(out.bytes, 0x30000001u);  // write CRC register
  put_u32(out.bytes, out.crc);
  return out;
}

std::string BitstreamWriter::script(const std::vector<ConfigOp>& ops) const {
  std::string out;
  SimTime total = SimTime::zero();
  int total_frames = 0;
  int total_skipped = 0;
  // Sequence-aware pricing, identical to what applying the ops in order
  // would charge (see render()).
  controller_->preview_sequence(ops, [&](std::size_t i, const ApplyResult& r,
                                         const FrameSet&) {
    char line[256];
    std::snprintf(line, sizeof line, "%2zu  %-48s %4d frames  %3d cols  %s\n",
                  i + 1, ops[i].label.c_str(), r.frames_written,
                  r.columns_touched, r.time.to_string().c_str());
    out += line;
    total += r.time;
    total_frames += r.frames_written;
    total_skipped += r.frames_skipped;
  });
  char line[256];
  if (total_skipped > 0) {
    std::snprintf(line, sizeof line,
                  "    TOTAL %d ops, %d frames (%d clean-skipped), %s\n",
                  static_cast<int>(ops.size()), total_frames, total_skipped,
                  total.to_string().c_str());
  } else {
    std::snprintf(line, sizeof line, "    TOTAL %d ops, %d frames, %s\n",
                  static_cast<int>(ops.size()), total_frames,
                  total.to_string().c_str());
  }
  out += line;
  return out;
}

}  // namespace relogic::config
