#include "relogic/config/controller.hpp"

#include <algorithm>
#include <utility>

#include "relogic/common/logging.hpp"

namespace relogic::config {

ConfigOp& ConfigOp::add_path(fabric::NetId net,
                             const std::vector<fabric::NodeId>& path) {
  for (std::size_t i = 1; i < path.size(); ++i) {
    add_edge(net, fabric::RouteEdge{path[i - 1], path[i]});
  }
  return *this;
}

ConfigOp& ConfigOp::remove_path(fabric::NetId net,
                                const std::vector<fabric::NodeId>& path) {
  for (std::size_t i = 1; i < path.size(); ++i) {
    remove_edge(net, fabric::RouteEdge{path[i - 1], path[i]});
  }
  return *this;
}

ConfigController::ConfigController(fabric::Fabric& fabric,
                                   const ConfigPort& port,
                                   WriteGranularity granularity)
    : fabric_(&fabric),
      port_(&port),
      mapper_(fabric.geometry()),
      granularity_(granularity) {}

FrameAddress ConfigController::source_frame(const SourceChange& sc) const {
  // The output mux of a cell / pad enable lives in the node's own tile.
  const auto& graph = fabric_->graph();
  const auto info = graph.info(sc.node);
  if (info.kind == fabric::NodeKind::kPad) {
    const int col = info.tile.col < fabric_->geometry().clb_cols / 2 ? 0 : 1;
    return FrameAddress{ColumnType::kIob, static_cast<std::int16_t>(col), 0};
  }
  return mapper_.pip_frame(graph, fabric::RouteEdge{sc.node, sc.node});
}

std::set<FrameAddress> ConfigController::frames_of(const ConfigOp& op) const {
  std::set<FrameAddress> frames;
  const auto& graph = fabric_->graph();
  for (const ConfigAction& a : op.actions) {
    if (const auto* cw = std::get_if<CellWrite>(&a)) {
      for (const FrameAddress& f : mapper_.cell_frames(cw->clb, cw->cell))
        frames.insert(f);
    } else if (const auto* ec = std::get_if<EdgeChange>(&a)) {
      frames.insert(mapper_.pip_frame(graph, ec->edge));
    } else if (const auto* sc = std::get_if<SourceChange>(&a)) {
      frames.insert(source_frame(*sc));
    }
  }
  if (granularity_ != WriteGranularity::kColumn) return frames;
  // Widen to whole columns.
  std::set<FrameAddress> widened;
  std::set<std::int16_t> clb_cols;
  std::set<std::int16_t> iob_cols;
  for (const FrameAddress& f : frames) {
    switch (f.type) {
      case ColumnType::kClb:
        clb_cols.insert(f.column);
        break;
      case ColumnType::kIob:
        iob_cols.insert(f.column);
        break;
      case ColumnType::kCenter:
        widened.insert(f);
        break;
    }
  }
  const auto& g = fabric_->geometry();
  for (std::int16_t c : clb_cols) {
    for (int fr = 0; fr < g.frames_per_clb_column; ++fr)
      widened.insert(
          FrameAddress{ColumnType::kClb, c, static_cast<std::int16_t>(fr)});
  }
  for (std::int16_t c : iob_cols) {
    for (int fr = 0; fr < g.frames_per_iob_column; ++fr)
      widened.insert(
          FrameAddress{ColumnType::kIob, c, static_cast<std::int16_t>(fr)});
  }
  return widened;
}

std::map<FrameAddress, std::uint64_t> ConfigController::simulate_deltas(
    const ConfigOp& op) const {
  std::map<FrameAddress, std::uint64_t> deltas;
  // Overlay of the op's own earlier actions: within one op, a later action
  // is effective against the state the earlier ones will have produced.
  std::map<CellKey, fabric::LogicCellConfig> cells;
  std::map<std::pair<fabric::NetId, fabric::RouteEdge>, bool> edges;
  std::map<std::pair<fabric::NetId, fabric::NodeId>, bool> sources;

  for (const ConfigAction& a : op.actions) {
    if (const auto* cw = std::get_if<CellWrite>(&a)) {
      const CellKey key{cw->clb.row, cw->clb.col, cw->cell};
      const auto it = cells.find(key);
      const fabric::LogicCellConfig before =
          it != cells.end() ? it->second : fabric_->cell(cw->clb, cw->cell);
      if (before == cw->cfg) continue;
      const std::uint64_t d = FrameImage::cell_token(cw->clb.row, before) ^
                              FrameImage::cell_token(cw->clb.row, cw->cfg);
      for (const FrameAddress& f : mapper_.cell_frames(cw->clb, cw->cell))
        deltas[f] ^= d;
      cells[key] = cw->cfg;
    } else if (const auto* ec = std::get_if<EdgeChange>(&a)) {
      const auto key = std::make_pair(ec->net, ec->edge);
      const auto it = edges.find(key);
      const bool on = it != edges.end()
                          ? it->second
                          : (fabric_->net_exists(ec->net) &&
                             fabric_->net(ec->net).has_edge(ec->edge));
      if (on == ec->add) continue;
      deltas[mapper_.pip_frame(fabric_->graph(), ec->edge)] ^=
          FrameImage::edge_token(ec->edge);
      edges[key] = ec->add;
    } else if (const auto* sc = std::get_if<SourceChange>(&a)) {
      const auto key = std::make_pair(sc->net, sc->node);
      const auto it = sources.find(key);
      const bool on = it != sources.end()
                          ? it->second
                          : (fabric_->net_exists(sc->net) &&
                             fabric_->net(sc->net).has_source(sc->node));
      if (on == sc->attach) continue;
      deltas[source_frame(*sc)] ^= FrameImage::source_token(sc->node);
      sources[key] = sc->attach;
    }
  }
  return deltas;
}

ApplyResult ConfigController::price(
    const std::set<FrameAddress>& frames,
    const std::map<FrameAddress, std::uint64_t>& deltas) const {
  if (granularity_ != WriteGranularity::kDirtyFrame) return preview(frames);
  std::set<FrameAddress> dirty;
  for (const auto& [f, d] : deltas)
    if (d != 0) dirty.insert(f);
  ApplyResult result = preview(dirty);
  result.frames_skipped =
      static_cast<int>(frames.size()) - result.frames_written;
  return result;
}

ApplyResult ConfigController::preview(const ConfigOp& op) const {
  return preview(op, frames_of(op));
}

ApplyResult ConfigController::preview(
    const ConfigOp& op, const std::set<FrameAddress>& frames) const {
  if (granularity_ != WriteGranularity::kDirtyFrame) return preview(frames);
  return price(frames, simulate_deltas(op));
}

ApplyResult ConfigController::preview(
    const std::set<FrameAddress>& frames) const {
  ApplyResult result;
  result.frames_written = static_cast<int>(frames.size());

  std::set<std::pair<ColumnType, std::int16_t>> columns;
  for (const FrameAddress& f : frames) columns.insert({f.type, f.column});
  result.columns_touched = static_cast<int>(columns.size());

  // Port timing: one transaction per touched column (the frame-address
  // register must be rewritten when the column changes).
  const int frame_bits = fabric_->geometry().frame_length_bits();
  for (const auto& col : columns) {
    int n = 0;
    for (const FrameAddress& f : frames)
      if (f.type == col.first && f.column == col.second) ++n;
    result.time += port_->write_time(n, frame_bits);
  }
  return result;
}

ApplyResult ConfigController::apply(const ConfigOp& op,
                                    bool allow_lut_ram_columns) {
  const std::set<FrameAddress> frames = frames_of(op);
  if (!allow_lut_ram_columns) check_lut_ram_columns(op, frames, nullptr);

  // Apply the structural actions in order, collecting the exact per-frame
  // content deltas (before/after values observed on the fabric, so injected
  // configuration-memory faults are reflected in the shadow image too).
  std::map<FrameAddress, std::uint64_t> deltas;
  int effective = 0;
  for (const ConfigAction& a : op.actions) {
    if (const auto* cw = std::get_if<CellWrite>(&a)) {
      const fabric::LogicCellConfig before = fabric_->cell(cw->clb, cw->cell);
      if (fabric_->set_cell_config(cw->clb, cw->cell, cw->cfg)) {
        ++effective;
        const fabric::LogicCellConfig after = fabric_->cell(cw->clb, cw->cell);
        const std::uint64_t d = FrameImage::cell_token(cw->clb.row, before) ^
                                FrameImage::cell_token(cw->clb.row, after);
        for (const FrameAddress& f : mapper_.cell_frames(cw->clb, cw->cell))
          deltas[f] ^= d;
      }
    } else if (const auto* ec = std::get_if<EdgeChange>(&a)) {
      const auto& tree = fabric_->net(ec->net);
      if (ec->add ? !tree.has_edge(ec->edge) : tree.has_edge(ec->edge)) {
        if (ec->add)
          fabric_->add_edge(ec->net, ec->edge);
        else
          fabric_->remove_edge(ec->net, ec->edge);
        ++effective;
        deltas[mapper_.pip_frame(fabric_->graph(), ec->edge)] ^=
            FrameImage::edge_token(ec->edge);
      }
    } else if (const auto* sc = std::get_if<SourceChange>(&a)) {
      const auto& tree = fabric_->net(sc->net);
      if (sc->attach ? !tree.has_source(sc->node) : tree.has_source(sc->node)) {
        if (sc->attach)
          fabric_->attach_source(sc->net, sc->node);
        else
          fabric_->detach_source(sc->net, sc->node);
        ++effective;
        deltas[source_frame(*sc)] ^= FrameImage::source_token(sc->node);
      }
    }
  }

  // Commit the deltas to the shadow image, then price per granularity.
  for (const auto& [f, d] : deltas) image_.apply_delta(f, d);
  ApplyResult result = price(frames, deltas);
  result.effective_actions = effective;

  ++totals_.ops;
  totals_.frames_written += result.frames_written;
  totals_.frames_skipped += result.frames_skipped;
  totals_.columns_touched += result.columns_touched;
  totals_.time += result.time;

  RELOGIC_LOG(kDebug) << "config op '" << op.label << "': "
                      << result.frames_written << " frames ("
                      << result.frames_skipped << " clean-skipped), "
                      << result.columns_touched << " columns, "
                      << result.time.to_string();
  return result;
}

void ConfigController::check_lut_ram_columns(
    const ConfigOp& op, const std::set<CellKey>* extra_rewritten) const {
  check_lut_ram_columns(op, frames_of(op), extra_rewritten);
}

void ConfigController::check_lut_ram_columns(
    const ConfigOp& op, const std::set<FrameAddress>& frames,
    const std::set<CellKey>* extra_rewritten) const {
  // Columns the op writes.
  std::set<std::int16_t> cols;
  for (const FrameAddress& f : frames)
    if (f.type == ColumnType::kClb) cols.insert(f.column);
  if (cols.empty()) return;

  // Cells the op itself rewrites (those are intentional, hence exempt),
  // plus any the caller knows are rewritten before this op applies.
  std::set<CellKey> rewritten;  // {row, col, cell}
  if (extra_rewritten != nullptr) rewritten = *extra_rewritten;
  for (const ConfigAction& a : op.actions) {
    if (const auto* cw = std::get_if<CellWrite>(&a))
      rewritten.insert({cw->clb.row, cw->clb.col, cw->cell});
  }

  const auto& g = fabric_->geometry();
  for (std::int16_t col : cols) {
    for (int row = 0; row < g.clb_rows; ++row) {
      const ClbCoord c{row, col};
      for (int k = 0; k < g.cells_per_clb; ++k) {
        const auto& cell = fabric_->cell(c, k);
        if (cell.used && cell.lut_mode == fabric::LutMode::kRam &&
            !rewritten.contains({row, col, k})) {
          throw IllegalOperationError(
              "config op '" + op.label + "' touches column " +
              std::to_string(col) + " which holds a live LUT-RAM at " +
              c.to_string() + " cell " + std::to_string(k) +
              " (paper Sec. 2: LUT/RAMs must not lie in affected columns)");
        }
      }
    }
  }
}

}  // namespace relogic::config
