#include "relogic/config/controller.hpp"

#include <algorithm>
#include <cstring>
#include <string>
#include <utility>

#include "relogic/common/audit.hpp"
#include "relogic/common/logging.hpp"

namespace relogic::config {

namespace {

/// Packed {row, col, cell} key for overlay / rewrite scratch vectors
/// (values are small non-negative ints, so 20 bits each is generous).
std::uint64_t pack_cell_key(int row, int col, int cell) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(row)) << 40) |
         (static_cast<std::uint64_t>(static_cast<std::uint32_t>(col)) << 20) |
         static_cast<std::uint64_t>(static_cast<std::uint32_t>(cell));
}

}  // namespace

ConfigOp& ConfigOp::add_path(fabric::NetId net,
                             const std::vector<fabric::NodeId>& path) {
  for (std::size_t i = 1; i < path.size(); ++i) {
    add_edge(net, fabric::RouteEdge{path[i - 1], path[i]});
  }
  return *this;
}

ConfigOp& ConfigOp::remove_path(fabric::NetId net,
                                const std::vector<fabric::NodeId>& path) {
  for (std::size_t i = 1; i < path.size(); ++i) {
    remove_edge(net, fabric::RouteEdge{path[i - 1], path[i]});
  }
  return *this;
}

ConfigController::ConfigController(fabric::Fabric& fabric,
                                   const ConfigPort& port,
                                   WriteGranularity granularity,
                                   const KernelBackend* kernel)
    : fabric_(&fabric),
      port_(&port),
      kernel_(kernel != nullptr ? kernel : &default_kernel_backend()),
      mapper_(fabric.geometry()),
      granularity_(granularity),
      index_(fabric.geometry()),
      image_(index_),
      columns_(fabric) {
  deltas_scratch_.reset(index_.total_frames());
  const auto& g = fabric.geometry();
  frame_bits_ = g.frame_length_bits();
  max_run_ = std::max({g.frames_center_column, g.frames_per_clb_column,
                       g.frames_per_iob_column});
  if (fast_path()) {
    const int total = index_.total_frames();
    col_of_.resize(static_cast<std::size_t>(total));
    for (int id = 0; id < total; ++id)
      col_of_[static_cast<std::size_t>(id)] =
          static_cast<std::uint16_t>(index_.column_of(id));
    time_memo_.assign(static_cast<std::size_t>(max_run_) + 1, SimTime::zero());
    memo_valid_.assign(static_cast<std::size_t>(max_run_) + 1, 0);
    op_words_.assign(static_cast<std::size_t>((total + 63) / 64), 0);
    col_words_.assign(static_cast<std::size_t>((g.clb_cols + 63) / 64), 0);
    const std::size_t slots = static_cast<std::size_t>(columns_.slot_count());
    overlay_.assign(slots, CellOverlay{0, 0});
    const std::size_t cell_keys =
        static_cast<std::size_t>(g.clb_cols) *
        static_cast<std::size_t>(g.cells_per_clb);
    runkey_idx_.assign(cell_keys, 0);
    runkey_stamp_.assign(cell_keys, 0);
    col_count_.assign(static_cast<std::size_t>(index_.total_columns()), 0);
    col_stamp_.assign(static_cast<std::size_t>(index_.total_columns()), 0);
  }
  recompute_digests(audit_baseline_);
}

void ConfigController::recompute_digests(std::vector<std::uint64_t>& out) const {
  const auto& g = fabric_->geometry();
  out.assign(static_cast<std::size_t>(index_.total_frames()), 0);
  if (fast_path()) {
    // Linear sweep over the SoA token columns — one kernel call, and the
    // parallel backends band it over disjoint per-column output ranges.
    CellSweepCtx ctx;
    ctx.tokens = columns_.tokens();
    ctx.nondefault = columns_.occupancy();
    ctx.row_default = columns_.row_default_tokens();
    ctx.rows = g.clb_rows;
    ctx.cells_per_clb = g.cells_per_clb;
    ctx.clb_cols = g.clb_cols;
    ctx.frames_per_cell = g.frames_per_cell_config;
    ctx.frames_per_clb_column = g.frames_per_clb_column;
    ctx.clb_base = index_.clb_frame_id(0, 0);
    kernel_->cell_digest_sweep(ctx, out.data());
  } else {
    const fabric::LogicCellConfig def{};
    for (int row = 0; row < g.clb_rows; ++row) {
      for (int col = 0; col < g.clb_cols; ++col) {
        for (int cell = 0; cell < g.cells_per_clb; ++cell) {
          const fabric::LogicCellConfig& cfg =
              fabric_->cell(ClbCoord{row, col}, cell);
          if (cfg == def) continue;
          const std::uint64_t d = FrameImage::cell_token(row, def) ^
                                  FrameImage::cell_token(row, cfg);
          const std::int32_t base = index_.cell_frame_base(col, cell);
          for (int f = 0; f < g.frames_per_cell_config; ++f)
            out[static_cast<std::size_t>(base + f)] ^= d;
        }
      }
    }
  }
  const auto& skel = fabric_->graph().skeleton();
  for (const fabric::NetId n : fabric_->live_nets()) {
    const fabric::RouteTree& tree = fabric_->net(n);
    for (const fabric::RouteEdge& e : tree.edges)
      out[static_cast<std::size_t>(
          index_.id(mapper_.pip_frame(skel, e)))] ^=
          FrameImage::edge_token(e);
    for (const fabric::NodeId s : tree.sources)
      out[static_cast<std::size_t>(index_.id(
          source_frame(SourceChange{n, s, true})))] ^=
          FrameImage::source_token(s);
  }
}

void ConfigController::audit_image() const {
  constexpr const char* kWhere = "FrameImage";
  std::vector<std::uint64_t> current;
  recompute_digests(current);
  for (std::int32_t id = 0; id < index_.total_frames(); ++id) {
    const std::size_t i = static_cast<std::size_t>(id);
    // The image accumulates deltas relative to the construction-time state.
    const std::uint64_t expect = current[i] ^ audit_baseline_[i];
    RELOGIC_AUDIT_CHECK(
        image_.digest_id(id) == expect, kWhere,
        "frame " + std::to_string(id) + " digest " +
            std::to_string(image_.digest_id(id)) + " != recomputed " +
            std::to_string(expect) +
            " (incremental delta bug, or a fabric mutation bypassed the "
            "controller)");
    RELOGIC_AUDIT_CHECK(expect == 0 || image_.ever_touched_id(id), kWhere,
                        "frame " + std::to_string(id) +
                            " holds content but was never touched through "
                            "the controller");
  }
}

FrameAddress ConfigController::source_frame(const SourceChange& sc) const {
  // The output mux of a cell / pad enable lives in the node's own tile.
  const auto& skel = fabric_->graph().skeleton();
  const auto info = skel.info(sc.node);
  if (info.kind == fabric::NodeKind::kPad) {
    const int col = info.tile.col < fabric_->geometry().clb_cols / 2 ? 0 : 1;
    return FrameAddress{ColumnType::kIob, static_cast<std::int16_t>(col), 0};
  }
  return mapper_.pip_frame(skel, fabric::RouteEdge{sc.node, sc.node});
}

void ConfigController::frames_of(const ConfigOp& op, FrameSet& out) const {
  if (fast_path() && granularity_ != WriteGranularity::kColumn) {
    // kColumn keeps the marker path below: its centre-frame markers carry
    // exact frame positions that a column bitmap would erase, and the
    // legacy regime is not on the hot path.
    frames_of_fast(op, out);
    return;
  }
  out.clear();
  const auto& g = fabric_->geometry();
  const auto& skel = fabric_->graph().skeleton();
  const bool widen = granularity_ == WriteGranularity::kColumn;
  if (widen) {
    // Collect one marker id per touched column first (the column's first
    // frame id — centre frames pass through as themselves), dedupe, then
    // expand each distinct column to its contiguous frame run. Expansion
    // order follows the sorted markers, and runs are disjoint and laid out
    // in marker order, so `out` needs no second sort.
    columns_scratch_.clear();
    for (const ConfigAction& a : op.actions) {
      if (const auto* cw = std::get_if<CellWrite>(&a)) {
        // Same bounds contract the old FrameMapper::cell_frames path
        // enforced — arithmetic id derivation must not spill into a
        // neighbouring column region on a malformed op.
        RELOGIC_CHECK(g.in_bounds(cw->clb));
        RELOGIC_CHECK(cw->cell >= 0 && cw->cell < g.cells_per_clb);
        columns_scratch_.push(index_.clb_frame_id(cw->clb.col, 0));
      } else {
        const FrameAddress f =
            std::holds_alternative<EdgeChange>(a)
                ? mapper_.pip_frame(skel, std::get<EdgeChange>(a).edge)
                : source_frame(std::get<SourceChange>(a));
        switch (f.type) {
          case ColumnType::kClb:
            columns_scratch_.push(index_.clb_frame_id(f.column, 0));
            break;
          case ColumnType::kIob:
            columns_scratch_.push(index_.iob_frame_id(f.column, 0));
            break;
          case ColumnType::kCenter:
            columns_scratch_.push(index_.id(f));
            break;
        }
      }
    }
    columns_scratch_.normalize();
    for (const std::int32_t marker : columns_scratch_) {
      if (index_.is_clb(marker)) {
        out.push_run(marker, g.frames_per_clb_column);
      } else if (index_.is_iob(marker)) {
        out.push_run(marker, g.frames_per_iob_column);
      } else {
        out.push(marker);  // centre frame: written as mapped, never widened
      }
    }
    return;
  }
  for (const ConfigAction& a : op.actions) {
    if (const auto* cw = std::get_if<CellWrite>(&a)) {
      // A cell's frame group is contiguous in id space. Bounds-checked as
      // the old FrameMapper::cell_frames path was.
      RELOGIC_CHECK(g.in_bounds(cw->clb));
      RELOGIC_CHECK(cw->cell >= 0 && cw->cell < g.cells_per_clb);
      out.push_run(index_.cell_frame_base(cw->clb.col, cw->cell),
                   g.frames_per_cell_config);
    } else if (const auto* ec = std::get_if<EdgeChange>(&a)) {
      out.push(index_.id(mapper_.pip_frame(skel, ec->edge)));
    } else if (const auto* sc = std::get_if<SourceChange>(&a)) {
      out.push(index_.id(source_frame(*sc)));
    }
  }
  out.normalize();
}

void ConfigController::simulate_deltas(const ConfigOp& op,
                                       FrameDeltaMap& out) const {
  out.reset(index_.total_frames());
  // Overlay of the op's own earlier actions: within one op, a later action
  // is effective against the state the earlier ones will have produced.
  overlay_cells_.clear();
  overlay_edges_.clear();
  overlay_sources_.clear();
  accumulate_deltas(op, out);
}

void ConfigController::accumulate_deltas(const ConfigOp& op,
                                         FrameDeltaMap& out) const {
  const auto& g = fabric_->geometry();
  for (const ConfigAction& a : op.actions) {
    if (const auto* cw = std::get_if<CellWrite>(&a)) {
      const std::uint64_t key =
          pack_cell_key(cw->clb.row, cw->clb.col, cw->cell);
      const auto [it, inserted] = overlay_cells_.try_emplace(key, cw->cfg);
      const fabric::LogicCellConfig before =
          inserted ? fabric_->cell(cw->clb, cw->cell) : it->second;
      if (!inserted) it->second = cw->cfg;
      if (before == cw->cfg) continue;
      const std::uint64_t d = FrameImage::cell_token(cw->clb.row, before) ^
                              FrameImage::cell_token(cw->clb.row, cw->cfg);
      const std::int32_t base = index_.cell_frame_base(cw->clb.col, cw->cell);
      for (int f = 0; f < g.frames_per_cell_config; ++f)
        out.xor_delta(base + f, d);
    } else if (const auto* ec = std::get_if<EdgeChange>(&a)) {
      const EdgeKey key{ec->net, ec->edge.from, ec->edge.to};
      const auto [it, inserted] = overlay_edges_.try_emplace(key, ec->add);
      const bool on = inserted ? (fabric_->net_exists(ec->net) &&
                                  fabric_->net(ec->net).has_edge(ec->edge))
                               : it->second;
      if (!inserted) it->second = ec->add;
      if (on == ec->add) continue;
      out.xor_delta(index_.id(mapper_.pip_frame(fabric_->graph().skeleton(),
                                                 ec->edge)),
                    FrameImage::edge_token(ec->edge));
    } else if (const auto* sc = std::get_if<SourceChange>(&a)) {
      const std::uint64_t key =
          (static_cast<std::uint64_t>(sc->net) << 32) | sc->node;
      const auto [it, inserted] = overlay_sources_.try_emplace(key, sc->attach);
      const bool on = inserted ? (fabric_->net_exists(sc->net) &&
                                  fabric_->net(sc->net).has_source(sc->node))
                               : it->second;
      if (!inserted) it->second = sc->attach;
      if (on == sc->attach) continue;
      out.xor_delta(index_.id(source_frame(*sc)),
                    FrameImage::source_token(sc->node));
    }
  }
}

ApplyResult ConfigController::price_full(const FrameSet& frames) const {
  if (fast_path())
    return price_ids(frames.begin(), static_cast<int>(frames.size()));
  // One pass: ids are sorted and column-contiguous (FrameIndex layout), so
  // each column is one run — count it and charge its port transaction as
  // the run closes. O(frames), no per-column rescan, no allocation.
  ApplyResult result;
  result.frames_written = static_cast<int>(frames.size());
  const int frame_bits = fabric_->geometry().frame_length_bits();
  std::int32_t run_column = -1;
  int run_frames = 0;
  for (const std::int32_t id : frames) {
    const std::int32_t col = index_.column_of(id);
    if (col != run_column) {
      if (run_frames > 0) result.time += port_->write_time(run_frames, frame_bits);
      run_column = col;
      run_frames = 0;
      ++result.columns_touched;
    }
    ++run_frames;
  }
  if (run_frames > 0) result.time += port_->write_time(run_frames, frame_bits);
  return result;
}

int ConfigController::column_count(const FrameSet& frames) const {
  int columns = 0;
  std::int32_t run_column = -1;
  for (const std::int32_t id : frames) {
    const std::int32_t col = index_.column_of(id);
    if (col != run_column) {
      run_column = col;
      ++columns;
    }
  }
  return columns;
}

ApplyResult ConfigController::price(const FrameSet& frames,
                                    const FrameDeltaMap& deltas) const {
  if (granularity_ != WriteGranularity::kDirtyFrame)
    return price_full(frames);
  dirty_scratch_.clear();
  for (const std::int32_t id : deltas.touched())
    if (deltas.delta(id) != 0) dirty_scratch_.push(id);
  dirty_scratch_.normalize();
  ApplyResult result = price_full(dirty_scratch_);
  result.frames_skipped =
      static_cast<int>(frames.size()) - result.frames_written;
  return result;
}

ApplyResult ConfigController::preview(const ConfigOp& op) const {
  // Counted mode: the dirty fast path never materializes the op's frame id
  // list — it only needs |frames_of(op)|, which the run collectors count.
  if (fast_path() && granularity_ == WriteGranularity::kDirtyFrame)
    return preview_fast(op, nullptr);
  frames_of(op, frames_scratch_);
  return preview(op, frames_scratch_);
}

ApplyResult ConfigController::preview(const ConfigOp& op,
                                      const FrameSet& frames) const {
  if (granularity_ != WriteGranularity::kDirtyFrame)
    return price_full(frames);
  if (fast_path()) return preview_fast(op, &frames);
  simulate_deltas(op, deltas_scratch_);
  return price(frames, deltas_scratch_);
}

ApplyResult ConfigController::preview(const FrameSet& frames) const {
  return price_full(frames);
}

int ConfigController::readback_frames(const ConfigOp& op) const {
  frames_of(op, frames_scratch_);
  return static_cast<int>(frames_scratch_.size());
}

void ConfigController::preview_sequence(
    const std::vector<ConfigOp>& ops,
    const std::function<void(std::size_t, const ApplyResult&,
                             const FrameSet&)>& visit) const {
  // One persistent overlay across the whole sequence: op k's deltas are
  // computed against the fabric plus everything ops 0..k-1 would have
  // written, so per-op dirty decisions match a sequential apply exactly.
  if (fast_path()) {
    clear_overlays_fast();
  } else {
    overlay_cells_.clear();
    overlay_edges_.clear();
    overlay_sources_.clear();
  }
  for (std::size_t i = 0; i < ops.size(); ++i) {
    frames_of(ops[i], frames_scratch_);
    if (granularity_ != WriteGranularity::kDirtyFrame) {
      visit(i, price_full(frames_scratch_), frames_scratch_);
      continue;
    }
    deltas_scratch_.reset(index_.total_frames());
    if (fast_path()) {
      // Cell deltas come out as runs, net deltas in the map; the written
      // set handed to the visitor is materialized from both (runs and net
      // frames are disjoint id ranges, so push + normalize dedups nothing).
      begin_op_fast();
      accumulate_deltas_fast(ops[i], deltas_scratch_, false);
      dirty_scratch_.clear();
      if (!deltas_scratch_.touched().empty())
        kernel_->scan_dirty(deltas_scratch_.words(),
                            deltas_scratch_.word_count(),
                            deltas_scratch_.delta_data(),
                            dirty_scratch_.raw_ids());
      ApplyResult r = price_runs(dirty_scratch_.begin(),
                                 static_cast<int>(dirty_scratch_.size()));
      r.frames_skipped =
          static_cast<int>(frames_scratch_.size()) - r.frames_written;
      const int fpc = fabric_->geometry().frames_per_cell_config;
      for (std::size_t k = 0; k < run_base_.size(); ++k)
        if (run_delta_[k] != 0) dirty_scratch_.push_run(run_base_[k], fpc);
      dirty_scratch_.normalize();
      visit(i, r, dirty_scratch_);
      continue;
    }
    accumulate_deltas(ops[i], deltas_scratch_);
    const ApplyResult r = price(frames_scratch_, deltas_scratch_);
    // price() left the dirty subset — exactly the written set — in
    // dirty_scratch_.
    visit(i, r, dirty_scratch_);
  }
}

ApplyResult ConfigController::apply(const ConfigOp& op,
                                    bool allow_lut_ram_columns) {
  // Counted mode (see preview(op)): skip materializing the frame id list.
  if (fast_path() && granularity_ == WriteGranularity::kDirtyFrame)
    return apply_fast(op, nullptr, allow_lut_ram_columns);
  frames_of(op, frames_scratch_);
  return apply(op, frames_scratch_, allow_lut_ram_columns);
}

ApplyResult ConfigController::apply(const ConfigOp& op, const FrameSet& frames,
                                    bool allow_lut_ram_columns) {
  if (fast_path()) return apply_fast(op, &frames, allow_lut_ram_columns);
  if (!allow_lut_ram_columns) check_lut_ram_columns(op, frames, nullptr);

  // Apply the structural actions in order, collecting the exact per-frame
  // content deltas (before/after values observed on the fabric, so injected
  // configuration-memory faults are reflected in the shadow image too).
  const auto& g = fabric_->geometry();
  deltas_scratch_.reset(index_.total_frames());
  int effective = 0;
  for (const ConfigAction& a : op.actions) {
    if (const auto* cw = std::get_if<CellWrite>(&a)) {
      const fabric::LogicCellConfig before = fabric_->cell(cw->clb, cw->cell);
      if (fabric_->set_cell_config(cw->clb, cw->cell, cw->cfg)) {
        ++effective;
        const fabric::LogicCellConfig after = fabric_->cell(cw->clb, cw->cell);
        const std::uint64_t d = FrameImage::cell_token(cw->clb.row, before) ^
                                FrameImage::cell_token(cw->clb.row, after);
        const std::int32_t base =
            index_.cell_frame_base(cw->clb.col, cw->cell);
        for (int f = 0; f < g.frames_per_cell_config; ++f)
          deltas_scratch_.xor_delta(base + f, d);
      }
    } else if (const auto* ec = std::get_if<EdgeChange>(&a)) {
      const auto& tree = fabric_->net(ec->net);
      if (ec->add ? !tree.has_edge(ec->edge) : tree.has_edge(ec->edge)) {
        if (ec->add)
          fabric_->add_edge(ec->net, ec->edge);
        else
          fabric_->remove_edge(ec->net, ec->edge);
        ++effective;
        deltas_scratch_.xor_delta(
            index_.id(mapper_.pip_frame(fabric_->graph().skeleton(),
                                        ec->edge)),
            FrameImage::edge_token(ec->edge));
      }
    } else if (const auto* sc = std::get_if<SourceChange>(&a)) {
      const auto& tree = fabric_->net(sc->net);
      if (sc->attach ? !tree.has_source(sc->node) : tree.has_source(sc->node)) {
        if (sc->attach)
          fabric_->attach_source(sc->net, sc->node);
        else
          fabric_->detach_source(sc->net, sc->node);
        ++effective;
        deltas_scratch_.xor_delta(index_.id(source_frame(*sc)),
                                  FrameImage::source_token(sc->node));
      }
    }
  }

  // Commit the deltas to the shadow image, then price per granularity.
  for (const std::int32_t id : deltas_scratch_.touched())
    image_.apply_delta_id(id, deltas_scratch_.delta(id));
  return finish_apply(op, price(frames, deltas_scratch_), effective);
}

ApplyResult ConfigController::finish_apply(const ConfigOp& op,
                                           ApplyResult result, int effective) {
  result.effective_actions = effective;

  ++totals_.ops;
  totals_.frames_written += result.frames_written;
  totals_.frames_skipped += result.frames_skipped;
  totals_.columns_touched += result.columns_touched;
  const SimTime span_start = totals_.time;
  totals_.time += result.time;

  if (trace_) {
    trace_.complete("config", op.label, span_start, result.time,
                    {obs::arg("granularity", to_string(granularity_)),
                     obs::arg("frames_written", result.frames_written),
                     obs::arg("frames_skipped", result.frames_skipped),
                     obs::arg("columns", result.columns_touched),
                     obs::arg("effective_actions", result.effective_actions)});
    trace_.counter("frames_written", totals_.time,
                   static_cast<double>(totals_.frames_written));
    set_log_context("config", totals_.time);
  }

  RELOGIC_LOG(kDebug) << "config op '" << op.label << "': "
                      << result.frames_written << " frames ("
                      << result.frames_skipped << " clean-skipped), "
                      << result.columns_touched << " columns, "
                      << result.time.to_string();
  return result;
}

void ConfigController::check_lut_ram_columns(
    const ConfigOp& op, const std::set<CellKey>* extra_rewritten) const {
  frames_of(op, frames_scratch_);
  check_lut_ram_columns(op, frames_scratch_, extra_rewritten);
}

// ---- optimized path (non-reference kernels) ---------------------------------
// Everything below must stay byte-identical to the reference path above:
// the flatpath golden-equivalence suite sweeps every backend x granularity
// x device against the serial reference.

void ConfigController::frames_of_fast(const ConfigOp& op,
                                      FrameSet& out) const {
  out.clear();
  const auto& g = fabric_->geometry();
  const auto& skel = fabric_->graph().skeleton();
  const int fpc = g.frames_per_cell_config;
  op_word_marks_.clear();
  // Mark each action's frames in the per-op bitmap. A cell's frame group is
  // fpc ids starting at a multiple of fpc, so with the Virtex value (4) it
  // never straddles a word; the general case takes the two-word path.
  for (const ConfigAction& a : op.actions) {
    if (const auto* cw = std::get_if<CellWrite>(&a)) {
      // Same bounds contract as the reference path.
      RELOGIC_CHECK(g.in_bounds(cw->clb));
      RELOGIC_CHECK(cw->cell >= 0 && cw->cell < g.cells_per_clb);
      const std::int32_t base = index_.cell_frame_base(cw->clb.col, cw->cell);
      const int off = base & 63;
      const std::size_t w = static_cast<std::size_t>(base) >> 6;
      if (off + fpc <= 64) {
        op_words_[w] |= ((std::uint64_t{1} << fpc) - 1) << off;
        op_word_marks_.push_back(static_cast<std::int32_t>(w));
      } else {
        for (int f = 0; f < fpc; ++f) {
          const std::int32_t id = base + f;
          op_words_[static_cast<std::size_t>(id) >> 6] |= std::uint64_t{1}
                                                          << (id & 63);
          op_word_marks_.push_back(id >> 6);
        }
      }
    } else {
      const std::int32_t id =
          std::holds_alternative<EdgeChange>(a)
              ? index_.id(mapper_.pip_frame(skel, std::get<EdgeChange>(a).edge))
              : index_.id(source_frame(std::get<SourceChange>(a)));
      op_words_[static_cast<std::size_t>(id) >> 6] |= std::uint64_t{1}
                                                      << (id & 63);
      op_word_marks_.push_back(id >> 6);
    }
  }
  kernel_->expand_bits(op_words_.data(), static_cast<int>(op_words_.size()),
                       out.raw_ids());
  for (const std::int32_t w : op_word_marks_)
    op_words_[static_cast<std::size_t>(w)] = 0;
}

void ConfigController::clear_overlays_fast() const {
  if (++overlay_epoch_ == 0) {  // stamp wrap: restart the epoch space
    for (CellOverlay& ov : overlay_) ov.stamp = 0;
    overlay_epoch_ = 1;
  }
  overlay_edges_.clear();
  overlay_sources_.clear();
}

void ConfigController::begin_op_fast() const {
  if (++op_epoch_ == 0) {  // stamp wrap: restart the epoch space
    std::fill(runkey_stamp_.begin(), runkey_stamp_.end(), 0);
    std::fill(col_stamp_.begin(), col_stamp_.end(), 0);
    op_epoch_ = 1;
  }
  run_base_.clear();
  run_delta_.clear();
  run_col_.clear();
  op_word_marks_.clear();
  net_frame_marks_ = 0;
}

void ConfigController::accumulate_deltas_fast(const ConfigOp& op,
                                              FrameDeltaMap& net_out,
                                              bool count_net_frames) const {
  const auto& g = fabric_->geometry();
  const std::uint64_t* toks = columns_.tokens();
  // Counting mode: mark each net action's frame (effective or not) in the
  // per-op bitmap so distinct-frame counting matches |frames_of(op)|.
  const auto mark_net = [&](std::int32_t id) {
    const std::size_t w = static_cast<std::size_t>(id) >> 6;
    const std::uint64_t m = std::uint64_t{1} << (id & 63);
    if (!(op_words_[w] & m)) {
      op_words_[w] |= m;
      op_word_marks_.push_back(static_cast<std::int32_t>(w));
      ++net_frame_marks_;
    }
  };
  for (const ConfigAction& a : op.actions) {
    if (const auto* cw = std::get_if<CellWrite>(&a)) {
      RELOGIC_CHECK(g.in_bounds(cw->clb));
      RELOGIC_CHECK(cw->cell >= 0 && cw->cell < g.cells_per_clb);
      const std::size_t slot = static_cast<std::size_t>(
          columns_.slot(cw->clb.row, cw->clb.col, cw->cell));
      const std::size_t key = static_cast<std::size_t>(cw->clb.col) *
                                  static_cast<std::size_t>(g.cells_per_clb) +
                              static_cast<std::size_t>(cw->cell);
      if (runkey_stamp_[key] != op_epoch_) {
        runkey_stamp_[key] = op_epoch_;
        runkey_idx_[key] = static_cast<std::int32_t>(run_base_.size());
        run_base_.push_back(index_.cell_frame_base(cw->clb.col, cw->cell));
        run_delta_.push_back(0);
        run_col_.push_back(1 + cw->clb.col);  // dense column of a CLB col
      }
      CellOverlay& ov = overlay_[slot];
      const std::uint64_t before =
          ov.stamp == overlay_epoch_ ? ov.tok : toks[slot];
      const std::uint64_t after = FrameImage::cell_token(cw->clb.row, cw->cfg);
      ov.stamp = overlay_epoch_;
      ov.tok = after;
      // before ^ after telescopes across repeated writes to the same slot,
      // leaving op-entry token ^ final token per cell in the run's delta.
      if (before != after)
        run_delta_[static_cast<std::size_t>(runkey_idx_[key])] ^=
            before ^ after;
    } else if (const auto* ec = std::get_if<EdgeChange>(&a)) {
      std::int32_t id = -1;
      if (count_net_frames) {
        id = index_.id(mapper_.pip_frame(fabric_->graph().skeleton(),
                                         ec->edge));
        mark_net(id);
      }
      const EdgeKey key{ec->net, ec->edge.from, ec->edge.to};
      const auto [it, inserted] = overlay_edges_.try_emplace(key, ec->add);
      const bool on = inserted ? (fabric_->net_exists(ec->net) &&
                                  fabric_->net(ec->net).has_edge(ec->edge))
                               : it->second;
      if (!inserted) it->second = ec->add;
      if (on == ec->add) continue;
      if (id < 0)
        id = index_.id(mapper_.pip_frame(fabric_->graph().skeleton(),
                                         ec->edge));
      net_out.xor_delta(id, FrameImage::edge_token(ec->edge));
    } else if (const auto* sc = std::get_if<SourceChange>(&a)) {
      std::int32_t id = -1;
      if (count_net_frames) {
        id = index_.id(source_frame(*sc));
        mark_net(id);
      }
      const std::uint64_t key =
          (static_cast<std::uint64_t>(sc->net) << 32) | sc->node;
      const auto [it, inserted] = overlay_sources_.try_emplace(key, sc->attach);
      const bool on = inserted ? (fabric_->net_exists(sc->net) &&
                                  fabric_->net(sc->net).has_source(sc->node))
                               : it->second;
      if (!inserted) it->second = sc->attach;
      if (on == sc->attach) continue;
      if (id < 0) id = index_.id(source_frame(*sc));
      net_out.xor_delta(id, FrameImage::source_token(sc->node));
    }
  }
}

ApplyResult ConfigController::price_ids(const std::int32_t* ids, int n) const {
  PriceTables tables;
  tables.column_of = col_of_.data();
  tables.frame_bits = frame_bits_;
  tables.port = port_;
  tables.time_memo = time_memo_.data();
  tables.memo_valid = memo_valid_.data();
  tables.max_run = max_run_;
  const PriceResult p = kernel_->price(ids, n, tables);
  ApplyResult result;
  result.frames_written = p.frames;
  result.columns_touched = p.columns;
  result.time = p.time;
  return result;
}

ApplyResult ConfigController::price_runs(const std::int32_t* net_dirty,
                                         int n_net) const {
  // Per-column frame counts instead of a sorted id walk: a column's frames
  // are contiguous in id order, so the reference one-pass pricing charges
  // exactly one transaction per touched column with the column's total
  // frame count. Column visit order is irrelevant — the frame / column
  // counters and the SimTime sum are all commutative — so touched columns
  // are collected in an epoch-stamped list rather than a sorted bitmap.
  const int fpc = fabric_->geometry().frames_per_cell_config;
  ApplyResult result;
  col_list_.clear();
  const std::size_t nruns = run_base_.size();
  for (std::size_t i = 0; i < nruns; ++i) {
    if (run_delta_[i] == 0) continue;
    const std::size_t col = static_cast<std::size_t>(run_col_[i]);
    if (col_stamp_[col] != op_epoch_) {
      col_stamp_[col] = op_epoch_;
      col_count_[col] = 0;
      col_list_.push_back(static_cast<std::int32_t>(col));
    }
    col_count_[col] += fpc;
    result.frames_written += fpc;
  }
  for (int i = 0; i < n_net; ++i) {
    const std::size_t col =
        static_cast<std::size_t>(col_of_[static_cast<std::size_t>(net_dirty[i])]);
    if (col_stamp_[col] != op_epoch_) {
      col_stamp_[col] = op_epoch_;
      col_count_[col] = 0;
      col_list_.push_back(static_cast<std::int32_t>(col));
    }
    ++col_count_[col];
    ++result.frames_written;
  }
  for (const std::int32_t c : col_list_) {
    const int run = col_count_[static_cast<std::size_t>(c)];
    if (run <= max_run_) {
      if (!memo_valid_[static_cast<std::size_t>(run)]) {
        time_memo_[static_cast<std::size_t>(run)] =
            port_->write_time(run, frame_bits_);
        memo_valid_[static_cast<std::size_t>(run)] = 1;
      }
      result.time += time_memo_[static_cast<std::size_t>(run)];
    } else {
      result.time += port_->write_time(run, frame_bits_);
    }
  }
  result.columns_touched = static_cast<int>(col_list_.size());
  return result;
}

ApplyResult ConfigController::preview_fast(const ConfigOp& op,
                                           const FrameSet* frames) const {
  clear_overlays_fast();
  begin_op_fast();
  deltas_scratch_.reset(index_.total_frames());
  accumulate_deltas_fast(op, deltas_scratch_, frames == nullptr);
  dirty_scratch_.clear();
  if (!deltas_scratch_.touched().empty())
    kernel_->scan_dirty(deltas_scratch_.words(), deltas_scratch_.word_count(),
                        deltas_scratch_.delta_data(),
                        dirty_scratch_.raw_ids());
  ApplyResult result =
      price_runs(dirty_scratch_.begin(), static_cast<int>(dirty_scratch_.size()));
  const int total =
      frames != nullptr
          ? static_cast<int>(frames->size())
          : static_cast<int>(run_base_.size()) *
                    fabric_->geometry().frames_per_cell_config +
                net_frame_marks_;
  result.frames_skipped = total - result.frames_written;
  for (const std::int32_t w : op_word_marks_)
    op_words_[static_cast<std::size_t>(w)] = 0;
  return result;
}

ApplyResult ConfigController::apply_fast(const ConfigOp& op,
                                         const FrameSet* frames,
                                         bool allow_lut_ram_columns) {
  if (!allow_lut_ram_columns) check_lut_ram_columns_fast(op);
  begin_op_fast();

  const auto& g = fabric_->geometry();
  const std::uint64_t* toks = columns_.tokens();
  const int fpc = g.frames_per_cell_config;
  const bool counting = frames == nullptr;
  if (counting) {
    // Counted mode stands in for the frames_of(op) call the reference path
    // makes first — replicate its validation order so a malformed op still
    // throws before any fabric mutation, and mark the net frames for the
    // distinct count.
    for (const ConfigAction& a : op.actions) {
      if (const auto* cw = std::get_if<CellWrite>(&a)) {
        RELOGIC_CHECK(g.in_bounds(cw->clb));
        RELOGIC_CHECK(cw->cell >= 0 && cw->cell < g.cells_per_clb);
      } else {
        const std::int32_t id =
            std::holds_alternative<EdgeChange>(a)
                ? index_.id(mapper_.pip_frame(fabric_->graph().skeleton(),
                                              std::get<EdgeChange>(a).edge))
                : index_.id(source_frame(std::get<SourceChange>(a)));
        const std::size_t w = static_cast<std::size_t>(id) >> 6;
        const std::uint64_t m = std::uint64_t{1} << (id & 63);
        if (!(op_words_[w] & m)) {
          op_words_[w] |= m;
          op_word_marks_.push_back(static_cast<std::int32_t>(w));
          ++net_frame_marks_;
        }
      }
    }
  }

  // Apply the structural actions in order. Cell deltas accumulate per RUN
  // (one frames_per_cell run per distinct cell) instead of per frame; the
  // before/after tokens come straight from the SoA columns — the
  // CellColumns listener has already folded the observed after-value
  // (faults included) by the time set_cell_config returns, so the loop
  // hashes nothing itself. Net deltas keep the per-frame map.
  deltas_scratch_.reset(index_.total_frames());
  int effective = 0;
  for (const ConfigAction& a : op.actions) {
    if (const auto* cw = std::get_if<CellWrite>(&a)) {
      // Bounds were validated before any mutation: by the counting pre-pass
      // above, or by the caller's frames_of walk when a frame set was given.
      const std::size_t slot = static_cast<std::size_t>(
          columns_.slot(cw->clb.row, cw->clb.col, cw->cell));
      const std::size_t key = static_cast<std::size_t>(cw->clb.col) *
                                  static_cast<std::size_t>(g.cells_per_clb) +
                              static_cast<std::size_t>(cw->cell);
      if (runkey_stamp_[key] != op_epoch_) {
        runkey_stamp_[key] = op_epoch_;
        runkey_idx_[key] = static_cast<std::int32_t>(run_base_.size());
        run_base_.push_back(index_.cell_frame_base(cw->clb.col, cw->cell));
        run_delta_.push_back(0);
        run_col_.push_back(1 + cw->clb.col);  // dense column of a CLB col
      }
      const std::uint64_t before = toks[slot];
      if (fabric_->set_cell_config(cw->clb, cw->cell, cw->cfg)) {
        ++effective;
        run_delta_[static_cast<std::size_t>(runkey_idx_[key])] ^=
            before ^ toks[slot];
      }
    } else if (const auto* ec = std::get_if<EdgeChange>(&a)) {
      const auto& tree = fabric_->net(ec->net);
      if (ec->add ? !tree.has_edge(ec->edge) : tree.has_edge(ec->edge)) {
        if (ec->add)
          fabric_->add_edge(ec->net, ec->edge);
        else
          fabric_->remove_edge(ec->net, ec->edge);
        ++effective;
        deltas_scratch_.xor_delta(
            index_.id(mapper_.pip_frame(fabric_->graph().skeleton(),
                                        ec->edge)),
            FrameImage::edge_token(ec->edge));
      }
    } else if (const auto* sc = std::get_if<SourceChange>(&a)) {
      const auto& tree = fabric_->net(sc->net);
      if (sc->attach ? !tree.has_source(sc->node) : tree.has_source(sc->node)) {
        if (sc->attach)
          fabric_->attach_source(sc->net, sc->node);
        else
          fabric_->detach_source(sc->net, sc->node);
        ++effective;
        deltas_scratch_.xor_delta(index_.id(source_frame(*sc)),
                                  FrameImage::source_token(sc->node));
      }
    }
  }

  // Commit: cell runs directly (non-zero net delta per run, same skip rule
  // as FrameImage::apply_delta_id), net deltas via the kernel's fused
  // commit + dirty scan. Run frames and net frames are disjoint id ranges.
  // A run's ever-touched bytes are contiguous, so the steady-state case
  // (all already tracked) is one word compare instead of fpc byte tests.
  std::uint64_t* digest = image_.digest_data();
  std::uint8_t* ever = image_.ever_touched_data();
  std::size_t& tracked = image_.tracked_counter();
  for (std::size_t i = 0; i < run_base_.size(); ++i) {
    const std::uint64_t d = run_delta_[i];
    if (d == 0) continue;
    const std::size_t base = static_cast<std::size_t>(run_base_[i]);
    for (int f = 0; f < fpc; ++f)
      digest[base + static_cast<std::size_t>(f)] ^= d;
    if (fpc == 4) {
      std::uint32_t e;
      std::memcpy(&e, ever + base, 4);
      if (e == 0x01010101u) continue;
    }
    for (int f = 0; f < fpc; ++f) {
      if (!ever[base + static_cast<std::size_t>(f)]) {
        ever[base + static_cast<std::size_t>(f)] = 1;
        ++tracked;
      }
    }
  }
  ApplyResult result;
  if (granularity_ == WriteGranularity::kDirtyFrame) {
    dirty_scratch_.clear();
    if (!deltas_scratch_.touched().empty())
      kernel_->commit_scan(deltas_scratch_.words(),
                           deltas_scratch_.word_count(),
                           deltas_scratch_.delta_data(), digest, ever, tracked,
                           &dirty_scratch_.raw_ids());
    result = price_runs(dirty_scratch_.begin(),
                        static_cast<int>(dirty_scratch_.size()));
    const int total = counting ? static_cast<int>(run_base_.size()) * fpc +
                                     net_frame_marks_
                               : static_cast<int>(frames->size());
    result.frames_skipped = total - result.frames_written;
  } else {
    if (!deltas_scratch_.touched().empty())
      kernel_->commit_scan(deltas_scratch_.words(),
                           deltas_scratch_.word_count(),
                           deltas_scratch_.delta_data(), digest, ever, tracked,
                           nullptr);
    result = price_ids(frames->begin(), static_cast<int>(frames->size()));
  }
  if (counting) {
    for (const std::int32_t w : op_word_marks_)
      op_words_[static_cast<std::size_t>(w)] = 0;
  }
  return finish_apply(op, result, effective);
}

void ConfigController::check_lut_ram_columns_fast(const ConfigOp& op) const {
  // No live LUT-RAM anywhere -> nothing the op touches can violate the
  // paper's Sec. 2 restriction; skip the column derivation entirely.
  if (fabric_->live_lut_ram_total() == 0) return;
  // The CLB-column set of an op's frames equals the CLB-column set of its
  // actions (widening only adds frames inside already-touched columns), so
  // the check derives columns from the actions directly — no frame walk.
  const auto& g = fabric_->geometry();
  const auto& skel = fabric_->graph().skeleton();
  bool any = false;
  for (const ConfigAction& a : op.actions) {
    int col = -1;
    if (const auto* cw = std::get_if<CellWrite>(&a)) {
      RELOGIC_CHECK(g.in_bounds(cw->clb));
      col = cw->clb.col;
    } else {
      const FrameAddress f =
          std::holds_alternative<EdgeChange>(a)
              ? mapper_.pip_frame(skel, std::get<EdgeChange>(a).edge)
              : source_frame(std::get<SourceChange>(a));
      if (f.type == ColumnType::kClb) col = f.column;
    }
    if (col < 0) continue;
    col_words_[static_cast<std::size_t>(col) >> 6] |= std::uint64_t{1}
                                                      << (col & 63);
    any = true;
  }
  if (!any) return;

  // Same lazy exemption set as the reference check (built at most once per
  // op, shared across columns).
  bool rewrites_built = false;
  const auto rewritten = [&](int row, int col, int cell) {
    if (!rewrites_built) {
      rewrites_built = true;
      rewrites_scratch_.clear();
      for (const ConfigAction& a : op.actions) {
        if (const auto* cw = std::get_if<CellWrite>(&a))
          rewrites_scratch_.push_back(
              pack_cell_key(cw->clb.row, cw->clb.col, cw->cell));
      }
      std::sort(rewrites_scratch_.begin(), rewrites_scratch_.end());
    }
    return std::binary_search(rewrites_scratch_.begin(),
                              rewrites_scratch_.end(),
                              pack_cell_key(row, col, cell));
  };

  for (std::size_t w = 0; w < col_words_.size(); ++w) {
    std::uint64_t bits = col_words_[w];
    col_words_[w] = 0;
    while (bits) {
      const int b = std::countr_zero(bits);
      bits &= bits - 1;
      const int col = static_cast<int>(w * 64) + b;
      if (fabric_->live_lut_ram_in_col(col) == 0) continue;
      for (int row = 0; row < g.clb_rows; ++row) {
        const ClbCoord c{row, col};
        for (int k = 0; k < g.cells_per_clb; ++k) {
          const auto& cell = fabric_->cell(c, k);
          if (cell.used && cell.lut_mode == fabric::LutMode::kRam &&
              !rewritten(row, col, k)) {
            throw IllegalOperationError(
                "config op '" + op.label + "' touches column " +
                std::to_string(col) + " which holds a live LUT-RAM at " +
                c.to_string() + " cell " + std::to_string(k) +
                " (paper Sec. 2: LUT/RAMs must not lie in affected columns)");
          }
        }
      }
    }
  }
}

void ConfigController::check_lut_ram_columns(
    const ConfigOp& op, const FrameSet& frames,
    const std::set<CellKey>* extra_rewritten) const {
  // Cells the op itself rewrites (those are intentional, hence exempt),
  // plus any the caller knows are rewritten before this op applies. Built
  // lazily: the fabric's per-column live-LUT-RAM counts short-circuit clean
  // columns, so the common case never touches the exemption set at all.
  bool rewrites_built = false;
  const auto rewritten = [&](int row, int col, int cell) {
    if (!rewrites_built) {
      rewrites_built = true;
      rewrites_scratch_.clear();
      for (const ConfigAction& a : op.actions) {
        if (const auto* cw = std::get_if<CellWrite>(&a))
          rewrites_scratch_.push_back(
              pack_cell_key(cw->clb.row, cw->clb.col, cw->cell));
      }
      std::sort(rewrites_scratch_.begin(), rewrites_scratch_.end());
    }
    if (std::binary_search(rewrites_scratch_.begin(), rewrites_scratch_.end(),
                           pack_cell_key(row, col, cell)))
      return true;
    return extra_rewritten != nullptr &&
           extra_rewritten->contains({row, col, cell});
  };

  // CLB columns the op writes: ids are column-contiguous, so distinct
  // columns are run starts in the sorted id range.
  const auto& g = fabric_->geometry();
  int prev_col = -1;
  for (const std::int32_t id : frames) {
    if (!index_.is_clb(id)) continue;
    const int col = index_.clb_column_of(id);
    if (col == prev_col) continue;
    prev_col = col;
    if (fabric_->live_lut_ram_in_col(col) == 0) continue;
    for (int row = 0; row < g.clb_rows; ++row) {
      const ClbCoord c{row, col};
      for (int k = 0; k < g.cells_per_clb; ++k) {
        const auto& cell = fabric_->cell(c, k);
        if (cell.used && cell.lut_mode == fabric::LutMode::kRam &&
            !rewritten(row, col, k)) {
          throw IllegalOperationError(
              "config op '" + op.label + "' touches column " +
              std::to_string(col) + " which holds a live LUT-RAM at " +
              c.to_string() + " cell " + std::to_string(k) +
              " (paper Sec. 2: LUT/RAMs must not lie in affected columns)");
        }
      }
    }
  }
}

}  // namespace relogic::config
