#include "relogic/config/controller.hpp"

#include <algorithm>
#include <string>
#include <utility>

#include "relogic/common/audit.hpp"
#include "relogic/common/logging.hpp"

namespace relogic::config {

namespace {

/// Packed {row, col, cell} key for overlay / rewrite scratch vectors
/// (values are small non-negative ints, so 20 bits each is generous).
std::uint64_t pack_cell_key(int row, int col, int cell) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(row)) << 40) |
         (static_cast<std::uint64_t>(static_cast<std::uint32_t>(col)) << 20) |
         static_cast<std::uint64_t>(static_cast<std::uint32_t>(cell));
}

}  // namespace

ConfigOp& ConfigOp::add_path(fabric::NetId net,
                             const std::vector<fabric::NodeId>& path) {
  for (std::size_t i = 1; i < path.size(); ++i) {
    add_edge(net, fabric::RouteEdge{path[i - 1], path[i]});
  }
  return *this;
}

ConfigOp& ConfigOp::remove_path(fabric::NetId net,
                                const std::vector<fabric::NodeId>& path) {
  for (std::size_t i = 1; i < path.size(); ++i) {
    remove_edge(net, fabric::RouteEdge{path[i - 1], path[i]});
  }
  return *this;
}

ConfigController::ConfigController(fabric::Fabric& fabric,
                                   const ConfigPort& port,
                                   WriteGranularity granularity)
    : fabric_(&fabric),
      port_(&port),
      mapper_(fabric.geometry()),
      granularity_(granularity),
      index_(fabric.geometry()),
      image_(index_) {
  deltas_scratch_.reset(index_.total_frames());
  recompute_digests(audit_baseline_);
}

void ConfigController::recompute_digests(std::vector<std::uint64_t>& out) const {
  const auto& g = fabric_->geometry();
  out.assign(static_cast<std::size_t>(index_.total_frames()), 0);
  const fabric::LogicCellConfig def{};
  for (int row = 0; row < g.clb_rows; ++row) {
    for (int col = 0; col < g.clb_cols; ++col) {
      for (int cell = 0; cell < g.cells_per_clb; ++cell) {
        const fabric::LogicCellConfig& cfg =
            fabric_->cell(ClbCoord{row, col}, cell);
        if (cfg == def) continue;
        const std::uint64_t d = FrameImage::cell_token(row, def) ^
                                FrameImage::cell_token(row, cfg);
        const std::int32_t base = index_.cell_frame_base(col, cell);
        for (int f = 0; f < g.frames_per_cell_config; ++f)
          out[static_cast<std::size_t>(base + f)] ^= d;
      }
    }
  }
  const auto& skel = fabric_->graph().skeleton();
  for (const fabric::NetId n : fabric_->live_nets()) {
    const fabric::RouteTree& tree = fabric_->net(n);
    for (const fabric::RouteEdge& e : tree.edges)
      out[static_cast<std::size_t>(
          index_.id(mapper_.pip_frame(skel, e)))] ^=
          FrameImage::edge_token(e);
    for (const fabric::NodeId s : tree.sources)
      out[static_cast<std::size_t>(index_.id(
          source_frame(SourceChange{n, s, true})))] ^=
          FrameImage::source_token(s);
  }
}

void ConfigController::audit_image() const {
  constexpr const char* kWhere = "FrameImage";
  std::vector<std::uint64_t> current;
  recompute_digests(current);
  for (std::int32_t id = 0; id < index_.total_frames(); ++id) {
    const std::size_t i = static_cast<std::size_t>(id);
    // The image accumulates deltas relative to the construction-time state.
    const std::uint64_t expect = current[i] ^ audit_baseline_[i];
    RELOGIC_AUDIT_CHECK(
        image_.digest_id(id) == expect, kWhere,
        "frame " + std::to_string(id) + " digest " +
            std::to_string(image_.digest_id(id)) + " != recomputed " +
            std::to_string(expect) +
            " (incremental delta bug, or a fabric mutation bypassed the "
            "controller)");
    RELOGIC_AUDIT_CHECK(expect == 0 || image_.ever_touched_id(id), kWhere,
                        "frame " + std::to_string(id) +
                            " holds content but was never touched through "
                            "the controller");
  }
}

FrameAddress ConfigController::source_frame(const SourceChange& sc) const {
  // The output mux of a cell / pad enable lives in the node's own tile.
  const auto& skel = fabric_->graph().skeleton();
  const auto info = skel.info(sc.node);
  if (info.kind == fabric::NodeKind::kPad) {
    const int col = info.tile.col < fabric_->geometry().clb_cols / 2 ? 0 : 1;
    return FrameAddress{ColumnType::kIob, static_cast<std::int16_t>(col), 0};
  }
  return mapper_.pip_frame(skel, fabric::RouteEdge{sc.node, sc.node});
}

void ConfigController::frames_of(const ConfigOp& op, FrameSet& out) const {
  out.clear();
  const auto& g = fabric_->geometry();
  const auto& skel = fabric_->graph().skeleton();
  const bool widen = granularity_ == WriteGranularity::kColumn;
  if (widen) {
    // Collect one marker id per touched column first (the column's first
    // frame id — centre frames pass through as themselves), dedupe, then
    // expand each distinct column to its contiguous frame run. Expansion
    // order follows the sorted markers, and runs are disjoint and laid out
    // in marker order, so `out` needs no second sort.
    columns_scratch_.clear();
    for (const ConfigAction& a : op.actions) {
      if (const auto* cw = std::get_if<CellWrite>(&a)) {
        // Same bounds contract the old FrameMapper::cell_frames path
        // enforced — arithmetic id derivation must not spill into a
        // neighbouring column region on a malformed op.
        RELOGIC_CHECK(g.in_bounds(cw->clb));
        RELOGIC_CHECK(cw->cell >= 0 && cw->cell < g.cells_per_clb);
        columns_scratch_.push(index_.clb_frame_id(cw->clb.col, 0));
      } else {
        const FrameAddress f =
            std::holds_alternative<EdgeChange>(a)
                ? mapper_.pip_frame(skel, std::get<EdgeChange>(a).edge)
                : source_frame(std::get<SourceChange>(a));
        switch (f.type) {
          case ColumnType::kClb:
            columns_scratch_.push(index_.clb_frame_id(f.column, 0));
            break;
          case ColumnType::kIob:
            columns_scratch_.push(index_.iob_frame_id(f.column, 0));
            break;
          case ColumnType::kCenter:
            columns_scratch_.push(index_.id(f));
            break;
        }
      }
    }
    columns_scratch_.normalize();
    for (const std::int32_t marker : columns_scratch_) {
      if (index_.is_clb(marker)) {
        out.push_run(marker, g.frames_per_clb_column);
      } else if (index_.is_iob(marker)) {
        out.push_run(marker, g.frames_per_iob_column);
      } else {
        out.push(marker);  // centre frame: written as mapped, never widened
      }
    }
    return;
  }
  for (const ConfigAction& a : op.actions) {
    if (const auto* cw = std::get_if<CellWrite>(&a)) {
      // A cell's frame group is contiguous in id space. Bounds-checked as
      // the old FrameMapper::cell_frames path was.
      RELOGIC_CHECK(g.in_bounds(cw->clb));
      RELOGIC_CHECK(cw->cell >= 0 && cw->cell < g.cells_per_clb);
      out.push_run(index_.cell_frame_base(cw->clb.col, cw->cell),
                   g.frames_per_cell_config);
    } else if (const auto* ec = std::get_if<EdgeChange>(&a)) {
      out.push(index_.id(mapper_.pip_frame(skel, ec->edge)));
    } else if (const auto* sc = std::get_if<SourceChange>(&a)) {
      out.push(index_.id(source_frame(*sc)));
    }
  }
  out.normalize();
}

void ConfigController::simulate_deltas(const ConfigOp& op,
                                       FrameDeltaMap& out) const {
  out.reset(index_.total_frames());
  // Overlay of the op's own earlier actions: within one op, a later action
  // is effective against the state the earlier ones will have produced.
  overlay_cells_.clear();
  overlay_edges_.clear();
  overlay_sources_.clear();
  accumulate_deltas(op, out);
}

void ConfigController::accumulate_deltas(const ConfigOp& op,
                                         FrameDeltaMap& out) const {
  const auto& g = fabric_->geometry();
  for (const ConfigAction& a : op.actions) {
    if (const auto* cw = std::get_if<CellWrite>(&a)) {
      const std::uint64_t key =
          pack_cell_key(cw->clb.row, cw->clb.col, cw->cell);
      const auto [it, inserted] = overlay_cells_.try_emplace(key, cw->cfg);
      const fabric::LogicCellConfig before =
          inserted ? fabric_->cell(cw->clb, cw->cell) : it->second;
      if (!inserted) it->second = cw->cfg;
      if (before == cw->cfg) continue;
      const std::uint64_t d = FrameImage::cell_token(cw->clb.row, before) ^
                              FrameImage::cell_token(cw->clb.row, cw->cfg);
      const std::int32_t base = index_.cell_frame_base(cw->clb.col, cw->cell);
      for (int f = 0; f < g.frames_per_cell_config; ++f)
        out.xor_delta(base + f, d);
    } else if (const auto* ec = std::get_if<EdgeChange>(&a)) {
      const EdgeKey key{ec->net, ec->edge.from, ec->edge.to};
      const auto [it, inserted] = overlay_edges_.try_emplace(key, ec->add);
      const bool on = inserted ? (fabric_->net_exists(ec->net) &&
                                  fabric_->net(ec->net).has_edge(ec->edge))
                               : it->second;
      if (!inserted) it->second = ec->add;
      if (on == ec->add) continue;
      out.xor_delta(index_.id(mapper_.pip_frame(fabric_->graph().skeleton(),
                                                 ec->edge)),
                    FrameImage::edge_token(ec->edge));
    } else if (const auto* sc = std::get_if<SourceChange>(&a)) {
      const std::uint64_t key =
          (static_cast<std::uint64_t>(sc->net) << 32) | sc->node;
      const auto [it, inserted] = overlay_sources_.try_emplace(key, sc->attach);
      const bool on = inserted ? (fabric_->net_exists(sc->net) &&
                                  fabric_->net(sc->net).has_source(sc->node))
                               : it->second;
      if (!inserted) it->second = sc->attach;
      if (on == sc->attach) continue;
      out.xor_delta(index_.id(source_frame(*sc)),
                    FrameImage::source_token(sc->node));
    }
  }
}

ApplyResult ConfigController::price_full(const FrameSet& frames) const {
  // One pass: ids are sorted and column-contiguous (FrameIndex layout), so
  // each column is one run — count it and charge its port transaction as
  // the run closes. O(frames), no per-column rescan, no allocation.
  ApplyResult result;
  result.frames_written = static_cast<int>(frames.size());
  const int frame_bits = fabric_->geometry().frame_length_bits();
  std::int32_t run_column = -1;
  int run_frames = 0;
  for (const std::int32_t id : frames) {
    const std::int32_t col = index_.column_of(id);
    if (col != run_column) {
      if (run_frames > 0) result.time += port_->write_time(run_frames, frame_bits);
      run_column = col;
      run_frames = 0;
      ++result.columns_touched;
    }
    ++run_frames;
  }
  if (run_frames > 0) result.time += port_->write_time(run_frames, frame_bits);
  return result;
}

int ConfigController::column_count(const FrameSet& frames) const {
  int columns = 0;
  std::int32_t run_column = -1;
  for (const std::int32_t id : frames) {
    const std::int32_t col = index_.column_of(id);
    if (col != run_column) {
      run_column = col;
      ++columns;
    }
  }
  return columns;
}

ApplyResult ConfigController::price(const FrameSet& frames,
                                    const FrameDeltaMap& deltas) const {
  if (granularity_ != WriteGranularity::kDirtyFrame)
    return price_full(frames);
  dirty_scratch_.clear();
  for (const std::int32_t id : deltas.touched())
    if (deltas.delta(id) != 0) dirty_scratch_.push(id);
  dirty_scratch_.normalize();
  ApplyResult result = price_full(dirty_scratch_);
  result.frames_skipped =
      static_cast<int>(frames.size()) - result.frames_written;
  return result;
}

ApplyResult ConfigController::preview(const ConfigOp& op) const {
  frames_of(op, frames_scratch_);
  return preview(op, frames_scratch_);
}

ApplyResult ConfigController::preview(const ConfigOp& op,
                                      const FrameSet& frames) const {
  if (granularity_ != WriteGranularity::kDirtyFrame)
    return price_full(frames);
  simulate_deltas(op, deltas_scratch_);
  return price(frames, deltas_scratch_);
}

ApplyResult ConfigController::preview(const FrameSet& frames) const {
  return price_full(frames);
}

int ConfigController::readback_frames(const ConfigOp& op) const {
  frames_of(op, frames_scratch_);
  return static_cast<int>(frames_scratch_.size());
}

void ConfigController::preview_sequence(
    const std::vector<ConfigOp>& ops,
    const std::function<void(std::size_t, const ApplyResult&,
                             const FrameSet&)>& visit) const {
  // One persistent overlay across the whole sequence: op k's deltas are
  // computed against the fabric plus everything ops 0..k-1 would have
  // written, so per-op dirty decisions match a sequential apply exactly.
  overlay_cells_.clear();
  overlay_edges_.clear();
  overlay_sources_.clear();
  for (std::size_t i = 0; i < ops.size(); ++i) {
    frames_of(ops[i], frames_scratch_);
    if (granularity_ != WriteGranularity::kDirtyFrame) {
      visit(i, price_full(frames_scratch_), frames_scratch_);
      continue;
    }
    deltas_scratch_.reset(index_.total_frames());
    accumulate_deltas(ops[i], deltas_scratch_);
    const ApplyResult r = price(frames_scratch_, deltas_scratch_);
    // price() left the dirty subset — exactly the written set — in
    // dirty_scratch_.
    visit(i, r, dirty_scratch_);
  }
}

ApplyResult ConfigController::apply(const ConfigOp& op,
                                    bool allow_lut_ram_columns) {
  frames_of(op, frames_scratch_);
  return apply(op, frames_scratch_, allow_lut_ram_columns);
}

ApplyResult ConfigController::apply(const ConfigOp& op, const FrameSet& frames,
                                    bool allow_lut_ram_columns) {
  if (!allow_lut_ram_columns) check_lut_ram_columns(op, frames, nullptr);

  // Apply the structural actions in order, collecting the exact per-frame
  // content deltas (before/after values observed on the fabric, so injected
  // configuration-memory faults are reflected in the shadow image too).
  const auto& g = fabric_->geometry();
  deltas_scratch_.reset(index_.total_frames());
  int effective = 0;
  for (const ConfigAction& a : op.actions) {
    if (const auto* cw = std::get_if<CellWrite>(&a)) {
      const fabric::LogicCellConfig before = fabric_->cell(cw->clb, cw->cell);
      if (fabric_->set_cell_config(cw->clb, cw->cell, cw->cfg)) {
        ++effective;
        const fabric::LogicCellConfig after = fabric_->cell(cw->clb, cw->cell);
        const std::uint64_t d = FrameImage::cell_token(cw->clb.row, before) ^
                                FrameImage::cell_token(cw->clb.row, after);
        const std::int32_t base =
            index_.cell_frame_base(cw->clb.col, cw->cell);
        for (int f = 0; f < g.frames_per_cell_config; ++f)
          deltas_scratch_.xor_delta(base + f, d);
      }
    } else if (const auto* ec = std::get_if<EdgeChange>(&a)) {
      const auto& tree = fabric_->net(ec->net);
      if (ec->add ? !tree.has_edge(ec->edge) : tree.has_edge(ec->edge)) {
        if (ec->add)
          fabric_->add_edge(ec->net, ec->edge);
        else
          fabric_->remove_edge(ec->net, ec->edge);
        ++effective;
        deltas_scratch_.xor_delta(
            index_.id(mapper_.pip_frame(fabric_->graph().skeleton(),
                                        ec->edge)),
            FrameImage::edge_token(ec->edge));
      }
    } else if (const auto* sc = std::get_if<SourceChange>(&a)) {
      const auto& tree = fabric_->net(sc->net);
      if (sc->attach ? !tree.has_source(sc->node) : tree.has_source(sc->node)) {
        if (sc->attach)
          fabric_->attach_source(sc->net, sc->node);
        else
          fabric_->detach_source(sc->net, sc->node);
        ++effective;
        deltas_scratch_.xor_delta(index_.id(source_frame(*sc)),
                                  FrameImage::source_token(sc->node));
      }
    }
  }

  // Commit the deltas to the shadow image, then price per granularity.
  for (const std::int32_t id : deltas_scratch_.touched())
    image_.apply_delta_id(id, deltas_scratch_.delta(id));
  ApplyResult result = price(frames, deltas_scratch_);
  result.effective_actions = effective;

  ++totals_.ops;
  totals_.frames_written += result.frames_written;
  totals_.frames_skipped += result.frames_skipped;
  totals_.columns_touched += result.columns_touched;
  const SimTime span_start = totals_.time;
  totals_.time += result.time;

  if (trace_) {
    trace_.complete("config", op.label, span_start, result.time,
                    {obs::arg("granularity", to_string(granularity_)),
                     obs::arg("frames_written", result.frames_written),
                     obs::arg("frames_skipped", result.frames_skipped),
                     obs::arg("columns", result.columns_touched),
                     obs::arg("effective_actions", result.effective_actions)});
    trace_.counter("frames_written", totals_.time,
                   static_cast<double>(totals_.frames_written));
    set_log_context("config", totals_.time);
  }

  RELOGIC_LOG(kDebug) << "config op '" << op.label << "': "
                      << result.frames_written << " frames ("
                      << result.frames_skipped << " clean-skipped), "
                      << result.columns_touched << " columns, "
                      << result.time.to_string();
  return result;
}

void ConfigController::check_lut_ram_columns(
    const ConfigOp& op, const std::set<CellKey>* extra_rewritten) const {
  frames_of(op, frames_scratch_);
  check_lut_ram_columns(op, frames_scratch_, extra_rewritten);
}

void ConfigController::check_lut_ram_columns(
    const ConfigOp& op, const FrameSet& frames,
    const std::set<CellKey>* extra_rewritten) const {
  // Cells the op itself rewrites (those are intentional, hence exempt),
  // plus any the caller knows are rewritten before this op applies. Built
  // lazily: the fabric's per-column live-LUT-RAM counts short-circuit clean
  // columns, so the common case never touches the exemption set at all.
  bool rewrites_built = false;
  const auto rewritten = [&](int row, int col, int cell) {
    if (!rewrites_built) {
      rewrites_built = true;
      rewrites_scratch_.clear();
      for (const ConfigAction& a : op.actions) {
        if (const auto* cw = std::get_if<CellWrite>(&a))
          rewrites_scratch_.push_back(
              pack_cell_key(cw->clb.row, cw->clb.col, cw->cell));
      }
      std::sort(rewrites_scratch_.begin(), rewrites_scratch_.end());
    }
    if (std::binary_search(rewrites_scratch_.begin(), rewrites_scratch_.end(),
                           pack_cell_key(row, col, cell)))
      return true;
    return extra_rewritten != nullptr &&
           extra_rewritten->contains({row, col, cell});
  };

  // CLB columns the op writes: ids are column-contiguous, so distinct
  // columns are run starts in the sorted id range.
  const auto& g = fabric_->geometry();
  int prev_col = -1;
  for (const std::int32_t id : frames) {
    if (!index_.is_clb(id)) continue;
    const int col = index_.clb_column_of(id);
    if (col == prev_col) continue;
    prev_col = col;
    if (fabric_->live_lut_ram_in_col(col) == 0) continue;
    for (int row = 0; row < g.clb_rows; ++row) {
      const ClbCoord c{row, col};
      for (int k = 0; k < g.cells_per_clb; ++k) {
        const auto& cell = fabric_->cell(c, k);
        if (cell.used && cell.lut_mode == fabric::LutMode::kRam &&
            !rewritten(row, col, k)) {
          throw IllegalOperationError(
              "config op '" + op.label + "' touches column " +
              std::to_string(col) + " which holds a live LUT-RAM at " +
              c.to_string() + " cell " + std::to_string(k) +
              " (paper Sec. 2: LUT/RAMs must not lie in affected columns)");
        }
      }
    }
  }
}

}  // namespace relogic::config
