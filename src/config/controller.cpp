#include "relogic/config/controller.hpp"

#include <algorithm>

#include "relogic/common/logging.hpp"

namespace relogic::config {

ConfigOp& ConfigOp::add_path(fabric::NetId net,
                             const std::vector<fabric::NodeId>& path) {
  for (std::size_t i = 1; i < path.size(); ++i) {
    add_edge(net, fabric::RouteEdge{path[i - 1], path[i]});
  }
  return *this;
}

ConfigOp& ConfigOp::remove_path(fabric::NetId net,
                                const std::vector<fabric::NodeId>& path) {
  for (std::size_t i = 1; i < path.size(); ++i) {
    remove_edge(net, fabric::RouteEdge{path[i - 1], path[i]});
  }
  return *this;
}

ConfigController::ConfigController(fabric::Fabric& fabric,
                                   const ConfigPort& port,
                                   bool column_granular)
    : fabric_(&fabric),
      port_(&port),
      mapper_(fabric.geometry()),
      column_granular_(column_granular) {}

std::set<FrameAddress> ConfigController::frames_of(const ConfigOp& op) const {
  std::set<FrameAddress> frames;
  const auto& graph = fabric_->graph();
  for (const ConfigAction& a : op.actions) {
    if (const auto* cw = std::get_if<CellWrite>(&a)) {
      for (const FrameAddress& f : mapper_.cell_frames(cw->clb, cw->cell))
        frames.insert(f);
    } else if (const auto* ec = std::get_if<EdgeChange>(&a)) {
      frames.insert(mapper_.pip_frame(graph, ec->edge));
    } else if (const auto* sc = std::get_if<SourceChange>(&a)) {
      // The output mux of a cell / pad enable lives in the node's own tile.
      const auto info = graph.info(sc->node);
      if (info.kind == fabric::NodeKind::kPad) {
        const int col =
            info.tile.col < fabric_->geometry().clb_cols / 2 ? 0 : 1;
        frames.insert(FrameAddress{ColumnType::kIob,
                                   static_cast<std::int16_t>(col), 0});
      } else {
        frames.insert(mapper_.pip_frame(
            graph, fabric::RouteEdge{sc->node, sc->node}));
      }
    }
  }
  if (!column_granular_) return frames;
  // Widen to whole columns.
  std::set<FrameAddress> widened;
  std::set<std::int16_t> clb_cols;
  std::set<std::int16_t> iob_cols;
  for (const FrameAddress& f : frames) {
    switch (f.type) {
      case ColumnType::kClb:
        clb_cols.insert(f.column);
        break;
      case ColumnType::kIob:
        iob_cols.insert(f.column);
        break;
      case ColumnType::kCenter:
        widened.insert(f);
        break;
    }
  }
  const auto& g = fabric_->geometry();
  for (std::int16_t c : clb_cols) {
    for (int fr = 0; fr < g.frames_per_clb_column; ++fr)
      widened.insert(
          FrameAddress{ColumnType::kClb, c, static_cast<std::int16_t>(fr)});
  }
  for (std::int16_t c : iob_cols) {
    for (int fr = 0; fr < g.frames_per_iob_column; ++fr)
      widened.insert(
          FrameAddress{ColumnType::kIob, c, static_cast<std::int16_t>(fr)});
  }
  return widened;
}

ApplyResult ConfigController::preview(const ConfigOp& op) const {
  return preview(frames_of(op));
}

ApplyResult ConfigController::preview(
    const std::set<FrameAddress>& frames) const {
  ApplyResult result;
  result.frames_written = static_cast<int>(frames.size());

  std::set<std::pair<ColumnType, std::int16_t>> columns;
  for (const FrameAddress& f : frames) columns.insert({f.type, f.column});
  result.columns_touched = static_cast<int>(columns.size());

  // Port timing: one transaction per touched column (the frame-address
  // register must be rewritten when the column changes).
  const int frame_bits = fabric_->geometry().frame_length_bits();
  for (const auto& col : columns) {
    int n = 0;
    for (const FrameAddress& f : frames)
      if (f.type == col.first && f.column == col.second) ++n;
    result.time += port_->write_time(n, frame_bits);
  }
  return result;
}

ApplyResult ConfigController::apply(const ConfigOp& op,
                                    bool allow_lut_ram_columns) {
  const std::set<FrameAddress> frames = frames_of(op);
  if (!allow_lut_ram_columns) check_lut_ram_columns(op, frames, nullptr);

  ApplyResult result = preview(frames);

  // Apply the structural actions in order.
  for (const ConfigAction& a : op.actions) {
    if (const auto* cw = std::get_if<CellWrite>(&a)) {
      if (fabric_->set_cell_config(cw->clb, cw->cell, cw->cfg))
        ++result.effective_actions;
    } else if (const auto* ec = std::get_if<EdgeChange>(&a)) {
      const auto& tree = fabric_->net(ec->net);
      if (ec->add) {
        if (!tree.has_edge(ec->edge)) {
          fabric_->add_edge(ec->net, ec->edge);
          ++result.effective_actions;
        }
      } else {
        if (tree.has_edge(ec->edge)) {
          fabric_->remove_edge(ec->net, ec->edge);
          ++result.effective_actions;
        }
      }
    } else if (const auto* sc = std::get_if<SourceChange>(&a)) {
      const auto& tree = fabric_->net(sc->net);
      if (sc->attach) {
        if (!tree.has_source(sc->node)) {
          fabric_->attach_source(sc->net, sc->node);
          ++result.effective_actions;
        }
      } else {
        if (tree.has_source(sc->node)) {
          fabric_->detach_source(sc->net, sc->node);
          ++result.effective_actions;
        }
      }
    }
  }

  ++totals_.ops;
  totals_.frames_written += result.frames_written;
  totals_.columns_touched += result.columns_touched;
  totals_.time += result.time;

  RELOGIC_LOG(kDebug) << "config op '" << op.label << "': "
                      << result.frames_written << " frames, "
                      << result.columns_touched << " columns, "
                      << result.time.to_string();
  return result;
}

void ConfigController::check_lut_ram_columns(
    const ConfigOp& op, const std::set<CellKey>* extra_rewritten) const {
  check_lut_ram_columns(op, frames_of(op), extra_rewritten);
}

void ConfigController::check_lut_ram_columns(
    const ConfigOp& op, const std::set<FrameAddress>& frames,
    const std::set<CellKey>* extra_rewritten) const {
  // Columns the op writes.
  std::set<std::int16_t> cols;
  for (const FrameAddress& f : frames)
    if (f.type == ColumnType::kClb) cols.insert(f.column);
  if (cols.empty()) return;

  // Cells the op itself rewrites (those are intentional, hence exempt),
  // plus any the caller knows are rewritten before this op applies.
  std::set<CellKey> rewritten;  // {row, col, cell}
  if (extra_rewritten != nullptr) rewritten = *extra_rewritten;
  for (const ConfigAction& a : op.actions) {
    if (const auto* cw = std::get_if<CellWrite>(&a))
      rewritten.insert({cw->clb.row, cw->clb.col, cw->cell});
  }

  const auto& g = fabric_->geometry();
  for (std::int16_t col : cols) {
    for (int row = 0; row < g.clb_rows; ++row) {
      const ClbCoord c{row, col};
      for (int k = 0; k < g.cells_per_clb; ++k) {
        const auto& cell = fabric_->cell(c, k);
        if (cell.used && cell.lut_mode == fabric::LutMode::kRam &&
            !rewritten.contains({row, col, k})) {
          throw IllegalOperationError(
              "config op '" + op.label + "' touches column " +
              std::to_string(col) + " which holds a live LUT-RAM at " +
              c.to_string() + " cell " + std::to_string(k) +
              " (paper Sec. 2: LUT/RAMs must not lie in affected columns)");
        }
      }
    }
  }
}

}  // namespace relogic::config
