// Configuration-frame addressing.
//
// Virtex organises its configuration memory as one-bit-wide vertical frames
// spanning the device top-to-bottom, grouped into columns: the centre
// (clock) column, one column per CLB column, and two IOB columns. A frame
// is the smallest unit that can be written or read. Because a frame spans
// an entire column, writing the configuration of one CLB rewrites bits
// belonging to every other CLB in that column — harmless only because
// rewriting identical data is glitch-free (paper, Sec. 2), and the root of
// the LUT-RAM column exclusion rule.
//
// FrameMapper assigns every fabric resource its controlling frame:
//  * logic cell k of a CLB -> frames [k*4, k*4+4) of its column
//    (LUT truth table + FF mode bits),
//  * FF/latch mode extras -> the same cell frame group,
//  * a PIP -> one of the routing frames [16, 48) of the column of the tile
//    that hosts the controlling mux (the sink node's tile).
#pragma once

#include <compare>
#include <cstdint>
#include <string>
#include <vector>

#include "relogic/fabric/device.hpp"
#include "relogic/fabric/fabric.hpp"
#include "relogic/fabric/routing.hpp"

namespace relogic::config {

enum class ColumnType : std::uint8_t { kCenter, kClb, kIob };

struct FrameAddress {
  ColumnType type = ColumnType::kClb;
  /// CLB column index for kClb; 0/1 for the two IOB columns; 0 for centre.
  std::int16_t column = 0;
  /// Frame index within the column.
  std::int16_t frame = 0;

  constexpr auto operator<=>(const FrameAddress&) const = default;

  std::string to_string() const;
};

class FrameMapper {
 public:
  explicit FrameMapper(const fabric::DeviceGeometry& geom) : geom_(&geom) {}

  const fabric::DeviceGeometry& geometry() const { return *geom_; }

  /// Frames holding the configuration of one logic cell.
  std::vector<FrameAddress> cell_frames(ClbCoord clb, int cell) const;

  /// The frame controlling one PIP. The mapping depends only on node
  /// identity, so the primary overload takes the immutable skeleton (hot
  /// paths in the controller pass it directly); the RoutingGraph form
  /// forwards for callers holding a device view.
  FrameAddress pip_frame(const fabric::RoutingSkeleton& skeleton,
                         fabric::RouteEdge edge) const;
  FrameAddress pip_frame(const fabric::RoutingGraph& graph,
                         fabric::RouteEdge edge) const {
    return pip_frame(graph.skeleton(), edge);
  }

  /// First routing frame index within a CLB column (frames below this hold
  /// logic-cell configuration).
  int first_routing_frame() const {
    return geom_->cells_per_clb * geom_->frames_per_cell_config;
  }

  /// All frames of one CLB column (for column-granular write models).
  std::vector<FrameAddress> column_frames(int clb_column) const;

 private:
  const fabric::DeviceGeometry* geom_;
};

}  // namespace relogic::config
