// FrameImage: a shadow copy of the device's configuration-frame contents.
//
// The controller needs to know which frames a ConfigOp actually *changes*
// (the kDirtyFrame write granularity skips the rest). Storing literal frame
// bytes would force a full re-serialisation of every touched column per op;
// instead each frame's content is tracked as a 64-bit XOR-composable
// digest: the XOR of one token per resource value the frame holds —
//
//   * a logic cell's configuration contributes cell_token(row, cfg) to each
//     of its cell frames (a frame spans the column, so one frame holds that
//     cell slice for every row);
//   * an "on" PIP contributes edge_token(edge) to its controlling routing
//     frame;
//   * an attached net source contributes source_token(node) to the frame of
//     the output mux.
//
// XOR composition makes updates incremental and order-independent: changing
// a cell from `a` to `b` XORs the frame with token(a) ^ token(b); turning a
// PIP on or off toggles the same token. A frame is dirty under an op iff
// the accumulated XOR delta of the op's effective actions is non-zero — so
// an op that rewrites identical bytes (delta 0), or adds and then removes
// the same PIP, dirties nothing. Token collisions (two distinct contents
// with equal digests) are possible in principle but need a 64-bit hash
// collision; the consequence would be an over-skipped frame in the *timing*
// model only — structural state never flows through this class.
//
// Note the dirty decision itself is per-op (delta != 0) and never reads the
// accumulated digests; the digest store is the *mirror* of the device's
// frame contents — maintained for consumers of mirrored contents
// (digest-based readback comparison, the dirty-aware BitstreamWriter
// rendering).
//
// Storage is a flat array indexed by dense frame id (config::FrameIndex) —
// the frame universe is bounded by the device geometry, so the mirror is a
// single contiguous allocation sized once at construction, and apply-time
// delta commits are a single array XOR instead of a std::map walk.
//
// The shadow stays consistent as long as every fabric mutation goes through
// the owning ConfigController, which feeds apply-time before/after values
// (so injected configuration-memory faults — Fabric::inject_fault — are
// reflected exactly).
#pragma once

#include <cstdint>
#include <vector>

#include "relogic/config/frame.hpp"
#include "relogic/config/frame_index.hpp"
#include "relogic/fabric/cell.hpp"
#include "relogic/fabric/fabric.hpp"

namespace relogic::config {

class FrameImage {
 public:
  explicit FrameImage(const FrameIndex& index)
      : index_(index),
        hash_(static_cast<std::size_t>(index.total_frames()), 0),
        touched_(static_cast<std::size_t>(index.total_frames()), 0) {}

  const FrameIndex& index() const { return index_; }

  /// Current content digest of a frame (0 until first touched — the digest
  /// of the erased configuration memory).
  std::uint64_t digest(const FrameAddress& f) const {
    return digest_id(index_.id(f));
  }
  std::uint64_t digest_id(std::int32_t id) const {
    return hash_[static_cast<std::size_t>(id)];
  }

  /// XORs a content delta into a frame's digest (no-op when delta == 0).
  void apply_delta(const FrameAddress& f, std::uint64_t delta) {
    apply_delta_id(index_.id(f), delta);
  }
  void apply_delta_id(std::int32_t id, std::uint64_t delta) {
    if (delta == 0) return;
    hash_[static_cast<std::size_t>(id)] ^= delta;
    if (!touched_[static_cast<std::size_t>(id)]) {
      touched_[static_cast<std::size_t>(id)] = 1;
      ++tracked_;
    }
  }

  /// Frames whose digest has ever moved away from the erased state.
  std::size_t tracked_frames() const { return tracked_; }
  /// Whether one frame has ever been touched (its digest may since have
  /// returned to the erased state). Used by ConfigController::audit_image:
  /// a frame whose recomputed content differs from the baseline must have
  /// seen at least one delta.
  bool ever_touched_id(std::int32_t id) const {
    return touched_[static_cast<std::size_t>(id)] != 0;
  }

  // ---- raw views for the kernel backends (config/kernel.hpp) ---------------
  // KernelBackend::commit_scan fuses the per-op delta commit with the dirty
  // scan in one sweep; it mutates the digest/touched arrays and the tracked
  // counter directly instead of going through apply_delta_id per frame.
  std::uint64_t* digest_data() { return hash_.data(); }
  std::uint8_t* ever_touched_data() { return touched_.data(); }
  std::size_t& tracked_counter() { return tracked_; }

  // ---- content tokens (XOR-composable) ------------------------------------
  // Defined inline so the per-action token recomputation in the controller's
  // hot loop (and the SoA column maintenance in cell_columns.hpp) inlines
  // instead of paying a cross-TU call per cell — a measured cost of the old
  // out-of-line definitions at XCV1000 op rates.

  /// splitmix64 finaliser — the standard 64-bit avalanche mix.
  static constexpr std::uint64_t mix64(std::uint64_t x) {
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
  }

  /// Token of one logic cell's configuration at a given row. Tokens of the
  /// default (erased) configuration are non-zero; only *differences* matter.
  static constexpr std::uint64_t cell_token(
      int row, const fabric::LogicCellConfig& cfg) {
    // Pack every configuration field; two configs differing in any field get
    // different pre-mix words, so equal tokens <=> equal (row, cfg) up to a
    // 64-bit hash collision.
    std::uint64_t w =
        static_cast<std::uint64_t>(static_cast<std::uint32_t>(row));
    w = (w << 16) | cfg.lut;
    w = (w << 2) | static_cast<std::uint64_t>(cfg.reg);
    w = (w << 1) | static_cast<std::uint64_t>(cfg.lut_mode);
    w = (w << 1) | static_cast<std::uint64_t>(cfg.d_src);
    w = (w << 1) | static_cast<std::uint64_t>(cfg.uses_ce);
    w = (w << 1) | static_cast<std::uint64_t>(cfg.init);
    w = (w << 8) | cfg.clock_domain;
    w = (w << 1) | static_cast<std::uint64_t>(cfg.used);
    return mix64(w);
  }

  /// Token of one "on" PIP.
  static constexpr std::uint64_t edge_token(fabric::RouteEdge e) {
    return mix64((static_cast<std::uint64_t>(e.from) << 32) ^
                 static_cast<std::uint64_t>(e.to) ^ 0xedfe0b5ull);
  }

  /// Token of one attached net source.
  static constexpr std::uint64_t source_token(fabric::NodeId n) {
    return mix64(static_cast<std::uint64_t>(n) ^ 0x50a7ce00ull);
  }

 private:
  FrameIndex index_;
  std::vector<std::uint64_t> hash_;
  std::vector<std::uint8_t> touched_;
  std::size_t tracked_ = 0;
};

}  // namespace relogic::config
