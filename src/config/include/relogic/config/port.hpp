// Configuration-port timing models.
//
// The paper performs reconfiguration through the IEEE 1149.1 Boundary-Scan
// (JTAG) port at TCK = 20 MHz and reports an average of 22.6 ms to relocate
// one CLB of a gated-clock circuit. The Boundary-Scan model reproduces that
// regime: one configuration bit per TCK cycle, a fixed TAP/command overhead
// per write transaction, and one flush (pad) frame per transaction, exactly
// the shape of Virtex JTAG partial reconfiguration. SelectMAP (8 bits per
// CCLK cycle) is provided for contrast in the benches.
#pragma once

#include <memory>
#include <string>

#include "relogic/common/error.hpp"
#include "relogic/common/time.hpp"
#include "relogic/fabric/device.hpp"

namespace relogic::config {

/// Abstract configuration access port.
class ConfigPort {
 public:
  virtual ~ConfigPort() = default;

  virtual std::string name() const = 0;
  /// Time to perform one partial-reconfiguration transaction writing
  /// `frames` frames of `frame_bits` bits each.
  virtual SimTime write_time(int frames, int frame_bits) const = 0;
  /// Time to read `frames` frames back (used for state capture / recovery).
  virtual SimTime readback_time(int frames, int frame_bits) const = 0;
  /// Sustained configuration bandwidth in bits per second (for reporting).
  virtual double bandwidth_bps() const = 0;
};

/// IEEE 1149.1 Boundary-Scan configuration port (the paper's set-up).
class BoundaryScanPort final : public ConfigPort {
 public:
  struct Params {
    double tck_hz = 20e6;  ///< test clock (paper: 20 MHz)
    /// TAP state walking + CFG_IN instruction per transaction, in TCK
    /// cycles (IR shifts, Select-DR/Update-DR sequences, sync words).
    int transaction_overhead_cycles = 640;
    /// Command/header words (packet headers, frame address register write,
    /// CRC) per transaction, 32-bit words shifted at 1 bit/TCK.
    int header_words = 12;
    /// Virtex requires one extra pad frame per write to flush the frame
    /// buffer.
    int pad_frames = 1;
  };

  BoundaryScanPort() : BoundaryScanPort(Params()) {}
  explicit BoundaryScanPort(Params p) : p_(p) {
    RELOGIC_CHECK(p_.tck_hz > 0);
  }

  std::string name() const override { return "BoundaryScan"; }
  SimTime write_time(int frames, int frame_bits) const override;
  SimTime readback_time(int frames, int frame_bits) const override;
  double bandwidth_bps() const override { return p_.tck_hz; }

  const Params& params() const { return p_; }

 private:
  Params p_;
};

/// SelectMAP parallel configuration port (8-bit, one byte per CCLK).
class SelectMapPort final : public ConfigPort {
 public:
  struct Params {
    double cclk_hz = 50e6;
    int transaction_overhead_cycles = 64;
    int header_words = 12;
    int pad_frames = 1;
  };

  SelectMapPort() : SelectMapPort(Params()) {}
  explicit SelectMapPort(Params p) : p_(p) {
    RELOGIC_CHECK(p_.cclk_hz > 0);
  }

  std::string name() const override { return "SelectMAP"; }
  SimTime write_time(int frames, int frame_bits) const override;
  SimTime readback_time(int frames, int frame_bits) const override;
  double bandwidth_bps() const override { return p_.cclk_hz * 8.0; }

 private:
  Params p_;
};

}  // namespace relogic::config
