// Configuration-port timing models (the pluggable PortModel backends).
//
// The paper performs reconfiguration through the IEEE 1149.1 Boundary-Scan
// (JTAG) port at TCK = 20 MHz and reports an average of 22.6 ms to relocate
// one CLB of a gated-clock circuit. The Boundary-Scan model reproduces that
// regime: one configuration bit per TCK cycle, a fixed TAP/command overhead
// per write transaction, and one flush (pad) frame per transaction, exactly
// the shape of Virtex JTAG partial reconfiguration. Two parallel backends
// price the same workloads on faster hardware: SelectMAP (8 bits per CCLK
// cycle, the external parallel port) and ICAP (32 bits per cycle, the
// internal configuration access port of Virtex-II-and-later devices, which
// a self-hosting run-time manager would drive). Every consumer of
// configuration timing — ConfigController, RelocationCostModel, the fleet
// runtime — takes the abstract interface, so a workload can be re-priced
// per backend by swapping one object (see PortBackend / make_port).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "relogic/common/error.hpp"
#include "relogic/common/time.hpp"
#include "relogic/fabric/device.hpp"

namespace relogic::config {

/// Abstract configuration access port.
class ConfigPort {
 public:
  virtual ~ConfigPort() = default;

  virtual std::string name() const = 0;
  /// Time to perform one partial-reconfiguration transaction writing
  /// `frames` frames of `frame_bits` bits each.
  virtual SimTime write_time(int frames, int frame_bits) const = 0;
  /// Time to read `frames` frames back (used for state capture / recovery).
  virtual SimTime readback_time(int frames, int frame_bits) const = 0;
  /// Sustained configuration bandwidth in bits per second (for reporting).
  virtual double bandwidth_bps() const = 0;
};

/// IEEE 1149.1 Boundary-Scan configuration port (the paper's set-up).
class BoundaryScanPort final : public ConfigPort {
 public:
  struct Params {
    double tck_hz = 20e6;  ///< test clock (paper: 20 MHz)
    /// TAP state walking + CFG_IN instruction per transaction, in TCK
    /// cycles (IR shifts, Select-DR/Update-DR sequences, sync words).
    int transaction_overhead_cycles = 640;
    /// Command/header words (packet headers, frame address register write,
    /// CRC) per transaction, 32-bit words shifted at 1 bit/TCK.
    int header_words = 12;
    /// Virtex requires one extra pad frame per write to flush the frame
    /// buffer.
    int pad_frames = 1;
  };

  BoundaryScanPort() : BoundaryScanPort(Params()) {}
  explicit BoundaryScanPort(Params p) : p_(p) {
    RELOGIC_CHECK(p_.tck_hz > 0);
  }

  std::string name() const override { return "BoundaryScan"; }
  SimTime write_time(int frames, int frame_bits) const override;
  SimTime readback_time(int frames, int frame_bits) const override;
  double bandwidth_bps() const override { return p_.tck_hz; }

  const Params& params() const { return p_; }

 private:
  Params p_;
};

/// SelectMAP parallel configuration port (8-bit, one byte per CCLK).
class SelectMapPort final : public ConfigPort {
 public:
  struct Params {
    double cclk_hz = 50e6;
    int transaction_overhead_cycles = 64;
    int header_words = 12;
    int pad_frames = 1;
  };

  SelectMapPort() : SelectMapPort(Params()) {}
  explicit SelectMapPort(Params p) : p_(p) {
    RELOGIC_CHECK(p_.cclk_hz > 0);
  }

  std::string name() const override { return "SelectMAP"; }
  SimTime write_time(int frames, int frame_bits) const override;
  SimTime readback_time(int frames, int frame_bits) const override;
  double bandwidth_bps() const override { return p_.cclk_hz * 8.0; }

 private:
  Params p_;
};

/// Internal Configuration Access Port (ICAP): 32 bits per clock, driven
/// from inside the device, so transaction overhead is a handful of cycles
/// rather than a TAP walk.
class IcapPort final : public ConfigPort {
 public:
  struct Params {
    double clk_hz = 100e6;
    int transaction_overhead_cycles = 16;
    int header_words = 12;
    int pad_frames = 1;
  };

  IcapPort() : IcapPort(Params()) {}
  explicit IcapPort(Params p) : p_(p) { RELOGIC_CHECK(p_.clk_hz > 0); }

  std::string name() const override { return "ICAP"; }
  SimTime write_time(int frames, int frame_bits) const override;
  SimTime readback_time(int frames, int frame_bits) const override;
  double bandwidth_bps() const override { return p_.clk_hz * 32.0; }

 private:
  Params p_;
};

/// The interface every timing consumer programs against.
using PortModel = ConfigPort;

/// Named backend selection for configuration code that is wired from
/// configs / CLI flags rather than holding a port object directly.
enum class PortBackend : std::uint8_t {
  kJtag,        ///< Boundary-Scan @ 20 MHz, 1 bit/TCK (the paper's set-up)
  kSelectMap8,  ///< SelectMAP @ 50 MHz, 8 bits/CCLK
  kIcap32,      ///< ICAP @ 100 MHz, 32 bits/clk
};

std::string to_string(PortBackend b);
std::optional<PortBackend> parse_port_backend(const std::string& name);

/// Instantiates the default-parameter port model of a backend.
std::unique_ptr<ConfigPort> make_port(PortBackend b);

}  // namespace relogic::config
