// ConfigController: the partial-reconfiguration engine.
//
// Every structural change to the fabric that would, on the real device, be
// carried by configuration frames is expressed as a ConfigOp — an ordered
// batch of cell writes and routing (PIP) changes applied atomically in one
// configuration-port transaction. The controller:
//
//  * applies the actions to the Fabric (which suppresses identical
//    rewrites, the glitch-free-rewrite property),
//  * maps each action to its controlling frame(s) via FrameMapper,
//  * selects the frames actually written per its WriteGranularity policy:
//    whole columns (the JBits-era regime; the paper's 22.6 ms figure was
//    measured there — see DESIGN.md §6.1), the op's exact frame set, or
//    only the frames whose contents change (exact per-op XOR content
//    deltas built from FrameImage tokens; the FrameImage member mirrors
//    the device's frame contents),
//  * charges the configuration-port timing model and accumulates totals.
//
// Granularity affects only what is written (frames, columns, port time,
// and the frames_skipped accounting); the structural effect on the fabric
// is byte-identical across all three policies.
//
// The data path runs on the flat structures of config/frame_index.hpp:
// frame sets are sorted dense-id vectors (FrameSet), content deltas live in
// a flat zero-invariant map (FrameDeltaMap), and pricing is a single pass
// over a sorted id range that buckets per column while accumulating port
// time — O(frames), not O(columns x frames). The controller keeps mutable
// scratch buffers so steady-state ops allocate nothing; like the Fabric it
// drives, a controller must not be shared across threads.
//
// The inner loops dispatch through a config::KernelBackend (kernel.hpp).
// A *reference* backend ("serial") runs the preserved PR 5 scalar path —
// sort-based frame mapping, hash-map action overlays, per-run virtual port
// pricing, AoS digest recompute. Non-reference backends ("openmp", "simd")
// run the optimized path: frame mapping through per-op word bitmaps, the
// op's delta accumulated against the SoA cell-token columns
// (cell_columns.hpp) with token-level overlays, the digest commit fused
// with the dirty scan in one kernel sweep, and pricing from a memoized
// port-time table. Both paths are pinned byte-identical — digests,
// ApplyResult fields, ConfigTotals, frame sets — by the golden-equivalence
// suite at every granularity (DESIGN.md §9).
//
// The controller performs *configuration*; it never touches user state. The
// interaction between configuration writes and live user logic is what the
// relocation engine (relogic::reloc) choreographs on top of this class.
#pragma once

#include <cstddef>
#include <functional>
#include <set>
#include <string>
#include <tuple>
#include <unordered_map>
#include <variant>
#include <vector>

#include "relogic/common/time.hpp"
#include "relogic/config/cell_columns.hpp"
#include "relogic/config/frame.hpp"
#include "relogic/config/frame_image.hpp"
#include "relogic/config/frame_index.hpp"
#include "relogic/config/granularity.hpp"
#include "relogic/config/kernel.hpp"
#include "relogic/config/port.hpp"
#include "relogic/fabric/fabric.hpp"
#include "relogic/obs/trace.hpp"

namespace relogic::config {

/// Write one logic cell's configuration.
struct CellWrite {
  ClbCoord clb;
  int cell = 0;
  fabric::LogicCellConfig cfg;
};

/// Turn one PIP on (add=true) or off for a net.
struct EdgeChange {
  fabric::NetId net = fabric::kNoNet;
  fabric::RouteEdge edge;
  bool add = true;
};

/// Attach or detach a net source (cell output pin / input pad).
struct SourceChange {
  fabric::NetId net = fabric::kNoNet;
  fabric::NodeId node = fabric::kInvalidNode;
  bool attach = true;
};

using ConfigAction = std::variant<CellWrite, EdgeChange, SourceChange>;

/// One partial-reconfiguration transaction.
struct ConfigOp {
  std::string label;
  std::vector<ConfigAction> actions;

  ConfigOp() = default;
  explicit ConfigOp(std::string label_) : label(std::move(label_)) {}

  ConfigOp& write_cell(ClbCoord clb, int cell,
                       const fabric::LogicCellConfig& cfg) {
    actions.push_back(CellWrite{clb, cell, cfg});
    return *this;
  }
  ConfigOp& clear_cell(ClbCoord clb, int cell) {
    actions.push_back(CellWrite{clb, cell, fabric::LogicCellConfig{}});
    return *this;
  }
  ConfigOp& add_edge(fabric::NetId net, fabric::RouteEdge e) {
    actions.push_back(EdgeChange{net, e, true});
    return *this;
  }
  ConfigOp& remove_edge(fabric::NetId net, fabric::RouteEdge e) {
    actions.push_back(EdgeChange{net, e, false});
    return *this;
  }
  ConfigOp& add_path(fabric::NetId net, const std::vector<fabric::NodeId>& path);
  ConfigOp& remove_path(fabric::NetId net,
                        const std::vector<fabric::NodeId>& path);
  ConfigOp& attach_source(fabric::NetId net, fabric::NodeId node) {
    actions.push_back(SourceChange{net, node, true});
    return *this;
  }
  ConfigOp& detach_source(fabric::NetId net, fabric::NodeId node) {
    actions.push_back(SourceChange{net, node, false});
    return *this;
  }
  bool empty() const { return actions.empty(); }
};

/// Outcome of applying one ConfigOp.
struct ApplyResult {
  int frames_written = 0;
  /// Frames of the op's exact frame set that kDirtyFrame skipped because
  /// their contents were unchanged (always 0 under kColumn / kFrame).
  int frames_skipped = 0;
  /// Port transactions issued: the frame-address register must be rewritten
  /// whenever the column changes, so each touched column is one transaction
  /// paying the full TAP/header/pad overhead of the port model.
  int columns_touched = 0;
  SimTime time = SimTime::zero();
  /// Number of actions that changed fabric state (the rest were identical
  /// rewrites or redundant routing changes).
  int effective_actions = 0;
};

/// Cumulative controller statistics.
struct ConfigTotals {
  int ops = 0;
  int frames_written = 0;
  int frames_skipped = 0;
  /// Total per-column port transactions (see ApplyResult::columns_touched).
  int columns_touched = 0;
  SimTime time = SimTime::zero();
};

class ConfigController {
 public:
  /// `kernel` selects the hot-loop backend; nullptr means
  /// default_kernel_backend() ($RELOGIC_KERNEL_BACKEND, else "simd").
  ConfigController(fabric::Fabric& fabric, const ConfigPort& port,
                   WriteGranularity granularity,
                   const KernelBackend* kernel = nullptr);

  /// Legacy two-regime constructor: `column_granular` selects whole-column
  /// rewrites (kColumn, the JBits regime the paper measured) versus minimal
  /// frame-level writes (kFrame).
  ConfigController(fabric::Fabric& fabric, const ConfigPort& port,
                   bool column_granular = true)
      : ConfigController(fabric, port,
                         column_granular ? WriteGranularity::kColumn
                                         : WriteGranularity::kFrame) {}

  fabric::Fabric& fabric() { return *fabric_; }
  const fabric::Fabric& fabric() const { return *fabric_; }
  const FrameMapper& mapper() const { return mapper_; }
  const ConfigPort& port() const { return *port_; }
  WriteGranularity granularity() const { return granularity_; }
  bool column_granular() const {
    return granularity_ == WriteGranularity::kColumn;
  }
  /// The dense frame-id addressing of this device's geometry.
  const FrameIndex& index() const { return index_; }
  /// Shadow copy of the device's frame contents (dirty-frame diffing).
  const FrameImage& image() const { return image_; }
  /// The kernel backend this controller's hot loops run on.
  const KernelBackend& kernel() const { return *kernel_; }
  /// SoA mirror of per-cell configuration state in FrameIndex order.
  const CellColumns& columns() const { return columns_; }
  CellColumns& columns() { return columns_; }

  /// Frames a ConfigOp would write, without applying it. Widened to whole
  /// columns under kColumn; the exact mapped frame set otherwise (for
  /// kDirtyFrame this is the upper bound before dirty filtering). The
  /// out-parameter form lets hot callers reuse one FrameSet allocation.
  void frames_of(const ConfigOp& op, FrameSet& out) const;
  FrameSet frames_of(const ConfigOp& op) const {
    FrameSet out;
    frames_of(op, out);
    return out;
  }

  /// Sequence-aware preview: prices `ops` as if applied in order. The value
  /// overlay of earlier ops persists across the sequence, so under
  /// kDirtyFrame a later op's dirty set reflects what earlier ops already
  /// wrote — an op rewriting an earlier op's content prices as skipped,
  /// exactly as applying the sequence would charge it. Invokes
  /// `visit(index, result, written)` per op, where `written` is the frame
  /// set apply would write at that point (valid only for the duration of
  /// the callback). The BitstreamWriter renders and prices through this so
  /// `--script` / `--out` totals match ConfigTotals for arbitrary op
  /// sequences, not just independent ops.
  void preview_sequence(
      const std::vector<ConfigOp>& ops,
      const std::function<void(std::size_t, const ApplyResult&,
                               const FrameSet&)>& visit) const;

  /// Full frame count a readback of the op's footprint must fetch. Readback
  /// is never dirty-skippable — verifying a frame requires reading it
  /// whether or not the preceding write changed its bytes — so this is the
  /// frames_of size at every granularity (whole columns under kColumn).
  /// Sweep pricing (health::RovingTester) uses this instead of write-side
  /// counters so readback cost is identical across kFrame and kDirtyFrame.
  int readback_frames(const ConfigOp& op) const;

  /// Distinct columns a (normalized) frame set spans — one pass.
  int column_count(const FrameSet& frames) const;

  /// Frame/column/port-time accounting of an op without applying it (the
  /// effective_actions field is left 0 — effectiveness is only known at
  /// apply time). Under kDirtyFrame the dirty set is estimated against the
  /// *current* fabric and shadow image, exactly what apply would write if
  /// it ran now. Used by the transaction batcher to price the unbatched
  /// baseline of a coalesced transaction.
  ApplyResult preview(const ConfigOp& op) const;

  /// Same accounting from an already-computed frame set (frames_of(op)),
  /// for callers that need the frames anyway and shouldn't pay for the
  /// mapping twice. Prices every frame in the set (no dirty filtering).
  ApplyResult preview(const FrameSet& frames) const;

  /// preview(op) with the frame mapping reused from frames_of(op) — the
  /// granularity-aware variant of the overload above (dirty filtering
  /// still applies under kDirtyFrame).
  ApplyResult preview(const ConfigOp& op, const FrameSet& frames) const;

  /// Applies the op to the fabric and charges the port timing model.
  /// `allow_lut_ram_columns` waives the live-LUT-RAM column rule — legal
  /// only while the affected clock domain is stopped (paper, Sec. 2: the
  /// system must be halted to guarantee data coherency).
  ApplyResult apply(const ConfigOp& op, bool allow_lut_ram_columns = false);

  /// apply() with the frame mapping reused from frames_of(op) — for callers
  /// (the transaction batcher) that already maintain the op's frame set.
  ApplyResult apply(const ConfigOp& op, const FrameSet& frames,
                    bool allow_lut_ram_columns);

  /// Cell key used by the LUT-RAM legality check: {row, col, cell}. A
  /// packed (row, col * 4 + cell) pair was used before; it aliased distinct
  /// cells on any geometry with cells_per_clb > 4 (e.g. col 0 cell 4 and
  /// col 1 cell 0), silently exempting live LUT-RAM cells from the column
  /// check. The tuple is alias-free for every geometry.
  using CellKey = std::tuple<int, int, int>;

  /// LUT-RAM legality (paper, Sec. 2): throws IllegalOperationError if any
  /// frame of the op lies in a CLB column containing a used LUT-RAM cell
  /// that the op itself does not rewrite. `extra_rewritten` extends the
  /// exemption set with cells known to be rewritten before this op applies
  /// (the transaction batcher passes its pending batch's writes so each
  /// queued op is checked exactly as the per-op sequence would be). The
  /// column set this checks is identical across granularities — widening
  /// only adds frames within columns the op already touches.
  void check_lut_ram_columns(const ConfigOp& op,
                             const std::set<CellKey>* extra_rewritten =
                                 nullptr) const;

  /// Same check from an already-computed frame set (frames_of(op)).
  void check_lut_ram_columns(const ConfigOp& op, const FrameSet& frames,
                             const std::set<CellKey>* extra_rewritten) const;

  const ConfigTotals& totals() const { return totals_; }
  void reset_totals() { totals_ = ConfigTotals{}; }

  // ---- invariant audit (DESIGN.md §8.4) -------------------------------------
  /// Cross-checks the incremental FrameImage digest mirror against a full
  /// recompute from fabric ground truth (every cell config, live PIP and
  /// attached source, relative to the fabric state at controller
  /// construction — fault installation happens before construction, so the
  /// baseline folds injected corruption in). Throws AuditError on the first
  /// divergent frame: either the incremental delta path dropped/duplicated
  /// a token, or something mutated the fabric behind the controller's back
  /// — both contract violations. Always compiled; periodic call sites
  /// (TransactionBatcher::flush) are gated on RELOGIC_AUDIT.
  void audit_image() const;

  /// Attaches a trace lane: every apply() emits one 'X' span on the
  /// cumulative port-busy clock (ts = totals().time before the op) with
  /// granularity and frame accounting as args. Default-constructed handle
  /// (the default) disables tracing at the cost of one branch per apply.
  void set_trace(obs::TraceTrack track) { trace_ = track; }

 private:
  /// The frame controlling a net-source attach/detach (output mux / pad).
  FrameAddress source_frame(const SourceChange& sc) const;
  /// Whether the optimized (non-reference-kernel) data path runs.
  bool fast_path() const { return !kernel_->reference(); }

  // ---- optimized path (non-reference kernels) ------------------------------
  /// frames_of for kFrame / kDirtyFrame via a per-op frame bitmap: mark
  /// each action's frame run, kernel-expand to sorted ids, clear only the
  /// marked words. Output identical to the sort-based reference path.
  void frames_of_fast(const ConfigOp& op, FrameSet& out) const;
  /// accumulate_deltas against the SoA token columns with an epoch-stamped
  /// per-slot token overlay instead of the cell hash map. Cell deltas come
  /// out as run_base_/run_delta_ RUNS (one frames_per_cell run per distinct
  /// cell the op touches, delta possibly XOR-cancelled to 0) instead of a
  /// per-frame map; edge/source deltas — provably disjoint frame ids, see
  /// FrameMapper::first_routing_frame — go into `net_out` as before.
  void accumulate_deltas_fast(const ConfigOp& op, FrameDeltaMap& net_out,
                              bool count_net_frames) const;
  /// Resets the sequence-persistent overlays (cell epoch bump + edge/source
  /// maps). The per-op run state is reset by begin_op_fast().
  void clear_overlays_fast() const;
  /// Starts a new per-op epoch for the run collectors.
  void begin_op_fast() const;
  /// price_full over an already-sorted id array via the kernel's one-pass
  /// pricing with the memoized port-time table.
  ApplyResult price_ids(const std::int32_t* ids, int n) const;
  /// kDirtyFrame pricing of the collected cell runs plus the net dirty ids:
  /// per-column frame counts + one memoized port transaction per touched
  /// column in ascending column order — identical to pricing the sorted
  /// dirty id list, because a column's frames are id-contiguous.
  ApplyResult price_runs(const std::int32_t* net_dirty, int n_net) const;
  /// apply() body on the optimized path. `frames` supplies the op frame
  /// count for frames_skipped; nullptr means count internally (4 per
  /// distinct cell + distinct net frames) without materializing ids.
  ApplyResult apply_fast(const ConfigOp& op, const FrameSet* frames,
                         bool allow_lut_ram_columns);
  /// preview() body on the optimized kDirtyFrame path (same `frames`
  /// convention as apply_fast).
  ApplyResult preview_fast(const ConfigOp& op, const FrameSet* frames) const;
  /// LUT-RAM legality with the column set derived from the op's actions
  /// (identical to the frame-derived set — widening never adds columns).
  void check_lut_ram_columns_fast(const ConfigOp& op) const;
  /// Charges totals, trace and logging for one applied op (shared tail of
  /// the reference and fast apply paths).
  ApplyResult finish_apply(const ConfigOp& op, ApplyResult result,
                           int effective);
  /// Absolute per-frame content digest of the fabric as it stands: XOR of
  /// the diff-from-default token of every non-default cell config plus the
  /// tokens of every live PIP and attached source. audit_image compares
  /// image_ against recompute(now) ^ recompute(construction).
  void recompute_digests(std::vector<std::uint64_t>& out) const;
  /// Granularity-aware pricing: every frame of `frames` under kColumn /
  /// kFrame; only the dirty (non-zero-delta) subset under kDirtyFrame,
  /// with the remainder counted as frames_skipped.
  ApplyResult price(const FrameSet& frames, const FrameDeltaMap& deltas) const;
  /// One pass over a sorted id set: counts frames and columns and charges
  /// one port transaction per column run.
  ApplyResult price_full(const FrameSet& frames) const;
  /// Per-frame content deltas the op *would* produce, simulated against the
  /// current fabric with an overlay of the op's own earlier actions (an op
  /// that adds then removes the same PIP nets out to delta 0). Injected
  /// configuration-memory faults are not modelled here — apply() computes
  /// the exact deltas from observed before/after values instead.
  void simulate_deltas(const ConfigOp& op, FrameDeltaMap& out) const;
  /// simulate_deltas core: accumulates one op's deltas into `out` reading
  /// before-values through the *persistent* overlay scratch (callers clear
  /// the overlays to choose single-op or sequence semantics).
  void accumulate_deltas(const ConfigOp& op, FrameDeltaMap& out) const;

  fabric::Fabric* fabric_;
  const ConfigPort* port_;
  const KernelBackend* kernel_;
  FrameMapper mapper_;
  WriteGranularity granularity_;
  FrameIndex index_;
  FrameImage image_;
  CellColumns columns_;
  ConfigTotals totals_;
  obs::TraceTrack trace_;
  /// Fabric content digests at construction — the erased-state baseline the
  /// image's deltas are relative to (see audit_image). One walk at ctor.
  std::vector<std::uint64_t> audit_baseline_;

  // ---- reusable scratch (not thread-safe; see the header comment) ---------
  mutable FrameSet frames_scratch_;   ///< apply(op) / preview(op) mapping
  mutable FrameSet dirty_scratch_;    ///< dirty subset in price()
  mutable FrameSet columns_scratch_;  ///< distinct column markers (kColumn)
  mutable FrameDeltaMap deltas_scratch_;
  /// simulate_deltas / preview_sequence value overlay of earlier actions.
  /// Hash maps (reused across calls, so buckets are allocated once): the
  /// per-op path keeps them tiny, but preview_sequence persists them across
  /// a whole op sequence, where a linear scan would go quadratic.
  struct EdgeKey {
    fabric::NetId net;
    fabric::NodeId from;
    fabric::NodeId to;
    bool operator==(const EdgeKey&) const = default;
  };
  struct EdgeKeyHash {
    std::size_t operator()(const EdgeKey& k) const {
      std::uint64_t x = (static_cast<std::uint64_t>(k.net) << 32) ^
                        (static_cast<std::uint64_t>(k.from) << 16) ^ k.to;
      x ^= x >> 33;
      x *= 0xff51afd7ed558ccdull;
      x ^= x >> 33;
      return static_cast<std::size_t>(x);
    }
  };
  mutable std::unordered_map<std::uint64_t, fabric::LogicCellConfig>
      overlay_cells_;
  mutable std::unordered_map<EdgeKey, bool, EdgeKeyHash> overlay_edges_;
  mutable std::unordered_map<std::uint64_t, bool> overlay_sources_;
  /// check_lut_ram_columns: packed {row, col, cell} keys the op rewrites.
  mutable std::vector<std::uint64_t> rewrites_scratch_;

  // ---- fast-path state (non-reference kernels) -----------------------------
  /// Dense column id per frame id (kernel pricing reads it per frame).
  std::vector<std::uint16_t> col_of_;
  /// Memoized port write_time by same-column run length (1..max_run_). The
  /// port model is a pure function of (frames, frame_bits), so the memo is
  /// byte-identical to calling the virtual per run.
  mutable std::vector<SimTime> time_memo_;
  mutable std::vector<std::uint8_t> memo_valid_;
  int max_run_ = 0;
  int frame_bits_ = 0;
  /// Per-op frame bitmap for frames_of_fast + the touched-word list that
  /// lets it clear in O(op) instead of O(device).
  mutable std::vector<std::uint64_t> op_words_;
  mutable std::vector<std::int32_t> op_word_marks_;
  /// Distinct-CLB-column bitmap for the fast LUT-RAM check.
  mutable std::vector<std::uint64_t> col_words_;
  /// Token-level cell overlay of simulate_deltas / preview_sequence:
  /// epoch-stamped per slot (slot layout = CellColumns), packed so one
  /// cache line serves both fields. Token equality stands in for config
  /// equality — a colliding pair would produce delta 0 on the reference
  /// path too, so outputs stay identical.
  struct CellOverlay {
    std::uint64_t tok;
    std::uint32_t stamp;
  };
  mutable std::vector<CellOverlay> overlay_;
  mutable std::uint32_t overlay_epoch_ = 1;
  /// Per-op run collectors: one entry per distinct (col, cell) the op
  /// touches — a run's frames depend only on the cell's column position,
  /// so every row of the same (col, cell) folds into ONE run (their deltas
  /// can XOR-cancel, exactly as the reference FrameDeltaMap merges them).
  /// run_delta_ accumulates before ^ after per write, which telescopes to
  /// op-entry token ^ final token per touched cell (0 when writes cancel
  /// or rewrite identically). runkey_* is indexed by
  /// col * cells_per_clb + cell — small enough to stay cache-hot.
  mutable std::vector<std::int32_t> run_base_;
  mutable std::vector<std::uint64_t> run_delta_;
  /// Dense column of each run, recorded at run creation (1 + CLB col —
  /// saves the col_of_ load in pricing).
  mutable std::vector<std::int32_t> run_col_;
  mutable std::vector<std::int32_t> runkey_idx_;
  mutable std::vector<std::uint32_t> runkey_stamp_;
  mutable std::uint32_t op_epoch_ = 1;
  /// price_runs: per-dense-column frame counts + the touched-column list
  /// (epoch-stamped; all per-column arrays are total_columns()-sized and
  /// cache-hot). Column visit order doesn't affect the result — frame and
  /// column counts and the SimTime sum are all commutative.
  mutable std::vector<std::int32_t> col_count_;
  mutable std::vector<std::uint32_t> col_stamp_;
  mutable std::vector<std::int32_t> col_list_;
  /// Distinct net (edge/source) frames of the current op — counting-mode
  /// substitute for |frames_of(op)| on the net side.
  mutable int net_frame_marks_ = 0;
};

}  // namespace relogic::config
