// Partial-bitstream serialisation.
//
// Substitutes for the JBits-generated partial configuration files: a
// ConfigOp (or a sequence of them) is rendered into a compact binary image —
// sync word, device id, then one packet per frame (address + payload) and a
// trailing CRC — plus a human-readable script listing. The payload bits are
// synthesised deterministically from the structural actions, so two
// identical rearrangements produce byte-identical files.
//
// Rendering and pricing follow the controller's write granularity exactly,
// and are sequence-aware (ConfigController::preview_sequence): whole
// columns under kColumn, the mapped frame set under kFrame, and only the
// frames whose contents would change *at that point of the sequence* under
// kDirtyFrame — a later op rewriting an earlier op's content renders
// nothing, exactly as applying the ops in order would skip it. `--script` /
// `--out` frame totals therefore match the controller's ConfigTotals for
// arbitrary op sequences (tests/config_test.cpp pins the agreement).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "relogic/config/controller.hpp"

namespace relogic::config {

/// CRC-32 (IEEE 802.3, reflected) over a byte range.
std::uint32_t crc32(const std::uint8_t* data, std::size_t size);

struct PartialBitstream {
  std::vector<std::uint8_t> bytes;
  int frame_count = 0;
  std::uint32_t crc = 0;
};

class BitstreamWriter {
 public:
  explicit BitstreamWriter(const ConfigController& controller)
      : controller_(&controller) {}

  /// Renders one op into a partial bitstream image.
  PartialBitstream render(const ConfigOp& op) const;

  /// Renders a whole rearrangement (sequence of ops) into one image with a
  /// packet boundary per op.
  PartialBitstream render(const std::vector<ConfigOp>& ops) const;

  /// Human-readable listing of an op sequence: one line per op with label,
  /// frames and per-op transfer time — the format the CLI tool prints.
  std::string script(const std::vector<ConfigOp>& ops) const;

 private:
  /// Emits one op's packets for the frames the controller says this point
  /// of the sequence would write.
  void append_op(const ConfigOp& op, const FrameSet& frames,
                 PartialBitstream& out) const;

  const ConfigController* controller_;
};

}  // namespace relogic::config
