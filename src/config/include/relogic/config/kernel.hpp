// Pluggable kernels for the config-plane hot loops.
//
// PR 5 flattened the configuration data path onto dense frame ids
// (frame_index.hpp); this layer makes the inner loops over those flat
// structures — dirty-set scans, digest-delta commits, one-pass pricing,
// batcher frame-set unions, and the full-device digest sweeps behind the
// audit — pluggable behind a KernelBackend so the same golden-equivalence
// suite (tests/flatpath_test.cpp) pins every implementation byte-identical:
//
//  * "serial" is the REFERENCE. It keeps the PR 5 scalar algorithms alive
//    verbatim — ConfigController checks reference() and runs its preserved
//    sort-based frames_of / hash-map overlay / per-run virtual pricing path
//    — exactly the RoutingSkeleton::build_reference precedent: the baseline
//    the CI within-run gate measures the vectorized backends against.
//  * "openmp" runs the optimized bitmap/SoA path and parallelizes the
//    full-device digest sweep over CLB-column bands (PR 9's deterministic
//    banding: bands write disjoint output slices, concatenation order is
//    fixed, results are byte-identical at any thread count). Per-op kernels
//    stay serial — a few hundred frames never amortize a fork/join.
//  * "simd" runs the optimized path with runtime-dispatched vector inner
//    loops (AVX2 on x86-64, NEON on aarch64, scalar everywhere else — the
//    dispatch decision is exposed as variant()).
//
// Backends are stateless const singletons registered in a
// BackendRegistry<KernelBackend> (common/backend_registry.hpp): safe to
// share across fleet worker threads, selected per controller via the
// RELOGIC_KERNEL_BACKEND environment variable or the --kernel CLI flag,
// and echoed in telemetry JSON.
//
// Determinism contract (DESIGN.md §9): every method is a pure function of
// its operands; outputs are defined in ascending-id order, XOR folds are
// order-independent, and pricing memoizes the port model's own values — so
// ApplyResult fields, ConfigTotals, digests and frame sets are required to
// be byte-identical across backends at every granularity, and the
// equivalence suite enforces it.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "relogic/common/backend_registry.hpp"
#include "relogic/common/time.hpp"

namespace relogic::config {

class ConfigPort;

/// Pricing context: precomputed per-frame column ids plus a lazily filled
/// memo of the port model's write_time by run length. The memo only ever
/// caches the port's own answers, so memoized pricing is byte-identical to
/// calling the virtual per run (the PR 5 reference does exactly that).
struct PriceTables {
  const std::uint16_t* column_of = nullptr;  ///< dense column id per frame id
  int frame_bits = 0;
  const ConfigPort* port = nullptr;
  SimTime* time_memo = nullptr;       ///< write_time(n) for n = 1..max_run
  std::uint8_t* memo_valid = nullptr;
  int max_run = 0;                    ///< longest possible same-column run
};

struct PriceResult {
  int frames = 0;
  int columns = 0;
  SimTime time = SimTime::zero();
};

/// Context for the full-device cell-digest sweep (audit / baseline
/// recompute): the SoA cell-token columns of cell_columns.hpp. Slot layout
/// is FrameIndex order: slot(col, cell, row) = (col * cells_per_clb + cell)
/// * rows + row, so one (col, cell) group is `rows` contiguous slots and
/// owns the `frames_per_cell` contiguous frame ids of that cell's frame
/// group — groups write disjoint output ranges, which is what makes the
/// banded parallel sweep race-free and deterministic.
struct CellSweepCtx {
  const std::uint64_t* tokens = nullptr;      ///< current token per slot
  const std::uint64_t* nondefault = nullptr;  ///< bitmap: slot differs from
                                              ///< the erased configuration
  const std::uint64_t* row_default = nullptr; ///< erased-config token per row
  int rows = 0;
  int cells_per_clb = 0;
  int clb_cols = 0;
  int frames_per_cell = 0;
  int frames_per_clb_column = 0;
  std::int32_t clb_base = 0;  ///< first CLB-region frame id
};

class KernelBackend {
 public:
  virtual ~KernelBackend() = default;

  virtual std::string name() const = 0;
  /// Which inner-loop flavour actually runs: "scalar", "avx2" or "neon".
  virtual std::string variant() const { return "scalar"; }
  /// Reference backends make ConfigController run the preserved PR 5
  /// scalar path instead of the bitmap/SoA fast path.
  virtual bool reference() const { return false; }

  // ---- (1) dirty-set scan ---------------------------------------------------
  /// Appends, in ascending id order, every id marked in the touched-word
  /// bitmap whose delta is still non-zero (XOR-cancelled frames drop out).
  virtual void scan_dirty(const std::uint64_t* words, int nwords,
                          const std::uint64_t* delta,
                          std::vector<std::int32_t>& out) const;

  /// Appends every set-bit id of a word bitmap in ascending order (the
  /// frame-set extraction of the fast frames_of path).
  virtual void expand_bits(const std::uint64_t* words, int nwords,
                           std::vector<std::int32_t>& out) const;

  // ---- (2) digest-delta commit ---------------------------------------------
  /// XORs every non-zero delta into the digest array, maintains the
  /// ever-touched bytes and the tracked-frame count, and (when `dirty` is
  /// non-null) emits the dirty ids in ascending order — the commit and the
  /// dirty scan fused into one sweep.
  virtual void commit_scan(const std::uint64_t* words, int nwords,
                           const std::uint64_t* delta, std::uint64_t* digest,
                           std::uint8_t* ever_touched, std::size_t& tracked,
                           std::vector<std::int32_t>* dirty) const;

  // ---- (3) one-pass pricing -------------------------------------------------
  /// Prices a sorted id set: frames, distinct columns, and port time with
  /// one transaction per same-column run (ids are column-contiguous, so
  /// each column is exactly one run).
  virtual PriceResult price(const std::int32_t* ids, int n,
                            const PriceTables& tables) const;

  // ---- (4) frame-set union --------------------------------------------------
  /// Appends the sorted union of two sorted unique id ranges to `out`.
  virtual void union_ids(const std::int32_t* a, int na, const std::int32_t* b,
                         int nb, std::vector<std::int32_t>& out) const;

  // ---- full-device digest sweep --------------------------------------------
  /// XORs the cell-configuration contribution of every non-default cell
  /// into `out` (indexed by frame id). Shared by audit_image and the
  /// construction-time baseline.
  virtual void cell_digest_sweep(const CellSweepCtx& ctx,
                                 std::uint64_t* out) const;
};

/// The process-wide kernel-backend registry, pre-loaded with the built-in
/// serial / openmp / simd backends on first use.
BackendRegistry<KernelBackend>& kernel_registry();

/// Backend registered under `name`, or nullptr.
const KernelBackend* kernel_backend(std::string_view name);

/// The backend new controllers get when none is passed explicitly:
/// $RELOGIC_KERNEL_BACKEND if set (unknown names throw), else "simd"
/// (whose scalar fallback makes it safe everywhere). Resolved once.
const KernelBackend& default_kernel_backend();

/// Registered backend names, registration order (serial first).
std::vector<std::string> kernel_backend_names();

}  // namespace relogic::config
