// Recovery snapshots.
//
// The paper's tool "always keeps a complete copy of the current
// configuration, enabling system recovery in case of failure". SnapshotKeeper
// wraps Fabric::capture/restore with a named history so the CLI tool and the
// failure-injection tests can roll the fabric back to any retained point.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "relogic/fabric/fabric.hpp"

namespace relogic::config {

class SnapshotKeeper {
 public:
  explicit SnapshotKeeper(fabric::Fabric& fabric, std::size_t max_retained = 4)
      : fabric_(&fabric), max_retained_(max_retained) {}

  /// Captures the current fabric state under a label; evicts the oldest
  /// snapshot beyond the retention limit. Returns the snapshot index.
  std::size_t take(std::string label);

  /// Restores the most recent snapshot. Returns false if none retained.
  bool restore_latest();

  /// Restores the snapshot with the given label (most recent match).
  bool restore(const std::string& label);

  std::size_t retained() const { return entries_.size(); }
  std::vector<std::string> labels() const;

 private:
  struct Entry {
    std::string label;
    fabric::Fabric::State state;
  };
  fabric::Fabric* fabric_;
  std::size_t max_retained_;
  std::vector<Entry> entries_;
};

}  // namespace relogic::config
