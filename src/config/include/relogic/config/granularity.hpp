// Configuration-write granularity.
//
// The smallest unit the hardware can write is one frame; what a *tool*
// writes per transaction is a policy choice with a large cost impact
// (paper Sec. 2: relocation latency is dominated by configuration-port
// traffic). Three regimes are modelled (DESIGN.md §6.1):
//
//  * kColumn — rewrite every frame of each touched column. This is the
//    JBits-era regime the paper measured (the 22.6 ms figure); harmless
//    because rewriting identical data is glitch-free, but maximally slow:
//    the column regime is what rewrites already-identical bytes wholesale.
//  * kFrame — write exactly the frames the op's actions map to. This is
//    where the bulk of the speedup over kColumn comes from (~95% fewer
//    frames on the Fig. 4 relocation workload).
//  * kDirtyFrame — like kFrame, but additionally skip frames whose
//    contents the op leaves unchanged (computed as XOR content deltas,
//    config::FrameImage). On the pure relocation op stream this equals
//    kFrame (the engine emits no redundant writes — bench_fig4 measures
//    zero skips); it wins on streams with redundant rewrites: repeated
//    re-configuration, self-test clears, batcher-merged sequences where a
//    later op undoes an earlier one.
//
// Granularity only changes what is *written* (frames, columns, port time);
// the structural effect of an op on the fabric is identical in all three —
// the golden-equivalence suite in tests/granularity_test.cpp asserts it.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace relogic::config {

enum class WriteGranularity : std::uint8_t {
  kColumn,      ///< whole-column rewrites (JBits regime, paper's set-up)
  kFrame,       ///< minimal frame set of the op
  kDirtyFrame,  ///< frame set minus frames whose bytes are unchanged
};

inline std::string to_string(WriteGranularity g) {
  switch (g) {
    case WriteGranularity::kColumn:
      return "column";
    case WriteGranularity::kFrame:
      return "frame";
    case WriteGranularity::kDirtyFrame:
      return "dirty";
  }
  return "?";
}

inline std::optional<WriteGranularity> parse_write_granularity(
    const std::string& name) {
  if (name == "column" || name == "col") return WriteGranularity::kColumn;
  if (name == "frame") return WriteGranularity::kFrame;
  if (name == "dirty" || name == "dirty-frame" || name == "dirtyframe")
    return WriteGranularity::kDirtyFrame;
  return std::nullopt;
}

}  // namespace relogic::config
