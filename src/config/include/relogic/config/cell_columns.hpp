// CellColumns: SoA mirror of the fabric's per-cell configuration state,
// laid out in FrameIndex order.
//
// The fabric stores cells as an array-of-structs (ClbConfig rows), which is
// the right shape for structural queries but the wrong one for the config
// plane: computing a transaction's frame deltas means visiting the cells of
// a (column, cell) frame group, and in AoS order those are strided across
// the whole CLB array. This class keeps three flat columns, indexed by
//
//   slot(col, cell, row) = (col * cells_per_clb + cell) * rows + row
//
// — i.e. the cells of one frame group are `rows` contiguous slots, and
// groups follow each other exactly in FrameIndex id order:
//
//  * tokens()      — FrameImage::cell_token(row, cfg) of the cell's current
//                    configuration. The controller's apply loop reads the
//                    before-token here, writes the fabric, and reads the
//                    after-token back (the listener updated it) — the XOR of
//                    the two is the frame-group delta, no AoS walk needed.
//  * occupancy()   — bitmap: slot's configuration differs from the erased
//                    (default) state. This is what the full-device digest
//                    sweep (KernelBackend::cell_digest_sweep) iterates, so
//                    audit/baseline recompute cost scales with configured
//                    cells, not device area.
//  * fault_mask()  — bitmap: slot has an injected configuration-memory
//                    defect (Fabric::inject_fault), synced lazily from the
//                    fabric's fault table.
//
// The mirror registers itself as a FabricListener; every cell mutation —
// including restore() and the re-corruption write of inject_fault — funnels
// through Fabric::set_cell_config, so on_cell_changed sees every effective
// change and the columns stay exact.
#pragma once

#include <cstdint>
#include <vector>

#include "relogic/config/frame_image.hpp"
#include "relogic/fabric/fabric.hpp"

namespace relogic::config {

class CellColumns : public fabric::FabricListener {
 public:
  explicit CellColumns(fabric::Fabric& fab);
  ~CellColumns() override;

  CellColumns(const CellColumns&) = delete;
  CellColumns& operator=(const CellColumns&) = delete;

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  int cells_per_clb() const { return cells_; }
  int slot_count() const { return static_cast<int>(tokens_.size()); }
  int word_count() const { return static_cast<int>(occupancy_.size()); }

  int slot(int row, int col, int cell) const {
    return (col * cells_ + cell) * rows_ + row;
  }

  /// Current configuration token of one cell.
  std::uint64_t token(int row, int col, int cell) const {
    return tokens_[static_cast<std::size_t>(slot(row, col, cell))];
  }
  const std::uint64_t* tokens() const { return tokens_.data(); }

  /// Token of the erased (default) configuration at each row.
  const std::uint64_t* row_default_tokens() const {
    return row_default_.data();
  }

  /// Bitmap over slots: configuration differs from the erased state.
  const std::uint64_t* occupancy() const { return occupancy_.data(); }
  bool occupied(int row, int col, int cell) const {
    const int s = slot(row, col, cell);
    return (occupancy_[static_cast<std::size_t>(s) >> 6] >>
            (s & 63)) & 1u;
  }
  /// Number of non-default cells across the device.
  int occupied_count() const { return occupied_count_; }

  /// Bitmap over slots: cell has an injected configuration-memory defect.
  /// Synced from the fabric's fault table on call (cheap when the injected
  /// count has not changed since the last sync).
  const std::uint64_t* fault_mask();
  bool faulted(int row, int col, int cell) {
    const int s = slot(row, col, cell);
    return (fault_mask()[static_cast<std::size_t>(s) >> 6] >>
            (s & 63)) & 1u;
  }

  // FabricListener:
  void on_cell_changed(ClbCoord clb, int cell,
                       const fabric::LogicCellConfig& before,
                       const fabric::LogicCellConfig& after) override;
  void on_net_changed(fabric::NetId) override {}

 private:
  fabric::Fabric& fab_;
  int rows_ = 0;
  int cols_ = 0;
  int cells_ = 0;
  std::vector<std::uint64_t> tokens_;
  std::vector<std::uint64_t> row_default_;
  std::vector<std::uint64_t> occupancy_;
  std::vector<std::uint64_t> fault_;
  int occupied_count_ = 0;
  int fault_synced_count_ = -1;  ///< injected_fault_count at last sync
};

}  // namespace relogic::config
