// Flat, index-addressable configuration-frame structures.
//
// The config plane's hot path — ConfigController::frames_of / preview /
// apply, the dirty diffing in FrameImage, and the transaction batcher's
// running unions — used to run on node-based std::set<FrameAddress> /
// std::map<FrameAddress, uint64_t>. Every relocation costing, defrag plan,
// health sweep and fleet replay funnels through that path millions of
// times, so it is rebuilt here on three flat types:
//
//  * FrameIndex — a perfect, geometry-derived bijection between every
//    FrameAddress of a device and a dense contiguous frame id. Ids are laid
//    out column-contiguously (centre frames first, then each CLB column's
//    frames, then the two IOB columns), so sorting by id groups frames by
//    column — the property that lets pricing bucket per column in ONE pass
//    over a sorted id range. The id order equals FrameAddress's <=> order,
//    so iterating a sorted id set visits addresses exactly as the old
//    std::set did (byte-identical reports and renders).
//  * FrameSet — a sorted vector of frame ids with O(n) union, binary-search
//    membership and contiguous iteration. Built push()-then-normalize();
//    callers keep instances around as scratch so steady-state operations
//    allocate nothing.
//  * FrameDeltaMap — a flat map from frame id to a 64-bit XOR content
//    delta, direct-indexed over the device's bounded frame universe
//    (DeviceGeometry::total_frames(), a few thousand even on the XCV1000).
//    The delta array is zero-invariant (every untouched entry holds 0) and
//    a word bitmap mirrors the touched set, so the kernel backends
//    (config/kernel.hpp) can scan for dirty frames with word-at-a-time
//    bit tricks instead of walking a stamp array; clear() is O(touched).
//    Replaces the per-op std::map<FrameAddress, uint64_t> allocations in
//    delta simulation and apply.
//
// tests/flatpath_test.cpp pins the equivalence against a reference
// implementation of the old set/map semantics on randomized op streams.
#pragma once

#include <algorithm>
#include <bit>
#include <cstdint>
#include <vector>

#include "relogic/config/frame.hpp"

namespace relogic::config {

/// Dense-id addressing of every configuration frame of one geometry.
class FrameIndex {
 public:
  FrameIndex() = default;
  explicit FrameIndex(const fabric::DeviceGeometry& geom)
      : clb_cols_(geom.clb_cols),
        frames_center_(geom.frames_center_column),
        frames_clb_(geom.frames_per_clb_column),
        frames_iob_(geom.frames_per_iob_column),
        frames_cell_(geom.frames_per_cell_config),
        clb_base_(geom.frames_center_column),
        iob_base_(geom.frames_center_column +
                  geom.clb_cols * geom.frames_per_clb_column),
        total_(geom.frames_center_column +
               geom.clb_cols * geom.frames_per_clb_column +
               2 * geom.frames_per_iob_column) {}

  int total_frames() const { return total_; }
  /// Centre + CLB columns + two IOB columns.
  int total_columns() const { return 1 + clb_cols_ + 2; }

  std::int32_t id(const FrameAddress& f) const {
    switch (f.type) {
      case ColumnType::kCenter:
        return f.frame;
      case ColumnType::kClb:
        return clb_frame_id(f.column, f.frame);
      case ColumnType::kIob:
        return iob_frame_id(f.column, f.frame);
    }
    return -1;
  }

  std::int32_t center_frame_id(int frame) const {
    return static_cast<std::int32_t>(frame);
  }
  std::int32_t clb_frame_id(int column, int frame) const {
    return static_cast<std::int32_t>(clb_base_ + column * frames_clb_ + frame);
  }
  std::int32_t iob_frame_id(int column, int frame) const {
    return static_cast<std::int32_t>(iob_base_ + column * frames_iob_ + frame);
  }
  /// First frame id of logic cell `cell`'s frame group in a CLB column
  /// (the group is the frames_per_cell_config ids from here, contiguous).
  std::int32_t cell_frame_base(int column, int cell) const {
    return clb_frame_id(column, cell * frames_cell_);
  }

  FrameAddress address(std::int32_t id) const {
    if (id < clb_base_) {
      return FrameAddress{ColumnType::kCenter, 0,
                          static_cast<std::int16_t>(id)};
    }
    if (id < iob_base_) {
      const int rel = id - clb_base_;
      return FrameAddress{ColumnType::kClb,
                          static_cast<std::int16_t>(rel / frames_clb_),
                          static_cast<std::int16_t>(rel % frames_clb_)};
    }
    const int rel = id - iob_base_;
    return FrameAddress{ColumnType::kIob,
                        static_cast<std::int16_t>(rel / frames_iob_),
                        static_cast<std::int16_t>(rel % frames_iob_)};
  }

  /// Dense column id: centre = 0, CLB column c = 1 + c, IOB column c =
  /// 1 + clb_cols + c. Monotone in frame id — equal-column frames are
  /// contiguous in id order.
  std::int32_t column_of(std::int32_t id) const {
    if (id < clb_base_) return 0;
    if (id < iob_base_) return 1 + (id - clb_base_) / frames_clb_;
    return 1 + clb_cols_ + (id - iob_base_) / frames_iob_;
  }

  bool is_clb(std::int32_t id) const {
    return id >= clb_base_ && id < iob_base_;
  }
  bool is_iob(std::int32_t id) const { return id >= iob_base_; }
  /// CLB column index of a CLB-region id (precondition: is_clb(id)).
  int clb_column_of(std::int32_t id) const {
    return (id - clb_base_) / frames_clb_;
  }

 private:
  int clb_cols_ = 0;
  int frames_center_ = 0;
  int frames_clb_ = 0;
  int frames_iob_ = 0;
  int frames_cell_ = 0;
  int clb_base_ = 0;
  int iob_base_ = 0;
  int total_ = 0;
};

/// Sorted set of frame ids. Build with push() (duplicates and arbitrary
/// order allowed) followed by normalize(); all read accessors assume the
/// set is normalized. Reuse instances to keep the hot path allocation-free.
class FrameSet {
 public:
  FrameSet() = default;
  // Copies carry the ids only — merge_ is union_with() scratch (swap leaves
  // the previous ids in it) and copying it would memcpy a dead buffer on
  // every batcher gate trial.
  FrameSet(const FrameSet& other) : ids_(other.ids_) {}
  FrameSet& operator=(const FrameSet& other) {
    if (this != &other) ids_ = other.ids_;
    return *this;
  }
  FrameSet(FrameSet&&) = default;
  FrameSet& operator=(FrameSet&&) = default;

  void clear() { ids_.clear(); }
  void reserve(std::size_t n) { ids_.reserve(n); }
  bool empty() const { return ids_.empty(); }
  std::size_t size() const { return ids_.size(); }

  void push(std::int32_t id) { ids_.push_back(id); }
  /// Append a contiguous id run [base, base + count).
  void push_run(std::int32_t base, int count) {
    for (int i = 0; i < count; ++i) ids_.push_back(base + i);
  }
  void normalize() {
    std::sort(ids_.begin(), ids_.end());
    ids_.erase(std::unique(ids_.begin(), ids_.end()), ids_.end());
  }

  const std::int32_t* begin() const { return ids_.data(); }
  const std::int32_t* end() const { return ids_.data() + ids_.size(); }
  std::int32_t operator[](std::size_t i) const { return ids_[i]; }

  bool contains(std::int32_t id) const {
    return std::binary_search(ids_.begin(), ids_.end(), id);
  }

  /// In-place sorted union with another normalized set.
  void union_with(const FrameSet& other) {
    if (other.ids_.empty()) return;
    merge_.clear();
    merge_.reserve(ids_.size() + other.ids_.size());
    std::set_union(ids_.begin(), ids_.end(), other.ids_.begin(),
                   other.ids_.end(), std::back_inserter(merge_));
    ids_.swap(merge_);
  }

  /// In-place sorted union with the merge routed through a caller-supplied
  /// kernel: `merge(a, na, b, nb, out)` must append the sorted union of the
  /// two sorted unique ranges to `out`. Lets the batcher run its running
  /// unions through the selected config::KernelBackend.
  template <typename MergeFn>
  void union_via(const FrameSet& other, MergeFn&& merge) {
    if (other.ids_.empty()) return;
    merge_.clear();
    merge_.reserve(ids_.size() + other.ids_.size());
    merge(ids_.data(), static_cast<int>(ids_.size()), other.ids_.data(),
          static_cast<int>(other.ids_.size()), merge_);
    ids_.swap(merge_);
  }

  /// Direct access to the underlying id vector so kernel fills (e.g.
  /// KernelBackend::expand_bits) can append without per-id call overhead.
  /// The caller must leave the vector sorted and unique, or normalize().
  std::vector<std::int32_t>& raw_ids() { return ids_; }

  /// Keep only ids satisfying `pred` (normalized order preserved).
  template <typename Pred>
  void filter(Pred pred) {
    ids_.erase(std::remove_if(ids_.begin(), ids_.end(),
                              [&](std::int32_t id) { return !pred(id); }),
               ids_.end());
  }

 private:
  std::vector<std::int32_t> ids_;
  std::vector<std::int32_t> merge_;
};

/// Flat frame-id -> XOR-delta map, direct-indexed over the device's frame
/// universe: reset() sizes it once per geometry, clear() is O(touched),
/// and lookups are a single array read.
///
/// Invariant: delta_[id] == 0 for every id not touched since the last
/// clear(), and words_ has a set bit exactly for the touched ids — so the
/// kernel backends can sweep (words, delta) directly without a stamp
/// indirection, and delta(id) is an unconditional load.
class FrameDeltaMap {
 public:
  /// Sizes the map for a universe of `total_frames` ids and clears it.
  void reset(int total_frames) {
    if (static_cast<int>(delta_.size()) != total_frames) {
      delta_.assign(static_cast<std::size_t>(total_frames), 0);
      words_.assign(static_cast<std::size_t>((total_frames + 63) / 64), 0);
      touched_.clear();
    }
    clear();
  }

  void clear() {
    for (std::int32_t id : touched_) {
      delta_[static_cast<std::size_t>(id)] = 0;
      // Every set bit of this word belongs to a touched id, so zeroing the
      // whole word (possibly more than once) restores the invariant.
      words_[static_cast<std::size_t>(id) >> 6] = 0;
    }
    touched_.clear();
  }

  void xor_delta(std::int32_t id, std::uint64_t d) {
    if (d == 0) return;
    const std::size_t w = static_cast<std::size_t>(id) >> 6;
    const std::uint64_t m = std::uint64_t{1} << (id & 63);
    if (!(words_[w] & m)) {
      words_[w] |= m;
      touched_.push_back(id);
    }
    delta_[static_cast<std::size_t>(id)] ^= d;
  }

  /// XORs the same delta into the contiguous id run [base, base + count) —
  /// a cell write's frame group is one such run in FrameIndex order. Cell
  /// frame bases are frames_per_cell-aligned, so on real geometries the run
  /// sits inside one bitmap word and takes the single-mask path.
  void xor_delta_run(std::int32_t base, int count, std::uint64_t d) {
    if (d == 0 || count <= 0) return;
    const int off = base & 63;
    if (off + count <= 64) {
      const std::size_t w = static_cast<std::size_t>(base) >> 6;
      const std::uint64_t m =
          (count == 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << count) - 1)
          << off;
      std::uint64_t fresh = m & ~words_[w];
      words_[w] |= m;
      while (fresh) {
        const int b = std::countr_zero(fresh);
        fresh &= fresh - 1;
        touched_.push_back(static_cast<std::int32_t>((w << 6) + b));
      }
      for (int i = 0; i < count; ++i)
        delta_[static_cast<std::size_t>(base + i)] ^= d;
      return;
    }
    for (int i = 0; i < count; ++i) xor_delta(base + i, d);
  }

  std::uint64_t delta(std::int32_t id) const {
    return delta_[static_cast<std::size_t>(id)];
  }

  /// Ids ever touched since the last clear(), in first-touch order; a
  /// touched id's delta may have XOR-cancelled back to zero.
  const std::vector<std::int32_t>& touched() const { return touched_; }

  // Raw views for the kernel backends (config/kernel.hpp).
  const std::uint64_t* delta_data() const { return delta_.data(); }
  const std::uint64_t* words() const { return words_.data(); }
  int word_count() const { return static_cast<int>(words_.size()); }

 private:
  std::vector<std::uint64_t> delta_;
  std::vector<std::uint64_t> words_;  ///< touched-id bitmap
  std::vector<std::int32_t> touched_;
};

}  // namespace relogic::config
