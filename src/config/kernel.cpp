#include "relogic/config/kernel.hpp"

#include <bit>
#include <cstdlib>
#include <string>

#include "relogic/config/port.hpp"

#ifdef _OPENMP
#include <omp.h>
#endif

namespace relogic::config {

// ---- scalar base implementations -------------------------------------------
// These are the shared defaults: every backend inherits them and overrides
// only what it accelerates, so correctness lives in exactly one place.

void KernelBackend::scan_dirty(const std::uint64_t* words, int nwords,
                               const std::uint64_t* delta,
                               std::vector<std::int32_t>& out) const {
  for (int w = 0; w < nwords; ++w) {
    std::uint64_t bits = words[w];
    while (bits) {
      const int b = std::countr_zero(bits);
      bits &= bits - 1;
      const std::int32_t id = static_cast<std::int32_t>(w * 64 + b);
      if (delta[static_cast<std::size_t>(id)] != 0) out.push_back(id);
    }
  }
}

void KernelBackend::expand_bits(const std::uint64_t* words, int nwords,
                                std::vector<std::int32_t>& out) const {
  for (int w = 0; w < nwords; ++w) {
    std::uint64_t bits = words[w];
    while (bits) {
      const int b = std::countr_zero(bits);
      bits &= bits - 1;
      out.push_back(static_cast<std::int32_t>(w * 64 + b));
    }
  }
}

void KernelBackend::commit_scan(const std::uint64_t* words, int nwords,
                                const std::uint64_t* delta,
                                std::uint64_t* digest,
                                std::uint8_t* ever_touched,
                                std::size_t& tracked,
                                std::vector<std::int32_t>* dirty) const {
  for (int w = 0; w < nwords; ++w) {
    std::uint64_t bits = words[w];
    while (bits) {
      const int b = std::countr_zero(bits);
      bits &= bits - 1;
      const std::int32_t id = static_cast<std::int32_t>(w * 64 + b);
      const std::uint64_t d = delta[static_cast<std::size_t>(id)];
      if (d == 0) continue;  // XOR-cancelled: not dirty, not committed
      digest[static_cast<std::size_t>(id)] ^= d;
      if (!ever_touched[static_cast<std::size_t>(id)]) {
        ever_touched[static_cast<std::size_t>(id)] = 1;
        ++tracked;
      }
      if (dirty) dirty->push_back(id);
    }
  }
}

PriceResult KernelBackend::price(const std::int32_t* ids, int n,
                                 const PriceTables& tables) const {
  PriceResult r;
  r.frames = n;
  int i = 0;
  while (i < n) {
    const std::uint16_t col = tables.column_of[ids[i]];
    int j = i + 1;
    while (j < n && tables.column_of[ids[j]] == col) ++j;
    const int run = j - i;
    SimTime t;
    if (tables.time_memo != nullptr && run <= tables.max_run) {
      if (!tables.memo_valid[run]) {
        tables.time_memo[run] = tables.port->write_time(run, tables.frame_bits);
        tables.memo_valid[run] = 1;
      }
      t = tables.time_memo[run];
    } else {
      t = tables.port->write_time(run, tables.frame_bits);
    }
    r.time += t;
    ++r.columns;
    i = j;
  }
  return r;
}

void KernelBackend::union_ids(const std::int32_t* a, int na,
                              const std::int32_t* b, int nb,
                              std::vector<std::int32_t>& out) const {
  int i = 0, j = 0;
  while (i < na && j < nb) {
    const std::int32_t x = a[i], y = b[j];
    if (x < y) {
      out.push_back(x);
      ++i;
    } else if (y < x) {
      out.push_back(y);
      ++j;
    } else {
      out.push_back(x);
      ++i;
      ++j;
    }
  }
  out.insert(out.end(), a + i, a + na);
  out.insert(out.end(), b + j, b + nb);
}

namespace detail {

// One (col, cell) group: XOR-fold the non-default cells' token difference
// and spread it over the group's frame run. Shared by every backend; the
// parallel backends only change how columns are distributed.
void sweep_group(const CellSweepCtx& ctx, int col, int cell,
                 std::uint64_t* out) {
  const int g = col * ctx.cells_per_clb + cell;
  const int lo = g * ctx.rows;
  const int hi = lo + ctx.rows;
  std::uint64_t d = 0;
  const int w0 = lo >> 6;
  const int w1 = (hi - 1) >> 6;
  for (int w = w0; w <= w1; ++w) {
    std::uint64_t bits = ctx.nondefault[w];
    if (w == w0) bits &= ~std::uint64_t{0} << (lo & 63);
    if (w == w1 && (hi & 63) != 0)
      bits &= (std::uint64_t{1} << (hi & 63)) - 1;
    while (bits) {
      const int b = std::countr_zero(bits);
      bits &= bits - 1;
      const int slot = w * 64 + b;
      d ^= ctx.row_default[slot - lo] ^ ctx.tokens[slot];
    }
  }
  if (d == 0) return;
  const std::int32_t base = ctx.clb_base + col * ctx.frames_per_clb_column +
                            cell * ctx.frames_per_cell;
  for (int f = 0; f < ctx.frames_per_cell; ++f)
    out[static_cast<std::size_t>(base + f)] ^= d;
}

void sweep_column(const CellSweepCtx& ctx, int col, std::uint64_t* out) {
  for (int cell = 0; cell < ctx.cells_per_clb; ++cell)
    sweep_group(ctx, col, cell, out);
}

// Defined in kernel_simd.cpp (runtime-dispatched AVX2/NEON/scalar).
const KernelBackend& simd_kernel();

}  // namespace detail

void KernelBackend::cell_digest_sweep(const CellSweepCtx& ctx,
                                      std::uint64_t* out) const {
  for (int col = 0; col < ctx.clb_cols; ++col)
    detail::sweep_column(ctx, col, out);
}

namespace {

// ---- serial: the reference backend -----------------------------------------
// reference() == true makes ConfigController run the preserved PR 5 scalar
// path end to end; the method implementations above are still used by the
// golden-equivalence suite as the semantic reference for the kernel ops
// themselves.
class SerialKernel final : public KernelBackend {
 public:
  std::string name() const override { return "serial"; }
  bool reference() const override { return true; }
};

// ---- openmp: deterministic column-band parallel sweeps ---------------------
// Only the full-device digest sweep is worth a fork/join: each CLB column's
// frame run is disjoint in the output array, so a static-scheduled parallel
// loop over columns is race-free and byte-identical at any thread count
// (the PR 9 tile-band argument). The per-op kernels — a few hundred frames
// — stay inherited scalar.
class OpenMpKernel final : public KernelBackend {
 public:
  std::string name() const override { return "openmp"; }
  std::string variant() const override {
#ifdef _OPENMP
    return "openmp";
#else
    return "scalar";  // compiled without OpenMP: scalar fallback
#endif
  }

  void cell_digest_sweep(const CellSweepCtx& ctx,
                         std::uint64_t* out) const override {
#ifdef _OPENMP
#pragma omp parallel for schedule(static)
    for (int col = 0; col < ctx.clb_cols; ++col)
      detail::sweep_column(ctx, col, out);
#else
    KernelBackend::cell_digest_sweep(ctx, out);
#endif
  }
};

BackendRegistry<KernelBackend>& build_registry() {
  static BackendRegistry<KernelBackend>* registry = [] {
    static BackendRegistry<KernelBackend> r;
    static const SerialKernel serial;
    static const OpenMpKernel openmp;
    r.add("serial", &serial);
    r.add("openmp", &openmp);
    r.add("simd", &detail::simd_kernel());
    return &r;
  }();
  return *registry;
}

}  // namespace

BackendRegistry<KernelBackend>& kernel_registry() { return build_registry(); }

const KernelBackend* kernel_backend(std::string_view name) {
  return kernel_registry().find(name);
}

const KernelBackend& default_kernel_backend() {
  static const KernelBackend* chosen = [] {
    const char* env = std::getenv("RELOGIC_KERNEL_BACKEND");
    const std::string name = (env != nullptr && *env != '\0') ? env : "simd";
    const KernelBackend* k = kernel_backend(name);
    RELOGIC_CHECK_MSG(k != nullptr,
                      "RELOGIC_KERNEL_BACKEND names unknown kernel backend '" +
                          name + "'");
    return k;
  }();
  return *chosen;
}

std::vector<std::string> kernel_backend_names() {
  return kernel_registry().names();
}

}  // namespace relogic::config
