#include "relogic/reloc/engine.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_set>

#include "relogic/common/logging.hpp"
#include "relogic/reloc/net_surgery.hpp"

namespace relogic::reloc {

using config::ConfigOp;
using fabric::CellPort;
using fabric::DSrc;
using fabric::LogicCellConfig;
using fabric::NetId;
using fabric::NodeId;
using fabric::RegMode;
using fabric::RouteEdge;
using place::CellSite;

std::string RelocationReport::to_string() const {
  return from.to_string() + " -> " + to.to_string() + " [" +
         fabric::to_string(reg) + (gated_clock ? "+ce" : "") + "] " +
         std::to_string(ops) + " ops, " + std::to_string(frames_written) +
         " frames, config " + config_time.to_string() + ", wall " +
         wall_time.to_string();
}

void FunctionRelocationReport::add(const RelocationReport& r) {
  cells.push_back(r);
  config_time += r.config_time;
  wall_time += r.wall_time;
  frames_written += r.frames_written;
}

namespace {
/// Paths planned within one transaction are not committed yet, so later
/// searches for *other* nets must avoid their nodes explicitly.
struct PlanTracker {
  std::map<NetId, std::set<NodeId>> planned;

  place::RouteOptions options_for(NetId net,
                                  const place::RouteOptions& base) const {
    place::RouteOptions o = base;
    for (const auto& [n, nodes] : planned) {
      if (n != net) o.avoid_nodes.insert(nodes.begin(), nodes.end());
    }
    return o;
  }
  void add(NetId net, const std::vector<NodeId>& path) {
    planned[net].insert(path.begin(), path.end());
  }
};
}  // namespace

/// Nets attached around one logic cell, discovered from the fabric itself
/// (the engine needs no netlist knowledge — exactly like the paper's tool,
/// which works from the configuration).
struct RelocationEngine::CellPorts {
  std::array<NetId, fabric::kInPorts> in{};  // kNoNet when pin unused
  NetId out_x = fabric::kNoNet;
  NetId out_q = fabric::kNoNet;
};

RelocationEngine::RelocationEngine(config::ConfigController& controller,
                                   place::Router& router, sim::FabricSim* sim)
    : controller_(&controller), router_(&router), sim_(sim) {}

RelocationEngine::CellPorts RelocationEngine::discover_ports(
    CellSite site) const {
  const auto& graph = fabric().graph();
  CellPorts ports;
  for (int p = 0; p < fabric::kInPorts; ++p) {
    const NodeId pin =
        graph.in_pin(site.clb, site.cell, static_cast<CellPort>(p));
    ports.in[static_cast<std::size_t>(p)] = graph.occupant(pin);
  }
  const NodeId x = graph.out_pin(site.clb, site.cell, false);
  const NodeId q = graph.out_pin(site.clb, site.cell, true);
  const NetId nx = graph.occupant(x);
  const NetId nq = graph.occupant(q);
  if (nx != fabric::kNoNet && fabric().net(nx).has_source(x)) ports.out_x = nx;
  if (nq != fabric::kNoNet && fabric().net(nq).has_source(q)) ports.out_q = nq;
  return ports;
}

CellSite RelocationEngine::find_aux_site(CellSite near,
                                         const RelocOptions& opt) const {
  const auto& geom = fabric().geometry();
  for (int radius = 1; radius <= opt.aux_search_radius; ++radius) {
    for (int dr = -radius; dr <= radius; ++dr) {
      for (int dc = -radius; dc <= radius; ++dc) {
        if (std::max(std::abs(dr), std::abs(dc)) != radius) continue;
        const ClbCoord c{near.clb.row + dr, near.clb.col + dc};
        if (!geom.in_bounds(c)) continue;
        if (opt.route.avoid_columns.contains(c.col)) continue;
        if (fabric().clb_free(c)) return CellSite{c, 0};
      }
    }
  }
  throw ResourceError(
      "no free CLB within radius " + std::to_string(opt.aux_search_radius) +
      " of " + near.clb.to_string() + " for the auxiliary relocation circuit");
}

std::set<int> RelocationEngine::lut_ram_columns() const {
  std::set<int> cols;
  const auto& geom = fabric().geometry();
  for (int r = 0; r < geom.clb_rows; ++r) {
    for (int c = 0; c < geom.clb_cols; ++c) {
      const ClbCoord clb{r, c};
      for (int k = 0; k < geom.cells_per_clb; ++k) {
        const auto& cfg = fabric().cell(clb, k);
        if (cfg.used && cfg.lut_mode == fabric::LutMode::kRam) cols.insert(c);
      }
    }
  }
  return cols;
}

void RelocationEngine::apply(const ConfigOp& op, RelocationReport& report,
                             const RelocOptions& opt,
                             const std::vector<NetId>& touched,
                             bool allow_lut_ram_columns) {
  const auto result = controller_->apply(op, allow_lut_ram_columns);
  ++report.ops;
  report.frames_written += result.frames_written;
  report.columns_touched += result.columns_touched;
  report.config_time += result.time;
  report.wall_time += result.time;
  if (sim_ != nullptr) {
    sim_->run_until(sim_->now() + result.time);
  }
  if (opt.verify) {
    for (NetId n : touched) {
      if (!fabric().net_exists(n)) continue;
      try {
        fabric().validate_net(n);
      } catch (const Error& e) {
        throw IllegalOperationError("after op '" + op.label +
                                    "': " + e.what());
      }
    }
  }
  RELOGIC_LOG(kDebug) << "reloc op '" << op.label << "': "
                      << result.frames_written << " frames, "
                      << result.time.to_string();
}

void RelocationEngine::wait_cycles(int cycles, std::uint8_t domain,
                                   RelocationReport& report,
                                   const RelocOptions& opt) {
  if (cycles <= 0) return;
  if (sim_ != nullptr) {
    const SimTime before = sim_->now();
    sim_->run_cycles(cycles, domain);
    report.wall_time += sim_->now() - before;
  } else {
    report.wall_time += opt.assumed_clock_period * cycles;
  }
}

void RelocationEngine::wait_time(SimTime t, RelocationReport& report) {
  if (t <= SimTime::zero()) return;
  if (sim_ != nullptr) {
    sim_->run_until(sim_->now() + t);
  }
  report.wall_time += t;
}

RelocationReport RelocationEngine::relocate_cell(place::Implementation& impl,
                                                 int cell_index, CellSite dest,
                                                 const RelocOptions& opt) {
  RELOGIC_CHECK(cell_index >= 0 &&
                cell_index < static_cast<int>(impl.sites.size()));
  const CellSite src = impl.sites[static_cast<std::size_t>(cell_index)];
  const LogicCellConfig cfg = fabric().cell(src.clb, src.cell);
  RELOGIC_CHECK_MSG(cfg.used, "source cell is not configured");
  RELOGIC_CHECK_MSG(src != dest, "source and destination are the same site");
  RELOGIC_CHECK_MSG(!fabric().cell(dest.clb, dest.cell).used,
                    "destination cell " + dest.to_string() + " is occupied");
  if (cfg.lut_mode == fabric::LutMode::kRam) {
    if (opt.allow_halt_for_lut_ram) {
      return relocate_lut_ram_cell(impl, cell_index, dest, opt);
    }
    throw IllegalOperationError(
        "cell " + src.to_string() +
        " is a LUT-RAM: on-line relocation is not feasible (paper, Sec. 2); "
        "set allow_halt_for_lut_ram for the stop-the-system alternative");
  }

  RelocationReport report;
  report.from = src;
  report.to = dest;
  report.reg = cfg.reg;
  report.gated_clock = cfg.reg == RegMode::kFF && cfg.uses_ce;
  const bool needs_aux =
      report.gated_clock || cfg.reg == RegMode::kLatch;
  const bool is_async = cfg.reg == RegMode::kLatch;
  const std::uint8_t domain = cfg.clock_domain;

  RelocOptions ro = opt;
  for (int c : lut_ram_columns()) ro.route.avoid_columns.insert(c);

  const CellPorts ports = discover_ports(src);
  const auto& graph = fabric().graph();

  auto in_pin_of = [&](CellSite s, int p) {
    return graph.in_pin(s.clb, s.cell, static_cast<CellPort>(p));
  };

  // ---------------------------------------------------------------- phase 1
  // Copy the internal configuration of the CLB cell into the new location.
  {
    LogicCellConfig replica = cfg;
    if (needs_aux) replica.d_src = DSrc::kBypass;
    ConfigOp op("copy cell configuration to replica " + dest.to_string());
    op.write_cell(dest.clb, dest.cell, replica);
    apply(op, report, ro, {});
  }

  // Auxiliary relocation circuit (gated-clock FFs and latches, Fig. 3).
  CellSite aux{};
  NetId t_q = fabric::kNoNet;    // original Q -> mux data-0
  NetId t_x = fabric::kNoNet;    // replica comb X -> mux data-1
  NetId t_mux = fabric::kNoNet;  // mux out -> replica BX
  NetId t_ctl = fabric::kNoNet;  // ce-control const -> OR input
  NetId t_or = fabric::kNoNet;   // OR out -> replica CE
  const NetId ce_net = ports.in[static_cast<std::size_t>(CellPort::kCE)];

  if (needs_aux) {
    RELOGIC_CHECK_MSG(ce_net != fabric::kNoNet,
                      "gated-clock/latch cell has no CE/gate net");
    aux = find_aux_site(dest, ro);

    // Configure the auxiliary circuit: 2:1 mux, OR gate, and the two
    // control constants driven "through the reconfiguration memory".
    {
      ConfigOp op("configure auxiliary relocation circuit at " +
                  aux.clb.to_string());
      LogicCellConfig mux;
      mux.lut = fabric::luts::kMux21;
      mux.used = true;
      op.write_cell(aux.clb, 0, mux);
      LogicCellConfig org;
      org.lut = fabric::luts::kOr2;
      org.used = true;
      op.write_cell(aux.clb, 1, org);
      op.write_cell(aux.clb, 2, LogicCellConfig::constant(false));  // CE ctl
      op.write_cell(aux.clb, 3, LogicCellConfig::constant(false));  // reloc ctl
      apply(op, report, ro, {});
    }

    // Temporary transfer paths (free routing resources only).
    {
      ConfigOp op("connect signals to the auxiliary relocation circuit");
      const NodeId mux_i0 = in_pin_of(CellSite{aux.clb, 0}, 0);
      const NodeId mux_i1 = in_pin_of(CellSite{aux.clb, 0}, 1);
      const NodeId mux_i2 = in_pin_of(CellSite{aux.clb, 0}, 2);
      const NodeId or_i0 = in_pin_of(CellSite{aux.clb, 1}, 0);
      const NodeId or_i1 = in_pin_of(CellSite{aux.clb, 1}, 1);

      // Original registered output -> mux data-0. Reuse the cell's Q net if
      // it exists; otherwise build a temporary one.
      const NodeId src_q = graph.out_pin(src.clb, src.cell, true);
      if (ports.out_q != fabric::kNoNet) {
        t_q = ports.out_q;
      } else {
        t_q = fabric().create_net("reloc.t_q");
        op.attach_source(t_q, src_q);
      }
      // Replica combinational output -> mux data-1.
      t_x = fabric().create_net("reloc.t_x");
      op.attach_source(t_x, graph.out_pin(dest.clb, dest.cell, false));
      // Mux output -> replica bypass input.
      t_mux = fabric().create_net("reloc.t_mux");
      op.attach_source(t_mux, graph.out_pin(aux.clb, 0, false));
      // CE-control constant -> OR input 1.
      t_ctl = fabric().create_net("reloc.t_ctl");
      op.attach_source(t_ctl, graph.out_pin(aux.clb, 2, false));
      // OR output -> replica CE.
      t_or = fabric().create_net("reloc.t_or");
      op.attach_source(t_or, graph.out_pin(aux.clb, 1, false));

      apply(op, report, ro, {});  // sources first: paths grow from them

      ConfigOp routes("route auxiliary transfer paths");
      PlanTracker plan;
      auto planned_path = [&](NetId n, NodeId to) {
        const auto path = router_->find_path(n, to, plan.options_for(n, ro.route));
        plan.add(n, path);
        return path;
      };
      routes.add_path(t_q, planned_path(t_q, mux_i0));
      routes.add_path(t_x, planned_path(t_x, mux_i1));
      routes.add_path(ce_net, planned_path(ce_net, mux_i2));
      routes.add_path(ce_net, planned_path(ce_net, or_i0));
      routes.add_path(t_ctl, planned_path(t_ctl, or_i1));
      routes.add_path(t_mux, planned_path(t_mux, in_pin_of(dest, 5)));
      routes.add_path(t_or, planned_path(t_or, in_pin_of(dest, 4)));
      apply(routes, report, ro, {t_q, t_x, ce_net, t_ctl, t_mux, t_or});
    }
  }

  // Place CLB input signals in parallel (LUT inputs; CE handled via the
  // auxiliary OR for gated cells and joined later).
  {
    ConfigOp op("place CLB input signals in parallel");
    PlanTracker plan;
    auto add_planned = [&](NetId n, NodeId to) {
      const auto path =
          router_->find_path(n, to, plan.options_for(n, ro.route));
      plan.add(n, path);
      op.add_path(n, path);
    };
    bool any = false;
    for (int p = 0; p < 4; ++p) {
      const NetId n = ports.in[static_cast<std::size_t>(p)];
      if (n == fabric::kNoNet) continue;
      add_planned(n, in_pin_of(dest, p));
      any = true;
    }
    if (!needs_aux && ce_net != fabric::kNoNet) {
      add_planned(ce_net, in_pin_of(dest, 4));
      any = true;
    }
    if (any) {
      std::vector<NetId> nets;
      for (int p = 0; p < 5; ++p) {
        const NetId n = ports.in[static_cast<std::size_t>(p)];
        if (n != fabric::kNoNet) nets.push_back(n);
      }
      apply(op, report, ro, nets);
    }
  }

  // ---------------------------------------------------- state transfer
  if (needs_aux) {
    {
      ConfigOp op("activate relocation and clock enable control");
      op.write_cell(aux.clb, 2, LogicCellConfig::constant(true));
      op.write_cell(aux.clb, 3, LogicCellConfig::constant(true));
      apply(op, report, ro, {});
    }
    // Fig. 4: wait > 2 CLK pulses (until the replica holds the state).
    if (is_async) {
      wait_time(opt.async_settle, report);
    } else {
      wait_cycles(2, domain, report, opt);
    }
    if (sim_ != nullptr && opt.verify) {
      int tries = 0;
      while (sim_->state_of(dest.clb, dest.cell) !=
             sim_->state_of(src.clb, src.cell)) {
        if (++tries > opt.max_state_transfer_cycles) {
          throw IllegalOperationError(
              "state transfer did not converge relocating " +
              src.to_string());
        }
        if (is_async) {
          wait_time(opt.async_settle, report);
        } else {
          wait_cycles(1, domain, report, opt);
        }
      }
      report.state_verified = true;
    }
    {
      ConfigOp op("deactivate clock enable control");
      op.write_cell(aux.clb, 2, LogicCellConfig::constant(false));
      apply(op, report, ro, {});
    }
    // Connect the clock enable inputs of both CLBs: swap the replica's CE
    // pin from the OR output to the true CE net in one transaction.
    {
      // Swap the replica's CE pin from the OR output to the true CE net.
      // Two transactions: the pin must be released before the CE-net path
      // can claim it. Between them the pin holds its last driven value, so
      // no spurious capture can occur.
      const NodeId ce_pin = in_pin_of(dest, 4);
      ConfigOp op_rm("release replica CE pin from the auxiliary OR gate");
      for (const auto& e : prune_for_sink_removal(fabric(), t_or, ce_pin))
        op_rm.remove_edge(t_or, e);
      apply(op_rm, report, ro, {t_or});

      ConfigOp op("connect the clock enable inputs of both CLBs");
      op.add_path(ce_net, router_->find_path(ce_net, ce_pin, ro.route));
      apply(op, report, ro, {ce_net});
    }
    // Disconnect all the auxiliary relocation circuit signals and return
    // the replica storage element to its combinational D path.
    {
      ConfigOp op("disconnect the auxiliary relocation circuit");
      // Temporary nets disappear wholesale (all their edges are transfer
      // paths); taps on *live* nets (CE, original Q) are pruned with full
      // sink-coverage analysis, grouped per net so shared segments and
      // later-routed paths that ride them survive exactly as needed.
      std::map<NetId, std::vector<NodeId>> drops;
      for (const NodeId pin : {in_pin_of(CellSite{aux.clb, 0}, 2),
                               in_pin_of(CellSite{aux.clb, 1}, 0)}) {
        if (graph.occupant(pin) == ce_net) drops[ce_net].push_back(pin);
      }
      if (t_q == ports.out_q && t_q != fabric::kNoNet) {
        const NodeId pin = in_pin_of(CellSite{aux.clb, 0}, 0);
        if (graph.occupant(pin) == t_q) drops[t_q].push_back(pin);
      }
      for (const auto& [net, pins] : drops) {
        for (const auto& e : prune_for_sinks_removal(fabric(), net, pins))
          op.remove_edge(net, e);
      }
      for (const NetId tn :
           {t_q == ports.out_q ? fabric::kNoNet : t_q, t_x, t_mux, t_ctl,
            t_or}) {
        if (tn == fabric::kNoNet || !fabric().net_exists(tn)) continue;
        for (const auto& e : fabric().net(tn).edges) op.remove_edge(tn, e);
      }
      // Detach temp-net sources.
      if (t_q != ports.out_q && t_q != fabric::kNoNet)
        op.detach_source(t_q, graph.out_pin(src.clb, src.cell, true));
      op.detach_source(t_x, graph.out_pin(dest.clb, dest.cell, false));
      op.detach_source(t_mux, graph.out_pin(aux.clb, 0, false));
      op.detach_source(t_ctl, graph.out_pin(aux.clb, 2, false));
      op.detach_source(t_or, graph.out_pin(aux.clb, 1, false));
      // Replica D input back to the LUT path.
      LogicCellConfig normal = cfg;
      normal.d_src = DSrc::kLut;
      op.write_cell(dest.clb, dest.cell, normal);
      apply(op, report, ro, {ce_net});
    }
  } else if (cfg.reg == RegMode::kFF) {
    // Free-running clock: the replica acquires the state through its
    // paralleled inputs within one clock cycle (paper, Sec. 2).
    wait_cycles(2, domain, report, opt);
    if (sim_ != nullptr && opt.verify) {
      int tries = 0;
      while (sim_->state_of(dest.clb, dest.cell) !=
             sim_->state_of(src.clb, src.cell)) {
        if (++tries > opt.max_state_transfer_cycles) {
          throw IllegalOperationError(
              "free-running state acquisition did not converge relocating " +
              src.to_string());
        }
        wait_cycles(1, domain, report, opt);
      }
      report.state_verified = true;
    }
  } else {
    // Combinational: outputs are stable after the inputs parallel + LUT
    // delay; the configuration transaction itself is orders of magnitude
    // longer.
    if (sim_ != nullptr) {
      wait_time(SimTime::ns(50), report);
      // Sample at a quiet instant: surrounding logic keeps switching during
      // the relocation, and original and replica see different path skews,
      // so compare just before the next clock edge when everything settled.
      if (sim_->has_clock(domain)) {
        const SimTime quiet =
            sim_->next_edge(domain, sim_->now() + SimTime::ps(1)) -
            SimTime::ns(1);
        if (quiet > sim_->now()) wait_time(quiet - sim_->now(), report);
      }
      if (opt.verify) {
        if (sim_->comb_of(dest.clb, dest.cell) !=
            sim_->comb_of(src.clb, src.cell)) {
          std::string diag = "replica combinational output differs from "
                             "original relocating " + src.to_string() +
                             " -> " + dest.to_string() + "; port net:sv/dv =";
          for (int p = 0; p < 4; ++p) {
            const NodeId sp = in_pin_of(src, p);
            diag += " " + std::to_string(p) + "=" +
                    std::to_string(graph.occupant(sp)) + ":" +
                    std::to_string(sim_->pin_of(src.clb, src.cell,
                                                static_cast<CellPort>(p))) +
                    "/" +
                    std::to_string(sim_->pin_of(dest.clb, dest.cell,
                                                static_cast<CellPort>(p)));
          }
          diag += " x=" + std::to_string(sim_->comb_of(src.clb, src.cell)) +
                  "/" + std::to_string(sim_->comb_of(dest.clb, dest.cell));
          throw IllegalOperationError(diag);
        }
        report.state_verified = true;
      }
    }
  }

  // ---------------------------------------------------------------- phase 2
  // Place CLB outputs in parallel.
  {
    ConfigOp op("place CLB outputs in parallel");
    PlanTracker plan;
    // Coverage paths may ride existing tree segments; only genuinely new
    // PIPs enter the transaction (riding costs no frames on the device).
    auto add_new_edges = [&](fabric::NetId net,
                             const std::vector<NodeId>& path) {
      const auto& tree = fabric().net(net);
      plan.add(net, path);
      for (std::size_t i = 1; i < path.size(); ++i) {
        const RouteEdge e{path[i - 1], path[i]};
        if (!tree.has_edge(e)) op.add_edge(net, e);
      }
    };
    bool any = false;
    if (ports.out_x != fabric::kNoNet) {
      const NodeId rx = graph.out_pin(dest.clb, dest.cell, false);
      op.attach_source(ports.out_x, rx);
      for (const NodeId s : fabric().net_sinks(ports.out_x)) {
        add_new_edges(ports.out_x,
                      router_->find_path_from(
                          {&rx, 1}, ports.out_x, s,
                          plan.options_for(ports.out_x, ro.route)));
      }
      any = true;
    }
    if (ports.out_q != fabric::kNoNet) {
      const NodeId rq = graph.out_pin(dest.clb, dest.cell, true);
      op.attach_source(ports.out_q, rq);
      for (const NodeId s : fabric().net_sinks(ports.out_q)) {
        add_new_edges(ports.out_q,
                      router_->find_path_from(
                          {&rq, 1}, ports.out_q, s,
                          plan.options_for(ports.out_q, ro.route)));
      }
      any = true;
    }
    if (any) apply(op, report, ro, {});
  }

  // Both CLBs remain in parallel for at least one clock cycle.
  if (is_async) {
    wait_time(opt.async_settle, report);
  } else {
    wait_cycles(std::max(1, opt.output_parallel_cycles), domain, report, opt);
  }

  // Deactivate relocation control.
  if (needs_aux) {
    ConfigOp op("deactivate relocation control");
    op.write_cell(aux.clb, 3, LogicCellConfig::constant(false));
    apply(op, report, ro, {});
  }

  // Disconnect the original CLB outputs (first the outputs...).
  {
    ConfigOp op("disconnect the original CLB outputs");
    bool any = false;
    if (ports.out_x != fabric::kNoNet) {
      const NodeId ox = graph.out_pin(src.clb, src.cell, false);
      for (const auto& e : prune_for_source_removal(fabric(), ports.out_x, ox))
        op.remove_edge(ports.out_x, e);
      op.detach_source(ports.out_x, ox);
      any = true;
    }
    if (ports.out_q != fabric::kNoNet) {
      const NodeId oq = graph.out_pin(src.clb, src.cell, true);
      for (const auto& e : prune_for_source_removal(fabric(), ports.out_q, oq))
        op.remove_edge(ports.out_q, e);
      op.detach_source(ports.out_q, oq);
      any = true;
    }
    if (any) {
      std::vector<NetId> nets;
      if (ports.out_x != fabric::kNoNet) nets.push_back(ports.out_x);
      if (ports.out_q != fabric::kNoNet) nets.push_back(ports.out_q);
      apply(op, report, ro, nets);
    }
  }

  // ...then the inputs; the original cell joins the pool of free resources.
  {
    ConfigOp op("disconnect the original CLB inputs");
    std::vector<NetId> nets;
    // A net may feed several pins of the cell; drop them together so
    // shared branch segments are freed exactly once.
    std::map<NetId, std::vector<NodeId>> drops;
    for (int p = 0; p < fabric::kInPorts; ++p) {
      const NetId n = ports.in[static_cast<std::size_t>(p)];
      if (n == fabric::kNoNet || !fabric().net_exists(n)) continue;
      const NodeId pin = in_pin_of(src, p);
      if (graph.occupant(pin) != n) continue;
      drops[n].push_back(pin);
    }
    for (const auto& [n, pins] : drops) {
      for (const auto& e : prune_for_sinks_removal(fabric(), n, pins))
        op.remove_edge(n, e);
      nets.push_back(n);
    }
    op.clear_cell(src.clb, src.cell);
    if (needs_aux) {
      for (int k = 0; k < 4; ++k) op.clear_cell(aux.clb, k);
    }
    apply(op, report, ro, nets);
  }

  // Destroy now-empty temporary nets (bookkeeping only, no frames).
  for (NetId n : {t_q == ports.out_q ? fabric::kNoNet : t_q, t_x, t_mux,
                  t_ctl, t_or}) {
    if (n != fabric::kNoNet && fabric().net_exists(n)) fabric().destroy_net(n);
  }

  impl.sites[static_cast<std::size_t>(cell_index)] = dest;

  if (sim_ != nullptr && opt.verify) {
    // The relocation must not have broken connectivity of any impl net.
    for (const auto& [sig, n] : impl.signal_nets) {
      if (fabric().net_exists(n)) fabric().validate_net(n);
    }
  }

  RELOGIC_LOG(kInfo) << "relocated " << report.to_string();
  return report;
}

RelocationReport RelocationEngine::relocate_lut_ram_cell(
    place::Implementation& impl, int cell_index, CellSite dest,
    const RelocOptions& opt) {
  const CellSite src = impl.sites[static_cast<std::size_t>(cell_index)];
  const LogicCellConfig cfg = fabric().cell(src.clb, src.cell);
  RELOGIC_CHECK_MSG(cfg.reg == RegMode::kNone,
                    "LUT-RAM with a registered output is not supported");

  RelocationReport report;
  report.from = src;
  report.to = dest;
  report.reg = cfg.reg;
  const std::uint8_t domain = cfg.clock_domain;

  RelocOptions ro = opt;
  for (int c : lut_ram_columns()) ro.route.avoid_columns.insert(c);
  // The halt waives avoidance for the source/destination columns only.
  ro.route.avoid_columns.erase(src.clb.col);
  ro.route.avoid_columns.erase(dest.clb.col);

  const CellPorts ports = discover_ports(src);
  const auto& graph = fabric().graph();
  auto in_pin_of = [&](CellSite s, int p) {
    return graph.in_pin(s.clb, s.cell, static_cast<CellPort>(p));
  };

  // Stop the system (paper, Sec. 2 / [12]): with the domain halted no
  // write to the RAM can race the copy, and downstream FFs cannot capture
  // transients, so the make-before-break choreography collapses to a
  // plain copy + rewire.
  const SimTime halt_start = sim_ != nullptr ? sim_->now() : SimTime::zero();
  if (sim_ != nullptr) sim_->set_clock_running(domain, false);

  {
    ConfigOp op("halted copy of LUT-RAM cell to " + dest.to_string());
    op.write_cell(dest.clb, dest.cell, cfg);
    apply(op, report, ro, {}, /*allow_lut_ram_columns=*/true);
  }
  {
    ConfigOp op("rewire LUT-RAM inputs and outputs");
    PlanTracker plan;
    for (int p = 0; p < 4; ++p) {
      const NetId n = ports.in[static_cast<std::size_t>(p)];
      if (n == fabric::kNoNet) continue;
      const auto path =
          router_->find_path(n, in_pin_of(dest, p), plan.options_for(n, ro.route));
      plan.add(n, path);
      op.add_path(n, path);
    }
    if (ports.out_x != fabric::kNoNet) {
      const NodeId rx = graph.out_pin(dest.clb, dest.cell, false);
      op.attach_source(ports.out_x, rx);
      for (const NodeId s : fabric().net_sinks(ports.out_x)) {
        const auto path = router_->find_path_from(
            {&rx, 1}, ports.out_x, s, plan.options_for(ports.out_x, ro.route));
        plan.add(ports.out_x, path);
        const auto& tree = fabric().net(ports.out_x);
        for (std::size_t i = 1; i < path.size(); ++i) {
          const RouteEdge e{path[i - 1], path[i]};
          if (!tree.has_edge(e)) op.add_edge(ports.out_x, e);
        }
      }
    }
    apply(op, report, ro, {}, true);
  }
  {
    ConfigOp op("disconnect and free the original LUT-RAM cell");
    if (ports.out_x != fabric::kNoNet) {
      const NodeId ox = graph.out_pin(src.clb, src.cell, false);
      for (const auto& e : prune_for_source_removal(fabric(), ports.out_x, ox))
        op.remove_edge(ports.out_x, e);
      op.detach_source(ports.out_x, ox);
    }
    std::map<NetId, std::vector<NodeId>> drops;
    for (int p = 0; p < fabric::kInPorts; ++p) {
      const NetId n = ports.in[static_cast<std::size_t>(p)];
      if (n == fabric::kNoNet || !fabric().net_exists(n)) continue;
      const NodeId pin = in_pin_of(src, p);
      if (graph.occupant(pin) == n) drops[n].push_back(pin);
    }
    for (const auto& [n, pins] : drops) {
      for (const auto& e : prune_for_sinks_removal(fabric(), n, pins))
        op.remove_edge(n, e);
    }
    op.clear_cell(src.clb, src.cell);
    apply(op, report, ro, {}, true);
  }

  if (sim_ != nullptr) {
    // Let the last configuration writes land before releasing the clock.
    sim_->run_until(sim_->now() + SimTime::ns(10));
    sim_->set_clock_running(domain, true);
    report.halted = sim_->now() - halt_start;
  } else {
    report.halted = report.config_time;
  }
  report.wall_time = std::max(report.wall_time, report.halted);

  impl.sites[static_cast<std::size_t>(cell_index)] = dest;
  RELOGIC_LOG(kInfo) << "halt-relocated LUT-RAM " << report.to_string()
                     << " (domain halted " << report.halted.to_string() << ")";
  return report;
}

FunctionRelocationReport RelocationEngine::relocate_function(
    place::Implementation& impl, ClbRect dest_region,
    const RelocOptions& opt) {
  const auto& geom = fabric().geometry();
  RELOGIC_CHECK_MSG(geom.full_rect().contains(dest_region),
                    "destination region exceeds the device");

  // Free cell slots in the destination region, row-major.
  std::vector<CellSite> slots;
  for (int r = dest_region.row; r < dest_region.row_end(); ++r) {
    for (int c = dest_region.col; c < dest_region.col_end(); ++c) {
      const ClbCoord clb{r, c};
      for (int k = 0; k < geom.cells_per_clb; ++k) {
        if (!fabric().cell(clb, k).used) slots.push_back(CellSite{clb, k});
      }
    }
  }
  if (static_cast<int>(slots.size()) < impl.cell_count()) {
    throw ResourceError("destination region " + dest_region.to_string() +
                        " lacks free cells for " + impl.name);
  }

  FunctionRelocationReport out;
  for (int i = 0; i < impl.cell_count(); ++i) {
    out.add(relocate_cell(impl, i, slots[static_cast<std::size_t>(i)], opt));
  }
  impl.region = dest_region;
  return out;
}

RelocationEngine::RouteOptimizationReport
RelocationEngine::optimize_function_routing(place::Implementation& impl,
                                            const RelocOptions& opt,
                                            SimTime min_gain) {
  RelocOptions ro = opt;
  for (int c : lut_ram_columns()) ro.route.avoid_columns.insert(c);

  // Delay model mirror of the router's edge costs.
  const fabric::DelayModel dm;  // router uses the same defaults
  RouteOptimizationReport out;

  for (const auto& [sig, net] : impl.signal_nets) {
    if (!fabric().net_exists(net)) continue;
    const auto& tree = fabric().net(net);
    if (tree.sources.empty()) continue;

    const auto delays = fabric().node_delays(net, dm);
    for (const NodeId sink : fabric().net_sinks(net)) {
      ++out.sinks_considered;
      auto cur_it = delays.find(sink);
      if (cur_it == delays.end()) continue;
      const SimTime current = cur_it->second;
      out.worst_delay_before = std::max(out.worst_delay_before, current);

      // Price a fresh path that may not ride the sink's current branch.
      const auto old_branch = prune_for_sink_removal(fabric(), net, sink);
      if (old_branch.empty()) {
        out.worst_delay_after = std::max(out.worst_delay_after, current);
        continue;  // branch shared with other sinks: leave it alone
      }
      RelocOptions probe = ro;
      for (const auto& e : old_branch) {
        if (e.to != sink) probe.route.avoid_nodes.insert(e.to);
      }
      std::vector<NodeId> path;
      try {
        path = router_->find_path(net, sink, probe.route);
      } catch (const ResourceError&) {
        out.worst_delay_after = std::max(out.worst_delay_after, current);
        continue;  // no alternative: keep the current branch
      }
      auto attach = delays.find(path.front());
      const SimTime base =
          attach == delays.end() ? SimTime::zero() : attach->second;
      const SimTime candidate =
          base + dm.path_delay(fabric().graph().skeleton(), path);
      if (candidate + min_gain >= current) {
        out.worst_delay_after = std::max(out.worst_delay_after, current);
        continue;  // not worth a reconfiguration
      }

      const auto report = relocate_route(net, sink, ro);
      ++out.sinks_rerouted;
      out.config_time += report.config_time;
      out.frames_written += report.frames_written;
      const auto after = fabric().node_delays(net, dm);
      auto it = after.find(sink);
      if (it != after.end()) {
        out.worst_delay_after = std::max(out.worst_delay_after, it->second);
      }
    }
  }
  if (out.sinks_rerouted == 0) out.worst_delay_after = out.worst_delay_before;
  RELOGIC_LOG(kInfo) << "routing optimisation of " << impl.name << ": "
                     << out.sinks_rerouted << "/" << out.sinks_considered
                     << " sinks rerouted, worst delay "
                     << out.worst_delay_before.to_string() << " -> "
                     << out.worst_delay_after.to_string();
  return out;
}

RelocationReport RelocationEngine::relocate_route(NetId net, NodeId sink,
                                                  const RelocOptions& opt) {
  RelocOptions ro = opt;
  for (int c : lut_ram_columns()) ro.route.avoid_columns.insert(c);

  RelocationReport report;
  const auto& graph = fabric().graph();
  const auto info = graph.info(sink);
  report.from = CellSite{info.tile, info.a};
  report.to = report.from;

  // The branch currently serving the sink.
  const auto old_branch = prune_for_sink_removal(fabric(), net, sink);
  RELOGIC_CHECK_MSG(!old_branch.empty(),
                    "sink has no exclusive branch to relocate");

  // Establish the alternative (replica) path first, avoiding the original
  // branch so the two are truly parallel (Fig. 5).
  for (const auto& e : old_branch) {
    if (e.to != sink) ro.route.avoid_nodes.insert(e.to);
  }
  {
    ConfigOp op("duplicate interconnection (replica path)");
    op.add_path(net, router_->find_path(net, sink, ro.route));
    apply(op, report, ro, {net});
  }

  // During paralleling the observable delay is the longer of the two paths
  // (Fig. 6) — the simulator models exactly that. One clock cycle margin:
  wait_time(SimTime::ns(100), report);

  {
    ConfigOp op("disconnect original interconnection");
    for (const auto& e : old_branch) {
      if (fabric().net(net).has_edge(e)) op.remove_edge(net, e);
    }
    apply(op, report, ro, {net});
  }
  return report;
}

}  // namespace relogic::reloc
