// Calibration of the relocation cost model from the frame-accurate plane.
//
// ROADMAP leftover: the reloc::CostParams column counts (comb/ff/gated/
// latch_column_writes) were measured once in the column regime on the
// XCV200 and hard-coded as defaults. This helper re-derives them from the
// frame-accurate configuration plane: it drives the real RelocationEngine
// through canonical minimal fixtures on a scratch device and reads the
// per-case column-transaction counts off the controller's telemetry
// (RelocationReport::columns_touched), so the numbers track the engine's
// actual op sequences — two-phase copy for combinational cells, the state
// acquisition wait for free-running FFs, the Fig. 3/4 auxiliary relocation
// circuit for gated-clock FFs and latches — instead of a historical
// measurement.
//
// The CostParams defaults intentionally stay at the legacy measurement:
// the fig4/fig5/fig6 reproduction benches and the schedulers price with
// the defaults and their outputs are pinned. The regression test
// (tests/calibration_test.cpp) pins the calibrated values instead, so an
// engine or router change that shifts the real column footprint fails the
// test rather than silently skewing the cost model.
#pragma once

#include "relogic/config/port.hpp"
#include "relogic/fabric/device.hpp"
#include "relogic/reloc/cost.hpp"

namespace relogic::reloc {

/// Per-case column-write counts measured from the frame-accurate plane.
struct CalibratedColumns {
  int comb_column_writes = 0;
  int ff_column_writes = 0;
  int gated_column_writes = 0;
  int latch_column_writes = 0;

  /// `base` with the four measured column counts substituted in (wait
  /// cycles, clock period and the frame-regime knobs are left untouched).
  CostParams apply_to(CostParams base = {}) const;
};

/// Measures the four per-case column counts on `geom` in the column-write
/// regime (the regime the counts price): implements a canonical minimal
/// fixture per storage case, relocates each matching cell one CLB below
/// its region through the real engine, and averages the columns each
/// relocation's transactions touched. Deterministic — fixed fixtures,
/// fixed destinations, and the kernel backends' byte-identity contract
/// make the result a pure function of the geometry and the engine code.
/// `geom` must be large enough to host the fixtures clear of the border
/// (any family preset works; the paper's device is the XCV200).
CalibratedColumns calibrate_cost_params(const fabric::DeviceGeometry& geom,
                                        const config::ConfigPort& port);

}  // namespace relogic::reloc
