// Net surgery: computing the minimal edge sets to graft and prune when a
// net's endpoints move.
//
// During a relocation a net temporarily carries both the original and the
// replica endpoint (paralleled paths / paralleled sources, Figs. 2 and 5).
// When the original is finally disconnected, exactly the edges that served
// only the original must be removed — never an edge still carrying signal
// to a surviving sink. These helpers compute those sets; they never touch
// the fabric themselves (the relocation engine folds the results into
// ConfigOps so the changes are charged to the configuration port).
#pragma once

#include <vector>

#include "relogic/fabric/fabric.hpp"

namespace relogic::reloc {

/// Edges no longer needed once `dropped_sink` stops being a sink of `net`
/// (every remaining sink stays reachable from every source).
std::vector<fabric::RouteEdge> prune_for_sink_removal(
    const fabric::Fabric& fabric, fabric::NetId net,
    fabric::NodeId dropped_sink);

/// Grouped form: edges freed when several sinks of the same net are
/// dropped together. Must be used when branches may share segments —
/// per-sink pruning would either leak the shared segment or, combined with
/// blind edge removal, orphan a surviving branch.
std::vector<fabric::RouteEdge> prune_for_sinks_removal(
    const fabric::Fabric& fabric, fabric::NetId net,
    const std::vector<fabric::NodeId>& dropped_sinks);

/// Edges no longer needed once `dropped_source` stops driving `net`.
std::vector<fabric::RouteEdge> prune_for_source_removal(
    const fabric::Fabric& fabric, fabric::NetId net,
    fabric::NodeId dropped_source);

/// Edges of `net` that are kept when only `sources_keep` drive it and only
/// `sinks_keep` consume it: an edge survives iff it lies on some
/// source-to-sink path. Building block of the two functions above.
std::vector<fabric::RouteEdge> needed_edges(
    const fabric::Fabric& fabric, fabric::NetId net,
    const std::vector<fabric::NodeId>& sources_keep,
    const std::vector<fabric::NodeId>& sinks_keep);

}  // namespace relogic::reloc
