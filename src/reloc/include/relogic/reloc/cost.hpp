// Analytical relocation cost model.
//
// The on-line scheduler and the defragmentation planner need relocation
// times without driving the full engine + simulator. This model prices a
// cell relocation from the configuration-port timing and the op/column
// structure of the engine's procedures:
//
//   time(case) = sum over ops of write_time(frames_per_txn * columns)
//              + mandated clock-cycle waits,
//
// where frames_per_txn depends on the write granularity the priced
// controller runs (config::WriteGranularity): whole columns in the
// JBits-era kColumn regime, the op's mapped frames under kFrame, and the
// dirty subset under kDirtyFrame. Column counts per op default to values
// measured from the engine on the XCV200 (see bench_fig4_relocation_time,
// which prints measured and modelled values side by side); the frame-regime
// parameters are modelled, not re-measured per circuit class (a ROADMAP
// open item) — in particular dirty_write_fraction defaults to the value
// the engine actually exhibits on relocation workloads: 1.0, because the
// relocation op stream contains no redundant writes (bench_fig4 measures
// zero dirty-skipped frames there).
#pragma once

#include "relogic/common/time.hpp"
#include "relogic/config/granularity.hpp"
#include "relogic/config/port.hpp"
#include "relogic/fabric/cell.hpp"
#include "relogic/fabric/device.hpp"

namespace relogic::reloc {

struct CostParams {
  /// Column-write transactions per relocation, by case. JBits-era flows
  /// rewrite whole columns; each touched column is one transaction.
  int comb_column_writes = 8;
  int ff_column_writes = 9;
  int gated_column_writes = 17;
  int latch_column_writes = 17;
  /// Clock cycles of mandated waiting (state transfer + output parallel).
  int comb_wait_cycles = 2;
  int ff_wait_cycles = 3;
  int gated_wait_cycles = 4;
  SimTime clock_period = SimTime::ns(100);
  /// kFrame regime: frames written per column transaction — the cell's
  /// frame group plus the routing frames a relocation op typically maps to,
  /// instead of the whole column.
  int frame_granular_frames_per_txn = 12;
  /// kDirtyFrame regime: fraction of the frame-granular frames whose bytes
  /// actually change. Measured 1.0 on the engine's relocation op stream
  /// (no redundant writes — bench_fig4 records zero dirty-skipped frames),
  /// so dirty prices identically to kFrame by default; lower it to model
  /// op streams with redundant rewrites (repeated re-configuration,
  /// batcher-merged self-cancelling sequences).
  double dirty_write_fraction = 1.0;
};

class RelocationCostModel {
 public:
  RelocationCostModel(
      const fabric::DeviceGeometry& geom, const config::ConfigPort& port,
      CostParams params = {},
      config::WriteGranularity granularity = config::WriteGranularity::kColumn)
      : geom_(&geom), port_(&port), params_(params), granularity_(granularity) {}

  /// Time to relocate one logic cell of the given storage kind.
  SimTime cell_time(fabric::RegMode reg, bool gated_clock) const;

  /// Time to relocate `cells` cells (a whole function), sequential on the
  /// single configuration port.
  SimTime function_time(int cells, fabric::RegMode reg,
                        bool gated_clock) const;

  /// Time to write a fresh function of `cells` cells into free area
  /// (initial partial configuration, roughly one column transaction per CLB
  /// column the function spans plus its routing columns).
  SimTime configure_time(int cells) const;

  const CostParams& params() const { return params_; }
  config::WriteGranularity granularity() const { return granularity_; }

 private:
  /// One port transaction per column; frames per transaction depend on the
  /// granularity regime.
  SimTime transaction_time(int columns) const;
  int frames_per_transaction() const;

  const fabric::DeviceGeometry* geom_;
  const config::ConfigPort* port_;
  CostParams params_;
  config::WriteGranularity granularity_;
};

}  // namespace relogic::reloc
