// Analytical relocation cost model.
//
// The on-line scheduler and the defragmentation planner need relocation
// times without driving the full engine + simulator. This model prices a
// cell relocation from the configuration-port timing and the op/column
// structure of the engine's procedures:
//
//   time(case) = sum over ops of write_time(columns_touched(op) * frames)
//              + mandated clock-cycle waits.
//
// Column counts per op default to values measured from the engine on the
// XCV200 (see bench_fig4_relocation_time, which prints both measured and
// modelled values side by side).
#pragma once

#include "relogic/common/time.hpp"
#include "relogic/config/port.hpp"
#include "relogic/fabric/cell.hpp"
#include "relogic/fabric/device.hpp"

namespace relogic::reloc {

struct CostParams {
  /// Column-write transactions per relocation, by case. JBits-era flows
  /// rewrite whole columns; each touched column is one transaction.
  int comb_column_writes = 8;
  int ff_column_writes = 9;
  int gated_column_writes = 17;
  int latch_column_writes = 17;
  /// Clock cycles of mandated waiting (state transfer + output parallel).
  int comb_wait_cycles = 2;
  int ff_wait_cycles = 3;
  int gated_wait_cycles = 4;
  SimTime clock_period = SimTime::ns(100);
};

class RelocationCostModel {
 public:
  RelocationCostModel(const fabric::DeviceGeometry& geom,
                      const config::ConfigPort& port, CostParams params = {})
      : geom_(&geom), port_(&port), params_(params) {}

  /// Time to relocate one logic cell of the given storage kind.
  SimTime cell_time(fabric::RegMode reg, bool gated_clock) const;

  /// Time to relocate `cells` cells (a whole function), sequential on the
  /// single configuration port.
  SimTime function_time(int cells, fabric::RegMode reg,
                        bool gated_clock) const;

  /// Time to write a fresh function of `cells` cells into free area
  /// (initial partial configuration, roughly one column write per CLB
  /// column the function spans plus its routing columns).
  SimTime configure_time(int cells) const;

  const CostParams& params() const { return params_; }

 private:
  SimTime column_write_time(int columns) const;

  const fabric::DeviceGeometry* geom_;
  const config::ConfigPort* port_;
  CostParams params_;
};

}  // namespace relogic::reloc
