// RelocationEngine — the paper's primary contribution.
//
// Implements the two-phase dynamic relocation procedure (Fig. 2), the
// auxiliary-relocation-circuit state transfer for gated-clock and
// asynchronous circuits (Figs. 3 and 4), and routing relocation (Fig. 5),
// entirely as sequences of partial-reconfiguration transactions applied
// through the ConfigController while the circuit keeps running in the
// FabricSim.
//
// Invariants the engine maintains (and, with verify enabled, checks):
//  * make-before-break: a signal is never broken before its replica path
//    carries it;
//  * the replica's outputs are connected only after they are functionally
//    identical to the original's (state transferred, logic stable);
//  * original and replica stay paralleled for at least one user clock
//    cycle before the original is disconnected (outputs first, then
//    inputs);
//  * no configuration write ever touches a column holding a live LUT-RAM
//    (enforced by ConfigController; routing avoids those columns too).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "relogic/config/controller.hpp"
#include "relogic/place/implement.hpp"
#include "relogic/place/router.hpp"
#include "relogic/sim/simulator.hpp"

namespace relogic::reloc {

struct RelocOptions {
  /// Search radius (in CLBs) for the free CLB hosting the auxiliary
  /// relocation circuit.
  int aux_search_radius = 5;
  /// Bound on the Fig. 4 "> 2 CLK pulse" state-transfer wait.
  int max_state_transfer_cycles = 64;
  /// Cycles original and replica outputs stay paralleled (paper: >= 1).
  int output_parallel_cycles = 1;
  /// Run simulator-based checks (state equality before output paralleling,
  /// net validation after each transaction).
  bool verify = true;
  /// Extra routing constraints (LUT-RAM columns are added automatically).
  place::RouteOptions route;
  /// Settle time used instead of clock waits for asynchronous circuits.
  SimTime async_settle = SimTime::ns(300);
  /// Clock period assumed for wait accounting when no simulator is
  /// attached (planning/cost mode).
  SimTime assumed_clock_period = SimTime::ns(100);
  /// LUT-RAMs cannot be relocated on-line (paper, Sec. 2). When true the
  /// engine falls back to the documented stop-the-system alternative:
  /// halt the cell's clock domain, copy content + rewire, resume. The
  /// report's `halted` field carries the downtime.
  bool allow_halt_for_lut_ram = false;
};

/// Outcome of one relocation.
struct RelocationReport {
  place::CellSite from;
  place::CellSite to;
  fabric::RegMode reg = fabric::RegMode::kNone;
  bool gated_clock = false;
  int ops = 0;
  int frames_written = 0;
  int columns_touched = 0;
  /// Configuration-port busy time (what the paper's 22.6 ms measures).
  SimTime config_time = SimTime::zero();
  /// Total wall-clock time including the mandated clock-cycle waits.
  SimTime wall_time = SimTime::zero();
  /// True if the engine verified state equality before output paralleling.
  bool state_verified = false;
  /// Clock-domain downtime (non-zero only for halt-based LUT-RAM moves).
  SimTime halted = SimTime::zero();

  std::string to_string() const;
};

/// Aggregate over a multi-cell (function) relocation.
struct FunctionRelocationReport {
  std::vector<RelocationReport> cells;
  SimTime config_time = SimTime::zero();
  SimTime wall_time = SimTime::zero();
  int frames_written = 0;

  void add(const RelocationReport& r);
};

class RelocationEngine {
 public:
  /// `sim` may be null: the engine then plans and applies configuration
  /// without simulation-time interleaving (used by area-manager planning).
  RelocationEngine(config::ConfigController& controller, place::Router& router,
                   sim::FabricSim* sim);

  /// Relocates one logic cell of an implementation to a free site.
  /// Dispatches on the cell's storage mode: purely combinational cells use
  /// the plain two-phase procedure; free-running-clock FFs add the
  /// state-acquisition wait; gated-clock FFs and latches use the auxiliary
  /// relocation circuit.
  RelocationReport relocate_cell(place::Implementation& impl, int cell_index,
                                 place::CellSite dest,
                                 const RelocOptions& opt = {});

  /// Relocates every cell of an implementation into `dest_region`
  /// (cell-by-cell, the staged procedure of Sec. 3). Handles overlapping
  /// source/destination regions via scratch sites.
  FunctionRelocationReport relocate_function(place::Implementation& impl,
                                             ClbRect dest_region,
                                             const RelocOptions& opt = {});

  /// Routing relocation (Fig. 5): moves one routed sink of a net onto a
  /// fresh path avoiding `avoid` nodes/columns, parallel-then-disconnect.
  RelocationReport relocate_route(fabric::NetId net, fabric::NodeId sink,
                                  const RelocOptions& opt = {});

  /// Sec. 3: rearrangement of the existing interconnections after CLB
  /// relocations — reroutes every sink whose fresh shortest path would be
  /// at least `min_gain` faster than its current (possibly
  /// relocation-stretched) path, each via the parallel-then-disconnect
  /// procedure. Running functions are never disturbed.
  struct RouteOptimizationReport {
    int sinks_considered = 0;
    int sinks_rerouted = 0;
    SimTime worst_delay_before = SimTime::zero();
    SimTime worst_delay_after = SimTime::zero();
    SimTime config_time = SimTime::zero();
    int frames_written = 0;
  };
  RouteOptimizationReport optimize_function_routing(
      place::Implementation& impl, const RelocOptions& opt = {},
      SimTime min_gain = SimTime::ps(500));

  config::ConfigController& controller() { return *controller_; }

 private:
  struct CellPorts;  // resolved nets around a cell

  RelocationReport relocate_lut_ram_cell(place::Implementation& impl,
                                         int cell_index, place::CellSite dest,
                                         const RelocOptions& opt);
  CellPorts discover_ports(place::CellSite site) const;
  place::CellSite find_aux_site(place::CellSite near,
                                const RelocOptions& opt) const;
  void apply(const config::ConfigOp& op, RelocationReport& report,
             const RelocOptions& opt,
             const std::vector<fabric::NetId>& touched,
             bool allow_lut_ram_columns = false);
  void wait_cycles(int cycles, std::uint8_t domain, RelocationReport& report,
                   const RelocOptions& opt);
  void wait_time(SimTime t, RelocationReport& report);
  std::set<int> lut_ram_columns() const;

  fabric::Fabric& fabric() { return controller_->fabric(); }
  const fabric::Fabric& fabric() const { return controller_->fabric(); }

  config::ConfigController* controller_;
  place::Router* router_;
  sim::FabricSim* sim_;
};

}  // namespace relogic::reloc
