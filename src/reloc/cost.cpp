#include "relogic/reloc/cost.hpp"

#include <cmath>

namespace relogic::reloc {

SimTime RelocationCostModel::column_write_time(int columns) const {
  SimTime t = SimTime::zero();
  for (int i = 0; i < columns; ++i) {
    t += port_->write_time(geom_->frames_per_clb_column,
                           geom_->frame_length_bits());
  }
  return t;
}

SimTime RelocationCostModel::cell_time(fabric::RegMode reg,
                                       bool gated_clock) const {
  int columns = 0;
  int waits = 0;
  switch (reg) {
    case fabric::RegMode::kNone:
      columns = params_.comb_column_writes;
      waits = params_.comb_wait_cycles;
      break;
    case fabric::RegMode::kFF:
      columns = gated_clock ? params_.gated_column_writes
                            : params_.ff_column_writes;
      waits = gated_clock ? params_.gated_wait_cycles : params_.ff_wait_cycles;
      break;
    case fabric::RegMode::kLatch:
      columns = params_.latch_column_writes;
      waits = params_.gated_wait_cycles;
      break;
  }
  return column_write_time(columns) + params_.clock_period * waits;
}

SimTime RelocationCostModel::function_time(int cells, fabric::RegMode reg,
                                           bool gated_clock) const {
  if (cells <= 0) return SimTime::zero();
  return cell_time(reg, gated_clock) * cells;
}

SimTime RelocationCostModel::configure_time(int cells) const {
  if (cells <= 0) return SimTime::zero();
  const int clbs = (cells + geom_->cells_per_clb - 1) / geom_->cells_per_clb;
  const int side =
      static_cast<int>(std::ceil(std::sqrt(static_cast<double>(clbs))));
  // The function spans ~side columns; add the same again for routing.
  return column_write_time(2 * side);
}

}  // namespace relogic::reloc
