#include "relogic/reloc/cost.hpp"

#include <algorithm>
#include <cmath>

namespace relogic::reloc {

int RelocationCostModel::frames_per_transaction() const {
  switch (granularity_) {
    case config::WriteGranularity::kColumn:
      return geom_->frames_per_clb_column;
    case config::WriteGranularity::kFrame:
      return std::min(params_.frame_granular_frames_per_txn,
                      geom_->frames_per_clb_column);
    case config::WriteGranularity::kDirtyFrame:
      return std::max(
          1, static_cast<int>(std::llround(
                 std::min(params_.frame_granular_frames_per_txn,
                          geom_->frames_per_clb_column) *
                 params_.dirty_write_fraction)));
  }
  return geom_->frames_per_clb_column;
}

SimTime RelocationCostModel::transaction_time(int columns) const {
  const int frames = frames_per_transaction();
  SimTime t = SimTime::zero();
  for (int i = 0; i < columns; ++i) {
    t += port_->write_time(frames, geom_->frame_length_bits());
  }
  return t;
}

SimTime RelocationCostModel::cell_time(fabric::RegMode reg,
                                       bool gated_clock) const {
  int columns = 0;
  int waits = 0;
  switch (reg) {
    case fabric::RegMode::kNone:
      columns = params_.comb_column_writes;
      waits = params_.comb_wait_cycles;
      break;
    case fabric::RegMode::kFF:
      columns = gated_clock ? params_.gated_column_writes
                            : params_.ff_column_writes;
      waits = gated_clock ? params_.gated_wait_cycles : params_.ff_wait_cycles;
      break;
    case fabric::RegMode::kLatch:
      columns = params_.latch_column_writes;
      waits = params_.gated_wait_cycles;
      break;
  }
  return transaction_time(columns) + params_.clock_period * waits;
}

SimTime RelocationCostModel::function_time(int cells, fabric::RegMode reg,
                                           bool gated_clock) const {
  if (cells <= 0) return SimTime::zero();
  return cell_time(reg, gated_clock) * cells;
}

SimTime RelocationCostModel::configure_time(int cells) const {
  if (cells <= 0) return SimTime::zero();
  const int clbs = (cells + geom_->cells_per_clb - 1) / geom_->cells_per_clb;
  const int side =
      static_cast<int>(std::ceil(std::sqrt(static_cast<double>(clbs))));
  // The function spans ~side columns; add the same again for routing.
  return transaction_time(2 * side);
}

}  // namespace relogic::reloc
