#include "relogic/reloc/calibrate.hpp"

#include "relogic/common/error.hpp"
#include "relogic/config/controller.hpp"
#include "relogic/netlist/benchmarks.hpp"
#include "relogic/place/implement.hpp"
#include "relogic/reloc/engine.hpp"

namespace relogic::reloc {
namespace {

/// Average columns_touched over every cell of `nl` whose storage mode is
/// `want`, each relocated one CLB below its region on a fresh device (a
/// relocation mutates the implementation, so each sample gets its own
/// fabric — that also keeps the samples order-independent).
int measure_case(const fabric::DeviceGeometry& geom,
                 const config::ConfigPort& port, const netlist::Netlist& nl,
                 fabric::RegMode want) {
  const auto mapped = netlist::map_netlist(nl);
  long long sum = 0;
  int samples = 0;
  for (int i = 0;; ++i) {
    fabric::Fabric fab(geom);
    const fabric::DelayModel dm;
    config::ConfigController ctl(fab, port,
                                 config::WriteGranularity::kColumn);
    place::Implementer implementer(fab, dm);
    place::Router router(fab, dm);
    RelocationEngine engine(ctl, router, /*sim=*/nullptr);
    place::ImplementOptions opts;
    opts.region =
        place::suggest_region(mapped, ClbCoord{8, 8}, fab.geometry());
    auto impl = implementer.implement(mapped, opts);
    if (i >= impl.cell_count()) break;
    const place::CellSite site = impl.sites[i];
    if (fab.cell(site.clb, site.cell).reg != want) continue;
    const place::CellSite dest{
        ClbCoord{impl.region.row + impl.region.height + 1, site.clb.col},
        site.cell};
    const RelocationReport rep = engine.relocate_cell(impl, i, dest);
    sum += rep.columns_touched;
    ++samples;
  }
  RELOGIC_CHECK_MSG(samples > 0, "calibration fixture produced no cell of "
                                 "the requested storage mode");
  return static_cast<int>((sum + samples / 2) / samples);
}

}  // namespace

CostParams CalibratedColumns::apply_to(CostParams base) const {
  base.comb_column_writes = comb_column_writes;
  base.ff_column_writes = ff_column_writes;
  base.gated_column_writes = gated_column_writes;
  base.latch_column_writes = latch_column_writes;
  return base;
}

CalibratedColumns calibrate_cost_params(const fabric::DeviceGeometry& geom,
                                        const config::ConfigPort& port) {
  using netlist::bench::ClockingStyle;
  CalibratedColumns c;
  // Canonical fixtures: small circuits with minimal connectivity so the
  // measurement reflects the procedure's intrinsic footprint (replica
  // cell, its nets, the aux circuit) rather than a particular workload's
  // fan-out. One fixture per storage case of Sec. 2.
  c.comb_column_writes = measure_case(
      geom, port, netlist::bench::random_logic("calib_comb", 6, 2, 1, 9),
      fabric::RegMode::kNone);
  c.ff_column_writes = measure_case(
      geom, port,
      netlist::bench::shift_register(4, ClockingStyle::kFreeRunning),
      fabric::RegMode::kFF);
  c.gated_column_writes = measure_case(
      geom, port,
      netlist::bench::shift_register(4, ClockingStyle::kGatedClock),
      fabric::RegMode::kFF);
  c.latch_column_writes = measure_case(
      geom, port, netlist::bench::async_pipeline(4), fabric::RegMode::kLatch);
  return c;
}

}  // namespace relogic::reloc
