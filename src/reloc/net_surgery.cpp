#include "relogic/reloc/net_surgery.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace relogic::reloc {

using fabric::NetId;
using fabric::NodeId;
using fabric::RouteEdge;

std::vector<RouteEdge> needed_edges(const fabric::Fabric& fabric, NetId net,
                                    const std::vector<NodeId>& sources_keep,
                                    const std::vector<NodeId>& sinks_keep) {
  const auto& tree = fabric.net(net);

  std::unordered_map<NodeId, std::vector<NodeId>> fwd;
  std::unordered_map<NodeId, std::vector<NodeId>> rev;
  for (const auto& e : tree.edges) {
    fwd[e.from].push_back(e.to);
    rev[e.to].push_back(e.from);
  }

  auto reach = [](const std::unordered_map<NodeId, std::vector<NodeId>>& adj,
                  const std::vector<NodeId>& seeds) {
    std::unordered_set<NodeId> seen(seeds.begin(), seeds.end());
    std::vector<NodeId> stack(seeds.begin(), seeds.end());
    while (!stack.empty()) {
      const NodeId n = stack.back();
      stack.pop_back();
      auto it = adj.find(n);
      if (it == adj.end()) continue;
      for (NodeId next : it->second) {
        if (seen.insert(next).second) stack.push_back(next);
      }
    }
    return seen;
  };

  const auto from_sources = reach(fwd, sources_keep);
  const auto to_sinks = reach(rev, sinks_keep);

  std::vector<RouteEdge> kept;
  kept.reserve(tree.edges.size());
  for (const auto& e : tree.edges) {
    if (from_sources.contains(e.from) && to_sinks.contains(e.to)) {
      kept.push_back(e);
    }
  }
  return kept;
}

namespace {
std::vector<RouteEdge> complement(const fabric::RouteTree& tree,
                                  const std::vector<RouteEdge>& kept) {
  // Sorted membership test: trees pruned during fleet-scale net surgery
  // carry hundreds of edges, where the linear scan per edge was the same
  // O(n^2) shape the routing skeleton's has_edge just shed.
  std::vector<RouteEdge> sorted_kept = kept;
  std::sort(sorted_kept.begin(), sorted_kept.end());
  std::vector<RouteEdge> removed;
  removed.reserve(tree.edges.size() - kept.size());
  for (const auto& e : tree.edges) {
    if (!std::binary_search(sorted_kept.begin(), sorted_kept.end(), e)) {
      removed.push_back(e);
    }
  }
  return removed;
}
}  // namespace

std::vector<RouteEdge> prune_for_sink_removal(const fabric::Fabric& fabric,
                                              NetId net,
                                              NodeId dropped_sink) {
  return prune_for_sinks_removal(fabric, net, {dropped_sink});
}

std::vector<RouteEdge> prune_for_sinks_removal(
    const fabric::Fabric& fabric, NetId net,
    const std::vector<NodeId>& dropped_sinks) {
  const auto& tree = fabric.net(net);
  std::vector<NodeId> sinks = fabric.net_sinks(net);
  for (NodeId d : dropped_sinks) std::erase(sinks, d);
  const auto kept = needed_edges(fabric, net, tree.sources, sinks);
  return complement(tree, kept);
}

std::vector<RouteEdge> prune_for_source_removal(const fabric::Fabric& fabric,
                                                NetId net,
                                                NodeId dropped_source) {
  const auto& tree = fabric.net(net);
  std::vector<NodeId> sources = tree.sources;
  std::erase(sources, dropped_source);
  const auto kept =
      needed_edges(fabric, net, sources, fabric.net_sinks(net));
  return complement(tree, kept);
}

}  // namespace relogic::reloc
