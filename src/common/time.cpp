#include "relogic/common/time.hpp"

#include <cmath>
#include <cstdio>

namespace relogic {

std::string SimTime::to_string() const {
  const double ps = static_cast<double>(ps_);
  char buf[64];
  const double abs = std::fabs(ps);
  if (abs >= 1e12) {
    std::snprintf(buf, sizeof buf, "%.3f s", ps / 1e12);
  } else if (abs >= 1e9) {
    std::snprintf(buf, sizeof buf, "%.3f ms", ps / 1e9);
  } else if (abs >= 1e6) {
    std::snprintf(buf, sizeof buf, "%.3f us", ps / 1e6);
  } else if (abs >= 1e3) {
    std::snprintf(buf, sizeof buf, "%.3f ns", ps / 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%lld ps", static_cast<long long>(ps_));
  }
  return buf;
}

}  // namespace relogic
