#include "relogic/common/logging.hpp"

#include <cstdio>

namespace relogic {

namespace {
LogLevel g_level = LogLevel::kOff;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kOff:
      break;
  }
  return "?????";
}
}  // namespace

LogLevel log_level() { return g_level; }
void set_log_level(LogLevel level) { g_level = level; }

namespace detail {
void log_emit(LogLevel level, const std::string& msg) {
  std::fprintf(stderr, "[relogic %s] %s\n", level_name(level), msg.c_str());
}
}  // namespace detail

}  // namespace relogic
