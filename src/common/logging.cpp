#include "relogic/common/logging.hpp"

#include <atomic>
#include <cstdio>
#include <utility>

#include "relogic/common/thread_annotations.hpp"

namespace relogic {

namespace {
// Fleet workers log concurrently: the level is read on every RELOGIC_LOG
// (relaxed atomic — no ordering needed, the value only gates verbosity) and
// the sink is read per emitted line. Serializing emissions under the sink
// mutex makes a capturing sink safe without its own locking and keeps
// set_log_sink race-free even mid-run (TSan-clean; DESIGN.md §8).
std::atomic<LogLevel> g_level{LogLevel::kOff};
Mutex g_sink_mu;
LogSink g_sink RELOGIC_GUARDED_BY(g_sink_mu);

struct LogContext {
  const char* component = nullptr;
  std::int64_t time_ps = 0;
};
thread_local LogContext g_context;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kOff:
      break;
  }
  return "?????";
}
}  // namespace

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }
void set_log_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

void set_log_sink(LogSink sink) {
  MutexLock lock(g_sink_mu);
  g_sink = std::move(sink);
}

void set_log_context(const char* component, SimTime now) {
  g_context.component = component;
  g_context.time_ps = now.picoseconds();
}

void clear_log_context() { g_context.component = nullptr; }

namespace detail {
void log_emit(LogLevel level, const std::string& msg) {
  std::string line;
  if (g_context.component) {
    char prefix[64];
    std::snprintf(prefix, sizeof(prefix), "[t=%.3fms %s] ",
                  static_cast<double>(g_context.time_ps) / 1e9,
                  g_context.component);
    line = prefix;
  }
  line += msg;
  // One emission at a time: the sink sees serialized calls (its captures
  // need no lock), and whole lines never interleave on stderr either.
  MutexLock lock(g_sink_mu);
  if (g_sink) {
    g_sink(level, line);
    return;
  }
  std::fprintf(stderr, "[relogic %s] %s\n", level_name(level), line.c_str());
}
}  // namespace detail

}  // namespace relogic
