#include "relogic/common/rng.hpp"

#include <cmath>

#include "relogic/common/error.hpp"

namespace relogic {

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  RELOGIC_CHECK(bound > 0);
  // Lemire's nearly-divisionless method.
  while (true) {
    const std::uint64_t x = next_u64();
    const unsigned __int128 m =
        static_cast<unsigned __int128>(x) * static_cast<unsigned __int128>(bound);
    const std::uint64_t low = static_cast<std::uint64_t>(m);
    if (low >= bound || low >= (0ull - bound) % bound) {
      return static_cast<std::uint64_t>(m >> 64);
    }
  }
}

int Rng::next_int(int lo, int hi) {
  RELOGIC_CHECK(lo <= hi);
  return lo + static_cast<int>(next_below(
                  static_cast<std::uint64_t>(hi - lo) + 1));
}

double Rng::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

bool Rng::next_bool(double p_true) { return next_double() < p_true; }

double Rng::next_exponential(double mean) {
  RELOGIC_CHECK(mean > 0);
  double u = next_double();
  if (u <= 0) u = 1e-300;
  return -mean * std::log(u);
}

int Rng::next_skewed(int lo, int hi) {
  RELOGIC_CHECK(lo <= hi);
  const double u = next_double();
  const double span = static_cast<double>(hi - lo) + 1.0;
  const int off = static_cast<int>(span * u * u);  // quadratic bias to lo
  return lo + (off > hi - lo ? hi - lo : off);
}

}  // namespace relogic
