// Deterministic random number generation.
//
// All stochastic components (workload generators, property tests, random
// stimuli) draw from Rng seeded explicitly, so every experiment in
// EXPERIMENTS.md is reproducible bit-for-bit.
#pragma once

#include <cstdint>
#include <vector>

namespace relogic {

/// xoshiro256** — small, fast, high-quality; seeded via SplitMix64.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  std::uint64_t next_u64();

  /// Uniform in [0, bound) using Lemire's rejection method. bound > 0.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int next_int(int lo, int hi);

  /// Uniform double in [0, 1).
  double next_double();

  /// Bernoulli trial.
  bool next_bool(double p_true = 0.5);

  /// Exponentially distributed value with the given mean (> 0).
  double next_exponential(double mean);

  /// Geometric-ish discrete value in [lo, hi] biased toward lo.
  int next_skewed(int lo, int hi);

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(next_below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

 private:
  std::uint64_t s_[4];
};

}  // namespace relogic
