// BackendRegistry<T>: a small named-singleton registry for pluggable
// backend implementations (kernel backends today; any family of stateless
// strategy objects tomorrow).
//
// Backends are registered once — typically from a function-local static
// initializer in the family's own translation unit, which sidesteps
// cross-TU static-initialization-order hazards — and looked up by name
// from configuration strings (environment variables, CLI flags). Entries
// are immutable after registration; lookups after the initial registration
// burst are lock-protected reads of a stable vector, so sharing the
// registry across the fleet's worker threads is safe.
//
// Names are matched exactly (callers normalize case if they accept user
// input). Registration order is preserved: names() reports backends in the
// order they were registered, which keeps any "first registered is the
// reference" convention visible and deterministic.
#pragma once

#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "relogic/common/error.hpp"

namespace relogic {

template <typename T>
class BackendRegistry {
 public:
  BackendRegistry() = default;
  BackendRegistry(const BackendRegistry&) = delete;
  BackendRegistry& operator=(const BackendRegistry&) = delete;

  /// Registers a backend under `name`. The registry does not own the
  /// pointer; backends are expected to be immortal singletons. Duplicate
  /// names are a programming error.
  void add(std::string name, const T* backend) {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& e : entries_) {
      RELOGIC_CHECK_MSG(e.first != name,
                        "backend '" + name + "' registered twice");
    }
    entries_.emplace_back(std::move(name), backend);
  }

  /// The backend registered under `name`, or nullptr.
  const T* find(std::string_view name) const {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& e : entries_) {
      if (e.first == name) return e.second;
    }
    return nullptr;
  }

  /// Registered names, in registration order.
  std::vector<std::string> names() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<std::string> out;
    out.reserve(entries_.size());
    for (const auto& e : entries_) out.push_back(e.first);
    return out;
  }

 private:
  mutable std::mutex mu_;
  std::vector<std::pair<std::string, const T*>> entries_;
};

}  // namespace relogic
