// Error handling primitives for the relogic library.
//
// The library throws `relogic::Error` (and subclasses) for contract and
// environment violations; hot paths use RELOGIC_CHECK which compiles to a
// throwing check in all build types (relocation correctness is the whole
// point of the library, so checks stay on in Release).
#pragma once

#include <stdexcept>
#include <string>

namespace relogic {

/// Base class of all errors thrown by the library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A caller violated a documented precondition.
class ContractError : public Error {
 public:
  explicit ContractError(const std::string& what) : Error(what) {}
};

/// An operation is illegal in the current fabric/configuration state
/// (e.g. relocating a LUT-RAM, routing through an occupied switch).
class IllegalOperationError : public Error {
 public:
  explicit IllegalOperationError(const std::string& what) : Error(what) {}
};

/// A resource request cannot be satisfied (no free CLB, no route).
class ResourceError : public Error {
 public:
  explicit ResourceError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  throw ContractError(std::string("check failed: ") + expr + " at " + file +
                      ":" + std::to_string(line) +
                      (msg.empty() ? "" : (" — " + msg)));
}
}  // namespace detail

}  // namespace relogic

#define RELOGIC_CHECK(expr)                                              \
  do {                                                                   \
    if (!(expr))                                                         \
      ::relogic::detail::check_failed(#expr, __FILE__, __LINE__, "");    \
  } while (false)

#define RELOGIC_CHECK_MSG(expr, msg)                                     \
  do {                                                                   \
    if (!(expr))                                                         \
      ::relogic::detail::check_failed(#expr, __FILE__, __LINE__, (msg)); \
  } while (false)
