// Planar geometry over the CLB array: coordinates and rectangles.
//
// Rows grow downward (row 0 at the top of the array) and columns grow to the
// right, matching the Virtex configuration-column order used by
// relogic::config.
#pragma once

#include <compare>
#include <cstdint>
#include <cstdlib>
#include <string>

namespace relogic {

/// Location of a CLB in the array.
struct ClbCoord {
  int row = 0;
  int col = 0;

  constexpr auto operator<=>(const ClbCoord&) const = default;

  std::string to_string() const {
    return "R" + std::to_string(row) + "C" + std::to_string(col);
  }
};

/// Manhattan distance between two CLBs — the routing-cost metric the paper's
/// "relocate to nearby CLBs" guidance is expressed in.
constexpr int manhattan(ClbCoord a, ClbCoord b) {
  const int dr = a.row - b.row;
  const int dc = a.col - b.col;
  return (dr < 0 ? -dr : dr) + (dc < 0 ? -dc : dc);
}

/// Half-open rectangle of CLBs: rows [row, row+height), cols [col, col+width).
struct ClbRect {
  int row = 0;
  int col = 0;
  int height = 0;
  int width = 0;

  constexpr auto operator<=>(const ClbRect&) const = default;

  constexpr int area() const { return height * width; }
  constexpr bool empty() const { return height <= 0 || width <= 0; }
  constexpr int row_end() const { return row + height; }
  constexpr int col_end() const { return col + width; }

  constexpr bool contains(ClbCoord c) const {
    return c.row >= row && c.row < row_end() && c.col >= col &&
           c.col < col_end();
  }
  constexpr bool contains(const ClbRect& o) const {
    return o.row >= row && o.col >= col && o.row_end() <= row_end() &&
           o.col_end() <= col_end();
  }
  constexpr bool overlaps(const ClbRect& o) const {
    return row < o.row_end() && o.row < row_end() && col < o.col_end() &&
           o.col < col_end();
  }

  std::string to_string() const {
    return "[" + std::to_string(row) + "," + std::to_string(col) + " " +
           std::to_string(height) + "x" + std::to_string(width) + "]";
  }
};

}  // namespace relogic
