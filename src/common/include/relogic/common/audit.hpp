// Debug invariant audits (DESIGN.md §8.4).
//
// Several subsystems maintain derived state incrementally on the hot path —
// the AreaManager's occupancy ledger and free-CLB counters, the FrameImage
// digest mirror, the fleet's admission ledger — and their correctness is
// otherwise only sampled by example-based tests. Each of those owners
// exposes an `audit()` method that cross-checks the incremental state
// against a from-scratch recompute and throws AuditError on the first
// divergence, naming the mismatched quantity.
//
// The audit() methods are always compiled and callable (tests invoke them
// directly); the *periodic* call sites at sweep/flush boundaries are gated
// on the RELOGIC_AUDIT compile-time flag (CMake option RELOGIC_AUDIT, ON in
// the sanitizer CI jobs) so release builds pay nothing:
//
//   if constexpr (relogic::audit_enabled()) mgr.audit();
#pragma once

#include <string>

#include "relogic/common/error.hpp"

#ifndef RELOGIC_AUDIT
#define RELOGIC_AUDIT 0
#endif

namespace relogic {

/// An incremental-state invariant failed a from-scratch cross-check. Always
/// a library bug (or unsanctioned mutation behind an owner's back), never a
/// caller error.
class AuditError : public Error {
 public:
  explicit AuditError(const std::string& what) : Error(what) {}
};

/// True when the build enables periodic audits (-DRELOGIC_AUDIT=ON).
constexpr bool audit_enabled() { return RELOGIC_AUDIT != 0; }

namespace detail {
[[noreturn]] inline void audit_failed(const char* where,
                                      const std::string& msg) {
  throw AuditError(std::string("audit failed [") + where + "]: " + msg);
}
}  // namespace detail

}  // namespace relogic

/// Inside an audit() method: checks one invariant, throwing AuditError
/// tagged with `where` (the audit's name) on failure.
#define RELOGIC_AUDIT_CHECK(expr, where, msg)                \
  do {                                                       \
    if (!(expr)) ::relogic::detail::audit_failed(where, msg); \
  } while (false)
