// Minimal leveled logger used across the library.
//
// Off by default; benches/examples raise the level to narrate relocation
// steps. Thread safety (DESIGN.md §8): the level is an atomic (the
// RELOGIC_LOG fast path is one relaxed load), the sink is guarded by a
// mutex and sink invocations are serialized under it — a capturing sink
// (tests append lines to a vector) needs no locking of its own, and
// swapping the sink mid-run cannot race an emission. A sink must not log
// re-entrantly. The log context is thread-local, so concurrent device runs
// tag their own lines.
#pragma once

#include <functional>
#include <sstream>
#include <string>

#include "relogic/common/time.hpp"

namespace relogic {

enum class LogLevel { kOff = 0, kError, kWarn, kInfo, kDebug, kTrace };

/// Global log threshold; messages above the threshold are dropped.
LogLevel log_level();
void set_log_level(LogLevel level);

/// Redirects log output. The sink receives the composed message (context
/// prefix included, level tag not). An empty sink restores stderr. Lets
/// tests and benches capture narration instead of spamming stderr.
using LogSink = std::function<void(LogLevel, const std::string&)>;
void set_log_sink(LogSink sink);

/// Thread-local component/sim-time tag prefixed to subsequent log lines as
/// "[t=<ms>ms <component>] ". Instrumented components set it while a tracer
/// is active so log lines correlate with trace spans; when cleared it costs
/// nothing. `component` must outlive its use (string literals).
void set_log_context(const char* component, SimTime now);
void clear_log_context();

namespace detail {
void log_emit(LogLevel level, const std::string& msg);
}

/// Stream-style log statement: RELOGIC_LOG(kInfo) << "moved " << n;
#define RELOGIC_LOG(level)                                             \
  if (::relogic::LogLevel::level > ::relogic::log_level()) {           \
  } else                                                               \
    ::relogic::detail::LogLine(::relogic::LogLevel::level)

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_emit(level_, os_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace relogic
