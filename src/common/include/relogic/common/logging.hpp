// Minimal leveled logger used across the library.
//
// Off by default; benches/examples raise the level to narrate relocation
// steps. Not thread-safe by design — the simulator is single-threaded.
#pragma once

#include <sstream>
#include <string>

namespace relogic {

enum class LogLevel { kOff = 0, kError, kWarn, kInfo, kDebug, kTrace };

/// Global log threshold; messages above the threshold are dropped.
LogLevel log_level();
void set_log_level(LogLevel level);

namespace detail {
void log_emit(LogLevel level, const std::string& msg);
}

/// Stream-style log statement: RELOGIC_LOG(kInfo) << "moved " << n;
#define RELOGIC_LOG(level)                                             \
  if (::relogic::LogLevel::level > ::relogic::log_level()) {           \
  } else                                                               \
    ::relogic::detail::LogLine(::relogic::LogLevel::level)

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_emit(level_, os_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace relogic
