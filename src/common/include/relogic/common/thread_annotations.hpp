// Clang thread-safety annotations + a capability-annotated mutex wrapper.
//
// The determinism contract (DESIGN.md §7) and the fleet's fork-join model
// rest on lock/ownership discipline that example-based tests can only
// sample. These macros wire the discipline into the compiler: under clang
// with -Wthread-safety (the CI `clang-thread-safety` job builds with
// -Werror=thread-safety), annotated members may only be touched while the
// named capability is held, and lock/unlock mismatches are compile errors.
// Under GCC/MSVC every macro expands to nothing, so annotations are free
// documentation there.
//
// Conventions in this codebase (DESIGN.md §8.1):
//  * shared mutable state guarded by a Mutex gets RELOGIC_GUARDED_BY;
//  * private helpers that assume the lock is held get RELOGIC_REQUIRES;
//  * public entry points that take the lock themselves get RELOGIC_EXCLUDES
//    so a re-entrant call from a locked context is a compile error;
//  * single-writer structures (obs::TraceBuffer) cannot be expressed as a
//    capability — they are documented at the declaration and enforced
//    dynamically by the RELOGIC_AUDIT concurrent-writer check instead.
#pragma once

#include <mutex>

#if defined(__clang__) && (!defined(SWIG))
#define RELOGIC_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define RELOGIC_THREAD_ANNOTATION(x)  // no-op outside clang
#endif

/// Declares a class to be a capability ("mutex" in diagnostics).
#define RELOGIC_CAPABILITY(x) RELOGIC_THREAD_ANNOTATION(capability(x))

/// Declares an RAII class that acquires a capability in its constructor and
/// releases it in its destructor.
#define RELOGIC_SCOPED_CAPABILITY RELOGIC_THREAD_ANNOTATION(scoped_lockable)

/// Data member readable/writable only while `x` is held.
#define RELOGIC_GUARDED_BY(x) RELOGIC_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose *pointee* is protected by `x` (the pointer itself
/// may be read freely).
#define RELOGIC_PT_GUARDED_BY(x) RELOGIC_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function requires the capability to be held on entry (and does not
/// release it).
#define RELOGIC_REQUIRES(...) \
  RELOGIC_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define RELOGIC_REQUIRES_SHARED(...) \
  RELOGIC_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/// Function acquires the capability and holds it past return.
#define RELOGIC_ACQUIRE(...) \
  RELOGIC_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define RELOGIC_ACQUIRE_SHARED(...) \
  RELOGIC_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))

/// Function releases a capability held on entry.
#define RELOGIC_RELEASE(...) \
  RELOGIC_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define RELOGIC_RELEASE_SHARED(...) \
  RELOGIC_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))

/// Function acquires the capability only when it returns `res`.
#define RELOGIC_TRY_ACQUIRE(res, ...) \
  RELOGIC_THREAD_ANNOTATION(try_acquire_capability(res, __VA_ARGS__))

/// Function must NOT be called with the capability held (deadlock guard for
/// public entry points that take the lock themselves).
#define RELOGIC_EXCLUDES(...) \
  RELOGIC_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Function returns a reference to the named capability.
#define RELOGIC_RETURN_CAPABILITY(x) \
  RELOGIC_THREAD_ANNOTATION(lock_returned(x))

/// Declares that the calling thread already holds the capability (dynamic
/// fact the analysis cannot see, e.g. checked via a runtime assert).
#define RELOGIC_ASSERT_CAPABILITY(x) \
  RELOGIC_THREAD_ANNOTATION(assert_capability(x))

/// Escape hatch: disables analysis for one function. Every use must carry a
/// comment explaining why the discipline holds anyway.
#define RELOGIC_NO_THREAD_SAFETY_ANALYSIS \
  RELOGIC_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace relogic {

/// std::mutex with the capability attribute, so members can be declared
/// RELOGIC_GUARDED_BY(mu_) and clang enforces the guard. Use MutexLock for
/// scoped acquisition; bare lock()/unlock() are annotated for the rare
/// manual pairing.
class RELOGIC_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() RELOGIC_ACQUIRE() { mu_.lock(); }
  void unlock() RELOGIC_RELEASE() { mu_.unlock(); }
  bool try_lock() RELOGIC_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

/// RAII lock over Mutex, visible to the analysis (std::lock_guard is not
/// annotated in libstdc++, so locking through it would leave every guarded
/// access a false positive).
class RELOGIC_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) RELOGIC_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() RELOGIC_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

}  // namespace relogic
