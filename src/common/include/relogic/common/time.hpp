// Simulation time: a strong integer type counting picoseconds.
//
// All latencies in the library (logic delays, routing delays, configuration
// port transfer times, scheduler horizons) are expressed as SimTime so that
// heterogeneous models compose without unit mistakes.
#pragma once

#include <compare>
#include <cstdint>
#include <string>

namespace relogic {

/// Absolute time or duration in picoseconds.
class SimTime {
 public:
  constexpr SimTime() = default;
  constexpr explicit SimTime(std::int64_t ps) : ps_(ps) {}

  static constexpr SimTime ps(std::int64_t v) { return SimTime(v); }
  static constexpr SimTime ns(std::int64_t v) { return SimTime(v * 1000); }
  static constexpr SimTime us(std::int64_t v) { return SimTime(v * 1000000); }
  static constexpr SimTime ms(std::int64_t v) {
    return SimTime(v * 1000000000);
  }
  static constexpr SimTime zero() { return SimTime(0); }
  /// Largest representable time; used as "never".
  static constexpr SimTime never() { return SimTime(INT64_MAX); }

  constexpr std::int64_t picoseconds() const { return ps_; }
  constexpr double nanoseconds() const { return static_cast<double>(ps_) / 1e3; }
  constexpr double microseconds() const { return static_cast<double>(ps_) / 1e6; }
  constexpr double milliseconds() const { return static_cast<double>(ps_) / 1e9; }
  constexpr double seconds() const { return static_cast<double>(ps_) / 1e12; }

  constexpr auto operator<=>(const SimTime&) const = default;

  constexpr SimTime operator+(SimTime o) const { return SimTime(ps_ + o.ps_); }
  constexpr SimTime operator-(SimTime o) const { return SimTime(ps_ - o.ps_); }
  constexpr SimTime& operator+=(SimTime o) {
    ps_ += o.ps_;
    return *this;
  }
  constexpr SimTime& operator-=(SimTime o) {
    ps_ -= o.ps_;
    return *this;
  }
  constexpr SimTime operator*(std::int64_t k) const { return SimTime(ps_ * k); }
  constexpr std::int64_t operator/(SimTime o) const { return ps_ / o.ps_; }
  constexpr SimTime operator/(std::int64_t k) const { return SimTime(ps_ / k); }

  /// Human-readable rendering with an auto-selected unit (e.g. "22.6 ms").
  std::string to_string() const;

 private:
  std::int64_t ps_ = 0;
};

constexpr SimTime operator*(std::int64_t k, SimTime t) { return t * k; }

}  // namespace relogic
