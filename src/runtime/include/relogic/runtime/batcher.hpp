// TransactionBatcher: coalesces adjacent ConfigOps into single
// configuration-port transactions.
//
// The controller issues one port transaction per touched column (the frame
// address register must be rewritten when the column changes), and every
// transaction pays the fixed TAP-walking / header / pad-frame overhead of
// the port model (config/port.hpp). Back-to-back ConfigOps bound for the
// same device frequently touch overlapping frame sets — consecutive task
// configurations packed bottom-left share columns, and a relocation's op
// sequence revisits its source and destination frames several times. By
// concatenating adjacent ops and applying them as one ConfigOp, each shared
// frame is written once instead of once per op, amortising the
// per-transaction overhead, the full column rewrite (in the column-granular
// JBits regime), and — under kDirtyFrame — letting writes that a later op
// undoes cancel out entirely (the merged op's content delta is zero, so the
// frame is never written at all).
//
// Coalescing preserves semantics: a ConfigOp's actions apply in order,
// concatenation keeps the order across ops, so the fabric end state is
// identical to applying the ops one by one — and ops that write LUT-RAM
// cell configs are applied alone so the controller's live-LUT-RAM column
// check sees exactly the states a per-op sequence would. The batcher
// tracks what the unbatched sequence would have cost (via
// ConfigController::preview) so callers can report the saving honestly;
// under kDirtyFrame that baseline is an estimate — each op is previewed
// against the fabric as it stands at enqueue, before the pending batch has
// applied.
//
// Each incoming op's frame set (config::FrameSet, sorted dense ids) is
// computed exactly once per enqueue and reused for the LUT-RAM legality
// check, the unbatched-baseline preview, the max_columns / max_frames
// gates, and — via the running union the batcher maintains — the flush
// apply itself, which takes the merged set instead of re-mapping the
// concatenated op. All sets live in reusable members, so steady-state
// enqueue/flush allocates nothing.
//
// Threading contract: a batcher (and the ConfigController + Fabric behind
// it) belongs to exactly one device run and is confined to that worker
// thread — nothing here locks (DESIGN.md §8.1). In audit builds every
// transaction boundary (flush and the solo-op path) cross-checks the
// controller's frame-digest mirror against a full recompute
// (ConfigController::audit_image, DESIGN.md §8.4).
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <utility>

#include "relogic/config/controller.hpp"

namespace relogic::runtime {

struct BatchOptions {
  /// Flush automatically once this many ops are pending. <= 1 disables
  /// coalescing (every op is its own transaction).
  int max_ops = 8;
  /// Flush before a merge would make the coalesced op span more than this
  /// many columns (0 = unlimited). Bounds the atomicity window: one huge
  /// transaction monopolises the port.
  int max_columns = 0;
  /// Flush before a merge would make the coalesced op map more than this
  /// many frames (0 = unlimited). The frame-granular analogue of
  /// max_columns: under kFrame / kDirtyFrame a transaction's port time
  /// scales with frames, not columns, so this is the meaningful atomicity
  /// bound there. Counted on frames_of (the pre-dirty-filter upper bound).
  int max_frames = 0;
  /// Passed through to ConfigController::apply.
  bool allow_lut_ram_columns = false;
};

struct BatchStats {
  int ops_in = 0;        ///< ConfigOps enqueued
  int transactions = 0;  ///< coalesced ConfigOps actually applied
  /// Per-column port transactions issued / frames written / port time, for
  /// the batched stream and for the unbatched baseline (each op applied
  /// alone) on the same workload.
  int column_writes = 0;
  int unbatched_column_writes = 0;
  int frames_written = 0;
  int unbatched_frames = 0;
  /// Frames kDirtyFrame skipped because their contents were unchanged
  /// (0 under kColumn / kFrame). The unbatched figure is the per-op
  /// enqueue-time estimate.
  int frames_skipped = 0;
  int unbatched_frames_skipped = 0;
  SimTime time = SimTime::zero();
  SimTime unbatched_time = SimTime::zero();

  int merged_ops() const { return ops_in - transactions; }
  SimTime saved() const { return unbatched_time - time; }
};

class TransactionBatcher {
 public:
  explicit TransactionBatcher(config::ConfigController& controller,
                              BatchOptions options = {});

  /// Queues an op, coalescing it with the pending batch. May flush first if
  /// the batch would exceed the options' limits. Empty ops are dropped.
  void enqueue(const config::ConfigOp& op);

  /// Applies the pending batch as one transaction. No-op when empty.
  void flush();

  int pending_ops() const { return pending_ops_; }
  const BatchStats& stats() const { return stats_; }
  config::ConfigController& controller() { return *controller_; }

 private:
  config::ConfigController* controller_;
  BatchOptions options_;
  config::ConfigOp pending_;
  /// Running union of the pending batch's frame sets — equals
  /// frames_of(pending_) (widening distributes over unions), so flush()
  /// hands it to apply() instead of re-mapping the merged op. Also powers
  /// the max_columns / max_frames gates at one frames_of per incoming op.
  config::FrameSet pending_frames_;
  /// Scratch reused across enqueues (incoming op's set, gate trial union).
  config::FrameSet op_frames_;
  config::FrameSet merged_scratch_;
  /// Cells written by the pending batch — the exemption set that makes the
  /// enqueue-time LUT-RAM legality check match the per-op sequence.
  std::set<config::ConfigController::CellKey> pending_rewrites_;
  int pending_ops_ = 0;
  BatchStats stats_;
};

}  // namespace relogic::runtime
