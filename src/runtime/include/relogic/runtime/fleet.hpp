// relogic::runtime — fleet-level run-time manager.
//
// The paper's run-time manager (relogic::sched) schedules functions onto
// ONE device. FleetManager scales that out: it owns N independent device
// contexts, admits a stream of application / task requests through an
// admission queue, picks a device per request with a pluggable dispatch
// policy, and executes every device's discrete-event run on a worker
// thread pool. Devices are fully isolated — each worker builds its own
// fabric, configuration port, cost model and scheduler, so runs are
// deterministic regardless of thread count, and a fleet run with the same
// seed produces byte-identical telemetry JSON.
//
// Alongside the area-level schedule, each device replays the partial
// configurations of its admitted tasks against a real Fabric +
// ConfigController through a TransactionBatcher, so fleet reports carry
// honest configuration-port transaction counts: batched versus the
// one-transaction-per-op baseline on the same workload.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "relogic/config/controller.hpp"
#include "relogic/runtime/batcher.hpp"
#include "relogic/runtime/telemetry.hpp"
#include "relogic/sched/scheduler.hpp"
#include "relogic/sched/workload.hpp"

namespace relogic::runtime {

/// How the admission queue maps requests to devices.
enum class DispatchPolicy {
  kRoundRobin,   ///< cycle through devices in id order
  kLeastLoaded,  ///< device with the most estimated free CLBs at arrival
  kBestFit,      ///< device whose estimated free CLBs tightest-fit the
                 ///< request's footprint (falls back to least-loaded)
};

std::string to_string(DispatchPolicy p);
std::optional<DispatchPolicy> parse_dispatch_policy(const std::string& name);

struct FleetConfig {
  int devices = 4;
  /// Per-device CLB grid (every device of the fleet is identical).
  int rows = 24;
  int cols = 24;
  DispatchPolicy dispatch = DispatchPolicy::kLeastLoaded;
  /// Per-device run-time manager configuration (management policy,
  /// placement, defrag options, ...).
  sched::SchedulerConfig sched;
  /// Intra-application parallelism passed to Scheduler::run_apps.
  int overlap = 1;
  /// Use the SelectMAP port model instead of Boundary-Scan (the paper's
  /// set-up) for configuration timing.
  bool use_selectmap = false;
  /// Coalesce adjacent configuration ops per device (TransactionBatcher).
  bool batch_config = true;
  BatchOptions batch;
  /// Worker threads for the per-device runs; 0 = one per device, capped at
  /// hardware concurrency.
  int threads = 0;
};

/// Everything measured about one device's run.
struct DeviceReport {
  int device = 0;
  sched::RunStats stats;
  BatchStats batch;
  Telemetry telemetry;
};

struct FleetReport {
  FleetConfig config;
  std::vector<DeviceReport> devices;
  Telemetry aggregate;
  int admitted = 0;   ///< tasks (application functions) assigned to devices
  int completed = 0;
  int rejected = 0;   ///< per-device rejects plus admission rejects
  SimTime makespan = SimTime::zero();  ///< max over devices

  /// Aggregate modelled throughput: completed tasks per second of
  /// simulated fleet time.
  double throughput_tasks_per_s() const;

  /// Deterministic JSON document (same seed => byte-identical output).
  std::string to_json() const;
};

class FleetManager {
 public:
  explicit FleetManager(FleetConfig config);

  const FleetConfig& config() const { return cfg_; }

  /// Admits a one-shot task.
  void submit(const sched::TaskArrival& task);
  /// Admits an application (its function chain stays on one device).
  void submit(const sched::AppSpec& app);
  void submit_all(const std::vector<sched::TaskArrival>& tasks);

  std::size_t pending_requests() const { return queue_.size(); }

  /// Drains the admission queue onto devices. Returns one device index per
  /// admitted request, in submission order (-1 = rejected at admission:
  /// no device can ever hold the request). Idempotent until the next
  /// submit; run() calls it implicitly.
  const std::vector<int>& dispatch();

  /// Dispatches, executes every device run on the worker pool, and
  /// gathers telemetry. Leaves the admission queue empty.
  FleetReport run();

 private:
  struct Request {
    sched::AppSpec app;
    int footprint_clbs = 0;  ///< largest concurrent function footprint
    SimTime est_end = SimTime::zero();
  };

  DeviceReport run_device(int device,
                          const std::vector<sched::AppSpec>& apps) const;

  FleetConfig cfg_;
  std::vector<Request> queue_;
  std::vector<int> assignment_;
  bool dispatched_ = false;
  int rr_next_ = 0;
};

}  // namespace relogic::runtime
