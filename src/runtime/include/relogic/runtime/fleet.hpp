// relogic::runtime — fleet-level run-time manager.
//
// The paper's run-time manager (relogic::sched) schedules functions onto
// ONE device. FleetManager scales that out: it owns N independent device
// contexts, admits a stream of application / task requests through an
// admission queue, picks a device per request with a pluggable dispatch
// policy, and executes every device's discrete-event run on a worker
// thread pool. Devices are fully isolated — each worker builds its own
// fabric, configuration port, cost model and scheduler, so runs are
// deterministic regardless of thread count, and a fleet run with the same
// seed produces byte-identical telemetry JSON.
//
// Admission is *online*, mirroring the paper's run-time manager: requests
// are dispatched one event at a time, in arrival order, each against the
// occupancy ledger as it stands at that request's arrival — capacity tied
// up by departed tasks has already been reclaimed. Submission can be
// incremental (submit, dispatch, submit more, dispatch again); earlier
// placements are never recomputed, only extended. A live rebalancing pass
// migrates queued-but-not-started requests off a device whose estimated
// backlog exceeds a configurable threshold onto the least-backlogged peer
// (counted as `rebalanced_requests` in the fleet telemetry). The previous
// one-shot batch planner is kept, faithfully, as AdmissionMode::kOffline:
// it walks the same arrival order against the same departure-reclaiming
// ledger, but books every request as starting at its arrival (no queueing
// estimates), never rebalances, and re-plans the whole batch on every
// dispatch. That is the baseline bench_fleet_online measures the online
// loop against.
//
// Alongside the area-level schedule, each device replays the configuration
// traffic of its admitted tasks — a per-task op sequence: the initial
// partial configuration at config_start and the teardown clear at finish,
// event-ordered — against a real Fabric + ConfigController through a
// TransactionBatcher, so fleet reports carry honest configuration-port
// transaction counts: batched versus the one-transaction-per-op baseline on
// the same workload, with kDirtyFrame's configure/clear cancellations
// showing up in frame_writes_dirty_skipped at fleet scale.
#pragma once

#include <cstddef>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "relogic/config/controller.hpp"
#include "relogic/health/fault.hpp"
#include "relogic/obs/timeline.hpp"
#include "relogic/obs/trace.hpp"
#include "relogic/runtime/batcher.hpp"
#include "relogic/runtime/telemetry.hpp"
#include "relogic/sched/scheduler.hpp"
#include "relogic/sched/workload.hpp"

namespace relogic::runtime {

/// How the admission queue maps requests to devices.
enum class DispatchPolicy {
  kRoundRobin,   ///< cycle through devices in id order
  kLeastLoaded,  ///< device with the most estimated free CLBs at arrival
  kBestFit,      ///< device whose estimated free CLBs tightest-fit the
                 ///< request's footprint (falls back to least-loaded)
};

std::string to_string(DispatchPolicy p);
std::optional<DispatchPolicy> parse_dispatch_policy(const std::string& name);

/// When placement decisions are made.
enum class AdmissionMode {
  kOnline,   ///< event-ordered: each request placed at its arrival time
             ///< against the live, queue-aware ledger; supports
             ///< incremental submission and rebalancing
  kOffline,  ///< one-shot batch re-plan (the PR 1 planner): arrival-sorted
             ///< against the departure-reclaiming ledger, but without
             ///< queueing estimates or rebalancing
};

std::string to_string(AdmissionMode m);
std::optional<AdmissionMode> parse_admission_mode(const std::string& name);

/// Fleet-level health policy: per-device roving self-test, deterministic
/// fault injection, and quarantine of degraded devices.
struct FleetHealthConfig {
  /// Run the roving self-test sweep on every device (sched::SelfTestConfig
  /// inside each device run; detection-time estimates at admission).
  bool selftest = false;
  /// Probability that any one logic cell carries an injected defect.
  /// Deterministic per (fault_seed, device): same fleet, same faults.
  double fault_rate = 0.0;
  std::uint64_t fault_seed = 1;
  /// Sweep shape (mirrored into every device's SelfTestConfig).
  int window_cols = 1;
  double step_period_ms = 5.0;
  /// Detected-faulty-CLB density above which a device is quarantined: it
  /// receives no further requests and its queued-but-not-started requests
  /// migrate to healthy peers. <= 0 disables quarantine.
  double quarantine_threshold = 0.0;

  bool enabled() const { return selftest; }
};

/// Time-series metrics plane (obs::MetricsTimeline): when enabled, every
/// device's discrete-event run snapshots its live telemetry registry each
/// sample_interval_ms of *simulated* time — the sampler ticks are DES
/// events, so the timelines are byte-identical across repeat runs and
/// worker-thread counts, and a fleet-aggregate timeline is folded from the
/// per-device ones after the pool joins (DESIGN.md §7.5).
struct MetricsConfig {
  /// Simulated-clock sampling period in milliseconds; <= 0 disables the
  /// metrics plane entirely (no live registry, no per-event overhead
  /// beyond one null-pointer test).
  double sample_interval_ms = 0.0;

  bool enabled() const { return sample_interval_ms > 0.0; }
  SimTime interval() const {
    return SimTime::ps(static_cast<std::int64_t>(sample_interval_ms * 1e9));
  }
};

/// Configuration-plane selection of one device: which physical port model
/// prices its configuration traffic and at what write granularity the
/// controller issues frames (config/granularity.hpp).
struct ConfigPlaneSpec {
  config::PortBackend port = config::PortBackend::kJtag;
  config::WriteGranularity granularity = config::WriteGranularity::kColumn;
};

struct FleetConfig {
  int devices = 4;
  /// Per-device CLB grid (every device of the fleet is identical).
  int rows = 24;
  int cols = 24;
  DispatchPolicy dispatch = DispatchPolicy::kLeastLoaded;
  AdmissionMode admission = AdmissionMode::kOnline;
  /// Online mode: after each admission, a device whose estimated backlog
  /// (remaining estimated work of everything on its ledger, in ms)
  /// exceeds this threshold sheds queued-but-not-started requests onto
  /// the least-backlogged peer — provided that peer is itself under the
  /// threshold (fleet-wide overload has nothing useful to shed), and at
  /// most a handful of migrations per admission event. <= 0 disables
  /// rebalancing.
  double rebalance_backlog_ms = 0.0;
  /// Per-device run-time manager configuration (management policy,
  /// placement, defrag options, ...).
  sched::SchedulerConfig sched;
  /// Intra-application parallelism passed to Scheduler::run_apps.
  int overlap = 1;
  /// Fleet-wide configuration plane (port backend + write granularity).
  ConfigPlaneSpec config_plane;
  /// Per-device overrides keyed by device id — heterogeneous fleets (e.g.
  /// a few ICAP-equipped dirty-diffing devices alongside a JTAG legacy
  /// pool) are a first-class scenario. Devices absent here use
  /// config_plane. Resolved via plane_for().
  std::map<int, ConfigPlaneSpec> device_config_planes;
  /// Kernel backend for every device's configuration controller
  /// ("serial", "openmp", "simd"; see config/kernel.hpp). Empty selects
  /// the process default: $RELOGIC_KERNEL_BACKEND if set, else "simd".
  /// The resolved name is echoed in the telemetry JSON header. Unknown
  /// names throw at fleet start, not mid-run.
  std::string kernel;
  /// Legacy flag: SelectMAP instead of Boundary-Scan. Kept for old callers;
  /// equivalent to config_plane.port = kSelectMap8 (only honoured while
  /// config_plane.port is still the default).
  bool use_selectmap = false;
  /// The fleet-wide default plane with the legacy use_selectmap flag
  /// folded in (what devices without an override run).
  ConfigPlaneSpec default_plane() const;
  /// The plane device `d` actually runs (override, else default_plane()).
  ConfigPlaneSpec plane_for(int d) const;
  /// Coalesce adjacent configuration ops per device (TransactionBatcher).
  bool batch_config = true;
  BatchOptions batch;
  /// Worker threads for the per-device runs; 0 = one per device, capped at
  /// hardware concurrency.
  int threads = 0;
  /// Roving self-test, fault injection and quarantine policy.
  FleetHealthConfig health;
  /// Sim-clock metrics sampling (off by default).
  MetricsConfig metrics;
};

/// Everything measured about one device's run.
struct DeviceReport {
  int device = 0;
  sched::RunStats stats;
  BatchStats batch;
  Telemetry telemetry;
  /// Sim-clock metrics timeline (empty unless FleetConfig::metrics is
  /// enabled). Sampled inside the device's DES run; the closing row sits at
  /// the device's makespan.
  obs::MetricsTimeline timeline;
};

struct FleetReport {
  FleetConfig config;
  std::vector<DeviceReport> devices;
  Telemetry aggregate;
  int admitted = 0;   ///< tasks (application functions) assigned to devices,
                      ///< including tasks their device later rejected
  int completed = 0;
  int rejected = 0;   ///< per-device rejects plus admission rejects
  int rebalanced = 0; ///< requests migrated between devices before starting
                      ///< (load rebalancing plus quarantine evacuations)
  int quarantined = 0;      ///< devices quarantined during admission
  int faulty_cells = 0;     ///< detected faulty cells across the fleet
  int tested_clbs = 0;      ///< CLBs pattern-tested across the fleet
  SimTime makespan = SimTime::zero();  ///< max over devices
  /// Counting identity (asserted in tests):
  ///   admitted == completed + rejected - admission_rejected
  /// where admission_rejected is the aggregate counter of requests no
  /// device could ever hold.

  /// Aggregate modelled throughput: completed tasks per second of
  /// simulated fleet time.
  double throughput_tasks_per_s() const;

  /// Deterministic JSON document (same seed => byte-identical output).
  std::string to_json() const;

  /// Fleet-aggregate metrics timeline: the per-device timelines folded in
  /// device-id order over the union of their sample times (carry-forward
  /// between a device's samples), rows tagged with the quarantined-device
  /// count. Empty unless FleetConfig::metrics is enabled.
  obs::MetricsTimeline timeline;

  /// Deterministic metrics document (obs::metrics_json_document over the
  /// aggregate and per-device timelines). Empty string when the metrics
  /// plane was off.
  std::string metrics_json() const;
};

class FleetManager {
 public:
  explicit FleetManager(FleetConfig config);

  const FleetConfig& config() const { return cfg_; }

  /// Admits a one-shot task.
  void submit(const sched::TaskArrival& task);
  /// Admits an application (its function chain stays on one device).
  void submit(const sched::AppSpec& app);
  void submit_all(const std::vector<sched::TaskArrival>& tasks);

  std::size_t pending_requests() const { return queue_.size(); }

  /// Places every not-yet-placed request onto a device. Online mode walks
  /// the new requests in arrival order, placing each against the ledger at
  /// its arrival time and rebalancing after every admission; offline mode
  /// recomputes the whole batch. Returns one device index per submitted
  /// request, in submission order (-1 = rejected at admission: no device
  /// can ever hold the request). Idempotent until the next submit; run()
  /// calls it implicitly.
  const std::vector<int>& dispatch();

  /// Requests migrated by the rebalancer so far (reset by run()).
  int rebalanced_requests() const { return rebalanced_; }

  /// Cross-checks the admission ledger against the request queue: every
  /// live entry references a valid request, matches assignment_ and the
  /// request's footprint, spans a non-inverted [est_start, est_end], and no
  /// request sits on two devices at once. Throws AuditError on the first
  /// divergence. Always compiled (tests call it directly); dispatch() calls
  /// it at the end of every admission pass when audit_enabled().
  void audit_admission() const;

  /// Attaches a tracer for subsequent dispatch()/run() calls (nullptr
  /// detaches). Registers every track up front — fleet lanes on pid 0,
  /// one pid per device with scheduler/tasks/port/health/telemetry lanes —
  /// so worker threads never touch the track registry; each track has a
  /// single writer and export order is fixed, which is what makes the
  /// trace byte-identical across thread counts (DESIGN.md §7). Call before
  /// the first submit()/dispatch() of the run to capture admission events.
  void set_tracer(obs::Tracer* tracer);

  /// Dispatches, executes every device run on the worker pool, and
  /// gathers telemetry. Leaves the admission queue empty.
  ///
  /// Threading contract (DESIGN.md §8.1): admission state (queue_, ledger_,
  /// assignment_, ...) is confined to the caller's thread — submit(),
  /// dispatch() and run() must not be called concurrently. run() is the
  /// only method that spawns threads, and its workers share exactly two
  /// pieces of mutable state: an atomic work counter handing out device
  /// ids, and a mutex-guarded error list (both annotated, both local to
  /// run()). Everything else a worker touches is either const member state
  /// or its own disjoint report.devices slot, which is why the report is
  /// byte-identical across thread counts.
  FleetReport run();

 private:
  struct Request {
    sched::AppSpec app;
    int footprint_clbs = 0;  ///< largest concurrent function footprint
    SimTime duration = SimTime::zero();  ///< sum of function durations
  };

  /// One placed request on a device's occupancy ledger. est_start folds in
  /// estimated queueing on that device: the earliest time the ledger says
  /// enough CLBs are free. A request with est_start in the future is
  /// "queued-but-not-started" — the rebalancer may still migrate it.
  struct LedgerEntry {
    std::size_t req = 0;  ///< index into queue_ / assignment_
    SimTime est_start = SimTime::zero();
    SimTime est_end = SimTime::zero();
    int clbs = 0;
  };

  /// Builds the per-device fault maps and detection-time estimates (no-op
  /// unless health is enabled or the maps already exist).
  void ensure_health_state();
  /// Detected-faulty CLBs on device d by time t, per the admission-side
  /// detection-time estimate: a fault in column c is found when the
  /// first-rotation sweep window reaches c (step_period_ms per step).
  int detected_faulty_clbs(int d, SimTime t) const;
  /// Quarantines any device whose detected fault density crossed the
  /// threshold by `now`, evacuating its queued-but-not-started requests.
  void maybe_quarantine(SimTime now);
  /// Non-faulty CLBs of device d at time t.
  int capacity_at(int d, SimTime t) const;
  /// Least-backlogged eligible peer (quarantined devices excluded unless
  /// the whole fleet is, matching pick_device) other than `exclude`, with
  /// capacity_at >= min_capacity. Returns {-1, +inf} when none qualifies.
  /// Shared by the load rebalancer and quarantine evacuation.
  std::pair<int, double> least_backlogged_peer(SimTime now, int exclude,
                                               int min_capacity) const;

  /// Estimated free CLBs on device d at time t (can go negative when the
  /// fleet is oversubscribed). Subtracts capacity lost to detected faults.
  int free_at(int d, SimTime t) const;
  /// Estimated remaining work on device d at time t, in milliseconds.
  double backlog_ms(int d, SimTime t) const;
  /// Earliest time >= t a given entry list estimates `clbs` CLBs free,
  /// against `capacity` total CLBs.
  SimTime est_start_in(const std::vector<LedgerEntry>& entries, SimTime t,
                       int clbs, int capacity) const;
  /// Earliest time >= t the ledger estimates `clbs` CLBs free on d.
  SimTime est_start_on(int d, SimTime t, int clbs) const;
  /// Applies the configured dispatch policy against the ledger at `now`
  /// (advances the round-robin cursor when that policy is active).
  int pick_device(SimTime now, int footprint);
  void place(std::size_t qi, int d, SimTime now, bool queue_aware);
  /// Re-derives est_start/est_end for device d's queued-but-not-started
  /// entries after the rebalancer shed one of them.
  void refresh_queued_estimates(int d, SimTime now);
  /// Sheds queued-but-not-started entries from over-threshold devices onto
  /// the least-backlogged peer while that strictly reduces the imbalance.
  void rebalance(SimTime now);

  DeviceReport run_device(int device,
                          const std::vector<sched::AppSpec>& apps) const;

  FleetConfig cfg_;
  std::vector<Request> queue_;
  std::vector<int> assignment_;
  std::vector<std::vector<LedgerEntry>> ledger_;
  std::size_t placed_ = 0;  ///< requests already processed (online mode)
  SimTime clock_ = SimTime::zero();  ///< admission event clock (online)
  int rebalanced_ = 0;
  bool dispatched_ = false;
  int rr_next_ = 0;
  // ---- health state (built by ensure_health_state) ------------------------
  std::vector<health::FaultMap> fault_maps_;  ///< injected ground truth
  /// Per device: sorted estimated detection times (ms) of its faulty CLBs.
  std::vector<std::vector<double>> fault_detect_ms_;
  std::vector<bool> quarantined_;
  int quarantined_count_ = 0;
  /// Admission-clock instants at which devices were quarantined (one entry
  /// per quarantined device, in quarantine order); tags the folded
  /// aggregate timeline's rows with the quarantined-device count.
  std::vector<SimTime> quarantine_times_;
  // ---- tracing (set_tracer) -----------------------------------------------
  struct DeviceTrace {
    obs::TraceTrack sched;   ///< DES lane (placement/config/relocation)
    obs::TraceTrack tasks;   ///< per-task queue/run spans
    obs::TraceTrack port;    ///< ConfigController replay transactions
    obs::TraceTrack health;  ///< sweep windows, detections, rotations
    obs::TraceTrack meter;   ///< telemetry counter samples
  };
  obs::Tracer* tracer_ = nullptr;
  obs::TraceTrack tr_admission_;  ///< admission instants + dispatch spans
  obs::TraceTrack tr_queue_;      ///< estimated queue-wait spans
  obs::TraceTrack tr_health_;     ///< quarantine / evacuation instants
  obs::TraceTrack tr_meter_;      ///< fleet-aggregate counter samples
  std::vector<DeviceTrace> device_trace_;
};

}  // namespace relogic::runtime
