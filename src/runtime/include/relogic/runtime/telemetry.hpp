// Telemetry: counters, gauges and latency histograms for the fleet runtime.
//
// Mirrors the per-component instrumentation style of discrete-event
// simulators (ns-3's simulator-impl counters): every metric is owned by a
// registry, updated on the hot path with plain integer arithmetic, and
// exported once at the end of a run as deterministic JSON — two runs with
// the same seed produce byte-identical exports, which is what makes fleet
// runs diffable across machines and PRs.
//
// Metrics are keyed by name. Registries merge: per-device registries are
// folded into one fleet-wide aggregate (counters add, histograms add
// bucket-wise, gauges average).
//
// Threading contract: a Telemetry registry is thread-confined. Each fleet
// worker fills the registry inside its own DeviceReport; the fold into the
// fleet aggregate happens after the worker pool joins, on the caller's
// thread. Nothing here locks, and nothing here may be shared across threads
// while being written (DESIGN.md §8.1).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace relogic::runtime {

/// Monotonic event count.
class Counter {
 public:
  void add(std::int64_t delta = 1) { value_ += delta; }
  std::int64_t value() const { return value_; }

 private:
  std::int64_t value_ = 0;
};

/// Sampled scalar reporting the mean over its samples. `set` *accumulates*
/// a sample: recording two samples on one registry and recording them on
/// two registries then merging report the same mean/count. (It used to
/// overwrite — last-write-wins before a merge, mean after — which silently
/// discarded earlier samples; the accumulate semantics make the two paths
/// agree.)
class Gauge {
 public:
  void set(double v) {
    sum_ += v;
    ++samples_;
  }
  void merge(const Gauge& other) {
    sum_ += other.sum_;
    samples_ += other.samples_;
  }
  double mean() const { return samples_ ? sum_ / samples_ : 0.0; }
  double sum() const { return sum_; }
  int samples() const { return samples_; }

 private:
  double sum_ = 0.0;
  int samples_ = 0;
};

/// Fixed-bucket latency histogram. Bucket i counts observations
/// <= bounds[i] (and greater than bounds[i-1]); one implicit overflow
/// bucket catches the rest. Bounds are in the metric's own unit
/// (milliseconds for every latency metric in the fleet runtime).
class Histogram {
 public:
  /// Default bounds: 1-2-5 decades from 10 us to 10 s, in ms.
  static std::vector<double> default_latency_bounds_ms();

  Histogram() : Histogram(default_latency_bounds_ms()) {}
  explicit Histogram(std::vector<double> bounds);

  void observe(double v);

  std::int64_t count() const { return count_; }
  double sum() const { return sum_; }
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  double mean() const { return count_ ? sum_ / count_ : 0.0; }
  /// Quantile estimate: upper bound of the bucket holding the q-th
  /// observation (conservative; exact for values on bucket boundaries).
  double quantile(double q) const;

  const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket counts; back() is the overflow bucket.
  const std::vector<std::int64_t>& bucket_counts() const { return counts_; }

  /// Adds another histogram's observations. Bounds must be identical.
  void merge(const Histogram& other);

  /// Cross-checks the internal invariants: one bucket per bound plus the
  /// overflow bucket, count == sum of bucket counts, ordered min/max and a
  /// finite sum whenever any observation was recorded. Throws AuditError
  /// (common/audit.hpp) naming `what` on the first violation. Always
  /// compiled; periodic call sites are gated on audit_enabled().
  void audit(const std::string& what) const;

 private:
  std::vector<double> bounds_;
  std::vector<std::int64_t> counts_;  // bounds_.size() + 1 entries
  std::int64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Named registry of metrics with deterministic JSON export.
class Telemetry {
 public:
  Counter& counter(const std::string& name) { return counters_[name]; }
  Gauge& gauge(const std::string& name) { return gauges_[name]; }
  Histogram& histogram(const std::string& name);
  Histogram& histogram(const std::string& name, std::vector<double> bounds);

  std::int64_t counter_value(const std::string& name) const;
  bool has_histogram(const std::string& name) const {
    return histograms_.contains(name);
  }

  /// Read-only views for exporters (e.g. trace counter tracks); std::map,
  /// so iteration order is deterministic.
  const std::map<std::string, Counter>& counters() const { return counters_; }
  const std::map<std::string, Gauge>& gauges() const { return gauges_; }
  const std::map<std::string, Histogram>& histograms() const {
    return histograms_;
  }

  /// Folds another registry into this one (counters add, histograms merge,
  /// gauges average).
  void merge(const Telemetry& other);

  /// Audits every metric in the registry (see Histogram::audit; gauges must
  /// carry a non-negative sample count). `where` prefixes the failure
  /// message so fleet audits can name the offending device.
  void audit(const std::string& where) const;

  /// Deterministic JSON object (keys sorted, fixed float formatting).
  /// `indent` spaces of additional indentation are applied to every line
  /// after the first so the object nests cleanly into larger documents.
  std::string to_json(int indent = 0) const;

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
};

/// Fixed float rendering used by all runtime JSON (shortest round-trippable
/// form would vary across libcs; "%.6g" is stable and plenty for telemetry).
std::string json_number(double v);

/// JSON string literal with the control characters every exporter must
/// escape (shared by the telemetry and metrics-timeline exporters).
std::string json_quoted(const std::string& s);

}  // namespace relogic::runtime
