#include "relogic/runtime/batcher.hpp"

#include <utility>

#include "relogic/common/audit.hpp"
#include "relogic/common/logging.hpp"

namespace relogic::runtime {

TransactionBatcher::TransactionBatcher(config::ConfigController& controller,
                                       BatchOptions options)
    : controller_(&controller), options_(options) {}

void TransactionBatcher::enqueue(const config::ConfigOp& op) {
  if (op.empty()) return;
  // One frame-set computation per op; the unbatched-baseline preview, the
  // legality check, the max_columns / max_frames gates AND the flush-time
  // apply (through the running union) all share it. Stats are only
  // recorded once the op is past the checks that can throw, so a rejected
  // op never skews the batched-vs-unbatched comparison.
  controller_->frames_of(op, op_frames_);

  // An op that writes a LUT-RAM cell config must apply alone: the live
  // LUT-RAM column check runs once per transaction against the fabric
  // state at apply time, and this is the one case where checking a merged
  // op diverges from checking each op in sequence (a later op touching the
  // column of a RAM cell an earlier pending op just created would slip
  // through the merged check's exemption set).
  bool writes_lut_ram = false;
  for (const config::ConfigAction& a : op.actions) {
    if (const auto* cw = std::get_if<config::CellWrite>(&a)) {
      if (cw->cfg.used && cw->cfg.lut_mode == fabric::LutMode::kRam)
        writes_lut_ram = true;
    }
  }

  if (options_.max_ops <= 1 || writes_lut_ram) {
    // Flush *before* previewing the baseline: with the pending batch
    // applied, the solo path's unbatched accounting is exact under
    // kDirtyFrame (the op previews against the very state the unbatched
    // sequence would see), not an estimate.
    flush();
    const auto alone = controller_->preview(op, op_frames_);
    const auto r =
        controller_->apply(op, op_frames_, options_.allow_lut_ram_columns);
    ++stats_.ops_in;
    stats_.unbatched_column_writes += alone.columns_touched;
    stats_.unbatched_frames += alone.frames_written;
    stats_.unbatched_frames_skipped += alone.frames_skipped;
    stats_.unbatched_time += alone.time;
    ++stats_.transactions;
    stats_.column_writes += r.columns_touched;
    stats_.frames_written += r.frames_written;
    stats_.frames_skipped += r.frames_skipped;
    stats_.time += r.time;
    // Solo ops commit outside flush(); audit this transaction boundary too.
    if constexpr (relogic::audit_enabled()) controller_->audit_image();
    return;
  }

  // Exact per-op legality: check this op now, against the current fabric
  // with the pending batch's cell writes as extra exemptions. Pending ops
  // never create LUT-RAM cells (isolated above), so a RAM cell rewritten
  // by a pending op is guaranteed dead by the time this op would apply in
  // the unbatched sequence — exempting exactly those cells reproduces the
  // per-op check's verdict. The merged apply()'s own check is strictly
  // weaker and serves as a safety net only.
  if (!options_.allow_lut_ram_columns)
    controller_->check_lut_ram_columns(op, op_frames_, &pending_rewrites_);

  // Merge-path baseline: previewed against the fabric as it stands at
  // enqueue (before the pending batch applies) — an estimate under
  // kDirtyFrame, exact otherwise (see the header comment).
  const auto alone = controller_->preview(op, op_frames_);

  ++stats_.ops_in;
  stats_.unbatched_column_writes += alone.columns_touched;
  stats_.unbatched_frames += alone.frames_written;
  stats_.unbatched_frames_skipped += alone.frames_skipped;
  stats_.unbatched_time += alone.time;

  if (pending_ops_ > 0 && (options_.max_columns > 0 || options_.max_frames > 0)) {
    merged_scratch_ = pending_frames_;
    merged_scratch_.union_via(
        op_frames_, [k = &controller_->kernel()](const std::int32_t* a, int na,
                                                 const std::int32_t* b, int nb,
                                                 std::vector<std::int32_t>& out) {
          k->union_ids(a, na, b, nb, out);
        });
    if (options_.max_columns > 0 &&
        controller_->column_count(merged_scratch_) > options_.max_columns) {
      flush();
    } else if (options_.max_frames > 0 &&
               static_cast<int>(merged_scratch_.size()) > options_.max_frames) {
      flush();
    }
  }

  if (pending_ops_ == 0) {
    pending_ = op;
    pending_frames_ = op_frames_;
    pending_ops_ = 1;
  } else {
    pending_.label += " + " + op.label;
    pending_.actions.insert(pending_.actions.end(), op.actions.begin(),
                            op.actions.end());
    pending_frames_.union_via(
        op_frames_, [k = &controller_->kernel()](const std::int32_t* a, int na,
                                                 const std::int32_t* b, int nb,
                                                 std::vector<std::int32_t>& out) {
          k->union_ids(a, na, b, nb, out);
        });
    ++pending_ops_;
  }
  for (const config::ConfigAction& a : op.actions) {
    if (const auto* cw = std::get_if<config::CellWrite>(&a))
      pending_rewrites_.insert({cw->clb.row, cw->clb.col, cw->cell});
  }
  if (pending_ops_ >= options_.max_ops) flush();
}

void TransactionBatcher::flush() {
  if (pending_ops_ == 0) return;
  const int batched = std::exchange(pending_ops_, 0);
  config::ConfigOp op = std::move(pending_);
  pending_ = config::ConfigOp{};
  pending_rewrites_.clear();
  // The running union IS frames_of(op) for the merged op, so apply skips
  // the re-mapping pass entirely.
  const auto r =
      controller_->apply(op, pending_frames_, options_.allow_lut_ram_columns);
  pending_frames_.clear();
  ++stats_.transactions;
  stats_.column_writes += r.columns_touched;
  stats_.frames_written += r.frames_written;
  stats_.frames_skipped += r.frames_skipped;
  stats_.time += r.time;
  RELOGIC_LOG(kDebug) << "batched " << batched << " config ops into one "
                      << r.columns_touched << "-column transaction ("
                      << r.time.to_string() << ")";
  // Flush boundary: in audit builds, cross-check the digest mirror against
  // a full recompute now that the merged transaction has committed.
  if constexpr (relogic::audit_enabled()) controller_->audit_image();
}

}  // namespace relogic::runtime
