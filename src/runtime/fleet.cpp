#include "relogic/runtime/fleet.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <limits>
#include <memory>
#include <numeric>
#include <sstream>
#include <thread>
#include <utility>

#include "relogic/common/audit.hpp"
#include "relogic/common/logging.hpp"
#include "relogic/common/thread_annotations.hpp"
#include "relogic/reloc/cost.hpp"

namespace relogic::runtime {

std::string to_string(DispatchPolicy p) {
  switch (p) {
    case DispatchPolicy::kRoundRobin:
      return "round-robin";
    case DispatchPolicy::kLeastLoaded:
      return "least-loaded";
    case DispatchPolicy::kBestFit:
      return "best-fit";
  }
  return "?";
}

std::optional<DispatchPolicy> parse_dispatch_policy(const std::string& name) {
  if (name == "rr" || name == "round-robin") return DispatchPolicy::kRoundRobin;
  if (name == "ll" || name == "least-loaded")
    return DispatchPolicy::kLeastLoaded;
  if (name == "bf" || name == "best-fit") return DispatchPolicy::kBestFit;
  return std::nullopt;
}

std::string to_string(AdmissionMode m) {
  switch (m) {
    case AdmissionMode::kOnline:
      return "online";
    case AdmissionMode::kOffline:
      return "offline";
  }
  return "?";
}

std::optional<AdmissionMode> parse_admission_mode(const std::string& name) {
  if (name == "online") return AdmissionMode::kOnline;
  if (name == "offline") return AdmissionMode::kOffline;
  return std::nullopt;
}

ConfigPlaneSpec FleetConfig::default_plane() const {
  ConfigPlaneSpec plane = config_plane;
  if (use_selectmap && plane.port == config::PortBackend::kJtag)
    plane.port = config::PortBackend::kSelectMap8;
  return plane;
}

ConfigPlaneSpec FleetConfig::plane_for(int d) const {
  const auto it = device_config_planes.find(d);
  return it != device_config_planes.end() ? it->second : default_plane();
}

FleetManager::FleetManager(FleetConfig config) : cfg_(std::move(config)) {
  RELOGIC_CHECK(cfg_.devices >= 1);
  RELOGIC_CHECK(cfg_.rows >= 1 && cfg_.cols >= 1);
  RELOGIC_CHECK(cfg_.overlap >= 1);
  RELOGIC_CHECK(cfg_.health.fault_rate >= 0.0 &&
                cfg_.health.fault_rate <= 1.0);
  RELOGIC_CHECK(cfg_.health.window_cols >= 1);
  RELOGIC_CHECK(cfg_.health.step_period_ms > 0.0);
  // Resolve the kernel-backend name now so a typo fails at fleet start,
  // not on a pool thread mid-run.
  if (!cfg_.kernel.empty())
    RELOGIC_CHECK_MSG(config::kernel_backend(cfg_.kernel) != nullptr,
                      "unknown kernel backend \"" + cfg_.kernel + "\"");
  // A plane override for a device that doesn't exist would silently turn a
  // "heterogeneous" run homogeneous — reject it up front.
  for (const auto& [d, plane] : cfg_.device_config_planes)
    RELOGIC_CHECK_MSG(d >= 0 && d < cfg_.devices,
                      "device_config_planes override for nonexistent device " +
                          std::to_string(d));
  ledger_.resize(static_cast<std::size_t>(cfg_.devices));
  quarantined_.assign(static_cast<std::size_t>(cfg_.devices), false);
}

void FleetManager::set_tracer(obs::Tracer* tracer) {
  tracer_ = tracer;
  tr_admission_ = {};
  tr_queue_ = {};
  tr_health_ = {};
  tr_meter_ = {};
  device_trace_.clear();
  if (!tracer) return;
  // Track registration order is the export order; fixed here, once, on the
  // caller's thread, so the trace is identical no matter how many workers
  // later write into the per-device tracks.
  tr_admission_ = tracer->track(0, 0, "fleet", "admission");
  tr_queue_ = tracer->track(0, 1, "fleet", "queue");
  tr_health_ = tracer->track(0, 2, "fleet", "health");
  tr_meter_ = tracer->track(0, 3, "fleet", "telemetry");
  device_trace_.resize(static_cast<std::size_t>(cfg_.devices));
  for (int d = 0; d < cfg_.devices; ++d) {
    const std::string proc = "device " + std::to_string(d);
    DeviceTrace& t = device_trace_[static_cast<std::size_t>(d)];
    t.sched = tracer->track(d + 1, 0, proc, "scheduler");
    t.tasks = tracer->track(d + 1, 1, proc, "tasks");
    t.port = tracer->track(d + 1, 2, proc, "config-port");
    t.health = tracer->track(d + 1, 3, proc, "health");
    t.meter = tracer->track(d + 1, 4, proc, "telemetry");
  }
}

void FleetManager::ensure_health_state() {
  if (!cfg_.health.enabled() || !fault_maps_.empty()) return;
  const auto geom = fabric::DeviceGeometry::tiny(cfg_.rows, cfg_.cols);
  fault_maps_.reserve(static_cast<std::size_t>(cfg_.devices));
  fault_detect_ms_.resize(static_cast<std::size_t>(cfg_.devices));
  for (int d = 0; d < cfg_.devices; ++d) {
    // Golden-ratio mix keeps per-device fault populations independent while
    // staying a pure function of (fault_seed, device).
    const std::uint64_t seed =
        cfg_.health.fault_seed + 0x9e3779b97f4a7c15ull *
                                     (static_cast<std::uint64_t>(d) + 1);
    health::FaultInjector injector(cfg_.rows, cfg_.cols, geom.cells_per_clb,
                                   cfg_.health.fault_rate, seed);
    fault_maps_.push_back(injector.generate());

    // Admission-side detection-time estimate: a faulty CLB in column c is
    // found when the first-rotation window reaches c. The device-side sweep
    // may drift later (occupied windows retry), so these are estimates —
    // exactly like every other quantity on the admission ledger.
    auto& detect = fault_detect_ms_[static_cast<std::size_t>(d)];
    ClbCoord last{-1, -1};
    for (const auto& rec : fault_maps_.back().records()) {
      if (rec.clb == last) continue;  // one entry per faulty CLB
      last = rec.clb;
      detect.push_back(
          (rec.clb.col / cfg_.health.window_cols + 1) *
          cfg_.health.step_period_ms);
    }
    std::sort(detect.begin(), detect.end());
  }
}

int FleetManager::detected_faulty_clbs(int d, SimTime t) const {
  if (fault_detect_ms_.empty()) return 0;
  const auto& detect = fault_detect_ms_[static_cast<std::size_t>(d)];
  return static_cast<int>(std::upper_bound(detect.begin(), detect.end(),
                                           t.milliseconds()) -
                          detect.begin());
}

int FleetManager::capacity_at(int d, SimTime t) const {
  return cfg_.rows * cfg_.cols - detected_faulty_clbs(d, t);
}

std::pair<int, double> FleetManager::least_backlogged_peer(
    SimTime now, int exclude, int min_capacity) const {
  int best = -1;
  double best_b = std::numeric_limits<double>::max();
  for (int d = 0; d < cfg_.devices; ++d) {
    if (d == exclude) continue;
    if (quarantined_[static_cast<std::size_t>(d)] &&
        quarantined_count_ < cfg_.devices)
      continue;
    if (capacity_at(d, now) < min_capacity) continue;
    const double b = backlog_ms(d, now);
    if (b < best_b) {
      best_b = b;
      best = d;
    }
  }
  return {best, best_b};
}

void FleetManager::maybe_quarantine(SimTime now) {
  if (cfg_.health.quarantine_threshold <= 0.0 || fault_maps_.empty() ||
      cfg_.devices < 2)
    return;
  const int total = cfg_.rows * cfg_.cols;
  for (int d = 0; d < cfg_.devices; ++d) {
    if (quarantined_[static_cast<std::size_t>(d)]) continue;
    const double density =
        static_cast<double>(detected_faulty_clbs(d, now)) / total;
    if (density <= cfg_.health.quarantine_threshold) continue;
    quarantined_[static_cast<std::size_t>(d)] = true;
    ++quarantined_count_;
    quarantine_times_.push_back(now);
    if (tr_health_)
      tr_health_.instant("health", "quarantine device " + std::to_string(d),
                         now,
                         {obs::arg("device", d),
                          obs::arg("fault_density", density)});
    RELOGIC_LOG(kInfo) << "device " << d << " quarantined (fault density "
                       << density << ")";
    // With the whole fleet quarantined there is no healthier peer —
    // shuffling queued work between equally degraded devices is pure churn
    // (same reasoning as the rebalancer under fleet-wide overload).
    if (quarantined_count_ >= cfg_.devices) continue;

    // Evacuate queued-but-not-started requests onto healthy peers (the
    // least-backlogged one re-ranked per migration, same as the
    // rebalancer; a request no healthy peer can hold stays and drains on
    // the quarantined device). Requests already (estimatedly) started
    // stay: their configuration is on the device and they will drain.
    auto& entries = ledger_[static_cast<std::size_t>(d)];
    for (std::size_t i = entries.size(); i-- > 0;) {
      if (entries[i].est_start <= now) continue;
      const int dst = least_backlogged_peer(now, d, entries[i].clbs).first;
      if (dst < 0) continue;
      const std::size_t qi = entries[i].req;
      entries.erase(entries.begin() + static_cast<std::ptrdiff_t>(i));
      place(qi, dst, now, /*queue_aware=*/true);
      ++rebalanced_;
      if (tr_health_)
        tr_health_.instant("health", "evacuate " + queue_[qi].app.name, now,
                           {obs::arg("from", d), obs::arg("to", dst)});
    }
    refresh_queued_estimates(d, now);
  }
}

void FleetManager::submit(const sched::TaskArrival& task) {
  sched::AppSpec app;
  app.name = task.fn.name;
  app.functions = {task.fn};
  app.start = task.arrival;
  submit(app);
}

void FleetManager::submit(const sched::AppSpec& app) {
  RELOGIC_CHECK_MSG(!app.functions.empty(), "application with no functions");
  Request req;
  req.app = app;
  for (const auto& fn : app.functions) {
    req.footprint_clbs = std::max(req.footprint_clbs, fn.clbs());
    req.duration += fn.duration;
  }
  queue_.push_back(std::move(req));
  dispatched_ = false;
}

void FleetManager::submit_all(const std::vector<sched::TaskArrival>& tasks) {
  for (const auto& t : tasks) submit(t);
}

int FleetManager::free_at(int d, SimTime t) const {
  // Committed load: every placed request occupies its footprint until its
  // estimated end, whether it has (estimatedly) started or is still queued
  // on the device — queued work is capacity the device has promised away.
  // Detected-faulty CLBs are capacity the device no longer has at all.
  int used = 0;
  for (const LedgerEntry& e : ledger_[static_cast<std::size_t>(d)])
    if (e.est_end > t) used += e.clbs;
  return cfg_.rows * cfg_.cols - detected_faulty_clbs(d, t) - used;
}

double FleetManager::backlog_ms(int d, SimTime t) const {
  double ms = 0.0;
  for (const LedgerEntry& e : ledger_[static_cast<std::size_t>(d)])
    if (e.est_end > t) ms += (e.est_end - std::max(e.est_start, t)).milliseconds();
  return ms;
}

SimTime FleetManager::est_start_in(const std::vector<LedgerEntry>& entries,
                                   SimTime t, int clbs, int capacity) const {
  int free = capacity;
  for (const LedgerEntry& e : entries)
    if (e.est_end > t) free -= e.clbs;
  if (free >= clbs) return t;
  // Walk future departures in end order, crediting capacity back until the
  // request fits. Everything on the ledger ends eventually; requests are
  // only placed on devices whose (fault-degraded) capacity covered them at
  // placement time, so the walk normally succeeds. If detection has since
  // shrunk capacity below clbs, the final fallback books the last
  // departure — a conservative estimate for a request the device-side
  // scheduler will end up rejecting.
  std::vector<std::pair<SimTime, int>> ends;
  for (const LedgerEntry& e : entries)
    if (e.est_end > t) ends.emplace_back(e.est_end, e.clbs);
  std::sort(ends.begin(), ends.end());
  for (const auto& [end, c] : ends) {
    free += c;
    if (free >= clbs) return end;
  }
  return ends.empty() ? t : ends.back().first;
}

SimTime FleetManager::est_start_on(int d, SimTime t, int clbs) const {
  return est_start_in(ledger_[static_cast<std::size_t>(d)], t, clbs,
                      cfg_.rows * cfg_.cols - detected_faulty_clbs(d, t));
}

void FleetManager::place(std::size_t qi, int d, SimTime now,
                         bool queue_aware) {
  const Request& req = queue_[qi];
  LedgerEntry e;
  e.req = qi;
  e.clbs = req.footprint_clbs;
  // Queue-aware (online) placement folds estimated on-device queueing into
  // the entry; the offline planner books every request as starting at its
  // arrival, exactly as the PR 1 planner did.
  e.est_start = queue_aware ? est_start_on(d, now, req.footprint_clbs) : now;
  e.est_end = e.est_start + req.duration;
  ledger_[static_cast<std::size_t>(d)].push_back(e);
  assignment_[qi] = d;
}

void FleetManager::refresh_queued_estimates(int d, SimTime now) {
  // A shed entry no longer constrains the device's queue: re-derive the
  // remaining queued entries' starts, each against only the entries placed
  // before it — exactly the computation its original placement ran, minus
  // whatever has been shed since. est_start therefore never grows, and a
  // refresh never increases the device's backlog.
  auto& entries = ledger_[static_cast<std::size_t>(d)];
  std::vector<LedgerEntry> rebuilt;
  rebuilt.reserve(entries.size());
  for (const LedgerEntry& e : entries) {
    if (e.est_start <= now) {
      rebuilt.push_back(e);  // (estimatedly) running: pinned
      continue;
    }
    LedgerEntry q = e;
    q.est_start =
        est_start_in(rebuilt, now, q.clbs,
                     cfg_.rows * cfg_.cols - detected_faulty_clbs(d, now));
    q.est_end = q.est_start + queue_[q.req].duration;
    rebuilt.push_back(q);
  }
  entries = std::move(rebuilt);
}

void FleetManager::rebalance(SimTime now) {
  if (cfg_.rebalance_backlog_ms <= 0.0 || cfg_.devices < 2) return;
  // A few migrations per admission event are enough — the next event
  // continues the work. Unbounded draining here would make a single event
  // O(queue), and under fleet-wide overload (every device past the
  // threshold) there is nothing useful to shed anyway: the dst-side
  // threshold check below keeps saturated fleets from churning requests
  // between equally drowned devices.
  int budget = cfg_.devices;
  bool moved = true;
  while (moved && budget > 0) {
    moved = false;
    // One backlog computation per device per round (re-ranked after every
    // migration, since a move changes both ends).
    std::vector<double> backlog(static_cast<std::size_t>(cfg_.devices));
    std::vector<std::pair<double, int>> over;
    for (int d = 0; d < cfg_.devices; ++d) {
      backlog[static_cast<std::size_t>(d)] = backlog_ms(d, now);
      if (backlog[static_cast<std::size_t>(d)] > cfg_.rebalance_backlog_ms)
        over.emplace_back(-backlog[static_cast<std::size_t>(d)], d);
    }
    // Every device over the threshold may shed, most backlogged first.
    std::sort(over.begin(), over.end());

    for (const auto& [neg_b, src] : over) {
      const double src_b = -neg_b;
      const auto [dst, dst_b] = least_backlogged_peer(now, src,
                                                      /*min_capacity=*/0);
      // Only a peer with headroom receives migrations.
      if (dst >= 0 && dst_b > cfg_.rebalance_backlog_ms) continue;

      // Candidates: queued-but-not-started requests, most recently placed
      // (least sunk estimate) first. A request whose est_start has passed
      // is treated as running and never migrated. The move must strictly
      // reduce the imbalance — the destination, with the request added,
      // stays below the source's old backlog — which is what guarantees
      // the outer loop terminates.
      auto& entries = ledger_[static_cast<std::size_t>(src)];
      for (std::size_t i = entries.size(); i-- > 0 && !moved;) {
        if (entries[i].est_start <= now) continue;
        const double work =
            (entries[i].est_end - entries[i].est_start).milliseconds();
        if (dst < 0 || dst_b + work >= src_b) continue;
        // A fault-degraded destination too small for this request cannot
        // receive it (no-op on a healthy fleet).
        if (entries[i].clbs > capacity_at(dst, now)) continue;
        const std::size_t qi = entries[i].req;
        entries.erase(entries.begin() + static_cast<std::ptrdiff_t>(i));
        place(qi, dst, now, /*queue_aware=*/true);
        refresh_queued_estimates(src, now);
        ++rebalanced_;
        --budget;
        moved = true;
        if (tr_admission_)
          tr_admission_.instant("dispatch",
                                "rebalance " + queue_[qi].app.name, now,
                                {obs::arg("from", src), obs::arg("to", dst)});
        RELOGIC_LOG(kDebug) << "rebalanced request " << qi << " device "
                            << src << " -> " << dst;
      }
      if (moved) break;  // backlogs changed: re-rank before the next move
    }
  }
}

int FleetManager::pick_device(SimTime now, int footprint) {
  // Quarantined devices receive nothing new; if the whole fleet is
  // quarantined the policies fall back to considering everyone (degraded
  // service beats none).
  auto eligible = [&](int d) {
    return quarantined_count_ >= cfg_.devices ||
           !quarantined_[static_cast<std::size_t>(d)];
  };
  // free_at can go below zero on an oversubscribed fleet (the ledger has
  // no capacity feedback), so the argmax seeds with a sentinel no device
  // can fail to beat. Lowest id wins ties.
  auto least_loaded = [&] {
    int best = -1;
    int best_free = std::numeric_limits<int>::min();
    for (int d = 0; d < cfg_.devices; ++d) {
      if (!eligible(d)) continue;
      const int f = free_at(d, now);
      if (f > best_free) {
        best_free = f;
        best = d;
      }
    }
    return best >= 0 ? best : 0;
  };

  switch (cfg_.dispatch) {
    case DispatchPolicy::kRoundRobin: {
      // Skip quarantined slots while preserving the cycle order.
      for (int tries = 0; tries < cfg_.devices; ++tries) {
        const int pick = rr_next_;
        rr_next_ = (rr_next_ + 1) % cfg_.devices;
        if (eligible(pick)) return pick;
      }
      return rr_next_;
    }
    case DispatchPolicy::kLeastLoaded:
      return least_loaded();
    case DispatchPolicy::kBestFit: {
      // Tightest estimated fit; a device already too full to (estimatedly)
      // hold the footprint is skipped, falling back to least-loaded.
      int pick = -1;
      int best_slack = -1;
      for (int d = 0; d < cfg_.devices; ++d) {
        if (!eligible(d)) continue;
        const int slack = free_at(d, now) - footprint;
        if (slack >= 0 && (best_slack < 0 || slack < best_slack)) {
          best_slack = slack;
          pick = d;
        }
      }
      return pick >= 0 ? pick : least_loaded();
    }
  }
  return 0;
}

const std::vector<int>& FleetManager::dispatch() {
  if (dispatched_) return assignment_;
  ensure_health_state();
  const bool online = cfg_.admission == AdmissionMode::kOnline;
  if (online) {
    assignment_.resize(queue_.size(), -1);
  } else {
    // The offline planner re-plans the whole batch from scratch (exactly
    // the PR 1 planner: arrival-sorted, departures reclaim capacity, but
    // no queue estimates, no rebalancing, no incrementality).
    assignment_.assign(queue_.size(), -1);
    for (auto& l : ledger_) l.clear();
    placed_ = 0;
    clock_ = SimTime::zero();
    rr_next_ = 0;
    // Quarantine is an online-admission behaviour (it migrates queued
    // work); the offline planner replans from a clean slate.
    quarantined_.assign(static_cast<std::size_t>(cfg_.devices), false);
    quarantined_count_ = 0;
    quarantine_times_.clear();
  }

  // Event order over the not-yet-placed requests: arrival time, submission
  // order as tie-break. The admission clock never runs backwards — a
  // request submitted late with an early arrival is admitted at the time
  // admission actually happens.
  std::vector<std::size_t> order(queue_.size() - placed_);
  std::iota(order.begin(), order.end(), placed_);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return queue_[a].app.start < queue_[b].app.start;
                   });

  for (std::size_t qi : order) {
    const Request& req = queue_[qi];
    clock_ = std::max(clock_, req.app.start);
    const SimTime now = clock_;
    if (tr_admission_) {
      tr_admission_.instant(
          "admission", req.app.name, now,
          {obs::arg_ms("arrival", req.app.start),
           obs::arg("footprint_clbs", req.footprint_clbs),
           obs::arg_ms("duration", req.duration),
           obs::arg("functions", req.app.functions.size())});
      set_log_context("fleet", now);
    }

    // The clock is monotone and every ledger query filters on est_end >
    // now, so departed entries can be dropped for good — this keeps the
    // per-event scans proportional to the *live* entry count instead of
    // every request ever placed.
    for (auto& l : ledger_)
      std::erase_if(l, [&](const LedgerEntry& e) { return e.est_end <= now; });

    // Geometric admission: a request no device can ever hold is rejected
    // here rather than bouncing through every device queue.
    bool fits = true;
    for (const auto& fn : req.app.functions)
      fits = fits && fn.height <= cfg_.rows && fn.width <= cfg_.cols;
    if (!fits) {
      if (tr_admission_)
        tr_admission_.instant("admission", req.app.name + " rejected", now,
                              {obs::arg("reason", "oversized")});
      continue;  // assignment stays -1; round-robin keeps its slot
    }

    if (online) maybe_quarantine(now);
    int d = pick_device(now, req.footprint_clbs);
    // Fault-degraded capacity guard: a device whose non-faulty CLB count
    // has shrunk below the footprint can never run the request (masking is
    // permanent). Divert to the least-backlogged device that still can;
    // when none exists the request is admission-rejected.
    if (!fault_maps_.empty() &&
        req.footprint_clbs > capacity_at(d, now)) {
      d = least_backlogged_peer(now, /*exclude=*/-1, req.footprint_clbs)
              .first;
      if (d < 0) {
        if (tr_admission_)
          tr_admission_.instant("admission", req.app.name + " rejected", now,
                                {obs::arg("reason", "fault-degraded")});
        continue;  // assignment stays -1
      }
    }
    place(qi, d, now, /*queue_aware=*/online);
    if (tr_admission_) {
      const LedgerEntry& e = ledger_[static_cast<std::size_t>(d)].back();
      tr_admission_.complete(
          "dispatch", req.app.name, now, SimTime::zero(),
          {obs::arg("policy", to_string(cfg_.dispatch)), obs::arg("device", d),
           obs::arg("footprint_clbs", req.footprint_clbs),
           obs::arg_ms("est_start", e.est_start)});
      // Estimated queue wait on the chosen device, as booked at admission
      // (rebalancing may revise it later; this lane records the decision).
      tr_queue_.complete("queue", req.app.name, now, e.est_start - now,
                         {obs::arg("device", d)});
    }
    if (online) rebalance(now);
  }
  placed_ = queue_.size();
  dispatched_ = true;
  // Admission-pass boundary: the ledger, the assignment vector and the
  // request queue must reconcile before any device run consumes them.
  if constexpr (relogic::audit_enabled()) audit_admission();
  return assignment_;
}

void FleetManager::audit_admission() const {
  RELOGIC_AUDIT_CHECK(assignment_.size() == queue_.size(), "FleetManager",
                      "assignment vector diverged from the request queue (" +
                          std::to_string(assignment_.size()) + " vs " +
                          std::to_string(queue_.size()) + ")");
  RELOGIC_AUDIT_CHECK(
      ledger_.size() == static_cast<std::size_t>(cfg_.devices), "FleetManager",
      "per-device ledger count diverged from the fleet size");
  for (int a : assignment_)
    RELOGIC_AUDIT_CHECK(a >= -1 && a < cfg_.devices, "FleetManager",
                        "assignment references nonexistent device " +
                            std::to_string(a));
  // Live entries only: dispatch() drops an entry for good once its est_end
  // has passed the admission clock, so a placed-then-departed request is
  // *expected* to be absent — the ledger mirrors remaining work, not
  // admission history (that is assignment_'s job).
  std::vector<std::uint8_t> on_ledger(queue_.size(), 0);
  for (int d = 0; d < cfg_.devices; ++d) {
    for (const LedgerEntry& e : ledger_[static_cast<std::size_t>(d)]) {
      RELOGIC_AUDIT_CHECK(e.req < queue_.size(), "FleetManager",
                          "ledger entry references request " +
                              std::to_string(e.req) + " beyond the queue");
      RELOGIC_AUDIT_CHECK(
          assignment_[e.req] == d, "FleetManager",
          "request " + std::to_string(e.req) + " booked on device " +
              std::to_string(d) + " but assigned to device " +
              std::to_string(assignment_[e.req]));
      RELOGIC_AUDIT_CHECK(!on_ledger[e.req], "FleetManager",
                          "request " + std::to_string(e.req) +
                              " appears on more than one ledger");
      on_ledger[e.req] = 1;
      RELOGIC_AUDIT_CHECK(e.est_start <= e.est_end, "FleetManager",
                          "request " + std::to_string(e.req) +
                              " booked with est_start after est_end");
      RELOGIC_AUDIT_CHECK(
          e.clbs == queue_[e.req].footprint_clbs, "FleetManager",
          "request " + std::to_string(e.req) +
              " booked with a footprint diverging from its request (" +
              std::to_string(e.clbs) + " vs " +
              std::to_string(queue_[e.req].footprint_clbs) + ")");
    }
  }
}

DeviceReport FleetManager::run_device(
    int device, const std::vector<sched::AppSpec>& apps) const {
  DeviceReport report;
  report.device = device;

  const auto geom = fabric::DeviceGeometry::tiny(cfg_.rows, cfg_.cols);
  // Per-device configuration plane: port backend + write granularity flow
  // into everything that prices configuration traffic — the scheduler's
  // move costing (and through it the sweep pricing of the health rover and
  // the max_move_cost_fraction gate), and the measured replay below.
  const ConfigPlaneSpec plane = cfg_.plane_for(device);
  const std::unique_ptr<config::ConfigPort> port_owner =
      config::make_port(plane.port);
  const config::ConfigPort& port = *port_owner;
  const reloc::RelocationCostModel cost(geom, port, {}, plane.granularity);

  const DeviceTrace tr = device_trace_.empty()
                             ? DeviceTrace{}
                             : device_trace_[static_cast<std::size_t>(device)];

  sched::Scheduler scheduler(cfg_.rows, cfg_.cols, cost, cfg_.sched);
  scheduler.set_trace({tr.sched, tr.tasks, tr.health});
  // Sim-clock metrics sampling: the sampler (and its live registry) lives
  // on this worker's stack and writes into this worker's own report slot —
  // thread-confined like everything else here (DESIGN.md §8.1). Samples
  // land on the device's simulated clock, so the timeline is byte-identical
  // across thread counts.
  obs::TimelineSampler sampler(&report.timeline, cfg_.metrics.interval());
  if (cfg_.metrics.enabled()) {
    sampler.set_meter(tr.meter);
    scheduler.set_metrics(&sampler);
  }
  // Per-device roving self-test: the worker owns a private copy of the
  // device's injected fault map (run_device is const and runs on a pool
  // thread), so detections stay thread-local and deterministic.
  health::FaultMap faults;
  if (cfg_.health.enabled()) {
    if (!fault_maps_.empty())
      faults = fault_maps_[static_cast<std::size_t>(device)];
    else
      faults = health::FaultMap(cfg_.rows, cfg_.cols, geom.cells_per_clb);
    sched::SelfTestConfig st;
    st.enabled = true;
    st.window_cols = cfg_.health.window_cols;
    st.step_period_ms = cfg_.health.step_period_ms;
    st.cells_per_clb = geom.cells_per_clb;
    scheduler.enable_selftest(st, &faults);
  }
  report.stats = scheduler.run_apps(apps, cfg_.overlap);

  // Replay the configuration traffic of every placed task against a real
  // fabric through the transaction batcher, so the report carries measured
  // (not estimated) transaction counts for batched vs unbatched. Workers
  // running this concurrently race to acquire_routing_skeleton: the first
  // of a geometry builds its connectivity once, everyone else shares the
  // immutable skeleton and allocates only the per-device occupancy overlay
  // — device bring-up is O(nodes), not the ~100 ms edge rebuild it was.
  fabric::Fabric fab(geom);
  if (cfg_.health.enabled()) faults.install(fab);
  // Kernel backends are stateless const singletons — safe to share across
  // the pool's workers (kernel.hpp).
  const config::KernelBackend* kernel =
      cfg_.kernel.empty() ? nullptr : config::kernel_backend(cfg_.kernel);
  config::ConfigController controller(fab, port, plane.granularity, kernel);
  controller.set_trace(tr.port);
  BatchOptions bopt = cfg_.batch;
  if (!cfg_.batch_config) bopt.max_ops = 1;
  TransactionBatcher batcher(controller, bopt);

  // Each task contributes a per-task op *sequence* — its initial partial
  // configuration at config_start and the teardown clear at finish — so the
  // replayed stream carries the redundancy a real device sees (configure,
  // run, clear, reconfigure the freed slot). That is exactly the stream
  // where kDirtyFrame's cancellation wins at fleet scale: a configure and
  // its clear coalesced into one batch XOR out to nothing, and the skip
  // lands in frame_writes_dirty_skipped.
  struct ReplayEvent {
    SimTime at;
    bool clear;  ///< clears order before configures on time ties: a slot
                 ///< freed at t is re-configured at the same t by its
                 ///< successor
    std::size_t task;
  };
  std::vector<ReplayEvent> events;
  for (std::size_t i = 0; i < report.stats.tasks.size(); ++i) {
    const auto& task = report.stats.tasks[i];
    if (task.rejected || task.slot.empty()) continue;
    events.push_back({task.config_start, false, i});
    events.push_back({task.finish, true, i});
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const ReplayEvent& a, const ReplayEvent& b) {
                     if (a.at != b.at) return a.at < b.at;
                     return a.clear && !b.clear;
                   });
  for (const ReplayEvent& ev : events) {
    const auto& task = report.stats.tasks[ev.task];
    config::ConfigOp op(ev.clear ? task.name + " clear" : task.name);
    for (int r = task.slot.row; r < task.slot.row_end(); ++r) {
      for (int c = task.slot.col; c < task.slot.col_end(); ++c) {
        for (int k = 0; k < geom.cells_per_clb; ++k) {
          if (ev.clear) {
            op.clear_cell(ClbCoord{r, c}, k);
            continue;
          }
          fabric::LogicCellConfig cell;
          cell.used = true;
          cell.reg = fabric::RegMode::kFF;
          // Distinct truth table per task so successive occupants of the
          // same slot are effective rewrites, not suppressed identical ones.
          cell.lut = static_cast<std::uint16_t>(
              (2654435761u * (static_cast<unsigned>(ev.task) + 1) +
               40503u * static_cast<unsigned>(k)) >>
              12);
          op.write_cell(ClbCoord{r, c}, k, cell);
        }
      }
    }
    batcher.enqueue(op);
  }
  batcher.flush();
  report.batch = batcher.stats();

  // ---- per-device telemetry ----------------------------------------------
  // Counter semantics (see README "Fleet telemetry schema"):
  //   tasks_admitted  = tasks handed to this device by dispatch, including
  //                     tasks the device itself later rejected;
  //   tasks_completed = tasks that ran to completion;
  //   tasks_rejected  = tasks this device gave up on (queue timeout /
  //                     never-fitting), so admitted == completed + rejected.
  Telemetry& t = report.telemetry;
  const auto& s = report.stats;
  t.counter("tasks_admitted").add(static_cast<std::int64_t>(s.tasks.size()));
  t.counter("tasks_completed")
      .add(static_cast<std::int64_t>(s.tasks.size()) - s.rejected);
  t.counter("tasks_rejected").add(s.rejected);
  t.counter("rearrangement_moves").add(s.rearrangement_moves);
  t.counter("moved_clbs").add(s.moved_clbs);
  t.counter("config_ops").add(report.batch.ops_in);
  // Transactions are coalesced op applications; the unbatched baseline is
  // one transaction per op on the same stream. Column writes (per-column
  // port transactions) are their own metric — feeding them into the
  // transaction counters is how this telemetry used to lie.
  t.counter("config_transactions").add(report.batch.transactions);
  t.counter("config_transactions_unbatched").add(report.batch.ops_in);
  t.counter("column_writes").add(report.batch.column_writes);
  t.counter("column_writes_unbatched")
      .add(report.batch.unbatched_column_writes);
  t.counter("frame_writes").add(report.batch.frames_written);
  t.counter("frame_writes_unbatched").add(report.batch.unbatched_frames);
  t.counter("frame_writes_dirty_skipped").add(report.batch.frames_skipped);
  if (cfg_.health.enabled()) {
    t.counter("swept_clbs").add(s.swept_clbs);
    t.counter("tested_clbs").add(s.tested_clbs);
    t.counter("sweep_rotations").add(s.sweep_rotations);
    t.counter("selftest_moves").add(s.selftest_moves);
    t.counter("faulty_cells").add(s.faults_detected);
    t.counter("faulty_clbs").add(s.faulty_clbs);
    t.gauge("fault_density").set(faults.detected_clb_density());
  }

  for (const auto& task : s.tasks) {
    if (task.rejected) continue;
    t.histogram("queue_wait_ms").observe(task.allocation_delay().milliseconds());
    t.histogram("turnaround_ms").observe((task.finish - task.ready).milliseconds());
  }
  for (const SimTime& mt : s.move_times)
    t.histogram("relocation_ms").observe(mt.milliseconds());

  t.gauge("makespan_ms").set(s.makespan.milliseconds());
  t.gauge("utilization_avg").set(s.utilization_avg);
  t.gauge("fragmentation_avg").set(s.fragmentation_avg);
  t.gauge("fragmentation_max").set(s.fragmentation_max);
  t.gauge("port_utilization")
      .set(s.makespan > SimTime::zero()
               ? s.config_port_busy.milliseconds() / s.makespan.milliseconds()
               : 0.0);
  t.gauge("config_time_saved_ms").set(report.batch.saved().milliseconds());

  if (tr.meter) {
    // One 'C' sample per counter at the device's makespan: the end-of-run
    // totals as counter tracks alongside the spans. std::map iteration
    // keeps the sample order deterministic.
    for (const auto& [name, c] : t.counters())
      tr.meter.counter(name, s.makespan, static_cast<double>(c.value()));
  }
  if constexpr (relogic::audit_enabled()) {
    // Metrics-plane boundary: the timeline's closing row was accumulated
    // live, event by event; the telemetry above was derived from RunStats
    // after the run. For every counter both planes observe, the two must
    // agree exactly. (tasks_completed/tasks_rejected are excluded: the
    // end-of-run identity reclassifies placed-but-never-ran jobs in a way
    // the live counters legitimately see as completed work in flight.)
    if (!report.timeline.empty()) {
      static constexpr const char* kCrossChecked[] = {
          "tasks_admitted", "rearrangement_moves", "moved_clbs",
          "selftest_moves", "swept_clbs",          "tested_clbs",
          "sweep_rotations", "faulty_cells",       "faulty_clbs"};
      const auto& last = report.timeline.samples().back();
      for (const char* name : kCrossChecked) {
        const auto it = last.counters.find(name);
        const std::int64_t live = it == last.counters.end() ? 0 : it->second;
        const std::int64_t total = t.counter_value(name);
        RELOGIC_AUDIT_CHECK(
            live == total, "FleetManager",
            "device " + std::to_string(device) + " timeline counter " +
                name + " diverged from end-of-run telemetry (" +
                std::to_string(live) + " vs " + std::to_string(total) + ")");
      }
    }
  }
  clear_log_context();
  return report;
}

FleetReport FleetManager::run() {
  dispatch();

  std::vector<std::vector<sched::AppSpec>> per_device(
      static_cast<std::size_t>(cfg_.devices));
  int admission_rejects = 0;
  int admitted_tasks = 0;
  for (std::size_t i = 0; i < queue_.size(); ++i) {
    const int d = assignment_[i];
    if (d < 0) {
      admission_rejects += static_cast<int>(queue_[i].app.functions.size());
      continue;
    }
    admitted_tasks += static_cast<int>(queue_[i].app.functions.size());
    per_device[static_cast<std::size_t>(d)].push_back(queue_[i].app);
  }

  FleetReport report;
  report.config = cfg_;
  report.devices.resize(static_cast<std::size_t>(cfg_.devices));

  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  int workers = cfg_.threads > 0 ? cfg_.threads : std::max(1, hw);
  workers = std::min(workers, cfg_.devices);

  // Worker-pool shared state (DESIGN.md §8.1). A device's report is a pure
  // function of (cfg_, its app list): workers write disjoint
  // report.devices slots and read only const member state, so the ONLY
  // cross-thread mutable state is the work counter handing out device ids
  // and the guarded error list. Dynamic assignment via fetch_add replaces
  // the old static stride — faster when device workloads are skewed, and
  // identical output either way since results never depend on which worker
  // ran a device.
  struct RunState {
    std::atomic<int> next_device{0};
    Mutex mu;
    /// (device, exception) pairs — device-ordered at rethrow time so the
    /// surfaced error does not depend on thread interleaving.
    std::vector<std::pair<int, std::exception_ptr>> errors
        RELOGIC_GUARDED_BY(mu);
  };
  RunState state;
  auto work = [&]() {
    for (;;) {
      const int d = state.next_device.fetch_add(1, std::memory_order_relaxed);
      if (d >= cfg_.devices) return;
      try {
        report.devices[static_cast<std::size_t>(d)] =
            run_device(d, per_device[static_cast<std::size_t>(d)]);
      } catch (...) {
        MutexLock lock(state.mu);
        state.errors.emplace_back(d, std::current_exception());
      }
    }
  };
  if (workers <= 1) {
    work();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(workers));
    for (int w = 0; w < workers; ++w) pool.emplace_back(work);
    for (auto& th : pool) th.join();
  }
  {
    // Pool has joined: single-threaded again, but the lock keeps the
    // thread-safety analysis honest (and costs one uncontended acquire).
    MutexLock lock(state.mu);
    std::sort(state.errors.begin(), state.errors.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    if (!state.errors.empty())
      std::rethrow_exception(state.errors.front().second);
  }

  report.admitted = admitted_tasks;
  report.rejected = admission_rejects;
  report.rebalanced = rebalanced_;
  report.quarantined = quarantined_count_;
  for (const DeviceReport& d : report.devices) {
    report.completed +=
        static_cast<int>(d.stats.tasks.size()) - d.stats.rejected;
    report.rejected += d.stats.rejected;
    report.faulty_cells += d.stats.faults_detected;
    report.tested_clbs += d.stats.tested_clbs;
    report.makespan = std::max(report.makespan, d.stats.makespan);
    report.aggregate.merge(d.telemetry);
  }
  // Aggregation boundary: before the fleet-only counters land, every
  // aggregate counter must equal the sum of its per-device contributions —
  // the merge must neither drop nor double-count a device.
  if constexpr (relogic::audit_enabled()) {
    // Workers acquired routing skeletons concurrently during the run; a
    // racily half-built or geometry-aliased cache entry must not survive
    // the join unnoticed.
    fabric::audit_routing_skeleton_cache();
    for (const DeviceReport& d : report.devices)
      d.telemetry.audit("device " + std::to_string(d.device));
    report.aggregate.audit("fleet aggregate");
    for (const auto& [name, c] : report.aggregate.counters()) {
      std::int64_t sum = 0;
      for (const DeviceReport& d : report.devices)
        sum += d.telemetry.counter_value(name);
      RELOGIC_AUDIT_CHECK(sum == c.value(), "FleetManager",
                          "aggregate counter " + name +
                              " diverged from the per-device sum (" +
                              std::to_string(c.value()) + " vs " +
                              std::to_string(sum) + ")");
    }
  }
  report.aggregate.counter("admission_rejected").add(admission_rejects);
  report.aggregate.counter("rebalanced_requests").add(rebalanced_);
  if (cfg_.health.enabled())
    report.aggregate.counter("quarantined_devices").add(quarantined_count_);

  if (cfg_.metrics.enabled()) {
    // Fold the per-device timelines into the fleet aggregate, in device-id
    // order (DESIGN.md §7.5): union of sample times, carry-forward between
    // a device's samples, rows tagged with the quarantined-device count as
    // of each instant.
    std::vector<const obs::MetricsTimeline*> parts;
    parts.reserve(report.devices.size());
    for (const DeviceReport& d : report.devices) parts.push_back(&d.timeline);
    report.timeline = obs::MetricsTimeline::fold(parts, quarantine_times_);
    if constexpr (relogic::audit_enabled()) {
      for (const DeviceReport& d : report.devices)
        d.timeline.audit("device " + std::to_string(d.device) + " timeline");
      report.timeline.audit("fleet timeline");
    }
    if (tr_meter_ && !report.timeline.empty()) {
      // Fleet-aggregate counter curves on the fleet meter lane (the final
      // totals below still land at the makespan, on top of these).
      for (const auto& row : report.timeline.samples())
        for (const auto& [name, v] : row.counters)
          tr_meter_.counter(name, row.t, static_cast<double>(v));
    }
  }

  if (tr_meter_) {
    for (const auto& [name, c] : report.aggregate.counters())
      tr_meter_.counter(name, report.makespan,
                        static_cast<double>(c.value()));
    clear_log_context();
  }

  queue_.clear();
  assignment_.clear();
  for (auto& l : ledger_) l.clear();
  placed_ = 0;
  clock_ = SimTime::zero();
  rebalanced_ = 0;
  dispatched_ = false;
  rr_next_ = 0;
  quarantined_.assign(static_cast<std::size_t>(cfg_.devices), false);
  quarantined_count_ = 0;
  quarantine_times_.clear();
  return report;
}

double FleetReport::throughput_tasks_per_s() const {
  const double secs = makespan.seconds();
  return secs > 0 ? completed / secs : 0.0;
}

std::string FleetReport::metrics_json() const {
  if (timeline.empty() && !config.metrics.enabled()) return "";
  std::vector<std::pair<int, const obs::MetricsTimeline*>> parts;
  parts.reserve(devices.size());
  for (const DeviceReport& d : devices) parts.emplace_back(d.device, &d.timeline);
  return obs::metrics_json_document(timeline, parts,
                                    config.metrics.sample_interval_ms);
}

std::string FleetReport::to_json() const {
  std::ostringstream os;
  int txn = 0, txn_unbatched = 0, columns = 0, columns_unbatched = 0;
  int frames = 0, frames_unbatched = 0, frames_skipped = 0;
  SimTime port_time = SimTime::zero(), port_time_unbatched = SimTime::zero();
  for (const DeviceReport& d : devices) {
    txn += d.batch.transactions;
    txn_unbatched += d.batch.ops_in;
    columns += d.batch.column_writes;
    columns_unbatched += d.batch.unbatched_column_writes;
    frames += d.batch.frames_written;
    frames_unbatched += d.batch.unbatched_frames;
    frames_skipped += d.batch.frames_skipped;
    port_time += d.batch.time;
    port_time_unbatched += d.batch.unbatched_time;
  }
  const ConfigPlaneSpec default_plane = config.default_plane();
  os << "{\n";
  os << "  \"fleet\": {\"devices\": " << config.devices
     << ", \"rows\": " << config.rows << ", \"cols\": " << config.cols
     << ", \"dispatch\": \"" << to_string(config.dispatch)
     << "\", \"admission\": \"" << to_string(config.admission)
     << "\", \"rebalance_backlog_ms\": "
     << json_number(config.rebalance_backlog_ms)
     << ", \"policy\": \"" << sched::to_string(config.sched.policy)
     << "\", \"overlap\": " << config.overlap << ", \"port\": \""
     << config::to_string(default_plane.port) << "\", \"granularity\": \""
     << config::to_string(default_plane.granularity)
     << "\", \"kernel\": \""
     << (config.kernel.empty() ? config::default_kernel_backend().name()
                               : config.kernel)
     << "\", \"batching\": " << (config.batch_config ? "true" : "false")
     << ", \"batch_max_ops\": " << config.batch.max_ops
     << ", \"selftest\": " << (config.health.selftest ? "true" : "false")
     << ", \"fault_rate\": " << json_number(config.health.fault_rate)
     << ", \"quarantine_threshold\": "
     << json_number(config.health.quarantine_threshold) << "},\n";
  os << "  \"totals\": {\"admitted\": " << admitted
     << ", \"completed\": " << completed << ", \"rejected\": " << rejected
     << ", \"rebalanced\": " << rebalanced
     << ", \"quarantined_devices\": " << quarantined
     << ", \"faulty_cells\": " << faulty_cells
     << ", \"tested_clbs\": " << tested_clbs
     << ", \"makespan_ms\": " << json_number(makespan.milliseconds())
     << ", \"throughput_tasks_per_s\": " << json_number(throughput_tasks_per_s())
     << ", \"config_transactions\": " << txn
     << ", \"config_transactions_unbatched\": " << txn_unbatched
     << ", \"column_writes\": " << columns
     << ", \"column_writes_unbatched\": " << columns_unbatched
     << ", \"frame_writes\": " << frames
     << ", \"frame_writes_unbatched\": " << frames_unbatched
     << ", \"frame_writes_dirty_skipped\": " << frames_skipped
     << ", \"config_port_time_ms\": " << json_number(port_time.milliseconds())
     << ", \"config_port_time_unbatched_ms\": "
     << json_number(port_time_unbatched.milliseconds()) << "},\n";
  os << "  \"aggregate\": " << aggregate.to_json(2) << ",\n";
  os << "  \"devices\": [";
  for (std::size_t i = 0; i < devices.size(); ++i) {
    const ConfigPlaneSpec plane = config.plane_for(devices[i].device);
    os << (i ? ",\n" : "\n") << "    {\"device\": " << devices[i].device
       << ", \"port\": \"" << config::to_string(plane.port)
       << "\", \"granularity\": \"" << config::to_string(plane.granularity)
       << "\", \"telemetry\": " << devices[i].telemetry.to_json(4) << "}";
  }
  os << (devices.empty() ? "" : "\n  ") << "]\n";
  os << "}\n";
  return os.str();
}

}  // namespace relogic::runtime
