#include "relogic/runtime/fleet.hpp"

#include <algorithm>
#include <exception>
#include <limits>
#include <numeric>
#include <sstream>
#include <thread>
#include <utility>

#include "relogic/common/logging.hpp"
#include "relogic/reloc/cost.hpp"

namespace relogic::runtime {

std::string to_string(DispatchPolicy p) {
  switch (p) {
    case DispatchPolicy::kRoundRobin:
      return "round-robin";
    case DispatchPolicy::kLeastLoaded:
      return "least-loaded";
    case DispatchPolicy::kBestFit:
      return "best-fit";
  }
  return "?";
}

std::optional<DispatchPolicy> parse_dispatch_policy(const std::string& name) {
  if (name == "rr" || name == "round-robin") return DispatchPolicy::kRoundRobin;
  if (name == "ll" || name == "least-loaded")
    return DispatchPolicy::kLeastLoaded;
  if (name == "bf" || name == "best-fit") return DispatchPolicy::kBestFit;
  return std::nullopt;
}

FleetManager::FleetManager(FleetConfig config) : cfg_(std::move(config)) {
  RELOGIC_CHECK(cfg_.devices >= 1);
  RELOGIC_CHECK(cfg_.rows >= 1 && cfg_.cols >= 1);
  RELOGIC_CHECK(cfg_.overlap >= 1);
}

void FleetManager::submit(const sched::TaskArrival& task) {
  sched::AppSpec app;
  app.name = task.fn.name;
  app.functions = {task.fn};
  app.start = task.arrival;
  submit(app);
}

void FleetManager::submit(const sched::AppSpec& app) {
  RELOGIC_CHECK_MSG(!app.functions.empty(), "application with no functions");
  Request req;
  req.app = app;
  req.est_end = app.start;
  for (const auto& fn : app.functions) {
    req.footprint_clbs = std::max(req.footprint_clbs, fn.clbs());
    req.est_end += fn.duration;
  }
  queue_.push_back(std::move(req));
  dispatched_ = false;
}

void FleetManager::submit_all(const std::vector<sched::TaskArrival>& tasks) {
  for (const auto& t : tasks) submit(t);
}

const std::vector<int>& FleetManager::dispatch() {
  if (dispatched_) return assignment_;
  assignment_.assign(queue_.size(), -1);
  rr_next_ = 0;  // recomputes start from a clean round-robin cycle

  // Admission order: by request start time, submission order as tie-break.
  std::vector<std::size_t> order(queue_.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return queue_[a].app.start < queue_[b].app.start;
  });

  // Occupancy ledger per device: (estimated end, CLB footprint) of every
  // request dispatched so far. The estimate ignores queueing inside the
  // device — the device's own run-time manager handles that exactly; the
  // ledger only has to rank devices consistently.
  struct Entry {
    SimTime end;
    int clbs;
  };
  std::vector<std::vector<Entry>> ledger(
      static_cast<std::size_t>(cfg_.devices));
  const int capacity = cfg_.rows * cfg_.cols;
  auto free_at = [&](int d, SimTime t) {
    int used = 0;
    for (const Entry& e : ledger[static_cast<std::size_t>(d)])
      if (e.end > t) used += e.clbs;
    return capacity - used;
  };

  for (std::size_t qi : order) {
    Request& req = queue_[qi];
    // Geometric admission: a request no device can ever hold is rejected
    // here rather than bouncing through every device queue.
    bool fits = true;
    for (const auto& fn : req.app.functions)
      fits = fits && fn.height <= cfg_.rows && fn.width <= cfg_.cols;
    if (!fits) continue;  // assignment stays -1

    // free_at can go below zero on an oversubscribed fleet (the ledger has
    // no capacity feedback), so the argmax seeds with a sentinel no device
    // can fail to beat. Lowest id wins ties.
    auto least_loaded = [&](SimTime t) {
      int best = 0;
      int best_free = std::numeric_limits<int>::min();
      for (int d = 0; d < cfg_.devices; ++d) {
        const int f = free_at(d, t);
        if (f > best_free) {
          best_free = f;
          best = d;
        }
      }
      return best;
    };

    int pick = -1;
    switch (cfg_.dispatch) {
      case DispatchPolicy::kRoundRobin:
        pick = rr_next_;
        rr_next_ = (rr_next_ + 1) % cfg_.devices;
        break;
      case DispatchPolicy::kLeastLoaded:
        pick = least_loaded(req.app.start);
        break;
      case DispatchPolicy::kBestFit: {
        // Tightest estimated fit; a device already too full to (estimatedly)
        // hold the footprint is skipped, falling back to least-loaded.
        int best_slack = -1;
        for (int d = 0; d < cfg_.devices; ++d) {
          const int slack = free_at(d, req.app.start) - req.footprint_clbs;
          if (slack >= 0 && (best_slack < 0 || slack < best_slack)) {
            best_slack = slack;
            pick = d;
          }
        }
        if (pick < 0) pick = least_loaded(req.app.start);
        break;
      }
    }
    assignment_[qi] = pick;
    ledger[static_cast<std::size_t>(pick)].push_back(
        Entry{req.est_end, req.footprint_clbs});
  }
  dispatched_ = true;
  return assignment_;
}

DeviceReport FleetManager::run_device(
    int device, const std::vector<sched::AppSpec>& apps) const {
  DeviceReport report;
  report.device = device;

  const auto geom = fabric::DeviceGeometry::tiny(cfg_.rows, cfg_.cols);
  const config::BoundaryScanPort bscan;
  const config::SelectMapPort smap;
  const config::ConfigPort& port =
      cfg_.use_selectmap ? static_cast<const config::ConfigPort&>(smap)
                         : static_cast<const config::ConfigPort&>(bscan);
  const reloc::RelocationCostModel cost(geom, port);

  sched::Scheduler scheduler(cfg_.rows, cfg_.cols, cost, cfg_.sched);
  report.stats = scheduler.run_apps(apps, cfg_.overlap);

  // Replay the initial partial configuration of every placed task against a
  // real fabric through the transaction batcher, so the report carries
  // measured (not estimated) transaction counts for batched vs unbatched.
  fabric::Fabric fab(geom);
  config::ConfigController controller(fab, port, /*column_granular=*/true);
  BatchOptions bopt = cfg_.batch;
  if (!cfg_.batch_config) bopt.max_ops = 1;
  TransactionBatcher batcher(controller, bopt);

  std::vector<std::size_t> by_config_start;
  for (std::size_t i = 0; i < report.stats.tasks.size(); ++i) {
    if (!report.stats.tasks[i].rejected && !report.stats.tasks[i].slot.empty())
      by_config_start.push_back(i);
  }
  std::stable_sort(by_config_start.begin(), by_config_start.end(),
                   [&](std::size_t a, std::size_t b) {
                     return report.stats.tasks[a].config_start <
                            report.stats.tasks[b].config_start;
                   });
  for (std::size_t i : by_config_start) {
    const auto& task = report.stats.tasks[i];
    config::ConfigOp op(task.name);
    for (int r = task.slot.row; r < task.slot.row_end(); ++r) {
      for (int c = task.slot.col; c < task.slot.col_end(); ++c) {
        for (int k = 0; k < geom.cells_per_clb; ++k) {
          fabric::LogicCellConfig cell;
          cell.used = true;
          cell.reg = fabric::RegMode::kFF;
          // Distinct truth table per task so successive occupants of the
          // same slot are effective rewrites, not suppressed identical ones.
          cell.lut = static_cast<std::uint16_t>(
              (2654435761u * (static_cast<unsigned>(i) + 1) +
               40503u * static_cast<unsigned>(k)) >>
              12);
          op.write_cell(ClbCoord{r, c}, k, cell);
        }
      }
    }
    batcher.enqueue(op);
  }
  batcher.flush();
  report.batch = batcher.stats();

  // ---- per-device telemetry ----------------------------------------------
  Telemetry& t = report.telemetry;
  const auto& s = report.stats;
  t.counter("tasks_admitted").add(static_cast<std::int64_t>(s.tasks.size()));
  t.counter("tasks_completed")
      .add(static_cast<std::int64_t>(s.tasks.size()) - s.rejected);
  t.counter("tasks_rejected").add(s.rejected);
  t.counter("rearrangement_moves").add(s.rearrangement_moves);
  t.counter("moved_clbs").add(s.moved_clbs);
  t.counter("config_ops").add(report.batch.ops_in);
  t.counter("config_transactions").add(report.batch.column_writes);
  t.counter("config_transactions_unbatched")
      .add(report.batch.unbatched_column_writes);
  t.counter("frames_written").add(report.batch.frames_written);
  t.counter("frames_unbatched").add(report.batch.unbatched_frames);

  for (const auto& task : s.tasks) {
    if (task.rejected) continue;
    t.histogram("queue_wait_ms").observe(task.allocation_delay().milliseconds());
    t.histogram("turnaround_ms").observe((task.finish - task.ready).milliseconds());
  }
  for (const SimTime& mt : s.move_times)
    t.histogram("relocation_ms").observe(mt.milliseconds());

  t.gauge("makespan_ms").set(s.makespan.milliseconds());
  t.gauge("utilization_avg").set(s.utilization_avg);
  t.gauge("fragmentation_avg").set(s.fragmentation_avg);
  t.gauge("fragmentation_max").set(s.fragmentation_max);
  t.gauge("port_utilization")
      .set(s.makespan > SimTime::zero()
               ? s.config_port_busy.milliseconds() / s.makespan.milliseconds()
               : 0.0);
  t.gauge("config_time_saved_ms").set(report.batch.saved().milliseconds());
  return report;
}

FleetReport FleetManager::run() {
  dispatch();

  std::vector<std::vector<sched::AppSpec>> per_device(
      static_cast<std::size_t>(cfg_.devices));
  int admission_rejects = 0;
  int admitted_tasks = 0;
  for (std::size_t i = 0; i < queue_.size(); ++i) {
    const int d = assignment_[i];
    if (d < 0) {
      admission_rejects += static_cast<int>(queue_[i].app.functions.size());
      continue;
    }
    admitted_tasks += static_cast<int>(queue_[i].app.functions.size());
    per_device[static_cast<std::size_t>(d)].push_back(queue_[i].app);
  }

  FleetReport report;
  report.config = cfg_;
  report.devices.resize(static_cast<std::size_t>(cfg_.devices));

  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  int workers = cfg_.threads > 0 ? cfg_.threads : std::max(1, hw);
  workers = std::min(workers, cfg_.devices);

  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(workers));
  auto work = [&](int w) {
    try {
      for (int d = w; d < cfg_.devices; d += workers) {
        report.devices[static_cast<std::size_t>(d)] =
            run_device(d, per_device[static_cast<std::size_t>(d)]);
      }
    } catch (...) {
      errors[static_cast<std::size_t>(w)] = std::current_exception();
    }
  };
  if (workers <= 1) {
    work(0);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(workers));
    for (int w = 0; w < workers; ++w) pool.emplace_back(work, w);
    for (auto& th : pool) th.join();
  }
  for (const auto& err : errors)
    if (err) std::rethrow_exception(err);

  report.admitted = admitted_tasks;
  report.rejected = admission_rejects;
  for (const DeviceReport& d : report.devices) {
    report.completed +=
        static_cast<int>(d.stats.tasks.size()) - d.stats.rejected;
    report.rejected += d.stats.rejected;
    report.makespan = std::max(report.makespan, d.stats.makespan);
    report.aggregate.merge(d.telemetry);
  }
  report.aggregate.counter("admission_rejected").add(admission_rejects);

  queue_.clear();
  assignment_.clear();
  dispatched_ = false;
  rr_next_ = 0;
  return report;
}

double FleetReport::throughput_tasks_per_s() const {
  const double secs = makespan.seconds();
  return secs > 0 ? completed / secs : 0.0;
}

std::string FleetReport::to_json() const {
  std::ostringstream os;
  int txn = 0, txn_unbatched = 0;
  SimTime port_time = SimTime::zero(), port_time_unbatched = SimTime::zero();
  for (const DeviceReport& d : devices) {
    txn += d.batch.column_writes;
    txn_unbatched += d.batch.unbatched_column_writes;
    port_time += d.batch.time;
    port_time_unbatched += d.batch.unbatched_time;
  }
  os << "{\n";
  os << "  \"fleet\": {\"devices\": " << config.devices
     << ", \"rows\": " << config.rows << ", \"cols\": " << config.cols
     << ", \"dispatch\": \"" << to_string(config.dispatch)
     << "\", \"policy\": \"" << sched::to_string(config.sched.policy)
     << "\", \"overlap\": " << config.overlap << ", \"port\": \""
     << (config.use_selectmap ? "SelectMAP" : "BoundaryScan")
     << "\", \"batching\": " << (config.batch_config ? "true" : "false")
     << ", \"batch_max_ops\": " << config.batch.max_ops << "},\n";
  os << "  \"totals\": {\"admitted\": " << admitted
     << ", \"completed\": " << completed << ", \"rejected\": " << rejected
     << ", \"makespan_ms\": " << json_number(makespan.milliseconds())
     << ", \"throughput_tasks_per_s\": " << json_number(throughput_tasks_per_s())
     << ", \"config_transactions\": " << txn
     << ", \"config_transactions_unbatched\": " << txn_unbatched
     << ", \"config_port_time_ms\": " << json_number(port_time.milliseconds())
     << ", \"config_port_time_unbatched_ms\": "
     << json_number(port_time_unbatched.milliseconds()) << "},\n";
  os << "  \"aggregate\": " << aggregate.to_json(2) << ",\n";
  os << "  \"devices\": [";
  for (std::size_t i = 0; i < devices.size(); ++i) {
    os << (i ? ",\n" : "\n") << "    {\"device\": " << devices[i].device
       << ", \"telemetry\": " << devices[i].telemetry.to_json(4) << "}";
  }
  os << (devices.empty() ? "" : "\n  ") << "]\n";
  os << "}\n";
  return os.str();
}

}  // namespace relogic::runtime
