#include "relogic/runtime/telemetry.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "relogic/common/audit.hpp"
#include "relogic/common/error.hpp"

namespace relogic::runtime {

std::string json_number(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

std::vector<double> Histogram::default_latency_bounds_ms() {
  return {0.01, 0.02, 0.05, 0.1, 0.2,  0.5,  1.0,    2.0,
          5.0,  10.0, 20.0, 50.0, 100.0, 200.0, 500.0, 1000.0,
          2000.0, 5000.0, 10000.0};
}

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  RELOGIC_CHECK_MSG(!bounds_.empty(), "histogram needs at least one bound");
  RELOGIC_CHECK_MSG(std::is_sorted(bounds_.begin(), bounds_.end()),
                    "histogram bounds must be sorted");
  counts_.assign(bounds_.size() + 1, 0);
}

void Histogram::observe(double v) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  ++counts_[static_cast<std::size_t>(it - bounds_.begin())];
  if (count_ == 0) {
    min_ = max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  sum_ += v;
  ++count_;
}

double Histogram::quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const std::int64_t rank =
      std::max<std::int64_t>(1, static_cast<std::int64_t>(
                                    std::ceil(q * static_cast<double>(count_))));
  std::int64_t seen = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    seen += counts_[i];
    if (seen >= rank) {
      if (i < bounds_.size()) return std::min(bounds_[i], max());
      return max();  // overflow bucket
    }
  }
  return max();
}

void Histogram::merge(const Histogram& other) {
  RELOGIC_CHECK_MSG(bounds_ == other.bounds_,
                    "merging histograms with different bucket bounds");
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  if (other.count_) {
    min_ = count_ ? std::min(min_, other.min_) : other.min_;
    max_ = count_ ? std::max(max_, other.max_) : other.max_;
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

void Histogram::audit(const std::string& what) const {
  RELOGIC_AUDIT_CHECK(counts_.size() == bounds_.size() + 1, "Histogram",
                      what + ": bucket count does not match bounds + overflow");
  std::int64_t bucket_sum = 0;
  for (std::int64_t c : counts_) {
    RELOGIC_AUDIT_CHECK(c >= 0, "Histogram",
                        what + ": negative bucket count");
    bucket_sum += c;
  }
  RELOGIC_AUDIT_CHECK(bucket_sum == count_, "Histogram",
                      what + ": count diverged from the bucket sum (" +
                          std::to_string(count_) + " vs " +
                          std::to_string(bucket_sum) + ")");
  if (count_ > 0) {
    RELOGIC_AUDIT_CHECK(min_ <= max_, "Histogram",
                        what + ": min exceeds max");
    RELOGIC_AUDIT_CHECK(std::isfinite(sum_), "Histogram",
                        what + ": non-finite observation sum");
  }
}

void Telemetry::audit(const std::string& where) const {
  for (const auto& [name, h] : histograms_)
    h.audit(where + "/" + name);
  for (const auto& [name, g] : gauges_)
    RELOGIC_AUDIT_CHECK(g.samples() >= 0, "Telemetry",
                        where + "/" + name + ": negative gauge sample count");
}

Histogram& Telemetry::histogram(const std::string& name) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) it = histograms_.emplace(name, Histogram()).first;
  return it->second;
}

Histogram& Telemetry::histogram(const std::string& name,
                                std::vector<double> bounds) {
  auto it = histograms_.find(name);
  if (it == histograms_.end())
    it = histograms_.emplace(name, Histogram(std::move(bounds))).first;
  return it->second;
}

std::int64_t Telemetry::counter_value(const std::string& name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second.value();
}

void Telemetry::merge(const Telemetry& other) {
  for (const auto& [name, c] : other.counters_) counters_[name].add(c.value());
  for (const auto& [name, g] : other.gauges_) gauges_[name].merge(g);
  for (const auto& [name, h] : other.histograms_) {
    auto it = histograms_.find(name);
    if (it == histograms_.end()) {
      histograms_.emplace(name, h);
    } else {
      it->second.merge(h);
    }
  }
}

std::string json_quoted(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      default:
        // Remaining control characters (U+0000–U+001F) are illegal raw in
        // JSON strings; emit the \u00XX escape.
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out + "\"";
}

std::string Telemetry::to_json(int indent) const {
  const std::string pad(static_cast<std::size_t>(indent), ' ');
  std::ostringstream os;
  os << "{\n";

  os << pad << "  \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    os << (first ? "\n" : ",\n") << pad << "    " << json_quoted(name) << ": "
       << c.value();
    first = false;
  }
  os << (first ? "" : "\n" + pad + "  ") << "},\n";

  os << pad << "  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauges_) {
    os << (first ? "\n" : ",\n") << pad << "    " << json_quoted(name)
       << ": {\"mean\": " << json_number(g.mean())
       << ", \"samples\": " << g.samples() << "}";
    first = false;
  }
  os << (first ? "" : "\n" + pad + "  ") << "},\n";

  os << pad << "  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    os << (first ? "\n" : ",\n") << pad << "    " << json_quoted(name) << ": {"
       << "\"count\": " << h.count() << ", \"sum\": " << json_number(h.sum())
       << ", \"min\": " << json_number(h.min())
       << ", \"max\": " << json_number(h.max())
       << ", \"mean\": " << json_number(h.mean())
       << ", \"p50\": " << json_number(h.quantile(0.5))
       << ", \"p90\": " << json_number(h.quantile(0.9))
       << ", \"p95\": " << json_number(h.quantile(0.95))
       << ", \"p99\": " << json_number(h.quantile(0.99)) << ", \"buckets\": [";
    const auto& counts = h.bucket_counts();
    for (std::size_t i = 0; i < counts.size(); ++i) {
      if (i) os << ", ";
      os << "{\"le\": "
         << (i < h.bounds().size() ? json_number(h.bounds()[i]) : "\"inf\"")
         << ", \"count\": " << counts[i] << "}";
    }
    os << "]}";
    first = false;
  }
  os << (first ? "" : "\n" + pad + "  ") << "}\n";

  os << pad << "}";
  return os.str();
}

}  // namespace relogic::runtime
