#include "relogic/sched/scheduler.hpp"

#include <algorithm>
#include <limits>
#include <map>

#include "relogic/common/audit.hpp"
#include "relogic/common/logging.hpp"
#include "relogic/obs/timeline.hpp"

namespace relogic::sched {

std::string to_string(ManagementPolicy p) {
  switch (p) {
    case ManagementPolicy::kNoRearrange:
      return "no-rearrangement";
    case ManagementPolicy::kHaltAndMove:
      return "halt-and-move";
    case ManagementPolicy::kTransparent:
      return "transparent-relocation";
  }
  return "?";
}

double RunStats::avg_allocation_delay_ms() const {
  double sum = 0;
  int n = 0;
  for (const auto& t : tasks) {
    if (t.rejected) continue;
    sum += t.allocation_delay().milliseconds();
    ++n;
  }
  return n ? sum / n : 0.0;
}

double RunStats::max_allocation_delay_ms() const {
  double mx = 0;
  for (const auto& t : tasks) {
    if (!t.rejected) mx = std::max(mx, t.allocation_delay().milliseconds());
  }
  return mx;
}

double RunStats::avg_turnaround_ms() const {
  double sum = 0;
  int n = 0;
  for (const auto& t : tasks) {
    if (t.rejected) continue;
    sum += (t.finish - t.ready).milliseconds();
    ++n;
  }
  return n ? sum / n : 0.0;
}

namespace {

struct Job {
  int id = 0;
  FunctionSpec fn;
  SimTime ready = SimTime::zero();
  // Chain bookkeeping (run_apps): this job may not *run* before pred_end,
  // but may be configured earlier (prefetch).
  std::optional<int> predecessor;
  int app = -1;
  int index_in_app = -1;

  // runtime state
  area::RegionId region = area::kNoRegion;
  ClbRect slot;  // initial placement rectangle
  SimTime config_start = SimTime::zero();
  SimTime config_done = SimTime::zero();
  SimTime run_start = SimTime::zero();
  SimTime end = SimTime::zero();
  SimTime halted = SimTime::zero();
  bool running = false;
  bool done = false;
  bool rejected = false;
  bool placed = false;
  int end_version = 0;
};

enum class EvKind { kReady, kConfigDone, kRunBegin, kEnd, kSweepStep,
                    kSweepDone, kMetricsTick };

struct Ev {
  SimTime time;
  std::uint64_t seq;
  EvKind kind;
  int job;  ///< -1 for the self-test sweep events
  int version = 0;
  bool operator>(const Ev& o) const {
    if (time != o.time) return time > o.time;
    return seq > o.seq;
  }
};

/// The whole discrete-event run, shared by run_tasks and run_apps.
class Engine {
 public:
  Engine(int rows, int cols, const reloc::RelocationCostModel& cost,
         const SchedulerConfig& cfg, const SelfTestConfig& selftest,
         health::FaultMap* faults, const SchedulerTrace& trace,
         obs::TimelineSampler* metrics)
      : mgr_(rows, cols),
        cost_(&cost),
        cfg_(&cfg),
        st_(&selftest),
        faults_(faults),
        tr_(trace),
        metrics_(metrics),
        live_(metrics ? &metrics->live() : nullptr) {}

  std::vector<Job> jobs;
  /// Jobs whose readiness is triggered by another job's end (prefetch
  /// windows in application chains): trigger job id -> dependent job id.
  std::multimap<int, int> ready_after;

  RunStats run() {
    if (tr_.sched)
      tr_.sched.begin("sched", "des-run", SimTime::zero(),
                      {obs::arg("jobs", jobs.size()),
                       obs::arg("policy", to_string(cfg_->policy))});
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      if (jobs[i].ready == SimTime::never()) continue;  // chained readiness
      push(Ev{jobs[i].ready, seq_++, EvKind::kReady, static_cast<int>(i)});
    }
    if (st_->enabled) {
      push(Ev{sweep_period(), seq_++, EvKind::kSweepStep, -1});
    }
    if (metrics_) {
      RELOGIC_CHECK_MSG(metrics_->interval() > SimTime::zero(),
                        "metrics sampler needs a positive interval");
      sample_metrics();  // t = 0 baseline row
      push(Ev{metrics_->interval(), seq_++, EvKind::kMetricsTick, -1});
    }
    while (!queue_.empty()) {
      const Ev ev = queue_.top();
      queue_.pop();
      // A metrics tick that outlived every other event would stretch the
      // makespan past the last real event; drop it instead — finalize takes
      // the closing sample at the true makespan.
      if (ev.kind == EvKind::kMetricsTick && queue_.empty()) break;
      advance_to(ev.time);
      dispatch(ev);
    }
    finalize();
    if (tr_.sched) {
      tr_.sched.end(stats_.makespan);
      clear_log_context();
    }
    return std::move(stats_);
  }

 private:
  void push(Ev e) { queue_.push(e); }

  void advance_to(SimTime t) {
    if (t > now_) {
      const double dt = (t - now_).milliseconds();
      util_integral_ += mgr_.utilization() * dt;
      frag_integral_ += mgr_.fragmentation() * dt;
      elapsed_ms_ += dt;
      now_ = t;
      if (tr_.sched) set_log_context("sched", now_);
    }
    stats_.fragmentation_max =
        std::max(stats_.fragmentation_max, mgr_.fragmentation());
  }

  void dispatch(const Ev& ev) {
    if (ev.kind == EvKind::kSweepStep) {
      on_sweep_step();
      return;
    }
    if (ev.kind == EvKind::kSweepDone) {
      on_sweep_done();
      return;
    }
    if (ev.kind == EvKind::kMetricsTick) {
      sample_metrics();
      // Keep ticking while other work remains; when the tick was the last
      // event the cadence ends (finalize takes the closing sample).
      if (!queue_.empty())
        push(Ev{now_ + metrics_->interval(), seq_++, EvKind::kMetricsTick, -1});
      return;
    }
    Job& job = jobs[static_cast<std::size_t>(ev.job)];
    switch (ev.kind) {
      case EvKind::kReady:
        // First (and only) readiness event of this job: it is now in the
        // device's hands, whatever happens to it later.
        if (live_) {
          live_->counter("tasks_admitted").add(1);
          ++live_admitted_;
        }
        try_start(job);
        break;
      case EvKind::kConfigDone:
        on_config_done(job);
        break;
      case EvKind::kRunBegin:
        begin_run(job);
        break;
      case EvKind::kEnd:
        if (ev.version == job.end_version) on_end(job);
        break;
      case EvKind::kSweepStep:
      case EvKind::kSweepDone:
      case EvKind::kMetricsTick:
        break;  // handled above
    }
  }

  /// Snapshots the live registry into the timeline at now_. Instantaneous
  /// area state lands as gauge samples first, so every row carries the
  /// occupancy alongside the event-driven counters.
  void sample_metrics() {
    live_->gauge("utilization").set(mgr_.utilization());
    live_->gauge("fragmentation").set(mgr_.fragmentation());
    metrics_->sample(now_, st_->enabled ? sweep_col_ : -1);
  }

  void reject_live(Job& job) {
    job.rejected = true;
    if (live_) {
      live_->counter("tasks_rejected").add(1);
      ++live_rejected_;
    }
  }

  void try_start(Job& job) {
    if (job.placed || job.done || job.rejected) return;
    if (job.fn.height > mgr_.rows() || job.fn.width > mgr_.cols()) {
      reject_live(job);
      if (tr_.tasks)
        tr_.tasks.instant("queue", job.fn.name + " rejected", now_,
                          {obs::arg("reason", "oversized")});
      return;
    }
    // Expired waiters are rejected.
    if (cfg_->max_wait != SimTime::never() &&
        now_ - job.ready > cfg_->max_wait) {
      reject_live(job);
      if (tr_.tasks)
        tr_.tasks.instant("queue", job.fn.name + " rejected", now_,
                          {obs::arg("reason", "max-wait")});
      return;
    }

    auto slot = mgr_.find_free_rect(job.fn.height, job.fn.width,
                                    cfg_->placement);
    // While a self-test transaction holds the configuration port, the
    // window's claim regions are immovable (they are not tasks): planning
    // waits for the test to finish; retry_waiting() runs at sweep-done.
    if (!slot && cfg_->policy != ManagementPolicy::kNoRearrange &&
        !sweep_testing_) {
      const auto plan = plan_request(job.fn.height, job.fn.width);
      if (plan && plan_affordable(*plan, job)) {
        if (tr_.sched)
          tr_.sched.instant("placement", "rearrange for " + job.fn.name, now_,
                            {obs::arg("moves", plan->moves.size()),
                             obs::arg("height", job.fn.height),
                             obs::arg("width", job.fn.width)});
        execute_moves(*plan);
        slot = plan->request_slot;
      }
    }
    if (!slot) {
      waiting_.push_back(job.id);
      return;
    }

    job.region = mgr_.allocate_at(job.fn.name, *slot);
    ++area_gen_;
    job.slot = *slot;
    job.placed = true;
    ++placed_live_;
    region_job_[job.region] = job.id;

    job.config_start = std::max(now_, port_free_at_);
    job.config_done = job.config_start + cost_->configure_time(job.fn.cells());
    port_free_at_ = job.config_done;
    stats_.config_port_busy += job.config_done - job.config_start;
    if (tr_.sched) {
      tr_.sched.instant("placement", job.fn.name, now_,
                        {obs::arg("slot", job.slot.to_string()),
                         obs::arg("clbs", job.fn.clbs())});
      tr_.sched.complete("config", job.fn.name, job.config_start,
                         job.config_done - job.config_start,
                         {obs::arg("cells", job.fn.cells()),
                          obs::arg("slot", job.slot.to_string())});
    }
    push(Ev{job.config_done, seq_++, EvKind::kConfigDone, job.id});
  }

  void on_config_done(Job& job) {
    // Execution begins once the predecessor (if any) has finished.
    SimTime start = now_;
    if (job.predecessor) {
      const Job& pred = jobs[static_cast<std::size_t>(*job.predecessor)];
      if (!pred.done) {
        pending_run_.emplace(*job.predecessor, job.id);
        return;
      }
      start = std::max(start, pred.end);
    }
    push(Ev{start, seq_++, EvKind::kRunBegin, job.id});
  }

  void begin_run(Job& job) {
    job.run_start = now_;
    job.running = true;
    job.end = now_ + job.fn.duration;
    // Eligibility: ready, or the predecessor's end for chained functions
    // (prefetching earlier does not count as delay).
    SimTime eligible = job.ready;
    if (job.predecessor) {
      const Job& pred = jobs[static_cast<std::size_t>(*job.predecessor)];
      if (pred.done) eligible = std::max(eligible, pred.end);
    }
    if (live_)
      live_->histogram("queue_wait_ms").observe((now_ - eligible).milliseconds());
    if (tr_.tasks) {
      // Queue-wait span: eligibility until execution begins.
      tr_.tasks.complete("queue", job.fn.name, eligible, now_ - eligible,
                         {obs::arg_ms("config_start", job.config_start)});
    }
    push(Ev{job.end, seq_++, EvKind::kEnd, job.id, job.end_version});
  }

  void on_end(Job& job) {
    job.running = false;
    job.done = true;
    job.end = now_;
    if (live_) {
      live_->counter("tasks_completed").add(1);
      live_->histogram("turnaround_ms").observe((now_ - job.ready).milliseconds());
    }
    if (tr_.tasks)
      tr_.tasks.complete("task", job.fn.name, job.run_start,
                         now_ - job.run_start,
                         {obs::arg("slot", job.slot.to_string()),
                          obs::arg_ms("halted", job.halted)});
    mgr_.release(job.region);
    ++area_gen_;
    --placed_live_;
    region_job_.erase(job.region);

    // Successor may begin (it might still be configuring; kConfigDone
    // handles the synchronisation in that case).
    auto range = pending_run_.equal_range(job.id);
    for (auto it = range.first; it != range.second; ++it) {
      push(Ev{now_, seq_++, EvKind::kRunBegin, it->second});
    }
    pending_run_.erase(range.first, range.second);

    // Chained readiness (prefetch windows).
    auto ready_range = ready_after.equal_range(job.id);
    for (auto it = ready_range.first; it != ready_range.second; ++it) {
      Job& dep = jobs[static_cast<std::size_t>(it->second)];
      dep.ready = now_;
      push(Ev{now_, seq_++, EvKind::kReady, it->second});
    }
    ready_after.erase(ready_range.first, ready_range.second);

    maybe_proactive_defrag();
    retry_waiting();
  }

  void maybe_proactive_defrag() {
    if (cfg_->proactive_frag_threshold <= 0 ||
        cfg_->policy == ManagementPolicy::kNoRearrange || sweep_testing_)
      return;
    if (mgr_.fragmentation() <= cfg_->proactive_frag_threshold) return;
    // Only spend idle port time: skip if the port is already backed up.
    if (port_free_at_ > now_) return;
    auto plan = area::plan_full_compaction(mgr_);
    if (!plan) return;
    if (static_cast<int>(plan->moves.size()) > cfg_->defrag.max_moves) {
      plan->moves.resize(static_cast<std::size_t>(cfg_->defrag.max_moves));
      // A truncated compaction is still executable: moves were ordered to
      // be sequentially legal, prefixes included — but only apply moves
      // whose destinations are free after truncation.
      std::vector<area::Move> ok_moves;
      for (const auto& mv : plan->moves) {
        if (mgr_.can_move(mv.region, mv.to)) {
          ok_moves.push_back(mv);
          mgr_.move(mv.region, mv.to);
        }
      }
      // Roll the bookkeeping back; execute_moves re-applies with costs.
      for (auto it = ok_moves.rbegin(); it != ok_moves.rend(); ++it) {
        mgr_.move(it->region, it->from);
      }
      ++area_gen_;  // trial moves were rolled back, but stay conservative
      plan->moves = std::move(ok_moves);
    }
    if (plan->moves.empty()) return;
    execute_moves(*plan);
  }

  void retry_waiting() {
    // FIFO retry; tasks that still do not fit go back to the queue.
    std::deque<int> again;
    std::swap(again, waiting_);
    for (int id : again) {
      Job& job = jobs[static_cast<std::size_t>(id)];
      if (!job.placed && !job.done && !job.rejected) try_start(job);
    }
  }

  /// Planning is deterministic in the area state, and that state only
  /// changes on allocate/release/move — yet the retry loop used to re-plan
  /// from scratch for every waiting task at every departure. Two layers of
  /// reuse, both invalidated when the area generation advances:
  ///  * a RequestPlanner shares the greedy move-sequence search across all
  ///    request shapes queried against one area state,
  ///  * a per-shape memo caches each query's final plan outright.
  /// Affordability is still judged per task — it depends on the requesting
  /// task's own duration, not just the plan.
  std::optional<area::DefragPlan> plan_request(int h, int w) {
    if (plan_gen_ != area_gen_) {
      plan_cache_.clear();
      planner_.emplace(mgr_, cfg_->defrag);
      plan_gen_ = area_gen_;
    }
    auto [it, inserted] = plan_cache_.try_emplace({h, w});
    if (inserted) it->second = planner_->plan(h, w);
    return it->second;
  }

  SimTime move_cost(const area::Move& mv) const {
    auto it = region_job_.find(mv.region);
    RELOGIC_CHECK_MSG(it != region_job_.end(), "plan moves an unknown region");
    const Job& victim = jobs[static_cast<std::size_t>(it->second)];
    return cost_->function_time(victim.fn.cells(), victim.fn.reg,
                                victim.fn.gated_clock);
  }

  /// Cost gate: rearranging must not cost more port time than a fraction
  /// of the requesting task's own execution (otherwise waiting is cheaper
  /// for everyone; the unconstrained variant is measured as an ablation).
  bool plan_affordable(const area::DefragPlan& plan, const Job& job) const {
    if (cfg_->max_move_cost_fraction <= 0) return true;
    SimTime total = SimTime::zero();
    for (const auto& mv : plan.moves) total += move_cost(mv);
    const double budget_ms =
        job.fn.duration.milliseconds() * cfg_->max_move_cost_fraction;
    return total.milliseconds() <= budget_ms;
  }

  /// One relocation, shared by on-demand rearrangement and the self-test
  /// sweep (`selftest` only changes which counter records it).
  void apply_move(const area::Move& mv, bool selftest) {
    auto it = region_job_.find(mv.region);
    RELOGIC_CHECK_MSG(it != region_job_.end(), "plan moves an unknown region");
    Job& victim = jobs[static_cast<std::size_t>(it->second)];

    const SimTime start = std::max(now_, port_free_at_);
    const SimTime cost = move_cost(mv);
    const SimTime done = start + cost;
    port_free_at_ = done;
    stats_.config_port_busy += cost;
    stats_.move_times.push_back(cost);
    if (selftest) {
      ++stats_.selftest_moves;
    } else {
      ++stats_.rearrangement_moves;
    }
    stats_.moved_clbs += mv.from.area();
    if (live_) {
      live_->counter(selftest ? "selftest_moves" : "rearrangement_moves")
          .add(1);
      live_->counter("moved_clbs").add(mv.from.area());
      live_->histogram("relocation_ms").observe(cost.milliseconds());
    }
    if (tr_.sched)
      tr_.sched.complete(
          "relocation", victim.fn.name, start, cost,
          {obs::arg("from", mv.from.to_string()),
           obs::arg("to", mv.to.to_string()), obs::arg("clbs", mv.from.area()),
           obs::arg("selftest", selftest),
           obs::arg("halts_victim", cfg_->policy ==
                                        ManagementPolicy::kHaltAndMove &&
                                    victim.running)});

    mgr_.move(mv.region, mv.to);
    ++area_gen_;

    if (cfg_->policy == ManagementPolicy::kHaltAndMove && victim.running) {
      // The victim is stopped while it is being moved: its remaining
      // execution shifts by the move duration.
      victim.halted += cost;
      stats_.total_halted += cost;
      victim.end += cost;
      ++victim.end_version;
      push(Ev{victim.end, seq_++, EvKind::kEnd, victim.id,
              victim.end_version});
    }
    // Transparent relocation: zero time overhead for the running
    // function — only the configuration port was busy.
  }

  void execute_moves(const area::DefragPlan& plan) {
    for (const auto& mv : plan.moves) apply_move(mv, /*selftest=*/false);
  }

  // ---- roving self-test ----------------------------------------------------

  SimTime sweep_period() const {
    return SimTime::ps(static_cast<std::int64_t>(
        st_->step_period_ms * 1e9));
  }

  ClbRect sweep_window() const {
    const int width = std::min(st_->window_cols, mgr_.cols() - sweep_col_);
    return ClbRect{0, sweep_col_, mgr_.rows(), width};
  }

  /// Relocates every region overlapping the window to free space outside
  /// it. Returns true once the window holds no region (faulty-masked CLBs
  /// are fine — they are skipped by the test itself). Under
  /// no-rearrangement the sweep cannot move anyone and simply waits for
  /// departures to clear the window.
  bool vacate_window(const ClbRect& window) {
    bool clear = true;
    for (const area::Region& r : mgr_.regions()) {
      if (!r.rect.overlaps(window)) continue;
      if (cfg_->policy == ManagementPolicy::kNoRearrange) {
        clear = false;
        continue;
      }
      const auto dest = mgr_.find_free_rect(r.rect.height, r.rect.width,
                                            cfg_->placement, &window);
      if (!dest) {
        clear = false;
        continue;
      }
      apply_move(area::Move{r.id, r.rect, *dest}, /*selftest=*/true);
    }
    return clear;
  }

  void on_sweep_step() {
    // Sweep boundary: in audit builds, recount the occupancy ledger before
    // the window vacate/claim churn starts from it.
    if constexpr (relogic::audit_enabled()) mgr_.audit();
    const ClbRect window = sweep_window();
    if (!vacate_window(window)) {
      // Retry after one period; the window does not advance until every
      // CLB of it has been visited — zero missed CLBs per rotation.
      push(Ev{now_ + sweep_period(), seq_++, EvKind::kSweepStep, -1});
      return;
    }

    // Claim the window's free CLBs (per-column strips around any masked
    // cells) so nothing is placed into them while patterns are driven.
    sweep_claimed_ = 0;
    for (int c = window.col; c < window.col_end(); ++c) {
      int run_start = -1;
      for (int r = 0; r <= mgr_.rows(); ++r) {
        const bool free =
            r < mgr_.rows() && mgr_.at(ClbCoord{r, c}) == area::kNoRegion;
        if (free && run_start < 0) run_start = r;
        if (!free && run_start >= 0) {
          sweep_regions_.push_back(mgr_.allocate_at(
              "selftest", ClbRect{run_start, c, r - run_start, 1}));
          sweep_claimed_ += r - run_start;
          run_start = -1;
        }
      }
    }
    ++area_gen_;

    // Port cost: two complementary patterns written and read back over the
    // claimed cells (readback priced like the write — both stream the same
    // frames through the same port).
    const SimTime test_time =
        4 * cost_->configure_time(sweep_claimed_ * st_->cells_per_clb);
    const SimTime start = std::max(now_, port_free_at_);
    const SimTime done = start + test_time;
    port_free_at_ = done;
    stats_.config_port_busy += test_time;
    sweep_testing_ = true;
    if (tr_.health)
      tr_.health.complete("health", "sweep-test", start, test_time,
                          {obs::arg("col", window.col),
                           obs::arg("cols", window.width),
                           obs::arg("claimed_clbs", sweep_claimed_)});
    push(Ev{done, seq_++, EvKind::kSweepDone, -1});
  }

  void on_sweep_done() {
    const ClbRect window = sweep_window();
    sweep_testing_ = false;
    // Release the claimed strips, remembering exactly which CLBs were
    // pattern-tested (a region departing mid-test does not make its CLBs
    // tested — they are caught on a later rotation).
    std::vector<ClbRect> tested;
    tested.reserve(sweep_regions_.size());
    for (const area::RegionId id : sweep_regions_) {
      tested.push_back(mgr_.region(id).rect);
      mgr_.release(id);
    }
    sweep_regions_.clear();
    ++area_gen_;

    // Injected faults inside the tested CLBs become detected: masked out
    // of occupancy, placement and defrag planning from this moment.
    if (faults_ != nullptr) {
      for (const ClbRect& strip : tested) {
        for (int r = strip.row; r < strip.row_end(); ++r) {
          for (int c = strip.col; c < strip.col_end(); ++c) {
            const ClbCoord clb{r, c};
            const int fresh = faults_->detect_all_in(clb);
            if (fresh > 0) {
              stats_.faults_detected += fresh;
              mgr_.mask_faulty(clb);
              ++stats_.faulty_clbs;
              ++area_gen_;
              if (live_) {
                live_->counter("faulty_cells").add(fresh);
                live_->counter("faulty_clbs").add(1);
              }
              if (tr_.health)
                tr_.health.instant("health", "fault-detected", now_,
                                   {obs::arg("row", r), obs::arg("col", c),
                                    obs::arg("cells", fresh)});
            }
          }
        }
      }
    }

    stats_.swept_clbs += window.area();
    stats_.tested_clbs += sweep_claimed_;
    if (live_) {
      live_->counter("swept_clbs").add(window.area());
      live_->counter("tested_clbs").add(sweep_claimed_);
    }
    sweep_col_ += window.width;
    if (sweep_col_ >= mgr_.cols()) {
      sweep_col_ = 0;
      ++stats_.sweep_rotations;
      if (live_) live_->counter("sweep_rotations").add(1);
      if (tr_.health)
        tr_.health.instant("health", "rotation", now_,
                           {obs::arg("rotation", stats_.sweep_rotations)});
    }

    // Sweep-done boundary: the claim strips are released and any detected
    // CLBs masked — the ledger must reconcile before waiters re-place.
    if constexpr (relogic::audit_enabled()) mgr_.audit();

    // Releasing the window may unblock waiters (and masking may have eaten
    // the hole they were promised — they will queue again).
    retry_waiting();

    // Keep roving while work is resident; always finish the rotation quota.
    if (placed_live_ > 0 || sweep_col_ != 0 ||
        stats_.sweep_rotations < st_->min_rotations) {
      push(Ev{now_ + sweep_period(), seq_++, EvKind::kSweepStep, -1});
    }
  }

  void finalize() {
    stats_.makespan = now_;
    if (elapsed_ms_ > 0) {
      stats_.utilization_avg = util_integral_ / elapsed_ms_;
      stats_.fragmentation_avg = frag_integral_ / elapsed_ms_;
    }
    for (const Job& job : jobs) {
      TaskRecord r;
      r.name = job.fn.name;
      r.clbs = job.fn.clbs();
      r.slot = job.slot;
      r.ready = job.ready;
      r.eligible = job.ready;
      if (job.predecessor) {
        const Job& pred = jobs[static_cast<std::size_t>(*job.predecessor)];
        if (pred.done) r.eligible = std::max(job.ready, pred.end);
      }
      r.config_start = job.config_start;
      r.run_start = job.run_start;
      r.finish = job.end;
      r.halted = job.halted;
      r.rejected = job.rejected || (!job.done && !job.placed);
      if (r.rejected) ++stats_.rejected;
      stats_.tasks.push_back(r);
    }
    if (metrics_) {
      // Reconcile the live counters with the authoritative end-of-run
      // semantics (fleet.cpp "per-device telemetry"): every job counts as
      // admitted even if its readiness never fired (a chained function
      // whose ancestor never completed), and placed-but-never-ran jobs are
      // rejected only at finalize time.
      live_->counter("tasks_admitted")
          .add(static_cast<std::int64_t>(jobs.size()) - live_admitted_);
      live_->counter("tasks_rejected").add(stats_.rejected - live_rejected_);
      sample_metrics();  // closing row at the makespan
    }
  }

  area::AreaManager mgr_;
  const reloc::RelocationCostModel* cost_;
  const SchedulerConfig* cfg_;
  const SelfTestConfig* st_;
  health::FaultMap* faults_;
  SchedulerTrace tr_;
  obs::TimelineSampler* metrics_;    ///< nullptr = metrics plane off
  runtime::Telemetry* live_;         ///< metrics_->live(), cached
  std::int64_t live_admitted_ = 0;   ///< kReady events counted live
  std::int64_t live_rejected_ = 0;   ///< explicit rejections counted live
  int sweep_col_ = 0;
  int sweep_claimed_ = 0;       ///< CLBs held by the current test window
  bool sweep_testing_ = false;  ///< a test transaction holds the port
  std::vector<area::RegionId> sweep_regions_;  ///< claimed window strips
  int placed_live_ = 0;         ///< regions currently on the device
  std::priority_queue<Ev, std::vector<Ev>, std::greater<>> queue_;
  std::uint64_t seq_ = 0;
  SimTime now_ = SimTime::zero();
  SimTime port_free_at_ = SimTime::zero();
  std::deque<int> waiting_;
  std::uint64_t area_gen_ = 0;
  std::uint64_t plan_gen_ = std::numeric_limits<std::uint64_t>::max();
  std::optional<area::RequestPlanner> planner_;
  std::map<std::pair<int, int>, std::optional<area::DefragPlan>> plan_cache_;
  std::map<area::RegionId, int> region_job_;
  std::multimap<int, int> pending_run_;  // predecessor job -> successor job
  RunStats stats_;
  double util_integral_ = 0.0;
  double frag_integral_ = 0.0;
  double elapsed_ms_ = 0.0;
};

}  // namespace

Scheduler::Scheduler(int rows, int cols, reloc::RelocationCostModel cost,
                     SchedulerConfig config)
    : rows_(rows), cols_(cols), cost_(std::move(cost)), cfg_(std::move(config)) {
  RELOGIC_CHECK(rows_ >= 1 && cols_ >= 1);
}

void Scheduler::enable_selftest(const SelfTestConfig& selftest,
                                health::FaultMap* faults) {
  RELOGIC_CHECK(selftest.window_cols >= 1);
  RELOGIC_CHECK(selftest.step_period_ms > 0.0);
  selftest_ = selftest;
  faults_ = faults;
}

RunStats Scheduler::run_tasks(const std::vector<TaskArrival>& tasks) {
  Engine engine(rows_, cols_, cost_, cfg_, selftest_, faults_, trace_,
                metrics_);
  engine.jobs.reserve(tasks.size());
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    Job j;
    j.id = static_cast<int>(i);
    j.fn = tasks[i].fn;
    j.ready = tasks[i].arrival;
    engine.jobs.push_back(std::move(j));
  }
  return engine.run();
}

RunStats Scheduler::run_apps(const std::vector<AppSpec>& apps, int overlap) {
  RELOGIC_CHECK(overlap >= 1);
  Engine engine(rows_, cols_, cost_, cfg_, selftest_, faults_, trace_,
                metrics_);
  int id = 0;
  for (std::size_t a = 0; a < apps.size(); ++a) {
    const AppSpec& app = apps[a];
    int first_of_app = id;
    for (std::size_t f = 0; f < app.functions.size(); ++f) {
      Job j;
      j.id = id;
      j.fn = app.functions[f];
      j.app = static_cast<int>(a);
      j.index_in_app = static_cast<int>(f);
      if (f > 0) j.predecessor = id - 1;
      // Readiness (= when it may start being configured): with prefetch the
      // function is eligible `overlap` positions ahead of the chain; the
      // run itself still waits for the predecessor's end.
      if (f == 0) {
        j.ready = app.start;
      } else if (cfg_.prefetch) {
        // Ready to configure when its (f - overlap)-th ancestor ends; with
        // overlap >= f it is ready at application start. The execution
        // order itself is enforced through `predecessor` regardless —
        // early readiness only permits configuring in advance (the rt
        // interval of Fig. 1).
        const int ancestor = static_cast<int>(f) - overlap;
        if (ancestor < 0) {
          j.ready = app.start;
        } else {
          j.ready = SimTime::never();
          engine.ready_after.emplace(first_of_app + ancestor, id);
        }
      } else {
        j.ready = SimTime::never();
        engine.ready_after.emplace(id - 1, id);
      }
      engine.jobs.push_back(std::move(j));
      ++id;
    }
  }
  return engine.run();
}

}  // namespace relogic::sched
