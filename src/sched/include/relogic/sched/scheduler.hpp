// On-line run-time manager: schedules functions onto the FPGA area,
// queueing or rearranging when fragmentation defeats a request.
//
// Three management policies are compared (the paper's contribution is the
// third — the first two are the baselines it argues against):
//
//  * kNoRearrange — allocation failure queues the task until departures
//    happen to open a large-enough hole (Sec. 1: unused small pools).
//  * kHaltAndMove — rearrangement by stopping the functions to be moved,
//    reconfiguring them at their new position and resuming (what [5]
//    assumed: "no physical execution of these rearrangements is proposed
//    other than halting those functions"). Moved tasks accrue downtime.
//  * kTransparent — the paper's dynamic relocation: moves cost
//    configuration-port time only; running functions never stop.
//
// The scheduler is a discrete-event simulation at area granularity; all
// configuration and relocation times — move costing, the
// max_move_cost_fraction gate, defrag plan pricing, and the self-test
// sweep's vacate/claim pricing — come from the RelocationCostModel it is
// constructed with, which carries both the port backend (JTAG /
// SelectMAP-8 / ICAP-32) and the write granularity (DESIGN.md §6.1), so
// its numbers stay consistent with the fabric-level engine benchmarks on
// every configuration plane the fleet supports.
#pragma once

#include <deque>
#include <optional>
#include <queue>
#include <string>
#include <vector>

#include "relogic/area/defrag.hpp"
#include "relogic/area/manager.hpp"
#include "relogic/health/fault.hpp"
#include "relogic/obs/trace.hpp"
#include "relogic/reloc/cost.hpp"
#include "relogic/sched/workload.hpp"

namespace relogic::obs {
class TimelineSampler;  // obs/timeline.hpp
}

namespace relogic::sched {

enum class ManagementPolicy { kNoRearrange, kHaltAndMove, kTransparent };

std::string to_string(ManagementPolicy p);

struct SchedulerConfig {
  ManagementPolicy policy = ManagementPolicy::kTransparent;
  area::PlacePolicy placement = area::PlacePolicy::kBottomLeft;
  area::DefragOptions defrag;
  /// Configure the next function of an application while its predecessor
  /// still runs (the rt interval of Fig. 1).
  bool prefetch = true;
  /// A queued task older than this is counted as rejected and dropped
  /// (never() = wait forever).
  SimTime max_wait = SimTime::never();
  /// Rearrangement cost gate: a plan is executed only if its total
  /// configuration-port cost does not exceed this fraction of the
  /// requesting task's duration (otherwise moving costs more than the
  /// task is worth; the request queues instead). <= 0 disables the gate.
  double max_move_cost_fraction = 0.5;
  /// Proactive defragmentation (DESIGN.md §6.3): after a departure, if
  /// fragmentation exceeds this threshold, compact toward one free
  /// rectangle using idle port time (bounded by defrag.max_moves).
  /// <= 0 disables proactive mode (rearrangement happens on demand only).
  double proactive_frag_threshold = 0.0;
};

/// Roving on-line self-test, at the scheduler's area granularity. The
/// fabric-level procedure (relocate the window's occupants with the
/// two-phase engine, write complementary patterns, read back) lives in
/// health::RovingTester; inside the discrete-event run the scheduler models
/// its cost and consequences: the window's regions are relocated out of the
/// way (port time, transparent or halting per the management policy), the
/// freed CLBs are held out of circulation while the patterns are driven,
/// and injected faults inside the tested window become *detected* — masked
/// out of occupancy, placement and defrag planning from that moment on.
struct SelfTestConfig {
  bool enabled = false;
  /// Test window width in CLB columns.
  int window_cols = 1;
  /// Interval between window advances; also the retry interval when the
  /// window cannot be vacated yet (occupied under no-rearrangement, or no
  /// free destination for a vacating move).
  double step_period_ms = 5.0;
  /// Full-device rotations guaranteed to complete even after the workload
  /// drains (the sweep also keeps roving as long as tasks are resident).
  int min_rotations = 1;
  /// Logic cells per CLB of the modelled device — prices the pattern
  /// writes (the scheduler itself is CLB-granular).
  int cells_per_clb = 4;
};

struct TaskRecord {
  std::string name;
  int clbs = 0;
  /// Rectangle the task was initially configured into (empty if it never
  /// placed). Rearrangements may move it later; this is the slot its
  /// initial partial configuration was written to.
  ClbRect slot;
  SimTime ready = SimTime::zero();     ///< became eligible to configure
  /// Earliest moment execution could have begun (for chained functions:
  /// the predecessor's end; prefetching earlier does not count as delay).
  SimTime eligible = SimTime::zero();
  SimTime config_start = SimTime::zero();
  SimTime run_start = SimTime::zero();  ///< execution actually began
  SimTime finish = SimTime::zero();
  SimTime halted = SimTime::zero();     ///< downtime from halt-and-move
  bool rejected = false;

  /// Queueing + rearrangement + configuration delay before execution.
  SimTime allocation_delay() const { return run_start - eligible; }
};

struct RunStats {
  std::vector<TaskRecord> tasks;
  /// Configuration-port cost of each rearrangement move, in execution
  /// order (one entry per move counted in rearrangement_moves).
  std::vector<SimTime> move_times;
  SimTime makespan = SimTime::zero();
  SimTime config_port_busy = SimTime::zero();
  SimTime total_halted = SimTime::zero();
  int rearrangement_moves = 0;
  int moved_clbs = 0;
  int rejected = 0;
  // Roving self-test (all zero unless enabled):
  int swept_clbs = 0;       ///< window CLBs visited (rotations x rows x cols)
  int tested_clbs = 0;      ///< CLBs actually pattern-tested (free at visit)
  int sweep_rotations = 0;  ///< completed full-device rotations
  int selftest_moves = 0;   ///< vacating relocations performed by the sweep
  int faults_detected = 0;  ///< faulty cells newly detected
  int faulty_clbs = 0;      ///< CLBs masked out after detection
  double utilization_avg = 0.0;   ///< time-weighted mean CLB occupancy
  double fragmentation_avg = 0.0; ///< time-weighted mean fragmentation
  double fragmentation_max = 0.0;

  double avg_allocation_delay_ms() const;
  double max_allocation_delay_ms() const;
  double avg_turnaround_ms() const;
};

/// Trace lanes the discrete-event run emits into (all on the device's
/// simulated clock; see DESIGN.md §7). Default-constructed lanes disable
/// their emissions at the cost of one branch per event.
struct SchedulerTrace {
  /// Placement instants, rearrangement planning, 'config' spans (function
  /// configuration on the port), 'relocation' spans (two-phase moves), and
  /// one B/E envelope around the whole run.
  obs::TraceTrack sched;
  /// Per-task 'queue' (eligible -> run start) and 'task' (execution) spans.
  obs::TraceTrack tasks;
  /// Self-test sweep: test-window spans, fault detections, rotations.
  obs::TraceTrack health;
};

class Scheduler {
 public:
  Scheduler(int rows, int cols, reloc::RelocationCostModel cost,
            SchedulerConfig config);

  /// Attaches trace lanes for subsequent runs (copies the handles).
  void set_trace(const SchedulerTrace& trace) { trace_ = trace; }

  /// Attaches a metrics sampler for subsequent runs (nullptr detaches).
  /// The engine updates the sampler's live registry as events execute and
  /// snapshots it every sampler->interval() of simulated time, scheduled as
  /// DES tick events — sample times are part of the deterministic event
  /// order, never wall time (DESIGN.md §7.5). The sampler must outlive the
  /// runs and is written only from the thread running them.
  void set_metrics(obs::TimelineSampler* sampler) { metrics_ = sampler; }

  /// Enables the roving self-test for subsequent runs. `faults` carries the
  /// injected ground truth and receives detections; it must outlive the
  /// runs. Pass nullptr to sweep a fault-free device (coverage only).
  void enable_selftest(const SelfTestConfig& selftest,
                       health::FaultMap* faults);

  /// Independent one-shot tasks (defragmentation experiments).
  RunStats run_tasks(const std::vector<TaskArrival>& tasks);

  /// Applications as function chains (Fig. 1). `overlap` is the degree of
  /// parallelism within one application: how many of its consecutive
  /// functions may be resident simultaneously (1 = strictly sequential
  /// swapping, higher values demand more area at once).
  RunStats run_apps(const std::vector<AppSpec>& apps, int overlap = 1);

 private:
  int rows_;
  int cols_;
  reloc::RelocationCostModel cost_;
  SchedulerConfig cfg_;
  SelfTestConfig selftest_;
  health::FaultMap* faults_ = nullptr;
  SchedulerTrace trace_;
  obs::TimelineSampler* metrics_ = nullptr;
};

}  // namespace relogic::sched
