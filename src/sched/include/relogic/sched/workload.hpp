// Workloads for the run-time manager: applications as sequences of
// functions sharing the FPGA in the spatial and temporal domains (Fig. 1).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "relogic/common/rng.hpp"
#include "relogic/common/time.hpp"
#include "relogic/fabric/cell.hpp"

namespace relogic::sched {

/// One function to be configured and executed on the fabric.
struct FunctionSpec {
  std::string name;
  int height = 1;  ///< CLB rows
  int width = 1;   ///< CLB cols
  /// Execution time once running.
  SimTime duration = SimTime::ms(1);
  /// Storage style — determines relocation cost if the manager moves it.
  fabric::RegMode reg = fabric::RegMode::kFF;
  bool gated_clock = false;

  int clbs() const { return height * width; }
  int cells() const { return clbs() * 4; }
};

/// An application: functions executed in sequence (possibly overlapping by
/// `parallelism` — the number of its functions that may run concurrently).
struct AppSpec {
  std::string name;
  std::vector<FunctionSpec> functions;
  SimTime start = SimTime::zero();
};

/// One-shot task arrivals (for the defragmentation experiments).
struct TaskArrival {
  FunctionSpec fn;
  SimTime arrival = SimTime::zero();
};

/// The Fig. 1 scenario: three applications (A: 2 functions, B: 2, C: 4)
/// sharing the device, with function C2 needing a rearrangement.
std::vector<AppSpec> fig1_applications(int scale_clbs = 6);

/// Random on-line task set: Poisson arrivals, geometric-ish sizes and
/// exponential durations. Deterministic by seed.
struct RandomTaskParams {
  int task_count = 200;
  double mean_interarrival_ms = 2.0;
  int min_side = 2;
  int max_side = 10;
  double mean_duration_ms = 20.0;
  double gated_fraction = 0.5;
  std::uint64_t seed = 1;
};
std::vector<TaskArrival> random_tasks(const RandomTaskParams& params);

}  // namespace relogic::sched
